package ataqc

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicCompileAllStrategies(t *testing.T) {
	dev := GridDevice(16)
	prob := RandomProblem(14, 0.3, 3)
	for _, s := range []Strategy{StrategyHybrid, StrategyGreedy, StrategyATA, Strategy2QAN, StrategyQAIM, StrategyPaulihedral} {
		res, err := Compile(dev, prob, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Depth() <= 0 || res.CXCount() < 2*prob.Interactions() {
			t.Fatalf("%s: depth=%d cx=%d", s, res.Depth(), res.CXCount())
		}
	}
}

func TestPublicDeviceConstructors(t *testing.T) {
	for _, d := range []*Device{
		LineDevice(8), GridDevice(20), SycamoreDevice(20),
		HeavyHexDevice(27), HexagonDevice(20), MumbaiDevice(),
	} {
		if d.Qubits() < 8 || d.Name() == "" || len(d.Couplings()) == 0 {
			t.Fatalf("degenerate device %s", d.Name())
		}
	}
}

func TestProblemBuilder(t *testing.T) {
	p := NewProblem(4)
	p.AddInteraction(0, 1)
	p.AddInteraction(2, 3)
	if p.Qubits() != 4 || p.Interactions() != 2 {
		t.Fatal("problem builder wrong")
	}
	reg, err := RegularProblem(16, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Interactions() == 0 {
		t.Fatal("regular problem empty")
	}
}

func TestCompileErrors(t *testing.T) {
	dev := LineDevice(4)
	if _, err := Compile(dev, RandomProblem(8, 0.3, 1), Options{}); err == nil {
		t.Fatal("oversized problem accepted")
	}
	if _, err := Compile(dev, RandomProblem(4, 0.5, 1), Options{Strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, err := Compile(dev, RandomProblem(4, 0.5, 1), Options{NoiseAware: true}); err == nil {
		t.Fatal("noise-aware without calibration accepted")
	}
}

func TestNoiseAwareEndToEnd(t *testing.T) {
	dev := MumbaiDevice().WithSyntheticNoise(7)
	prob := RandomProblem(10, 0.3, 5)
	res, err := Compile(dev, prob, Options{NoiseAware: true, CrosstalkAware: true})
	if err != nil {
		t.Fatal(err)
	}
	f := res.EstimatedFidelity()
	if !(0 < f && f < 1) {
		t.Fatalf("fidelity %v", f)
	}
	noisy, err := res.NoisyDistribution(0.5, 0.3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ideal := res.SimulateDistribution(0.5, 0.3)
	if d := TVD(ideal, noisy); !(0 < d && d < 1) {
		t.Fatalf("TVD %v", d)
	}
}

func TestQASMExport(t *testing.T) {
	dev := LineDevice(4)
	res, err := Compile(dev, RandomProblem(4, 0.8, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "OPENQASM 2.0;") || !strings.Contains(out, "cx q[") {
		t.Fatalf("qasm output malformed:\n%s", out[:min(200, len(out))])
	}
}

func TestMappingsConsistent(t *testing.T) {
	dev := GridDevice(9)
	prob := RandomProblem(9, 0.5, 2)
	res, err := Compile(dev, prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini, fin := res.InitialMapping(), res.FinalMapping()
	if len(ini) != 9 || len(fin) != 9 {
		t.Fatal("mapping lengths wrong")
	}
	seen := map[int]bool{}
	for _, p := range fin {
		if seen[p] {
			t.Fatal("final mapping collides")
		}
		seen[p] = true
	}
}

func TestQAOAWorkflow(t *testing.T) {
	dev := GridDevice(8)
	prob := RandomProblem(8, 0.4, 4)
	res, err := Compile(dev, prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := res.QAOAExpectation(0, 0)
	if diff := e0 - float64(prob.Interactions())/2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("E(0,0) = %v", e0)
	}
	_, _, best := res.OptimizeQAOA(30)
	if best <= e0 {
		t.Fatalf("optimized %v not above uniform %v", best, e0)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTrotterQASM(t *testing.T) {
	dev := GridDevice(8)
	res, err := Compile(dev, RandomProblem(8, 0.4, 9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTrotterQASM(3, 0.6, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cx q[") {
		t.Fatal("no gates in trotter qasm")
	}
	if err := res.WriteTrotterQASM(0, 1, &buf); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestParseProblem(t *testing.T) {
	p, err := ParseProblem(strings.NewReader("0 1\n# comment\n\n2 3\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Qubits() != 4 || p.Interactions() != 3 {
		t.Fatalf("parsed %d qubits, %d interactions", p.Qubits(), p.Interactions())
	}
	for _, bad := range []string{"", "0 0\n", "a b\n", "-1 2\n"} {
		if _, err := ParseProblem(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q accepted", bad)
		}
	}
}

func TestLoadProblemMissingFile(t *testing.T) {
	if _, err := LoadProblem("/nonexistent/edges.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteSchedule(t *testing.T) {
	dev := LineDevice(4)
	res, err := Compile(dev, RandomProblem(4, 0.9, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSchedule(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycle   0:") {
		t.Fatalf("schedule output malformed:\n%s", buf.String())
	}
}

func TestDeviceRender(t *testing.T) {
	if GridDevice(9).Render() == "" {
		t.Fatal("empty render")
	}
}

func TestOptimalDepth(t *testing.T) {
	dev := LineDevice(4)
	prob := NewProblem(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			prob.AddInteraction(u, v)
		}
	}
	d, err := OptimalDepth(dev, prob, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 {
		t.Fatalf("K4 on line-4 optimal depth %d, want 6", d)
	}
	if _, err := OptimalDepth(LineDevice(6), RandomProblem(6, 1.0, 1), 5); err != ErrSolverBudget {
		t.Fatalf("want ErrSolverBudget, got %v", err)
	}
}
