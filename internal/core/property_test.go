package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// TestCompilePropertyAllModesValid: random architecture/problem/mode
// combinations always produce circuits that pass end-to-end verification
// (Compile itself runs the strict analyzers, so this asserts no error,
// sane metrics, and no error-severity lint with the full analyzer set on).
func TestCompilePropertyAllModesValid(t *testing.T) {
	builders := []func(int) *arch.Arch{
		func(n int) *arch.Arch { return arch.GridN(n) },
		func(n int) *arch.Arch { return arch.SycamoreN(n) },
		func(n int) *arch.Arch { return arch.HeavyHexN(n) },
		func(n int) *arch.Arch { return arch.HexagonN(n) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		a := builders[rng.Intn(len(builders))](n)
		p := graph.GnpConnected(n, 0.15+0.6*rng.Float64(), rng)
		mode := Mode(rng.Intn(3))
		res, err := Compile(a, p, Options{Mode: mode, Verify: true})
		if err != nil {
			t.Logf("seed %d (%s, %v): %v", seed, a.Name, mode, err)
			return false
		}
		for _, d := range res.Diagnostics {
			if d.Severity == verify.SeverityError {
				t.Logf("seed %d (%s, %v): %v", seed, a.Name, mode, d)
				return false
			}
		}
		return res.Metrics.ProgramGates == p.M() && res.Metrics.Depth > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAlphaSteersSelector: alpha near 1 optimises depth, alpha near 0
// optimises gate count; the selected circuits must reflect the preference.
func TestAlphaSteersSelector(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := arch.Grid(6, 6)
	p := graph.GnpConnected(36, 0.5, rng)
	deep, err := Compile(a, p, Options{Mode: ModeHybrid, Alpha: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	lean, err := Compile(a, p, Options{Mode: ModeHybrid, Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Metrics.Depth > lean.Metrics.Depth && deep.Metrics.CXCount > lean.Metrics.CXCount {
		t.Fatalf("alpha=0.95 lost on both axes: depth %d vs %d, cx %d vs %d",
			deep.Metrics.Depth, lean.Metrics.Depth, deep.Metrics.CXCount, lean.Metrics.CXCount)
	}
	if deep.Metrics.Depth > lean.Metrics.Depth {
		t.Errorf("alpha=0.95 depth %d exceeds alpha=0.05 depth %d",
			deep.Metrics.Depth, lean.Metrics.Depth)
	}
}

// TestMaxPredictionsOneStillValid: the decimation edge case (a single
// prediction budget) must not break correctness or the Theorem 6.1 pool.
func TestMaxPredictionsOneStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := arch.HeavyHexN(32)
	p := graph.GnpConnected(32, 0.4, rng)
	res, err := Compile(a, p, Options{Mode: ModeHybrid, MaxPredictions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ProgramGates != p.M() {
		t.Fatal("gates missing")
	}
}

// TestCompileDisconnectedProblem: problems with isolated components and
// isolated vertices compile fine (isolated vertices never need gates).
func TestCompileDisconnectedProblem(t *testing.T) {
	a := arch.Grid(4, 4)
	p := graph.New(10)
	p.AddEdge(0, 1)
	p.AddEdge(2, 3)
	p.AddEdge(7, 8) // vertex 9 and others isolated
	for _, mode := range []Mode{ModeGreedy, ModeATA, ModeHybrid} {
		res, err := Compile(a, p, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Metrics.ProgramGates != 3 {
			t.Fatalf("%v: %d gates", mode, res.Metrics.ProgramGates)
		}
	}
}

// TestCompileEmptyProblem: zero interactions yield an empty circuit.
func TestCompileEmptyProblem(t *testing.T) {
	a := arch.Grid(3, 3)
	p := graph.New(5)
	res, err := Compile(a, p, Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CXCount != 0 || res.Metrics.Depth != 0 {
		t.Fatalf("empty problem produced %+v", res.Metrics)
	}
}

// TestCompileSingleEdge compiles the minimal problem on every family.
func TestCompileSingleEdge(t *testing.T) {
	p := graph.New(2)
	p.AddEdge(0, 1)
	for _, a := range testArchs() {
		res, err := Compile(a, p, Options{Mode: ModeHybrid})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Metrics.CXCount < 2 {
			t.Fatalf("%s: cx %d", a.Name, res.Metrics.CXCount)
		}
	}
}

// TestMeasureConsistency: Measure agrees with direct circuit queries.
func TestMeasureConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := arch.Grid(4, 4)
	p := graph.GnpConnected(16, 0.4, rng)
	nm := noise.Synthetic(a, 1)
	res, err := Compile(a, p, Options{Mode: ModeHybrid, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Circuit
	if res.Metrics.CXCount != c.CXCount() {
		t.Fatal("CX mismatch")
	}
	if res.Metrics.Depth != c.DecomposedDepth() {
		t.Fatal("depth mismatch")
	}
	counts := c.GateCount()
	if res.Metrics.Swaps != counts[circuit.GateSwap]+counts[circuit.GateZZSwap] {
		t.Fatal("swap mismatch")
	}
}

// TestSelectorCostProperties: pure greedy scores exactly 1 and improving
// either axis lowers F.
func TestSelectorCostProperties(t *testing.T) {
	opts := Options{Alpha: 0.5}
	base := selectorCost(opts, 100, 100, 1000, 1000, 0, 0)
	if base != 1 {
		t.Fatalf("baseline F = %v", base)
	}
	if f := selectorCost(opts, 50, 100, 1000, 1000, 0, 0); f >= base {
		t.Fatalf("halving depth did not lower F: %v", f)
	}
	if f := selectorCost(opts, 100, 100, 500, 1000, 0, 0); f >= base {
		t.Fatalf("halving CX did not lower F: %v", f)
	}
	// With a noise model, the log-fidelity ratio replaces the CX ratio.
	optsN := Options{Alpha: 0.5, Noise: &noise.Model{}}
	if f := selectorCost(optsN, 100, 100, 2000, 1000, -10, -20); f >= base {
		t.Fatalf("better fidelity did not lower F: %v", f)
	}
}
