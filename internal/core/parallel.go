package core

import (
	"fmt"
	"sync"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// predictParallel is the Workers>1 engine of the hybrid prediction loop:
// every checkpoint's ATA prediction is independent (each works on its own
// State clone), so they fan out over a bounded worker pool sharing one
// pattern cache. Determinism is by construction:
//
//   - each job's score lands in an index-addressed slot, and selection
//     scans slots in ascending checkpoint order with the same strict-less
//     comparison as the serial loop, so ties break identically;
//   - scores themselves are cache-independent — a cached grid choice
//     replays exactly the pattern the uncached dual prediction picks;
//   - budget charges are commutative atomic adds, so the WorkUnits total
//     matches the serial loop whenever every checkpoint is evaluated.
//
// Under an exhausting budget the first worker to observe exhaustion stops
// the fan-out; completed scores still participate in selection (the "best
// candidate so far" rung of the degradation ladder), mirroring the serial
// loop's truncation. Non-degradable interruption (context cancellation)
// aborts with the error after every worker has exited — the pool never
// leaks goroutines.
func (h *hybridEval) predictParallel(cps []checkpoint, stats *Stats, cache *swapnet.PatternCache) (best *candidate, degradeReason string, err error) {
	if berr := h.bud.interrupt(); berr != nil {
		if !degradable(berr) {
			return nil, "", berr
		}
		return nil, fmt.Sprintf(
			"prediction budget exhausted after 0/%d checkpoints (%v); selected best candidate so far",
			len(cps), berr), nil
	}

	// Incremental want-set precomputation: checkpoints arrive in ascending
	// prefix order, so each want set is the previous one minus the program
	// gates of the prefix delta — O(M + |gates|) total instead of
	// O(checkpoints · |gates|) repeated prefix scans.
	type job struct {
		cp   checkpoint
		want *swapnet.EdgeSet
	}
	var jobs []job
	want := swapnet.NewEdgeSet(h.problem)
	prev := 0
	for _, cp := range cps {
		for _, g := range h.gates[prev:cp.prefixLen] {
			if g.Kind == circuit.GateZZ || g.Kind == circuit.GateZZSwap {
				want.Remove(g.Tag)
			}
		}
		prev = cp.prefixLen
		if want.Empty() {
			continue
		}
		jobs = append(jobs, job{cp: cp, want: want.Clone()})
	}
	if len(jobs) == 0 {
		return nil, "", nil
	}

	scores := make([]float64, len(jobs))
	scored := make([]bool, len(jobs))

	workers := h.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		mu       sync.Mutex
		firstErr error
	)
	stop := make(chan struct{})
	jobCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				if berr := h.bud.interrupt(); berr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = berr
					}
					mu.Unlock()
					stopOnce.Do(func() { close(stop) })
					return
				}
				f, ok := h.scoreCheckpoint(jobs[i].cp, jobs[i].want, cache)
				scores[i], scored[i] = f, ok
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case jobCh <- i:
		case <-stop:
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Selection: ascending checkpoint order, strict-less — byte-identical
	// tie-breaking with the serial loop.
	bestF := 1.0 // pure greedy: fD/oD = 1 and fidelity ratio = 1
	for i := range jobs {
		if !scored[i] {
			continue
		}
		stats.Predictions++
		if scores[i] < bestF {
			bestF = scores[i]
			best = &candidate{cp: jobs[i].cp, f: scores[i]}
		}
	}
	if firstErr != nil {
		if !degradable(firstErr) {
			return nil, "", firstErr
		}
		degradeReason = fmt.Sprintf(
			"prediction budget exhausted after %d/%d checkpoints (%v); selected best candidate so far",
			stats.Predictions, len(cps), firstErr)
	}
	return best, degradeReason, nil
}
