package core

import (
	"context"
	"sync"
	"time"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// predictParallel is the Workers>1 engine of the hybrid prediction loop:
// every checkpoint's ATA prediction is independent (each works on its own
// State clone), so they fan out over a bounded worker pool sharing one
// pattern cache. Determinism is by construction:
//
//   - each job's score lands in an index-addressed slot, and selection
//     scans slots in ascending checkpoint order with the same strict-less
//     comparison as the serial loop, so ties break identically;
//   - scores themselves are cache-independent — a cached grid choice
//     replays exactly the pattern the uncached dual prediction picks;
//   - budget charges are commutative atomic adds, so the WorkUnits total
//     matches the serial loop whenever every checkpoint is evaluated.
//
// Under an exhausting budget the first worker to observe exhaustion stops
// the fan-out; completed scores still participate in selection (the "best
// candidate so far" rung of the degradation ladder), mirroring the serial
// loop's truncation. Non-degradable interruption (context cancellation)
// aborts with the error after every worker has exited — the pool never
// leaks goroutines.
//
// Observability: each worker gets its own span (and exporter lane), every
// prediction a "predictATA" child span, and each job's queue wait (feed to
// pick-up) and run time land in the pool.queue_wait_us / pool.run_us
// histograms and the Timeline's per-checkpoint entries. The feed timestamp
// is written before the channel send, so the receiving worker reads it
// under the channel's happens-before edge.
func (h *hybridEval) predictParallel(cps []checkpoint, stats *Stats, cache *swapnet.PatternCache, parent *obs.Span) (best *candidate, dreason DegradeReason, err error) {
	if berr := h.bud.interrupt(); berr != nil {
		if !degradable(berr) {
			return nil, DegradeReason{}, berr
		}
		return nil, degradeReasonFor("best-so-far", berr, 0, len(cps), h.bud, h.opts, h.rec), nil
	}

	// Incremental want-set precomputation: checkpoints arrive in ascending
	// prefix order, so each want set is the previous one minus the program
	// gates of the prefix delta — O(M + |gates|) total instead of
	// O(checkpoints · |gates|) repeated prefix scans.
	type job struct {
		cp   checkpoint
		want *swapnet.EdgeSet
	}
	var jobs []job
	want := swapnet.NewEdgeSet(h.problem)
	prev := 0
	for _, cp := range cps {
		for _, g := range h.gates[prev:cp.prefixLen] {
			if g.Kind == circuit.GateZZ || g.Kind == circuit.GateZZSwap {
				want.Remove(g.Tag)
			}
		}
		prev = cp.prefixLen
		if want.Empty() {
			continue
		}
		jobs = append(jobs, job{cp: cp, want: want.Clone()})
	}
	if len(jobs) == 0 {
		return nil, DegradeReason{}, nil
	}

	scores := make([]float64, len(jobs))
	scored := make([]bool, len(jobs))
	timings := make([]CheckpointTiming, len(jobs))
	feedTs := make([]time.Time, len(jobs))
	met := h.rec.tr.Metrics()
	waitHist := met.Histogram("pool.queue_wait_us")
	runHist := met.Histogram("pool.run_us")

	workers := h.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg       sync.WaitGroup
		stopOnce sync.Once
		mu       sync.Mutex
		firstErr error
	)
	stop := make(chan struct{})
	jobCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs.WorkerLabel(h.bud.ctx, w+1, func(context.Context) {
				wspan := h.rec.tr.StartSpan(parent, "worker", obs.Int("worker", w+1))
				wspan.SetLane(w + 1)
				defer wspan.End()
				for i := range jobCh {
					pick := h.rec.clock.Now()
					if berr := h.bud.interrupt(); berr != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = berr
						}
						mu.Unlock()
						stopOnce.Do(func() { close(stop) })
						return
					}
					sp := h.rec.tr.StartSpan(wspan, "predictATA",
						obs.Int("prefix", jobs[i].cp.prefixLen),
						obs.Int("cycle", jobs[i].cp.cycle))
					f, ok := h.scoreCheckpoint(jobs[i].cp, jobs[i].want, cache)
					end := h.rec.clock.Now()
					sp.SetAttrs(obs.F64("cost", f), obs.Bool("scored", ok))
					sp.End()
					wait, run := pick.Sub(feedTs[i]), end.Sub(pick)
					waitHist.Observe(wait.Microseconds())
					runHist.Observe(run.Microseconds())
					timings[i] = CheckpointTiming{
						Prefix: jobs[i].cp.prefixLen, Cycle: jobs[i].cp.cycle,
						Worker: w + 1, Wait: wait, Run: run,
						Cost: f, Scored: ok, Evaluated: true,
					}
					scores[i], scored[i] = f, ok
				}
			})
		}(w)
	}
feed:
	for i := range jobs {
		feedTs[i] = h.rec.clock.Now()
		select {
		case jobCh <- i:
		case <-stop:
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Selection: ascending checkpoint order, strict-less — byte-identical
	// tie-breaking with the serial loop. The timeline keeps the same order,
	// so phase breakdowns are comparable across runs regardless of which
	// worker ran which job.
	bestF := 1.0 // pure greedy: fD/oD = 1 and fidelity ratio = 1
	for i := range jobs {
		if timings[i].Evaluated {
			h.rec.tl.Checkpoints = append(h.rec.tl.Checkpoints, timings[i])
		}
		if !scored[i] {
			continue
		}
		stats.Predictions++
		if scores[i] < bestF {
			bestF = scores[i]
			best = &candidate{cp: jobs[i].cp, f: scores[i]}
		}
	}
	if firstErr != nil {
		if !degradable(firstErr) {
			return nil, DegradeReason{}, firstErr
		}
		dreason = degradeReasonFor("best-so-far", firstErr, stats.Predictions, len(cps), h.bud, h.opts, h.rec)
	}
	return best, dreason, nil
}
