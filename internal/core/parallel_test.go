package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// qasmOf renders a result's circuit so compilations can be compared
// byte-for-byte.
func qasmOf(t *testing.T, res *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := res.Circuit.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// comparableStats strips the fields that legitimately vary across worker
// counts: Elapsed is wall-clock, and the cache hit/miss split depends on
// scheduling (two workers can both miss the same key before either
// publishes it). Everything else — including the selected checkpoint —
// must be identical.
func comparableStats(s Stats) Stats {
	s.Elapsed = 0
	s.CacheHits, s.CacheMisses = 0, 0
	return s
}

// TestParallelDeterminism pins the tentpole contract: for every
// architecture family and workload class, the compiled circuit, the
// governance stats, and the selected checkpoint are byte-identical whether
// the prediction loop runs serially (Workers=1) or fanned out (Workers 2,
// 8) over the shared pattern cache. The suite runs under -race in CI, so
// it doubles as the data-race witness for the cache and the atomic budget.
func TestParallelDeterminism(t *testing.T) {
	const n = 16
	archs := []struct {
		name string
		a    *arch.Arch
	}{
		{"line", arch.Line(n)},
		{"grid", arch.Grid(4, 4)},
		{"heavy-hex", arch.HeavyHexN(n)},
	}
	problems := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-0.1", graph.GnpConnected(n, 0.1, rand.New(rand.NewSource(41)))},
		{"er-0.5", graph.GnpConnected(n, 0.5, rand.New(rand.NewSource(42)))},
		{"er-0.9", graph.GnpConnected(n, 0.9, rand.New(rand.NewSource(43)))},
		{"regular-3", graph.MustRandomRegular(n, 3, rand.New(rand.NewSource(44)))},
	}
	for _, ac := range archs {
		for _, pc := range problems {
			t.Run(fmt.Sprintf("%s/%s", ac.name, pc.name), func(t *testing.T) {
				ref, err := Compile(ac.a, pc.g, Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				refQASM := qasmOf(t, ref)
				for _, workers := range []int{2, 8} {
					res, err := Compile(ac.a, pc.g, Options{Workers: workers})
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if got := qasmOf(t, res); !bytes.Equal(refQASM, got) {
						t.Fatalf("workers=%d: circuit differs from serial compile", workers)
					}
					if res.Source != ref.Source {
						t.Fatalf("workers=%d: source %q != serial %q", workers, res.Source, ref.Source)
					}
					if got, want := comparableStats(res.Stats), comparableStats(ref.Stats); got != want {
						t.Fatalf("workers=%d: stats %+v != serial %+v", workers, got, want)
					}
					if res.Stats.SelectedPrefix != ref.Stats.SelectedPrefix {
						t.Fatalf("workers=%d: selected checkpoint %d != serial %d",
							workers, res.Stats.SelectedPrefix, ref.Stats.SelectedPrefix)
					}
				}
			})
		}
	}
}

// TestParallelDeterminismNoiseAware repeats the pin with a noise model, so
// the fidelity term of the selector (and the per-edge log-fidelity sums of
// the predictor) is covered too.
func TestParallelDeterminismNoiseAware(t *testing.T) {
	a := arch.Grid(4, 4)
	nm := noise.Synthetic(a, 42)
	p := graph.GnpConnected(16, 0.5, rand.New(rand.NewSource(45)))
	ref, err := Compile(a, p, Options{Workers: 1, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(a, p, Options{Workers: 8, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(qasmOf(t, ref), qasmOf(t, res)) {
		t.Fatal("noise-aware parallel compile differs from serial")
	}
	if comparableStats(res.Stats) != comparableStats(ref.Stats) {
		t.Fatalf("stats %+v != %+v", res.Stats, ref.Stats)
	}
}

// TestWorkersDefaulted pins the Options contract: 0 means GOMAXPROCS, and
// the parallel default still matches the explicit serial path.
func TestWorkersDefaulted(t *testing.T) {
	a := arch.Grid(4, 4)
	p := graph.GnpConnected(16, 0.5, rand.New(rand.NewSource(46)))
	ref, err := Compile(a, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(a, p, Options{}) // Workers: 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(qasmOf(t, ref), qasmOf(t, res)) {
		t.Fatalf("defaulted Workers (GOMAXPROCS=%d) output differs from serial", runtime.GOMAXPROCS(0))
	}
}

// TestParallelStarvedBudgetDegrades: exhausting the work budget while the
// fan-out is in flight must ride the degradation ladder down to a
// verifier-clean circuit, never an error or a hang.
func TestParallelStarvedBudgetDegrades(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.4, 3)
	res, err := Compile(a, p, Options{MaxNodes: 1, Workers: 8})
	if err != nil {
		t.Fatalf("expected degraded result, got error: %v", err)
	}
	if !res.Degraded || res.Source != "ata" {
		t.Fatalf("expected degraded pure-ATA result, got degraded=%v source=%q", res.Degraded, res.Source)
	}
	if !strings.Contains(res.DegradeReason.String(), "budget") {
		t.Fatalf("reason should name the budget, got %q", res.DegradeReason.String())
	}
	verifyClean(t, a, p, res)
}

// TestParallelPredictionBudgetKeepsBestSoFar places the budget between the
// end of greedy scheduling and the end of the prediction fan-out: a worker
// observes exhaustion mid-flight, the rest are cancelled, and the selector
// answers from whatever candidates completed.
func TestParallelPredictionBudgetKeepsBestSoFar(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 11)
	initial := make([]int, p.N())
	for i := range initial {
		initial[i] = i
	}
	// Learn the greedy cycle count so the budget lands right after greedy
	// completes: the very first prediction charges push past it, and every
	// worker's next job observes exhaustion mid-fan-out.
	g, err := greedy.Compile(a, p, initial, greedy.Options{Angle: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(a, p, Options{InitialMapping: initial, MaxNodes: g.Cycles + 1, Workers: 8})
	if err != nil {
		t.Fatalf("expected degraded result, got error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected mid-fan-out exhaustion to mark the result degraded")
	}
	if !strings.Contains(res.DegradeReason.String(), "prediction budget exhausted") {
		t.Fatalf("expected the best-so-far rung, got %q", res.DegradeReason.String())
	}
	verifyClean(t, a, p, res)
}

// TestParallelCancellationNoGoroutineLeak cancels the context mid-compile
// with a large worker fan-out and asserts (a) the error is the context's,
// not a degrade, and (b) the worker pool does not leak goroutines. The
// goroutine accounting retries to tolerate unrelated runtime churn.
func TestParallelCancellationNoGoroutineLeak(t *testing.T) {
	a := arch.GridN(64)
	p := testProblem(t, 64, 0.5, 7)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := CompileContext(ctx, a, p, Options{Workers: 8})
		if err == nil {
			t.Fatal("expected an error from a canceled context")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error should wrap context.Canceled, got %v", err)
		}
	}
	// A leaked pool would add 8 goroutines per compile. Allow slack for the
	// runtime's own background churn, with retries for stragglers that are
	// mid-exit when we count.
	for attempt := 0; ; attempt++ {
		after := runtime.NumGoroutine()
		if after <= before+4 {
			break
		}
		if attempt >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelCancellationMidFanOut cancels while workers are actually in
// flight (not before the compile starts), exercising the stop path of the
// pool rather than the up-front interrupt check.
func TestParallelCancellationMidFanOut(t *testing.T) {
	a := arch.GridN(64)
	p := testProblem(t, 64, 0.6, 9)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Let greedy scheduling start, then cancel during prediction.
		time.Sleep(5 * time.Millisecond)
		cancel()
		close(done)
	}()
	res, err := CompileContext(ctx, a, p, Options{Workers: 8})
	<-done
	if err == nil {
		// The compile may legitimately win the race and finish first; it
		// must then be a complete, non-degraded result.
		if res.Degraded {
			t.Fatal("a compile that beat the cancellation must not be degraded")
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled, got %v", err)
	}
	for attempt := 0; ; attempt++ {
		after := runtime.NumGoroutine()
		if after <= before+4 {
			break
		}
		if attempt >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
