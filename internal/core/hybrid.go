package core

import (
	"context"
	"fmt"
	"math"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// checkpoint is a greedy-compilation branch point: the circuit prefix and
// mapping after a cycle in which SWAPs changed the placement.
type checkpoint struct {
	prefixLen int   // gates of the greedy circuit included
	l2p       []int // mapping at that point
	cycle     int   // greedy scheduler cycles consumed
}

// compileHybrid is the full framework of Fig 18: greedy processing with ATA
// pattern prediction at mapping changes, then the compiled-circuits
// selector. The budget governs both phases: an exhausted budget during
// greedy processing falls to the pure-ATA rung of the degradation ladder;
// exhaustion during prediction truncates the candidate pool and selects
// among what was evaluated so far (pure greedy and prefix-0 pure ATA are
// candidates from the start, so a valid circuit always exists).
func compileHybrid(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, bud *budget, rec *recorder) (*Result, error) {
	// --- Greedy processing, recording decimated checkpoints. ---
	var cps []checkpoint
	stride := 1
	gph := rec.phase("greedy")
	var (
		g   *greedy.Result
		err error
	)
	obs.PhaseLabel(bud.ctx, "greedy", func(context.Context) {
		g, err = greedy.Compile(a, problem, initial, greedy.Options{
			Noise:          opts.Noise,
			CrosstalkAware: opts.CrosstalkAware,
			Angle:          opts.Angle,
			Interrupt:      interruptOf(bud),
			Obs:            rec.tr,
			ObsSpan:        gph.span,
			Checkpoint: func(prefixLen int, l2p []int, cycle int) {
				if cycle%stride != 0 {
					return
				}
				cps = append(cps, checkpoint{prefixLen: prefixLen, l2p: l2p, cycle: cycle})
				if len(cps) > 2*opts.MaxPredictions {
					// Decimate: keep every other checkpoint, double the stride.
					kept := cps[:0]
					for i := 0; i < len(cps); i += 2 {
						kept = append(kept, cps[i])
					}
					cps = kept
					stride *= 2
				}
			},
		})
	})
	gph.end()
	if err != nil {
		if degradable(err) {
			cause := fmt.Errorf("greedy scheduling aborted: %w", err)
			return degradeToATA(a, problem, initial, opts,
				degradeReasonFor("pure-ata", cause, -1, 0, bud, opts, rec), rec)
		}
		return nil, err
	}

	// The prefix-0 checkpoint makes the pure ATA solution (cc0) a selector
	// candidate, which is what guarantees Theorem 6.1.
	cps = append([]checkpoint{{prefixLen: 0, l2p: initial, cycle: 0}}, cps...)

	// Prefix sums over the greedy circuit for O(1) per-checkpoint metrics.
	gates := g.Circuit.Gates
	cxPre := make([]int, len(gates)+1)
	lfPre := make([]float64, len(gates)+1)
	for i, gt := range gates {
		cxPre[i+1] = cxPre[i] + gt.Kind.CXCost()
		lf := 0.0
		if opts.Noise != nil && gt.Kind.TwoQubit() {
			lf = float64(gt.Kind.CXCost()) * math.Log1p(-opts.Noise.EdgeError(gt.Q0, gt.Q1))
		}
		lfPre[i+1] = lfPre[i] + lf
	}
	oCycles := g.Cycles
	oCX := cxPre[len(gates)]
	oLF := lfPre[len(gates)]

	// --- ATA pattern prediction per checkpoint (§6.3). ---
	// The loop is governed: the budget is polled before every checkpoint and
	// charged with each prediction's pattern cycles. Exhaustion mid-loop
	// keeps whatever candidates were scored — the "best candidate recorded
	// so far" rung of the degradation ladder. Workers=1 runs the original
	// serial loop uncached; Workers>1 fans the predictions over a pool
	// sharing a pattern cache (parallel.go) with identical scores and
	// tie-breaks, so the selected candidate — and the output circuit — are
	// the same for any worker count under an unbounded budget.
	h := &hybridEval{
		a: a, problem: problem, opts: opts, bud: bud, rec: rec, gates: gates,
		cxPre: cxPre, lfPre: lfPre, oCycles: oCycles, oCX: oCX, oLF: oLF,
	}
	stats := Stats{Checkpoints: len(cps), SelectedPrefix: -1}
	var (
		best    *candidate
		dreason DegradeReason
	)
	// A caller-supplied cache (CompileCached's warm pattern cache) is
	// shared by every engine; otherwise the parallel engine builds its own
	// per-compile cache and the serial engine runs uncached, preserving the
	// historical paths. cs0 snapshots the counters so shared caches report
	// per-compile deltas.
	cache := opts.PatternCache
	if cache == nil && opts.Workers > 1 {
		cache = swapnet.NewPatternCache(0)
	}
	var cs0 swapnet.CacheStats
	if cache != nil {
		cs0 = cache.Stats()
	}
	pph := rec.phase("predict")
	obs.PhaseLabel(bud.ctx, "predict", func(context.Context) {
		if opts.Workers > 1 {
			best, dreason, err = h.predictParallel(cps, &stats, cache, pph.span)
		} else {
			best, dreason, err = h.predictSerial(cps, &stats, cache, pph.span)
		}
	})
	pph.end()
	if err != nil {
		return nil, err
	}

	if best == nil {
		finishCacheStats(&stats, cache, cs0, rec)
		return &Result{Circuit: g.Circuit, Initial: g.Initial, Final: g.Final, Source: "greedy",
			Degraded: !dreason.IsZero(), DegradeReason: dreason, Stats: stats}, nil
	}
	stats.SelectedPrefix = best.cp.prefixLen

	// --- Materialise the winning greedy-prefix + ATA-suffix circuit. ---
	// The parallel engine's cache flows into materialisation: the winning
	// candidate's grid pattern choices were memoised while it was scored, so
	// the ATA suffix replays the recorded decisions instead of re-running
	// the dual prediction.
	mph := rec.phase("materialize")
	b := circuit.NewBuilder(a, problem.N(), initial)
	var mErr error
	obs.PhaseLabel(bud.ctx, "ata", func(context.Context) {
		// Bulk replay: one copy plus a SWAP-folding pass keeps the builder's
		// mapping in lockstep without per-gate dispatch or re-validation —
		// the prefix is verified greedy output, and the assembled circuit is
		// strict-verified again before Compile returns.
		b.ReplayPrefix(gates[:best.cp.prefixLen])
		want := remainingAfterPrefix(problem, gates[:best.cp.prefixLen])
		st := swapnet.NewStateFromMapping(a, best.cp.l2p, want)
		mErr = runATARegionsTraced(st, b, opts.Angle, cache, rec.tr, mph.span)
	})
	mph.end()
	if mErr != nil {
		return nil, mErr
	}
	finishCacheStats(&stats, cache, cs0, rec)
	source := "ata"
	if best.cp.prefixLen > 0 {
		source = "hybrid"
	}
	return &Result{Circuit: b.C, Initial: b.InitialMapping(), Final: b.CurrentMapping(), Source: source,
		Degraded: !dreason.IsZero(), DegradeReason: dreason, Stats: stats}, nil
}

// candidate is a scored selector entry: a checkpoint and its cost F.
type candidate struct {
	cp checkpoint
	f  float64
}

// hybridEval carries the selector context shared by the serial and parallel
// prediction engines: the greedy baseline metrics and the prefix sums that
// make per-checkpoint scoring O(prediction).
type hybridEval struct {
	a       *arch.Arch
	problem *graph.Graph
	opts    Options
	bud     *budget
	rec     *recorder
	gates   []circuit.Gate
	cxPre   []int
	lfPre   []float64
	oCycles int
	oCX     int
	oLF     float64
}

// scoreCheckpoint runs one ATA prediction from cp's mapping over want and
// returns the selector cost F (§6.4), charging the budget with the
// prediction's pattern cycles. ok=false means the pattern declined the
// region (the checkpoint is skipped, matching the historical serial loop).
// The score is independent of the cache's state: a cached grid choice
// replays the same pattern the uncached dual prediction would pick.
func (h *hybridEval) scoreCheckpoint(cp checkpoint, want *swapnet.EdgeSet, c *swapnet.PatternCache) (f float64, ok bool) {
	st := swapnet.NewStateFromMapping(h.a, cp.l2p, want)
	pc, err := predictATA(st, h.opts, c)
	if err != nil {
		return 0, false
	}
	h.bud.charge(pc.cycles)
	cycles := cp.cycle + pc.cycles
	cx := h.cxPre[cp.prefixLen] + pc.cx
	lf := h.lfPre[cp.prefixLen] + pc.logFid
	return selectorCost(h.opts, cycles, h.oCycles, cx, h.oCX, lf, h.oLF), true
}

// predictSerial is the Workers=1 engine: the original governed loop,
// evaluating checkpoints in order (uncached unless a shared cache was
// supplied — cached scores are identical by the scoreCheckpoint
// contract). It doubles as the reference the determinism suite compares
// the parallel engine against.
func (h *hybridEval) predictSerial(cps []checkpoint, stats *Stats, cache *swapnet.PatternCache, parent *obs.Span) (best *candidate, dreason DegradeReason, err error) {
	rec := h.rec
	bestF := 1.0 // pure greedy: fD/oD = 1 and fidelity ratio = 1
	for i := range cps {
		if berr := h.bud.interrupt(); berr != nil {
			if !degradable(berr) {
				return nil, DegradeReason{}, berr
			}
			dreason = degradeReasonFor("best-so-far", berr, i, len(cps), h.bud, h.opts, rec)
			break
		}
		cp := cps[i]
		want := remainingAfterPrefix(h.problem, h.gates[:cp.prefixLen])
		if want.Empty() {
			continue
		}
		sp := rec.tr.StartSpan(parent, "predictATA",
			obs.Int("prefix", cp.prefixLen), obs.Int("cycle", cp.cycle))
		t0 := rec.clock.Now()
		f, ok := h.scoreCheckpoint(cp, want, cache)
		run := rec.clock.Now().Sub(t0)
		sp.SetAttrs(obs.F64("cost", f), obs.Bool("scored", ok))
		sp.End()
		rec.tl.Checkpoints = append(rec.tl.Checkpoints, CheckpointTiming{
			Prefix: cp.prefixLen, Cycle: cp.cycle, Run: run,
			Cost: f, Scored: ok, Evaluated: true,
		})
		if !ok {
			continue
		}
		stats.Predictions++
		if f < bestF {
			bestF = f
			best = &candidate{cp: cp, f: f}
		}
	}
	return best, dreason, nil
}

// finishCacheStats copies this compile's pattern-cache counter deltas
// (relative to the cs0 snapshot taken when the compile began) onto the
// stats and into the trace's metrics registry (nil cache = uncached
// serial path, counters stay zero).
func finishCacheStats(stats *Stats, c *swapnet.PatternCache, cs0 swapnet.CacheStats, rec *recorder) {
	if c == nil {
		return
	}
	cs := c.Stats()
	stats.CacheHits, stats.CacheMisses = cs.Hits-cs0.Hits, cs.Misses-cs0.Misses
	met := rec.tr.Metrics()
	met.Counter("cache.hits").Add(stats.CacheHits)
	met.Counter("cache.misses").Add(stats.CacheMisses)
	met.Counter("cache.evictions").Add(cs.Evictions - cs0.Evictions)
}

// remainingAfterPrefix returns the problem edges not scheduled within the
// given greedy gate prefix.
func remainingAfterPrefix(problem *graph.Graph, prefix []circuit.Gate) *swapnet.EdgeSet {
	want := swapnet.NewEdgeSet(problem)
	for _, g := range prefix {
		if g.Kind == circuit.GateZZ || g.Kind == circuit.GateZZSwap {
			want.Remove(g.Tag)
		}
	}
	return want
}

// prediction aggregates the ATA completion estimate over the detected
// regions: regions are disjoint so their cycle counts run in parallel (max)
// while gate costs add up.
type prediction struct {
	cycles int
	cx     int
	logFid float64
}

func predictATA(st *swapnet.State, opts Options, c *swapnet.PatternCache) (prediction, error) {
	var out prediction
	for _, r := range detectRegions(st, c) {
		var cnt predictCounter
		cnt.opts = &opts
		if err := swapnet.ATAWithCache(st, r, cnt.emit, c); err != nil {
			return out, err
		}
		if cnt.cycles > out.cycles {
			out.cycles = cnt.cycles
		}
		out.cx += cnt.cx
		out.logFid += cnt.logFid
	}
	if !st.Want.Empty() {
		var cnt predictCounter
		cnt.opts = &opts
		if err := swapnet.ATAWithCache(st, arch.FullRegion(st.A), cnt.emit, c); err != nil {
			return out, err
		}
		out.cycles += cnt.cycles
		out.cx += cnt.cx
		out.logFid += cnt.logFid
	}
	return out, nil
}

type predictCounter struct {
	opts   *Options
	cycles int
	cx     int
	logFid float64
}

func (c *predictCounter) emit(s swapnet.Step) {
	c.cycles += s.Depth()
	edgeLF := func(p, q int, n int) {
		if c.opts.Noise != nil {
			c.logFid += float64(n) * math.Log1p(-c.opts.Noise.EdgeError(p, q))
		}
	}
	for _, g := range s.Compute {
		if g.Fused {
			c.cx += 3
			edgeLF(g.P, g.Q, 3)
		} else {
			c.cx += 2
			edgeLF(g.P, g.Q, 2)
		}
	}
	for _, l := range s.Swaps {
		c.cx += 3 * len(l)
		for _, e := range l {
			edgeLF(e.U, e.V, 3)
		}
	}
}

// selectorCost is the cost F of §6.4: alpha weighs normalised depth, and
// (1-alpha) a fidelity ratio — log-fidelity ratio under a noise model,
// CX-count ratio otherwise. Smaller is better; pure greedy scores exactly 1.
func selectorCost(opts Options, cycles, oCycles, cx, oCX int, lf, oLF float64) float64 {
	if oCycles == 0 {
		oCycles = 1
	}
	depthTerm := float64(cycles) / float64(oCycles)
	var fidTerm float64
	if opts.Noise != nil && oLF < 0 {
		fidTerm = lf / oLF // both negative; <1 means candidate loses less fidelity
	} else {
		if oCX == 0 {
			oCX = 1
		}
		fidTerm = float64(cx) / float64(oCX)
	}
	return opts.Alpha*depthTerm + (1-opts.Alpha)*fidTerm
}
