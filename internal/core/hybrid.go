package core

import (
	"fmt"
	"math"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// checkpoint is a greedy-compilation branch point: the circuit prefix and
// mapping after a cycle in which SWAPs changed the placement.
type checkpoint struct {
	prefixLen int   // gates of the greedy circuit included
	l2p       []int // mapping at that point
	cycle     int   // greedy scheduler cycles consumed
}

// compileHybrid is the full framework of Fig 18: greedy processing with ATA
// pattern prediction at mapping changes, then the compiled-circuits
// selector. The budget governs both phases: an exhausted budget during
// greedy processing falls to the pure-ATA rung of the degradation ladder;
// exhaustion during prediction truncates the candidate pool and selects
// among what was evaluated so far (pure greedy and prefix-0 pure ATA are
// candidates from the start, so a valid circuit always exists).
func compileHybrid(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, bud *budget) (*Result, error) {
	// --- Greedy processing, recording decimated checkpoints. ---
	var cps []checkpoint
	stride := 1
	g, err := greedy.Compile(a, problem, initial, greedy.Options{
		Noise:          opts.Noise,
		CrosstalkAware: opts.CrosstalkAware,
		Angle:          opts.Angle,
		Interrupt:      interruptOf(bud),
		Checkpoint: func(prefixLen int, l2p []int, cycle int) {
			if cycle%stride != 0 {
				return
			}
			cps = append(cps, checkpoint{prefixLen: prefixLen, l2p: l2p, cycle: cycle})
			if len(cps) > 2*opts.MaxPredictions {
				// Decimate: keep every other checkpoint, double the stride.
				kept := cps[:0]
				for i := 0; i < len(cps); i += 2 {
					kept = append(kept, cps[i])
				}
				cps = kept
				stride *= 2
			}
		},
	})
	if err != nil {
		if degradable(err) {
			return degradeToATA(a, problem, initial, opts, fmt.Errorf("greedy scheduling aborted: %w", err))
		}
		return nil, err
	}

	// The prefix-0 checkpoint makes the pure ATA solution (cc0) a selector
	// candidate, which is what guarantees Theorem 6.1.
	cps = append([]checkpoint{{prefixLen: 0, l2p: initial, cycle: 0}}, cps...)

	// Prefix sums over the greedy circuit for O(1) per-checkpoint metrics.
	gates := g.Circuit.Gates
	cxPre := make([]int, len(gates)+1)
	lfPre := make([]float64, len(gates)+1)
	for i, gt := range gates {
		cxPre[i+1] = cxPre[i] + gt.Kind.CXCost()
		lf := 0.0
		if opts.Noise != nil && gt.Kind.TwoQubit() {
			lf = float64(gt.Kind.CXCost()) * math.Log1p(-opts.Noise.EdgeError(gt.Q0, gt.Q1))
		}
		lfPre[i+1] = lfPre[i] + lf
	}
	oCycles := g.Cycles
	oCX := cxPre[len(gates)]
	oLF := lfPre[len(gates)]

	// --- ATA pattern prediction per checkpoint (§6.3). ---
	// The loop is governed: the budget is polled before every checkpoint and
	// charged with each prediction's pattern cycles. Exhaustion mid-loop
	// keeps whatever candidates were scored — the "best candidate recorded
	// so far" rung of the degradation ladder.
	type candidate struct {
		cp     checkpoint
		f      float64
		hybrid bool
	}
	stats := Stats{Checkpoints: len(cps)}
	degradeReason := ""
	bestF := 1.0 // pure greedy: fD/oD = 1 and fidelity ratio = 1
	var best *candidate
	for i := range cps {
		if berr := bud.interrupt(); berr != nil {
			if !degradable(berr) {
				return nil, berr
			}
			degradeReason = fmt.Sprintf(
				"prediction budget exhausted after %d/%d checkpoints (%v); selected best candidate so far",
				i, len(cps), berr)
			break
		}
		cp := cps[i]
		want := remainingAfterPrefix(problem, gates[:cp.prefixLen])
		if want.Empty() {
			continue
		}
		st := swapnet.NewStateFromMapping(a, cp.l2p, want)
		pc, perr := predictATA(st, opts)
		if perr != nil {
			continue
		}
		stats.Predictions++
		bud.charge(pc.cycles)
		cycles := cp.cycle + pc.cycles
		cx := cxPre[cp.prefixLen] + pc.cx
		lf := lfPre[cp.prefixLen] + pc.logFid
		f := selectorCost(opts, cycles, oCycles, cx, oCX, lf, oLF)
		if f < bestF {
			bestF = f
			best = &candidate{cp: cp, f: f, hybrid: true}
		}
	}

	if best == nil {
		return &Result{Circuit: g.Circuit, Initial: g.Initial, Final: g.Final, Source: "greedy",
			Degraded: degradeReason != "", DegradeReason: degradeReason, Stats: stats}, nil
	}

	// --- Materialise the winning greedy-prefix + ATA-suffix circuit. ---
	b := circuit.NewBuilder(a, problem.N(), initial)
	for _, gt := range gates[:best.cp.prefixLen] {
		switch gt.Kind {
		case circuit.GateZZ:
			b.ZZ(gt.Q0, gt.Q1, gt.Angle, gt.Tag)
		case circuit.GateSwap:
			b.Swap(gt.Q0, gt.Q1)
		case circuit.GateZZSwap:
			// Must go through the builder so its mapping stays in lockstep
			// — a raw Append would leave the claimed final mapping stale.
			b.ZZSwap(gt.Q0, gt.Q1, gt.Angle, gt.Tag)
		default:
			b.C.Append(gt)
		}
	}
	want := remainingAfterPrefix(problem, gates[:best.cp.prefixLen])
	st := swapnet.NewStateFromMapping(a, best.cp.l2p, want)
	if err := runATARegions(st, b, opts.Angle); err != nil {
		return nil, err
	}
	source := "ata"
	if best.cp.prefixLen > 0 {
		source = "hybrid"
	}
	return &Result{Circuit: b.C, Initial: b.InitialMapping(), Final: b.CurrentMapping(), Source: source,
		Degraded: degradeReason != "", DegradeReason: degradeReason, Stats: stats}, nil
}

// remainingAfterPrefix returns the problem edges not scheduled within the
// given greedy gate prefix.
func remainingAfterPrefix(problem *graph.Graph, prefix []circuit.Gate) *swapnet.EdgeSet {
	want := swapnet.NewEdgeSet(problem)
	for _, g := range prefix {
		if g.Kind == circuit.GateZZ || g.Kind == circuit.GateZZSwap {
			want.Remove(g.Tag)
		}
	}
	return want
}

// prediction aggregates the ATA completion estimate over the detected
// regions: regions are disjoint so their cycle counts run in parallel (max)
// while gate costs add up.
type prediction struct {
	cycles int
	cx     int
	logFid float64
}

func predictATA(st *swapnet.State, opts Options) (prediction, error) {
	var out prediction
	for _, r := range detectRegions(st) {
		var cnt predictCounter
		cnt.opts = &opts
		if err := swapnet.ATA(st, r, cnt.emit); err != nil {
			return out, err
		}
		if cnt.cycles > out.cycles {
			out.cycles = cnt.cycles
		}
		out.cx += cnt.cx
		out.logFid += cnt.logFid
	}
	if !st.Want.Empty() {
		var cnt predictCounter
		cnt.opts = &opts
		if err := swapnet.ATA(st, arch.FullRegion(st.A), cnt.emit); err != nil {
			return out, err
		}
		out.cycles += cnt.cycles
		out.cx += cnt.cx
		out.logFid += cnt.logFid
	}
	return out, nil
}

type predictCounter struct {
	opts   *Options
	cycles int
	cx     int
	logFid float64
}

func (c *predictCounter) emit(s swapnet.Step) {
	c.cycles += s.Depth()
	edgeLF := func(p, q int, n int) {
		if c.opts.Noise != nil {
			c.logFid += float64(n) * math.Log1p(-c.opts.Noise.EdgeError(p, q))
		}
	}
	for _, g := range s.Compute {
		if g.Fused {
			c.cx += 3
			edgeLF(g.P, g.Q, 3)
		} else {
			c.cx += 2
			edgeLF(g.P, g.Q, 2)
		}
	}
	for _, l := range s.Swaps {
		c.cx += 3 * len(l)
		for _, e := range l {
			edgeLF(e.U, e.V, 3)
		}
	}
}

// selectorCost is the cost F of §6.4: alpha weighs normalised depth, and
// (1-alpha) a fidelity ratio — log-fidelity ratio under a noise model,
// CX-count ratio otherwise. Smaller is better; pure greedy scores exactly 1.
func selectorCost(opts Options, cycles, oCycles, cx, oCX int, lf, oLF float64) float64 {
	if oCycles == 0 {
		oCycles = 1
	}
	depthTerm := float64(cycles) / float64(oCycles)
	var fidTerm float64
	if opts.Noise != nil && oLF < 0 {
		fidTerm = lf / oLF // both negative; <1 means candidate loses less fidelity
	} else {
		if oCX == 0 {
			oCX = 1
		}
		fidTerm = float64(cx) / float64(oCX)
	}
	return opts.Alpha*depthTerm + (1-opts.Alpha)*fidTerm
}
