package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/swapnet"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// Cache is the compilation cache CompileCached consults: a two-tier
// (memory + optional disk) result store keyed by canonical problem
// identity, plus a pattern cache shared across every compile it serves —
// warm-start state the ataqc-warm sweeper can preload.
//
// The correctness contract, in two parts:
//
//   - Identity. A result entry is keyed by (architecture fingerprint,
//     canonical problem-graph hash, options digest). The canonical hash
//     covers the full canonical edge list, so two requests share an
//     entry only when their problem graphs are isomorphic and their
//     semantically relevant options match. The stored record lives in
//     the problem's CANONICAL frame; every hit is translated back
//     through the requesting graph's own canonical permutation, so a
//     relabeled resubmission gets a circuit valid for ITS labeling.
//     For a byte-identical resubmission the translation is the exact
//     inverse of the one applied at store time: the served result is
//     byte-for-byte the one a fresh compile would produce.
//
//   - Trust. Cache entries are inputs, not gospel: every hit is
//     rehydrated defensively (bounds-checked) and must pass the same
//     error-severity verifier pass a fresh compile must pass. Any
//     decode or verification failure counts as a corruption and falls
//     through to a fresh compile — a damaged cache can cost time,
//     never correctness.
type Cache struct {
	store    *cachestore.Tiered
	patterns *swapnet.PatternCache
	corrupt  atomic.Int64
	putFails atomic.Int64
	// warmed records architecture fingerprints whose persisted pattern
	// records have been pulled into the pattern cache (once per arch).
	warmed sync.Map
}

// NewCache wraps a tiered result store (nil = no result caching, the
// pattern cache still warms across compiles) with a fresh shared pattern
// cache.
func NewCache(store *cachestore.Tiered) *Cache {
	return &Cache{store: store, patterns: swapnet.NewPatternCache(0)}
}

// Patterns exposes the shared pattern cache (for warm-start preloading).
func (c *Cache) Patterns() *swapnet.PatternCache { return c.patterns }

// Store exposes the tiered result store (nil when result caching is off).
func (c *Cache) Store() *cachestore.Tiered { return c.store }

// Close closes the underlying disk store, if any.
func (c *Cache) Close() error {
	if c.store == nil {
		return nil
	}
	return c.store.Close()
}

// CacheStats snapshots every layer of a compilation cache.
type CacheStats struct {
	// Result is the two-tier result store's counters.
	Result cachestore.TieredStats
	// Corrupt counts served entries rejected at rehydration or
	// verification (the disk store's own checksum rejections are counted
	// in Result.Disk.Corrupt).
	Corrupt int64
	// PutFailures counts results that could not be persisted to disk
	// (the memory tier still accepted them).
	PutFailures int64
	// Patterns is the shared pattern cache's counters.
	Patterns swapnet.CacheStats
}

// Stats snapshots the cache.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Corrupt:     c.corrupt.Load(),
		PutFailures: c.putFails.Load(),
		Patterns:    c.patterns.Stats(),
	}
	if c.store != nil {
		s.Result = c.store.Stats()
	}
	return s
}

// CompileCached is CompileContext through a compilation cache. On a hit
// the stored circuit is translated into the request's frame, strictly
// verified, and returned with Stats.CacheTier naming the tier that
// answered; on a miss it compiles (sharing cache.Patterns() across the
// prediction and materialisation engines) and persists the result.
//
// Bypasses — requests that go straight to CompileContext, uncached:
//
//   - nil cache;
//   - an explicit Options.InitialMapping (the mapping is an input the
//     canonical problem hash does not cover);
//
// and Degraded results are never stored: which degradation rung answered
// depends on wall-clock and load, not on the problem, so caching one
// would replay an unlucky compile forever.
func CompileCached(ctx context.Context, a *arch.Arch, problem *graph.Graph, opts Options, cache *Cache) (*Result, error) {
	if cache == nil || opts.InitialMapping != nil {
		return CompileContext(ctx, a, problem, opts)
	}
	opts.applyDefaults()
	opts.PatternCache = cache.patterns
	if cache.store == nil {
		return CompileContext(ctx, a, problem, opts)
	}
	cache.ensureWarm(a)

	rec := newRecorder(opts.Trace)
	start := rec.clock.Now()
	perm, hash := graph.CanonicalForm(problem)
	key := cachestore.ResultKey(a.Fingerprint(), hash, optionsDigest(a, &opts))

	if payload, tier, ok := cache.store.Get(key); ok {
		res, err := rehydrate(payload, perm, a, problem, opts)
		if err == nil {
			res.Stats.CacheTier = string(tier)
			elapsed := rec.clock.Now().Sub(start)
			res.Stats.Elapsed = elapsed
			res.Metrics.CompileTime = elapsed
			return res, nil
		}
		cache.corrupt.Add(1)
		// Fall through: a damaged or stale entry is a miss, never an error.
	}

	res, err := CompileContext(ctx, a, problem, opts)
	if err != nil || res.Degraded {
		return res, err
	}
	if putErr := cache.store.Put(key, cachestore.EncodeResult(toCanonicalRecord(res, perm, problem.N()))); putErr != nil {
		cache.putFails.Add(1)
	}
	return res, err
}

// ensureWarm pulls a's persisted pattern records into the pattern cache,
// at most once per architecture fingerprint for the cache's lifetime.
// This is how ataqc-warm's precomputation reaches a compile: the sweeper
// writes pattern records to the disk store, and the first compile that
// sees the architecture installs them.
func (c *Cache) ensureWarm(a *arch.Arch) {
	fp := a.Fingerprint()
	if _, done := c.warmed.LoadOrStore(fp, struct{}{}); done {
		return
	}
	c.loadPatterns(fp)
}

// PreloadPatterns eagerly loads a's persisted pattern records, returning
// how many were installed. CompileCached does this lazily on the first
// compile per architecture; the method exists for callers that want the
// cost paid up front (daemon start-up, benchmarks).
func (c *Cache) PreloadPatterns(a *arch.Arch) int {
	if c.store == nil {
		return 0
	}
	fp := a.Fingerprint()
	c.warmed.Store(fp, struct{}{})
	return c.loadPatterns(fp)
}

// loadPatterns decodes every disk-tier pattern record keyed to fp and
// installs it. Pattern geometry is structural (derived from the
// architecture alone, checksummed on disk, first-install-wins in the
// pattern cache), so unlike result records it needs no per-use
// re-verification; a record that fails to decode counts as corrupt and
// is skipped.
func (c *Cache) loadPatterns(fp uint64) int {
	disk := c.store.Disk()
	if disk == nil {
		return 0
	}
	installed := 0
	for _, k := range disk.Keys(cachestore.KindPattern, fp) {
		payload, ok := disk.Get(k)
		if !ok {
			continue
		}
		rec, err := cachestore.DecodePattern(payload)
		if err != nil {
			c.corrupt.Add(1)
			continue
		}
		c.patterns.PreloadRegion(fp, rec)
		installed++
	}
	return installed
}

// optionsDigest hashes the options that change the compiled circuit.
// Budget and observability knobs — Deadline, MaxNodes, Workers, Verify,
// Trace, PatternCache — are deliberately excluded: they change how long
// a compile may take or what is recorded about it, never its output (a
// budget that actually intervenes produces a Degraded result, which is
// never stored). opts must already have defaults applied, so the
// zero-value and explicit-default spellings of an option digest alike.
func optionsDigest(a *arch.Arch, opts *Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(uint64(opts.Mode))
	w(math.Float64bits(opts.Angle))
	w(math.Float64bits(opts.Alpha))
	w(uint64(opts.MaxPredictions))
	if opts.CrosstalkAware {
		w(1)
	} else {
		w(0)
	}
	if opts.Noise == nil {
		w(0)
		return h.Sum64()
	}
	w(1)
	w(noiseDigest(a, opts.Noise))
	return h.Sum64()
}

// noiseDigest hashes a model's content. Edge rates are visited in the
// architecture's deterministic edge order (never by map iteration), with
// the map's size folded in so entries outside the coupling graph still
// perturb the digest.
func noiseDigest(a *arch.Arch, m *noise.Model) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(uint64(len(m.TwoQubit)))
	for _, e := range a.G.Edges() {
		w(uint64(e.U)<<32 | uint64(uint32(e.V)))
		w(math.Float64bits(m.TwoQubit[e]))
	}
	w(uint64(len(m.SingleQubit)))
	for _, v := range m.SingleQubit {
		w(math.Float64bits(v))
	}
	w(uint64(len(m.Readout)))
	for _, v := range m.Readout {
		w(math.Float64bits(v))
	}
	w(math.Float64bits(m.IdlePerCycle))
	w(math.Float64bits(m.CrosstalkFactor))
	return h.Sum64()
}

// toCanonicalRecord rewrites a compile result into the problem's
// canonical frame: logical indices (initial/final mapping slots, gate
// tags) go through perm, physical operands are architecture-frame and
// stay as they are.
func toCanonicalRecord(res *Result, perm []int, n int) *cachestore.ResultRecord {
	rec := &cachestore.ResultRecord{
		Source:         res.Source,
		NQubits:        n,
		SelectedPrefix: res.Stats.SelectedPrefix,
		Initial:        make([]int, n),
		Final:          make([]int, n),
		Gates:          make([]cachestore.GateRecord, len(res.Circuit.Gates)),
	}
	for l := 0; l < n; l++ {
		rec.Initial[perm[l]] = res.Initial[l]
		rec.Final[perm[l]] = res.Final[l]
	}
	for i, g := range res.Circuit.Gates {
		gr := cachestore.GateRecord{
			Kind: int(g.Kind), Q0: g.Q0, Q1: g.Q1, Angle: g.Angle, Tagged: g.Tagged,
		}
		if g.Tagged {
			cu, cv := perm[g.Tag.U], perm[g.Tag.V]
			if cu > cv {
				cu, cv = cv, cu
			}
			gr.TagU, gr.TagV = cu, cv
		}
		rec.Gates[i] = gr
	}
	return rec
}

// rehydrate decodes a canonical-frame record and translates it into the
// requesting problem's frame through the inverse of its canonical
// permutation, then runs the same error-severity verifier pass a fresh
// compile must clear. Every field is bounds-checked first: the record is
// untrusted input and must never panic the caller.
func rehydrate(payload []byte, perm []int, a *arch.Arch, problem *graph.Graph, opts Options) (*Result, error) {
	rec, err := cachestore.DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	n := problem.N()
	if rec.Degraded || rec.NQubits != n || len(rec.Initial) != n || len(rec.Final) != n {
		return nil, fmt.Errorf("core: cached record shape mismatch (n=%d)", rec.NQubits)
	}
	inv := make([]int, n)
	for l, c := range perm {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("core: canonical permutation out of range")
		}
		inv[c] = l
	}
	initial := make([]int, n)
	final := make([]int, n)
	for l := 0; l < n; l++ {
		initial[l] = rec.Initial[perm[l]]
		final[l] = rec.Final[perm[l]]
	}
	c := circuit.New(a.N())
	c.Gates = make([]circuit.Gate, len(rec.Gates))
	for i, gr := range rec.Gates {
		k := circuit.Kind(gr.Kind)
		if k < 0 || k > circuit.GateZZSwap {
			return nil, fmt.Errorf("core: cached gate %d has unknown kind %d", i, gr.Kind)
		}
		if gr.Q0 < 0 || gr.Q0 >= a.N() {
			return nil, fmt.Errorf("core: cached gate %d operand out of range", i)
		}
		if k.TwoQubit() && (gr.Q1 < 0 || gr.Q1 >= a.N() || gr.Q1 == gr.Q0) {
			return nil, fmt.Errorf("core: cached gate %d second operand out of range", i)
		}
		g := circuit.Gate{Kind: k, Q0: gr.Q0, Q1: gr.Q1, Angle: gr.Angle, Tagged: gr.Tagged}
		if gr.Tagged {
			if gr.TagU < 0 || gr.TagU >= n || gr.TagV < 0 || gr.TagV >= n {
				return nil, fmt.Errorf("core: cached gate %d tag out of range", i)
			}
			g.Tag = graph.NewEdge(inv[gr.TagU], inv[gr.TagV])
		}
		c.Gates[i] = g
	}

	res := &Result{
		Circuit: c,
		Initial: initial,
		Final:   final,
		Source:  rec.Source,
		Metrics: Measure(c, opts.Noise),
	}
	res.Stats.SelectedPrefix = rec.SelectedPrefix
	pass := &verify.Pass{
		Circuit:       c,
		Arch:          a,
		Problem:       problem,
		Initial:       initial,
		Final:         final,
		ReportedDepth: res.Metrics.Depth,
		CheckDepth:    true,
		Angle:         opts.Angle,
	}
	analyzers := verify.Strict
	if opts.Verify {
		analyzers = verify.All
	}
	diags := verify.Run(pass, analyzers...)
	if opts.Verify {
		res.Diagnostics = diags
	}
	if vErr := verify.AsError(diags); vErr != nil {
		return nil, fmt.Errorf("core: cached circuit failed verification: %w", vErr)
	}
	return res, nil
}
