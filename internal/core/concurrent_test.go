package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// TestConcurrentCompilesShareArchAndNoise proves the compiler treats the
// architecture and the noise model as read-only: many simultaneous
// CompileContext calls share one *arch.Arch (including its lazily-built
// distance cache) and one *noise.Model. Run under -race (CI does) this
// fails on any hidden mutation.
func TestConcurrentCompilesShareArchAndNoise(t *testing.T) {
	a := arch.GridN(36)
	a.Distances() // materialize the cache before the fan-out; Distances itself is not synchronized
	nm := noise.Synthetic(a, 42)

	modes := []Mode{ModeHybrid, ModeGreedy, ModeATA}
	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			p := graph.GnpConnected(36, 0.3, rng)
			opts := Options{Mode: modes[w%len(modes)], Noise: nm, Verify: true}
			if w%4 == 0 {
				// Mix governed compiles in: budget bookkeeping is
				// per-compilation state and must not leak across calls.
				opts.Deadline = 50 * time.Millisecond
			}
			if _, err := CompileContext(context.Background(), a, p, opts); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent compile failed: %v", err)
	}
}
