package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// Phase is one named, timed segment of the compile pipeline (place, greedy,
// predict, materialize, ata, verify).
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"durationNs"`
}

// CheckpointTiming is the per-checkpoint telemetry of the hybrid prediction
// loop: which worker ran the prediction, how long the job waited in the
// pool's queue versus ran, and the selector cost it produced.
type CheckpointTiming struct {
	// Prefix and Cycle identify the checkpoint (see Stats.SelectedPrefix).
	Prefix int `json:"prefix"`
	Cycle  int `json:"cycle"`
	// Worker is the 1-based pool worker that ran the prediction; 0 means
	// the serial (Workers=1) engine.
	Worker int `json:"worker"`
	// Wait is the queue time between the job being fed to the pool and a
	// worker picking it up (always 0 in the serial engine); Run is the
	// prediction's own duration.
	Wait time.Duration `json:"waitNs"`
	Run  time.Duration `json:"runNs"`
	// Cost is the selector cost F the prediction produced; meaningful only
	// when Scored. Evaluated means the prediction ran at all (a pattern may
	// decline a region, leaving Evaluated && !Scored).
	Cost      float64 `json:"cost"`
	Scored    bool    `json:"scored"`
	Evaluated bool    `json:"evaluated"`
}

// Timeline is the compact phase breakdown attached to every Result — cheap
// enough to collect unconditionally (a few clock reads per phase and
// checkpoint), so benchmarks report where compile time went without a full
// trace.
type Timeline struct {
	Phases      []Phase            `json:"phases"`
	Checkpoints []CheckpointTiming `json:"checkpoints,omitempty"`
	// Winner mirrors Result.Source: which candidate the selector picked.
	Winner string `json:"winner"`
}

// PhaseDuration returns the duration of the named phase (0 when absent).
func (t *Timeline) PhaseDuration(name string) time.Duration {
	for _, p := range t.Phases {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// recorder bundles one compilation's observability plumbing: the trace
// (nil when tracing is disabled — every obs call below is nil-safe), the
// clock that spans, governance, and the timeline all share, the root span,
// and the always-collected Timeline.
type recorder struct {
	tr    *obs.Trace
	clock obs.Clock
	root  *obs.Span
	tl    Timeline
}

func newRecorder(tr *obs.Trace) *recorder {
	return &recorder{tr: tr, clock: obs.ClockOf(tr)}
}

// phaseHandle is an open phase: end() closes its span and appends the
// timeline entry.
type phaseHandle struct {
	rec   *recorder
	name  string
	span  *obs.Span
	start time.Time
}

func (r *recorder) phase(name string) *phaseHandle {
	return &phaseHandle{rec: r, name: name, span: r.tr.StartSpan(r.root, name), start: r.clock.Now()}
}

func (p *phaseHandle) end() {
	p.span.End()
	p.rec.tl.Phases = append(p.rec.tl.Phases, Phase{Name: p.name, Duration: p.rec.clock.Now().Sub(p.start)})
}

// DegradeReason is the structured degradation breadcrumb: which budget
// tripped, which rung of the ladder answered, and where the compile stood
// when it happened. The zero value means "not degraded".
type DegradeReason struct {
	// Budget names the limit that tripped: "deadline" (wall clock),
	// "max-nodes" (work budget), "stall" (greedy made no progress), or
	// "interrupt".
	Budget string `json:"budget"`
	// Rung is the ladder rung that answered: "best-so-far" (selection over
	// the candidates scored before exhaustion) or "pure-ata" (the Theorem
	// 6.1 linear-depth floor).
	Rung string `json:"rung"`
	// Checkpoint is how many prediction checkpoints had been evaluated when
	// the budget tripped; -1 when the trip preceded prediction entirely.
	Checkpoint int `json:"checkpoint"`
	// Checkpoints is the total selector candidates that existed.
	Checkpoints int `json:"checkpoints"`
	// WorkUnits is the governed work spent at the trip point, and MaxNodes /
	// Deadline echo the configured budgets (0 = unbounded) so the breadcrumb
	// records the triggering values, not just their names.
	WorkUnits int64         `json:"workUnits"`
	MaxNodes  int           `json:"maxNodes"`
	Deadline  time.Duration `json:"deadlineNs"`
	// Cause is the text of the underlying budget error.
	Cause string `json:"cause"`
}

// IsZero reports whether the compile degraded at all.
func (d DegradeReason) IsZero() bool { return d.Rung == "" }

// String renders the historical human-readable reason.
func (d DegradeReason) String() string {
	switch d.Rung {
	case "":
		return ""
	case "pure-ata":
		return fmt.Sprintf("%s; degraded to pure ATA (linear-depth floor, Theorem 6.1)", d.Cause)
	default:
		return fmt.Sprintf(
			"prediction budget exhausted after %d/%d checkpoints (%s); selected best candidate so far",
			d.Checkpoint, d.Checkpoints, d.Cause)
	}
}

// classifyBudget maps a degradable error onto the budget that tripped.
func classifyBudget(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrBudgetExhausted):
		return "max-nodes"
	case errors.Is(err, greedy.ErrNoProgress):
		return "stall"
	case errors.Is(err, greedy.ErrInterrupted):
		return "interrupt"
	default:
		return "other"
	}
}

// degradeReasonFor assembles the breadcrumb and emits it as an obs event,
// so traces show the exact moment (and trigger values) of every ladder
// transition.
func degradeReasonFor(rung string, cause error, evaluated, total int, bud *budget, opts Options, rec *recorder) DegradeReason {
	d := DegradeReason{
		Budget:      classifyBudget(cause),
		Rung:        rung,
		Checkpoint:  evaluated,
		Checkpoints: total,
		WorkUnits:   bud.spent(),
		MaxNodes:    opts.MaxNodes,
		Deadline:    opts.Deadline,
		Cause:       cause.Error(),
	}
	rec.tr.Event(rec.root, "degrade",
		obs.Str("budget", d.Budget),
		obs.Str("rung", d.Rung),
		obs.Int("checkpoint", d.Checkpoint),
		obs.Int("checkpoints", d.Checkpoints),
		obs.I64("work_units", d.WorkUnits),
		obs.Int("max_nodes", d.MaxNodes),
		obs.Dur("deadline", d.Deadline),
		obs.Str("cause", d.Cause))
	return d
}
