package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// ErrBudgetExhausted reports that Options.MaxNodes was spent before the
// compilation finished. The hybrid compiler converts it into a degraded
// result (Theorem 6.1 fallback) rather than surfacing it; it escapes only
// from modes with nothing to degrade to.
var ErrBudgetExhausted = errors.New("core: compile budget exhausted")

// ErrInternal wraps a panic recovered at the Compile boundary: an internal
// invariant was violated. The wrapped message carries the panic value and
// stack so the failure is diagnosable without killing the caller.
var ErrInternal = errors.New("core: internal compiler error")

// budget polices the resource limits of one compilation: the caller's
// context (cancellation and deadline), the Options.Deadline wall-clock
// budget, and the Options.MaxNodes work budget. All checks are pull-based:
// the governed loops call spend/interrupt at coarse checkpoints, so an
// unbounded budget adds no overhead beyond a few comparisons per cycle.
// The node counter is atomic so the hybrid compiler's concurrent prediction
// workers can charge one shared budget: exhaustion observed by any worker
// cancels the rest of the fan-out while the completed candidates remain
// usable (the best-so-far rung of the degradation ladder).
type budget struct {
	ctx      context.Context
	clock    obs.Clock // the compile's clock: wall-clock checks and Stats.Elapsed share it
	deadline time.Time // zero when unbounded
	maxNodes int64     // 0 = unbounded
	nodes    atomic.Int64
}

func newBudget(ctx context.Context, start time.Time, opts Options, clock obs.Clock) *budget {
	if clock == nil {
		clock = obs.SystemClock
	}
	b := &budget{ctx: ctx, clock: clock, maxNodes: int64(opts.MaxNodes)}
	if opts.Deadline > 0 {
		b.deadline = start.Add(opts.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (b.deadline.IsZero() || d.Before(b.deadline)) {
		b.deadline = d
	}
	return b
}

// spend charges n work units and returns a non-nil error once any limit is
// exceeded: the context's error for cancellation, a DeadlineExceeded-
// wrapping error for wall-clock exhaustion, ErrBudgetExhausted for the node
// budget.
func (b *budget) spend(n int) error {
	b.nodes.Add(int64(n))
	return b.interrupt()
}

// charge records n work units without checking limits — callers that poll
// via interrupt at loop heads use it to account for completed work. Safe
// from concurrent workers.
func (b *budget) charge(n int) { b.nodes.Add(int64(n)) }

// spent returns the work units charged so far.
func (b *budget) spent() int64 { return b.nodes.Load() }

// interrupt checks the limits without charging work.
func (b *budget) interrupt() error {
	if err := b.ctx.Err(); err != nil {
		return fmt.Errorf("core: compile interrupted: %w", err)
	}
	if !b.deadline.IsZero() && b.clock.Now().After(b.deadline) {
		return fmt.Errorf("core: compile deadline passed: %w", context.DeadlineExceeded)
	}
	if n := b.nodes.Load(); b.maxNodes > 0 && n > b.maxNodes {
		return fmt.Errorf("%w (%d work units > %d)", ErrBudgetExhausted, n, b.maxNodes)
	}
	return nil
}

// degradable reports whether err is a budget-class failure the compiler may
// answer with the degradation ladder instead of an error: wall-clock or
// node-budget exhaustion, or the greedy scheduler giving up (its cycle cap
// or an interrupt it absorbed). Explicit context cancellation is NOT
// degradable — a canceled caller does not want a fallback circuit — and
// neither is any correctness failure.
func degradable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, greedy.ErrNoProgress) ||
		errors.Is(err, greedy.ErrInterrupted)
}
