package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// cachedDiffArchs mirrors the greedy differential suite's architecture
// axis: degenerate line, dense grid, sparse heavy-hex.
func cachedDiffArchs() []*arch.Arch {
	return []*arch.Arch{arch.Line(16), arch.Grid(4, 5), arch.HeavyHex(2, 8)}
}

func cachedLattice(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

func cachedDiffProblem(family string, a *arch.Arch, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := a.N()
	if n > 16 {
		n = 16
	}
	switch family {
	case "er-0.2":
		return graph.GnpConnected(n, 0.2, rng)
	case "er-0.5":
		return graph.GnpConnected(n, 0.5, rng)
	case "er-0.8":
		return graph.GnpConnected(n, 0.8, rng)
	case "regular-3":
		if n%2 == 1 {
			n--
		}
		return graph.MustRandomRegular(n, 3, rng)
	case "lattice":
		rows := 2 + int(seed%2)
		cols := n / rows
		if cols < 2 {
			cols = 2
		}
		return cachedLattice(rows, cols)
	}
	panic("unknown family " + family)
}

func cachedDiffOptions(a *arch.Arch, seed int64) Options {
	opts := Options{Workers: 1}
	switch seed % 4 {
	case 1:
		opts.Noise = noise.Synthetic(a, seed)
	case 2:
		opts.CrosstalkAware = true
	case 3:
		opts.Noise = noise.Synthetic(a, seed)
		opts.CrosstalkAware = true
	}
	if seed%3 == 1 {
		opts.Angle = 0.37
	}
	return opts
}

// assertSameResult fails unless got is byte-identical to want in every
// output field a caller can act on (gates, mappings, provenance).
func assertSameResult(t *testing.T, name, phase string, want, got *Result) {
	t.Helper()
	if len(got.Circuit.Gates) != len(want.Circuit.Gates) {
		t.Fatalf("%s %s: gate count %d != %d", name, phase, len(got.Circuit.Gates), len(want.Circuit.Gates))
	}
	for i := range want.Circuit.Gates {
		if got.Circuit.Gates[i] != want.Circuit.Gates[i] {
			t.Fatalf("%s %s: gate %d differs:\n  want %+v\n  got  %+v",
				name, phase, i, want.Circuit.Gates[i], got.Circuit.Gates[i])
		}
	}
	for l := range want.Initial {
		if got.Initial[l] != want.Initial[l] {
			t.Fatalf("%s %s: initial[%d] = %d != %d", name, phase, l, got.Initial[l], want.Initial[l])
		}
	}
	for l := range want.Final {
		if got.Final[l] != want.Final[l] {
			t.Fatalf("%s %s: final[%d] = %d != %d", name, phase, l, got.Final[l], want.Final[l])
		}
	}
	if got.Source != want.Source {
		t.Fatalf("%s %s: source %q != %q", name, phase, got.Source, want.Source)
	}
	if got.Stats.SelectedPrefix != want.Stats.SelectedPrefix {
		t.Fatalf("%s %s: selected prefix %d != %d", name, phase, got.Stats.SelectedPrefix, want.Stats.SelectedPrefix)
	}
}

// TestCompileCachedDifferentialSuite proves the cache's byte-identity
// contract over the full 3 archs x 5 families x 7 seeds = 105 instance
// matrix (the same matrix the greedy engine rewrite was gated on):
//
//  1. the cold CompileCached (miss, shared warm pattern cache) is
//     byte-identical to a plain CompileContext;
//  2. a resubmission is served from the memory tier, byte-identical;
//  3. after a simulated daemon restart (fresh Tiered over the same
//     directory, empty memory tier) it is served from the disk tier,
//     still byte-identical.
func TestCompileCachedDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential matrix is not -short material")
	}
	dir := t.TempDir()
	store, err := cachestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(cachestore.NewTiered(store, 0))

	type inst struct {
		name string
		a    *arch.Arch
		p    *graph.Graph
		opts Options
		want *Result
	}
	var instances []inst
	families := []string{"er-0.2", "er-0.5", "er-0.8", "regular-3", "lattice"}
	for _, a := range cachedDiffArchs() {
		for _, fam := range families {
			for seed := int64(1); seed <= 7; seed++ {
				instances = append(instances, inst{
					name: a.Name + "/" + fam + "/" + string(rune('0'+seed)),
					a:    a,
					p:    cachedDiffProblem(fam, a, seed),
					opts: cachedDiffOptions(a, seed),
				})
			}
		}
	}
	if len(instances) != 105 {
		t.Fatalf("matrix holds %d instances, want 105", len(instances))
	}

	ctx := context.Background()
	// A few instances legitimately collide (the lattice family is
	// deterministic in (rows, cols), so seeds with equal options repeat),
	// which is itself canonical-dedup behaviour worth pinning: the
	// expected cold tier is derived from the actual cache key.
	seen := make(map[cachestore.Key]bool)
	for i := range instances {
		in := &instances[i]
		ref, err := CompileContext(ctx, in.a, in.p, in.opts)
		if err != nil {
			t.Fatalf("%s: uncached: %v", in.name, err)
		}
		in.want = ref

		keyOpts := in.opts
		keyOpts.applyDefaults()
		key := cachestore.ResultKey(in.a.Fingerprint(), graph.CanonicalHash(in.p), optionsDigest(in.a, &keyOpts))
		wantTier := ""
		if seen[key] {
			wantTier = string(cachestore.TierMem)
		}
		seen[key] = true

		cold, err := CompileCached(ctx, in.a, in.p, in.opts, cache)
		if err != nil {
			t.Fatalf("%s: cold cached: %v", in.name, err)
		}
		if cold.Stats.CacheTier != wantTier {
			t.Fatalf("%s: cold compile reported tier %q, want %q", in.name, cold.Stats.CacheTier, wantTier)
		}
		assertSameResult(t, in.name, "cold", ref, cold)

		warm, err := CompileCached(ctx, in.a, in.p, in.opts, cache)
		if err != nil {
			t.Fatalf("%s: warm cached: %v", in.name, err)
		}
		if warm.Stats.CacheTier != string(cachestore.TierMem) {
			t.Fatalf("%s: warm tier = %q, want mem", in.name, warm.Stats.CacheTier)
		}
		assertSameResult(t, in.name, "warm", ref, warm)
	}
	if s := cache.Stats(); s.Corrupt != 0 || s.Result.Disk.Corrupt != 0 {
		t.Fatalf("matrix run counted corruption: %+v", s)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: fresh store over the same directory, cold memory.
	store2, err := cachestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := NewCache(cachestore.NewTiered(store2, 0))
	defer cache2.Close()
	promoted := make(map[cachestore.Key]bool)
	for i := range instances {
		in := &instances[i]
		keyOpts := in.opts
		keyOpts.applyDefaults()
		key := cachestore.ResultKey(in.a.Fingerprint(), graph.CanonicalHash(in.p), optionsDigest(in.a, &keyOpts))
		wantTier := string(cachestore.TierDisk)
		if promoted[key] {
			// A duplicate instance's first post-restart hit promoted the
			// entry into the memory tier.
			wantTier = string(cachestore.TierMem)
		}
		promoted[key] = true
		res, err := CompileCached(ctx, in.a, in.p, in.opts, cache2)
		if err != nil {
			t.Fatalf("%s: post-restart: %v", in.name, err)
		}
		if res.Stats.CacheTier != wantTier {
			t.Fatalf("%s: post-restart tier = %q, want %q", in.name, res.Stats.CacheTier, wantTier)
		}
		assertSameResult(t, in.name, "disk", in.want, res)
	}
}

// TestCompileCachedIsomorphicHit: a relabeled resubmission of a cached
// problem must hit (canonical hashing) and the served circuit must be
// valid for the NEW labeling — rehydrate strict-verifies against the
// requesting problem, so a successful hit is itself the proof.
func TestCompileCachedIsomorphicHit(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(cachestore.NewTiered(store, 0))
	defer cache.Close()

	a := arch.Grid(4, 5)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		p := graph.GnpConnected(12, 0.5, rng)
		opts := Options{Workers: 1}
		if _, err := CompileCached(ctx, a, p, opts, cache); err != nil {
			t.Fatalf("trial %d: seed compile: %v", trial, err)
		}
		perm := rng.Perm(p.N())
		q := graph.Relabel(p, perm)
		res, err := CompileCached(ctx, a, q, opts, cache)
		if err != nil {
			t.Fatalf("trial %d: relabeled compile: %v", trial, err)
		}
		if res.Stats.CacheTier != string(cachestore.TierMem) {
			t.Fatalf("trial %d: relabeled submission missed (tier %q)", trial, res.Stats.CacheTier)
		}
	}
	if s := cache.Stats(); s.Corrupt != 0 {
		t.Fatalf("isomorphic hits flagged corruption: %+v", s)
	}
}

// TestCompileCachedKeyDiscrimination: options that change the output must
// change the key; bypass conditions must skip the cache entirely.
func TestCompileCachedKeyDiscrimination(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(cachestore.NewTiered(store, 0))
	defer cache.Close()

	a := arch.Line(12)
	p := graph.GnpConnected(10, 0.4, rand.New(rand.NewSource(5)))
	ctx := context.Background()
	base := Options{Workers: 1}
	if _, err := CompileCached(ctx, a, p, base, cache); err != nil {
		t.Fatal(err)
	}

	// Semantic option changes miss.
	for _, opts := range []Options{
		{Workers: 1, Angle: 0.37},
		{Workers: 1, Alpha: 0.9},
		{Workers: 1, Mode: ModeATA},
		{Workers: 1, CrosstalkAware: true},
		{Workers: 1, Noise: noise.Uniform(a, 1e-2, 1e-4, 1e-2, 1e-5)},
	} {
		res, err := CompileCached(ctx, a, p, opts, cache)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.Stats.CacheTier != "" {
			t.Fatalf("options %+v were served the base entry (tier %q)", opts, res.Stats.CacheTier)
		}
	}

	// Budget/observability knobs share the base entry.
	for _, opts := range []Options{
		{Workers: 1, MaxNodes: 1 << 30},
		{Workers: 1, Verify: true},
	} {
		res, err := CompileCached(ctx, a, p, opts, cache)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.Stats.CacheTier != string(cachestore.TierMem) {
			t.Fatalf("options %+v missed (tier %q), want shared entry", opts, res.Stats.CacheTier)
		}
	}

	// An explicit initial mapping bypasses the cache.
	initial := make([]int, p.N())
	for i := range initial {
		initial[i] = i
	}
	res, err := CompileCached(ctx, a, p, Options{Workers: 1, InitialMapping: initial}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheTier != "" {
		t.Fatalf("initial-mapping request touched the cache (tier %q)", res.Stats.CacheTier)
	}
}

// TestCompileCachedSurvivesCorruptEntry: a damaged disk entry (or a
// record failing verification) must fall through to a fresh, correct
// compile — never an error.
func TestCompileCachedSurvivesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	store, err := cachestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(cachestore.NewTiered(store, 2)) // tiny mem tier
	defer cache.Close()

	a := arch.Grid(4, 4)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(17))
	var ps []*graph.Graph
	for i := 0; i < 3; i++ {
		p := graph.GnpConnected(10, 0.5, rng)
		ps = append(ps, p)
		if _, err := CompileCached(ctx, a, p, Options{Workers: 1}, cache); err != nil {
			t.Fatal(err)
		}
	}
	// Evict mem (cap 2) then corrupt every on-disk entry.
	for _, k := range store.Keys(cachestore.KindResult, a.Fingerprint()) {
		if err := store.Put(k, []byte("rotten")); err != nil {
			t.Fatal(err)
		}
	}
	// The payload now decodes as garbage: each lookup must silently fall
	// through to a fresh compile that matches an uncached one.
	for i, p := range ps {
		ref, err := CompileContext(ctx, a, p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileCached(ctx, a, p, Options{Workers: 1}, cache)
		if err != nil {
			t.Fatalf("problem %d after corruption: %v", i, err)
		}
		if res.Stats.CacheTier == string(cachestore.TierDisk) {
			t.Fatalf("problem %d served a rotten disk entry", i)
		}
		if res.Stats.CacheTier == "" {
			assertSameResult(t, "corrupt-fallback", "fresh", ref, res)
		}
	}
	if s := cache.Stats(); s.Corrupt == 0 {
		t.Fatal("no corruption was counted")
	}
}
