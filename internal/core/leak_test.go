package core

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestCancellationLeaksNoGoroutines hammers CompileContext with
// cancellations that land mid-hybrid-fan-out and asserts the prediction
// worker pool always winds down: the goroutine count settles back to the
// baseline. A leaked worker per cancelled request is exactly the failure
// mode that would OOM the serving daemon (cmd/ataqcd) under client churn,
// so this is the serving layer's liveness contract pushed down to its root.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test")
	}
	a := arch.GridN(36)
	rng := rand.New(rand.NewSource(42))
	problems := make([]*graph.Graph, 8)
	for i := range problems {
		problems[i] = graph.GnpConnected(36, 0.4, rng)
	}

	baseline := settledGoroutines()
	const rounds = 60
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Workers > 1 forces the parallel prediction pool; unbounded
			// budgets keep the fan-out alive until the cancel lands.
			_, _ = CompileContext(ctx, a, problems[i%len(problems)], Options{Workers: 8})
		}()
		// Stagger the cancel across the compile's lifetime so some land
		// while the pool is mid-flight, some before it starts, some after
		// it finished.
		time.Sleep(time.Duration(i%7) * 500 * time.Microsecond)
		cancel()
		<-done
	}

	after := settledGoroutines()
	// Allow a little runtime noise (finalizers, timer goroutines), but a
	// leak of even a fraction of the 60*8 spawned workers blows past it.
	if after > baseline+5 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines grew %d -> %d after %d cancelled compiles; stacks:\n%s",
			baseline, after, rounds, dumpCompileStacks(string(buf[:n])))
	}
}

// settledGoroutines samples runtime.NumGoroutine after letting stragglers
// finish: it polls until the count is stable (or a deadline passes), so the
// measurement is not racing a pool that is mid-teardown.
func settledGoroutines() int {
	last := runtime.NumGoroutine()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			return n
		}
		last = n
	}
	return last
}

// dumpCompileStacks filters a full stack dump down to this package's
// goroutines, so a failure names the leaking function instead of burying it
// in the test harness's own stacks.
func dumpCompileStacks(all string) string {
	var out []string
	for _, g := range strings.Split(all, "\n\n") {
		if strings.Contains(g, "internal/core") {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		return all
	}
	return strings.Join(out, "\n\n")
}
