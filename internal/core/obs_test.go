package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// qasmBytes renders a result's circuit so two compiles can be compared
// byte-for-byte.
func qasmBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := res.Circuit.WriteQASM(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTracedCompileMatchesUntraced is the observability contract: attaching
// a trace must never change the compiled circuit, byte for byte, serial or
// parallel.
func TestTracedCompileMatchesUntraced(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 7)
	for _, workers := range []int{1, 8} {
		plain, err := Compile(a, p, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.New()
		traced, err := Compile(a, p, Options{Workers: workers, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(qasmBytes(t, plain), qasmBytes(t, traced)) {
			t.Fatalf("workers=%d: traced compile produced a different circuit", workers)
		}
		if plain.Source != traced.Source || plain.Metrics.Depth != traced.Metrics.Depth {
			t.Fatalf("workers=%d: traced selection diverged: %s/%d vs %s/%d",
				workers, plain.Source, plain.Metrics.Depth, traced.Source, traced.Metrics.Depth)
		}
	}
}

// TestTraceCoversCompilePhases asserts the span taxonomy the exporters and
// docs promise: a "compile" root, at least three distinct phases under it,
// and one "predictATA" span per evaluated checkpoint (with worker spans in
// the parallel case).
func TestTraceCoversCompilePhases(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 7)
	tr := obs.New()
	res, err := Compile(a, p, Options{Workers: 8, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	byName := map[string]int{}
	for _, s := range spans {
		if !s.Instant {
			byName[s.Name]++
		}
	}
	if byName["compile"] != 1 {
		t.Fatalf("want exactly one compile root, got %d", byName["compile"])
	}
	phases := 0
	for _, name := range []string{"place", "greedy", "predict", "materialize", "ata", "verify"} {
		if byName[name] > 0 {
			phases++
		}
	}
	if phases < 3 {
		t.Fatalf("want >=3 distinct phase spans, got %d (%v)", phases, byName)
	}
	if evaluated := len(res.Timeline.Checkpoints); evaluated == 0 || byName["predictATA"] < evaluated {
		t.Fatalf("want one predictATA span per evaluated checkpoint (%d), got %d",
			evaluated, byName["predictATA"])
	}
	if byName["worker"] == 0 {
		t.Fatal("parallel prediction recorded no worker spans")
	}
}

// TestTimelineCollectedWithoutTrace: the compact phase breakdown is always
// on — benchmarks read it from untraced compiles.
func TestTimelineCollectedWithoutTrace(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 7)
	res, err := Compile(a, p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.Winner != res.Source {
		t.Fatalf("timeline winner %q != source %q", res.Timeline.Winner, res.Source)
	}
	for _, name := range []string{"place", "greedy", "predict"} {
		if res.Timeline.PhaseDuration(name) <= 0 {
			t.Fatalf("phase %q missing from the untraced timeline: %+v", name, res.Timeline.Phases)
		}
	}
	if len(res.Timeline.Checkpoints) == 0 {
		t.Fatal("no checkpoint timings on a hybrid compile")
	}
	for _, c := range res.Timeline.Checkpoints {
		if !c.Evaluated || c.Run < 0 || c.Worker < 1 {
			t.Fatalf("malformed checkpoint timing %+v", c)
		}
	}
}

// TestStatsElapsedMatchesCompileTime: satellite 1 — both fields come from
// the same single measurement, so they must be identical, not merely close.
func TestStatsElapsedMatchesCompileTime(t *testing.T) {
	a := arch.GridN(16)
	p := testProblem(t, 16, 0.4, 3)
	res, err := Compile(a, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Elapsed != res.Metrics.CompileTime {
		t.Fatalf("Stats.Elapsed %v != Metrics.CompileTime %v (must be one measurement)",
			res.Stats.Elapsed, res.Metrics.CompileTime)
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

// compileOnce measures one untraced-or-traced compile.
func compileOnce(t *testing.T, a *arch.Arch, trace bool) time.Duration {
	t.Helper()
	p := testProblem(t, a.N(), 0.5, 7)
	opts := Options{Workers: 1}
	if trace {
		opts.Trace = obs.New()
	}
	start := time.Now()
	if _, err := Compile(a, p, opts); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestTracingOverheadGuard enforces the <2% tracing-overhead budget from
// the design: metric handles resolve before hot loops and disabled
// instrumentation is a pointer check, so even a live trace must stay within
// 2% of the untraced compile. Runs interleave (best-of-N each) to damp
// scheduler noise, and a small absolute epsilon absorbs timer granularity
// on fast compiles.
func TestTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	a := arch.GridN(36)
	const rounds = 5
	maxDur := time.Duration(1<<62 - 1)
	untraced, traced := maxDur, maxDur
	// Warm caches (page faults, lazy distance tables) outside the timed runs.
	compileOnce(t, a, false)
	for i := 0; i < rounds; i++ {
		if d := compileOnce(t, a, false); d < untraced {
			untraced = d
		}
		if d := compileOnce(t, a, true); d < traced {
			traced = d
		}
	}
	const epsilon = 5 * time.Millisecond
	limit := untraced + untraced/50 + epsilon // untraced * 1.02 + epsilon
	if traced > limit {
		t.Fatalf("traced compile %v exceeds untraced %v by more than 2%%+%v", traced, untraced, epsilon)
	}
}

// semaPass rebuilds the verification pass Compile ran for a result, so the
// sema analyzer can be re-timed in isolation.
func semaPass(a *arch.Arch, p *graph.Graph, res *Result) *verify.Pass {
	return &verify.Pass{
		Circuit: res.Circuit,
		Arch:    a,
		Problem: p,
		Initial: res.Initial,
		Final:   res.Final,
	}
}

// TestSemaOverheadGuard enforces the <2% semantic-verification budget: the
// phase-polynomial extraction is a single O(gates) sweep over the compiled
// stream, so proving the output equivalent to the problem Hamiltonian must
// cost under 2% of the compile that produced it. Best-of-N on both sides
// damps scheduler noise; the epsilon absorbs timer granularity.
func TestSemaOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 7)
	res, err := Compile(a, p, Options{Workers: 1}) // warm caches
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	maxDur := time.Duration(1<<62 - 1)
	compile, sema := maxDur, maxDur
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := Compile(a, p, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < compile {
			compile = d
		}
	}
	pass := semaPass(a, p, res)
	for i := 0; i < rounds*4; i++ {
		start := time.Now()
		if diags := verify.Run(pass, verify.Sema); len(diags) != 0 {
			t.Fatalf("sema flagged the compiled circuit: %v", diags)
		}
		if d := time.Since(start); d < sema {
			sema = d
		}
	}
	const epsilon = 2 * time.Millisecond
	limit := compile/50 + epsilon // 2% of compile + epsilon
	if sema > limit {
		t.Fatalf("sema verification %v exceeds 2%% of compile %v (+%v)", sema, compile, epsilon)
	}
}

// BenchmarkSemaVerify is the standalone cost of the semantic-equivalence
// proof on a realistic compiled circuit; compare against BenchmarkCompileNoTrace
// for the relative overhead.
func BenchmarkSemaVerify(b *testing.B) {
	a := arch.GridN(36)
	rng := rand.New(rand.NewSource(7))
	p := graph.GnpConnected(36, 0.5, rng)
	res, err := Compile(a, p, Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	pass := semaPass(a, p, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := verify.Run(pass, verify.Sema); len(diags) != 0 {
			b.Fatal(diags)
		}
	}
}

func benchCompile(b *testing.B, traced bool) {
	a := arch.GridN(36)
	rng := rand.New(rand.NewSource(7))
	p := graph.GnpConnected(36, 0.5, rng)
	a.Distances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *obs.Trace
		if traced {
			tr = obs.New() // fresh per iteration: steady-state span cost, no growth artefact
		}
		if _, err := Compile(a, p, Options{Workers: 1, Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileNoTrace vs BenchmarkCompileTraced is the honest cost of
// the observability layer; compare with `go test -bench Compile.*Trace`.
func BenchmarkCompileNoTrace(b *testing.B) { benchCompile(b, false) }

func BenchmarkCompileTraced(b *testing.B) { benchCompile(b, true) }
