package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// TestCachePatternWarmLoad exercises the warm-start path ataqc-warm
// feeds: pattern records persisted to the disk tier are installed into
// the in-process pattern cache on preload, a record that fails to decode
// counts as corruption and is skipped (never an error), and caches
// without a disk tier preload nothing.
func TestCachePatternWarmLoad(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.GridN(9)
	fp := a.Fingerprint()
	full := arch.FullRegion(a)

	// One good record the way ataqc-warm writes it, plus one damaged
	// payload under a different region key.
	rec := swapnet.NewPatternCache(0).ExportRegion(a, full)
	if err := store.Put(cachestore.PatternKey(fp, full), cachestore.EncodePattern(rec)); err != nil {
		t.Fatal(err)
	}
	bad := arch.Region{U0: full.U0, U1: full.U0, P0: full.P0, P1: full.P1}
	if err := store.Put(cachestore.PatternKey(fp, bad), []byte("not a pattern record")); err != nil {
		t.Fatal(err)
	}

	cache := NewCache(cachestore.NewTiered(store, 0))
	defer cache.Close()
	if cache.Patterns() == nil || cache.Store() == nil {
		t.Fatal("accessors returned nil for a disk-backed cache")
	}
	if n := cache.PreloadPatterns(a); n != 1 {
		t.Fatalf("preloaded %d pattern records, want 1 (the damaged one must be skipped)", n)
	}
	if got := cache.Stats().Corrupt; got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}

	// The warm cache still compiles normally — corruption costs time,
	// never correctness.
	p := graph.GnpConnected(9, 0.5, rand.New(rand.NewSource(1)))
	res, err := CompileCached(context.Background(), a, p, Options{Workers: 1}, cache)
	if err != nil {
		t.Fatalf("compile after warm load: %v", err)
	}
	if res.Stats.CacheTier != "" {
		t.Fatalf("first compile reported tier %q, want fresh", res.Stats.CacheTier)
	}

	// No disk tier (memory-only) and no store at all: nothing to preload.
	memOnly := NewCache(cachestore.NewTiered(nil, 0))
	defer memOnly.Close()
	if n := memOnly.PreloadPatterns(a); n != 0 {
		t.Fatalf("memory-only cache preloaded %d records, want 0", n)
	}
	none := NewCache(nil)
	if n := none.PreloadPatterns(a); n != 0 {
		t.Fatalf("store-less cache preloaded %d records, want 0", n)
	}
	if err := none.Close(); err != nil {
		t.Fatalf("store-less close: %v", err)
	}
}
