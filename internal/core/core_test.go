package core

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

func testArchs() []*arch.Arch {
	return []*arch.Arch{
		arch.Line(12),
		arch.Grid(4, 4),
		arch.Sycamore(4, 4),
		arch.Hexagon(4, 4),
		arch.HeavyHex(2, 8),
	}
}

func TestCompileModesAllArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, a := range testArchs() {
		n := a.N()
		if n > 14 {
			n = 14
		}
		p := graph.GnpConnected(n, 0.4, rng)
		for _, mode := range []Mode{ModeGreedy, ModeATA, ModeHybrid} {
			res, err := Compile(a, p, Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name, mode, err)
			}
			if res.Metrics.ProgramGates != p.M() {
				t.Fatalf("%s/%s: %d program gates, want %d", a.Name, mode, res.Metrics.ProgramGates, p.M())
			}
			if res.Metrics.Depth <= 0 || res.Metrics.CXCount < 2*p.M() {
				t.Fatalf("%s/%s: degenerate metrics %+v", a.Name, mode, res.Metrics)
			}
		}
	}
}

func TestCompileCliques(t *testing.T) {
	for _, a := range []*arch.Arch{arch.Grid(4, 4), arch.Sycamore(4, 4), arch.HeavyHex(2, 8)} {
		p := graph.Complete(a.N())
		res, err := Compile(a, p, Options{Mode: ModeHybrid})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Metrics.ProgramGates != p.M() {
			t.Fatalf("%s: missing gates", a.Name)
		}
	}
}

// TestHybridNeverWorseThanATA is Theorem 6.1: the hybrid selector always
// has the pure ATA circuit as a candidate, so its selected cost is at most
// the ATA cost.
func TestHybridNeverWorseThanATA(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, a := range []*arch.Arch{arch.Grid(5, 5), arch.Sycamore(4, 4), arch.HeavyHex(2, 8)} {
		for _, density := range []float64{0.1, 0.3, 0.7} {
			p := graph.GnpConnected(a.N(), density, rng)
			hy, err := Compile(a, p, Options{Mode: ModeHybrid})
			if err != nil {
				t.Fatal(err)
			}
			ata, err := Compile(a, p, Options{Mode: ModeATA})
			if err != nil {
				t.Fatal(err)
			}
			// The selector optimises F over (cycles, CX); compare on CX
			// with generous slack for the depth-vs-CX tradeoff.
			if hy.Metrics.CXCount > ata.Metrics.CXCount+ata.Metrics.CXCount/4 {
				t.Errorf("%s d=%.1f: hybrid CX %d far above ATA CX %d (source %s)",
					a.Name, density, hy.Metrics.CXCount, ata.Metrics.CXCount, hy.Source)
			}
		}
	}
}

func TestHybridBeatsGreedyOnDenseProblems(t *testing.T) {
	// On dense inputs the structured solution wins (Fig 17); the hybrid
	// must pick it up.
	rng := rand.New(rand.NewSource(31))
	a := arch.Grid(5, 5)
	p := graph.GnpConnected(25, 0.8, rng)
	hy, err := Compile(a, p, Options{Mode: ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Compile(a, p, Options{Mode: ModeGreedy})
	if err != nil {
		t.Fatal(err)
	}
	// The selector optimises F = alpha*depth + (1-alpha)*gates; on dense
	// inputs the structured solution's depth advantage must carry through.
	if hy.Metrics.Depth > gr.Metrics.Depth {
		t.Errorf("hybrid depth %d worse than greedy depth %d on dense input (source %s)",
			hy.Metrics.Depth, gr.Metrics.Depth, hy.Source)
	}
}

func TestGreedyWinsOnTinySparseProblems(t *testing.T) {
	// A problem that is already hardware-compliant: greedy schedules it
	// with zero swaps, and the hybrid must not regress to the full pattern.
	a := arch.Grid(4, 4)
	p := graph.New(16)
	p.AddEdge(0, 1)
	p.AddEdge(2, 3)
	res, err := Compile(a, p, Options{Mode: ModeHybrid, InitialMapping: identity(16)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Swaps != 0 {
		t.Fatalf("trivial problem compiled with %d swaps (source %s)", res.Metrics.Swaps, res.Source)
	}
	if res.Metrics.TwoQubitDepth != 1 {
		t.Fatalf("trivial problem depth %d", res.Metrics.TwoQubitDepth)
	}
}

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestNoiseAwareCompile(t *testing.T) {
	a := arch.Mumbai()
	nm := noise.Synthetic(a, 3)
	rng := rand.New(rand.NewSource(5))
	p := graph.GnpConnected(10, 0.3, rng)
	res, err := Compile(a, p, Options{Mode: ModeHybrid, Noise: nm, CrosstalkAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.LogFidelity >= 0 {
		t.Fatalf("log fidelity %v not negative under noise", res.Metrics.LogFidelity)
	}
}

func TestGenericArchRequiresGreedy(t *testing.T) {
	g := graph.Cycle(8)
	a := arch.Generic("ring-8", g)
	p := graph.Path(8)
	if _, err := Compile(a, p, Options{Mode: ModeHybrid}); err == nil {
		t.Fatal("hybrid accepted a generic architecture")
	}
	if _, err := Compile(a, p, Options{Mode: ModeGreedy}); err != nil {
		t.Fatalf("greedy on generic arch: %v", err)
	}
}

func TestRegionDetectionSeparatesComponents(t *testing.T) {
	a := arch.Grid(6, 6)
	// Two disjoint triangles placed in opposite corners.
	p := graph.New(6)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(0, 2)
	p.AddEdge(3, 4)
	p.AddEdge(4, 5)
	p.AddEdge(3, 5)
	mapping := []int{0, 1, 6, 28, 29, 34} // corner (0,0)-ish and (4,4)-ish
	st := swapnet.NewStateFromMapping(a, mapping, swapnet.NewEdgeSet(p))
	regions := detectRegions(st, nil)
	if len(regions) != 2 {
		t.Fatalf("expected 2 regions, got %d: %+v", len(regions), regions)
	}
}

func TestRegionDetectionMergesOverlaps(t *testing.T) {
	a := arch.Grid(6, 6)
	p := graph.New(6)
	p.AddEdge(0, 1)
	p.AddEdge(2, 3)
	p.AddEdge(4, 5)
	// Three pairs stacked in the same columns: overlapping rectangles.
	mapping := []int{0, 7, 1, 8, 2, 9}
	st := swapnet.NewStateFromMapping(a, mapping, swapnet.NewEdgeSet(p))
	regions := detectRegions(st, nil)
	if len(regions) != 1 {
		t.Fatalf("expected 1 merged region, got %d", len(regions))
	}
}
