package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/verify"
	"math/rand"
)

func testProblem(t *testing.T, n int, density float64, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return graph.GnpConnected(n, density, rng)
}

// verifyClean asserts the result passes every error-severity analyzer —
// the contract a degraded circuit must still honor.
func verifyClean(t *testing.T, a *arch.Arch, p *graph.Graph, res *Result) {
	t.Helper()
	pass := &verify.Pass{
		Circuit:       res.Circuit,
		Arch:          a,
		Problem:       p,
		Initial:       res.Initial,
		Final:         res.Final,
		ReportedDepth: res.Metrics.Depth,
		CheckDepth:    true,
	}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		t.Fatalf("degraded circuit fails verification: %v", err)
	}
}

func TestDeadlineDegradesToATA(t *testing.T) {
	a := arch.GridN(64)
	p := testProblem(t, 64, 0.5, 7)
	start := time.Now()
	res, err := CompileContext(context.Background(), a, p, Options{Deadline: time.Nanosecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("expected degraded result, got error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set despite an already-expired deadline")
	}
	if res.DegradeReason.IsZero() {
		t.Fatal("DegradeReason empty on a degraded result")
	}
	if res.Source != "ata" {
		t.Fatalf("expected the pure-ATA rung, got source %q", res.Source)
	}
	// The fallback is O(n): far below any human-scale bound even on CI.
	if elapsed > 10*time.Second {
		t.Fatalf("degraded compile took %v; the fallback must return promptly", elapsed)
	}
	verifyClean(t, a, p, res)
}

func TestMaxNodesDegradesDeterministically(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.4, 3)
	res, err := Compile(a, p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatalf("expected degraded result, got error: %v", err)
	}
	if !res.Degraded || res.Source != "ata" {
		t.Fatalf("expected degraded pure-ATA result, got degraded=%v source=%q", res.Degraded, res.Source)
	}
	if !strings.Contains(res.DegradeReason.String(), "budget") {
		t.Fatalf("reason should name the budget, got %q", res.DegradeReason.String())
	}
	verifyClean(t, a, p, res)
}

func TestPredictionBudgetKeepsBestSoFar(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.5, 11)
	initial := make([]int, p.N())
	for i := range initial {
		initial[i] = i
	}
	// Learn the greedy cycle count so the budget can be placed after greedy
	// completes but before the prediction loop can finish.
	g, err := greedy.Compile(a, p, initial, greedy.Options{Angle: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(a, p, Options{InitialMapping: initial, MaxNodes: g.Cycles + 1})
	if err != nil {
		t.Fatalf("expected degraded result, got error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expected prediction-loop truncation to mark the result degraded")
	}
	if !strings.Contains(res.DegradeReason.String(), "prediction budget exhausted") {
		t.Fatalf("expected the best-so-far rung, got %q", res.DegradeReason.String())
	}
	if res.Stats.Predictions >= res.Stats.Checkpoints {
		t.Fatalf("expected truncated predictions: %d/%d", res.Stats.Predictions, res.Stats.Checkpoints)
	}
	verifyClean(t, a, p, res)
}

func TestCanceledContextIsAnErrorNotADegrade(t *testing.T) {
	a := arch.GridN(64)
	p := testProblem(t, 64, 0.5, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CompileContext(ctx, a, p, Options{})
	if err == nil {
		t.Fatalf("expected an error from a canceled context, got result %v", res.Source)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled, got %v", err)
	}
}

func TestUnboundedContextOutputIdenticalToCompile(t *testing.T) {
	a := arch.GridN(49)
	p := testProblem(t, 49, 0.35, 5)
	r1, err := Compile(a, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CompileContext(context.Background(), a, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var q1, q2 bytes.Buffer
	if err := r1.Circuit.WriteQASM(&q1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Circuit.WriteQASM(&q2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q1.Bytes(), q2.Bytes()) {
		t.Fatal("ungoverned CompileContext output differs from Compile")
	}
	if r1.Degraded || r2.Degraded {
		t.Fatal("unbounded compiles must not be degraded")
	}
	if r2.Stats.WorkUnits == 0 {
		t.Fatal("Stats.WorkUnits should account greedy cycles even unbounded")
	}
}

func TestGreedyModeDegradesWhenPatternExists(t *testing.T) {
	a := arch.GridN(36)
	p := testProblem(t, 36, 0.4, 3)
	res, err := Compile(a, p, Options{Mode: ModeGreedy, MaxNodes: 1})
	if err != nil {
		t.Fatalf("expected ATA fallback, got error: %v", err)
	}
	if !res.Degraded || res.Source != "ata" {
		t.Fatalf("expected degraded ATA result, got degraded=%v source=%q", res.Degraded, res.Source)
	}
	verifyClean(t, a, p, res)
}

func TestGreedyModeBudgetErrorWithoutPattern(t *testing.T) {
	// An irregular architecture has no structured fallback: budget
	// exhaustion must surface as a typed error, not a panic or a hang.
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(0, 3) // a chord, so it is not literally a line
	a := arch.Generic("irregular-6", g)
	p := testProblem(t, 6, 0.6, 2)
	_, err := Compile(a, p, Options{Mode: ModeGreedy, MaxNodes: 1})
	if err == nil {
		t.Fatal("expected a budget error on an architecture with no ATA fallback")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error should wrap ErrBudgetExhausted, got %v", err)
	}
}

func TestPanicBoundaryConvertsToErrInternal(t *testing.T) {
	// A problem wider than the device trips a builder invariant panic
	// below core; the boundary must convert it into a diagnosable error.
	a := arch.Line(4)
	p := graph.Complete(8)
	_, err := Compile(a, p, Options{Mode: ModeGreedy})
	if err == nil {
		t.Fatal("expected an error for an oversized problem")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("error should wrap ErrInternal, got %v", err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should carry the panic diagnosis, got %v", err)
	}
}

func TestInvalidInitialMappingTypedError(t *testing.T) {
	a := arch.GridN(16)
	p := testProblem(t, 16, 0.3, 1)
	bad := make([]int, p.N())
	for i := range bad {
		bad[i] = 0 // every logical qubit on physical 0
	}
	_, err := Compile(a, p, Options{InitialMapping: bad})
	if err == nil {
		t.Fatal("expected an error for a non-injective mapping")
	}
	if errors.Is(err, ErrInternal) {
		t.Fatalf("input validation should reject before the panic boundary: %v", err)
	}
}
