// Package core implements the paper's primary contribution: the hybrid
// compiler framework of §5–6 that takes the best of the greedy heuristic
// and the structured all-to-all (ATA) solution.
//
// The framework runs the greedy scheduler (internal/greedy) and, at
// checkpoints where the qubit mapping changed, predicts the cost of
// finishing the rest of the circuit by following the ATA pattern restricted
// to the detected interaction regions (§6.3 range detection). When all
// gates are processed, the compiled-circuit selector (§6.4) compares the
// pure-greedy circuit against every recorded greedy-prefix + ATA-suffix
// hybrid — including the prefix-0 candidate, which is the pure ATA solution
// — and materialises the one with the best cost F. Since the pure ATA
// candidate is always in the pool, the output is never worse than the
// structured clique-derived solution (Theorem 6.1), giving the linear
// worst-case depth bound, while sparse inputs benefit from the greedy
// prefix.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/swapnet"
	"github.com/ata-pattern/ataqc/internal/telemetry"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// Options configures the hybrid compiler.
type Options struct {
	// Noise enables error-variability-aware scheduling and fidelity terms.
	Noise *noise.Model
	// CrosstalkAware adds crosstalk edges to the greedy conflict graph.
	CrosstalkAware bool
	// Angle is recorded on program gates (default 1; QAOA rebinds angles).
	Angle float64
	// Alpha weights depth against fidelity in the selector cost
	// F = alpha*(fD/oD) + (1-alpha)*(fidelity term); default 0.5 (§6.4).
	Alpha float64
	// MaxPredictions caps how many greedy checkpoints are evaluated with an
	// ATA prediction (the paper predicts at every mapping change; we
	// decimate evenly for scalability). Default 48.
	MaxPredictions int
	// Mode selects the compilation strategy; ModeHybrid is the paper's.
	Mode Mode
	// InitialMapping overrides the default compact placement.
	InitialMapping []int
	// Verify additionally runs the warning-severity lint analyzers
	// (internal/verify) and records every diagnostic on the Result. The
	// error-severity analyzers always run: Compile refuses to return a
	// circuit that fails them.
	Verify bool
	// Deadline is a wall-clock budget for the whole compilation, measured
	// from the CompileContext call (0 = unbounded). It combines with any
	// context deadline: the earlier of the two wins. When it expires
	// mid-compile the compiler degrades down the ladder (hybrid → best
	// candidate so far → pure ATA) instead of failing; see Result.Degraded.
	Deadline time.Duration
	// MaxNodes is a work budget (0 = unbounded): greedy scheduler cycles
	// plus predicted ATA pattern cycles. Exhaustion degrades exactly like a
	// deadline. It is the deterministic twin of Deadline — useful in tests
	// and anywhere wall-clock budgets would flake.
	MaxNodes int
	// Workers bounds the concurrency of the hybrid prediction loop: each
	// greedy checkpoint's ATA prediction is independent, so they fan out
	// over a worker pool sharing a memoised pattern cache
	// (internal/swapnet.PatternCache). 0 defaults to runtime.GOMAXPROCS(0);
	// 1 keeps the original serial loop. The compiled circuit, Stats (except
	// Elapsed), and selected candidate are byte-identical for every worker
	// count when the budget is unbounded — workers only change wall-clock.
	// Under an exhausting budget the parallel pool truncates the candidate
	// set it evaluated (the degradation ladder is preserved, but which
	// candidates were scored before exhaustion is timing-dependent).
	Workers int
	// Trace, when non-nil, records the compile timeline (phase spans,
	// per-checkpoint prediction tasks, cache and pool metrics) on the given
	// trace. Nil disables tracing: every instrumentation point is a single
	// pointer check, so the disabled path costs ~nothing (the overhead guard
	// in core_obs_test.go holds it under 2%). Tracing never changes the
	// compiled circuit. The trace's clock also drives the wall-clock budget
	// and Stats.Elapsed, so tests can compile under a synthetic clock.
	Trace *obs.Trace
	// PatternCache, when non-nil, is a pattern cache shared across
	// compilations (typically owned by a core.Cache): the prediction loop,
	// materialisation, and pure-ATA replay all consult it instead of a
	// per-compile cache. Sharing is output-safe — cached entries replay
	// exactly what an uncached run computes (see scoreCheckpoint) — so the
	// compiled circuit is byte-identical with or without it. Nil keeps the
	// historical behaviour: Workers>1 builds a private per-compile cache,
	// Workers=1 runs uncached.
	PatternCache *swapnet.PatternCache
}

// applyDefaults resolves the zero-value options to their documented
// defaults. CompileContext applies it on entry; CompileCached applies it
// before digesting the options into the cache key, so the key reflects
// the values the compiler will actually run with.
func (o *Options) applyDefaults() {
	if o.Angle == 0 {
		o.Angle = 1
	}
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.MaxPredictions == 0 {
		o.MaxPredictions = 48
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Mode selects between the full hybrid framework and its ablations.
type Mode int

const (
	// ModeHybrid is the full framework (greedy + ATA prediction + selector).
	ModeHybrid Mode = iota
	// ModeGreedy is the pure greedy heuristic (the "greedy" bar of Fig 17).
	ModeGreedy
	// ModeATA follows the structured solution exactly, skipping absent
	// gates (the "solver"-guided bar of Fig 17).
	ModeATA
)

func (m Mode) String() string {
	switch m {
	case ModeGreedy:
		return "greedy"
	case ModeATA:
		return "ata"
	default:
		return "hybrid"
	}
}

// Metrics summarises a compiled circuit with the paper's evaluation
// measures (§7.1).
type Metrics struct {
	Depth         int     // critical path after CX + 1q decomposition
	TwoQubitDepth int     // critical path counting only 2q gates
	CXCount       int     // total CX after decomposition
	ProgramGates  int     // ZZ (+ZZSwap) program gates scheduled
	Swaps         int     // SWAP gates inserted (ZZSwap counts as both)
	LogFidelity   float64 // noise-model estimate (0 when no model)
	CompileTime   time.Duration
}

// Stats records resource-governance observability for one compilation.
type Stats struct {
	// Elapsed is the wall-clock compile time.
	Elapsed time.Duration
	// WorkUnits is the governed work spent: greedy scheduler cycles plus
	// predicted ATA pattern cycles — the currency Options.MaxNodes caps.
	WorkUnits int64
	// Checkpoints counts the selector candidates recorded (including the
	// synthetic prefix-0 pure-ATA candidate); Predictions counts how many
	// were evaluated before the budget intervened. Both are zero outside
	// ModeHybrid.
	Checkpoints int
	Predictions int
	// SelectedPrefix is the greedy-gate prefix length of the winning hybrid
	// candidate (0 = the pure-ATA candidate); -1 when pure greedy won or
	// the mode ran no selector. It identifies the selected checkpoint, so
	// determinism tests can pin the selection, not just the output bytes.
	SelectedPrefix int
	// CacheHits/CacheMisses report pattern-cache effectiveness for this
	// compilation (deltas, so a shared Options.PatternCache does not bleed
	// other compiles' counters in). Both stay zero in the Workers=1 serial
	// path unless a shared cache was supplied.
	CacheHits   int64
	CacheMisses int64
	// CacheTier reports which compilation-cache tier served this result
	// ("mem" or "disk"); empty for a fresh compile or when no compilation
	// cache was consulted. Only CompileCached sets it.
	CacheTier string
}

// Result is a compiled circuit plus provenance.
type Result struct {
	Circuit *circuit.Circuit
	Initial []int
	// Final is the final logical-to-physical mapping the compiler claims;
	// the perm-soundness analyzer refolds the SWAPs to confirm it.
	Final []int
	// Source describes which candidate won: "greedy", "ata", or
	// "hybrid@<prefix>" for a greedy-prefix + ATA-suffix circuit.
	Source  string
	Metrics Metrics
	// Diagnostics holds the full analyzer output (including warnings such
	// as dead-swap lints) when Options.Verify was set.
	Diagnostics []verify.Diagnostic
	// Degraded reports that a resource budget ran out mid-compile and the
	// compiler fell down the degradation ladder instead of failing. The
	// circuit is still complete and verifier-clean — the ladder's floor is
	// the pure ATA solution, whose linear depth Theorem 6.1 guarantees —
	// just not the candidate an unbounded search would have picked.
	Degraded bool
	// DegradeReason says which budget ran out and which rung answered —
	// structured (trigger values, checkpoint index), with String() rendering
	// the human-readable form.
	DegradeReason DegradeReason
	// Stats is the governance accounting for this compilation.
	Stats Stats
	// Timeline is the compact phase breakdown (always collected; see the
	// type's doc).
	Timeline Timeline
}

// Compile schedules every edge of problem onto a.
func Compile(a *arch.Arch, problem *graph.Graph, opts Options) (*Result, error) {
	return CompileContext(context.Background(), a, problem, opts)
}

// CompileContext is Compile under resource governance: it honors the
// context's cancellation and deadline plus the Options.Deadline/MaxNodes
// budgets, polling them in the greedy scheduler loop and the hybrid
// prediction loop. When a wall-clock or work budget runs out mid-compile
// the result degrades down a ladder — hybrid → best candidate recorded so
// far → pure ATA (deterministic, O(n), always constructible on structured
// architectures) — and reports it via Result.Degraded; Theorem 6.1 is
// exactly this contract: the output is never worse than the linear-depth
// structured solution. Explicit context *cancellation* is different: the
// caller has abandoned the compile, so it returns the context error.
//
// CompileContext is also a panic boundary: an internal invariant violation
// anywhere below surfaces as an ErrInternal-wrapped error (with the panic
// value and stack) instead of unwinding into the caller.
func CompileContext(ctx context.Context, a *arch.Arch, problem *graph.Graph, opts Options) (res *Result, err error) {
	rec := newRecorder(opts.Trace)
	// One clock read at the governance boundary: the budget's deadline
	// checks, Stats.Elapsed, and Metrics.CompileTime all derive from this
	// same clock and origin, so they can never disagree.
	start := rec.clock.Now()
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: panic: %v\n%s", ErrInternal, r, debug.Stack())
		}
	}()
	opts.applyDefaults()
	rootAttrs := []obs.Attr{
		obs.Str("mode", opts.Mode.String()),
		obs.Int("qubits", a.N()),
		obs.Int("edges", problem.M()),
		obs.Int("workers", opts.Workers),
	}
	// When the serving layer admitted this compile, its request trace ID
	// rides the context; stamping it on the root span ties the compile's
	// whole span tree to the daemon's logs and flight-recorder entry.
	if id := telemetry.TraceIDFrom(ctx); id != "" {
		rootAttrs = append(rootAttrs, obs.Str("trace_id", string(id)))
	}
	rec.root = rec.tr.StartSpan(nil, "compile", rootAttrs...)
	defer rec.root.End()
	bud := newBudget(ctx, start, opts, rec.clock)
	initial := opts.InitialMapping
	if initial != nil {
		// User-supplied mappings are an input boundary: reject them with a
		// typed error instead of letting the builder panic downstream. The
		// checks run before the place phase opens so the early returns
		// cannot leak its span.
		if len(initial) != problem.N() {
			return nil, fmt.Errorf("core: initial mapping covers %d logical qubits, problem has %d", len(initial), problem.N())
		}
		if verr := swapnet.ValidateMapping(a, initial); verr != nil {
			return nil, fmt.Errorf("core: invalid initial mapping: %w", verr)
		}
	}
	place := rec.phase("place")
	if initial == nil {
		initial = greedy.InitialMapping(a, problem)
		// Refine with a bounded hill-climb; passes shrink with size to keep
		// compilation near-linear (Fig 26).
		passes := 2048 / (problem.N() + 1)
		if passes < 1 {
			passes = 1
		}
		if passes > 6 {
			passes = 6
		}
		initial = greedy.RefinePlacement(a, problem, initial, passes)
	}
	place.end()
	if opts.Mode != ModeGreedy && !swapnet.HasATA(a) {
		return nil, fmt.Errorf("core: architecture %s has no structured pattern; use ModeGreedy", a.Name)
	}

	switch opts.Mode {
	case ModeGreedy:
		obs.PhaseLabel(ctx, "greedy", func(context.Context) {
			res, err = compileGreedy(a, problem, initial, opts, bud, rec)
		})
		if err != nil && degradable(err) && swapnet.HasATA(a) {
			cause := fmt.Errorf("greedy scheduling aborted: %w", err)
			res, err = degradeToATA(a, problem, initial, opts,
				degradeReasonFor("pure-ata", cause, -1, 0, bud, opts, rec), rec)
		}
	case ModeATA:
		// The floor of the ladder: O(n) pattern replay, never governed.
		obs.PhaseLabel(ctx, "ata", func(context.Context) {
			res, err = compileATA(a, problem, initial, opts, rec)
		})
	default:
		res, err = compileHybrid(a, problem, initial, opts, bud, rec)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.WorkUnits = bud.spent()
	rec.tr.Metrics().Gauge("budget.work_units").Set(res.Stats.WorkUnits)
	vp := rec.phase("verify")
	res.Metrics = Measure(res.Circuit, opts.Noise)
	// Static verification (internal/verify): the error-severity analyzers
	// are the compiler's output contract — a circuit that fails them is a
	// compiler bug and must not escape. Options.Verify widens the pass to
	// the warning lints and records everything on the Result.
	pass := &verify.Pass{
		Circuit:       res.Circuit,
		Arch:          a,
		Problem:       problem,
		Initial:       res.Initial,
		Final:         res.Final,
		ReportedDepth: res.Metrics.Depth,
		CheckDepth:    true,
		Angle:         opts.Angle,
	}
	analyzers := verify.Strict
	if opts.Verify {
		analyzers = verify.All
	}
	diags := verify.Run(pass, analyzers...)
	if opts.Verify {
		res.Diagnostics = diags
	}
	vp.end()
	if vErr := verify.AsError(diags); vErr != nil {
		return nil, fmt.Errorf("core: produced invalid circuit: %w", vErr)
	}
	rec.root.SetAttrs(obs.Str("source", res.Source), obs.Int("depth", res.Metrics.Depth))
	elapsed := rec.clock.Now().Sub(start)
	res.Metrics.CompileTime = elapsed
	res.Stats.Elapsed = elapsed
	rec.tl.Winner = res.Source
	res.Timeline = rec.tl
	return res, nil
}

// interruptOf adapts the budget into the greedy scheduler's Interrupt hook,
// charging one work unit per scheduler cycle. An unbounded budget never
// trips, so the ungoverned output stays byte-identical to the pre-
// governance compiler; the poll itself is a handful of comparisons per
// scheduler cycle and keeps Stats.WorkUnits truthful either way.
func interruptOf(bud *budget) func() error {
	return func() error { return bud.spend(1) }
}

// degradeToATA is the bottom rung of the degradation ladder: replay the
// structured all-to-all pattern from the initial placement. It is
// deterministic and O(n), so it always completes no matter how exhausted
// the budget is, and Theorem 6.1 bounds its depth linearly.
func degradeToATA(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, reason DegradeReason, rec *recorder) (*Result, error) {
	res, err := compileATA(a, problem, initial, opts, rec)
	if err != nil {
		return nil, fmt.Errorf("core: ATA fallback failed (%v) after budget exhaustion: %s", err, reason.Cause)
	}
	res.Degraded = true
	res.DegradeReason = reason
	return res, nil
}

// Measure computes the evaluation metrics of a compiled circuit.
func Measure(c *circuit.Circuit, nm *noise.Model) Metrics {
	counts := c.GateCount()
	m := Metrics{
		Depth:         c.DecomposedDepth(),
		TwoQubitDepth: c.TwoQubitDepth(),
		CXCount:       c.CXCount(),
		ProgramGates:  counts[circuit.GateZZ] + counts[circuit.GateZZSwap],
		Swaps:         counts[circuit.GateSwap] + counts[circuit.GateZZSwap],
	}
	if nm != nil {
		m.LogFidelity = nm.LogFidelity(c)
	}
	return m
}

func compileGreedy(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, bud *budget, rec *recorder) (*Result, error) {
	ph := rec.phase("greedy")
	g, err := greedy.Compile(a, problem, initial, greedy.Options{
		Noise:          opts.Noise,
		CrosstalkAware: opts.CrosstalkAware,
		Angle:          opts.Angle,
		Interrupt:      interruptOf(bud),
		Obs:            rec.tr,
		ObsSpan:        ph.span,
	})
	ph.end()
	if err != nil {
		return nil, err
	}
	res := &Result{Circuit: g.Circuit, Initial: g.Initial, Final: g.Final, Source: "greedy"}
	res.Stats.SelectedPrefix = -1
	return res, nil
}

func compileATA(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, rec *recorder) (*Result, error) {
	ph := rec.phase("ata")
	defer ph.end()
	b := circuit.NewBuilder(a, problem.N(), initial)
	st := swapnet.NewStateFromMapping(a, initial, swapnet.NewEdgeSet(problem))
	if err := runATARegionsTraced(st, b, opts.Angle, opts.PatternCache, rec.tr, ph.span); err != nil {
		return nil, err
	}
	res := &Result{Circuit: b.C, Initial: b.InitialMapping(), Final: b.CurrentMapping(), Source: "ata"}
	res.Stats.SelectedPrefix = -1
	return res, nil
}

// runATARegions detects the interaction regions of the remaining problem
// (§6.3) and runs the structured pattern inside each, appending to b.
func runATARegions(st *swapnet.State, b *circuit.Builder, angle float64) error {
	return runATARegionsCached(st, b, angle, nil)
}

// runATARegionsCached is runATARegions through a pattern cache (nil =
// uncached) — the parallel hybrid engine shares one cache between its
// prediction workers and the final materialisation, so the winning
// candidate's ATA suffix replays the dual-prediction choices it already
// scored instead of recomputing them.
func runATARegionsCached(st *swapnet.State, b *circuit.Builder, angle float64, c *swapnet.PatternCache) error {
	return runATARegionsTraced(st, b, angle, c, nil, nil)
}

// runATARegionsTraced is runATARegionsCached with each region's pattern
// build wrapped in an "ata.region" span under parent (nil trace = no spans).
func runATARegionsTraced(st *swapnet.State, b *circuit.Builder, angle float64, c *swapnet.PatternCache, tr *obs.Trace, parent *obs.Span) error {
	regions := detectRegions(st, c)
	for _, r := range regions {
		if err := swapnet.ATATraced(st, r, builderEmit(b, angle), c, tr, parent); err != nil {
			return err
		}
	}
	if !st.Want.Empty() {
		// Regions are merged when overlapping, so this indicates a pattern
		// gap; fall back to one full-architecture pass.
		if err := swapnet.ATATraced(st, arch.FullRegion(st.A), builderEmit(b, angle), c, tr, parent); err != nil {
			return err
		}
	}
	if !st.Want.Empty() {
		return fmt.Errorf("core: ATA left %d gates unscheduled", st.Want.Len())
	}
	return nil
}

// builderEmit adapts swapnet steps onto a circuit builder. The builder's
// mapping stays in lockstep with the pattern state because both apply the
// same swaps in the same order.
func builderEmit(b *circuit.Builder, angle float64) swapnet.EmitFunc {
	return func(s swapnet.Step) {
		for _, g := range s.Compute {
			if g.Fused {
				b.ZZSwap(g.P, g.Q, angle, g.Tag)
			} else {
				b.ZZ(g.P, g.Q, angle, g.Tag)
			}
		}
		for _, layer := range s.Swaps {
			for _, e := range layer {
				b.Swap(e.U, e.V)
			}
		}
	}
}

// detectRegions finds the disjoint connected components of the remaining
// problem graph, maps each to its enclosing architecture region, and merges
// overlapping regions (§6.3, Fig 19). Regions are returned in a canonical
// sorted order: component discovery iterates a map, and the emission order
// is observable (the snake fallback of a grid region can touch qubits
// outside the region), so without the sort two identical compilations could
// emit different — equally valid — circuits. A non-nil cache memoises the
// NormalizeRegion calls.
func detectRegions(st *swapnet.State, c *swapnet.PatternCache) []arch.Region {
	normalize := swapnet.NormalizeRegion
	if c != nil {
		normalize = c.NormalizeRegion
	}
	edges := st.Want.Edges()
	if len(edges) == 0 {
		return nil
	}
	uf := graph.NewUnionFind(len(st.L2P))
	for _, e := range edges {
		uf.Union(e.U, e.V)
	}
	compPhys := make(map[int][]int)
	for _, e := range edges {
		root := uf.Find(e.U)
		compPhys[root] = append(compPhys[root], st.L2P[e.U], st.L2P[e.V])
	}
	var regions []arch.Region
	//vet:ignore maprange regions are sorted (sortRegions) before any order-sensitive use
	for _, phys := range compPhys {
		regions = append(regions, normalize(st.A, arch.EnclosingRegion(st.A, phys)))
	}
	sortRegions(regions)
	// Merge overlaps to a fixpoint.
	for {
		merged := false
		for i := 0; i < len(regions) && !merged; i++ {
			for j := i + 1; j < len(regions); j++ {
				if regions[i].Overlaps(regions[j]) {
					regions[i] = normalize(st.A, regions[i].Union(regions[j]))
					regions = append(regions[:j], regions[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			sortRegions(regions)
			return regions
		}
	}
}

// sortRegions orders regions lexicographically over their coordinates —
// any total order works; this one keeps unit-space regions grouped before
// path-space ones.
func sortRegions(regions []arch.Region) {
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i], regions[j]
		if a.UsesPath != b.UsesPath {
			return !a.UsesPath
		}
		if a.U0 != b.U0 {
			return a.U0 < b.U0
		}
		if a.U1 != b.U1 {
			return a.U1 < b.U1
		}
		if a.P0 != b.P0 {
			return a.P0 < b.P0
		}
		if a.P1 != b.P1 {
			return a.P1 < b.P1
		}
		if a.I0 != b.I0 {
			return a.I0 < b.I0
		}
		return a.I1 < b.I1
	})
}
