package circuit

import (
	"bytes"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// emitterSeed builds a small compiled circuit the way the compiler does
// (program gates + routing SWAPs, as in examples/quickstart) and returns
// its QASM — a realistic, well-formed corpus entry.
func emitterSeed() []byte {
	a := arch.Line(4)
	b := NewBuilder(a, 4, nil)
	b.ZZ(0, 1, 0.5, graph.NewEdge(0, 1))
	b.ZZ(2, 3, -1.25, graph.NewEdge(2, 3))
	b.Swap(1, 2)
	b.ZZSwap(0, 1, 0.75, graph.NewEdge(1, 2))
	var buf bytes.Buffer
	if err := b.C.WriteQASM(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzQASMRoundTrip: malformed gate streams must surface as parse errors,
// never panics, and anything that parses must reach a fixed point after one
// emit/parse round (emit(parse(emit(c))) == emit(c), pinning down angle
// formatting drift).
func FuzzQASMRoundTrip(f *testing.F) {
	f.Add(emitterSeed())
	f.Add([]byte("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\nrx(0.5) q[1];\nrz(-2.75e-3) q[2];\ncx q[0],q[2];\n"))
	f.Add([]byte("OPENQASM 2.0;\nqreg q[1];\n// comment\nh q[0];"))
	f.Add([]byte("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];"))     // self-loop
	f.Add([]byte("OPENQASM 2.0;\nqreg q[2];\nrx(nan) q[0];"))     // bad angle
	f.Add([]byte("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[7];"))     // range
	f.Add([]byte("OPENQASM 2.0;\nqreg q[2];\nmeasure q -> c;"))   // unsupported
	f.Add([]byte("qreg q[2];\nh q[0];"))                          // missing header
	f.Add([]byte("OPENQASM 2.0;\nqreg q[999999999999999999];\n")) // huge reg
	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := ParseQASM(bytes.NewReader(data))
		if err != nil {
			return // rejected input: a diagnostic, not a crash, is the contract
		}
		var gen2 bytes.Buffer
		if err := c1.WriteQASM(&gen2); err != nil {
			t.Fatalf("emit of parsed circuit failed: %v", err)
		}
		c2, err := ParseQASM(bytes.NewReader(gen2.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own emission failed: %v\n%s", err, gen2.String())
		}
		var gen3 bytes.Buffer
		if err := c2.WriteQASM(&gen3); err != nil {
			t.Fatalf("second emit failed: %v", err)
		}
		if gen2.String() != gen3.String() {
			t.Fatalf("round trip not a fixed point:\n--- gen2:\n%s--- gen3:\n%s", gen2.String(), gen3.String())
		}
		if c2.NQubits != c1.NQubits || len(c2.Gates) != len(c1.Gates) {
			t.Fatalf("round trip changed shape: %d/%d qubits, %d/%d gates",
				c1.NQubits, c2.NQubits, len(c1.Gates), len(c2.Gates))
		}
	})
}

func TestParseQASMRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"OPENQASM 3.0;\nqreg q[2];",
		"OPENQASM 2.0;",
		"OPENQASM 2.0;\nh q[0];",
		"OPENQASM 2.0;\nqreg q[0];",
		"OPENQASM 2.0;\nqreg q[2];\nqreg r[2];",
		"OPENQASM 2.0;\nqreg q[2];\ncz q[0],q[1];",
		"OPENQASM 2.0;\nqreg q[2];\nrx() q[0];",
		"OPENQASM 2.0;\nqreg q[2];\nrx(1e999) q[0];",
		"OPENQASM 2.0;\nqreg q[2];\ncx q[0];",
		"OPENQASM 2.0;\nqreg q[2];\nh r[0];",
		"OPENQASM 2.0;\nqreg q[2];\nh q[-1];",
	}
	for _, in := range cases {
		if _, err := ParseQASM(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("accepted malformed input %q", in)
		}
	}
}

func TestParseQASMRoundTripCompiled(t *testing.T) {
	c := emitterSeed()
	parsed, err := ParseQASM(bytes.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	// The seed circuit decomposes to 2+2+3+3 CX plus rotations on 4 qubits.
	if parsed.NQubits != 4 {
		t.Fatalf("parsed %d qubits", parsed.NQubits)
	}
	if parsed.GateCount()[GateCNOT] != 10 {
		t.Fatalf("parsed %d CX", parsed.GateCount()[GateCNOT])
	}
	var re bytes.Buffer
	if err := parsed.WriteQASM(&re); err != nil {
		t.Fatal(err)
	}
	if re.String() != string(c) {
		t.Fatalf("compiled-circuit QASM did not round trip:\n%s\nvs\n%s", c, re.String())
	}
}
