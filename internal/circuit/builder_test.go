package circuit

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// randomCompiledSequence builds a plausible compiled gate stream (program
// gates on coupled pairs interleaved with mapping-changing SWAPs/ZZSwaps)
// by walking a live builder, returning the gates and the initial mapping.
func randomCompiledSequence(t *testing.T, a *arch.Arch, nGates int, rng *rand.Rand) ([]Gate, []int) {
	t.Helper()
	n := a.N()
	b := NewBuilder(a, n, nil)
	couplings := a.G.Edges()
	for len(b.C.Gates) < nGates {
		c := couplings[rng.Intn(len(couplings))]
		lu, lv := b.LogicalAt(c.U), b.LogicalAt(c.V)
		switch rng.Intn(3) {
		case 0:
			b.ZZ(c.U, c.V, 0.5, graph.NewEdge(lu, lv))
		case 1:
			b.Swap(c.U, c.V)
		default:
			b.ZZSwap(c.U, c.V, 0.25, graph.NewEdge(lu, lv))
		}
	}
	init := b.InitialMapping()
	return b.C.Gates, init
}

// TestReplayPrefixMatchesPerGateReplay pins the bulk replay path the hybrid
// materializer uses: for random compiled sequences, ReplayPrefix must leave
// the builder in exactly the state the per-gate ZZ/Swap/ZZSwap calls would.
func TestReplayPrefixMatchesPerGateReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, a := range []*arch.Arch{arch.Line(7), arch.Grid(3, 4), arch.HeavyHex(2, 8)} {
		for trial := 0; trial < 5; trial++ {
			gates, init := randomCompiledSequence(t, a, 40+rng.Intn(40), rng)
			prefix := gates[:rng.Intn(len(gates)+1)]

			ref := NewBuilder(a, a.N(), init)
			for _, g := range prefix {
				switch g.Kind {
				case GateZZ:
					ref.ZZ(g.Q0, g.Q1, g.Angle, g.Tag)
				case GateSwap:
					ref.Swap(g.Q0, g.Q1)
				case GateZZSwap:
					ref.ZZSwap(g.Q0, g.Q1, g.Angle, g.Tag)
				default:
					ref.C.Append(g)
				}
			}

			bulk := NewBuilder(a, a.N(), init)
			bulk.ReplayPrefix(prefix)

			if len(bulk.C.Gates) != len(ref.C.Gates) {
				t.Fatalf("%s: bulk gate count %d != %d", a.Name, len(bulk.C.Gates), len(ref.C.Gates))
			}
			for i := range ref.C.Gates {
				if bulk.C.Gates[i] != ref.C.Gates[i] {
					t.Fatalf("%s: gate %d differs: %+v != %+v", a.Name, i, bulk.C.Gates[i], ref.C.Gates[i])
				}
			}
			for l := 0; l < a.N(); l++ {
				if bulk.PhysOf(l) != ref.PhysOf(l) {
					t.Fatalf("%s: L2P[%d] = %d != %d", a.Name, l, bulk.PhysOf(l), ref.PhysOf(l))
				}
			}
			for p := 0; p < a.N(); p++ {
				if bulk.LogicalAt(p) != ref.LogicalAt(p) {
					t.Fatalf("%s: P2L[%d] = %d != %d", a.Name, p, bulk.LogicalAt(p), ref.LogicalAt(p))
				}
			}
		}
	}
}

// TestReserveKeepsGatesAndGrowsCapacity checks Reserve preserves contents
// and that a reserved builder appends without reallocating.
func TestReserveKeepsGatesAndGrowsCapacity(t *testing.T) {
	a := arch.Line(4)
	b := NewBuilder(a, 4, nil)
	b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
	before := append([]Gate(nil), b.C.Gates...)
	b.Reserve(100)
	if cap(b.C.Gates)-len(b.C.Gates) < 100 {
		t.Fatalf("reserve left headroom %d", cap(b.C.Gates)-len(b.C.Gates))
	}
	for i := range before {
		if b.C.Gates[i] != before[i] {
			t.Fatal("reserve corrupted existing gates")
		}
	}
	base := &b.C.Gates[0]
	for i := 0; i < 100; i++ {
		b.Swap(i%3, i%3+1)
	}
	if &b.C.Gates[0] != base {
		t.Fatal("appends within reserved capacity still reallocated")
	}
}
