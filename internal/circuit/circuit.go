// Package circuit provides the compiled-circuit intermediate representation:
// gates over physical qubits, ASAP layering and depth, decomposition into
// the CX + single-qubit basis (the paper's metrics, §7.1), and a builder
// that tracks the logical-to-physical mapping while SWAPs are inserted.
package circuit

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Kind enumerates the gate set. ZZ is the permutable two-qubit program
// operator (the QAOA CPHASE / 2-local interaction, Fig 2d); ZZSwap is the
// unified ZZ-then-SWAP gate (2QAN-style "gate unifying": 3 CX instead of 5,
// available when a pattern computes on a pair and immediately swaps it).
type Kind int

const (
	GateH Kind = iota
	GateRX
	GateRZ
	GateZZ
	GateCNOT
	GateSwap
	GateZZSwap
)

func (k Kind) String() string {
	switch k {
	case GateH:
		return "h"
	case GateRX:
		return "rx"
	case GateRZ:
		return "rz"
	case GateZZ:
		return "zz"
	case GateCNOT:
		return "cx"
	case GateSwap:
		return "swap"
	case GateZZSwap:
		return "zzswap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TwoQubit reports whether the kind acts on two qubits.
func (k Kind) TwoQubit() bool {
	switch k {
	case GateZZ, GateCNOT, GateSwap, GateZZSwap:
		return true
	}
	return false
}

// CXCost returns the number of CX gates the kind decomposes into.
func (k Kind) CXCost() int {
	switch k {
	case GateZZ:
		return 2
	case GateCNOT:
		return 1
	case GateSwap, GateZZSwap:
		return 3
	}
	return 0
}

// Gate is one operation on physical qubits. Q1 is -1 for one-qubit gates.
// Tag records the logical problem-graph edge a ZZ/ZZSwap implements, so
// validation can check that every program gate was scheduled exactly once.
type Gate struct {
	Kind   Kind
	Q0, Q1 int
	Angle  float64
	Tag    graph.Edge
	Tagged bool
}

// NewZZ returns a tagged two-qubit program gate on physical qubits p, q.
func NewZZ(p, q int, angle float64, tag graph.Edge) Gate {
	return Gate{Kind: GateZZ, Q0: p, Q1: q, Angle: angle, Tag: tag, Tagged: true}
}

// NewSwap returns a SWAP on physical qubits p, q.
func NewSwap(p, q int) Gate { return Gate{Kind: GateSwap, Q0: p, Q1: q} }

// Circuit is an ordered gate list over NQubits physical qubits.
type Circuit struct {
	NQubits int
	Gates   []Gate
}

// New returns an empty circuit on n physical qubits.
func New(n int) *Circuit { return &Circuit{NQubits: n} }

// Append adds gates, validating qubit indices.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		if g.Q0 < 0 || g.Q0 >= c.NQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range", g.Q0))
		}
		if g.Kind.TwoQubit() {
			if g.Q1 < 0 || g.Q1 >= c.NQubits || g.Q1 == g.Q0 {
				panic(fmt.Sprintf("circuit: invalid 2q gate %v on (%d,%d)", g.Kind, g.Q0, g.Q1))
			}
		}
		c.Gates = append(c.Gates, g)
	}
}

// Depth returns the ASAP critical-path length with every gate (1q and 2q)
// costing one cycle.
func (c *Circuit) Depth() int {
	avail := make([]int, c.NQubits)
	depth := 0
	for _, g := range c.Gates {
		t := avail[g.Q0]
		if g.Kind.TwoQubit() && avail[g.Q1] > t {
			t = avail[g.Q1]
		}
		t++
		avail[g.Q0] = t
		if g.Kind.TwoQubit() {
			avail[g.Q1] = t
		}
		if t > depth {
			depth = t
		}
	}
	return depth
}

// Layers groups the gates into ASAP layers: gate i is placed in the first
// layer after every earlier gate sharing one of its qubits. The returned
// slices index into c.Gates.
func (c *Circuit) Layers() [][]int {
	avail := make([]int, c.NQubits)
	var layers [][]int
	for i, g := range c.Gates {
		t := avail[g.Q0]
		if g.Kind.TwoQubit() && avail[g.Q1] > t {
			t = avail[g.Q1]
		}
		if t == len(layers) {
			layers = append(layers, nil)
		}
		layers[t] = append(layers[t], i)
		avail[g.Q0] = t + 1
		if g.Kind.TwoQubit() {
			avail[g.Q1] = t + 1
		}
	}
	return layers
}

// TwoQubitDepth returns the critical-path length counting only two-qubit
// gates (each one cycle); single-qubit gates are free. This matches how the
// paper's solver counts cycles (all 2q gates take 1 cycle, §4.2).
func (c *Circuit) TwoQubitDepth() int {
	avail := make([]int, c.NQubits)
	depth := 0
	for _, g := range c.Gates {
		if !g.Kind.TwoQubit() {
			continue
		}
		t := avail[g.Q0]
		if avail[g.Q1] > t {
			t = avail[g.Q1]
		}
		t++
		avail[g.Q0] = t
		avail[g.Q1] = t
		if t > depth {
			depth = t
		}
	}
	return depth
}

// CXCount returns the total CX count after decomposition (§7.1: "the number
// of CX gates in the compiled circuit including the original circuit gates
// and those decomposed from the added SWAP gates").
func (c *Circuit) CXCount() int {
	n := 0
	for _, g := range c.Gates {
		n += g.Kind.CXCost()
	}
	return n
}

// GateCount returns the number of gates of each kind.
func (c *Circuit) GateCount() map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range c.Gates {
		m[g.Kind]++
	}
	return m
}

// Decompose returns the circuit expanded into the CX + {H, RX, RZ} basis.
// ZZ(θ) becomes CX·RZ(θ)·CX (the Fig 2d template); SWAP becomes 3 CX;
// ZZSwap(θ) becomes CX(a,b)·RZ(b,θ)... see zzSwapTemplate.
func (c *Circuit) Decompose() *Circuit {
	out := New(c.NQubits)
	for _, g := range c.Gates {
		switch g.Kind {
		case GateZZ:
			out.Append(
				Gate{Kind: GateCNOT, Q0: g.Q0, Q1: g.Q1},
				Gate{Kind: GateRZ, Q0: g.Q1, Q1: -1, Angle: g.Angle},
				Gate{Kind: GateCNOT, Q0: g.Q0, Q1: g.Q1},
			)
		case GateSwap:
			out.Append(
				Gate{Kind: GateCNOT, Q0: g.Q0, Q1: g.Q1},
				Gate{Kind: GateCNOT, Q0: g.Q1, Q1: g.Q0},
				Gate{Kind: GateCNOT, Q0: g.Q0, Q1: g.Q1},
			)
		case GateZZSwap:
			out.Append(zzSwapTemplate(g.Q0, g.Q1, g.Angle)...)
		default:
			out.Append(g)
		}
	}
	return out
}

// zzSwapTemplate implements exp(-i θ/2 Z⊗Z) followed by SWAP in 3 CX:
//
//	CX(a,b) · [RZ(θ) on b] · CX(b,a) · CX(a,b)
//
// The middle rotation commutes through to merge with the SWAP's ladder, so
// the pair costs 3 CX — the gate-unifying trick the paper credits to 2QAN
// and that the structured patterns get for free (gate layer immediately
// followed by a SWAP layer on the same pairs, Fig 6).
func zzSwapTemplate(a, b int, theta float64) []Gate {
	return []Gate{
		{Kind: GateCNOT, Q0: a, Q1: b},
		{Kind: GateRZ, Q0: b, Q1: -1, Angle: theta},
		{Kind: GateCNOT, Q0: b, Q1: a},
		{Kind: GateCNOT, Q0: a, Q1: b},
	}
}

// DecomposedDepth returns Depth() after decomposition into CX + 1q gates —
// the paper's reported circuit-depth metric.
func (c *Circuit) DecomposedDepth() int { return c.Decompose().Depth() }

// Compact relabels the circuit onto the dense qubit set it actually
// touches, returning the remapped circuit and the old-to-new index map.
// Untouched qubits carry no amplitude information, so simulating the
// compacted circuit is exact — this is what lets a 27-qubit device circuit
// with 10 active qubits fit in a 10-qubit statevector.
func (c *Circuit) Compact() (*Circuit, map[int]int) {
	remap := make(map[int]int)
	touch := func(q int) {
		if _, ok := remap[q]; !ok {
			remap[q] = len(remap)
		}
	}
	for _, g := range c.Gates {
		touch(g.Q0)
		if g.Kind.TwoQubit() {
			touch(g.Q1)
		}
	}
	out := New(len(remap))
	for _, g := range c.Gates {
		g.Q0 = remap[g.Q0]
		if g.Kind.TwoQubit() {
			g.Q1 = remap[g.Q1]
		} else {
			g.Q1 = -1
		}
		out.Append(g)
	}
	return out, remap
}
