package circuit

import (
	"bufio"
	"strings"
	"testing"

	"github.com/ata-pattern/ataqc/internal/graph"
)

func TestWriteQASMStructure(t *testing.T) {
	c := New(3)
	c.Append(
		Gate{Kind: GateH, Q0: 0, Q1: -1},
		NewZZ(0, 1, 0.5, graph.NewEdge(0, 1)),
		NewSwap(1, 2),
		Gate{Kind: GateZZSwap, Q0: 0, Q1: 1, Angle: 0.25},
		Gate{Kind: GateRX, Q0: 2, Q1: -1, Angle: 1.5},
	)
	var sb strings.Builder
	if err := c.WriteQASM(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	sc := bufio.NewScanner(strings.NewReader(out))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if lines[0] != "OPENQASM 2.0;" || lines[1] != `include "qelib1.inc";` || lines[2] != "qreg q[3];" {
		t.Fatalf("header wrong: %v", lines[:3])
	}
	// Every gate line must be one of the allowed forms.
	cx, rz, rx, h := 0, 0, 0, 0
	for _, l := range lines[3:] {
		switch {
		case strings.HasPrefix(l, "cx q["):
			cx++
		case strings.HasPrefix(l, "rz("):
			rz++
		case strings.HasPrefix(l, "rx("):
			rx++
		case strings.HasPrefix(l, "h q["):
			h++
		default:
			t.Fatalf("unexpected QASM line %q", l)
		}
	}
	// ZZ = 2 cx, SWAP = 3 cx, ZZSwap = 3 cx.
	if cx != 8 {
		t.Fatalf("cx lines = %d, want 8", cx)
	}
	if rz != 2 || rx != 1 || h != 1 {
		t.Fatalf("1q lines: rz=%d rx=%d h=%d", rz, rx, h)
	}
}

func TestCompact(t *testing.T) {
	c := New(100)
	c.Append(
		NewZZ(90, 7, 0.3, graph.NewEdge(0, 1)),
		Gate{Kind: GateH, Q0: 42, Q1: -1},
	)
	comp, remap := c.Compact()
	if comp.NQubits != 3 {
		t.Fatalf("compact qubits = %d", comp.NQubits)
	}
	if remap[90] != 0 || remap[7] != 1 || remap[42] != 2 {
		t.Fatalf("remap %v", remap)
	}
	if comp.Gates[0].Q0 != 0 || comp.Gates[0].Q1 != 1 || comp.Gates[1].Q0 != 2 {
		t.Fatalf("gates not relabelled: %+v", comp.Gates)
	}
	if comp.Gates[1].Q1 != -1 {
		t.Fatal("1q gate Q1 not normalised")
	}
}

func TestFinalMappingWithEmptySlots(t *testing.T) {
	// Logical 0 at phys 2; swap with empty phys 3, then back.
	c := New(4)
	c.Append(NewSwap(2, 3), NewSwap(3, 2))
	final := FinalMapping(c, []int{2})
	if final[0] != 2 {
		t.Fatalf("final %v", final)
	}
	c2 := New(4)
	c2.Append(NewSwap(2, 3))
	if f := FinalMapping(c2, []int{2}); f[0] != 3 {
		t.Fatalf("final %v", f)
	}
}
