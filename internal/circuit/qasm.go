package circuit

import (
	"fmt"
	"io"
)

// WriteQASM emits the circuit as OpenQASM 2.0 after decomposition into the
// CX + {H, RX, RZ} basis, so the output runs on any QASM toolchain.
func (c *Circuit) WriteQASM(w io.Writer) error {
	d := c.Decompose()
	if _, err := fmt.Fprintf(w, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", c.NQubits); err != nil {
		return err
	}
	for _, g := range d.Gates {
		var err error
		switch g.Kind {
		case GateH:
			_, err = fmt.Fprintf(w, "h q[%d];\n", g.Q0)
		case GateRX:
			_, err = fmt.Fprintf(w, "rx(%.12g) q[%d];\n", g.Angle, g.Q0)
		case GateRZ:
			_, err = fmt.Fprintf(w, "rz(%.12g) q[%d];\n", g.Angle, g.Q0)
		case GateCNOT:
			_, err = fmt.Fprintf(w, "cx q[%d],q[%d];\n", g.Q0, g.Q1)
		default:
			err = fmt.Errorf("circuit: %v survived decomposition", g.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
