package circuit

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteQASM emits the circuit as OpenQASM 2.0 after decomposition into the
// CX + {H, RX, RZ} basis, so the output runs on any QASM toolchain.
func (c *Circuit) WriteQASM(w io.Writer) error {
	d := c.Decompose()
	if _, err := fmt.Fprintf(w, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", c.NQubits); err != nil {
		return err
	}
	for _, g := range d.Gates {
		var err error
		switch g.Kind {
		case GateH:
			_, err = fmt.Fprintf(w, "h q[%d];\n", g.Q0)
		case GateRX:
			_, err = fmt.Fprintf(w, "rx(%.12g) q[%d];\n", g.Angle, g.Q0)
		case GateRZ:
			_, err = fmt.Fprintf(w, "rz(%.12g) q[%d];\n", g.Angle, g.Q0)
		case GateCNOT:
			_, err = fmt.Fprintf(w, "cx q[%d],q[%d];\n", g.Q0, g.Q1)
		default:
			err = fmt.Errorf("circuit: %v survived decomposition", g.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// maxQASMQubits bounds qreg declarations so a malformed or hostile input
// cannot request an absurd allocation. Far above any real device.
const maxQASMQubits = 1 << 20

// ParseQASM reads an OpenQASM 2.0 circuit in the decomposed gate set this
// package emits (h, rx, rz, cx over one qreg). Every malformed construct —
// bad header, unknown statement, out-of-range qubit, non-finite angle — is
// a returned error, never a panic: this is a user-input boundary (see the
// panic-audit rule in DESIGN.md). ParseQASM is the inverse of WriteQASM up
// to angle formatting, which the fuzz round-trip test pins down.
func ParseQASM(r io.Reader) (*Circuit, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Strip // comments, then split on ';' — QASM statements are
	// semicolon-terminated and newlines are insignificant.
	var clean strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	var (
		c       *Circuit
		reg     string
		sawHdr  bool
		stmtNum int
	)
	for _, raw := range strings.Split(clean.String(), ";") {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		stmtNum++
		fail := func(format string, args ...any) error {
			return fmt.Errorf("qasm: statement %d (%q): %s", stmtNum, stmt, fmt.Sprintf(format, args...))
		}
		if !sawHdr {
			if stmt != "OPENQASM 2.0" {
				return nil, fail("expected OPENQASM 2.0 header")
			}
			sawHdr = true
			continue
		}
		if strings.HasPrefix(stmt, "include ") {
			continue
		}
		if rest, ok := strings.CutPrefix(stmt, "qreg "); ok {
			if c != nil {
				return nil, fail("multiple qreg declarations")
			}
			name, n, err := parseReg(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			if n < 1 || n > maxQASMQubits {
				return nil, fail("qreg size %d out of range [1,%d]", n, maxQASMQubits)
			}
			reg, c = name, New(n)
			continue
		}
		if c == nil {
			return nil, fail("gate before qreg declaration")
		}
		op := stmt
		args := ""
		if i := strings.IndexAny(stmt, " ("); i >= 0 {
			op, args = stmt[:i], strings.TrimSpace(stmt[i:])
		}
		switch op {
		case "h":
			q, err := parseOperands(args, reg, c.NQubits, 1)
			if err != nil {
				return nil, fail("%v", err)
			}
			c.Gates = append(c.Gates, Gate{Kind: GateH, Q0: q[0], Q1: -1})
		case "rx", "rz":
			angle, operands, err := parseAngled(args)
			if err != nil {
				return nil, fail("%v", err)
			}
			q, err := parseOperands(operands, reg, c.NQubits, 1)
			if err != nil {
				return nil, fail("%v", err)
			}
			kind := GateRX
			if op == "rz" {
				kind = GateRZ
			}
			c.Gates = append(c.Gates, Gate{Kind: kind, Q0: q[0], Q1: -1, Angle: angle})
		case "cx":
			q, err := parseOperands(args, reg, c.NQubits, 2)
			if err != nil {
				return nil, fail("%v", err)
			}
			if q[0] == q[1] {
				return nil, fail("cx with identical operands q[%d]", q[0])
			}
			c.Gates = append(c.Gates, Gate{Kind: GateCNOT, Q0: q[0], Q1: q[1]})
		default:
			return nil, fail("unsupported operation %q", op)
		}
	}
	if !sawHdr {
		return nil, fmt.Errorf("qasm: empty input")
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration")
	}
	return c, nil
}

// parseReg parses `name[N]`.
func parseReg(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("malformed register %q", s)
	}
	n, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil {
		return "", 0, fmt.Errorf("malformed register size in %q", s)
	}
	return s[:open], n, nil
}

// parseAngled splits `(<angle>) <operands>` and validates the angle.
func parseAngled(s string) (float64, string, error) {
	if !strings.HasPrefix(s, "(") {
		return 0, "", fmt.Errorf("missing angle")
	}
	close := strings.IndexByte(s, ')')
	if close < 0 {
		return 0, "", fmt.Errorf("unterminated angle")
	}
	angle, err := strconv.ParseFloat(strings.TrimSpace(s[1:close]), 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad angle %q", s[1:close])
	}
	if math.IsNaN(angle) || math.IsInf(angle, 0) {
		return 0, "", fmt.Errorf("non-finite angle %v", angle)
	}
	return angle, strings.TrimSpace(s[close+1:]), nil
}

// parseOperands parses `reg[i]` or `reg[i],reg[j]` and range-checks.
func parseOperands(s, reg string, nQubits, want int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("want %d operand(s), got %q", want, s)
	}
	out := make([]int, len(parts))
	for i, part := range parts {
		name, q, err := parseReg(part)
		if err != nil {
			return nil, err
		}
		if name != reg {
			return nil, fmt.Errorf("unknown register %q", name)
		}
		if q < 0 || q >= nQubits {
			return nil, fmt.Errorf("qubit %d out of range [0,%d)", q, nQubits)
		}
		out[i] = q
	}
	return out, nil
}
