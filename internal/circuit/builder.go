package circuit

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// Builder accumulates a compiled circuit while tracking the logical-to-
// physical qubit mapping that SWAP insertion mutates. All builder methods
// take physical qubits and validate them against the coupling graph.
type Builder struct {
	C    *Circuit
	A    *arch.Arch
	L2P  []int // logical -> physical
	P2L  []int // physical -> logical (-1 if no logical qubit resides there)
	init []int // the initial mapping, for Result reporting
}

// NewBuilder returns a builder over architecture a with the given initial
// logical-to-physical mapping. If initial is nil, the identity mapping over
// min(nLogical, a.N()) qubits is used.
func NewBuilder(a *arch.Arch, nLogical int, initial []int) *Builder {
	if nLogical > a.N() {
		panic(fmt.Sprintf("circuit: %d logical qubits exceed %d physical", nLogical, a.N()))
	}
	l2p := make([]int, nLogical)
	if initial == nil {
		for i := range l2p {
			l2p[i] = i
		}
	} else {
		if len(initial) != nLogical {
			panic("circuit: initial mapping length mismatch")
		}
		copy(l2p, initial)
	}
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		if p < 0 || p >= a.N() || p2l[p] != -1 {
			panic(fmt.Sprintf("circuit: invalid initial mapping: logical %d -> physical %d", l, p))
		}
		p2l[p] = l
	}
	ini := make([]int, nLogical)
	copy(ini, l2p)
	return &Builder{C: New(a.N()), A: a, L2P: l2p, P2L: p2l, init: ini}
}

// InitialMapping returns a copy of the builder's starting mapping.
func (b *Builder) InitialMapping() []int {
	out := make([]int, len(b.init))
	copy(out, b.init)
	return out
}

func (b *Builder) checkCoupled(p, q int) {
	if !b.A.G.HasEdge(p, q) {
		panic(fmt.Sprintf("circuit: physical qubits %d,%d not coupled on %s", p, q, b.A.Name))
	}
}

// ZZ appends the program gate for logical edge tag on coupled physical
// qubits p, q.
func (b *Builder) ZZ(p, q int, angle float64, tag graph.Edge) {
	b.checkCoupled(p, q)
	b.C.Append(NewZZ(p, q, angle, tag))
}

// Swap appends a SWAP on coupled physical qubits p, q and updates the
// mapping.
func (b *Builder) Swap(p, q int) {
	b.checkCoupled(p, q)
	b.C.Append(NewSwap(p, q))
	b.swapMapping(p, q)
}

// ZZSwap appends the unified program-gate-plus-SWAP on physical p, q.
func (b *Builder) ZZSwap(p, q int, angle float64, tag graph.Edge) {
	b.checkCoupled(p, q)
	b.C.Append(Gate{Kind: GateZZSwap, Q0: p, Q1: q, Angle: angle, Tag: tag, Tagged: true})
	b.swapMapping(p, q)
}

// Reserve ensures capacity for at least n further gates, so a bulk replay
// or a compile with a known gate count appends without regrowing.
func (b *Builder) Reserve(n int) {
	if cap(b.C.Gates)-len(b.C.Gates) >= n {
		return
	}
	gs := make([]Gate, len(b.C.Gates), len(b.C.Gates)+n)
	copy(gs, b.C.Gates)
	b.C.Gates = gs
}

// ReplayPrefix appends an already-compiled gate sequence in bulk — one
// copy, then one pass folding its SWAPs into the mapping — instead of
// dispatching per-gate builder calls. Unlike ZZ/Swap/ZZSwap it does not
// re-validate couplings or qubit ranges: the prefix must come from a
// compiler result that already passed verification (the hybrid compiler
// replays greedy output here, and core re-verifies the final circuit).
func (b *Builder) ReplayPrefix(gs []Gate) {
	b.Reserve(len(gs))
	b.C.Gates = append(b.C.Gates, gs...)
	for i := range gs {
		switch gs[i].Kind {
		case GateSwap, GateZZSwap:
			b.swapMapping(gs[i].Q0, gs[i].Q1)
		}
	}
}

func (b *Builder) swapMapping(p, q int) {
	lp, lq := b.P2L[p], b.P2L[q]
	b.P2L[p], b.P2L[q] = lq, lp
	if lp >= 0 {
		b.L2P[lp] = q
	}
	if lq >= 0 {
		b.L2P[lq] = p
	}
}

// PhysOf returns the current physical location of logical qubit l.
func (b *Builder) PhysOf(l int) int { return b.L2P[l] }

// CurrentMapping returns a copy of the current logical-to-physical mapping
// — after building, this is the final mapping the compiler claims, which
// the verify pass refolds the circuit's SWAPs to confirm.
func (b *Builder) CurrentMapping() []int {
	out := make([]int, len(b.L2P))
	copy(out, b.L2P)
	return out
}

// LogicalAt returns the logical qubit at physical p, or -1.
func (b *Builder) LogicalAt(p int) int { return b.P2L[p] }

// FinalMapping replays the circuit's SWAPs from the initial mapping and
// returns where each logical qubit ends up — needed to read logical
// measurement outcomes out of the physical basis.
func FinalMapping(c *Circuit, initial []int) []int {
	l2p := append([]int(nil), initial...)
	p2l := make(map[int]int, len(initial))
	for l, p := range l2p {
		p2l[p] = l
	}
	for _, g := range c.Gates {
		if g.Kind == GateSwap || g.Kind == GateZZSwap {
			lu, okU := p2l[g.Q0]
			lv, okV := p2l[g.Q1]
			if okU {
				l2p[lu] = g.Q1
				p2l[g.Q1] = lu
			} else {
				delete(p2l, g.Q1)
			}
			if okV {
				l2p[lv] = g.Q0
				p2l[g.Q0] = lv
			} else {
				delete(p2l, g.Q0)
			}
		}
	}
	return l2p
}

// Validate checks the compiled circuit end to end against the problem
// graph: every 2q gate acts on coupled qubits, and replaying the circuit
// from the initial mapping schedules every problem edge exactly once.
// This is the correctness oracle used by compiler tests.
func Validate(c *Circuit, a *arch.Arch, problem *graph.Graph, initial []int) error {
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range initial {
		if p < 0 || p >= a.N() {
			return fmt.Errorf("initial mapping: logical %d -> invalid physical %d", l, p)
		}
		if p2l[p] != -1 {
			return fmt.Errorf("initial mapping: physical %d assigned twice", p)
		}
		p2l[p] = l
	}
	done := make(map[graph.Edge]int)
	for i, g := range c.Gates {
		if !g.Kind.TwoQubit() {
			continue
		}
		if !a.G.HasEdge(g.Q0, g.Q1) {
			return fmt.Errorf("gate %d (%v) on uncoupled physical pair (%d,%d)", i, g.Kind, g.Q0, g.Q1)
		}
		if g.Kind == GateZZ || g.Kind == GateZZSwap {
			l0, l1 := p2l[g.Q0], p2l[g.Q1]
			if l0 < 0 || l1 < 0 {
				return fmt.Errorf("gate %d: program gate on unmapped qubit", i)
			}
			e := graph.NewEdge(l0, l1)
			if !problem.HasEdge(l0, l1) {
				return fmt.Errorf("gate %d: program gate on non-edge %v", i, e)
			}
			if g.Tagged && g.Tag != e {
				return fmt.Errorf("gate %d: tag %v but logical pair %v", i, g.Tag, e)
			}
			done[e]++
		}
		if g.Kind == GateSwap || g.Kind == GateZZSwap {
			p2l[g.Q0], p2l[g.Q1] = p2l[g.Q1], p2l[g.Q0]
		}
	}
	for _, e := range problem.Edges() {
		switch done[e] {
		case 0:
			return fmt.Errorf("problem edge %v never scheduled", e)
		case 1:
		default:
			return fmt.Errorf("problem edge %v scheduled %d times", e, done[e])
		}
	}
	return nil
}
