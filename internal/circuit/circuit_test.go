package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func TestKindProperties(t *testing.T) {
	if GateH.TwoQubit() || GateRZ.TwoQubit() || GateRX.TwoQubit() {
		t.Fatal("1q gate reported as 2q")
	}
	for _, k := range []Kind{GateZZ, GateCNOT, GateSwap, GateZZSwap} {
		if !k.TwoQubit() {
			t.Fatalf("%v not 2q", k)
		}
	}
	if GateZZ.CXCost() != 2 || GateSwap.CXCost() != 3 || GateZZSwap.CXCost() != 3 || GateCNOT.CXCost() != 1 || GateH.CXCost() != 0 {
		t.Fatal("CX costs wrong")
	}
}

func TestDepthSerialVsParallel(t *testing.T) {
	c := New(4)
	// Two disjoint 2q gates: depth 1.
	c.Append(NewSwap(0, 1), NewSwap(2, 3))
	if d := c.Depth(); d != 1 {
		t.Fatalf("parallel depth = %d", d)
	}
	// A dependent gate: depth 2.
	c.Append(NewSwap(1, 2))
	if d := c.Depth(); d != 2 {
		t.Fatalf("chained depth = %d", d)
	}
}

func TestTwoQubitDepthIgnores1Q(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		c.Append(Gate{Kind: GateH, Q0: 0, Q1: -1})
	}
	c.Append(NewSwap(0, 1))
	if d := c.TwoQubitDepth(); d != 1 {
		t.Fatalf("2q depth = %d", d)
	}
	if d := c.Depth(); d != 6 {
		t.Fatalf("full depth = %d", d)
	}
}

func TestCXCount(t *testing.T) {
	c := New(3)
	c.Append(
		NewZZ(0, 1, 0.5, graph.NewEdge(0, 1)),
		NewSwap(1, 2),
		Gate{Kind: GateZZSwap, Q0: 0, Q1: 1, Angle: 0.3},
		Gate{Kind: GateH, Q0: 2, Q1: -1},
	)
	if n := c.CXCount(); n != 2+3+3 {
		t.Fatalf("CX count = %d, want 8", n)
	}
}

func TestDecomposeKindsAndCounts(t *testing.T) {
	c := New(3)
	c.Append(
		NewZZ(0, 1, 0.5, graph.NewEdge(0, 1)),
		NewSwap(1, 2),
		Gate{Kind: GateZZSwap, Q0: 0, Q1: 1, Angle: 0.3},
	)
	d := c.Decompose()
	counts := d.GateCount()
	if counts[GateCNOT] != c.CXCount() {
		t.Fatalf("decomposed CX = %d, want %d", counts[GateCNOT], c.CXCount())
	}
	if counts[GateZZ] != 0 || counts[GateSwap] != 0 || counts[GateZZSwap] != 0 {
		t.Fatal("composite gates survived decomposition")
	}
	if d.CXCount() != c.CXCount() {
		t.Fatal("CX count not preserved by decomposition")
	}
}

func TestAppendValidation(t *testing.T) {
	c := New(2)
	for _, bad := range []Gate{
		{Kind: GateSwap, Q0: 0, Q1: 0},
		{Kind: GateSwap, Q0: 0, Q1: 5},
		{Kind: GateH, Q0: -1, Q1: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad gate %+v accepted", bad)
				}
			}()
			c.Append(bad)
		}()
	}
}

func TestBuilderMappingTracking(t *testing.T) {
	a := arch.Line(4)
	b := NewBuilder(a, 4, nil)
	if b.PhysOf(2) != 2 || b.LogicalAt(3) != 3 {
		t.Fatal("identity mapping wrong")
	}
	b.Swap(1, 2)
	if b.PhysOf(1) != 2 || b.PhysOf(2) != 1 {
		t.Fatal("mapping not updated by swap")
	}
	if b.LogicalAt(1) != 2 || b.LogicalAt(2) != 1 {
		t.Fatal("reverse mapping not updated")
	}
	b.ZZSwap(0, 1, 0.1, graph.NewEdge(0, 2))
	if b.PhysOf(0) != 1 || b.PhysOf(2) != 0 {
		t.Fatal("zzswap mapping wrong")
	}
}

func TestBuilderRejectsUncoupled(t *testing.T) {
	a := arch.Line(4)
	b := NewBuilder(a, 4, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("uncoupled swap accepted")
		}
	}()
	b.Swap(0, 2)
}

func TestBuilderCustomMapping(t *testing.T) {
	a := arch.Line(4)
	b := NewBuilder(a, 3, []int{3, 1, 0})
	if b.PhysOf(0) != 3 || b.LogicalAt(2) != -1 {
		t.Fatal("custom mapping wrong")
	}
	got := b.InitialMapping()
	if len(got) != 3 || got[0] != 3 {
		t.Fatal("initial mapping copy wrong")
	}
	got[0] = 99
	if b.PhysOf(0) != 3 {
		t.Fatal("initial mapping not a copy")
	}
}

func TestValidateAcceptsCorrectCircuit(t *testing.T) {
	a := arch.Line(3)
	problem := graph.Complete(3)
	b := NewBuilder(a, 3, nil)
	b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
	b.ZZ(1, 2, 1, graph.NewEdge(1, 2))
	b.Swap(1, 2)
	b.ZZ(0, 1, 1, graph.NewEdge(0, 2))
	if err := Validate(b.C, a, problem, b.InitialMapping()); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
}

func TestValidateRejectsMissingEdge(t *testing.T) {
	a := arch.Line(3)
	problem := graph.Complete(3)
	b := NewBuilder(a, 3, nil)
	b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
	if err := Validate(b.C, a, problem, b.InitialMapping()); err == nil {
		t.Fatal("incomplete circuit accepted")
	}
}

func TestValidateRejectsDuplicateEdge(t *testing.T) {
	a := arch.Line(2)
	problem := graph.Complete(2)
	b := NewBuilder(a, 2, nil)
	b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
	b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
	if err := Validate(b.C, a, problem, b.InitialMapping()); err == nil {
		t.Fatal("duplicate program gate accepted")
	}
}

func TestValidateRejectsWrongTag(t *testing.T) {
	a := arch.Line(3)
	problem := graph.Complete(3)
	c := New(3)
	// Tag says (0,2) but qubits hold logical 0,1.
	c.Append(NewZZ(0, 1, 1, graph.NewEdge(0, 2)))
	if err := Validate(c, a, problem, []int{0, 1, 2}); err == nil {
		t.Fatal("mistagged gate accepted")
	}
}

func TestValidateZZSwapUpdatesMapping(t *testing.T) {
	a := arch.Line(3)
	problem := graph.New(3)
	problem.AddEdge(0, 1)
	problem.AddEdge(0, 2)
	b := NewBuilder(a, 3, nil)
	b.ZZSwap(0, 1, 1, graph.NewEdge(0, 1)) // logical 0 moves to phys 1
	b.ZZ(1, 2, 1, graph.NewEdge(0, 2))
	if err := Validate(b.C, a, problem, b.InitialMapping()); err != nil {
		t.Fatalf("zzswap circuit rejected: %v", err)
	}
}

// Property: depth is monotone under appending gates, and never exceeds the
// gate count; CXCount equals the decomposed circuit's CNOT tally.
func TestDepthMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := New(n)
		prev := 0
		for i := 0; i < 30; i++ {
			p := rng.Intn(n)
			q := rng.Intn(n)
			if p == q {
				c.Append(Gate{Kind: GateRZ, Q0: p, Q1: -1, Angle: rng.Float64()})
			} else {
				c.Append(NewSwap(p, q))
			}
			d := c.Depth()
			if d < prev || d > len(c.Gates) {
				return false
			}
			prev = d
		}
		return c.Decompose().GateCount()[GateCNOT] == c.CXCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLayersConsistentWithDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := New(6)
	for i := 0; i < 40; i++ {
		p, q := rng.Intn(6), rng.Intn(6)
		if p == q {
			c.Append(Gate{Kind: GateRZ, Q0: p, Q1: -1, Angle: 0.1})
		} else {
			c.Append(NewSwap(p, q))
		}
	}
	layers := c.Layers()
	if len(layers) != c.Depth() {
		t.Fatalf("layers %d != depth %d", len(layers), c.Depth())
	}
	// Each layer's gates are qubit-disjoint and every gate appears once.
	seen := make([]bool, len(c.Gates))
	for li, layer := range layers {
		used := map[int]bool{}
		for _, gi := range layer {
			if seen[gi] {
				t.Fatalf("gate %d in two layers", gi)
			}
			seen[gi] = true
			g := c.Gates[gi]
			if used[g.Q0] || (g.Kind.TwoQubit() && used[g.Q1]) {
				t.Fatalf("layer %d not qubit-disjoint", li)
			}
			used[g.Q0] = true
			if g.Kind.TwoQubit() {
				used[g.Q1] = true
			}
		}
	}
	for gi, s := range seen {
		if !s {
			t.Fatalf("gate %d missing from layers", gi)
		}
	}
}
