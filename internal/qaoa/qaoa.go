// Package qaoa builds and evaluates QAOA-MaxCut circuits over compiled
// schedules: the phase separator is the compiled permutable-gate schedule
// with rebound angles, the mixer is a transversal RX layer, and expectation
// values are computed exactly or under a noise model via trajectory
// simulation. A Nelder–Mead optimizer stands in for Qiskit's COBYLA
// (substitution: both are derivative-free local optimizers over (γ, β);
// see DESIGN.md).
package qaoa

import (
	"math/rand"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/sim"
)

// CutValue returns the MaxCut value of the assignment encoded in the low
// n bits of basis (bit i = side of vertex i).
func CutValue(problem *graph.Graph, basis int) int {
	cut := 0
	for _, e := range problem.Edges() {
		if (basis>>uint(e.U))&1 != (basis>>uint(e.V))&1 {
			cut++
		}
	}
	return cut
}

// Instance ties a problem graph to its compiled schedule.
type Instance struct {
	Problem  *graph.Graph
	Compiled *circuit.Circuit // program gates carry Angle=1 (scaled by γ)
	Initial  []int            // initial logical-to-physical mapping
	NPhys    int
}

// BuildPhysical instantiates the physical QAOA(p=1) circuit for parameters
// (gamma, beta): Hadamards on the initial logical positions, the compiled
// phase-separator schedule with all program-gate angles scaled by gamma,
// and the RX(2*beta) mixer on the final logical positions.
func (in *Instance) BuildPhysical(gamma, beta float64) *circuit.Circuit {
	c := circuit.New(in.NPhys)
	for _, p := range in.Initial {
		c.Append(circuit.Gate{Kind: circuit.GateH, Q0: p, Q1: -1})
	}
	for _, g := range in.Compiled.Gates {
		switch g.Kind {
		case circuit.GateZZ, circuit.GateZZSwap:
			g.Angle *= gamma
		}
		c.Append(g)
	}
	final := circuit.FinalMapping(in.Compiled, in.Initial)
	for _, p := range final {
		c.Append(circuit.Gate{Kind: circuit.GateRX, Q0: p, Q1: -1, Angle: 2 * beta})
	}
	return c
}

// prepared builds the physical circuit for (gamma, beta), compacts it onto
// the qubits it actually touches (so a sparse layout on a large device
// still fits the statevector), and returns the compact circuit plus the
// final logical positions in compact indices. The noise model, when
// needed, is remapped alongside.
func (in *Instance) prepared(gamma, beta float64, nm *noise.Model) (*circuit.Circuit, []int, *noise.Model) {
	full := in.BuildPhysical(gamma, beta)
	comp, remap := full.Compact()
	fullFinal := circuit.FinalMapping(in.Compiled, in.Initial)
	final := make([]int, len(fullFinal))
	for l, p := range fullFinal {
		// Every final position was touched (the mixer RX runs there).
		final[l] = remap[p]
	}
	var cnm *noise.Model
	if nm != nil {
		cnm = &noise.Model{
			TwoQubit:        make(map[graph.Edge]float64),
			SingleQubit:     make([]float64, comp.NQubits),
			Readout:         make([]float64, comp.NQubits),
			IdlePerCycle:    nm.IdlePerCycle,
			CrosstalkFactor: nm.CrosstalkFactor,
		}
		//vet:ignore maprange indexed writes into disjoint slots, order-independent
		for old, nw := range remap {
			cnm.SingleQubit[nw] = nm.SingleQubit[old]
			cnm.Readout[nw] = nm.Readout[old]
		}
		//vet:ignore maprange map-to-map copy, order-independent
		for e, v := range nm.TwoQubit {
			nu, okU := remap[e.U]
			nv, okV := remap[e.V]
			if okU && okV {
				cnm.TwoQubit[graph.NewEdge(nu, nv)] = v
			}
		}
	}
	return comp, final, cnm
}

// cutOfBasis returns the cut value of a basis state read through the final
// mapping (in compact indices).
func (in *Instance) cutOfBasis(final []int) func(int) float64 {
	edges := in.Problem.Edges()
	return func(basis int) float64 {
		cut := 0
		for _, e := range edges {
			bu := (basis >> uint(final[e.U])) & 1
			bv := (basis >> uint(final[e.V])) & 1
			if bu != bv {
				cut++
			}
		}
		return float64(cut)
	}
}

// Expectation returns the exact expected cut value for (gamma, beta).
func (in *Instance) Expectation(gamma, beta float64) float64 {
	c, final, _ := in.prepared(gamma, beta, nil)
	s := sim.NewZero(c.NQubits)
	s.Run(c)
	return sim.DiagonalExpectation(s.Probabilities(), in.cutOfBasis(final))
}

// NoisyExpectation returns the trajectory-averaged expected cut under the
// noise model.
func (in *Instance) NoisyExpectation(gamma, beta float64, nm *noise.Model, opts sim.NoisyOptions, rng *rand.Rand) float64 {
	c, final, cnm := in.prepared(gamma, beta, nm)
	probs := sim.NoisyProbabilities(c, cnm, opts, rng)
	return sim.DiagonalExpectation(probs, in.cutOfBasis(final))
}

// LogicalDistribution returns the exact logical-basis output distribution
// for (gamma, beta) — the ground truth for TVD experiments.
func (in *Instance) LogicalDistribution(gamma, beta float64) []float64 {
	c, final, _ := in.prepared(gamma, beta, nil)
	s := sim.NewZero(c.NQubits)
	s.Run(c)
	return marginal(s.Probabilities(), final, in.Problem.N())
}

// NoisyLogicalDistribution is the trajectory-averaged distribution with
// readout error applied.
func (in *Instance) NoisyLogicalDistribution(gamma, beta float64, nm *noise.Model, opts sim.NoisyOptions, rng *rand.Rand) []float64 {
	c, final, cnm := in.prepared(gamma, beta, nm)
	opts.Readout = true
	probs := sim.NoisyProbabilities(c, cnm, opts, rng)
	return marginal(probs, final, in.Problem.N())
}

func marginal(probs []float64, final []int, n int) []float64 {
	out := make([]float64, 1<<uint(n))
	for basis, p := range probs {
		if p == 0 {
			continue
		}
		idx := 0
		for l := 0; l < n; l++ {
			if basis&(1<<uint(final[l])) != 0 {
				idx |= 1 << uint(l)
			}
		}
		out[idx] += p
	}
	return out
}
