package qaoa

import (
	"github.com/ata-pattern/ataqc/internal/circuit"
)

// BuildTrotterized instantiates a first-order Trotterised evolution
// exp(-i H t) for a 2-local ZZ Hamiltonian over the compiled schedule:
// `steps` repetitions of the schedule with every program-gate angle set to
// theta = t/steps.
//
// Odd repetitions replay the compiled schedule as-is; even repetitions
// replay it *reversed*, which (a) is still a valid schedule — reversing a
// sequence of mapping-tracked operations keeps every gate on coupled
// qubits with the same logical pairs — and (b) returns every logical qubit
// to its pre-round position, so the mapping comes home after each
// odd/even pair and no re-synthesis per step is needed. This is the
// standard back-and-forth trick for Trotterised swap networks.
func (in *Instance) BuildTrotterized(steps int, theta float64) *circuit.Circuit {
	c := circuit.New(in.NPhys)
	fwd := in.Compiled.Gates
	for s := 0; s < steps; s++ {
		if s%2 == 0 {
			for _, g := range fwd {
				c.Append(scaleAngle(g, theta))
			}
		} else {
			for i := len(fwd) - 1; i >= 0; i-- {
				c.Append(scaleAngle(fwd[i], theta))
			}
		}
	}
	return c
}

func scaleAngle(g circuit.Gate, theta float64) circuit.Gate {
	switch g.Kind {
	case circuit.GateZZ, circuit.GateZZSwap:
		g.Angle = theta
	}
	return g
}

// TrotterFinalMapping returns the logical-to-physical mapping after the
// Trotterised circuit: identity relative to Initial when steps is even,
// the single-pass final mapping when odd.
func (in *Instance) TrotterFinalMapping(steps int) []int {
	if steps%2 == 0 {
		out := make([]int, len(in.Initial))
		copy(out, in.Initial)
		return out
	}
	return circuit.FinalMapping(in.Compiled, in.Initial)
}
