package qaoa

import "sort"

// NelderMead minimises f over len(x0) dimensions with the standard simplex
// method (reflection 1, expansion 2, contraction 0.5, shrink 0.5). It
// returns the best point found and the best objective value after each
// function evaluation — the convergence trace of Fig 24/25 (where the
// x-axis is optimizer rounds).
func NelderMead(f func([]float64) float64, x0 []float64, maxEvals int) (best []float64, trace []float64) {
	n := len(x0)
	type vertex struct {
		x []float64
		v float64
	}
	evals := 0
	bestV := 0.0
	eval := func(x []float64) float64 {
		v := f(x)
		evals++
		if evals == 1 || v < bestV {
			bestV = v
			best = append(best[:0], x...)
		}
		trace = append(trace, bestV)
		return v
	}

	// Initial simplex: x0 plus one step per axis.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].v = eval(simplex[0].x)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := 0.4
		if x[i] != 0 {
			step = 0.25 * x[i]
			if step < 0 {
				step = -step
			}
			if step < 0.1 {
				step = 0.1
			}
		}
		x[i] += step
		simplex[i+1] = vertex{x: x, v: eval(x)}
	}

	for evals < maxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		// Centroid of all but worst.
		cen := make([]float64, n)
		for _, vx := range simplex[:n] {
			for i := range cen {
				cen[i] += vx.x[i] / float64(n)
			}
		}
		worst := simplex[n]
		refl := make([]float64, n)
		for i := range refl {
			refl[i] = cen[i] + (cen[i] - worst.x[i])
		}
		rv := eval(refl)
		switch {
		case rv < simplex[0].v:
			// Try expansion.
			exp := make([]float64, n)
			for i := range exp {
				exp[i] = cen[i] + 2*(cen[i]-worst.x[i])
			}
			if evals < maxEvals {
				ev := eval(exp)
				if ev < rv {
					simplex[n] = vertex{x: exp, v: ev}
					continue
				}
			}
			simplex[n] = vertex{x: refl, v: rv}
		case rv < simplex[n-1].v:
			simplex[n] = vertex{x: refl, v: rv}
		default:
			// Contraction.
			con := make([]float64, n)
			for i := range con {
				con[i] = cen[i] + 0.5*(worst.x[i]-cen[i])
			}
			if evals >= maxEvals {
				break
			}
			cv := eval(con)
			if cv < worst.v {
				simplex[n] = vertex{x: con, v: cv}
				continue
			}
			// Shrink toward best.
			for j := 1; j <= n && evals < maxEvals; j++ {
				for i := range simplex[j].x {
					simplex[j].x[i] = simplex[0].x[i] + 0.5*(simplex[j].x[i]-simplex[0].x[i])
				}
				simplex[j].v = eval(simplex[j].x)
			}
		}
	}
	return best, trace
}
