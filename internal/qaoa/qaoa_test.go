package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/sim"
)

func TestCutValue(t *testing.T) {
	tri := graph.Cycle(3)
	if CutValue(tri, 0b000) != 0 {
		t.Fatal("uncut triangle")
	}
	if CutValue(tri, 0b001) != 2 {
		t.Fatalf("cut(001) = %d", CutValue(tri, 0b001))
	}
	if CutValue(tri, 0b111) != 0 {
		t.Fatal("all-ones cut")
	}
}

func newInstance(t *testing.T, n int, density float64, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := graph.GnpConnected(n, density, rng)
	a := arch.GridN(n)
	res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Problem: p, Compiled: res.Circuit, Initial: res.Initial, NPhys: a.N()}
}

func TestZeroGammaGivesUniformHalfExpectation(t *testing.T) {
	// gamma=0, beta=0: the state stays |+>^n, every edge is cut with
	// probability 1/2, so E[cut] = m/2.
	in := newInstance(t, 8, 0.4, 1)
	e := in.Expectation(0, 0)
	want := float64(in.Problem.M()) / 2
	if math.Abs(e-want) > 1e-7 {
		t.Fatalf("E[cut] at (0,0) = %v, want %v", e, want)
	}
}

func TestQAOAImprovesOverRandom(t *testing.T) {
	in := newInstance(t, 8, 0.4, 2)
	base := float64(in.Problem.M()) / 2
	// A small parameter scan must beat the random-assignment baseline.
	best := 0.0
	// E(-gamma, beta) = E(gamma, -beta), so scan both gamma signs.
	for _, gamma := range []float64{-0.8, -0.6, -0.4, -0.2, 0.2, 0.4, 0.6, 0.8} {
		for _, beta := range []float64{0.2, 0.4, 0.6} {
			if e := in.Expectation(gamma, beta); e > best {
				best = e
			}
		}
	}
	if best <= base {
		t.Fatalf("QAOA best %v not above random %v", best, base)
	}
}

func TestExpectationMatchesDirectLogicalSimulation(t *testing.T) {
	// Cross-check the compiled-schedule expectation against a logical-only
	// simulation of the same QAOA circuit.
	in := newInstance(t, 7, 0.5, 3)
	gamma, beta := 0.7, 0.3
	got := in.Expectation(gamma, beta)

	n := in.Problem.N()
	s := sim.NewZero(n)
	for q := 0; q < n; q++ {
		s.H(q)
	}
	for _, e := range in.Problem.Edges() {
		s.ZZ(e.U, e.V, gamma)
	}
	for q := 0; q < n; q++ {
		s.RX(q, 2*beta)
	}
	want := sim.DiagonalExpectation(s.Probabilities(), func(b int) float64 {
		return float64(CutValue(in.Problem, b))
	})
	if math.Abs(got-want) > 1e-7 {
		t.Fatalf("compiled expectation %v != logical %v", got, want)
	}
}

func TestNoisyExpectationBelowExactOptimum(t *testing.T) {
	in := newInstance(t, 6, 0.5, 4)
	a := arch.GridN(6)
	nm := noise.Uniform(a, 0.03, 1e-3, 0.02, 1e-3)
	rng := rand.New(rand.NewSource(7))
	gamma, beta := 0.6, 0.35
	exact := in.Expectation(gamma, beta)
	noisy := in.NoisyExpectation(gamma, beta, nm, sim.NoisyOptions{Trajectories: 48}, rng)
	// Noise pushes the distribution toward uniform, dragging the
	// expectation toward m/2.
	uniform := float64(in.Problem.M()) / 2
	if exact <= uniform {
		t.Skip("chosen angles do not beat uniform; skip degradation check")
	}
	if noisy >= exact {
		t.Fatalf("noisy expectation %v not below exact %v", noisy, exact)
	}
}

func TestLogicalDistributionNormalised(t *testing.T) {
	in := newInstance(t, 6, 0.4, 5)
	d := in.LogicalDistribution(0.5, 0.3)
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if len(d) != 1<<6 {
		t.Fatalf("distribution size %d", len(d))
	}
}

func TestNelderMeadOnQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1.5)*(x[0]-1.5) + (x[1]+0.5)*(x[1]+0.5)
	}
	best, trace := NelderMead(f, []float64{0, 0}, 120)
	if len(trace) == 0 || len(trace) > 120 {
		t.Fatalf("trace length %d", len(trace))
	}
	if f(best) > 1e-3 {
		t.Fatalf("Nelder-Mead converged to %v (f=%v)", best, f(best))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1]+1e-12 {
			t.Fatal("trace not monotone non-increasing")
		}
	}
}

func TestNelderMeadFindsQAOAOptimum(t *testing.T) {
	in := newInstance(t, 6, 0.5, 6)
	f := func(x []float64) float64 { return -in.Expectation(x[0], x[1]) }
	_, trace := NelderMead(f, []float64{0.4, 0.2}, 40)
	final := -trace[len(trace)-1]
	if final <= float64(in.Problem.M())/2 {
		t.Fatalf("optimised expectation %v not above uniform", final)
	}
}
