package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/hamiltonian"
	"github.com/ata-pattern/ataqc/internal/sim"
)

func trotterInstance(t *testing.T, n int, density float64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	p := graph.GnpConnected(n, density, rng)
	a := arch.GridN(n)
	res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid})
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Problem: p, Compiled: res.Circuit, Initial: res.Initial, NPhys: a.N()}
}

// TestTrotterEvenStepsRestoreMapping: after an even number of Trotter
// steps the mapping must equal the initial placement.
func TestTrotterEvenStepsRestoreMapping(t *testing.T) {
	in := trotterInstance(t, 8, 0.5)
	c := in.BuildTrotterized(2, 0.1)
	final := circuit.FinalMapping(c, in.Initial)
	for l, p := range in.Initial {
		if final[l] != p {
			t.Fatalf("logical %d moved: %d -> %d", l, p, final[l])
		}
	}
	want := in.TrotterFinalMapping(2)
	for l := range want {
		if want[l] != in.Initial[l] {
			t.Fatal("TrotterFinalMapping(even) not identity")
		}
	}
}

// TestTrotterMatchesDirectEvolution: for a ZZ Hamiltonian all terms
// commute, so the Trotterised circuit is EXACT — steps at theta = t/steps
// must match a single application of every term at angle t, up to the
// qubit permutation.
func TestTrotterMatchesDirectEvolution(t *testing.T) {
	in := trotterInstance(t, 7, 0.4)
	tTotal := 0.9
	steps := 3
	c := in.BuildTrotterized(steps, tTotal/float64(steps))

	// Reference: each term once at angle tTotal on the logical qubits.
	n := in.Problem.N()
	ref := sim.NewZero(n)
	for q := 0; q < n; q++ {
		ref.H(q)
	}
	for _, e := range in.Problem.Edges() {
		ref.ZZ(e.U, e.V, tTotal)
	}
	refProbs := marginalIdentity(ref.Probabilities(), n)

	phys := sim.NewZero(in.NPhys)
	for _, p := range in.Initial {
		phys.H(p)
	}
	phys.Run(c)
	final := circuit.FinalMapping(c, in.Initial)
	got := marginal(phys.Probabilities(), final, n)

	for i := range refProbs {
		if math.Abs(refProbs[i]-got[i]) > 1e-7 {
			t.Fatalf("distribution mismatch at %d: %v vs %v", i, refProbs[i], got[i])
		}
	}
}

// marginalIdentity treats qubit l as living at physical l.
func marginalIdentity(probs []float64, n int) []float64 {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	return marginal(probs, id, n)
}

// TestTrotterGateCountScalesLinearly: k steps cost exactly k times the
// single-pass CX count.
func TestTrotterGateCountScalesLinearly(t *testing.T) {
	in := trotterInstance(t, 8, 0.4)
	one := in.BuildTrotterized(1, 0.2).CXCount()
	four := in.BuildTrotterized(4, 0.05).CXCount()
	if four != 4*one {
		t.Fatalf("CX: 1 step %d, 4 steps %d", one, four)
	}
}

// TestTrotterOnHamiltonianBenchmarks compiles the Table 3 models and
// builds multi-step evolutions (structure check only; 64 qubits exceed the
// simulator).
func TestTrotterOnHamiltonianBenchmarks(t *testing.T) {
	a := arch.HeavyHexN(64)
	for _, name := range hamiltonian.Names() {
		p, err := hamiltonian.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := &Instance{Problem: p, Compiled: res.Circuit, Initial: res.Initial, NPhys: a.N()}
		c := in.BuildTrotterized(4, 0.1)
		if c.CXCount() != 4*res.Circuit.CXCount() {
			t.Fatalf("%s: trotter CX %d != 4x%d", name, c.CXCount(), res.Circuit.CXCount())
		}
	}
}
