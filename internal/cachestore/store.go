package cachestore

import (
	"bufio"
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the on-disk tier: one file per entry under 256 hash-prefix
// shard directories, plus an append-only journal (index.log) that lets
// Open rebuild the entry table without statting every file. All methods
// are safe for concurrent use.
//
// Get never returns an error: absent, unreadable, or corrupt entries are
// misses (corrupt ones also bump the corruption counter and are deleted).
// Put reports real I/O failures — callers on the compile path treat them
// as best-effort and keep going.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	index   *os.File
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *diskMeta
	total   int64

	hits, misses, puts, corrupt, evictions int64
}

type diskMeta struct {
	key  Key
	size int64
}

// StoreStats is a point-in-time snapshot of the disk tier.
type StoreStats struct {
	Hits, Misses, Puts, Corrupt, Evictions int64
	Entries                                int
	Bytes                                  int64
}

const indexName = "index.log"

// Open readies dir as a store, creating it if needed. maxBytes bounds
// the total entry bytes on disk (0 = unbounded); exceeding it evicts
// approximately-least-recently-used entries. An unreadable or partially
// written journal falls back to a full directory rescan — crash debris
// costs a slower open, never an error.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
	if !s.replayIndex() {
		if err := s.rescan(); err != nil {
			return nil, err
		}
	}
	idx, err := os.OpenFile(filepath.Join(dir, indexName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s.index = idx
	s.mu.Lock()
	s.evictLocked(Key{})
	s.mu.Unlock()
	return s, nil
}

// Close releases the journal handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		return nil
	}
	err := s.index.Close()
	s.index = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// replayIndex rebuilds the entry table from the journal. It returns
// false when the journal is absent or unusable; a torn final line (a
// crash mid-append) is tolerated by ignoring unparsable lines.
func (s *Store) replayIndex() bool {
	f, err := os.Open(filepath.Join(s.dir, indexName))
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 4096), 1<<20)
	any := false
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		k, ok := parseFilename(fields[1])
		if !ok {
			continue
		}
		switch fields[0] {
		case "P":
			if len(fields) != 3 {
				continue
			}
			size, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || size < 0 {
				continue
			}
			s.insertMeta(k, size)
			any = true
		case "D":
			s.removeMeta(k)
			any = true
		}
	}
	if sc.Err() != nil {
		return false
	}
	// An empty journal over a non-empty store means the journal was
	// clobbered; make the caller rescan.
	if !any && s.hasEntryFiles() {
		return false
	}
	return true
}

func (s *Store) hasEntryFiles() bool {
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return false
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".e") {
				return true
			}
		}
	}
	return false
}

// rescan walks the shard directories and rebuilds both the entry table
// and a fresh journal (written atomically so a crash mid-rescan leaves
// the old one).
func (s *Store) rescan() error {
	s.entries = make(map[Key]*list.Element)
	s.lru = list.New()
	s.total = 0
	dirs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	var lines []string
	for _, d := range dirs {
		if !d.IsDir() || len(d.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, d.Name()))
		if err != nil {
			continue
		}
		sort.Slice(files, func(i, j int) bool { return files[i].Name() < files[j].Name() })
		for _, f := range files {
			k, ok := parseFilename(f.Name())
			if !ok {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.insertMeta(k, info.Size())
			lines = append(lines, fmt.Sprintf("P %s %d\n", f.Name(), info.Size()))
		}
	}
	tmp, err := os.CreateTemp(s.dir, "index-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	for _, l := range lines {
		if _, err := tmp.WriteString(l); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("cachestore: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// insertMeta and removeMeta maintain the in-memory table; callers hold
// the lock (or run single-threaded during Open).
func (s *Store) insertMeta(k Key, size int64) {
	if el, ok := s.entries[k]; ok {
		m := el.Value.(*diskMeta)
		s.total += size - m.size
		m.size = size
		s.lru.MoveToFront(el)
		return
	}
	s.entries[k] = s.lru.PushFront(&diskMeta{key: k, size: size})
	s.total += size
}

func (s *Store) removeMeta(k Key) {
	if el, ok := s.entries[k]; ok {
		s.total -= el.Value.(*diskMeta).size
		s.lru.Remove(el)
		delete(s.entries, k)
	}
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.shardDir(), k.filename())
}

// Put stores payload under k, replacing any existing entry. The data
// file is fsync'd before the rename and the journal line is fsync'd
// after it, so a crash leaves either the old entry, the new entry, or a
// journal/file skew the next Open's Get-time validation absorbs.
func (s *Store) Put(k Key, payload []byte) error {
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("cachestore: payload %d bytes exceeds the %d cap", len(payload), maxPayloadLen)
	}
	blob := EncodeEntry(k, payload)
	shard := filepath.Join(s.dir, k.shardDir())
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "put-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.insertMeta(k, int64(len(blob)))
	s.journalLocked(fmt.Sprintf("P %s %d\n", k.filename(), len(blob)))
	s.evictLocked(k)
	return nil
}

// Get returns the payload stored under k. Missing entries are plain
// misses; entries that fail validation are deleted, counted corrupt, and
// reported as misses.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.lru.MoveToFront(el)
	path := s.path(k)
	s.mu.Unlock()

	blob, err := os.ReadFile(path)
	if err != nil {
		// The journal promised an entry the filesystem no longer has —
		// treat exactly like corruption.
		s.dropCorrupt(k, path)
		return nil, false
	}
	gotKey, payload, derr := DecodeEntry(blob)
	if derr != nil || gotKey != k {
		s.dropCorrupt(k, path)
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return payload, true
}

// dropCorrupt removes a damaged entry: counter, table, journal, file.
func (s *Store) dropCorrupt(k Key, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrupt++
	s.misses++
	s.removeMeta(k)
	s.journalLocked(fmt.Sprintf("D %s\n", k.filename()))
	os.Remove(path)
}

// evictLocked deletes least-recently-used entries until the byte budget
// holds, never evicting keep (the entry just written).
func (s *Store) evictLocked(keep Key) {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes {
		oldest := s.lru.Back()
		if oldest == nil {
			return
		}
		m := oldest.Value.(*diskMeta)
		if m.key == keep {
			return
		}
		s.removeMeta(m.key)
		s.evictions++
		s.journalLocked(fmt.Sprintf("D %s\n", m.key.filename()))
		os.Remove(s.path(m.key))
	}
}

// journalLocked appends one line to the index and fsyncs it. Journal
// write failures are swallowed: the journal is an optimization — a stale
// one costs a rescan or a Get-time validation miss, not correctness.
func (s *Store) journalLocked(line string) {
	if s.index == nil {
		return
	}
	if _, err := s.index.WriteString(line); err == nil {
		_ = s.index.Sync()
	}
}

// Keys lists the stored keys for one (kind, arch) pair in recency order,
// most recent first — the warm-boot path uses it to preload every
// pattern record of an architecture.
func (s *Store) Keys(kind Kind, archFP uint64) []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Key
	for el := s.lru.Front(); el != nil; el = el.Next() {
		m := el.Value.(*diskMeta)
		if m.key.Kind == kind && m.key.Arch == archFP {
			out = append(out, m.key)
		}
	}
	return out
}

// Stats snapshots the disk-tier counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Corrupt: s.corrupt, Evictions: s.evictions,
		Entries: len(s.entries), Bytes: s.total,
	}
}
