package cachestore

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzEntryCodec feeds the entry frame decoder raw bytes: it must never
// panic, and anything it accepts must re-encode to the identical blob
// (the frame is canonical — one byte string per (key, payload)).
func FuzzEntryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEntry(testKey(1), nil))
	f.Add(EncodeEntry(testKey(2), []byte("payload")))
	f.Add(EncodeEntry(testKey(3), EncodeResult(sampleResult())))
	long := EncodeEntry(testKey(4), bytes.Repeat([]byte{0xab}, 1024))
	f.Add(long)
	f.Add(long[:len(long)-3]) // truncated
	flipped := append([]byte(nil), long...)
	flipped[100] ^= 0x10
	f.Add(flipped) // bit-rotted
	f.Fuzz(func(t *testing.T, data []byte) {
		k, payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if got := EncodeEntry(k, payload); !bytes.Equal(got, data) {
			t.Fatalf("accepted non-canonical frame: %d bytes re-encode to %d", len(data), len(got))
		}
	})
}

// FuzzRecordCodecs drives the payload decoders with raw bytes: no
// panics, and any accepted record must re-encode to a stream whose
// decode equals the first (varints admit non-minimal encodings, so the
// stable property is decode∘encode idempotence, not byte identity).
func FuzzRecordCodecs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeResult(sampleResult()))
	f.Add(EncodeSolver(&SolverRecord{Depth: 3, Explored: 9}))
	f.Add(EncodePattern(&PatternRecord{Qubits: []int{1, 2}, InRegion: []bool{false, true, true}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeResult(data); err == nil {
			r2, err := DecodeResult(EncodeResult(r))
			if err != nil || !reflect.DeepEqual(r, r2) {
				t.Fatalf("result record re-encode unstable: %v", err)
			}
		}
		if p, err := DecodePattern(data); err == nil {
			p2, err := DecodePattern(EncodePattern(p))
			if err != nil || !reflect.DeepEqual(p, p2) {
				t.Fatalf("pattern record re-encode unstable: %v", err)
			}
		}
		if s, err := DecodeSolver(data); err == nil {
			s2, err := DecodeSolver(EncodeSolver(s))
			if err != nil || *s != *s2 {
				t.Fatalf("solver record re-encode unstable: %v", err)
			}
		}
	})
}
