package cachestore

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
)

func testKey(i byte) Key {
	var h [32]byte
	h[0] = i
	h[31] = i ^ 0x5a
	return ResultKey(0xfeed, h, uint64(i))
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(1)
	payload := []byte("compiled circuit bytes")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes <= int64(len(payload)) {
		t.Fatalf("accounted bytes %d do not cover payload+frame", st.Bytes)
	}
}

func TestStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		if err := s.Put(testKey(i), []byte{i, i, i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Journal replay path.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 10; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || len(got) != 3 || got[0] != i {
			t.Fatalf("after reopen: entry %d = %v, %v", i, got, ok)
		}
	}
	s2.Close()

	// Rescan path: delete the journal, entries must still be found.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for i := byte(0); i < 10; i++ {
		if _, ok := s3.Get(testKey(i)); !ok {
			t.Fatalf("after rescan: entry %d missing", i)
		}
	}
}

func TestStoreCorruptionIsSilentMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(3)
	if err := s.Put(k, []byte("precious bits")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.shardDir(), k.filename())
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40 // flip one bit mid-payload
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file was not deleted")
	}
	// And again: now a plain miss, not another corruption.
	if _, ok := s.Get(k); ok {
		t.Fatal("deleted entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter moved to %d on a plain miss", st.Corrupt)
	}
}

func TestStoreDeletedFileIsSilentMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(7)
	if err := s.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, k.shardDir(), k.filename())); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("vanished file served as a hit")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("stale entry meta survived: %+v", st)
	}
}

func TestStoreEviction(t *testing.T) {
	// Each entry is ~entryHeader+payload+trailer bytes; budget for ~3.
	payload := make([]byte, 100)
	entrySize := int64(len(EncodeEntry(testKey(0), payload)))
	s, err := Open(t.TempDir(), 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := byte(0); i < 8; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3 after eviction", st.Entries)
	}
	if st.Bytes > 3*entrySize {
		t.Fatalf("bytes %d exceed the %d budget", st.Bytes, 3*entrySize)
	}
	if st.Evictions != 5 {
		t.Fatalf("evictions = %d, want 5", st.Evictions)
	}
	// Most recent entries survive.
	for i := byte(5); i < 8; i++ {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("recent entry %d was evicted", i)
		}
	}
}

func TestStoreKeysFilters(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var h [32]byte
	if err := s.Put(ResultKey(1, h, 0), []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(PatternKey(1, arch.Region{U0: 0, U1: 1}), []byte("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(PatternKey(1, arch.Region{U0: 2, U1: 3}), []byte("p2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(PatternKey(2, arch.Region{U0: 0, U1: 1}), []byte("other-arch")); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Keys(KindPattern, 1)); got != 2 {
		t.Fatalf("Keys(pattern, arch 1) = %d entries, want 2", got)
	}
	if got := len(s.Keys(KindResult, 1)); got != 1 {
		t.Fatalf("Keys(result, arch 1) = %d entries, want 1", got)
	}
}

func TestStoreTornJournalRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: garbage tail line.
	f, err := os.OpenFile(filepath.Join(dir, indexName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("P deadbeef") // torn, unparsable
	f.Close()
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(testKey(1)); !ok {
		t.Fatal("entry lost after torn journal line")
	}
}

func TestTieredPromotion(t *testing.T) {
	dir := t.TempDir()
	disk, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTiered(disk, 8)
	k := testKey(9)
	if err := tc.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, tier, ok := tc.Get(k); !ok || tier != TierMem {
		t.Fatalf("first get tier = %q, want mem", tier)
	}
	tc.Close()

	// A fresh Tiered over the same dir: first hit from disk, second from
	// the promoted mem entry.
	disk2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc2 := NewTiered(disk2, 8)
	defer tc2.Close()
	if _, tier, ok := tc2.Get(k); !ok || tier != TierDisk {
		t.Fatalf("warm-boot get tier = %q, want disk", tier)
	}
	if _, tier, ok := tc2.Get(k); !ok || tier != TierMem {
		t.Fatalf("post-promotion get tier = %q, want mem", tier)
	}
	st := tc2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTieredMemoryOnly(t *testing.T) {
	tc := NewTiered(nil, 2)
	defer tc.Close()
	for i := byte(0); i < 4; i++ {
		if err := tc.Put(testKey(i), []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := tc.Get(testKey(0)); ok {
		t.Fatal("mem LRU did not evict the oldest entry")
	}
	if _, tier, ok := tc.Get(testKey(3)); !ok || tier != TierMem {
		t.Fatalf("recent entry tier = %q, %v", tier, ok)
	}
	if st := tc.Stats(); st.MemEntries != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
