package cachestore

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
)

// Entry wire format (little-endian):
//
//	magic   [4]byte  "ATQC"
//	version uint16   entryVersion
//	key     [49]byte Key.encode — the file's content address, echoed so a
//	                 misnamed or cross-linked file cannot satisfy a Get
//	payload uint32   length, then that many bytes
//	sum     uint64   FNV-64a over every preceding byte
//
// DecodeEntry never panics: every malformed shape — short buffer, bad
// magic, version skew, oversized length, trailing garbage, checksum
// mismatch — is an error the store translates into a silent miss.

var entryMagic = [4]byte{'A', 'T', 'Q', 'C'}

const (
	entryVersion  = 1
	entryHeader   = 4 + 2 + keyBytes + 4
	entryTrailer  = 8
	maxPayloadLen = 16 << 20
)

// ErrCorrupt reports an entry that failed structural or checksum
// validation.
var ErrCorrupt = errors.New("cachestore: corrupt entry")

// EncodeEntry frames a payload for disk under its key.
func EncodeEntry(k Key, payload []byte) []byte {
	out := make([]byte, 0, entryHeader+len(payload)+entryTrailer)
	out = append(out, entryMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, entryVersion)
	enc := k.encode()
	out = append(out, enc[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write(out)
	return binary.LittleEndian.AppendUint64(out, h.Sum64())
}

// DecodeEntry validates a framed entry and returns its key and payload.
func DecodeEntry(b []byte) (Key, []byte, error) {
	if len(b) < entryHeader+entryTrailer {
		return Key{}, nil, ErrCorrupt
	}
	if [4]byte(b[:4]) != entryMagic {
		return Key{}, nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint16(b[4:6]) != entryVersion {
		return Key{}, nil, ErrCorrupt
	}
	k := decodeKey(b[6 : 6+keyBytes])
	plen := binary.LittleEndian.Uint32(b[6+keyBytes:])
	if plen > maxPayloadLen || len(b) != entryHeader+int(plen)+entryTrailer {
		return Key{}, nil, ErrCorrupt
	}
	body := b[:entryHeader+int(plen)]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(b[len(b)-entryTrailer:]) {
		return Key{}, nil, ErrCorrupt
	}
	return k, b[entryHeader : entryHeader+int(plen)], nil
}
