package cachestore

import (
	"reflect"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
)

func sampleResult() *ResultRecord {
	return &ResultRecord{
		Source:         "hybrid",
		NQubits:        5,
		SelectedPrefix: 7,
		Initial:        []int{4, 3, 2, 1, 0},
		Final:          []int{0, 1, 2, 3, 4},
		Gates: []GateRecord{
			{Kind: 3, Q0: 0, Q1: 1, Angle: 0.37, TagU: 2, TagV: 4, Tagged: true},
			{Kind: 5, Q0: 3, Q1: 4, Angle: 1},
			{Kind: 1, Q0: 2, Q1: -1, Angle: -0.5, TagU: -1, TagV: -1},
		},
	}
}

func TestResultRecordRoundTrip(t *testing.T) {
	in := sampleResult()
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}

	empty := &ResultRecord{Source: "ata", SelectedPrefix: -1}
	out, err = DecodeResult(EncodeResult(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, out) {
		t.Fatalf("empty round trip mismatch: %+v", out)
	}
}

func TestPatternRecordRoundTrip(t *testing.T) {
	in := &PatternRecord{
		Region:   arch.Region{U0: 1, U1: 3, P0: 0, P1: 4},
		Norm:     arch.Region{U0: 1, U1: 3, P0: 0, P1: 4},
		Units:    [][]int{{0, 1, 2}, {5, 6, 7}},
		Qubits:   []int{0, 1, 2, 5, 6, 7},
		InRegion: []bool{true, true, true, false, false, true, true, true},
		SnakeSeg: []int{2, 1, 0, 5},
		SnakeOK:  true,
	}
	out, err := DecodePattern(EncodePattern(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}

	pathRegion := &PatternRecord{
		Region: arch.Region{I0: 2, I1: 9, UsesPath: true},
		Norm:   arch.Region{I0: 2, I1: 9, UsesPath: true},
		Qubits: []int{2, 3, 4},
	}
	out, err = DecodePattern(EncodePattern(pathRegion))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pathRegion, out) {
		t.Fatalf("path-region round trip mismatch: %+v", out)
	}
}

func TestSolverRecordRoundTrip(t *testing.T) {
	in := &SolverRecord{Depth: 14, Explored: 123456}
	out, err := DecodeSolver(EncodeSolver(in))
	if err != nil {
		t.Fatal(err)
	}
	if *in != *out {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	blob := EncodeResult(sampleResult())
	// Every truncation must fail cleanly.
	for i := 0; i < len(blob); i++ {
		if _, err := DecodeResult(blob[:i]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
	// Version skew.
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := DecodeResult(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// Trailing garbage.
	if _, err := DecodeResult(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEntryFrameRejectsDamage(t *testing.T) {
	k := testKey(5)
	blob := EncodeEntry(k, []byte("payload"))
	if gotK, p, err := DecodeEntry(blob); err != nil || gotK != k || string(p) != "payload" {
		t.Fatalf("clean decode failed: %v %v %q", gotK, err, p)
	}
	// Every truncation fails.
	for i := 0; i < len(blob); i++ {
		if _, _, err := DecodeEntry(blob[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Every single-bit flip fails (checksum or structure).
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 1
		if gotK, p, err := DecodeEntry(mut); err == nil && gotK == k && string(p) == "payload" {
			t.Fatalf("bit flip at byte %d went unnoticed", i)
		}
	}
}

func TestKeyFilenameRoundTrip(t *testing.T) {
	k := testKey(11)
	got, ok := parseFilename(k.filename())
	if !ok || got != k {
		t.Fatalf("parseFilename(%q) = %v, %v", k.filename(), got, ok)
	}
	if _, ok := parseFilename("not-a-key.e"); ok {
		t.Fatal("junk filename parsed")
	}
}
