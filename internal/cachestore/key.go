// Package cachestore is the persistent tier of the compilation cache: a
// content-addressed on-disk store of versioned, checksummed entries plus
// an in-memory LRU front (Tiered). Keys are (architecture fingerprint,
// canonical content hash, options digest) triples, so isomorphic compile
// requests — and independently constructed but identical devices — share
// entries across process restarts.
//
// The durability contract is deliberately one-sided: writes are atomic
// (write-temp-then-rename with the data fsync'd first) and the index is
// an fsync'd append-only journal, but any corruption discovered on read —
// a bad magic, a version skew, a checksum mismatch, a truncated file —
// is a silent miss that bumps a counter and deletes the carcass. The
// cache can lose entries; it can never serve a damaged one, and it never
// turns disk rot into a compile error.
package cachestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
)

// Kind namespaces the record types sharing one store.
type Kind uint8

const (
	// KindResult is a full compiled-circuit record (ResultRecord) in the
	// problem's canonical frame.
	KindResult Kind = 1
	// KindPattern is a region-structure record (PatternRecord): the
	// geometry the ATA patterns derive from (arch, region).
	KindPattern Kind = 2
	// KindSolver is a depth-optimal solver certificate (SolverRecord).
	KindSolver Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindResult:
		return "result"
	case KindPattern:
		return "pattern"
	case KindSolver:
		return "solver"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Key addresses one cache entry: the architecture's structural
// fingerprint, the record kind, a 32-byte content hash (the canonical
// problem-graph hash for results, a region digest for patterns), and the
// digest of the compile options the record depends on (0 when none do).
type Key struct {
	Arch uint64
	Kind Kind
	Hash [32]byte
	Opts uint64
}

// keyBytes is the fixed wire size of an encoded Key.
const keyBytes = 8 + 1 + 32 + 8

// encode serializes the key into its fixed 49-byte wire form.
func (k Key) encode() [keyBytes]byte {
	var out [keyBytes]byte
	binary.LittleEndian.PutUint64(out[0:], k.Arch)
	out[8] = byte(k.Kind)
	copy(out[9:41], k.Hash[:])
	binary.LittleEndian.PutUint64(out[41:], k.Opts)
	return out
}

func decodeKey(b []byte) Key {
	var k Key
	k.Arch = binary.LittleEndian.Uint64(b[0:])
	k.Kind = Kind(b[8])
	copy(k.Hash[:], b[9:41])
	k.Opts = binary.LittleEndian.Uint64(b[41:])
	return k
}

// filename is the content address: the hex form of the encoded key plus
// the entry suffix. parseFilename is its inverse.
func (k Key) filename() string {
	enc := k.encode()
	return hex.EncodeToString(enc[:]) + ".e"
}

// shardDir spreads entries over 256 subdirectories by the first hash
// byte, keeping directory fan-in sane for large caches.
func (k Key) shardDir() string {
	return hex.EncodeToString(k.Hash[:1])
}

func parseFilename(name string) (Key, bool) {
	const hexLen = keyBytes * 2
	if len(name) != hexLen+2 || name[hexLen:] != ".e" {
		return Key{}, false
	}
	raw, err := hex.DecodeString(name[:hexLen])
	if err != nil {
		return Key{}, false
	}
	return decodeKey(raw), true
}

// ResultKey addresses a compiled-circuit record.
func ResultKey(archFP uint64, problemHash [32]byte, optsDigest uint64) Key {
	return Key{Arch: archFP, Kind: KindResult, Hash: problemHash, Opts: optsDigest}
}

// PatternKey addresses a region-structure record: the hash digests the
// region bounds, so every unit/window of an architecture gets its own
// entry.
func PatternKey(archFP uint64, r arch.Region) Key {
	return Key{Arch: archFP, Kind: KindPattern, Hash: regionHash(r)}
}

// SolverKey addresses a solver-optimum certificate for a canonical
// problem on an architecture.
func SolverKey(archFP uint64, problemHash [32]byte) Key {
	return Key{Arch: archFP, Kind: KindSolver, Hash: problemHash}
}

func regionHash(r arch.Region) [32]byte {
	b := binary.AppendVarint(nil, int64(r.U0))
	b = binary.AppendVarint(b, int64(r.U1))
	b = binary.AppendVarint(b, int64(r.P0))
	b = binary.AppendVarint(b, int64(r.P1))
	b = binary.AppendVarint(b, int64(r.I0))
	b = binary.AppendVarint(b, int64(r.I1))
	if r.UsesPath {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return sha256.Sum256(b)
}
