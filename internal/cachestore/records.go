package cachestore

import (
	"encoding/binary"
	"math"

	"github.com/ata-pattern/ataqc/internal/arch"
)

// Record payloads are versioned varint streams behind the entry frame's
// checksum. The decoders are defensive anyway — the fuzz target feeds
// them raw attacker-controlled bytes — so every length is bounded and a
// malformed stream yields ErrCorrupt, never a panic or a giant
// allocation.

const (
	resultRecordVersion  = 1
	patternRecordVersion = 1
	solverRecordVersion  = 1
	// maxRecordElems bounds every decoded slice length: the service caps
	// problems at 1024 qubits, so no honest record comes near it.
	maxRecordElems = 1 << 22
)

// ResultRecord is a compiled circuit in its problem's canonical frame:
// enough to rebuild the exact Result a fresh compile would produce after
// translating back through the request's canonical permutation.
type ResultRecord struct {
	Source         string
	NQubits        int // logical qubit count of the problem
	SelectedPrefix int
	Degraded       bool
	Initial        []int
	Final          []int
	Gates          []GateRecord
}

// GateRecord is one circuit gate: physical operands, the recorded angle,
// and the logical interaction tag (canonical-frame vertex ids).
type GateRecord struct {
	Kind   int
	Q0, Q1 int
	Angle  float64
	TagU   int
	TagV   int
	Tagged bool
}

// EncodeResult serializes r.
func EncodeResult(r *ResultRecord) []byte {
	w := []byte{resultRecordVersion}
	w = appendString(w, r.Source)
	w = binary.AppendVarint(w, int64(r.NQubits))
	w = binary.AppendVarint(w, int64(r.SelectedPrefix))
	w = appendBool(w, r.Degraded)
	w = appendIntSlice(w, r.Initial)
	w = appendIntSlice(w, r.Final)
	w = binary.AppendUvarint(w, uint64(len(r.Gates)))
	for _, g := range r.Gates {
		w = binary.AppendVarint(w, int64(g.Kind))
		w = binary.AppendVarint(w, int64(g.Q0))
		w = binary.AppendVarint(w, int64(g.Q1))
		w = binary.LittleEndian.AppendUint64(w, math.Float64bits(g.Angle))
		w = binary.AppendVarint(w, int64(g.TagU))
		w = binary.AppendVarint(w, int64(g.TagV))
		w = appendBool(w, g.Tagged)
	}
	return w
}

// DecodeResult parses an EncodeResult payload.
func DecodeResult(b []byte) (*ResultRecord, error) {
	r := &reader{b: b}
	if r.byte() != resultRecordVersion {
		return nil, ErrCorrupt
	}
	out := &ResultRecord{
		Source:         r.str(),
		NQubits:        r.int(),
		SelectedPrefix: r.int(),
		Degraded:       r.bool(),
		Initial:        r.intSlice(),
		Final:          r.intSlice(),
	}
	n := r.length()
	if r.failed {
		return nil, ErrCorrupt
	}
	if n > 0 {
		out.Gates = make([]GateRecord, 0, min(n, 4096))
	}
	for i := 0; i < n; i++ {
		g := GateRecord{
			Kind:  r.int(),
			Q0:    r.int(),
			Q1:    r.int(),
			Angle: math.Float64frombits(r.uint64()),
			TagU:  r.int(),
			TagV:  r.int(),
		}
		g.Tagged = r.bool()
		if r.failed {
			return nil, ErrCorrupt
		}
		out.Gates = append(out.Gates, g)
	}
	if !r.done() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// PatternRecord is the region geometry the ATA patterns derive from
// (arch, region): the warm sweeper stores one per unit/window so a fresh
// daemon's pattern cache starts populated.
type PatternRecord struct {
	// Region is the cache key the structural lookup uses (the raw region
	// as requested); Norm is its normalized form.
	Region   arch.Region
	Norm     arch.Region
	Units    [][]int
	Qubits   []int
	InRegion []bool
	SnakeSeg []int
	SnakeOK  bool
}

func appendRegion(w []byte, r arch.Region) []byte {
	w = binary.AppendVarint(w, int64(r.U0))
	w = binary.AppendVarint(w, int64(r.U1))
	w = binary.AppendVarint(w, int64(r.P0))
	w = binary.AppendVarint(w, int64(r.P1))
	w = binary.AppendVarint(w, int64(r.I0))
	w = binary.AppendVarint(w, int64(r.I1))
	return appendBool(w, r.UsesPath)
}

func (r *reader) region() arch.Region {
	return arch.Region{
		U0: r.int(), U1: r.int(),
		P0: r.int(), P1: r.int(),
		I0: r.int(), I1: r.int(),
		UsesPath: r.bool(),
	}
}

// EncodePattern serializes p.
func EncodePattern(p *PatternRecord) []byte {
	w := []byte{patternRecordVersion}
	w = appendRegion(w, p.Region)
	w = appendRegion(w, p.Norm)
	w = binary.AppendUvarint(w, uint64(len(p.Units)))
	for _, u := range p.Units {
		w = appendIntSlice(w, u)
	}
	w = appendIntSlice(w, p.Qubits)
	w = appendBoolSlice(w, p.InRegion)
	w = appendIntSlice(w, p.SnakeSeg)
	return appendBool(w, p.SnakeOK)
}

// DecodePattern parses an EncodePattern payload.
func DecodePattern(b []byte) (*PatternRecord, error) {
	r := &reader{b: b}
	if r.byte() != patternRecordVersion {
		return nil, ErrCorrupt
	}
	out := &PatternRecord{
		Region: r.region(),
		Norm:   r.region(),
	}
	n := r.length()
	if r.failed {
		return nil, ErrCorrupt
	}
	if n > 0 {
		out.Units = make([][]int, 0, min(n, 4096))
	}
	for i := 0; i < n; i++ {
		out.Units = append(out.Units, r.intSlice())
		if r.failed {
			return nil, ErrCorrupt
		}
	}
	out.Qubits = r.intSlice()
	out.InRegion = r.boolSlice()
	out.SnakeSeg = r.intSlice()
	out.SnakeOK = r.bool()
	if !r.done() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// SolverRecord is a depth-optimal solver certificate: the proven minimal
// depth of a canonical problem on an architecture, and how much search
// it took (provenance for experiment reports).
type SolverRecord struct {
	Depth    int
	Explored int64
}

// EncodeSolver serializes s.
func EncodeSolver(s *SolverRecord) []byte {
	w := []byte{solverRecordVersion}
	w = binary.AppendVarint(w, int64(s.Depth))
	return binary.AppendVarint(w, s.Explored)
}

// DecodeSolver parses an EncodeSolver payload.
func DecodeSolver(b []byte) (*SolverRecord, error) {
	r := &reader{b: b}
	if r.byte() != solverRecordVersion {
		return nil, ErrCorrupt
	}
	out := &SolverRecord{Depth: r.int(), Explored: r.int64()}
	if !r.done() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// --- codec plumbing ---

func appendString(w []byte, s string) []byte {
	w = binary.AppendUvarint(w, uint64(len(s)))
	return append(w, s...)
}

func appendBool(w []byte, b bool) []byte {
	if b {
		return append(w, 1)
	}
	return append(w, 0)
}

func appendIntSlice(w []byte, xs []int) []byte {
	w = binary.AppendUvarint(w, uint64(len(xs)))
	for _, x := range xs {
		w = binary.AppendVarint(w, int64(x))
	}
	return w
}

func appendBoolSlice(w []byte, xs []bool) []byte {
	w = binary.AppendUvarint(w, uint64(len(xs)))
	for _, x := range xs {
		w = appendBool(w, x)
	}
	return w
}

// reader is a failure-latching varint cursor: after any malformed or
// truncated read every subsequent accessor returns a zero value and
// failed stays set, so decoders can check once per loop instead of
// per field.
type reader struct {
	b      []byte
	failed bool
}

func (r *reader) fail() {
	r.failed = true
	r.b = nil
}

func (r *reader) byte() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) int() int { return int(r.varint()) }

func (r *reader) int64() int64 { return r.varint() }

func (r *reader) uint64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bool() bool { return r.byte() == 1 }

// length reads a slice length, bounding it to keep hostile payloads from
// driving huge allocations.
func (r *reader) length() int {
	v := r.uvarint()
	if v > maxRecordElems {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.length()
	if r.failed || len(r.b) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) intSlice() []int {
	n := r.length()
	if r.failed || n == 0 {
		return nil
	}
	out := make([]int, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, r.int())
		if r.failed {
			return nil
		}
	}
	return out
}

func (r *reader) boolSlice() []bool {
	n := r.length()
	if r.failed || len(r.b) < n {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = r.b[i] == 1
	}
	r.b = r.b[n:]
	return out
}

// done reports a fully consumed, error-free stream.
func (r *reader) done() bool { return !r.failed && len(r.b) == 0 }
