package cachestore

import (
	"container/list"
	"sync"
)

// Tier names which cache level answered a lookup.
type Tier string

const (
	// TierMem is the in-process LRU front.
	TierMem Tier = "mem"
	// TierDisk is the persistent store; disk hits are promoted into mem.
	TierDisk Tier = "disk"
	// TierNone means the lookup missed both levels (or bypassed the
	// cache entirely).
	TierNone Tier = ""
)

// Tiered fronts a disk Store with a bounded in-memory payload LRU. A Get
// tries memory first, then disk (promoting hits); a Put lands in both. A
// nil disk store degrades to a process-lifetime memory cache, so callers
// configure one code path whether or not -cache-dir was given.
type Tiered struct {
	disk *Store

	mu  sync.Mutex
	mem map[Key]*list.Element
	lru *list.List // front = most recent; values are *memEnt
	cap int

	memHits, diskHits, misses int64
}

type memEnt struct {
	key     Key
	payload []byte
}

// DefaultMemEntries bounds NewTiered(_, 0): result payloads are a few KB
// each, so the worst-case memory footprint stays in the tens of MB.
const DefaultMemEntries = 4096

// NewTiered wraps disk (nil = memory only) with a memEntries-entry LRU
// front (0 or negative = DefaultMemEntries).
func NewTiered(disk *Store, memEntries int) *Tiered {
	if memEntries <= 0 {
		memEntries = DefaultMemEntries
	}
	return &Tiered{
		disk: disk,
		mem:  make(map[Key]*list.Element),
		lru:  list.New(),
		cap:  memEntries,
	}
}

// Disk exposes the persistent tier (nil when memory-only).
func (t *Tiered) Disk() *Store { return t.disk }

// Get returns the payload for k and the tier that answered. The returned
// slice is shared with the cache: callers must treat it as read-only.
func (t *Tiered) Get(k Key) ([]byte, Tier, bool) {
	t.mu.Lock()
	if el, ok := t.mem[k]; ok {
		t.lru.MoveToFront(el)
		t.memHits++
		p := el.Value.(*memEnt).payload
		t.mu.Unlock()
		return p, TierMem, true
	}
	t.mu.Unlock()
	if t.disk != nil {
		if payload, ok := t.disk.Get(k); ok {
			t.mu.Lock()
			t.diskHits++
			t.insertLocked(k, payload)
			t.mu.Unlock()
			return payload, TierDisk, true
		}
	}
	t.mu.Lock()
	t.misses++
	t.mu.Unlock()
	return nil, TierNone, false
}

// Put stores payload in the memory tier and, when present, the disk
// tier. Disk write failures are returned for observability but the
// memory tier has already accepted the entry — the cache stays useful on
// a full disk.
func (t *Tiered) Put(k Key, payload []byte) error {
	t.mu.Lock()
	t.insertLocked(k, payload)
	t.mu.Unlock()
	if t.disk == nil {
		return nil
	}
	return t.disk.Put(k, payload)
}

func (t *Tiered) insertLocked(k Key, payload []byte) {
	if el, ok := t.mem[k]; ok {
		el.Value.(*memEnt).payload = payload
		t.lru.MoveToFront(el)
		return
	}
	for t.lru.Len() >= t.cap {
		oldest := t.lru.Back()
		if oldest == nil {
			break
		}
		t.lru.Remove(oldest)
		delete(t.mem, oldest.Value.(*memEnt).key)
	}
	t.mem[k] = t.lru.PushFront(&memEnt{key: k, payload: payload})
}

// Close closes the disk tier (no-op when memory-only).
func (t *Tiered) Close() error {
	if t.disk == nil {
		return nil
	}
	return t.disk.Close()
}

// TieredStats is the two-level snapshot surfaced in /statz and /metricsz.
type TieredStats struct {
	MemHits, DiskHits, Misses int64
	MemEntries                int
	Disk                      StoreStats
}

// Stats snapshots both tiers.
func (t *Tiered) Stats() TieredStats {
	t.mu.Lock()
	st := TieredStats{
		MemHits:    t.memHits,
		DiskHits:   t.diskHits,
		Misses:     t.misses,
		MemEntries: t.lru.Len(),
	}
	t.mu.Unlock()
	if t.disk != nil {
		st.Disk = t.disk.Stats()
	}
	return st
}
