package arch

import (
	"strings"
	"testing"
)

func validateSnake(t *testing.T, a *Arch) {
	t.Helper()
	if a.Snake == nil {
		t.Fatalf("%s: nil snake", a.Name)
	}
	if len(a.Snake) != a.N() {
		t.Fatalf("%s: snake covers %d of %d qubits", a.Name, len(a.Snake), a.N())
	}
	seen := make(map[int]bool)
	for i, q := range a.Snake {
		if seen[q] {
			t.Fatalf("%s: snake revisits qubit %d", a.Name, q)
		}
		seen[q] = true
		if i > 0 && !a.G.HasEdge(a.Snake[i-1], q) {
			t.Fatalf("%s: snake step %d->%d not a coupling", a.Name, a.Snake[i-1], q)
		}
	}
}

func validatePath(t *testing.T, a *Arch) {
	t.Helper()
	seen := make(map[int]bool)
	for i, q := range a.Path {
		if seen[q] {
			t.Fatalf("%s: path revisits qubit %d", a.Name, q)
		}
		seen[q] = true
		if i > 0 && !a.G.HasEdge(a.Path[i-1], q) {
			t.Fatalf("%s: path step %d->%d not a coupling", a.Name, a.Path[i-1], q)
		}
	}
	// Every off-path qubit must have at least one on-path anchor and must
	// not itself be on the path.
	for _, op := range a.OffPath {
		if seen[op.Qubit] {
			t.Fatalf("%s: off-path qubit %d is on the path", a.Name, op.Qubit)
		}
		if len(op.PathAnchors) == 0 {
			t.Fatalf("%s: off-path qubit %d has no anchors", a.Name, op.Qubit)
		}
		for _, i := range op.PathAnchors {
			if !a.G.HasEdge(op.Qubit, a.Path[i]) {
				t.Fatalf("%s: anchor %d of off-path %d not coupled", a.Name, i, op.Qubit)
			}
		}
	}
	// Path + off-path must cover all qubits.
	covered := len(a.Path) + len(a.OffPath)
	if covered != a.N() {
		t.Fatalf("%s: path(%d)+offpath(%d) != N(%d)", a.Name, len(a.Path), len(a.OffPath), a.N())
	}
}

func TestLine(t *testing.T) {
	a := Line(6)
	if a.N() != 6 || a.G.M() != 5 {
		t.Fatalf("line-6: n=%d m=%d", a.N(), a.G.M())
	}
	validateSnake(t, a)
	validatePath(t, a)
	if a.Dist(0, 5) != 5 {
		t.Fatalf("line dist(0,5) = %d", a.Dist(0, 5))
	}
}

func TestGrid(t *testing.T) {
	a := Grid(4, 5)
	if a.N() != 20 {
		t.Fatalf("n = %d", a.N())
	}
	if a.G.M() != 4*4+3*5 {
		t.Fatalf("m = %d, want %d", a.G.M(), 4*4+3*5)
	}
	validateSnake(t, a)
	if len(a.Units) != 4 || len(a.Units[0]) != 5 {
		t.Fatalf("units shape %dx%d", len(a.Units), len(a.Units[0]))
	}
	if a.Dist(0, 19) != 3+4 {
		t.Fatalf("grid dist corner-corner = %d", a.Dist(0, 19))
	}
	if a.Diameter() != 7 {
		t.Fatalf("grid diameter = %d", a.Diameter())
	}
}

func TestGridNNearSquare(t *testing.T) {
	for _, n := range []int{1, 4, 10, 64, 100, 1000, 1024} {
		a := GridN(n)
		if a.N() < n {
			t.Fatalf("GridN(%d) has %d qubits", n, a.N())
		}
		if a.N() > n+64 && n > 16 {
			t.Errorf("GridN(%d) oversized: %d", n, a.N())
		}
	}
}

func TestSycamoreStructure(t *testing.T) {
	a := Sycamore(4, 4)
	if a.N() != 16 {
		t.Fatalf("n = %d", a.N())
	}
	id := func(r, c int) int { return r*4 + c }
	// Vertical couplings always exist.
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if !a.G.HasEdge(id(r, c), id(r+1, c)) {
				t.Fatalf("missing vertical (%d,%d)", r, c)
			}
		}
	}
	// No intra-row couplings.
	for r := 0; r < 4; r++ {
		for c := 0; c+1 < 4; c++ {
			if a.G.HasEdge(id(r, c), id(r, c+1)) {
				t.Fatalf("unexpected intra-row coupling (%d,%d)", r, c)
			}
		}
	}
	// Diagonals by parity.
	if !a.G.HasEdge(id(0, 0), id(1, 1)) {
		t.Fatal("missing even-row diagonal")
	}
	if !a.G.HasEdge(id(1, 1), id(2, 0)) {
		t.Fatal("missing odd-row diagonal")
	}
	if a.G.HasEdge(id(1, 0), id(2, 1)) {
		t.Fatal("unexpected odd-row right diagonal")
	}
}

func TestSycamoreZigZagPath(t *testing.T) {
	a := Sycamore(5, 4)
	for r := 0; r+1 < 5; r++ {
		p := a.ZigZagPath(r)
		if len(p) != 8 {
			t.Fatalf("zigzag(%d) covers %d qubits", r, len(p))
		}
		seen := map[int]bool{}
		for i, q := range p {
			if seen[q] {
				t.Fatalf("zigzag(%d) revisits %d", r, q)
			}
			seen[q] = true
			if i > 0 && !a.G.HasEdge(p[i-1], q) {
				t.Fatalf("zigzag(%d) step %d->%d not coupled", r, p[i-1], q)
			}
			row := a.Coords[q].Row
			if row != r && row != r+1 {
				t.Fatalf("zigzag(%d) contains qubit of row %d", r, row)
			}
		}
	}
}

func TestSycamoreZigZagAlternatesRows(t *testing.T) {
	a := Sycamore(4, 5)
	for r := 0; r+1 < 4; r++ {
		p := a.ZigZagPath(r)
		for i, q := range p {
			row := a.Coords[q].Row
			wantTop := (i%2 == 1) == (r%2 == 0) // even r: odd positions are top row
			if r%2 == 1 {
				wantTop = i%2 == 0
			}
			isTop := row == r
			if isTop != wantTop {
				t.Fatalf("zigzag(%d)[%d] row %d, want top=%v", r, i, row, wantTop)
			}
		}
	}
}

func TestHexagonStructure(t *testing.T) {
	a := Hexagon(4, 4)
	if a.N() != 16 {
		t.Fatalf("n = %d", a.N())
	}
	id := func(r, c int) int { return r*4 + c }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if a.G.Degree(id(r, c)) > 3 {
				t.Fatalf("hexagon degree(%d,%d) = %d > 3", r, c, a.G.Degree(id(r, c)))
			}
		}
	}
	if !a.G.HasEdge(id(0, 0), id(0, 1)) {
		t.Fatal("missing horizontal at (0,0)")
	}
	if a.G.HasEdge(id(0, 1), id(0, 2)) {
		t.Fatal("unexpected horizontal at (0,1)")
	}
	if !a.G.HasEdge(id(1, 1), id(1, 2)) {
		t.Fatal("missing horizontal at (1,1)")
	}
	// Units are columns.
	if len(a.Units) != 4 || len(a.Units[0]) != 4 {
		t.Fatalf("units shape %dx%d", len(a.Units), len(a.Units[0]))
	}
	if a.Units[2][3] != id(3, 2) {
		t.Fatalf("unit indexing wrong: %d", a.Units[2][3])
	}
}

func TestHexagonOddColsRoundedUp(t *testing.T) {
	a := Hexagon(4, 5)
	if len(a.Units) != 6 {
		t.Fatalf("cols = %d, want rounded to 6", len(a.Units))
	}
}

func TestHeavyHex(t *testing.T) {
	a := HeavyHex(3, 8)
	validatePath(t, a)
	if !a.G.IsConnected() {
		t.Fatal("heavy-hex not connected")
	}
	// All row qubits are on the path.
	if len(a.Path) != 3*8+2 { // rows + one end bridge per gap
		t.Fatalf("path length %d, want %d", len(a.Path), 3*8+2)
	}
	// width ≡ 1 (mod 4) is widened to keep degree <= 3.
	if w := HeavyHex(3, 9); w.N() != HeavyHex(3, 10).N() {
		t.Fatalf("width-9 not rounded: %d vs %d", w.N(), HeavyHex(3, 10).N())
	}
	// Degree bound: row qubits <= 3 (line + bridge), bridges = 2.
	for q := 0; q < a.N(); q++ {
		d := a.G.Degree(q)
		if a.Coords[q].Bridge && d != 2 {
			t.Fatalf("bridge %d degree %d", q, d)
		}
		if d > 3 {
			t.Fatalf("qubit %d degree %d > 3", q, d)
		}
	}
}

func TestHeavyHexNSizes(t *testing.T) {
	for _, n := range []int{27, 64, 128, 256, 1024} {
		a := HeavyHexN(n)
		if a.N() < n {
			t.Fatalf("HeavyHexN(%d) = %d qubits", n, a.N())
		}
		validatePath(t, a)
	}
}

func TestMumbai(t *testing.T) {
	a := Mumbai()
	if a.N() != 27 {
		t.Fatalf("n = %d", a.N())
	}
	if a.G.M() != 28 {
		t.Fatalf("m = %d, want 28", a.G.M())
	}
	if !a.G.IsConnected() {
		t.Fatal("mumbai not connected")
	}
	validatePath(t, a)
	if len(a.Path) < 20 {
		t.Fatalf("longest path only %d qubits", len(a.Path))
	}
}

func TestLattice3D(t *testing.T) {
	a := Lattice3D(3, 3, 3)
	if a.N() != 27 {
		t.Fatalf("n = %d", a.N())
	}
	if a.G.M() != 3*(2*3*3) {
		t.Fatalf("m = %d, want %d", a.G.M(), 54)
	}
	validateSnake(t, a)
	if a.Diameter() != 6 {
		t.Fatalf("diameter = %d", a.Diameter())
	}
}

func TestEnclosingRegionGrid(t *testing.T) {
	a := Grid(6, 6)
	// Qubits (1,2), (3,4) -> rectangle units 1..3, positions 2..4.
	r := EnclosingRegion(a, []int{1*6 + 2, 3*6 + 4})
	if r.UsesPath {
		t.Fatal("grid region uses path")
	}
	if r.U0 != 1 || r.U1 != 3 || r.P0 != 2 || r.P1 != 4 {
		t.Fatalf("region %+v", r)
	}
	if r.Size() != 9 {
		t.Fatalf("size %d", r.Size())
	}
}

func TestEnclosingRegionHeavyHexPath(t *testing.T) {
	a := HeavyHex(3, 9)
	r := EnclosingRegion(a, []int{a.Path[2], a.Path[7]})
	if !r.UsesPath {
		t.Fatal("heavy-hex region must use path")
	}
	if r.I0 != 2 || r.I1 != 7 {
		t.Fatalf("interval [%d,%d]", r.I0, r.I1)
	}
	// An off-path qubit extends the interval to cover its anchors.
	if len(a.OffPath) == 0 {
		t.Skip("no off-path bridges at this size")
	}
	op := a.OffPath[0]
	r2 := EnclosingRegion(a, []int{op.Qubit})
	if r2.I1 < r2.I0 {
		t.Fatalf("empty interval for off-path qubit: %+v", r2)
	}
}

func TestRegionOverlapUnion(t *testing.T) {
	r1 := Region{U0: 0, U1: 2, P0: 0, P1: 2}
	r2 := Region{U0: 2, U1: 4, P0: 1, P1: 5}
	r3 := Region{U0: 3, U1: 4, P0: 3, P1: 5}
	if !r1.Overlaps(r2) {
		t.Fatal("r1/r2 should overlap")
	}
	if r1.Overlaps(r3) {
		t.Fatal("r1/r3 should not overlap")
	}
	u := r1.Union(r2)
	if u.U0 != 0 || u.U1 != 4 || u.P0 != 0 || u.P1 != 5 {
		t.Fatalf("union %+v", u)
	}
}

func TestFullRegion(t *testing.T) {
	a := Grid(3, 4)
	r := FullRegion(a)
	if r.U0 != 0 || r.U1 != 2 || r.P0 != 0 || r.P1 != 3 {
		t.Fatalf("full region %+v", r)
	}
	hh := HeavyHex(2, 5)
	rp := FullRegion(hh)
	if !rp.UsesPath || rp.I0 != 0 || rp.I1 != len(hh.Path)-1 {
		t.Fatalf("full path region %+v", rp)
	}
}

func TestUnitIndex(t *testing.T) {
	a := Grid(3, 4)
	unitOf, posOf := a.UnitIndex()
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			q := r*4 + c
			if unitOf[q] != r || posOf[q] != c {
				t.Fatalf("unitIndex(%d) = (%d,%d)", q, unitOf[q], posOf[q])
			}
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindLine, KindGrid, KindSycamore, KindHeavyHex, KindHexagon, KindLattice3D, KindGeneric}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind string %q duplicated or empty", s)
		}
		seen[s] = true
	}
}

func TestRenderAllFamilies(t *testing.T) {
	for _, a := range []*Arch{
		Line(5), Grid(3, 4), Sycamore(3, 3), HeavyHex(2, 8), Hexagon(4, 4),
		Lattice3D(2, 2, 2), Mumbai(),
	} {
		out := a.Render()
		if out == "" {
			t.Fatalf("%s: empty render", a.Name)
		}
	}
	// Spot-check grid content: qubit 0 coupled right and down.
	out := Grid(2, 2).Render()
	if !strings.Contains(out, "0  --1") && !strings.Contains(out, "0  --") {
		t.Fatalf("grid render missing coupling marks:\n%s", out)
	}
}
