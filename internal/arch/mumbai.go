package arch

import "github.com/ata-pattern/ataqc/internal/graph"

// mumbaiCouplings is the 27-qubit IBM Falcon heavy-hex coupling map used by
// ibmq_mumbai (the machine of the paper's §7.4 end-to-end experiments).
var mumbaiCouplings = [][2]int{
	{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8}, {6, 7},
	{7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {12, 15},
	{13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21}, {19, 20},
	{19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
}

// Mumbai returns the 27-qubit IBM Mumbai (Falcon r5.1) architecture.
//
// Substitution note (DESIGN.md): the paper runs on the physical machine; we
// expose its coupling graph here and pair it with a synthetic calibration
// (internal/noise) plus the trajectory simulator (internal/sim) for the
// end-to-end experiments. The longest path below snakes through 23 of the
// 27 qubits; the four remaining qubits (1, 8, 18, 25 hang off it) — like
// heavy-hex, it is compiled with the two-pass path method of §5.1.
func Mumbai() *Arch {
	g := graph.New(27)
	for _, e := range mumbaiCouplings {
		g.AddEdge(e[0], e[1])
	}
	p := longestPathSearch(g)
	pathIdx := make(map[int]int, len(p))
	for i, q := range p {
		pathIdx[q] = i
	}
	var off []OffPathQubit
	for q := 0; q < 27; q++ {
		if _, on := pathIdx[q]; on {
			continue
		}
		var anchors []int
		for _, nb := range g.Neighbors(q) {
			if i, ok := pathIdx[nb]; ok {
				anchors = append(anchors, i)
			}
		}
		off = append(off, OffPathQubit{Qubit: q, PathAnchors: anchors})
	}
	coords := make([]Coord, 27)
	for q := range coords {
		coords[q] = Coord{Row: 0, Col: q}
	}
	a := &Arch{
		Name:    "ibmq-mumbai",
		Kind:    KindHeavyHex,
		G:       g,
		Coords:  coords,
		Path:    p,
		OffPath: off,
	}
	return a.seal()
}

// longestPathSearch finds a longest simple path by depth-first search with
// memoised pruning. It is exponential in the worst case but the heavy-hex
// graphs it is used on (27 qubits, max degree 3) are tiny and tree-like.
func longestPathSearch(g *graph.Graph) []int {
	var best []int
	n := g.N()
	visited := make([]bool, n)
	path := make([]int, 0, n)
	var dfs func(v int)
	dfs = func(v int) {
		visited[v] = true
		path = append(path, v)
		if len(path) > len(best) {
			best = append(best[:0], path...)
		}
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				dfs(w)
			}
		}
		visited[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < n; s++ {
		// Only start from low-degree vertices: a longest path in a graph
		// with leaves starts at a leaf or a low-degree vertex; starting from
		// all vertices is still fine for n=27 but slower.
		if g.Degree(s) <= 2 {
			dfs(s)
		}
	}
	if best == nil {
		for s := 0; s < n; s++ {
			dfs(s)
		}
	}
	return best
}
