package arch

import (
	"fmt"
	"strings"
)

// Render returns a coarse ASCII picture of the architecture's geometry:
// qubit indices laid out by coordinate, with `-`, `|`, `/` and `\` marking
// couplings where the layout can show them. Intended for CLI diagnostics
// and documentation, not precision drawing.
func (a *Arch) Render() string {
	switch a.Kind {
	case KindLine:
		var sb strings.Builder
		for i, q := range a.Path {
			if i > 0 {
				sb.WriteString("--")
			}
			fmt.Fprintf(&sb, "%d", q)
		}
		return sb.String()
	case KindGrid, KindHexagon:
		return a.renderGridLike()
	case KindSycamore:
		return a.renderSycamore()
	case KindHeavyHex:
		return a.renderHeavyHex()
	default:
		return fmt.Sprintf("%s: %d qubits, %d couplings (no layout renderer)", a.Name, a.N(), a.G.M())
	}
}

const cellWidth = 5

func (a *Arch) bounds() (rows, cols int) {
	for _, c := range a.Coords {
		if c.Row+1 > rows {
			rows = c.Row + 1
		}
		if c.Col+1 > cols {
			cols = c.Col + 1
		}
	}
	return rows, cols
}

func (a *Arch) qubitAt(row, col int, bridge bool) int {
	for q, c := range a.Coords {
		if c.Row == row && c.Col == col && c.Bridge == bridge && c.Z == 0 {
			return q
		}
	}
	return -1
}

func (a *Arch) renderGridLike() string {
	rows, cols := a.bounds()
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		// Qubit row with horizontal couplings.
		for c := 0; c < cols; c++ {
			q := a.qubitAt(r, c, false)
			if q < 0 {
				sb.WriteString(strings.Repeat(" ", cellWidth))
				continue
			}
			fmt.Fprintf(&sb, "%-3d", q)
			if right := a.qubitAt(r, c+1, false); right >= 0 && a.G.HasEdge(q, right) {
				sb.WriteString("--")
			} else {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
		if r+1 == rows {
			break
		}
		// Vertical couplings.
		for c := 0; c < cols; c++ {
			q := a.qubitAt(r, c, false)
			below := a.qubitAt(r+1, c, false)
			if q >= 0 && below >= 0 && a.G.HasEdge(q, below) {
				sb.WriteString("|" + strings.Repeat(" ", cellWidth-1))
			} else {
				sb.WriteString(strings.Repeat(" ", cellWidth))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func (a *Arch) renderSycamore() string {
	rows, cols := a.bounds()
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		indent := ""
		if r%2 == 1 {
			indent = strings.Repeat(" ", cellWidth/2)
		}
		sb.WriteString(indent)
		for c := 0; c < cols; c++ {
			q := a.qubitAt(r, c, false)
			fmt.Fprintf(&sb, "%-*d", cellWidth, q)
		}
		sb.WriteString("\n")
		if r+1 == rows {
			break
		}
		sb.WriteString(indent)
		for c := 0; c < cols; c++ {
			// Diagonal couplings to the next (offset) row.
			if r%2 == 0 {
				sb.WriteString(`|\` + strings.Repeat(" ", cellWidth-2))
			} else {
				sb.WriteString(`|/` + strings.Repeat(" ", cellWidth-2))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func (a *Arch) renderHeavyHex() string {
	rows, cols := a.bounds()
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := a.qubitAt(r, c, false)
			if q < 0 {
				sb.WriteString(strings.Repeat(" ", cellWidth))
				continue
			}
			fmt.Fprintf(&sb, "%-3d", q)
			if right := a.qubitAt(r, c+1, false); right >= 0 && a.G.HasEdge(q, right) {
				sb.WriteString("--")
			} else {
				sb.WriteString("  ")
			}
		}
		sb.WriteString("\n")
		if r+1 == rows {
			break
		}
		// Bridge row: bridges between row r and r+1 live at Coord{Row: r,
		// Bridge: true}.
		for c := 0; c < cols; c++ {
			b := a.qubitAt(r, c, true)
			if b >= 0 {
				fmt.Fprintf(&sb, "%-*s", cellWidth, fmt.Sprintf("[%d]", b))
			} else {
				sb.WriteString(strings.Repeat(" ", cellWidth))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
