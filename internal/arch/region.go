package arch

// Region bounds a rectangular sub-area of a unit-decomposed architecture,
// or an interval of the longest path for path-compiled families. It is what
// the range detector of §6.3 produces: the ATA pattern prediction is then
// confined to the region, tightening the predicted depth/gate-count bound.
type Region struct {
	// Unit-decomposed families (grid, sycamore, hexagon, 3D): unit index
	// range [U0, U1] and position-within-unit range [P0, P1], inclusive.
	U0, U1, P0, P1 int
	// Path-compiled families (line, heavy-hex): inclusive index interval
	// into Arch.Path. Off-path qubits anchored inside the interval belong
	// to the region.
	I0, I1 int
	// UsesPath selects which of the two encodings applies.
	UsesPath bool
}

// FullRegion returns the region covering the whole architecture.
func FullRegion(a *Arch) Region {
	if len(a.Units) > 0 {
		maxLen := 0
		for _, u := range a.Units {
			if len(u) > maxLen {
				maxLen = len(u)
			}
		}
		return Region{U0: 0, U1: len(a.Units) - 1, P0: 0, P1: maxLen - 1}
	}
	return Region{UsesPath: true, I0: 0, I1: len(a.Path) - 1}
}

// EnclosingRegion returns the smallest Region of a containing every physical
// qubit in phys. For unit-decomposed architectures it is the bounding
// unit/position rectangle; for path architectures, the bounding path
// interval (off-path qubits contribute their anchors).
func EnclosingRegion(a *Arch, phys []int) Region {
	if len(phys) == 0 {
		return Region{}
	}
	if len(a.Units) > 0 {
		unitOf, posOf := a.unitIndex()
		r := Region{U0: 1 << 30, P0: 1 << 30, U1: -1, P1: -1}
		for _, q := range phys {
			u, p := unitOf[q], posOf[q]
			if u < r.U0 {
				r.U0 = u
			}
			if u > r.U1 {
				r.U1 = u
			}
			if p < r.P0 {
				r.P0 = p
			}
			if p > r.P1 {
				r.P1 = p
			}
		}
		return r
	}
	idx := make(map[int]int, len(a.Path))
	for i, q := range a.Path {
		idx[q] = i
	}
	anchors := make(map[int][]int, len(a.OffPath))
	for _, op := range a.OffPath {
		anchors[op.Qubit] = op.PathAnchors
	}
	r := Region{UsesPath: true, I0: 1 << 30, I1: -1}
	grow := func(i int) {
		if i < r.I0 {
			r.I0 = i
		}
		if i > r.I1 {
			r.I1 = i
		}
	}
	for _, q := range phys {
		if i, ok := idx[q]; ok {
			grow(i)
			continue
		}
		for _, i := range anchors[q] {
			grow(i)
		}
	}
	return r
}

// Overlaps reports whether two regions of the same encoding intersect.
func (r Region) Overlaps(s Region) bool {
	if r.UsesPath != s.UsesPath {
		return true // mixed encodings: be conservative, force a merge
	}
	if r.UsesPath {
		return r.I0 <= s.I1 && s.I0 <= r.I1
	}
	return r.U0 <= s.U1 && s.U0 <= r.U1 && r.P0 <= s.P1 && s.P0 <= r.P1
}

// Union returns the smallest region containing both r and s.
func (r Region) Union(s Region) Region {
	if r.UsesPath {
		return Region{UsesPath: true, I0: min(r.I0, s.I0), I1: max(r.I1, s.I1)}
	}
	return Region{
		U0: min(r.U0, s.U0), U1: max(r.U1, s.U1),
		P0: min(r.P0, s.P0), P1: max(r.P1, s.P1),
	}
}

// Size returns the number of unit-position cells (or path slots) the region
// spans — a proxy for the sub-architecture size the predictor works with.
func (r Region) Size() int {
	if r.UsesPath {
		return r.I1 - r.I0 + 1
	}
	return (r.U1 - r.U0 + 1) * (r.P1 - r.P0 + 1)
}

// unitIndex returns, for every physical qubit, its unit index and position
// within the unit (-1, -1 for qubits outside any unit). The slices are
// computed once per Arch and shared — callers must treat them as read-only.
// Region detection and the snake restriction run once per hybrid prediction,
// so rebuilding the index there was a measurable per-checkpoint cost.
func (a *Arch) unitIndex() (unitOf, posOf []int) {
	a.unitOnce.Do(func() {
		a.unitOf = make([]int, a.N())
		a.posOf = make([]int, a.N())
		for i := range a.unitOf {
			a.unitOf[i], a.posOf[i] = -1, -1
		}
		for u, qs := range a.Units {
			for p, q := range qs {
				a.unitOf[q] = u
				a.posOf[q] = p
			}
		}
	})
	return a.unitOf, a.posOf
}

// UnitIndex exposes unitIndex for other packages.
func (a *Arch) UnitIndex() (unitOf, posOf []int) { return a.unitIndex() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
