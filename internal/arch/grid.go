package arch

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Grid returns the rows x cols 2D grid architecture. Qubit (r,c) has index
// r*cols + c. Units are the rows (§3.1); the snake is the boustrophedon path.
func Grid(rows, cols int) *Arch {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("arch: invalid grid %dx%d", rows, cols))
	}
	n := rows * cols
	g := graph.New(n)
	coords := make([]Coord, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = Coord{Row: r, Col: c}
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	units := make([][]int, rows)
	for r := 0; r < rows; r++ {
		units[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			units[r][c] = id(r, c)
		}
	}
	snake := make([]int, 0, n)
	for r := 0; r < rows; r++ {
		if r%2 == 0 {
			for c := 0; c < cols; c++ {
				snake = append(snake, id(r, c))
			}
		} else {
			for c := cols - 1; c >= 0; c-- {
				snake = append(snake, id(r, c))
			}
		}
	}
	a := &Arch{
		Name:   fmt.Sprintf("grid-%dx%d", rows, cols),
		Kind:   KindGrid,
		G:      g,
		Coords: coords,
		Units:  units,
		Snake:  snake,
		Path:   snake,
	}
	return a.seal()
}

// GridN returns a near-square grid with at least n qubits, the paper's
// "minimum size of architecture that can handle the input problem graph"
// with "shape close to a square" (§7.1).
func GridN(n int) *Arch {
	rows, cols := nearSquare(n)
	return Grid(rows, cols)
}

// nearSquare returns rows, cols with rows*cols >= n, rows <= cols, and the
// shape as close to square as possible.
func nearSquare(n int) (rows, cols int) {
	if n <= 0 {
		return 1, 1
	}
	rows = 1
	for rows*rows < n {
		rows++
	}
	cols = rows
	// Shrink rows while capacity allows, keeping near-square.
	for (rows-1)*cols >= n {
		rows--
	}
	return rows, cols
}

// Lattice3D returns the x*y*z cubic lattice (§3.2 discussion, Fig 13).
// Qubit (i,j,k) has index (k*y+j)*x + i; units are the x-direction rows of
// plane z=0's decomposition generalised per plane. The snake traverses
// plane-by-plane boustrophedon.
func Lattice3D(x, y, z int) *Arch {
	if x < 1 || y < 1 || z < 1 {
		panic(fmt.Sprintf("arch: invalid lattice %dx%dx%d", x, y, z))
	}
	n := x * y * z
	g := graph.New(n)
	coords := make([]Coord, n)
	id := func(i, j, k int) int { return (k*y+j)*x + i }
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				coords[id(i, j, k)] = Coord{Row: j, Col: i, Z: k}
				if i+1 < x {
					g.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					g.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					g.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	// Units: one per (j,k) row along x.
	var units [][]int
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			row := make([]int, x)
			for i := 0; i < x; i++ {
				row[i] = id(i, j, k)
			}
			units = append(units, row)
		}
	}
	// Snake: within each plane boustrophedon over (i,j), planes chained in
	// alternating direction so consecutive plane endpoints are adjacent.
	snake := make([]int, 0, n)
	for k := 0; k < z; k++ {
		var plane []int
		for j := 0; j < y; j++ {
			if j%2 == 0 {
				for i := 0; i < x; i++ {
					plane = append(plane, id(i, j, k))
				}
			} else {
				for i := x - 1; i >= 0; i-- {
					plane = append(plane, id(i, j, k))
				}
			}
		}
		if k%2 == 1 {
			for l, r := 0, len(plane)-1; l < r; l, r = l+1, r-1 {
				plane[l], plane[r] = plane[r], plane[l]
			}
		}
		snake = append(snake, plane...)
	}
	a := &Arch{
		Name:   fmt.Sprintf("lattice3d-%dx%dx%d", x, y, z),
		Kind:   KindLattice3D,
		G:      g,
		Coords: coords,
		Units:  units,
		Snake:  snake,
		Path:   snake,
	}
	return a.seal()
}
