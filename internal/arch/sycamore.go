package arch

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Sycamore returns a rows x cols rotated-square-lattice (Google Sycamore)
// architecture. Qubit (r,c) has index r*cols+c. There are no intra-row
// couplings: qubit (r,c) couples "vertically" to (r+1,c) and diagonally to
// (r+1,c+1) when r is even, or to (r+1,c-1) when r is odd.
//
// Two adjacent rows therefore induce a zig-zag path over their 2*cols
// qubits — the structure §3.2.1 exploits for the 2xUnit sub-problem — and
// the parallel vertical couplings implement the unit exchange in one step
// (Fig 10b). Units are the horizontal rows (Fig 10a). No Hamiltonian snake
// is recorded: the structured ATA solution never needs one.
func Sycamore(rows, cols int) *Arch {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("arch: invalid sycamore %dx%d", rows, cols))
	}
	n := rows * cols
	g := graph.New(n)
	coords := make([]Coord, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = Coord{Row: r, Col: c}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
				if r%2 == 0 && c+1 < cols {
					g.AddEdge(id(r, c), id(r+1, c+1))
				}
				if r%2 == 1 && c-1 >= 0 {
					g.AddEdge(id(r, c), id(r+1, c-1))
				}
			}
		}
	}
	units := make([][]int, rows)
	for r := 0; r < rows; r++ {
		units[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			units[r][c] = id(r, c)
		}
	}
	a := &Arch{
		Name:   fmt.Sprintf("sycamore-%dx%d", rows, cols),
		Kind:   KindSycamore,
		G:      g,
		Coords: coords,
		Units:  units,
	}
	return a.seal()
}

// SycamoreN returns a near-square Sycamore with at least n qubits.
func SycamoreN(n int) *Arch {
	rows, cols := nearSquare(n)
	return Sycamore(rows, cols)
}

// ZigZagPath returns, for two adjacent Sycamore rows r and r+1, the induced
// zig-zag path over their 2*cols qubits, in path order. Consecutive entries
// are coupled. For even r the path is (r+1,0),(r,0),(r+1,1),(r,1),...; for
// odd r it is (r,0),(r+1,0),(r,1),(r+1,1),....
func (a *Arch) ZigZagPath(r int) []int {
	if a.Kind != KindSycamore {
		panic("arch: ZigZagPath requires a sycamore architecture")
	}
	top, bottom := a.Units[r], a.Units[r+1]
	cols := len(top)
	path := make([]int, 0, 2*cols)
	if r%2 == 0 {
		// Edges: (r,c)-(r+1,c) and (r,c)-(r+1,c+1).
		for c := 0; c < cols; c++ {
			path = append(path, bottom[c], top[c])
		}
	} else {
		// Edges: (r,c)-(r+1,c) and (r,c)-(r+1,c-1).
		for c := 0; c < cols; c++ {
			path = append(path, top[c], bottom[c])
		}
	}
	return path
}
