package arch

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Hexagon returns the hypothetical honeycomb architecture of §3.2.2 in the
// paper's "dragged square layout" (Fig 12b): rows x cols qubits where every
// column is a fully connected vertical line (the units), and horizontal
// couplings between adjacent columns exist at alternating heights — qubit
// (r,c) couples to (r,c+1) exactly when r+c is even. Every qubit then has
// degree ≤ 3, matching a honeycomb.
//
// Both dimensions are rounded up to even: the 2xUnit U-path pattern needs a
// rung at one end of every column pair, which an even height guarantees for
// any even-height sub-region as well.
func Hexagon(rows, cols int) *Arch {
	if rows < 2 || cols < 1 {
		panic(fmt.Sprintf("arch: invalid hexagon %dx%d", rows, cols))
	}
	if cols%2 == 1 {
		cols++
	}
	if rows%2 == 1 {
		rows++
	}
	n := rows * cols
	g := graph.New(n)
	coords := make([]Coord, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			coords[id(r, c)] = Coord{Row: r, Col: c}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols && (r+c)%2 == 0 {
				g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	// Units are the columns (Fig 12a/b).
	units := make([][]int, cols)
	for c := 0; c < cols; c++ {
		units[c] = make([]int, rows)
		for r := 0; r < rows; r++ {
			units[c][r] = id(r, c)
		}
	}
	// No Hamiltonian snake is recorded: the brick-wall lattice admits one
	// only with per-pair detours that the structured ATA never needs.
	a := &Arch{
		Name:   fmt.Sprintf("hexagon-%dx%d", rows, cols),
		Kind:   KindHexagon,
		G:      g,
		Coords: coords,
		Units:  units,
	}
	return a.seal()
}

// HexagonN returns a near-square hexagon architecture with at least n qubits.
func HexagonN(n int) *Arch {
	rows, cols := nearSquare(n)
	if rows < 2 {
		rows = 2
	}
	return Hexagon(rows, cols)
}
