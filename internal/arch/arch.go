// Package arch models quantum hardware coupling architectures with the
// regular structure the paper exploits: an architecture is a coupling graph
// plus geometry metadata — a decomposition into "units" (rows/columns that
// behave like lines), a Hamiltonian snake where one exists, and, for IBM
// heavy-hex, the longest path and its off-path qubits (§5.1, Fig 16).
package arch

import (
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Kind identifies the family of an architecture; the ATA pattern chosen by
// the compiler dispatches on it.
type Kind int

const (
	KindLine Kind = iota
	KindGrid
	KindSycamore
	KindHeavyHex
	KindHexagon
	KindLattice3D
	KindGeneric
)

func (k Kind) String() string {
	switch k {
	case KindLine:
		return "line"
	case KindGrid:
		return "grid"
	case KindSycamore:
		return "sycamore"
	case KindHeavyHex:
		return "heavy-hex"
	case KindHexagon:
		return "hexagon"
	case KindLattice3D:
		return "lattice3d"
	default:
		return "generic"
	}
}

// Coord locates a physical qubit in the architecture's geometry. For 2D
// families Z is 0. For heavy-hex, bridge (off-path) qubits have Bridge=true.
type Coord struct {
	Row, Col, Z int
	Bridge      bool
}

// Arch is a hardware coupling architecture.
type Arch struct {
	// Name is a human-readable identifier, e.g. "sycamore-8x8".
	Name string
	// Kind is the architecture family.
	Kind Kind
	// G is the coupling graph over physical qubits 0..N-1.
	G *graph.Graph
	// Coords gives the geometry of each physical qubit.
	Coords []Coord
	// Units is the row/column decomposition used by the structured ATA
	// solutions (§3): Units[u] lists the physical qubits of unit u in line
	// order. Nil for architectures compiled via a path (line, heavy-hex).
	Units [][]int
	// Snake is a Hamiltonian path over all qubits where one exists
	// (line, grid, sycamore, hexagon, 3D lattice); nil otherwise.
	Snake []int
	// Path is the heavy-hex longest path (§5.1); for other families it
	// equals Snake. Off-path qubits appear in OffPath.
	Path []int
	// OffPath lists heavy-hex qubits not on Path; each entry records the
	// qubit and its neighbouring positions on Path (indices into Path).
	OffPath []OffPathQubit

	distOnce sync.Once
	dist     [][]int

	fpOnce sync.Once
	fp     uint64

	unitOnce sync.Once
	unitOf   []int
	posOf    []int
}

// OffPathQubit is a heavy-hex bridge qubit hanging off the longest path.
type OffPathQubit struct {
	Qubit       int
	PathAnchors []int // indices into Arch.Path of its on-path neighbours
}

// N returns the number of physical qubits.
func (a *Arch) N() int { return a.G.N() }

// Dist returns the shortest-path distance between physical qubits p and q,
// computing and caching the all-pairs matrix on first use. The cache fill is
// synchronised, so an Arch may be shared by concurrent compilations.
func (a *Arch) Dist(p, q int) int {
	return a.Distances()[p][q]
}

// Distances returns the cached all-pairs distance matrix. The matrix is
// computed at most once and must be treated as read-only by callers.
func (a *Arch) Distances() [][]int {
	a.distOnce.Do(func() { a.dist = a.G.AllPairsDistances() })
	return a.dist
}

// Fingerprint returns a structural hash of the architecture: family, size,
// couplings, unit decomposition, snake, and path. Two independently
// constructed architectures with the same structure share a fingerprint, so
// caches keyed by it (internal/swapnet's pattern cache) survive across Arch
// instances. The constructors force it once at construction; the accessor is
// synchronised for any Arch assembled by hand.
func (a *Arch) Fingerprint() uint64 {
	a.fpOnce.Do(a.computeFingerprint)
	return a.fp
}

func (a *Arch) computeFingerprint() {
	h := fnv.New64a()
	buf := make([]byte, 0, 8)
	w := func(vs ...int) {
		for _, v := range vs {
			buf = buf[:0]
			u := uint64(v)
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(u>>(8*i)))
			}
			h.Write(buf)
		}
	}
	w(int(a.Kind), a.N())
	for _, e := range a.G.Edges() {
		w(e.U, e.V)
	}
	w(len(a.Units))
	for _, u := range a.Units {
		w(len(u))
		w(u...)
	}
	w(len(a.Snake))
	w(a.Snake...)
	w(len(a.Path))
	w(a.Path...)
	w(len(a.OffPath))
	for _, op := range a.OffPath {
		w(op.Qubit)
		w(op.PathAnchors...)
	}
	a.fp = h.Sum64()
}

// seal finalises a constructed architecture: it computes the structural
// fingerprint once, so sharing the Arch across goroutines never races on
// lazy initialisation. Every constructor returns through it.
func (a *Arch) seal() *Arch {
	a.Fingerprint()
	return a
}

// Diameter returns the graph diameter.
func (a *Arch) Diameter() int {
	d := a.Distances()
	max := 0
	for _, row := range d {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

func (a *Arch) String() string {
	return fmt.Sprintf("%s (%d qubits, %d couplings)", a.Name, a.N(), a.G.M())
}

// Line returns the 1xN line architecture.
func Line(n int) *Arch {
	g := graph.Path(n)
	coords := make([]Coord, n)
	snake := make([]int, n)
	unit := make([]int, n)
	for i := 0; i < n; i++ {
		coords[i] = Coord{Row: 0, Col: i}
		snake[i] = i
		unit[i] = i
	}
	a := &Arch{
		Name:   fmt.Sprintf("line-%d", n),
		Kind:   KindLine,
		G:      g,
		Coords: coords,
		Units:  [][]int{unit},
		Snake:  snake,
		Path:   snake,
	}
	return a.seal()
}

// Generic wraps an arbitrary coupling graph with no exploitable structure;
// only the greedy compiler applies to it.
func Generic(name string, g *graph.Graph) *Arch {
	coords := make([]Coord, g.N())
	for i := range coords {
		coords[i] = Coord{Row: 0, Col: i}
	}
	a := &Arch{Name: name, Kind: KindGeneric, G: g, Coords: coords}
	return a.seal()
}
