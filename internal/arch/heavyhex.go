package arch

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// HeavyHex returns an IBM heavy-hex architecture with `rows` horizontal
// lines of `width` qubits each, connected by bridge qubits (Fig 16).
//
// Between row k and row k+1 bridges sit every 4 columns; the bridge columns
// shift by 2 between consecutive row pairs, which produces the dodecagon
// (heavy-hexagon) cells of the IBM lattice. For even k the bridge columns
// run ..., width-1-4, width-1 (so a bridge always sits at the right end);
// for odd k they run 0, 4, 8, ... (a bridge at the left end). The end
// bridges let the longest path (Arch.Path) snake through every row qubit:
// row 0 left-to-right, down the right-end bridge, row 1 right-to-left, down
// the left-end bridge, and so on — exactly the numbered path of Fig 16. The
// interior bridges are the off-path qubits (lettered A–H in Fig 16).
func HeavyHex(rows, width int) *Arch {
	if rows < 1 || width < 2 {
		panic(fmt.Sprintf("arch: invalid heavy-hex %dx%d", rows, width))
	}
	if width%4 == 1 {
		// Bridge columns run every 4 columns from the right end (even gaps)
		// and from column 0 (odd gaps). width ≡ 1 (mod 4) would make the two
		// families coincide and give some row qubits two bridges (degree 4,
		// not heavy-hex); widen by one column instead.
		width++
	}
	var (
		coords  []Coord
		edges   [][2]int
		rowIDs  = make([][]int, rows)
		next    int
		bridges []struct {
			id, row, col int // between row `row` and `row+1` at column `col`
		}
	)
	// Row qubits first.
	for k := 0; k < rows; k++ {
		rowIDs[k] = make([]int, width)
		for c := 0; c < width; c++ {
			rowIDs[k][c] = next
			coords = append(coords, Coord{Row: k, Col: c})
			next++
		}
		for c := 0; c+1 < width; c++ {
			edges = append(edges, [2]int{rowIDs[k][c], rowIDs[k][c+1]})
		}
	}
	// Bridge qubits.
	for k := 0; k+1 < rows; k++ {
		var cols []int
		if k%2 == 0 {
			for c := width - 1; c >= 0; c -= 4 {
				cols = append(cols, c)
			}
		} else {
			for c := 0; c < width; c += 4 {
				cols = append(cols, c)
			}
		}
		for _, c := range cols {
			id := next
			next++
			coords = append(coords, Coord{Row: k, Col: c, Bridge: true})
			bridges = append(bridges, struct{ id, row, col int }{id, k, c})
			edges = append(edges, [2]int{rowIDs[k][c], id}, [2]int{id, rowIDs[k+1][c]})
		}
	}
	g := graph.New(next)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}

	// Longest path: snake over the row qubits through the end bridges.
	var path []int
	pathIdx := make(map[int]int)
	appendQ := func(q int) {
		pathIdx[q] = len(path)
		path = append(path, q)
	}
	for k := 0; k < rows; k++ {
		if k%2 == 0 {
			for c := 0; c < width; c++ {
				appendQ(rowIDs[k][c])
			}
		} else {
			for c := width - 1; c >= 0; c-- {
				appendQ(rowIDs[k][c])
			}
		}
		if k+1 < rows {
			// End bridge: right end for even k, left end for odd k.
			endCol := width - 1
			if k%2 == 1 {
				endCol = 0
			}
			for _, b := range bridges {
				if b.row == k && b.col == endCol {
					appendQ(b.id)
					break
				}
			}
		}
	}

	var offPath []OffPathQubit
	for _, b := range bridges {
		if _, on := pathIdx[b.id]; on {
			continue
		}
		var anchors []int
		for _, nb := range g.Neighbors(b.id) {
			if i, ok := pathIdx[nb]; ok {
				anchors = append(anchors, i)
			}
		}
		offPath = append(offPath, OffPathQubit{Qubit: b.id, PathAnchors: anchors})
	}

	a := &Arch{
		Name:    fmt.Sprintf("heavyhex-%dx%d", rows, width),
		Kind:    KindHeavyHex,
		G:       g,
		Coords:  coords,
		Path:    path,
		OffPath: offPath,
	}
	return a.seal()
}

// HeavyHexN returns a heavy-hex architecture with at least n qubits and a
// near-square overall shape (§7.1: "scale both architectures to 1024 qubits
// and keep the shape close to a square").
func HeavyHexN(n int) *Arch {
	// rows*width row qubits plus (rows-1)*ceil(width/4) bridges. Pick the
	// feasible configuration whose footprint is closest to square (rows are
	// spaced by bridge layers, so width ~ 2*rows reads as square).
	var best *Arch
	bestGap := 1 << 30
	for rows := 1; rows <= n; rows++ {
		lo, hi := 2, 2*n
		for lo < hi {
			mid := (lo + hi) / 2
			if heavyHexCount(rows, mid) >= n {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if heavyHexCount(rows, lo) < n {
			continue
		}
		if gap := aspectGap(rows, lo); best == nil || gap < bestGap {
			best, bestGap = HeavyHex(rows, lo), gap
		}
		if 2*rows > lo {
			break
		}
	}
	if best == nil {
		best = HeavyHex(1, max(2, n))
	}
	return best
}

func heavyHexCount(rows, width int) int {
	n := rows * width
	perGap := (width + 3) / 4
	n += (rows - 1) * perGap
	return n
}

func aspectGap(rows, width int) int {
	d := width - 2*rows
	if d < 0 {
		d = -d
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
