package greedy

import (
	"runtime"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// SchedulingLoopAllocs measures steady-state heap allocations per run of
// the packed scheduling loop (everything except Result materialisation,
// which intentionally allocates caller-owned memory). It warms one engine's
// arenas, then counts mallocs across runs. Module-internal benchmark
// support only — the BENCH_greedy.json harness records this, and the CI
// regression gate holds it at zero; the equivalent in-test pin is
// TestPackedEngineZeroAllocs.
func SchedulingLoopAllocs(a *arch.Arch, problem *graph.Graph, initial []int, opts Options, runs int) (float64, error) {
	if runs <= 0 {
		runs = 10
	}
	eng := acquireEngine(a)
	defer releaseEngine(eng)
	for i := 0; i < 3; i++ {
		if err := eng.run(problem, initial, opts); err != nil {
			return 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := eng.run(problem, initial, opts); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}
