package greedy

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// The differential suite pins the packed engine (engine.go) byte-identical
// to the preserved pre-rewrite scheduler (reference.go): every gate struct,
// the mappings, and the cycle count must agree on every instance, and every
// compiled circuit must pass the full strict verifier chain (which includes
// the sema phase-polynomial equivalence analyzer).

// assertIdentical compiles the instance with both engines and fails unless
// the results agree byte for byte (or both fail with the same error).
func assertIdentical(t *testing.T, name string, a *arch.Arch, p *graph.Graph, initial []int, opts Options) {
	t.Helper()
	ref, refErr := ReferenceCompile(a, p, initial, opts)
	got, gotErr := Compile(a, p, initial, opts)
	if (refErr != nil) != (gotErr != nil) {
		t.Fatalf("%s: error divergence: reference=%v packed=%v", name, refErr, gotErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text divergence:\n  reference: %v\n  packed:    %v", name, refErr, gotErr)
		}
		return
	}
	if got.Cycles != ref.Cycles {
		t.Fatalf("%s: cycles %d != reference %d", name, got.Cycles, ref.Cycles)
	}
	if got.Circuit.NQubits != ref.Circuit.NQubits {
		t.Fatalf("%s: nqubits %d != reference %d", name, got.Circuit.NQubits, ref.Circuit.NQubits)
	}
	if len(got.Circuit.Gates) != len(ref.Circuit.Gates) {
		t.Fatalf("%s: gate count %d != reference %d", name, len(got.Circuit.Gates), len(ref.Circuit.Gates))
	}
	for i := range ref.Circuit.Gates {
		if got.Circuit.Gates[i] != ref.Circuit.Gates[i] {
			t.Fatalf("%s: gate %d differs:\n  reference: %+v\n  packed:    %+v",
				name, i, ref.Circuit.Gates[i], got.Circuit.Gates[i])
		}
	}
	for l := range ref.Initial {
		if got.Initial[l] != ref.Initial[l] {
			t.Fatalf("%s: initial[%d] = %d != reference %d", name, l, got.Initial[l], ref.Initial[l])
		}
	}
	for l := range ref.Final {
		if got.Final[l] != ref.Final[l] {
			t.Fatalf("%s: final[%d] = %d != reference %d", name, l, got.Final[l], ref.Final[l])
		}
	}
	pass := &verify.Pass{Circuit: got.Circuit, Arch: a, Problem: p, Initial: got.Initial, Final: got.Final}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		t.Fatalf("%s: packed circuit failed strict verification: %v", name, err)
	}
}

// diffArchs is the architecture axis of the differential matrix: one
// degenerate-connectivity device (line), one dense regular device (grid),
// one sparse irregular device (heavy-hex).
func diffArchs() []*arch.Arch {
	return []*arch.Arch{arch.Line(16), arch.Grid(4, 5), arch.HeavyHex(2, 8)}
}

// latticeProblem is the lattice problem family: a rows x cols grid graph,
// the hardest-to-distinguish case because it nearly matches grid couplings.
func latticeProblem(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// diffProblem draws the problem for (family, seed) sized to fit a.
func diffProblem(family string, a *arch.Arch, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := a.N()
	if n > 16 {
		n = 16
	}
	switch family {
	case "er-0.2":
		return graph.GnpConnected(n, 0.2, rng)
	case "er-0.5":
		return graph.GnpConnected(n, 0.5, rng)
	case "er-0.8":
		return graph.GnpConnected(n, 0.8, rng)
	case "regular-3":
		if n%2 == 1 {
			n--
		}
		return graph.MustRandomRegular(n, 3, rng)
	case "lattice":
		rows := 2 + int(seed%2)
		cols := n / rows
		if cols < 2 {
			cols = 2
		}
		return latticeProblem(rows, cols)
	}
	panic("unknown family " + family)
}

// diffOptions rotates compile options by seed so the matrix exercises the
// noise-aware, crosstalk-aware, and combined paths, plus non-default angle
// and cycle budgets.
func diffOptions(a *arch.Arch, seed int64) Options {
	var opts Options
	switch seed % 4 {
	case 1:
		opts.Noise = noise.Synthetic(a, seed)
	case 2:
		opts.CrosstalkAware = true
	case 3:
		opts.Noise = noise.Synthetic(a, seed)
		opts.CrosstalkAware = true
	}
	if seed%3 == 1 {
		opts.Angle = 0.37
	}
	return opts
}

// diffInitial alternates the curated placement with an adversarial random
// permutation (spread placements trigger long escorts and stall walks).
func diffInitial(a *arch.Arch, p *graph.Graph, seed int64) []int {
	if seed%2 == 0 {
		return InitialMapping(a, p)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	perm := rng.Perm(a.N())
	return perm[:p.N()]
}

// TestGreedyDifferentialSuite runs the full matrix: 3 archs x 5 graph
// families x 7 seeds = 105 instances, each with rotating noise/crosstalk
// options and placements, each checked byte-identical and strict-verified.
func TestGreedyDifferentialSuite(t *testing.T) {
	families := []string{"er-0.2", "er-0.5", "er-0.8", "regular-3", "lattice"}
	instances := 0
	for _, a := range diffArchs() {
		for _, fam := range families {
			for seed := int64(0); seed < 7; seed++ {
				p := diffProblem(fam, a, 1000*seed+int64(len(fam)))
				name := fmt.Sprintf("%s/%s/seed%d", a.Name, fam, seed)
				assertIdentical(t, name, a, p, diffInitial(a, p, seed), diffOptions(a, seed))
				instances++
			}
		}
	}
	if instances < 100 {
		t.Fatalf("differential matrix shrank to %d instances, need >= 100", instances)
	}
}

// TestGreedyDifferentialErrorPaths pins the failure contract: both engines
// must fail identically on disconnected devices and exhausted cycle budgets.
func TestGreedyDifferentialErrorPaths(t *testing.T) {
	// Disconnected architecture: two line components, a gate spanning them.
	disc := &arch.Arch{Name: "split-line-6", G: graph.New(6)}
	disc.G.AddEdge(0, 1)
	disc.G.AddEdge(1, 2)
	disc.G.AddEdge(3, 4)
	disc.G.AddEdge(4, 5)
	p := graph.New(6)
	p.AddEdge(0, 5)
	assertIdentical(t, "disconnected", disc, p, nil, Options{})

	// Cycle budget exhaustion mid-compile.
	a := arch.Line(10)
	clique := graph.Complete(10)
	assertIdentical(t, "budget", a, clique, InitialMapping(a, clique), Options{MaxCycles: 3})
}

// TestGreedyDifferentialCheckpoints pins the Checkpoint observation stream:
// prefix lengths, mapping snapshots, and cycle stamps must agree event for
// event (the hybrid compiler branches ATA prediction off these).
func TestGreedyDifferentialCheckpoints(t *testing.T) {
	type ckpt struct {
		prefix int
		l2p    string
		cycle  int
	}
	record := func(dst *[]ckpt) func(int, []int, int) {
		return func(prefixLen int, l2p []int, cycle int) {
			*dst = append(*dst, ckpt{prefixLen, fmt.Sprint(l2p), cycle})
		}
	}
	a := arch.Grid(4, 4)
	rng := rand.New(rand.NewSource(77))
	p := graph.GnpConnected(16, 0.5, rng)
	init := InitialMapping(a, p)

	var refC, gotC []ckpt
	if _, err := ReferenceCompile(a, p, init, Options{Checkpoint: record(&refC)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(a, p, init, Options{Checkpoint: record(&gotC)}); err != nil {
		t.Fatal(err)
	}
	if len(gotC) != len(refC) {
		t.Fatalf("checkpoint count %d != reference %d", len(gotC), len(refC))
	}
	for i := range refC {
		if gotC[i] != refC[i] {
			t.Fatalf("checkpoint %d differs: %+v != reference %+v", i, gotC[i], refC[i])
		}
	}
}

// TestGreedyPooledConcurrentDeterminism hammers the engine pool from many
// goroutines (the serving daemon's worker pattern): every concurrent compile
// of every instance must still match the reference byte for byte, and
// repeated runs with different worker counts must agree with each other.
func TestGreedyPooledConcurrentDeterminism(t *testing.T) {
	type inst struct {
		name string
		a    *arch.Arch
		p    *graph.Graph
		init []int
		opts Options
	}
	var insts []inst
	for i, a := range diffArchs() {
		rng := rand.New(rand.NewSource(int64(200 + i)))
		p := graph.GnpConnected(12, 0.5, rng)
		insts = append(insts, inst{
			name: a.Name,
			a:    a, p: p,
			init: InitialMapping(a, p),
			opts: diffOptions(a, int64(i)),
		})
	}
	refs := make([]*Result, len(insts))
	for i, in := range insts {
		ref, err := ReferenceCompile(in.a, in.p, in.init, in.opts)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	for _, workers := range []int{1, 2, 8} {
		var wg sync.WaitGroup
		errs := make(chan error, workers*len(insts))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 4; round++ {
					for i, in := range insts {
						got, err := Compile(in.a, in.p, in.init, in.opts)
						if err != nil {
							errs <- fmt.Errorf("%s: %v", in.name, err)
							return
						}
						if len(got.Circuit.Gates) != len(refs[i].Circuit.Gates) {
							errs <- fmt.Errorf("%s: gate count diverged under concurrency", in.name)
							return
						}
						for g := range got.Circuit.Gates {
							if got.Circuit.Gates[g] != refs[i].Circuit.Gates[g] {
								errs <- fmt.Errorf("%s: gate %d diverged under concurrency", in.name, g)
								return
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestGreedyPoolRebindsAcrossArchitectures interleaves compiles on archs of
// very different sizes so pooled engines are repeatedly rebound — stale
// arena contents from a bigger device must never leak into a smaller one.
func TestGreedyPoolRebindsAcrossArchitectures(t *testing.T) {
	big := arch.Grid(6, 6)
	small := arch.Line(6)
	rng := rand.New(rand.NewSource(31))
	pBig := graph.GnpConnected(16, 0.4, rng)
	pSmall := graph.GnpConnected(6, 0.8, rng)
	for round := 0; round < 3; round++ {
		assertIdentical(t, fmt.Sprintf("rebind-big-%d", round), big, pBig, InitialMapping(big, pBig), Options{})
		assertIdentical(t, fmt.Sprintf("rebind-small-%d", round), small, pSmall, InitialMapping(small, pSmall), Options{CrosstalkAware: true})
		assertIdentical(t, fmt.Sprintf("rebind-noise-%d", round), small, pSmall, InitialMapping(small, pSmall), Options{Noise: noise.Synthetic(small, 7)})
	}
}
