// Package greedy implements the compiler's greedy processing component
// (§6.2): cycle-by-cycle frontier scheduling. Each cycle it (1) schedules a
// large conflict-free set of hardware-compliant program gates, chosen by
// colouring a conflict graph whose edges are shared qubits and crosstalk
// pairs, and (2) inserts SWAPs on the remaining qubits via a weighted
// matching whose weights combine routing benefit with link error rates
// (§5.3) — so gates migrate toward low-error couplings.
//
// Pure greedy compilation has no worst-case depth bound (§5.4); the hybrid
// framework in internal/core combines it with the structured ATA solution.
//
// Compile runs on the packed flat-arena engine (engine.go): int32 ids, CSR
// adjacency, bitmask conflict tracking, incrementally maintained gate
// distances, and sync.Pool recycling across compiles — zero steady-state
// allocations in the scheduling loop. The pre-rewrite implementation is
// preserved verbatim in reference.go as the equivalence oracle; the
// differential suite (differential_test.go, FuzzGreedyMatchesReference)
// pins the two engines byte-identical.
package greedy

import (
	"errors"
	"math"
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// ErrNoProgress reports that the scheduler hit its cycle cap with gates
// still unscheduled — a budget-class failure the hybrid compiler answers
// with the structured-pattern fallback (Theorem 6.1).
var ErrNoProgress = errors.New("greedy: no progress")

// ErrInterrupted reports that Options.Interrupt aborted the compilation;
// it wraps the interrupt's cause (e.g. context.DeadlineExceeded), so
// errors.Is sees through it.
var ErrInterrupted = errors.New("greedy: interrupted")

// ErrUnreachable reports a problem edge whose endpoints sit in different
// connected components of the coupling graph: no SWAP sequence can ever
// bring them together, so failing up front beats walking forever.
var ErrUnreachable = errors.New("greedy: gate endpoints unreachable")

// Options configures the greedy compiler.
type Options struct {
	// Noise enables error-variability-aware SWAP placement; nil treats all
	// couplings as equal.
	Noise *noise.Model
	// CrosstalkAware adds crosstalk pairs to the gate-scheduling conflict
	// graph.
	CrosstalkAware bool
	// Angle is recorded on every program gate (QAOA binds γ per round when
	// it instantiates the schedule).
	Angle float64
	// MaxCycles aborts a runaway compilation (0 = 300*n + 2000; sparse
	// architectures like heavy-hex legitimately need many swap cycles for
	// dense problems).
	MaxCycles int
	// Checkpoint, if non-nil, is invoked after every cycle in which the
	// mapping changed, receiving the gate-list prefix length and a copy of
	// the current logical-to-physical mapping. The hybrid compiler uses it
	// to branch into ATA prediction (§6.3).
	Checkpoint func(prefixLen int, l2p []int, cycle int)
	// Interrupt, if non-nil, is polled once per scheduler cycle (including
	// each forced step of the stall-recovery walk). A non-nil return aborts
	// the compilation immediately with an ErrInterrupted-wrapped error —
	// the hybrid compiler's resource governor plugs in here.
	Interrupt func() error
	// Obs records scheduler telemetry (cycle/stall counters, per-cycle
	// scheduling histograms, stall-recovery events under ObsSpan) on the
	// given trace; nil disables it at the cost of one pointer check per
	// observation.
	Obs *obs.Trace
	// ObsSpan is the parent span stall-recovery events attach to.
	ObsSpan *obs.Span
}

// Result is a completed greedy compilation.
type Result struct {
	Circuit *circuit.Circuit
	Initial []int // initial logical-to-physical mapping
	Final   []int // final logical-to-physical mapping after all SWAPs
	Cycles  int   // scheduler cycles consumed
}

// Compile schedules every edge of problem on architecture a starting from
// the given initial mapping (see InitialMapping; identity if nil).
func Compile(a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	eng := acquireEngine(a)
	defer releaseEngine(eng)
	return eng.compile(problem, initial, opts)
}

// pairSet is a bitset over unordered logical-qubit pairs — the remaining
// gate set, consulted in hot loops where hashing 16-byte edge keys costs
// too much.
type pairSet struct {
	n    int
	bits []uint64
}

func newPairSet(n int) *pairSet {
	return &pairSet{n: n, bits: make([]uint64, (n*n+63)/64)}
}

func (s *pairSet) idx(e graph.Edge) int { return e.U*s.n + e.V }

func (s *pairSet) add(e graph.Edge)    { i := s.idx(e); s.bits[i/64] |= 1 << uint(i%64) }
func (s *pairSet) remove(e graph.Edge) { i := s.idx(e); s.bits[i/64] &^= 1 << uint(i%64) }
func (s *pairSet) has(e graph.Edge) bool {
	i := s.idx(e)
	return s.bits[i/64]&(1<<uint(i%64)) != 0
}

// vetoThreshold returns the CX error above which a link is excluded from
// routing: four times the median link error, floored at 10%.
func vetoThreshold(nm *noise.Model) float64 {
	errs := make([]float64, 0, len(nm.TwoQubit))
	//vet:ignore maprange collected values are sorted before use
	for _, e := range nm.TwoQubit {
		errs = append(errs, e)
	}
	sort.Float64s(errs)
	if len(errs) == 0 {
		return math.Inf(1)
	}
	t := 4 * errs[len(errs)/2]
	if t < 0.10 {
		t = 0.10
	}
	return t
}
