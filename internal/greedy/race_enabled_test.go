//go:build race

package greedy

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation (and sync.Pool's deliberate put-dropping under race)
// makes allocation counts meaningless.
const raceEnabled = true
