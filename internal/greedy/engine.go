package greedy

import (
	"fmt"
	"math"
	"sync"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// engine is the packed flat-arena greedy scheduler. All per-cycle state
// lives in reusable int32 arenas indexed by physical qubit, coupling id, or
// gate id; membership sets are epoch-marked arrays (one int64 compare, no
// clearing); gate distances are maintained incrementally under SWAPs; and
// the compiled gate list grows in a recycled arena. Engines are pooled via
// sync.Pool, so a warm engine compiles with zero steady-state allocations
// (pinned by TestPackedEngineZeroAllocs).
//
// The engine must replay every heuristic decision of the reference
// implementation (reference.go) exactly — same iteration orders, same
// float accumulation orders, same tie-breaks — because the differential
// suite requires byte-identical circuits. Comments below flag the spots
// where the replication is order-sensitive.
//
// Epoch generations increase monotonically for the life of the engine and
// are never reset, even when the engine is rebound to a new architecture:
// a mark is "set" only when it equals the current generation, and every
// stale slot (zero-filled fresh allocation or a value from an earlier
// cycle/compile) holds a strictly smaller number.
type engine struct {
	// --- architecture-derived, rebuilt only when the arch changes ---
	a      *arch.Arch
	n      int     // physical qubit count
	dist   []int16 // n×n flat all-pairs coupling distances (int16: diameter < 32k always; halves the cache footprint of the hottest random-access array)
	nbrOff []int32 // CSR offsets per physical qubit (n+1)
	nbrDat []int32 // neighbour physical qubit, a.G.Neighbors order
	nbrCid []int32 // coupling id parallel to nbrDat
	coupU  []int32 // canonical endpoints per coupling id (U < V),
	coupV  []int32 // in a.G.Edges() order
	cidAt  []int32 // n×n flat (p,q) -> coupling id, -1 if uncoupled
	nCoup  int
	diam   int
	escort int // escort window: diam/8 floored at 2
	stallL int // stall limit: diam + 8

	// crosstalk partner couplings per coupling id, built lazily on the
	// first CrosstalkAware compile against this arch
	xtBuilt bool
	xtOff   []int32
	xtDat   []int32

	// --- per-compile problem encoding ---
	nl   int     // logical qubit count
	m    int     // gate (problem edge) count
	gU   []int32 // gate endpoints (gU < gV), canonical Edges() order
	gV   []int32
	gOff []int32 // gate-id run start per U endpoint (nl+1), for findGid
	pOff []int32 // problem CSR offsets per logical (nl+1)
	pDat []int32 // neighbour logical, problem.Neighbors order
	pGid []int32 // gate id parallel to pDat

	// --- per-compile noise precomputation ---
	noisy   bool
	veto    float64
	edgeErr []float64 // per coupling id

	// --- mutable compile state ---
	l2p     []int32
	p2l     []int32
	initMap []int32
	gDist   []int16 // per gate id, maintained incrementally by applySwap
	// Live remaining-gate set as compacted per-logical partner lists in a
	// CSR arena sharing pOff (swap-with-last removal, O(1) via gPosU/gPosV
	// back-pointers). Every hot scan — refreshGateDists, swapGain, the
	// benefit partner build — walks only live entries, so the work shrinks
	// with the remaining program instead of probing a bitset per edge.
	rDat  []int32 // partner logical qubit
	rGid  []int32 // gate id parallel to rDat
	rCnt  []int32 // live entries per logical
	gPosU []int32 // per gate: its position in gU's list
	gPosV []int32 // per gate: its position in gV's list
	// remOrder is the reference's `remaining` slice, including its in-place
	// permutation by the escort-phase distance counting sort.
	remOrder []int32
	gates    []circuit.Gate // output arena
	cycles   int

	// --- per-cycle scratch (epoch-marked or list-reset) ---
	exec     []int32 // executable gate ids, remOrder order
	execCid  []int32 // coupling id per exec entry
	qCnt     []int32 // per phys: exec entries touching it (reset via qTouch)
	qStart   []int32 // per phys: CSR start into qDat
	qFill    []int32
	qDat     []int32
	qTouch   []int32 // phys qubits with qCnt != 0
	cDeg     []int32 // conflict-graph degree per exec node
	cOff     []int32
	cCur     []int32
	cAdj     []int32
	degCnt   []int32 // counting-sort workspace over degrees
	order    []int32 // colouring order (degree desc, stable)
	colors   []int32
	colorMk  []int64 // epoch mark per colour
	colorGen int64
	classCnt []int32
	sched    []int32 // scheduled gate ids
	schedMk  []int64 // per gate id
	schedGen int64
	// busyB is the per-phys busy flag for the current cycle, reset via
	// busyList (a one-byte load beats an epoch compare in the accumulation
	// loop, the engine's hottest path).
	busyB    []uint8
	busyList []int32
	coupMk   []int64 // per coupling id: exec membership this cycle
	coupGen  int64
	coupGate []int32 // coupling id -> exec node index
	// benefit accumulates each coupling's signed SWAP benefit as an int32:
	// every contribution is an integer, so float64 accumulation in any
	// order (the reference's map-ordered sums included) yields the exact
	// same value as one final int-to-float conversion — which frees the
	// loop from the reference's first-touch dirty-list bookkeeping.
	benefit  []int32
	wedgeCid []int32 // SWAP candidates, sorted (W desc, U, V)
	wedgeW   []float64
	chosen   []bool
	usedVal  []int32 // per phys: chosen wedge index, -1 = tombstone
	usedMk   []int64
	usedGen  int64
	touched  []bool  // per phys
	bktCnt   []int32 // distance counting sort (diam+2 buckets)
	sortTmp  []int32
	scPos    []int32 // benefit-loop scratch: one qubit's eligible partner
	scD      []int16 // positions and gate distances
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

// acquireEngine returns a pooled engine bound to a; arch-derived structures
// are rebuilt only when the pooled engine last served a different arch, so
// a server compiling against one device pays the binding cost once.
func acquireEngine(a *arch.Arch) *engine {
	e := enginePool.Get().(*engine)
	if e.a != a {
		e.bindArch(a)
	}
	return e
}

func releaseEngine(e *engine) { enginePool.Put(e) }

// growI32 returns s with length n, reusing capacity. Contents are
// unspecified — callers own initialisation.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growI16(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func (e *engine) bindArch(a *arch.Arch) {
	e.a = a
	n := a.N()
	e.n = n
	dist := a.Distances()
	e.dist = growI16(e.dist, n*n)
	for p := 0; p < n; p++ {
		row := dist[p]
		for q := 0; q < n; q++ {
			e.dist[p*n+q] = int16(row[q])
		}
	}
	couplings := a.G.Edges()
	nc := len(couplings)
	e.nCoup = nc
	e.coupU = growI32(e.coupU, nc)
	e.coupV = growI32(e.coupV, nc)
	e.cidAt = growI32(e.cidAt, n*n)
	for i := range e.cidAt {
		e.cidAt[i] = -1
	}
	for i, c := range couplings {
		e.coupU[i], e.coupV[i] = int32(c.U), int32(c.V)
		e.cidAt[c.U*n+c.V] = int32(i)
		e.cidAt[c.V*n+c.U] = int32(i)
	}
	e.nbrOff = growI32(e.nbrOff, n+1)
	total := 0
	for p := 0; p < n; p++ {
		e.nbrOff[p] = int32(total)
		total += len(a.G.Neighbors(p))
	}
	e.nbrOff[n] = int32(total)
	e.nbrDat = growI32(e.nbrDat, total)
	e.nbrCid = growI32(e.nbrCid, total)
	for p := 0; p < n; p++ {
		off := int(e.nbrOff[p])
		for k, w := range a.G.Neighbors(p) {
			e.nbrDat[off+k] = int32(w)
			e.nbrCid[off+k] = e.cidAt[p*n+w]
		}
	}
	e.diam = a.Diameter()
	e.escort = e.diam / 8
	if e.escort < 2 {
		e.escort = 2
	}
	e.stallL = e.diam + 8
	e.xtBuilt = false

	// Per-phys / per-coupling persistent scratch. Mark arrays need no
	// zeroing (generations never reset — see the type comment), but value
	// arrays consulted without a mark guard must start clean.
	e.p2l = growI32(e.p2l, n)
	e.busyB = growU8(e.busyB, n)
	e.usedMk = growI64(e.usedMk, n)
	e.usedVal = growI32(e.usedVal, n)
	e.qCnt = growI32(e.qCnt, n)
	e.qStart = growI32(e.qStart, n)
	e.qFill = growI32(e.qFill, n)
	if cap(e.touched) < n {
		e.touched = make([]bool, n)
	} else {
		e.touched = e.touched[:n]
	}
	e.coupMk = growI64(e.coupMk, nc)
	e.coupGate = growI32(e.coupGate, nc)
	e.benefit = growI32(e.benefit, nc)
	e.edgeErr = growF64(e.edgeErr, nc)
	e.bktCnt = growI32(e.bktCnt, e.diam+2)
	for i := 0; i < n; i++ {
		e.qCnt[i] = 0
		e.busyB[i] = 0
	}
	e.busyList = e.busyList[:0]
	e.qTouch = e.qTouch[:0]
}

// ensureXtalk builds the crosstalk partner CSR over coupling ids,
// preserving noise.CrosstalkPairs order per coupling (the reference
// appends partners to xtalk[e] in exactly that order).
func (e *engine) ensureXtalk() {
	if e.xtBuilt {
		return
	}
	pairs := noise.CrosstalkPairs(e.a)
	e.xtOff = growI32(e.xtOff, e.nCoup+1)
	for i := range e.xtOff {
		e.xtOff[i] = 0
	}
	for _, p := range pairs {
		e.xtOff[e.cidAt[p[0].U*e.n+p[0].V]+1]++
		e.xtOff[e.cidAt[p[1].U*e.n+p[1].V]+1]++
	}
	for i := 0; i < e.nCoup; i++ {
		e.xtOff[i+1] += e.xtOff[i]
	}
	e.xtDat = growI32(e.xtDat, int(e.xtOff[e.nCoup]))
	e.sortTmp = growI32(e.sortTmp, e.nCoup)
	cur := e.sortTmp
	copy(cur, e.xtOff[:e.nCoup])
	for _, p := range pairs {
		ca := e.cidAt[p[0].U*e.n+p[0].V]
		cb := e.cidAt[p[1].U*e.n+p[1].V]
		e.xtDat[cur[ca]] = cb
		cur[ca]++
		e.xtDat[cur[cb]] = ca
		cur[cb]++
	}
	e.xtBuilt = true
}

// remRemove deletes an executed gate from both endpoints' live partner
// lists (swap-with-last; back-pointers keep removal O(1)).
func (e *engine) remRemove(gid int32) {
	e.sideRemove(e.gU[gid], e.gPosU[gid])
	e.sideRemove(e.gV[gid], e.gPosV[gid])
}

func (e *engine) sideRemove(l, pos int32) {
	off := e.pOff[l]
	last := e.rCnt[l] - 1
	mv := e.rGid[off+last]
	e.rDat[off+pos] = e.rDat[off+last]
	e.rGid[off+pos] = mv
	if l == e.gU[mv] {
		e.gPosU[mv] = pos
	} else {
		e.gPosV[mv] = pos
	}
	e.rCnt[l] = last
}

// findGid returns the gate id of logical pair {u, v}, or -1 if the pair is
// not a problem edge. Gate ids are sorted by (U, V), so the lookup is a
// binary search within U's contiguous run.
func (e *engine) findGid(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	lo, hi := e.gOff[u], e.gOff[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if e.gV[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < e.gOff[u+1] && e.gV[lo] == v {
		return lo
	}
	return -1
}

// appendGate validates coupling like circuit.Builder and appends to the
// arena. Gate values are bit-identical to the builder's (Swap gates carry
// the zero Tag and Tagged=false).
func (e *engine) appendGate(kind circuit.Kind, p, q int32, angle float64, gu, gv int32, tagged bool) {
	if e.cidAt[int(p)*e.n+int(q)] < 0 {
		panic(fmt.Sprintf("circuit: physical qubits %d,%d not coupled on %s", p, q, e.a.Name))
	}
	g := circuit.Gate{Kind: kind, Q0: int(p), Q1: int(q), Angle: angle}
	if tagged {
		g.Tag = graph.Edge{U: int(gu), V: int(gv)}
		g.Tagged = true
	}
	e.gates = append(e.gates, g)
}

// applySwap exchanges the occupants of physical p, q and incrementally
// refreshes the cached distance of every gate incident to a moved logical
// — the O(deg) update that replaces the reference's on-demand recomputes.
func (e *engine) applySwap(p, q int32) {
	lp, lq := e.p2l[p], e.p2l[q]
	e.p2l[p], e.p2l[q] = lq, lp
	if lp >= 0 {
		e.l2p[lp] = q
	}
	if lq >= 0 {
		e.l2p[lq] = p
	}
	if lp >= 0 {
		e.refreshGateDists(lp)
	}
	if lq >= 0 {
		e.refreshGateDists(lq)
	}
}

// refreshGateDists recomputes the distance of every REMAINING gate
// incident to logical l after l's qubit moved. Completed gates' distances
// are never read again (remOrder, the stall walk, and swapGain all iterate
// remaining gates only), so the live list suffices.
func (e *engine) refreshGateDists(l int32) {
	row := int(e.l2p[l]) * e.n
	off := e.pOff[l]
	for k := off; k < off+e.rCnt[l]; k++ {
		e.gDist[e.rGid[k]] = e.dist[row+int(e.l2p[e.rDat[k]])]
	}
}

// forcedSwap mirrors reference.go forcedSwap: the lowest-error
// distance-reducing swap at either endpoint, neighbours of pu before pv,
// strict-< error preference, canonical edge orientation.
func (e *engine) forcedSwap(gid int32) (int32, int32) {
	pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
	d := e.gDist[gid]
	var bu, bv int32
	bestErr := math.Inf(1)
	found := false
	for k := e.nbrOff[pu]; k < e.nbrOff[pu+1]; k++ {
		w := e.nbrDat[k]
		if e.dist[int(w)*e.n+int(pv)] >= d {
			continue
		}
		err := 0.0
		if e.noisy {
			err = e.edgeErr[e.nbrCid[k]]
		}
		if !found || err < bestErr {
			if pu < w {
				bu, bv = pu, w
			} else {
				bu, bv = w, pu
			}
			bestErr, found = err, true
		}
	}
	for k := e.nbrOff[pv]; k < e.nbrOff[pv+1]; k++ {
		w := e.nbrDat[k]
		if e.dist[int(w)*e.n+int(pu)] >= d {
			continue
		}
		err := 0.0
		if e.noisy {
			err = e.edgeErr[e.nbrCid[k]]
		}
		if !found || err < bestErr {
			if pv < w {
				bu, bv = pv, w
			} else {
				bu, bv = w, pv
			}
			bestErr, found = err, true
		}
	}
	if found {
		return bu, bv
	}
	// Unreachable on connected architectures; move anywhere as last resort.
	w := e.nbrDat[e.nbrOff[pu]]
	if pu < w {
		return pu, w
	}
	return w, pu
}

// swapGain mirrors reference.go swapGain on the packed encoding: the total
// distance reduction over remaining gates incident to the occupants of
// (pu, pv) if they were exchanged after executing gate gid.
func (e *engine) swapGain(gid, pu, pv int32) int {
	gain := 0
	// gU side moves pu -> pv, gV side moves pv -> pu (reference acc order).
	for side := 0; side < 2; side++ {
		var l int32
		var fromRow, toRow int
		if side == 0 {
			l = e.gU[gid]
			fromRow, toRow = int(pu)*e.n, int(pv)*e.n
		} else {
			l = e.gV[gid]
			fromRow, toRow = int(pv)*e.n, int(pu)*e.n
		}
		off := e.pOff[l]
		for k := off; k < off+e.rCnt[l]; k++ {
			pw := e.l2p[e.rDat[k]]
			if pw == pu || pw == pv {
				continue
			}
			gain += int(e.dist[fromRow+int(pw)]) - int(e.dist[toRow+int(pw)])
		}
	}
	return gain
}

// xtalkConflict mirrors reference.go xtalkConflict: does coupling cid
// crosstalk with any gate scheduled this cycle?
func (e *engine) xtalkConflict(cid int32) bool {
	for t := e.xtOff[cid]; t < e.xtOff[cid+1]; t++ {
		pcid := e.xtDat[t]
		lu, lv := e.p2l[e.coupU[pcid]], e.p2l[e.coupV[pcid]]
		if lu < 0 || lv < 0 {
			continue
		}
		if g := e.findGid(lu, lv); g >= 0 && e.schedMk[g] == e.schedGen {
			return true
		}
	}
	return false
}

// scheduleGates is the packed §6.2 conflict-colouring step over e.exec.
// It reproduces reference.go scheduleGates exactly: conflict adjacency
// lists are built in the same AddEdge timestamp order, the colouring
// replays graph.GreedyColoring (stable degree-descending order, colour
// guard c <= deg(v)), and the largest class is the lowest colour on ties
// with members in ascending exec order. The result lands in e.sched.
func (e *engine) scheduleGates(useXt bool) {
	e.sched = e.sched[:0]
	k := len(e.exec)
	if k == 0 {
		return
	}
	// Group exec nodes by physical qubit (ascending exec order per group —
	// the reference's byQubit append order).
	e.qTouch = e.qTouch[:0]
	for _, gid := range e.exec {
		pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
		if e.qCnt[pu] == 0 {
			e.qTouch = append(e.qTouch, pu)
		}
		e.qCnt[pu]++
		if e.qCnt[pv] == 0 {
			e.qTouch = append(e.qTouch, pv)
		}
		e.qCnt[pv]++
	}
	cur := int32(0)
	for _, q := range e.qTouch {
		e.qStart[q] = cur
		e.qFill[q] = cur
		cur += e.qCnt[q]
	}
	e.qDat = growI32(e.qDat, int(cur))
	for i, gid := range e.exec {
		pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
		e.qDat[e.qFill[pu]] = int32(i)
		e.qFill[pu]++
		e.qDat[e.qFill[pv]] = int32(i)
		e.qFill[pv]++
	}
	// Register exec couplings for the crosstalk pass.
	if useXt {
		e.coupGen++
		for i := 0; i < k; i++ {
			e.coupMk[e.execCid[i]] = e.coupGen
			e.coupGate[e.execCid[i]] = int32(i)
		}
	}
	// Conflict-pair enumeration, twice: degree count, then CSR fill. Both
	// passes walk pairs in the reference's AddEdge timestamp order, so each
	// adjacency list matches the reference's append order. Shared-qubit
	// pairs: a qubit's group is ascending, so "gates added before i" are
	// exactly the entries j < i (i's own entry terminates the scan).
	// Crosstalk pairs dedupe to their first AddEdge, which happens at outer
	// index min(i,j) — hence the j > i rule.
	e.cDeg = growI32(e.cDeg, k)
	for i := 0; i < k; i++ {
		e.cDeg[i] = 0
	}
	for i := 0; i < k; i++ {
		gid := e.exec[i]
		pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
		for s := 0; s < 2; s++ {
			q := pu
			if s == 1 {
				q = pv
			}
			for t := e.qStart[q]; ; t++ {
				j := e.qDat[t]
				if j >= int32(i) {
					break
				}
				e.cDeg[i]++
				e.cDeg[j]++
			}
		}
	}
	if useXt {
		for i := 0; i < k; i++ {
			ce := e.execCid[i]
			for t := e.xtOff[ce]; t < e.xtOff[ce+1]; t++ {
				pcid := e.xtDat[t]
				if e.coupMk[pcid] != e.coupGen {
					continue
				}
				if j := e.coupGate[pcid]; j > int32(i) {
					e.cDeg[i]++
					e.cDeg[j]++
				}
			}
		}
	}
	e.cOff = growI32(e.cOff, k+1)
	e.cCur = growI32(e.cCur, k)
	total := int32(0)
	for i := 0; i < k; i++ {
		e.cOff[i] = total
		e.cCur[i] = total
		total += e.cDeg[i]
	}
	e.cOff[k] = total
	e.cAdj = growI32(e.cAdj, int(total))
	for i := 0; i < k; i++ {
		gid := e.exec[i]
		pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
		for s := 0; s < 2; s++ {
			q := pu
			if s == 1 {
				q = pv
			}
			for t := e.qStart[q]; ; t++ {
				j := e.qDat[t]
				if j >= int32(i) {
					break
				}
				e.cAdj[e.cCur[i]] = j
				e.cCur[i]++
				e.cAdj[e.cCur[j]] = int32(i)
				e.cCur[j]++
			}
		}
	}
	if useXt {
		for i := 0; i < k; i++ {
			ce := e.execCid[i]
			for t := e.xtOff[ce]; t < e.xtOff[ce+1]; t++ {
				pcid := e.xtDat[t]
				if e.coupMk[pcid] != e.coupGen {
					continue
				}
				if j := e.coupGate[pcid]; j > int32(i) {
					e.cAdj[e.cCur[i]] = j
					e.cCur[i]++
					e.cAdj[e.cCur[j]] = int32(i)
					e.cCur[j]++
				}
			}
		}
	}
	// Release the qubit grouping (qStart/qFill stay stale, only read for
	// touched qubits).
	for _, q := range e.qTouch {
		e.qCnt[q] = 0
	}
	// Stable degree-descending order via counting sort (== SliceStable).
	maxDeg := int32(0)
	for i := 0; i < k; i++ {
		if e.cDeg[i] > maxDeg {
			maxDeg = e.cDeg[i]
		}
	}
	e.degCnt = growI32(e.degCnt, int(maxDeg)+1)
	for d := int32(0); d <= maxDeg; d++ {
		e.degCnt[d] = 0
	}
	for i := 0; i < k; i++ {
		e.degCnt[e.cDeg[i]]++
	}
	pos := int32(0)
	for d := maxDeg; d >= 0; d-- {
		c := e.degCnt[d]
		e.degCnt[d] = pos
		pos += c
	}
	e.order = growI32(e.order, k)
	for i := 0; i < k; i++ {
		e.order[e.degCnt[e.cDeg[i]]] = int32(i)
		e.degCnt[e.cDeg[i]]++
	}
	// Greedy colouring: lowest colour not used by a neighbour, ignoring
	// neighbour colours above deg(v) (graph.GreedyColoring's used-array
	// length guard). A free colour always exists at c <= deg(v), so the
	// scan stays inside colorMk's maxDeg+2 length.
	e.colors = growI32(e.colors, k)
	for i := 0; i < k; i++ {
		e.colors[i] = -1
	}
	e.colorMk = growI64(e.colorMk, int(maxDeg)+2)
	for _, v := range e.order {
		dv := e.cDeg[v]
		e.colorGen++
		for t := e.cOff[v]; t < e.cOff[v+1]; t++ {
			if c := e.colors[e.cAdj[t]]; c >= 0 && c <= dv {
				e.colorMk[c] = e.colorGen
			}
		}
		c := int32(0)
		for e.colorMk[c] == e.colorGen {
			c++
		}
		e.colors[v] = c
	}
	maxColor := int32(0)
	for i := 0; i < k; i++ {
		if e.colors[i] > maxColor {
			maxColor = e.colors[i]
		}
	}
	e.classCnt = growI32(e.classCnt, int(maxColor)+1)
	for c := int32(0); c <= maxColor; c++ {
		e.classCnt[c] = 0
	}
	for i := 0; i < k; i++ {
		e.classCnt[e.colors[i]]++
	}
	best := int32(0)
	for c := int32(1); c <= maxColor; c++ {
		if e.classCnt[c] > e.classCnt[best] {
			best = c
		}
	}
	for i := 0; i < k; i++ {
		if e.colors[i] == best {
			e.sched = append(e.sched, e.exec[i])
		}
	}
}

// wedgeBefore is the reference's wedge comparator: weight descending, then
// canonical endpoints ascending. Distinct couplings make it a strict total
// order, so any correct sort reproduces sort.Slice's result.
func (e *engine) wedgeBefore(i, j int) bool {
	if e.wedgeW[i] != e.wedgeW[j] {
		return e.wedgeW[i] > e.wedgeW[j]
	}
	ci, cj := e.wedgeCid[i], e.wedgeCid[j]
	if e.coupU[ci] != e.coupU[cj] {
		return e.coupU[ci] < e.coupU[cj]
	}
	return e.coupV[ci] < e.coupV[cj]
}

func (e *engine) wedgeSwap(i, j int) {
	e.wedgeCid[i], e.wedgeCid[j] = e.wedgeCid[j], e.wedgeCid[i]
	e.wedgeW[i], e.wedgeW[j] = e.wedgeW[j], e.wedgeW[i]
}

// sortWedges is an in-place heapsort over the parallel wedge arrays (no
// allocation, unlike sort.Slice). The heap keeps the latest-sorting wedge
// at the root, so popping fills the tail and leaves ascending sort order.
func (e *engine) sortWedges() {
	n := len(e.wedgeCid)
	for i := n/2 - 1; i >= 0; i-- {
		e.siftWedge(i, n)
	}
	for end := n - 1; end > 0; end-- {
		e.wedgeSwap(0, end)
		e.siftWedge(0, end)
	}
}

func (e *engine) siftWedge(root, hi int) {
	for {
		child := 2*root + 1
		if child >= hi {
			return
		}
		if child+1 < hi && e.wedgeBefore(child, child+1) {
			child++
		}
		if !e.wedgeBefore(root, child) {
			return
		}
		e.wedgeSwap(root, child)
		root = child
	}
}

// matchWedges replays graph.MaxWeightMatching over the sorted wedges into
// e.chosen. Because the input is already in comparator order and the order
// is strict, the reference's internal stable sort is the identity — greedy
// selection and the improvement sweeps both run in wedge index order.
func (e *engine) matchWedges() {
	k := len(e.wedgeCid)
	if cap(e.chosen) < k {
		e.chosen = make([]bool, k)
	} else {
		e.chosen = e.chosen[:k]
	}
	for i := 0; i < k; i++ {
		e.chosen[i] = false
	}
	e.usedGen++
	for i := 0; i < k; i++ {
		cid := e.wedgeCid[i]
		u, v := e.coupU[cid], e.coupV[cid]
		if e.matchInUse(u) || e.matchInUse(v) {
			continue
		}
		e.chosen[i] = true
		e.matchSet(u, int32(i))
		e.matchSet(v, int32(i))
	}
	for sweep := 0; sweep < 4 && e.matchImprove(); sweep++ {
	}
}

func (e *engine) matchInUse(q int32) bool {
	return e.usedMk[q] == e.usedGen && e.usedVal[q] >= 0
}

func (e *engine) matchSet(q, i int32) {
	e.usedMk[q] = e.usedGen
	e.usedVal[q] = i
}

func (e *engine) matchDel(q int32) { e.usedVal[q] = -1 }

// matchImprove is one MaxWeightMatching improvement sweep: for each
// unchosen wedge blocked by exactly one chosen wedge, try dropping the
// blocker and adding this wedge plus the best now-free wedge.
func (e *engine) matchImprove() bool {
	k := len(e.wedgeCid)
	for i := 0; i < k; i++ {
		if e.chosen[i] {
			continue
		}
		cid := e.wedgeCid[i]
		eu, ev := e.coupU[cid], e.coupV[cid]
		okU, okV := e.matchInUse(eu), e.matchInUse(ev)
		var blocker int32
		switch {
		case okU && okV && e.usedVal[eu] == e.usedVal[ev]:
			blocker = e.usedVal[eu]
		case okU && !okV:
			blocker = e.usedVal[eu]
		case okV && !okU:
			blocker = e.usedVal[ev]
		default:
			continue
		}
		bcid := e.wedgeCid[blocker]
		bu, bv := e.coupU[bcid], e.coupV[bcid]
		e.matchDel(bu)
		e.matchDel(bv)
		e.matchSet(eu, int32(i))
		e.matchSet(ev, int32(i))
		gain := e.wedgeW[i] - e.wedgeW[blocker]
		extra := -1
		for j := 0; j < k; j++ {
			if e.chosen[j] || j == i {
				continue
			}
			fcid := e.wedgeCid[j]
			if e.matchInUse(e.coupU[fcid]) || e.matchInUse(e.coupV[fcid]) {
				continue
			}
			if extra < 0 || e.wedgeW[j] > e.wedgeW[extra] {
				extra = j
			}
		}
		if extra >= 0 {
			gain += e.wedgeW[extra]
		}
		if gain > 1e-12 {
			e.chosen[blocker] = false
			e.chosen[i] = true
			if extra >= 0 {
				e.chosen[extra] = true
				fcid := e.wedgeCid[extra]
				e.matchSet(e.coupU[fcid], int32(extra))
				e.matchSet(e.coupV[fcid], int32(extra))
			}
			return true
		}
		e.matchDel(eu)
		e.matchDel(ev)
		e.matchSet(bu, blocker)
		e.matchSet(bv, blocker)
	}
	return false
}

// doCheckpoint copies the live mapping into a fresh []int (the Checkpoint
// API hands ownership to the callee) and invokes the hook.
func (e *engine) doCheckpoint(fn func(prefixLen int, l2p []int, cycle int), cycle int) {
	l2p := make([]int, e.nl)
	for l := range l2p {
		l2p[l] = int(e.l2p[l])
	}
	fn(len(e.gates), l2p, cycle)
}

// run executes the scheduling loop, leaving the compiled gates, mappings,
// and cycle count in the engine's arenas; result() materialises them.
// Structure and ordering track referenceCompile statement for statement.
func (e *engine) run(problem *graph.Graph, initial []int, opts Options) error {
	if opts.Angle == 0 {
		opts.Angle = 1
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 300*e.n + 2000
	}
	n := e.n
	nl := problem.N()
	e.nl = nl
	e.gates = e.gates[:0]
	e.cycles = 0

	// Builder-equivalent mapping init, incl. the builder's programmer-error
	// panics with identical messages.
	if nl > n {
		panic(fmt.Sprintf("circuit: %d logical qubits exceed %d physical", nl, n))
	}
	e.l2p = growI32(e.l2p, nl)
	if initial == nil {
		for l := 0; l < nl; l++ {
			e.l2p[l] = int32(l)
		}
	} else {
		if len(initial) != nl {
			panic("circuit: initial mapping length mismatch")
		}
		for l, p := range initial {
			e.l2p[l] = int32(p)
		}
	}
	for p := 0; p < n; p++ {
		e.p2l[p] = -1
	}
	for l := 0; l < nl; l++ {
		p := e.l2p[l]
		if p < 0 || int(p) >= n || e.p2l[p] != -1 {
			panic(fmt.Sprintf("circuit: invalid initial mapping: logical %d -> physical %d", l, p))
		}
		e.p2l[p] = int32(l)
	}
	e.initMap = growI32(e.initMap, nl)
	copy(e.initMap, e.l2p)

	// Problem encoding: gate ids in canonical Edges() order (ascending U,
	// then V — collection per ascending u plus an insertion sort of each
	// run by V), CSR adjacency in Neighbors order.
	m := problem.M()
	e.m = m
	e.gU = growI32(e.gU, m)
	e.gV = growI32(e.gV, m)
	e.gOff = growI32(e.gOff, nl+1)
	e.pOff = growI32(e.pOff, nl+1)
	degTotal := 0
	for l := 0; l < nl; l++ {
		e.pOff[l] = int32(degTotal)
		degTotal += problem.Degree(l)
	}
	e.pOff[nl] = int32(degTotal)
	e.pDat = growI32(e.pDat, degTotal)
	e.pGid = growI32(e.pGid, degTotal)
	e.scPos = growI32(e.scPos, nl)
	e.scD = growI16(e.scD, nl)
	gi := int32(0)
	for u := 0; u < nl; u++ {
		e.gOff[u] = gi
		off := int(e.pOff[u])
		start := gi
		for k, w := range problem.Neighbors(u) {
			e.pDat[off+k] = int32(w)
			if w > u {
				e.gU[gi], e.gV[gi] = int32(u), int32(w)
				gi++
			}
		}
		for i := start + 1; i < gi; i++ {
			v := e.gV[i]
			j := i - 1
			for j >= start && e.gV[j] > v {
				e.gV[j+1] = e.gV[j]
				j--
			}
			e.gV[j+1] = v
		}
	}
	e.gOff[nl] = gi
	for l := 0; l < nl; l++ {
		for k := e.pOff[l]; k < e.pOff[l+1]; k++ {
			e.pGid[k] = e.findGid(int32(l), e.pDat[k])
		}
	}

	// Initial gate distances + disconnected-arch check, in Edges() order
	// like the reference's scan over `remaining`.
	e.gDist = growI16(e.gDist, m)
	e.schedMk = growI64(e.schedMk, m)
	for g := 0; g < m; g++ {
		d := e.dist[int(e.l2p[e.gU[g]])*n+int(e.l2p[e.gV[g]])]
		if d < 0 {
			return fmt.Errorf("%w: interaction %v spans disconnected parts of %s",
				ErrUnreachable, graph.Edge{U: int(e.gU[g]), V: int(e.gV[g])}, e.a.Name)
		}
		e.gDist[g] = d
	}
	e.rDat = growI32(e.rDat, degTotal)
	e.rGid = growI32(e.rGid, degTotal)
	e.rCnt = growI32(e.rCnt, nl)
	e.gPosU = growI32(e.gPosU, m)
	e.gPosV = growI32(e.gPosV, m)
	copy(e.rDat, e.pDat[:degTotal])
	copy(e.rGid, e.pGid[:degTotal])
	for l := 0; l < nl; l++ {
		off := e.pOff[l]
		e.rCnt[l] = e.pOff[l+1] - off
		for k := off; k < e.pOff[l+1]; k++ {
			gid := e.pGid[k]
			if int32(l) == e.gU[gid] {
				e.gPosU[gid] = k - off
			} else {
				e.gPosV[gid] = k - off
			}
		}
	}
	e.remOrder = growI32(e.remOrder, m)
	for g := 0; g < m; g++ {
		e.remOrder[g] = int32(g)
	}

	useXt := opts.CrosstalkAware
	if useXt {
		e.ensureXtalk()
	}
	e.noisy = opts.Noise != nil
	if e.noisy {
		// The reference recomputes the veto threshold and reads EdgeError
		// per cycle; both are pure in the model, so hoisting them out of
		// the loop changes nothing observable.
		e.veto = vetoThreshold(opts.Noise)
		for cid := 0; cid < e.nCoup; cid++ {
			e.edgeErr[cid] = opts.Noise.EdgeError(int(e.coupU[cid]), int(e.coupV[cid]))
		}
	}

	met := opts.Obs.Metrics()
	mCycles := met.Counter("greedy.cycles")
	mStalls := met.Counter("greedy.stall_walks")
	mSched := met.Histogram("greedy.scheduled_per_cycle")
	mSwaps := met.Histogram("greedy.swaps_per_cycle")

	cycle := 0
	stall := 0
	for len(e.remOrder) > 0 {
		if cycle >= maxCycles {
			return fmt.Errorf("%w after %d cycles (%d gates left)", ErrNoProgress, cycle, len(e.remOrder))
		}
		cycle++
		mCycles.Add(1)
		if opts.Interrupt != nil {
			if ierr := opts.Interrupt(); ierr != nil {
				return fmt.Errorf("%w at cycle %d: %w", ErrInterrupted, cycle, ierr)
			}
		}

		if stall > e.stallL {
			// Stall recovery: deterministically walk the closest gate home
			// one SWAP per cycle (first strict minimum in remaining order,
			// like reference closestGate).
			best, bd := e.remOrder[0], int16(math.MaxInt16)
			for _, gid := range e.remOrder {
				if e.gDist[gid] < bd {
					best, bd = gid, e.gDist[gid]
				}
			}
			mStalls.Add(1)
			if opts.Obs != nil { // skip building the attr slice untraced
				opts.Obs.Event(opts.ObsSpan, "greedy.stall_walk",
					obs.Int("cycle", cycle),
					obs.Int("remaining", len(e.remOrder)),
					obs.Int("distance", int(e.gDist[best])))
			}
			for e.gDist[best] != 1 { // distance 1 <=> endpoints coupled
				if cycle >= maxCycles {
					return fmt.Errorf("%w after %d cycles (stall walk)", ErrNoProgress, cycle)
				}
				if opts.Interrupt != nil {
					if ierr := opts.Interrupt(); ierr != nil {
						return fmt.Errorf("%w at cycle %d: %w", ErrInterrupted, cycle, ierr)
					}
				}
				su, sv := e.forcedSwap(best)
				e.appendGate(circuit.GateSwap, su, sv, 0, 0, 0, false)
				e.applySwap(su, sv)
				cycle++
			}
			e.appendGate(circuit.GateZZ, e.l2p[e.gU[best]], e.l2p[e.gV[best]], opts.Angle, e.gU[best], e.gV[best], true)
			e.remRemove(best)
			w := 0
			for _, gid := range e.remOrder {
				if gid != best {
					e.remOrder[w] = gid
					w++
				}
			}
			e.remOrder = e.remOrder[:w]
			stall = 0
			if opts.Checkpoint != nil {
				e.doCheckpoint(opts.Checkpoint, cycle)
			}
			continue
		}

		// --- Gate scheduling (conflict colouring). The incrementally
		// maintained gate distance doubles as the frontier test:
		// gDist == 1 <=> the endpoints are coupled. ---
		e.exec = e.exec[:0]
		e.execCid = e.execCid[:0]
		for _, gid := range e.remOrder {
			if e.gDist[gid] == 1 {
				e.exec = append(e.exec, gid)
				e.execCid = append(e.execCid, e.cidAt[int(e.l2p[e.gU[gid]])*n+int(e.l2p[e.gV[gid]])])
			}
		}
		e.scheduleGates(useXt)
		e.schedGen++
		for _, q := range e.busyList { // clear the previous cycle's flags
			e.busyB[q] = 0
		}
		e.busyList = e.busyList[:0]
		for _, gid := range e.sched {
			pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
			e.busyB[pu] = 1
			e.busyB[pv] = 1
			e.busyList = append(e.busyList, pu, pv)
			e.schedMk[gid] = e.schedGen
		}
		// Complete the colour class to a maximal conflict-free set: the
		// largest class can leave schedulable gates idle.
		for t, gid := range e.exec {
			if e.schedMk[gid] == e.schedGen {
				continue
			}
			pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
			if e.busyB[pu] != 0 || e.busyB[pv] != 0 {
				continue
			}
			if useXt && e.xtalkConflict(e.execCid[t]) {
				continue
			}
			e.sched = append(e.sched, gid)
			e.schedMk[gid] = e.schedGen
			e.busyB[pu] = 1
			e.busyB[pv] = 1
			e.busyList = append(e.busyList, pu, pv)
		}
		w := 0
		for _, gid := range e.remOrder {
			if e.schedMk[gid] == e.schedGen {
				e.remRemove(gid)
			} else {
				e.remOrder[w] = gid
				w++
			}
		}
		e.remOrder = e.remOrder[:w]
		mSched.Observe(int64(len(e.sched)))
		// Emit scheduled gates, unifying a gate with its SWAP when moving
		// the pair brings other remaining gates closer. The mapping is
		// live, so earlier ZZSwaps in this cycle shift later gates'
		// swapGain — same as the reference's builder-mediated loop.
		mapped := false
		for _, gid := range e.sched {
			pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
			if len(e.remOrder) > 0 && e.swapGain(gid, pu, pv) > 0 {
				e.appendGate(circuit.GateZZSwap, pu, pv, opts.Angle, e.gU[gid], e.gV[gid], true)
				e.applySwap(pu, pv)
				mapped = true
			} else {
				e.appendGate(circuit.GateZZ, pu, pv, opts.Angle, e.gU[gid], e.gV[gid], true)
			}
		}
		if len(e.remOrder) == 0 {
			break
		}

		// --- SWAP insertion (signed-benefit accumulation + matching),
		// reference proposeSwaps decision for decision. Every contribution
		// is an integer distance delta, so int32 accumulation in ANY order
		// equals the reference's float64 running sum exactly (integer-valued
		// float64 addition is associative), and the strict total order in
		// sortWedges makes the reference's first-touch dirty-list order
		// irrelevant. That frees the loop nest entirely: instead of walking
		// gates (whose endpoint/distance lookups chain 4+ dependent random
		// loads each), walk MAPPED QUBITS — build the qubit's eligible
		// partner list once, then per free neighbouring coupling accumulate
		// sum(d_g - dist[partner_g][w]) into a register against two
		// L1-resident distance rows (dist[x][w] == dist[w][x]).
		//
		// Per-side eligibility, restated from the reference's moveU/moveV
		// rules (busy endpoints hoisted; at d == 2 only the U endpoint may
		// move — both endpoints stepping toward each other via different
		// midpoints livelocks at distance 2 forever):
		//   U side (l < partner): eligible iff !busy[pu].
		//   V side (l > partner): eligible iff !busy[pv] and
		//                         (d != 2 or busy[pu]).
		benefit := e.benefit[:e.nCoup]
		for i := range benefit {
			benefit[i] = 0
		}
		l2p, busyB, dist := e.l2p, e.busyB, e.dist
		pOff, rDat, rCnt := e.pOff, e.rDat, e.rCnt
		nbrOff, nbrDat, nbrCid := e.nbrOff, e.nbrDat, e.nbrCid
		scPos, scD := e.scPos, e.scD
		for l := int32(0); int(l) < nl; l++ {
			p := l2p[l]
			if busyB[p] != 0 {
				continue
			}
			rowP := dist[int(p)*n : int(p)*n+n]
			np := 0
			off := pOff[l]
			for k := off; k < off+rCnt[l]; k++ {
				q := rDat[k]
				pq := l2p[q]
				d := rowP[pq] // == e.gDist of this live gate
				if d == 2 && l > q && busyB[pq] == 0 {
					continue // V side of a d==2 gate with a free U endpoint
				}
				scPos[np] = pq
				scD[np] = d
				np++
			}
			if np == 0 {
				continue
			}
			for k := nbrOff[p]; k < nbrOff[p+1]; k++ {
				w := nbrDat[k]
				if busyB[w] != 0 {
					continue
				}
				rowW := dist[int(w)*n : int(w)*n+n]
				acc := int32(0)
				for i := 0; i < np; i++ {
					pq := scPos[i]
					if pq == w {
						// The reference's nw == partner exclusion: moving
						// onto the partner's own qubit is no route.
						continue
					}
					acc += int32(scD[i]) - int32(rowW[pq])
				}
				benefit[nbrCid[k]] += acc
			}
		}
		e.wedgeCid = e.wedgeCid[:0]
		e.wedgeW = e.wedgeW[:0]
		for cid := int32(0); int(cid) < e.nCoup; cid++ {
			bnf := e.benefit[cid]
			if bnf <= 0 {
				// The noise discount q^3 is strictly positive, so wgt > 0
				// iff the raw integer benefit is.
				continue
			}
			wgt := float64(bnf)
			if e.noisy {
				er := e.edgeErr[cid]
				if er >= e.veto {
					// Outlier link: refuse to route through it; the stall
					// fallback still uses it if it is the only way forward.
					continue
				}
				// A SWAP is three CX on this link (§5.3).
				q := 1 - er
				wgt = float64(bnf) * q * q * q
			}
			e.wedgeCid = append(e.wedgeCid, cid)
			e.wedgeW = append(e.wedgeW, wgt)
		}
		e.sortWedges()
		e.matchWedges()
		swapCount := 0
		for i := range e.chosen {
			if e.chosen[i] {
				swapCount++
			}
		}
		for i := range e.touched {
			e.touched[i] = false
		}
		for _, q := range e.busyList {
			e.touched[q] = true
		}
		for i, ok := range e.chosen {
			if !ok {
				continue
			}
			cid := e.wedgeCid[i]
			su, sv := e.coupU[cid], e.coupV[cid]
			e.appendGate(circuit.GateSwap, su, sv, 0, 0, 0, false)
			e.applySwap(su, sv)
			e.touched[su], e.touched[sv] = true, true
			mapped = true
		}
		// Escort walks over gates ordered by live distance (stable
		// counting sort, in place over remOrder — the reference permutes
		// `remaining` the same way).
		nb := e.diam + 2
		for d := 0; d < nb; d++ {
			e.bktCnt[d] = 0
		}
		for _, gid := range e.remOrder {
			d := int(e.gDist[gid])
			if d >= nb {
				d = nb - 1
			}
			e.bktCnt[d]++
		}
		pos := int32(0)
		for d := 0; d < nb; d++ {
			c := e.bktCnt[d]
			e.bktCnt[d] = pos
			pos += c
		}
		e.sortTmp = growI32(e.sortTmp, len(e.remOrder))
		for _, gid := range e.remOrder {
			d := int(e.gDist[gid])
			if d >= nb {
				d = nb - 1
			}
			e.sortTmp[e.bktCnt[d]] = gid
			e.bktCnt[d]++
		}
		copy(e.remOrder, e.sortTmp[:len(e.remOrder)])
		dmin := int16(0)
		if len(e.remOrder) > 0 {
			dmin = e.gDist[e.remOrder[0]]
		}
		for _, gid := range e.remOrder {
			pu, pv := e.l2p[e.gU[gid]], e.l2p[e.gV[gid]]
			if e.touched[pu] || e.touched[pv] {
				continue
			}
			d := e.gDist[gid]
			if d <= 1 {
				// About to execute: protect from farther gates' escorts.
				e.touched[pu], e.touched[pv] = true, true
				continue
			}
			if d > dmin+int16(e.escort) {
				// Far gates wait; escorting everything burns ~3x the SWAPs
				// for no depth gain.
				break
			}
			su, sv := e.forcedSwap(gid)
			if e.touched[su] || e.touched[sv] {
				continue
			}
			e.appendGate(circuit.GateSwap, su, sv, 0, 0, 0, false)
			e.applySwap(su, sv)
			e.touched[su], e.touched[sv] = true, true
			e.touched[pu], e.touched[pv] = true, true
			mapped = true
			swapCount++
		}
		mSwaps.Observe(int64(swapCount))
		if len(e.sched) > 0 {
			stall = 0
		} else {
			stall++
		}
		if mapped && opts.Checkpoint != nil {
			e.doCheckpoint(opts.Checkpoint, cycle)
		}
	}
	e.cycles = cycle
	return nil
}

// result materialises the arena state into the public Result. These
// exact-size copies are the only steady-state allocations of a pooled
// compile; the Result owns its memory outright and the engine returns to
// the pool.
func (e *engine) result() *Result {
	gates := make([]circuit.Gate, len(e.gates))
	copy(gates, e.gates)
	ini := make([]int, e.nl)
	fin := make([]int, e.nl)
	for l := 0; l < e.nl; l++ {
		ini[l] = int(e.initMap[l])
		fin[l] = int(e.l2p[l])
	}
	return &Result{
		Circuit: &circuit.Circuit{NQubits: e.n, Gates: gates},
		Initial: ini,
		Final:   fin,
		Cycles:  e.cycles,
	}
}

func (e *engine) compile(problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	if err := e.run(problem, initial, opts); err != nil {
		return nil, err
	}
	return e.result(), nil
}
