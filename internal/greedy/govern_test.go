package greedy

import (
	"errors"
	"fmt"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func TestUnreachableGateTypedError(t *testing.T) {
	// Two disconnected 2-qubit islands; the problem wants a gate across.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	a := arch.Generic("islands-4", g)
	p := graph.New(4)
	p.AddEdge(0, 2)
	_, err := Compile(a, p, nil, Options{})
	if err == nil {
		t.Fatal("expected an error for a cross-component interaction")
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("error should wrap ErrUnreachable, got %v", err)
	}
}

func TestInterruptAbortsPromptly(t *testing.T) {
	a := arch.GridN(36)
	p := graph.Complete(36)
	cause := fmt.Errorf("stop now")
	polls := 0
	_, err := Compile(a, p, nil, Options{Interrupt: func() error {
		polls++
		if polls >= 3 {
			return cause
		}
		return nil
	}})
	if err == nil {
		t.Fatal("expected the interrupt to abort compilation")
	}
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, cause) {
		t.Fatalf("error should wrap ErrInterrupted and the cause, got %v", err)
	}
	if polls > 4 {
		t.Fatalf("scheduler kept running after the interrupt fired (%d polls)", polls)
	}
}

func TestNoProgressTypedError(t *testing.T) {
	a := arch.GridN(16)
	p := graph.Complete(16)
	_, err := Compile(a, p, nil, Options{MaxCycles: 3})
	if err == nil {
		t.Fatal("expected the cycle cap to abort compilation")
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("error should wrap ErrNoProgress, got %v", err)
	}
}
