//go:build !race

package greedy

const raceEnabled = false
