package greedy

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
)

// FuzzGreedyMatchesReference decodes arbitrary bytes into a (device,
// problem, placement, options) instance and requires the packed engine to
// match the reference oracle gate for gate. Registered in the CI fuzz
// smoke job next to FuzzQASMRoundTrip.
func FuzzGreedyMatchesReference(f *testing.F) {
	f.Add([]byte{0, 8, 128, 0, 42})
	f.Add([]byte{1, 12, 80, 3, 7})
	f.Add([]byte{2, 16, 200, 5, 99})
	f.Add([]byte{1, 16, 255, 6, 3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		archSel := int(data[0]) % 3
		nReq := 4 + int(data[1])%14 // 4..17 logical qubits
		density := 0.15 + float64(data[2])/255.0*0.75
		optSel := int(data[3])
		seed := int64(data[4])
		for _, b := range data[5:] {
			seed = seed*257 + int64(b)
		}

		var a *arch.Arch
		switch archSel {
		case 0:
			a = arch.Line(nReq + int(seed)%3)
		case 1:
			side := 3 + int(data[1])%3 // 3..5
			a = arch.Grid(side, side)
		default:
			a = arch.HeavyHex(2, 8)
		}
		n := nReq
		if n > a.N() {
			n = a.N()
		}
		rng := rand.New(rand.NewSource(seed))
		p := graph.GnpConnected(n, density, rng)

		var initial []int
		if optSel&1 != 0 {
			initial = rng.Perm(a.N())[:n]
		} else {
			initial = InitialMapping(a, p)
		}
		var opts Options
		if optSel&2 != 0 {
			opts.Noise = noise.Synthetic(a, seed)
		}
		if optSel&4 != 0 {
			opts.CrosstalkAware = true
		}
		if optSel&8 != 0 {
			opts.MaxCycles = 1 + int(data[2])%64 // exercise budget errors
		}

		ref, refErr := ReferenceCompile(a, p, initial, opts)
		got, gotErr := Compile(a, p, initial, opts)
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("error divergence: reference=%v packed=%v", refErr, gotErr)
		}
		if refErr != nil {
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("error text divergence:\n  reference: %v\n  packed:    %v", refErr, gotErr)
			}
			return
		}
		if got.Cycles != ref.Cycles {
			t.Fatalf("cycles %d != reference %d", got.Cycles, ref.Cycles)
		}
		if len(got.Circuit.Gates) != len(ref.Circuit.Gates) {
			t.Fatalf("gate count %d != reference %d", len(got.Circuit.Gates), len(ref.Circuit.Gates))
		}
		for i := range ref.Circuit.Gates {
			if got.Circuit.Gates[i] != ref.Circuit.Gates[i] {
				t.Fatalf("gate %d differs:\n  reference: %+v\n  packed:    %+v",
					i, ref.Circuit.Gates[i], got.Circuit.Gates[i])
			}
		}
		for l := range ref.Final {
			if got.Initial[l] != ref.Initial[l] || got.Final[l] != ref.Final[l] {
				t.Fatalf("mapping divergence at logical %d", l)
			}
		}
	})
}
