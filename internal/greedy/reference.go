package greedy

import (
	"fmt"
	"math"
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// This file preserves the pre-rewrite greedy scheduler verbatim in behavior:
// map-based busy/conflict sets, a fresh conflict graph.Graph per cycle, and
// slice-of-struct gate bookkeeping through circuit.Builder. It exists as the
// equivalence oracle for the differential suite (the packed engine in
// engine.go must reproduce its output gate for gate) and as the baseline the
// benchmark harness measures the rewrite against — the same discipline
// internal/solver/reference.go established for the A* rewrite. It should
// not be used outside tests and benchmarks.

// ReferenceCompile runs the pre-rewrite scheduler. Module-internal callers
// only: the differential tests, the fuzz target, and the bench harness.
func ReferenceCompile(a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	return referenceCompile(a, problem, initial, opts)
}

// referenceCompile is the pre-rewrite Compile body.
func referenceCompile(a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	if opts.Angle == 0 {
		opts.Angle = 1
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 300*a.N() + 2000
	}
	b := circuit.NewBuilder(a, problem.N(), initial)
	dist := a.Distances()

	remaining := problem.Edges()
	remSet := newPairSet(problem.N())
	for _, e := range remaining {
		remSet.add(e)
		// SWAPs move qubits along coupling edges, so a logical qubit can
		// never leave its connected component: a cross-component gate is
		// unschedulable forever, not merely slow.
		if dist[b.PhysOf(e.U)][b.PhysOf(e.V)] < 0 {
			return nil, fmt.Errorf("%w: interaction %v spans disconnected parts of %s",
				ErrUnreachable, e, a.Name)
		}
	}
	ws := newWorkspace(a)
	var xtalk map[graph.Edge][]graph.Edge
	if opts.CrosstalkAware {
		xtalk = make(map[graph.Edge][]graph.Edge)
		for _, p := range noise.CrosstalkPairs(a) {
			xtalk[p[0]] = append(xtalk[p[0]], p[1])
			xtalk[p[1]] = append(xtalk[p[1]], p[0])
		}
	}

	// Metric handles resolve once up front: with Obs == nil they are nil,
	// and every observation below is a single pointer check.
	met := opts.Obs.Metrics()
	mCycles := met.Counter("greedy.cycles")
	mStalls := met.Counter("greedy.stall_walks")
	mSched := met.Histogram("greedy.scheduled_per_cycle")
	mSwaps := met.Histogram("greedy.swaps_per_cycle")

	cycle := 0
	stall := 0
	stallLimit := a.Diameter() + 8
	for len(remaining) > 0 {
		if cycle >= maxCycles {
			return nil, fmt.Errorf("%w after %d cycles (%d gates left)", ErrNoProgress, cycle, len(remaining))
		}
		cycle++
		mCycles.Add(1)
		if opts.Interrupt != nil {
			if ierr := opts.Interrupt(); ierr != nil {
				return nil, fmt.Errorf("%w at cycle %d: %w", ErrInterrupted, cycle, ierr)
			}
		}

		if stall > stallLimit {
			// The matching dynamics can chase their own tail on rare
			// configurations; deterministically drain the closest gate by
			// walking it home one SWAP per cycle, then resume.
			e := closestGate(b, dist, remaining)
			mStalls.Add(1)
			opts.Obs.Event(opts.ObsSpan, "greedy.stall_walk",
				obs.Int("cycle", cycle),
				obs.Int("remaining", len(remaining)),
				obs.Int("distance", dist[b.PhysOf(e.U)][b.PhysOf(e.V)]))
			for !a.G.HasEdge(b.PhysOf(e.U), b.PhysOf(e.V)) {
				if cycle >= maxCycles {
					return nil, fmt.Errorf("%w after %d cycles (stall walk)", ErrNoProgress, cycle)
				}
				if opts.Interrupt != nil {
					if ierr := opts.Interrupt(); ierr != nil {
						return nil, fmt.Errorf("%w at cycle %d: %w", ErrInterrupted, cycle, ierr)
					}
				}
				s := forcedSwap(a, b, dist, e, opts.Noise)
				b.Swap(s.U, s.V)
				cycle++
			}
			b.ZZ(b.PhysOf(e.U), b.PhysOf(e.V), opts.Angle, e)
			remSet.remove(e)
			keep := remaining[:0]
			for _, f := range remaining {
				if f != e {
					keep = append(keep, f)
				}
			}
			remaining = keep
			stall = 0
			if opts.Checkpoint != nil {
				l2p := make([]int, problem.N())
				for l := range l2p {
					l2p[l] = b.PhysOf(l)
				}
				opts.Checkpoint(len(b.C.Gates), l2p, cycle)
			}
			continue
		}

		// --- Gate scheduling (graph colouring on the conflict graph). ---
		var exec []graph.Edge
		for _, e := range remaining {
			if ws.coupled(b.PhysOf(e.U), b.PhysOf(e.V)) {
				exec = append(exec, e)
			}
		}
		scheduled := scheduleGates(a, b, exec, xtalk)
		busy := make(map[int]bool, 2*len(scheduled))
		schedSet := make(map[graph.Edge]bool, len(scheduled))
		for _, e := range scheduled {
			busy[b.PhysOf(e.U)] = true
			busy[b.PhysOf(e.V)] = true
			schedSet[e] = true
		}
		// Complete the colour class to a maximal conflict-free set: the
		// largest class can leave schedulable gates idle.
		for _, e := range exec {
			if schedSet[e] {
				continue
			}
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if busy[pu] || busy[pv] {
				continue
			}
			if xtalk != nil && xtalkConflict(b, xtalk, e, schedSet) {
				continue
			}
			scheduled = append(scheduled, e)
			schedSet[e] = true
			busy[pu], busy[pv] = true, true
		}
		schedPending := remaining[:0]
		for _, e := range remaining {
			if !schedSet[e] {
				schedPending = append(schedPending, e)
			} else {
				remSet.remove(e)
			}
		}
		remaining = schedPending
		mSched.Observe(int64(len(scheduled)))
		// Emit scheduled gates, unifying a gate with its SWAP when moving
		// the pair brings other remaining gates closer (free routing — the
		// trick the structured patterns and 2QAN both exploit).
		mapped := false
		for _, e := range scheduled {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if len(remaining) > 0 && swapGain(b, problem, remSet, dist, e, pu, pv) > 0 {
				b.ZZSwap(pu, pv, opts.Angle, e)
				mapped = true
			} else {
				b.ZZ(pu, pv, opts.Angle, e)
			}
		}
		if len(remaining) == 0 {
			break
		}

		// --- SWAP insertion (weighted matching on idle qubits). ---
		swaps := ws.proposeSwaps(a, b, dist, remaining, busy, opts.Noise)
		swapCount := len(swaps)
		touched := ws.touched
		for i := range touched {
			touched[i] = false
		}
		//vet:ignore maprange idempotent flag writes, order-independent
		for q := range busy {
			touched[q] = true
		}
		for _, s := range swaps {
			b.Swap(s.U, s.V)
			touched[s.U], touched[s.V] = true, true
			mapped = true
		}
		// Escort walks: the signed-benefit matching alone under-moves when
		// overlapping gates' contributions cancel (throughput collapses to
		// a few swaps per cycle on dense problems). Every remaining gate
		// whose qubits are still untouched takes one forced
		// distance-reducing step, closest gates first — the closest gate's
		// qubits get locked before farther escorts can drag them away, so
		// the minimum distance decreases monotonically and the schedule
		// keeps near-maximal swap parallelism.
		ordered := ws.byDistance(b, dist, remaining)
		dmin := 0
		if len(ordered) > 0 {
			dmin = dist[b.PhysOf(ordered[0].U)][b.PhysOf(ordered[0].V)]
		}
		for _, e := range ordered {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if touched[pu] || touched[pv] {
				continue
			}
			d := dist[pu][pv]
			if d <= 1 {
				// About to execute: protect it from farther gates' escorts.
				touched[pu], touched[pv] = true, true
				continue
			}
			if d > dmin+ws.escortWindow {
				// Far gates wait: escorting everything burns ~3x the SWAPs
				// for no depth gain, because distant partners drift anyway
				// as the frontier churns.
				break
			}
			s := forcedSwap(a, b, dist, e, opts.Noise)
			if touched[s.U] || touched[s.V] {
				continue
			}
			b.Swap(s.U, s.V)
			touched[s.U], touched[s.V] = true, true
			touched[pu], touched[pv] = true, true
			mapped = true
			swapCount++
		}
		mSwaps.Observe(int64(swapCount))
		if len(scheduled) > 0 {
			stall = 0
		} else {
			stall++
		}
		if mapped && opts.Checkpoint != nil {
			l2p := make([]int, problem.N())
			for l := range l2p {
				l2p[l] = b.PhysOf(l)
			}
			opts.Checkpoint(len(b.C.Gates), l2p, cycle)
		}
	}
	return &Result{Circuit: b.C, Initial: b.InitialMapping(), Final: b.CurrentMapping(), Cycles: cycle}, nil
}

// swapGain returns the total coupling-distance reduction over remaining
// gates incident to the occupants of (pu, pv) if those occupants were
// exchanged after executing gate e.
func swapGain(b *circuit.Builder, problem *graph.Graph, remSet *pairSet, dist [][]int, e graph.Edge, pu, pv int) int {
	gain := 0
	acc := func(l, from, to int) {
		for _, w := range problem.Neighbors(l) {
			if !remSet.has(graph.NewEdge(l, w)) {
				continue
			}
			pw := b.PhysOf(w)
			if pw == pu || pw == pv {
				continue
			}
			gain += dist[from][pw] - dist[to][pw]
		}
	}
	acc(e.U, pu, pv)
	acc(e.V, pv, pu)
	return gain
}

// xtalkConflict reports whether gate e's coupling crosstalks with any
// already-scheduled gate's coupling.
func xtalkConflict(b *circuit.Builder, xtalk map[graph.Edge][]graph.Edge, e graph.Edge, schedSet map[graph.Edge]bool) bool {
	ce := graph.NewEdge(b.PhysOf(e.U), b.PhysOf(e.V))
	for _, partner := range xtalk[ce] {
		lu, lv := b.LogicalAt(partner.U), b.LogicalAt(partner.V)
		if lu < 0 || lv < 0 {
			continue
		}
		if schedSet[graph.NewEdge(lu, lv)] {
			return true
		}
	}
	return false
}

// scheduleGates picks the subset of executable gates to run this cycle: it
// colours the conflict graph (shared qubits + crosstalk) greedily and takes
// the largest colour class (§6.2).
func scheduleGates(a *arch.Arch, b *circuit.Builder, exec []graph.Edge, xtalk map[graph.Edge][]graph.Edge) []graph.Edge {
	if len(exec) == 0 {
		return nil
	}
	conflict := graph.New(len(exec))
	byQubit := make(map[int][]int)
	byCoupling := make(map[graph.Edge]int, len(exec))
	for i, e := range exec {
		pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
		for _, q := range [2]int{pu, pv} {
			for _, j := range byQubit[q] {
				conflict.AddEdge(i, j)
			}
			byQubit[q] = append(byQubit[q], i)
		}
		byCoupling[graph.NewEdge(pu, pv)] = i
	}
	if xtalk != nil {
		for i, e := range exec {
			ce := graph.NewEdge(b.PhysOf(e.U), b.PhysOf(e.V))
			for _, partner := range xtalk[ce] {
				if j, ok := byCoupling[partner]; ok && j != i {
					conflict.AddEdge(i, j)
				}
			}
		}
	}
	colors := graph.GreedyColoring(conflict)
	best := graph.LargestColorClass(colors)
	out := make([]graph.Edge, 0, len(best))
	for _, i := range best {
		out = append(out, exec[i])
	}
	return out
}

// workspace holds per-compilation scratch buffers and index structures so
// the per-cycle hot paths avoid hashing 16-byte edge keys and re-sorting.
type workspace struct {
	couplings []graph.Edge // coupling edge by id
	adj       []bool       // dense coupling matrix, row-major over physical qubits
	nQubits   int
	nbrEdgeID [][]int // parallel to a.G.Neighbors(p): coupling edge id
	// escortWindow bounds how far beyond the current minimum gate distance
	// the escort walks reach. Too small starves movement on large devices
	// (depth blows up); too large burns speculative SWAPs on small ones.
	// diameter/8 floored at 2 tracks both regimes.
	escortWindow int
	benefit      []float64 // per coupling id, signed accumulation
	dirty        []int     // coupling ids touched this cycle
	seenGen      []int     // generation marker per coupling id
	gen          int
	touched      []bool // per physical qubit
	buckets      [][]graph.Edge
}

func newWorkspace(a *arch.Arch) *workspace {
	couplings := a.G.Edges()
	id := make(map[graph.Edge]int, len(couplings))
	for i, e := range couplings {
		id[e] = i
	}
	nbr := make([][]int, a.N())
	for p := 0; p < a.N(); p++ {
		ns := a.G.Neighbors(p)
		nbr[p] = make([]int, len(ns))
		for k, w := range ns {
			nbr[p][k] = id[graph.NewEdge(p, w)]
		}
	}
	adj := make([]bool, a.N()*a.N())
	for _, e := range couplings {
		adj[e.U*a.N()+e.V] = true
		adj[e.V*a.N()+e.U] = true
	}
	win := a.Diameter() / 8
	if win < 2 {
		win = 2
	}
	return &workspace{
		couplings:    couplings,
		adj:          adj,
		nQubits:      a.N(),
		nbrEdgeID:    nbr,
		escortWindow: win,
		benefit:      make([]float64, len(couplings)),
		seenGen:      make([]int, len(couplings)),
		touched:      make([]bool, a.N()),
		buckets:      make([][]graph.Edge, a.Diameter()+2),
	}
}

// coupled reports physical adjacency via the dense matrix (hot path).
func (ws *workspace) coupled(p, q int) bool { return ws.adj[p*ws.nQubits+q] }

// byDistance orders the gates by current coupling distance with a counting
// sort (reused buckets; ties keep input order, which is deterministic).
func (ws *workspace) byDistance(b *circuit.Builder, dist [][]int, remaining []graph.Edge) []graph.Edge {
	for i := range ws.buckets {
		ws.buckets[i] = ws.buckets[i][:0]
	}
	for _, e := range remaining {
		d := dist[b.PhysOf(e.U)][b.PhysOf(e.V)]
		if d >= len(ws.buckets) {
			d = len(ws.buckets) - 1
		}
		ws.buckets[d] = append(ws.buckets[d], e)
	}
	out := remaining[:0]
	for _, bk := range ws.buckets {
		out = append(out, bk...)
	}
	return out
}

// proposeSwaps gathers candidate SWAPs that reduce the distance of some
// unexecutable gate, weights them by aggregated benefit and link quality,
// and returns a vertex-disjoint selection.
func (ws *workspace) proposeSwaps(a *arch.Arch, b *circuit.Builder, dist [][]int, remaining []graph.Edge, busy map[int]bool, nm *noise.Model) []graph.Edge {
	// Signed benefit per candidate SWAP: every remaining gate with an
	// endpoint on the swapped pair contributes its distance change, so a
	// SWAP that helps one gate while tearing another apart nets out — the
	// positive-only variant oscillates forever on shared qubits.
	for _, id := range ws.dirty {
		ws.benefit[id] = 0
	}
	ws.dirty = ws.dirty[:0]
	ws.gen++
	consider := func(p, k, w, gain int) {
		if busy[p] || busy[w] {
			return
		}
		id := ws.nbrEdgeID[p][k]
		if ws.seenGen[id] != ws.gen {
			ws.seenGen[id] = ws.gen
			ws.dirty = append(ws.dirty, id)
		}
		ws.benefit[id] += float64(gain)
	}
	for _, e := range remaining {
		pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
		d := dist[pu][pv]
		// A SWAP moving an endpoint to neighbour w gains d - dist(w, other):
		// +1 along a shortest path, negative when it strays (including
		// pulling apart an already-adjacent gate).
		//
		// At d == 2 only one endpoint may move: if both endpoints step
		// toward each other's old position via different midpoints they
		// stay at distance 2 forever (the simultaneous-move livelock).
		moveU, moveV := true, true
		if d == 2 {
			if busy[pu] {
				moveU = false
			} else {
				moveV = false
			}
		}
		if moveU {
			for k, w := range a.G.Neighbors(pu) {
				if w != pv {
					consider(pu, k, w, d-dist[w][pv])
				}
			}
		}
		if moveV {
			for k, w := range a.G.Neighbors(pv) {
				if w != pu {
					consider(pv, k, w, d-dist[w][pu])
				}
			}
		}
	}
	var veto float64 = math.Inf(1)
	if nm != nil {
		veto = vetoThreshold(nm)
	}
	wedges := make([]graph.WeightedEdge, 0, len(ws.dirty))
	for _, id := range ws.dirty {
		benefit := ws.benefit[id]
		ce := ws.couplings[id]
		w := benefit
		if nm != nil {
			e := nm.EdgeError(ce.U, ce.V)
			if e >= veto {
				// Outlier link: refuse to route through it; the stall
				// fallback still uses it if it is the only way forward.
				continue
			}
			// A SWAP is three CX on this link: discount bad links so gates
			// drift toward reliable couplings (§5.3).
			q := 1 - e
			w *= q * q * q
		}
		if w > 0 {
			wedges = append(wedges, graph.WeightedEdge{Edge: ce, W: w})
		}
	}
	sort.Slice(wedges, func(i, j int) bool {
		if wedges[i].W != wedges[j].W {
			return wedges[i].W > wedges[j].W
		}
		if wedges[i].U != wedges[j].U {
			return wedges[i].U < wedges[j].U
		}
		return wedges[i].V < wedges[j].V
	})
	idx := graph.MaxWeightMatching(wedges)
	out := make([]graph.Edge, 0, len(idx))
	for _, i := range idx {
		out = append(out, wedges[i].Edge)
	}
	return out
}

func closestGate(b *circuit.Builder, dist [][]int, remaining []graph.Edge) graph.Edge {
	best, bd := remaining[0], math.MaxInt
	for _, e := range remaining {
		if d := dist[b.PhysOf(e.U)][b.PhysOf(e.V)]; d < bd {
			best, bd = e, d
		}
	}
	return best
}

// forcedSwap returns a distance-reducing swap for gate e, preferring the
// lowest-error link among the reducing options at either endpoint.
func forcedSwap(a *arch.Arch, b *circuit.Builder, dist [][]int, e graph.Edge, nm *noise.Model) graph.Edge {
	pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
	d := dist[pu][pv]
	var best graph.Edge
	bestErr := math.Inf(1)
	found := false
	consider := func(p, w, other int) {
		if dist[w][other] >= d {
			return
		}
		err := 0.0
		if nm != nil {
			err = nm.EdgeError(p, w)
		}
		if !found || err < bestErr {
			best, bestErr, found = graph.NewEdge(p, w), err, true
		}
	}
	for _, w := range a.G.Neighbors(pu) {
		consider(pu, w, pv)
	}
	for _, w := range a.G.Neighbors(pv) {
		consider(pv, w, pu)
	}
	if found {
		return best
	}
	// Unreachable on connected architectures; move anywhere as last resort.
	return graph.NewEdge(pu, a.G.Neighbors(pu)[0])
}
