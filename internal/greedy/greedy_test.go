package greedy

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/verify"
)

func compileChecked(t *testing.T, a *arch.Arch, p *graph.Graph, opts Options) *Result {
	t.Helper()
	initial := InitialMapping(a, p)
	res, err := Compile(a, p, initial, opts)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	pass := &verify.Pass{Circuit: res.Circuit, Arch: a, Problem: p, Initial: res.Initial, Final: res.Final}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		t.Fatalf("%s: invalid circuit: %v", a.Name, err)
	}
	return res
}

func TestCompileTrivial(t *testing.T) {
	a := arch.Line(2)
	p := graph.Complete(2)
	res := compileChecked(t, a, p, Options{})
	if res.Circuit.CXCount() != 2 {
		t.Fatalf("K2: %d CX", res.Circuit.CXCount())
	}
	if res.Cycles != 1 {
		t.Fatalf("K2: %d cycles", res.Cycles)
	}
}

func TestCompileLineClique(t *testing.T) {
	a := arch.Line(6)
	res := compileChecked(t, a, graph.Complete(6), Options{})
	counts := res.Circuit.GateCount()
	if got := counts[circuit.GateZZ] + counts[circuit.GateZZSwap]; got != 15 {
		t.Fatalf("program gate count %d", got)
	}
}

func TestCompileRandomOnArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	archs := []*arch.Arch{
		arch.Grid(5, 5),
		arch.Sycamore(5, 5),
		arch.HeavyHex(2, 8),
		arch.Hexagon(4, 4),
		arch.Mumbai(),
	}
	for _, a := range archs {
		n := a.N()
		if n > 25 {
			n = 25
		}
		p := graph.GnpConnected(n, 0.3, rng)
		compileChecked(t, a, p, Options{})
	}
}

func TestCompileSparseUsesFewSwaps(t *testing.T) {
	// A problem that is a sub-path of the line architecture needs no swaps.
	a := arch.Line(8)
	p := graph.Path(8)
	res, err := Compile(a, p, nil, Options{}) // identity mapping aligns
	if err != nil {
		t.Fatal(err)
	}
	pass := &verify.Pass{Circuit: res.Circuit, Arch: a, Problem: p, Initial: res.Initial, Final: res.Final}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		t.Fatal(err)
	}
	if res.Circuit.GateCount()[circuit.GateSwap] != 0 {
		t.Fatalf("aligned path needed %d swaps", res.Circuit.GateCount()[circuit.GateSwap])
	}
	if res.Cycles != 2 {
		t.Fatalf("path scheduled in %d cycles, want 2", res.Cycles)
	}
}

func TestCheckpointsFireOnMappingChange(t *testing.T) {
	a := arch.Line(5)
	p := graph.Complete(5)
	var prefixes []int
	opts := Options{Checkpoint: func(prefixLen int, l2p []int, cycle int) {
		prefixes = append(prefixes, prefixLen)
		if len(l2p) != 5 {
			t.Fatalf("mapping len %d", len(l2p))
		}
	}}
	res := compileChecked(t, a, p, opts)
	if len(prefixes) == 0 {
		t.Fatal("no checkpoints for a clique that needs swaps")
	}
	for i, pl := range prefixes {
		if pl <= 0 || pl > len(res.Circuit.Gates) {
			t.Fatalf("checkpoint %d prefix %d out of range", i, pl)
		}
		if i > 0 && pl < prefixes[i-1] {
			t.Fatal("checkpoint prefixes not monotone")
		}
	}
}

func TestNoiseAwareAvoidsBadLink(t *testing.T) {
	// Line of 4 with a terrible middle link vs a clean detour is impossible
	// on a line; instead check on a 2x3 grid that the compiler places swaps
	// mostly on good links when one link is very bad.
	a := arch.Grid(2, 3)
	nm := noise.Uniform(a, 0.005, 1e-4, 0.02, 1e-3)
	bad := graph.NewEdge(0, 1)
	nm.TwoQubit[bad] = 0.40

	rng := rand.New(rand.NewSource(5))
	badUsed, cleanRuns := 0, 0
	for trial := 0; trial < 10; trial++ {
		p := graph.GnpConnected(6, 0.5, rng)
		init := InitialMapping(a, p)
		resAware, err := Compile(a, p, init, Options{Noise: nm})
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range resAware.Circuit.Gates {
			if g.Kind == circuit.GateSwap && graph.NewEdge(g.Q0, g.Q1) == bad {
				badUsed++
			}
		}
		cleanRuns++
	}
	if cleanRuns == 0 {
		t.Skip("no runs")
	}
	// The bad link should be nearly unused for SWAPs.
	if badUsed > 2 {
		t.Fatalf("noise-aware compiler placed %d swaps on the bad link", badUsed)
	}
}

func TestCrosstalkAwareStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := arch.Grid(4, 4)
	p := graph.GnpConnected(16, 0.4, rng)
	compileChecked(t, a, p, Options{CrosstalkAware: true})
}

func TestInitialMappingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, a := range []*arch.Arch{arch.Grid(6, 6), arch.HeavyHex(3, 8), arch.Sycamore(6, 6)} {
		p := graph.GnpConnected(20, 0.3, rng)
		m := InitialMapping(a, p)
		seen := map[int]bool{}
		for l, ph := range m {
			if ph < 0 || ph >= a.N() {
				t.Fatalf("%s: logical %d -> bad phys %d", a.Name, l, ph)
			}
			if seen[ph] {
				t.Fatalf("%s: phys %d assigned twice", a.Name, ph)
			}
			seen[ph] = true
		}
		// Compactness: the 20 logicals should occupy a connected-ish blob —
		// max pairwise distance well below the diameter for big archs.
		maxD := 0
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				if d := a.Dist(m[i], m[j]); d > maxD {
					maxD = d
				}
			}
		}
		if maxD > a.Diameter() {
			t.Fatalf("%s: placement spread %d exceeds diameter", a.Name, maxD)
		}
	}
}

func TestDeterministicCompilation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := arch.Grid(4, 4)
	p := graph.GnpConnected(16, 0.3, rng)
	init := InitialMapping(a, p)
	r1, err := Compile(a, p, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(a, p, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Circuit.Gates) != len(r2.Circuit.Gates) {
		t.Fatal("non-deterministic gate count")
	}
	for i := range r1.Circuit.Gates {
		if r1.Circuit.Gates[i] != r2.Circuit.Gates[i] {
			t.Fatalf("gate %d differs between runs", i)
		}
	}
}
