package greedy

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestPackedEngineZeroAllocs pins the tentpole's allocation contract: once
// an engine's arenas are warm, a full scheduling run (everything except the
// Result materialisation, which by design hands out fresh memory) performs
// zero heap allocations. Any map, closure, or slice regression in the hot
// loop shows up here as a hard failure.
func TestPackedEngineZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation and pool semantics skew allocation counts")
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"crosstalk", Options{CrosstalkAware: true}},
	}
	a := arch.Grid(6, 6)
	rng := rand.New(rand.NewSource(17))
	p := graph.GnpConnected(20, 0.5, rng)
	init := InitialMapping(a, p)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := acquireEngine(a)
			defer releaseEngine(eng)
			for i := 0; i < 3; i++ { // warm every arena to steady-state capacity
				if err := eng.run(p, init, tc.opts); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := eng.run(p, init, tc.opts); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("scheduling loop allocates %.1f objects per compile, want 0", allocs)
			}
		})
	}
}
