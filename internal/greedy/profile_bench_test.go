package greedy

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func BenchmarkPackedGrid100(b *testing.B) {
	a := arch.Grid(10, 10)
	p := graph.GnpConnected(100, 0.5, rand.New(rand.NewSource(64)))
	a.Distances()
	init := InitialMapping(a, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(a, p, init, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceGrid100(b *testing.B) {
	a := arch.Grid(10, 10)
	p := graph.GnpConnected(100, 0.5, rand.New(rand.NewSource(64)))
	a.Distances()
	init := InitialMapping(a, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceCompile(a, p, init, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
