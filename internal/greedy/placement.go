package greedy

import (
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// InitialMapping places the problem's logical qubits compactly on the
// architecture: logical qubits in BFS order from the highest-degree vertex
// (densest first) onto physical qubits in BFS order from an architecture
// centre. Compact placement keeps the detected interaction region small,
// which tightens the ATA prediction bound (§6.3); for the clique special
// case all placements are equivalent (§4, Discussion).
func InitialMapping(a *arch.Arch, problem *graph.Graph) []int {
	phys := bfsOrder(a.G, archCenter(a))
	logical := problemOrder(problem)
	mapping := make([]int, problem.N())
	for i, l := range logical {
		mapping[l] = phys[i]
	}
	return mapping
}

// RefinePlacement hill-climbs a placement for a bounded number of passes:
// it tries exchanging the physical locations of every logical pair and
// keeps exchanges that reduce the total coupling distance over all problem
// edges. Structured sparse graphs (chains, lattices) benefit enormously —
// the BFS seed gets them near the right region and the refinement aligns
// them with the hardware — while each pass is O(n^2) candidate moves, so
// callers bound the passes.
func RefinePlacement(a *arch.Arch, problem *graph.Graph, initial []int, passes int) []int {
	physOf := append([]int(nil), initial...)
	dist := a.Distances()
	adj := make([][]int, problem.N())
	for _, e := range problem.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	costAt := func(u, p int) int {
		c := 0
		for _, v := range adj[u] {
			c += dist[p][physOf[v]]
		}
		return c
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for u := 0; u < problem.N(); u++ {
			for v := u + 1; v < problem.N(); v++ {
				pu, pv := physOf[u], physOf[v]
				before := costAt(u, pu) + costAt(v, pv)
				physOf[u], physOf[v] = pv, pu
				after := costAt(u, pv) + costAt(v, pu)
				if after < before {
					improved = true
				} else {
					physOf[u], physOf[v] = pu, pv
				}
			}
		}
		if !improved {
			break
		}
	}
	return physOf
}

// archCenter returns a vertex with minimal eccentricity estimate (two-BFS
// sweep: the midpoint of a longest shortest path found from an arbitrary
// start).
func archCenter(a *arch.Arch) int {
	far := func(s int) (int, []int) {
		d := a.G.BFSFrom(s)
		best, bd := s, 0
		for v, dv := range d {
			if dv > bd {
				best, bd = v, dv
			}
		}
		return best, d
	}
	u, _ := far(0)
	v, du := far(u)
	dv := a.G.BFSFrom(v)
	// Centre: vertex minimising max(dist(u,·), dist(v,·)).
	best, bd := 0, 1<<30
	for w := 0; w < a.N(); w++ {
		m := du[w]
		if dv[w] > m {
			m = dv[w]
		}
		if m < bd {
			best, bd = w, m
		}
	}
	return best
}

// bfsOrder returns all vertices in BFS order from start, visiting neighbours
// in ascending index for determinism; unreached vertices are appended.
func bfsOrder(g *graph.Graph, start int) []int {
	order := make([]int, 0, g.N())
	seen := make([]bool, g.N())
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		nb := append([]int(nil), g.Neighbors(v)...)
		sort.Ints(nb)
		for _, w := range nb {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

// problemOrder returns the logical qubits in BFS order from the
// highest-degree vertex, breaking ties toward higher degree so dense cores
// land near the architecture centre.
func problemOrder(p *graph.Graph) []int {
	start := 0
	for v := 1; v < p.N(); v++ {
		if p.Degree(v) > p.Degree(start) {
			start = v
		}
	}
	order := make([]int, 0, p.N())
	seen := make([]bool, p.N())
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		nb := append([]int(nil), p.Neighbors(v)...)
		sort.Slice(nb, func(i, j int) bool {
			if p.Degree(nb[i]) != p.Degree(nb[j]) {
				return p.Degree(nb[i]) > p.Degree(nb[j])
			}
			return nb[i] < nb[j]
		})
		for _, w := range nb {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	for v := 0; v < p.N(); v++ {
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}
