package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// PhaseLabel runs f with the pprof label ataqc_phase=phase attached, so CPU
// profiles taken with -cpuprofile attribute samples to compiler phases
// (greedy, predict, ata, ...). Labels are inherited by goroutines spawned
// inside f, which is how the prediction pool's workers get tagged. When the
// trace is nil the label is still applied — pprof labels are cheap and a
// profile without a trace is a supported mode — unless ctx is nil, in which
// case f runs bare.
func PhaseLabel(ctx context.Context, phase string, f func(context.Context)) {
	if ctx == nil {
		f(context.Background())
		return
	}
	pprof.Do(ctx, pprof.Labels("ataqc_phase", phase), f)
}

// WorkerLabel runs f with ataqc_worker=<id> added to the current label set,
// nesting under whatever PhaseLabel already applied.
func WorkerLabel(ctx context.Context, id int, f func(context.Context)) {
	if ctx == nil {
		f(context.Background())
		return
	}
	pprof.Do(ctx, pprof.Labels("ataqc_worker", strconv.Itoa(id)), f)
}
