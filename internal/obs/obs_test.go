package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock: every Now() call advances it by step.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace must report disabled")
	}
	s := tr.StartSpan(nil, "root", Str("k", "v"))
	if s != nil {
		t.Fatalf("nil trace StartSpan = %v, want nil", s)
	}
	s.End()
	s.SetAttrs(Int("n", 1))
	s.SetLane(3)
	tr.Event(nil, "evt")
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil trace Snapshot = %v, want nil", got)
	}
	reg := tr.Metrics()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(5)
	reg.Histogram("h").Observe(9)
	if v := reg.Counter("c").Value(); v != 0 {
		t.Fatalf("nil registry counter = %d, want 0", v)
	}
	if c := ClockOf(tr); c != SystemClock {
		t.Fatalf("ClockOf(nil) = %v, want SystemClock", c)
	}
}

func TestSpanNestingAndTiming(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewWithClock(clk)
	// Clock reads: New=t0. root start=t1, child start=t2, child end=t3,
	// root end=t4. Offsets are relative to t0.
	root := tr.StartSpan(nil, "root")
	child := tr.StartSpan(root, "child", Int("cp", 2))
	child.End()
	root.End()
	tr.Event(root, "marker", Bool("hit", true))

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	r, c, e := spans[0], spans[1], spans[2]
	if r.ID != 1 || r.Parent != 0 || r.Name != "root" {
		t.Fatalf("root span wrong: %+v", r)
	}
	if c.ID != 2 || c.Parent != 1 {
		t.Fatalf("child span should nest under root: %+v", c)
	}
	if r.Start != 1*time.Millisecond || r.Stop != 4*time.Millisecond {
		t.Fatalf("root timing = [%v, %v], want [1ms, 4ms]", r.Start, r.Stop)
	}
	if c.Start != 2*time.Millisecond || c.Stop != 3*time.Millisecond {
		t.Fatalf("child timing = [%v, %v], want [2ms, 3ms]", c.Start, c.Stop)
	}
	if !e.Instant || e.Stop != e.Start || e.Parent != 1 {
		t.Fatalf("event span wrong: %+v", e)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "cp" || c.Attrs[0].Value != int64(2) {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
}

func TestSpanEndTwiceKeepsFirst(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewWithClock(clk)
	s := tr.StartSpan(nil, "s")
	s.End()
	first := tr.Snapshot()[0].Stop
	s.End()
	if got := tr.Snapshot()[0].Stop; got != first {
		t.Fatalf("second End moved Stop from %v to %v", first, got)
	}
}

func TestUnendedSpanSnapshotsAsZeroDuration(t *testing.T) {
	tr := New()
	tr.StartSpan(nil, "open")
	s := tr.Snapshot()[0]
	if s.Stop != s.Start {
		t.Fatalf("unended span Stop=%v Start=%v, want equal", s.Stop, s.Start)
	}
}

func TestLaneInheritance(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "root")
	w := tr.StartSpan(root, "worker")
	w.SetLane(7)
	task := tr.StartSpan(w, "task")
	spans := tr.Snapshot()
	if spans[1].Lane != 7 {
		t.Fatalf("worker lane = %d, want 7", spans[1].Lane)
	}
	if spans[2].Lane != 7 {
		t.Fatalf("child should inherit lane 7, got %d", spans[2].Lane)
	}
	_ = task
}

// TestConcurrentSpans hammers one trace from many goroutines; run with
// -race. IDs must come out unique and in creation order, and every child
// must reference a parent created before it.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "root")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := tr.StartSpan(root, "worker")
			ws.SetLane(w + 1)
			for i := 0; i < perWorker; i++ {
				s := tr.StartSpan(ws, "task", Int("i", i))
				tr.Metrics().Counter("tasks").Add(1)
				tr.Metrics().Histogram("task_i").Observe(int64(i))
				s.End()
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	root.End()

	spans := tr.Snapshot()
	want := 1 + workers + workers*perWorker
	if len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	for i, s := range spans {
		if s.ID != i+1 {
			t.Fatalf("span %d has ID %d — snapshot must be in creation order", i, s.ID)
		}
		if s.Parent >= s.ID {
			t.Fatalf("span %d references parent %d created after it", s.ID, s.Parent)
		}
		if s.Stop < s.Start {
			t.Fatalf("span %d ends (%v) before it starts (%v)", s.ID, s.Stop, s.Start)
		}
	}
	if v := tr.Metrics().Counter("tasks").Value(); v != int64(workers*perWorker) {
		t.Fatalf("tasks counter = %d, want %d", v, workers*perWorker)
	}
	if h := tr.Metrics().Snapshot().Histograms["task_i"]; h.Count != int64(workers*perWorker) {
		t.Fatalf("task_i histogram count = %d, want %d", h.Count, workers*perWorker)
	}
}

func TestPhaseAndWorkerLabelNilContext(t *testing.T) {
	ran := 0
	PhaseLabel(nil, "greedy", func(context.Context) { ran++ })
	WorkerLabel(nil, 3, func(context.Context) { ran++ })
	if ran != 2 {
		t.Fatalf("label helpers with nil ctx ran %d times, want 2", ran)
	}
}
