package obs

import (
	"reflect"
	"testing"
)

func TestLabeledCanonicalForm(t *testing.T) {
	cases := []struct {
		base   string
		labels []Label
		want   string
	}{
		{"plain", nil, "plain"},
		{"m", []Label{{"k", "v"}}, `m{k="v"}`},
		// Keys sort, so call-site order never forks a series.
		{"m", []Label{{"z", "1"}, {"a", "2"}}, `m{a="2",z="1"}`},
		{"m", []Label{{"k", `a"b\c` + "\n"}}, `m{k="a\"b\\c\n"}`},
	}
	for _, c := range cases {
		if got := Labeled(c.base, c.labels...); got != c.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
	}
	if Labeled("m", Label{"a", "1"}, Label{"b", "2"}) != Labeled("m", Label{"b", "2"}, Label{"a", "1"}) {
		t.Error("label order leaked into the canonical name")
	}
}

func TestSplitLabeledRoundTrip(t *testing.T) {
	cases := [][]Label{
		nil,
		{{"endpoint", "compile"}},
		{{"a", "1"}, {"b", "2"}},
		{{"k", `tricky "quoted" \slash` + "\nline"}},
		{{"k", ""}},
	}
	for _, labels := range cases {
		name := Labeled("base.name", labels...)
		base, got := SplitLabeled(name)
		if base != "base.name" {
			t.Errorf("SplitLabeled(%q) base = %q", name, base)
		}
		if len(labels) == 0 {
			if got != nil {
				t.Errorf("SplitLabeled(%q) labels = %v, want nil", name, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, labels) {
			t.Errorf("SplitLabeled(%q) = %v, want %v", name, got, labels)
		}
	}
}

func TestSplitLabeledMalformed(t *testing.T) {
	// Malformed label blocks must come back whole, not half-parsed: the
	// flat exporters render whatever the registry key was.
	for _, name := range []string{
		"plain", "open{brace", `m{k="unterminated`, `m{noequals}`,
		`m{k="v"trailing}`, `m{k="bad\escape"}`, "{}",
	} {
		base, labels := SplitLabeled(name)
		if base != name || labels != nil {
			t.Errorf("SplitLabeled(%q) = %q, %v; want identity", name, base, labels)
		}
	}
	// An empty-but-closed block on a real base parses as no labels only
	// via the identity path too (nothing to parse inside).
	if base, labels := SplitLabeled("m{}"); base != "m" || labels != nil {
		t.Errorf("SplitLabeled(m{}) = %q, %v", base, labels)
	}
}

func TestLabeledRegistrySeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(Labeled("req", Label{"status", "200"}))
	b := r.Counter(Labeled("req", Label{"status", "429"}))
	if a == b {
		t.Fatal("distinct label values share a counter")
	}
	a.Add(2)
	b.Add(1)
	snap := r.Snapshot()
	if snap.Counters[`req{status="200"}`] != 2 || snap.Counters[`req{status="429"}`] != 1 {
		t.Fatalf("snapshot %v", snap.Counters)
	}
}
