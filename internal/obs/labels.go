package obs

import (
	"sort"
	"strings"
)

// Label is one name/value dimension of a metric series. The registry's
// name-to-handle maps are flat, so labeled series are encoded into the
// metric name itself in a canonical text form ('base{k="v",k2="v2"}',
// keys sorted, values escaped); Labeled produces that form and
// SplitLabeled parses it back. Exporters that understand dimensions
// (the Prometheus renderer in internal/telemetry) split the name; the
// flat exporters in this package just carry the canonical string
// through, which stays deterministic because the encoding is.
type Label struct {
	Key   string
	Value string
}

// Labeled renders a canonical labeled metric name. With no labels it
// returns base unchanged, so unlabeled call sites pay nothing. Label
// keys are sorted; values are escaped Prometheus-style (backslash,
// double quote, newline), making the encoding injective and the
// resulting name a stable registry key.
func Labeled(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabeled parses a canonical labeled name back into its base and
// labels. Names without a label block (or with a malformed one) are
// returned whole with nil labels — an unlabeled series is the common
// case and must never be mangled.
func SplitLabeled(name string) (string, []Label) {
	open := strings.IndexByte(name, '{')
	if open <= 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base, block := name[:open], name[open+1:len(name)-1]
	var labels []Label
	for len(block) > 0 {
		eq := strings.Index(block, `="`)
		if eq < 0 {
			return name, nil
		}
		key := block[:eq]
		rest := block[eq+2:]
		val, n, ok := unescapeLabelValue(rest)
		if !ok {
			return name, nil
		}
		labels = append(labels, Label{Key: key, Value: val})
		block = rest[n:]
		if strings.HasPrefix(block, ",") {
			block = block[1:]
		} else if block != "" {
			return name, nil
		}
	}
	return base, labels
}

// escapeLabelValue applies the Prometheus text-format label escaping.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLabelValue reads an escaped value up to its closing quote,
// returning the value, the bytes consumed (including the quote), and
// whether the block was well-formed.
func unescapeLabelValue(s string) (string, int, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, true
		case '\\':
			if i+1 >= len(s) {
				return "", 0, false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, false
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, false
}
