package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildFixture constructs a small deterministic trace on a fake clock:
// a root compile span, a greedy child, a predict child with one worker
// lane carrying a task span and a cache-hit event, plus a few metrics.
func buildFixture() *Trace {
	clk := newFakeClock(time.Millisecond)
	tr := NewWithClock(clk)
	root := tr.StartSpan(nil, "compile", Str("method", "hybrid"))
	greedy := tr.StartSpan(root, "greedy")
	greedy.End()
	predict := tr.StartSpan(root, "predict")
	w := tr.StartSpan(predict, "worker", Int("worker", 1))
	w.SetLane(1)
	task := tr.StartSpan(w, "predictATA", Int("checkpoint", 0))
	tr.Event(task, "cache.hit", Str("key", "grid8"))
	task.End()
	w.End()
	predict.End()
	root.End()
	m := tr.Metrics()
	m.Counter("cache.hits").Add(3)
	m.Counter("cache.misses").Add(1)
	m.Gauge("solver.open_set").Set(42)
	m.Histogram("pool.wait_us").Observe(5)
	m.Histogram("pool.wait_us").Observe(9)
	return tr
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.Unit)
	}
	// 5 spans + 1 instant event + 2 counters + 1 gauge as "C" samples.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
	}
	if phases["X"] != 5 || phases["i"] != 1 || phases["C"] != 3 {
		t.Fatalf("phase counts = %v, want X:5 i:1 C:3", phases)
	}
}

func TestWriteChromeNilTrace(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-trace Chrome output invalid: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace produced %d events", len(doc.TraceEvents))
	}
}

func TestWriteJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("JSONL line invalid: %v\n%s", err, sc.Text())
		}
		ty, _ := rec["type"].(string)
		types[ty]++
		if _, ok := rec["name"].(string); !ok {
			t.Fatalf("record missing name: %v", rec)
		}
	}
	if types["span"] != 5 || types["event"] != 1 || types["counter"] != 2 ||
		types["gauge"] != 1 || types["hist"] != 1 {
		t.Fatalf("record type counts = %v", types)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// The fake clock steps 1ms per read, so every duration below is exact.
	want := strings.Join([]string{
		"compile 10ms method=hybrid",
		"  greedy 1ms",
		"  predict 6ms",
		"    worker 4ms worker=1 lane=1",
		"      predictATA 2ms checkpoint=0 lane=1",
		"        @ cache.hit (t=7ms) key=grid8 lane=1",
		"metrics:",
		"  counter cache.hits = 3",
		"  counter cache.misses = 1",
		"  gauge solver.open_set = 42 (max 42)",
		"  hist pool.wait_us: count=2 sum=14 <=7:1 <=15:1",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("text output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteTextNilTrace(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil trace text output = %q, want empty", buf.String())
	}
}

func TestExportersDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFixture().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildFixture().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces must export byte-identical Chrome JSON")
	}
}
