package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestGaugeMaxUnderConcurrentSets hammers one gauge from many goroutines
// and checks the high-water mark is exactly the largest value ever set,
// regardless of interleaving.
func TestGaugeMaxUnderConcurrentSets(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("storm")
	const goroutines, sets = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < sets; i++ {
				// Values cycle; the global maximum across all goroutines
				// is (goroutines-1)*sets + (sets-1).
				g.Set(int64(w*sets + i))
			}
		}(w)
	}
	wg.Wait()
	want := int64((goroutines-1)*sets + sets - 1)
	if got := g.Max(); got != want {
		t.Fatalf("Max = %d, want %d", got, want)
	}
	snap := r.Snapshot()
	if snap.Gauges["storm"].Max != want {
		t.Fatalf("snapshot Max = %d, want %d", snap.Gauges["storm"].Max, want)
	}
	// The final Value is whatever Set landed last — only require that it
	// is one of the values actually written.
	if v := g.Value(); v < 0 || v > want {
		t.Fatalf("Value = %d out of written range", v)
	}
}

// TestWriteChromeUnfinishedChildSpan exports a trace whose child span
// never ended (the panic / early-return case): the document must still
// be valid JSON with the unfinished span as a zero-duration complete
// event, not a truncated or negative-duration one.
func TestWriteChromeUnfinishedChildSpan(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewWithClock(clk)
	root := tr.StartSpan(nil, "compile")
	child := tr.StartSpan(root, "schedule")
	_ = child // never ended
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome output with unfinished child is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawChild bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Dur == nil {
			t.Fatalf("complete event %q missing dur", ev.Name)
		}
		if ev.Dur != nil && *ev.Dur < 0 {
			t.Fatalf("event %q has negative duration %v", ev.Name, *ev.Dur)
		}
		if ev.Name == "schedule" {
			sawChild = true
			if *ev.Dur != 0 {
				t.Fatalf("unfinished child duration = %v, want 0", *ev.Dur)
			}
		}
	}
	if !sawChild {
		t.Fatal("unfinished child span missing from export")
	}
}
