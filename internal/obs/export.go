package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// usOf converts a span offset to Chrome's native microsecond unit,
// keeping sub-microsecond resolution as a fraction.
func usOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// argsOf renders span attributes as a JSON object; encoding/json sorts map
// keys, so the output is deterministic regardless of attribute order.
func argsOf(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// chromeEvent is one entry of the trace_event JSON format understood by
// chrome://tracing and Perfetto (legacy JSON import).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the trace as Chrome trace_event JSON — load the file
// in chrome://tracing or ui.perfetto.dev. Spans become complete ("X")
// events, instant events "i" markers, and every counter/gauge one final
// counter ("C") sample at the trace's last timestamp. A nil trace writes
// an empty-but-valid document.
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	spans := t.Snapshot()
	var last time.Duration
	for i := range spans {
		s := &spans[i]
		if s.Stop > last {
			last = s.Stop
		}
		ev := chromeEvent{
			Name: s.Name, Cat: "ataqc", Ts: usOf(s.Start),
			Pid: 1, Tid: s.Lane, Args: argsOf(s.Attrs),
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			d := usOf(s.Stop - s.Start)
			ev.Dur = &d
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	if t != nil {
		m := t.Metrics().Snapshot()
		for _, name := range m.CounterNames() {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: name, Cat: "ataqc", Phase: "C", Ts: usOf(last), Pid: 1,
				Args: map[string]any{"value": m.Counters[name]},
			})
		}
		for _, name := range m.GaugeNames() {
			g := m.Gauges[name]
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: name, Cat: "ataqc", Phase: "C", Ts: usOf(last), Pid: 1,
				Args: map[string]any{"value": g.Value, "max": g.Max},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// jsonlRecord is one line of the flat event log. Type is "span", "event",
// "counter", "gauge", or "hist"; unused fields are omitted.
type jsonlRecord struct {
	Type    string             `json:"type"`
	ID      int                `json:"id,omitempty"`
	Parent  int                `json:"parent,omitempty"`
	Lane    int                `json:"lane,omitempty"`
	Name    string             `json:"name"`
	StartUs float64            `json:"startUs,omitempty"`
	DurUs   float64            `json:"durUs,omitempty"`
	Attrs   map[string]any     `json:"attrs,omitempty"`
	Value   int64              `json:"value,omitempty"`
	Max     int64              `json:"max,omitempty"`
	Hist    *HistogramSnapshot `json:"hist,omitempty"`
}

// WriteJSONL exports the trace as a flat JSONL event log: one
// self-describing JSON object per line — spans and events in creation
// order, then every metric. The shape is shared with `ataqc-lint -json`
// findings: line-oriented JSON that CI annotations can consume uniformly.
func (t *Trace) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		rec := jsonlRecord{
			ID: s.ID, Parent: s.Parent, Lane: s.Lane, Name: s.Name,
			StartUs: usOf(s.Start), Attrs: argsOf(s.Attrs),
		}
		if s.Instant {
			rec.Type = "event"
		} else {
			rec.Type = "span"
			rec.DurUs = usOf(s.Stop - s.Start)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if t == nil {
		return nil
	}
	m := t.Metrics().Snapshot()
	for _, name := range m.CounterNames() {
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: name, Value: m.Counters[name]}); err != nil {
			return err
		}
	}
	for _, name := range m.GaugeNames() {
		g := m.Gauges[name]
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: name, Value: g.Value, Max: g.Max}); err != nil {
			return err
		}
	}
	for _, name := range m.HistogramNames() {
		h := m.Histograms[name]
		if err := enc.Encode(jsonlRecord{Type: "hist", Name: name, Hist: &h}); err != nil {
			return err
		}
	}
	return nil
}

// WriteText exports the trace as a human-readable summary: the span tree
// indented by nesting with durations and attributes, then the metrics.
func (t *Trace) WriteText(w io.Writer) error {
	spans := t.Snapshot()
	children := map[int][]int{}
	for i, s := range spans {
		children[s.Parent] = append(children[s.Parent], i)
	}
	var b strings.Builder
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, i := range children[parent] {
			s := &spans[i]
			b.WriteString(strings.Repeat("  ", depth))
			if s.Instant {
				fmt.Fprintf(&b, "@ %s (t=%s)", s.Name, s.Start)
			} else {
				fmt.Fprintf(&b, "%s %s", s.Name, s.Stop-s.Start)
			}
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
			}
			if s.Lane != 0 {
				fmt.Fprintf(&b, " lane=%d", s.Lane)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	if t != nil {
		m := t.Metrics().Snapshot()
		if len(m.Counters)+len(m.Gauges)+len(m.Histograms) > 0 {
			b.WriteString("metrics:\n")
		}
		for _, name := range m.CounterNames() {
			fmt.Fprintf(&b, "  counter %s = %d\n", name, m.Counters[name])
		}
		for _, name := range m.GaugeNames() {
			g := m.Gauges[name]
			fmt.Fprintf(&b, "  gauge %s = %d (max %d)\n", name, g.Value, g.Max)
		}
		for _, name := range m.HistogramNames() {
			h := m.Histograms[name]
			fmt.Fprintf(&b, "  hist %s: count=%d sum=%d", name, h.Count, h.Sum)
			for _, bc := range h.Buckets {
				if bc.Upper < 0 {
					fmt.Fprintf(&b, " <=inf:%d", bc.Count)
				} else {
					fmt.Fprintf(&b, " <=%d:%d", bc.Upper, bc.Count)
				}
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
