// Package obs is the compiler's observability layer: hierarchical spans
// over the compile timeline, a metrics registry (counters, gauges,
// log-bucketed histograms), and exporters for Chrome trace_event JSON,
// flat JSONL event logs, and plain-text summary trees.
//
// The package is zero-dependency (stdlib only) and concurrency-safe: the
// hybrid compiler's parallel prediction workers append spans and bump
// metrics from many goroutines at once.
//
// Everything is nil-safe by design. A nil *Trace is the disabled state:
// every method on it (and on the nil *Span / *Registry / *Counter /
// *Gauge / *Histogram values it hands out) is a single pointer check and
// an immediate return, so instrumented code threads one *Trace pointer
// unconditionally and pays ~nothing when tracing is off — the contract
// the BenchmarkCompileNoTrace guard in internal/core enforces.
package obs

import (
	"sync"
	"time"
)

// Clock abstracts the monotonic time source so tests can inject a
// deterministic clock and golden-file the exporters byte-for-byte.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() } //vet:ignore walltime this IS the injected clock's system default

// SystemClock is the wall/monotonic clock used by default.
var SystemClock Clock = systemClock{}

// ClockOf returns the trace's injected clock, or SystemClock for a nil
// trace — so governed code can time against the same clock the spans use
// whether or not tracing is enabled.
func ClockOf(t *Trace) Clock {
	if t == nil {
		return SystemClock
	}
	return t.clock
}

// Attr is one span or event attribute. Values are restricted to the JSON
// scalars the exporters emit (string, int64, float64, bool).
type Attr struct {
	Key   string
	Value any
}

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// I64 returns an int64 attribute.
func I64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// F64 returns a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Dur returns a duration attribute in microseconds (the trace's native
// export unit).
func Dur(k string, v time.Duration) Attr {
	return Attr{Key: k + "_us", Value: float64(v.Nanoseconds()) / 1e3}
}

// Span is one timed node of the trace tree. Start/End are offsets from the
// trace origin on the trace's clock. Lane is the exporter's thread id:
// spans inherit their parent's lane so a worker's subtree renders as one
// track in chrome://tracing / Perfetto.
type Span struct {
	tr      *Trace
	ID      int // 1-based; 0 is "no span"
	Parent  int // parent span ID, 0 = top level
	Lane    int
	Name    string
	Start   time.Duration
	Stop    time.Duration
	Attrs   []Attr
	Instant bool // a zero-duration event, not a timed span
	ended   bool
}

// Trace records one compilation's span tree and owns its metrics registry.
// The zero value is not usable; construct with New or NewWithClock. A nil
// *Trace is the disabled tracer.
type Trace struct {
	clock Clock
	reg   *Registry

	mu    sync.Mutex
	start time.Time
	spans []*Span
}

// New returns an enabled trace on the system clock.
func New() *Trace { return NewWithClock(SystemClock) }

// NewWithClock returns an enabled trace whose timestamps come from c.
func NewWithClock(c Clock) *Trace {
	if c == nil {
		c = SystemClock
	}
	return &Trace{clock: c, reg: NewRegistry(), start: c.Now()}
}

// Enabled reports whether the trace records anything (nil = disabled).
func (t *Trace) Enabled() bool { return t != nil }

// Metrics returns the trace's registry (nil for a disabled trace; the
// registry's methods are nil-safe in turn).
func (t *Trace) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Origin returns the trace's start time on its clock.
func (t *Trace) Origin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan opens a span under parent (nil parent = top level) and returns
// it; the caller ends it with Span.End. Safe from concurrent goroutines.
func (t *Trace) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	now := t.clock.Now()
	t.mu.Lock()
	s := &Span{tr: t, ID: len(t.spans) + 1, Name: name, Start: now.Sub(t.start), Attrs: attrs}
	if parent != nil {
		s.Parent = parent.ID
		s.Lane = parent.Lane
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Event records an instant (zero-duration) marker under parent.
func (t *Trace) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	s := t.StartSpan(parent, name, attrs...)
	t.mu.Lock()
	s.Stop = s.Start
	s.Instant = true
	s.ended = true
	t.mu.Unlock()
}

// End closes the span at the trace clock's current time. Ending twice
// keeps the first end time; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.clock.Now()
	s.tr.mu.Lock()
	if !s.ended {
		s.Stop = now.Sub(s.tr.start)
		s.ended = true
	}
	s.tr.mu.Unlock()
}

// SetAttrs appends attributes to the span (typically results computed
// after StartSpan). Nil-safe.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, attrs...)
	s.tr.mu.Unlock()
}

// SetLane pins the span (and, by inheritance, its future children) to an
// exporter lane — the hybrid compiler gives each prediction worker its own
// lane so the fan-out renders as parallel tracks. Nil-safe.
func (s *Span) SetLane(lane int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Lane = lane
	s.tr.mu.Unlock()
}

// Snapshot returns a deep copy of the span list in creation order (ID
// order). Unended spans are reported with Stop == Start. Exporters and
// tests read through this so a still-running compile can be inspected
// without racing the writers.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		c := *s
		c.tr = nil
		c.Attrs = append([]Attr(nil), s.Attrs...)
		if !s.ended {
			c.Stop = c.Start
		}
		out[i] = c
	}
	return out
}
