package obs

import (
	"sync"
	"testing"
)

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, // non-positive collapse to bucket 0
		{1, 1},         // [1,1]
		{2, 2}, {3, 2}, // [2,3]
		{4, 3}, {7, 3}, // [4,7]
		{8, 4}, {15, 4}, // [8,15]
		{16, 5},
		{1 << 62, 63}, {1<<63 - 1, 63}, // overflow bucket
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if u := BucketUpper(0); u != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", u)
	}
	if u := BucketUpper(1); u != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", u)
	}
	if u := BucketUpper(2); u != 3 {
		t.Errorf("BucketUpper(2) = %d, want 3", u)
	}
	if u := BucketUpper(4); u != 15 {
		t.Errorf("BucketUpper(4) = %d, want 15", u)
	}
	if u := BucketUpper(HistBuckets - 1); u != -1 {
		t.Errorf("overflow bucket upper = %d, want -1", u)
	}
	// Every observable value must land in a bucket whose upper edge covers
	// it: v <= BucketUpper(BucketIndex(v)) wherever the edge is bounded.
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1 << 40} {
		i := BucketIndex(v)
		if u := BucketUpper(i); u >= 0 && v > u {
			t.Errorf("value %d lands in bucket %d with upper %d", v, i, u)
		}
		if i > 1 {
			if lower := BucketUpper(i-1) + 1; v < lower {
				t.Errorf("value %d lands in bucket %d but is below its lower edge %d", v, i, lower)
			}
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 || s.Sum != 1021 {
		t.Fatalf("count=%d sum=%d, want 7/1021", s.Count, s.Sum)
	}
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b.Upper] = b.Count
	}
	want := map[int64]int64{0: 1, 1: 1, 3: 2, 7: 1, 15: 1, 1023: 1}
	for u, n := range want {
		if got[u] != n {
			t.Errorf("bucket <=%d has %d observations, want %d", u, got[u], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got buckets %v, want %v", got, want)
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(12)
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("gauge value = %d, want 3", g.Value())
	}
	if g.Max() != 12 {
		t.Fatalf("gauge max = %d, want 12", g.Max())
	}
}

func TestRegistryStableHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same counter name must return the same handle")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same gauge name must return the same handle")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("same histogram name must return the same handle")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("hits").Add(1)
				r.Gauge("open").Set(int64(i))
				r.Histogram("wait").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["hits"] != 800 {
		t.Fatalf("hits = %d, want 800", s.Counters["hits"])
	}
	if s.Histograms["wait"].Count != 800 {
		t.Fatalf("wait count = %d, want 800", s.Histograms["wait"].Count)
	}
	if s.Gauges["open"].Max != 99 {
		t.Fatalf("open max = %d, want 99", s.Gauges["open"].Max)
	}
}

func TestSnapshotNameOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(1)
	r.Counter("mid").Add(1)
	snap := r.Snapshot()
	names := snap.CounterNames()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("CounterNames = %v, want sorted", names)
	}
}
