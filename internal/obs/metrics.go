package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are nil-safe
// and lock-free, so hot loops resolve a handle once and Add from any
// goroutine.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric that also tracks its high-water mark —
// useful for sampled sizes like the A* open set, where the maximum is the
// interesting number.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the gauge's current value and folds it into the maximum.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last set value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// HistBuckets is the fixed bucket count of every Histogram. Buckets are
// log-scale (powers of two): bucket 0 holds values <= 0, bucket i >= 1
// holds values in [2^(i-1), 2^i - 1], and the last bucket absorbs
// everything beyond — 2^62 µs is ~146 millennia, comfortably past any
// compile.
const HistBuckets = 64

// Histogram is a fixed log-scale (power-of-two) histogram. Observations
// are lock-free atomic adds; nil histograms swallow observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i > HistBuckets-1 {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper edge of bucket i (-1 means
// unbounded, for the overflow bucket; 0 for bucket 0).
func BucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= HistBuckets-1:
		return -1
	default:
		return 1<<uint(i) - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketIndex(v)].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram, with only the
// non-empty buckets materialised.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount pairs a bucket's inclusive upper edge (-1 = unbounded) with
// its observation count.
type BucketCount struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: BucketUpper(i), Count: n})
		}
	}
	return s
}

// Registry names and owns the metrics of one trace. Lookup methods create
// on first use and return stable handles, so hot paths resolve once
// up front; every method is nil-safe (a nil registry hands out nil
// metrics, whose operations are no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is a point-in-time copy of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// MetricsSnapshot is a point-in-time copy of a whole registry. The Names
// slices are sorted so exporters are deterministic.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeSnapshot
	Histograms map[string]HistogramSnapshot
}

// CounterNames returns the sorted counter names.
func (m *MetricsSnapshot) CounterNames() []string { return sortedKeys(m.Counters) }

// GaugeNames returns the sorted gauge names.
func (m *MetricsSnapshot) GaugeNames() []string { return sortedKeys(m.Gauges) }

// HistogramNames returns the sorted histogram names.
func (m *MetricsSnapshot) HistogramNames() []string { return sortedKeys(m.Histograms) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	//vet:ignore maprange collected keys are sorted before returning
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every metric. Nil-safe (returns an empty snapshot).
func (r *Registry) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//vet:ignore maprange map-to-map copy, order-independent
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	//vet:ignore maprange map-to-map copy, order-independent
	for k, g := range r.gauges {
		s.Gauges[k] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	//vet:ignore maprange map-to-map copy, order-independent
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}
