package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want (2,5)", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatalf("Other endpoints wrong for %v", e)
	}
}

func TestEdgeOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	NewEdge(1, 2).Other(3)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge(0,1) false")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edge present")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestCompleteGraph(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 10} {
		g := Complete(n)
		want := n * (n - 1) / 2
		if g.M() != want {
			t.Errorf("K_%d has %d edges, want %d", n, g.M(), want)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != n-1 {
				t.Errorf("K_%d degree(%d) = %d", n, v, g.Degree(v))
			}
		}
		if n >= 2 && g.Density() != 1 {
			t.Errorf("K_%d density = %v", n, g.Density())
		}
	}
}

func TestPathAndCycle(t *testing.T) {
	p := Path(5)
	if p.M() != 4 {
		t.Fatalf("Path(5) edges = %d", p.M())
	}
	c := Cycle(5)
	if c.M() != 5 {
		t.Fatalf("Cycle(5) edges = %d", c.M())
	}
	for v := 0; v < 5; v++ {
		if c.Degree(v) != 2 {
			t.Fatalf("Cycle degree(%d) = %d", v, c.Degree(v))
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(6)
	d := g.BFSFrom(0)
	for v := 0; v < 6; v++ {
		if d[v] != v {
			t.Fatalf("dist(0,%d) = %d, want %d", v, d[v], v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.BFSFrom(0)
	if d[2] != -1 {
		t.Fatalf("dist to isolated vertex = %d, want -1", d[2])
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestAllPairsDistancesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GnpConnected(20, 0.2, rng)
	d := g.AllPairsDistances()
	for u := 0; u < 20; u++ {
		if d[u][u] != 0 {
			t.Fatalf("d[%d][%d] = %d", u, u, d[u][u])
		}
		for v := 0; v < 20; v++ {
			if d[u][v] != d[v][u] {
				t.Fatalf("asymmetric distance %d,%d", u, v)
			}
			if d[u][v] < 0 {
				t.Fatalf("connected graph has unreachable pair %d,%d", u, v)
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("second component %v", comps[1])
	}
	if len(comps[2]) != 2 || comps[2][0] != 4 {
		t.Fatalf("third component %v", comps[2])
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, back := g.InducedSubgraph([]int{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K_3 wrong: n=%d m=%d", sub.N(), sub.M())
	}
	if back[0] != 1 || back[1] != 3 || back[2] != 4 {
		t.Fatalf("back map %v", back)
	}
}

func TestGnpDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Gnp(200, 0.3, rng)
	d := g.Density()
	if d < 0.25 || d > 0.35 {
		t.Fatalf("G(200,0.3) density = %v, outside [0.25,0.35]", d)
	}
}

func TestGnpConnectedIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := GnpConnected(30, 0.05, rng)
		if !g.IsConnected() {
			t.Fatalf("sample %d not connected", i)
		}
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, d int }{{10, 3}, {16, 4}, {64, 19}, {20, 0}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("(%d,%d): degree(%d)=%d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestRegularByDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := RegularByDensity(64, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Density(); d < 0.25 || d > 0.35 {
		t.Fatalf("density %v not near 0.3", d)
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Gnp(40, 0.3, rng)
	colors := GreedyColoring(g)
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			t.Fatalf("edge %v monochromatic (colour %d)", e, colors[e.U])
		}
	}
}

func TestGreedyColoringBipartiteUsesFewColors(t *testing.T) {
	// A path is 2-colourable and largest-first greedy achieves it.
	colors := GreedyColoring(Path(20))
	max := 0
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	if max > 1 {
		t.Fatalf("path coloured with %d colours", max+1)
	}
}

func TestColorClassesAndLargest(t *testing.T) {
	colors := []int{0, 1, 0, 2, 0, 1}
	classes := ColorClasses(colors)
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	lg := LargestColorClass(colors)
	if len(lg) != 3 || lg[0] != 0 || lg[1] != 2 || lg[2] != 4 {
		t.Fatalf("largest class %v", lg)
	}
}

func TestMaxWeightMatchingDisjoint(t *testing.T) {
	cand := []WeightedEdge{
		{NewEdge(0, 1), 1.0},
		{NewEdge(1, 2), 5.0},
		{NewEdge(2, 3), 1.0},
		{NewEdge(3, 4), 5.0},
	}
	idx := MaxWeightMatching(cand)
	usedV := map[int]bool{}
	total := 0.0
	for _, i := range idx {
		e := cand[i].Edge
		if usedV[e.U] || usedV[e.V] {
			t.Fatalf("matching not vertex-disjoint at %v", e)
		}
		usedV[e.U], usedV[e.V] = true, true
		total += cand[i].W
	}
	if total < 10 {
		t.Fatalf("matching weight %v, want 10 (edges 1 and 3)", total)
	}
}

func TestMaxWeightMatchingImprovement(t *testing.T) {
	// Greedy picks the middle edge (weight 3); optimal picks the two side
	// edges (2+2=4). The improvement sweep must recover it.
	cand := []WeightedEdge{
		{NewEdge(0, 1), 2.0},
		{NewEdge(1, 2), 3.0},
		{NewEdge(2, 3), 2.0},
	}
	idx := MaxWeightMatching(cand)
	total := 0.0
	for _, i := range idx {
		total += cand[i].W
	}
	if total < 4 {
		t.Fatalf("matching weight %v, want 4", total)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if uf.Union(1, 0) {
		t.Fatal("re-union succeeded")
	}
	uf.Union(2, 3)
	if uf.SameSet(0, 2) {
		t.Fatal("0 and 2 merged unexpectedly")
	}
	uf.Union(1, 3)
	if !uf.SameSet(0, 2) {
		t.Fatal("transitive union failed")
	}
	if uf.SameSet(0, 4) {
		t.Fatal("singleton merged")
	}
}

// Property: matchings returned by MaxWeightMatching are always vertex-disjoint
// subsets of the candidates, for random candidate sets.
func TestMaxWeightMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := rng.Intn(40)
		cand := make([]WeightedEdge, 0, m)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			cand = append(cand, WeightedEdge{NewEdge(u, v), rng.Float64()})
		}
		idx := MaxWeightMatching(cand)
		used := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= len(cand) {
				return false
			}
			e := cand[i].Edge
			if used[e.U] || used[e.V] {
				return false
			}
			used[e.U], used[e.V] = true, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges.
func TestBFSTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GnpConnected(15, 0.2, rng)
		d := g.AllPairsDistances()
		for _, e := range g.Edges() {
			for w := 0; w < g.N(); w++ {
				if abs(d[e.U][w]-d[e.V][w]) > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()+1 {
		t.Fatal("clone edge count wrong")
	}
}
