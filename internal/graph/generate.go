package graph

import (
	"fmt"
	"math/rand"
)

// Gnp returns an Erdős–Rényi random graph G(n, p): every clique edge is
// present independently with probability p. The benchmark suites follow the
// paper and call p the "density".
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GnpConnected returns a connected G(n,p) sample: it draws G(n,p) and then
// links each extra connected component to the first with one random edge.
// The paper's benchmarks assume a single interacting region per graph size.
func GnpConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := Gnp(n, p, rng)
	comps := g.ConnectedComponents()
	for i := 1; i < len(comps); i++ {
		u := comps[0][rng.Intn(len(comps[0]))]
		v := comps[i][rng.Intn(len(comps[i]))]
		g.AddEdge(u, v)
	}
	return g
}

// RandomRegular returns a random d-regular graph on n vertices. For sparse
// degrees it uses the pairing (configuration) model with restarts; for dense
// degrees — where the pairing model almost never avoids collisions — it
// starts from a circulant d-regular graph and randomises it with double-edge
// swaps (a uniform-ish Markov chain that exactly preserves degrees).
// n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: invalid degree %d for %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d = %d*%d is odd", n, d)
	}
	if d == 0 {
		return New(n), nil
	}
	if d <= 4 {
		const maxAttempts = 2000
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if g, ok := tryPairing(n, d, rng); ok {
				return g, nil
			}
		}
		// Fall through to the swap-based construction.
	}
	return circulantShuffled(n, d, rng), nil
}

// circulantShuffled builds the circulant d-regular graph (offsets 1..d/2,
// plus the antipodal offset n/2 when d is odd) and applies ~20·m random
// double-edge swaps.
func circulantShuffled(n, d int, rng *rand.Rand) *Graph {
	type edge = Edge
	set := make(map[edge]struct{})
	var edges []edge
	add := func(u, v int) {
		e := NewEdge(u, v)
		if _, ok := set[e]; ok || u == v {
			return
		}
		set[e] = struct{}{}
		edges = append(edges, e)
	}
	for off := 1; off <= d/2; off++ {
		for v := 0; v < n; v++ {
			add(v, (v+off)%n)
		}
	}
	if d%2 == 1 { // n must be even here (n*d even)
		for v := 0; v < n/2; v++ {
			add(v, v+n/2)
		}
	}
	// Double-edge swaps: (a,b),(c,e) -> (a,c),(b,e) when valid.
	for t := 0; t < 20*len(edges); t++ {
		i, j := rng.Intn(len(edges)), rng.Intn(len(edges))
		if i == j {
			continue
		}
		e1, e2 := edges[i], edges[j]
		a, b, c, e := e1.U, e1.V, e2.U, e2.V
		if rng.Intn(2) == 0 {
			c, e = e, c
		}
		if a == c || b == e {
			continue
		}
		n1, n2 := NewEdge(a, c), NewEdge(b, e)
		if _, ok := set[n1]; ok {
			continue
		}
		if _, ok := set[n2]; ok {
			continue
		}
		delete(set, e1)
		delete(set, e2)
		set[n1] = struct{}{}
		set[n2] = struct{}{}
		edges[i], edges[j] = n1, n2
	}
	g := New(n)
	//vet:ignore maprange set insertion is order-independent
	for e := range set {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// MustRandomRegular is RandomRegular but panics on error; intended for
// benchmark setup with known-feasible parameters.
func MustRandomRegular(n, d int, rng *rand.Rand) *Graph {
	g, err := RandomRegular(n, d, rng)
	if err != nil {
		panic(fmt.Sprintf("graph: infeasible regular graph (n=%d, d=%d): %v", n, d, err))
	}
	return g
}

func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	// Stubs: vertex v owns stubs v*d .. v*d+d-1.
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false // collision: restart
		}
		g.AddEdge(u, v)
	}
	return g, true
}

// RegularByDensity returns a random regular graph whose density is as close
// as possible to the requested density (the paper "sets the density of the
// regular graph close to 0.3 or 0.5 by varying the degree of each vertex").
func RegularByDensity(n int, density float64, rng *rand.Rand) (*Graph, error) {
	d := int(density*float64(n-1) + 0.5)
	if d >= n {
		d = n - 1
	}
	if d < 1 {
		d = 1
	}
	if n*d%2 != 0 {
		// Prefer the adjacent even-product degree closest in density.
		if d+1 < n && n*(d+1)%2 == 0 {
			d++
		} else if d > 1 {
			d--
		}
	}
	return RandomRegular(n, d, rng)
}
