// Package graph provides the undirected-graph substrate used throughout the
// compiler: problem graphs (QAOA interaction graphs), coupling graphs, and
// the algorithms the paper's components rely on (BFS distances, connected
// components, greedy colouring, weighted matching, random generators).
//
// Vertices are dense integers 0..N-1. Edges are unordered pairs.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an unordered pair of vertices. The canonical form has U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the canonical (U < V) form of the edge {u, v}.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint; callers must only pass endpoints.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: %d is not an endpoint of %v", w, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph over vertices 0..N-1.
// The zero value is an empty graph with no vertices; use New.
type Graph struct {
	n   int
	adj [][]int
	set map[Edge]struct{}
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
		set: make(map[Edge]struct{}),
	}
}

// FromEdges builds a graph on n vertices with the given edges.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.set) }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicates are
// ignored. It panics on out-of-range vertices.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		return
	}
	e := NewEdge(u, v)
	if _, ok := g.set[e]; ok {
		return
	}
	g.set[e] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.set[NewEdge(u, v)]
	return ok
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns all edges in canonical order, sorted for determinism.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.set))
	//vet:ignore maprange collected edges are sorted before returning
	for e := range g.set {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	//vet:ignore maprange set insertion is order-independent
	for e := range g.set {
		c.AddEdge(e.U, e.V)
	}
	return c
}

// Density returns 2M / (N(N-1)), the fraction of clique edges present.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(2*g.M()) / float64(g.n*(g.n-1))
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// BFSFrom returns the unweighted shortest-path distance from src to every
// vertex. Unreachable vertices get -1.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the full unweighted distance matrix via
// repeated BFS: O(N·(N+M)). Unreachable pairs get -1.
func (g *Graph) AllPairsDistances() [][]int {
	d := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.BFSFrom(v)
	}
	return d
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has at most one connected component
// among its non-isolated vertices and no unreachable vertex overall.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices (n >= 3).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// relabelled to 0..len(vs)-1 in the order given, along with the mapping
// from new labels back to original vertices.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	idx := make(map[int]int, len(vs))
	for i, v := range vs {
		idx[v] = i
	}
	sub := New(len(vs))
	for i, v := range vs {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && j > i {
				sub.AddEdge(i, j)
			}
		}
	}
	back := make([]int, len(vs))
	copy(back, vs)
	return sub, back
}
