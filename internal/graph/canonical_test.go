package graph

import (
	"math/rand"
	"testing"
)

// randomPerm returns a uniform random bijection on [0, n).
func randomPerm(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}

// latticeGraph builds a rows x cols grid-lattice interaction graph.
func latticeGraph(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// canonicalFamilies enumerates the graph families the cache's hashing
// must canonicalize: ER at three densities, random regular, and lattice.
func canonicalFamilies(seed int64) map[string]*Graph {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*Graph{
		"er-0.2":    GnpConnected(14, 0.2, rng),
		"er-0.5":    GnpConnected(12, 0.5, rng),
		"er-0.8":    GnpConnected(10, 0.8, rng),
		"regular-3": MustRandomRegular(12, 3, rng),
		"lattice":   latticeGraph(3, 4),
	}
}

// TestCanonicalFormRelabelingInvariant is the cache-sharing property:
// every random relabeling of a graph hashes to the same value, and the
// canonical permutations actually witness it — relabeling each graph by
// its own perm yields the identical edge set.
func TestCanonicalFormRelabelingInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for name, g := range canonicalFamilies(seed) {
			permG, hashG := CanonicalForm(g)
			canonG := Relabel(g, permG)
			rng := rand.New(rand.NewSource(seed * 31))
			for trial := 0; trial < 6; trial++ {
				relab := randomPerm(g.N(), rng)
				h := Relabel(g, relab)
				permH, hashH := CanonicalForm(h)
				if hashH != hashG {
					t.Fatalf("%s seed=%d trial=%d: relabeled graph hashes differently", name, seed, trial)
				}
				canonH := Relabel(h, permH)
				if !sameEdges(canonG, canonH) {
					t.Fatalf("%s seed=%d trial=%d: canonical forms differ despite equal hashes", name, seed, trial)
				}
			}
		}
	}
}

// TestCanonicalFormPermIsValid pins the returned permutation's contract:
// a bijection whose application produces exactly the certificate graph.
func TestCanonicalFormPermIsValid(t *testing.T) {
	for name, g := range canonicalFamilies(7) {
		perm, _ := CanonicalForm(g)
		if len(perm) != g.N() {
			t.Fatalf("%s: perm covers %d of %d vertices", name, len(perm), g.N())
		}
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				t.Fatalf("%s: perm %v is not a bijection", name, perm)
			}
			seen[p] = true
		}
		if got := Relabel(g, perm); got.M() != g.M() {
			t.Fatalf("%s: relabeling changed edge count %d -> %d", name, g.M(), got.M())
		}
	}
}

// TestCanonicalHashNearMiss: adding or removing a single edge must
// change the hash — near-isomorphic inputs may not share cache entries.
func TestCanonicalHashNearMiss(t *testing.T) {
	for name, g := range canonicalFamilies(3) {
		base := CanonicalHash(g)
		edges := g.Edges()

		// Remove each of the first few edges.
		for i, e := range edges {
			if i >= 4 {
				break
			}
			smaller := New(g.N())
			for _, f := range edges {
				if f != e {
					smaller.AddEdge(f.U, f.V)
				}
			}
			if CanonicalHash(smaller) == base {
				t.Fatalf("%s: removing edge %v left the hash unchanged", name, e)
			}
		}

		// Add the first few absent edges.
		added := 0
		for u := 0; u < g.N() && added < 4; u++ {
			for v := u + 1; v < g.N() && added < 4; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				bigger := g.Clone()
				bigger.AddEdge(u, v)
				if CanonicalHash(bigger) == base {
					t.Fatalf("%s: adding edge (%d,%d) left the hash unchanged", name, u, v)
				}
				added++
			}
		}
	}
}

// TestCanonicalHashDistinguishesSizes: same edge structure on a larger
// vertex set (extra isolated vertices) is a different problem.
func TestCanonicalHashDistinguishesSizes(t *testing.T) {
	g := Path(5)
	padded := New(7)
	for _, e := range g.Edges() {
		padded.AddEdge(e.U, e.V)
	}
	if CanonicalHash(g) == CanonicalHash(padded) {
		t.Fatal("isolated-vertex padding did not change the hash")
	}
}

// TestCanonicalFormSymmetricGraphs exercises the individualization
// branches: cycles, cliques, and unions of equal cliques have no
// discrete refinement, so the search must branch and still converge to
// one certificate per isomorphism class.
func TestCanonicalFormSymmetricGraphs(t *testing.T) {
	cases := map[string]*Graph{
		"cycle-8":  Cycle(8),
		"clique-6": Complete(6),
		"two-k3": func() *Graph {
			g := New(6)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(0, 2)
			g.AddEdge(3, 4)
			g.AddEdge(4, 5)
			g.AddEdge(3, 5)
			return g
		}(),
	}
	rng := rand.New(rand.NewSource(11))
	for name, g := range cases {
		base := CanonicalHash(g)
		for trial := 0; trial < 8; trial++ {
			h := Relabel(g, randomPerm(g.N(), rng))
			if CanonicalHash(h) != base {
				t.Fatalf("%s trial=%d: relabeling changed the hash", name, trial)
			}
		}
	}
}

// TestCanonicalFormEmptyAndTiny covers the degenerate sizes.
func TestCanonicalFormEmptyAndTiny(t *testing.T) {
	perm, h0 := CanonicalForm(New(0))
	if perm != nil {
		t.Fatalf("empty graph returned perm %v", perm)
	}
	_, h1 := CanonicalForm(New(1))
	if h0 == h1 {
		t.Fatal("0-vertex and 1-vertex graphs hash identically")
	}
}

func sameEdges(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}
