package graph

import "sort"

// WeightedEdge is an edge with a real weight, used by the SWAP-insertion
// matching (paper §6.2: candidate SWAPs are matched so that gates land on
// low-error links; the weights encode error-rate variability).
type WeightedEdge struct {
	Edge
	W float64
}

// MaxWeightMatching returns a matching (set of vertex-disjoint edges, as
// indices into cand) that heuristically maximises total weight: greedy by
// descending weight followed by a single local-improvement sweep that tries
// replacing one chosen edge with two compatible unchosen ones.
//
// Exact maximum-weight matching (blossom) is overkill here: the candidate
// sets are per-cycle SWAP proposals of size O(frontier), and the paper's
// compiler only needs a good, fast matching each cycle.
func MaxWeightMatching(cand []WeightedEdge) []int {
	order := make([]int, len(cand))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cand[order[a]].W != cand[order[b]].W {
			return cand[order[a]].W > cand[order[b]].W
		}
		// Deterministic tie-break.
		ea, eb := cand[order[a]].Edge, cand[order[b]].Edge
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})

	used := make(map[int]int) // vertex -> chosen candidate index
	chosen := make([]bool, len(cand))
	for _, i := range order {
		e := cand[i].Edge
		if _, ok := used[e.U]; ok {
			continue
		}
		if _, ok := used[e.V]; ok {
			continue
		}
		chosen[i] = true
		used[e.U] = i
		used[e.V] = i
	}

	// One improvement sweep: for each unchosen edge blocked by exactly one
	// chosen edge, check whether dropping the blocker and adding this edge
	// plus another now-free edge increases the total weight.
	improve := func() bool {
		for i := range cand {
			if chosen[i] {
				continue
			}
			e := cand[i].Edge
			bu, okU := used[e.U]
			bv, okV := used[e.V]
			var blocker int
			switch {
			case okU && okV && bu == bv:
				blocker = bu
			case okU && !okV:
				blocker = bu
			case okV && !okU:
				blocker = bv
			default:
				continue
			}
			// Tentatively remove blocker, add i, then greedily add the best
			// edge that uses the freed endpoint(s).
			be := cand[blocker].Edge
			delete(used, be.U)
			delete(used, be.V)
			used[e.U], used[e.V] = i, i
			gain := cand[i].W - cand[blocker].W
			extra := -1
			for j := range cand {
				if chosen[j] || j == i {
					continue
				}
				f := cand[j].Edge
				if _, ok := used[f.U]; ok {
					continue
				}
				if _, ok := used[f.V]; ok {
					continue
				}
				if extra < 0 || cand[j].W > cand[extra].W {
					extra = j
				}
			}
			if extra >= 0 {
				gain += cand[extra].W
			}
			if gain > 1e-12 {
				chosen[blocker] = false
				chosen[i] = true
				if extra >= 0 {
					chosen[extra] = true
					f := cand[extra].Edge
					used[f.U], used[f.V] = extra, extra
				}
				return true
			}
			// Revert.
			delete(used, e.U)
			delete(used, e.V)
			used[be.U], used[be.V] = blocker, blocker
		}
		return false
	}
	for sweep := 0; sweep < 4 && improve(); sweep++ {
	}

	var out []int
	for i, ok := range chosen {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// UnionFind is a standard disjoint-set structure with path compression and
// union by size.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// SameSet reports whether a and b are in the same set.
func (uf *UnionFind) SameSet(a, b int) bool { return uf.Find(a) == uf.Find(b) }
