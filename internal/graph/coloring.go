package graph

import "sort"

// GreedyColoring colours the graph with the largest-degree-first greedy
// heuristic and returns one colour per vertex (colours are 0-based, dense).
// The compiler's gate-scheduling module (paper §6.2) colours a conflict
// graph whose nodes are hardware-compliant gates and picks the largest
// colour class to schedule in the next cycle.
func GreedyColoring(g *Graph) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	var used []bool
	for _, v := range order {
		used = used[:0]
		for range g.Neighbors(v) {
			used = append(used, false)
		}
		used = append(used, false) // colour Degree(v) always available
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// ColorClasses groups vertices by colour; classes[c] lists the vertices of
// colour c, ascending.
func ColorClasses(colors []int) [][]int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	classes := make([][]int, max+1)
	for v, c := range colors {
		if c >= 0 {
			classes[c] = append(classes[c], v)
		}
	}
	return classes
}

// LargestColorClass returns the vertices of the most populous colour class.
func LargestColorClass(colors []int) []int {
	classes := ColorClasses(colors)
	best := 0
	for i, cl := range classes {
		if len(cl) > len(classes[best]) {
			best = i
		}
	}
	if len(classes) == 0 {
		return nil
	}
	return classes[best]
}
