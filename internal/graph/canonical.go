package graph

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// canonicalBudget bounds how many discrete leaves the individualization-
// refinement search in CanonicalForm may visit. Interaction graphs are
// small (the service caps them at ~1024 vertices) and almost always
// rigid after one round of refinement, so the budget exists only to keep
// adversarially symmetric inputs (unions of cliques, circulants) from
// going exponential. Exhaustion degrades to a deterministic — but
// labeling-dependent — certificate; see CanonicalForm's soundness note.
const canonicalBudget = 2048

// CanonicalForm computes a canonical labeling of g: a permutation perm
// with perm[v] = the canonical index of vertex v, and a hash over the
// edge set rewritten into canonical indices.
//
// Two labelings of the same graph produce the same hash whenever the
// search completes within its budget (the common case: one refinement
// round plus a handful of branches). The converse is unconditional and
// is what cache correctness rests on: equal hashes imply the two graphs
// are isomorphic, because the hash covers the full canonical edge list —
// equal certificates mean perm_a(A) and perm_b(B) are the same labeled
// graph, so perm_b⁻¹∘perm_a is an isomorphism. A budget-exhausted search
// can therefore only cause cache misses, never false sharing.
//
// The algorithm is 1-WL color refinement plus individualization: refine
// degrees to a stable partition, and while any color class holds more
// than one vertex, branch on each member of the first such class,
// keeping the branch whose fully-refined certificate is lexicographically
// smallest.
func CanonicalForm(g *Graph) (perm []int, hash [32]byte) {
	n := g.N()
	if n == 0 {
		return nil, sha256.Sum256(certificate(g, nil))
	}
	s := &canonSearch{g: g, budget: canonicalBudget}
	init := make([]int, n)
	for v := 0; v < n; v++ {
		init[v] = g.Degree(v)
	}
	s.search(init)
	return s.bestPerm, sha256.Sum256(s.bestCert)
}

// CanonicalHash is CanonicalForm without the permutation.
func CanonicalHash(g *Graph) [32]byte {
	_, h := CanonicalForm(g)
	return h
}

type canonSearch struct {
	g        *Graph
	budget   int
	bestCert []byte
	bestPerm []int
}

// search refines colors and either records the discrete partition's
// certificate or branches on the first non-singleton color class. The
// first branch of every class is always taken so at least one leaf is
// reached even with a spent budget; alternatives are pruned once the
// budget runs out.
func (s *canonSearch) search(colors []int) {
	colors = s.refine(colors)
	cell := firstNonSingleton(colors)
	if cell == nil {
		s.budget--
		perm := make([]int, len(colors))
		copy(perm, colors)
		cert := certificate(s.g, perm)
		if s.bestCert == nil || bytes.Compare(cert, s.bestCert) < 0 {
			s.bestCert, s.bestPerm = cert, perm
		}
		return
	}
	for i, v := range cell {
		if i > 0 && s.budget <= 0 {
			return
		}
		s.search(individualize(colors, v))
	}
}

// refine runs 1-WL color refinement to a fixpoint: each round recolors
// every vertex by (its color, the sorted multiset of its neighbors'
// colors), with new color ids assigned in sorted signature order so the
// result is independent of the input labeling. The partition only ever
// splits, so the fixpoint is reached when the class count stops growing.
func (s *canonSearch) refine(colors []int) []int {
	n := s.g.N()
	cur := normalizeColors(colors)
	classes := countClasses(cur)
	sigs := make([]string, n)
	var buf []byte
	for {
		for v := 0; v < n; v++ {
			nb := make([]int, 0, s.g.Degree(v))
			for _, w := range s.g.Neighbors(v) {
				nb = append(nb, cur[w])
			}
			sort.Ints(nb)
			buf = buf[:0]
			buf = binary.AppendUvarint(buf, uint64(cur[v]))
			for _, c := range nb {
				buf = binary.AppendUvarint(buf, uint64(c+1))
			}
			sigs[v] = string(buf)
		}
		next := normalizeStrings(sigs)
		nc := countClasses(next)
		if nc == classes {
			return next
		}
		cur, classes = next, nc
	}
}

// firstNonSingleton returns the members (ascending vertex order) of the
// lowest color class with more than one vertex, or nil when the
// partition is discrete.
func firstNonSingleton(colors []int) []int {
	counts := make([]int, len(colors))
	for _, c := range colors {
		counts[c]++
	}
	target := -1
	for c, k := range counts {
		if k > 1 {
			target = c
			break
		}
	}
	if target < 0 {
		return nil
	}
	var cell []int
	for v, c := range colors {
		if c == target {
			cell = append(cell, v)
		}
	}
	return cell
}

// individualize splits v out of its color class, ordering it before the
// remainder: every color doubles and v's drops by one, which the next
// refine round renormalizes.
func individualize(colors []int, v int) []int {
	out := make([]int, len(colors))
	for w, c := range colors {
		out[w] = 2 * c
	}
	out[v]--
	return out
}

// normalizeColors renumbers colors to 0..k-1 preserving their order.
func normalizeColors(colors []int) []int {
	uniq := append([]int(nil), colors...)
	sort.Ints(uniq)
	uniq = dedupInts(uniq)
	rank := make(map[int]int, len(uniq))
	for i, c := range uniq {
		rank[c] = i
	}
	out := make([]int, len(colors))
	for v, c := range colors {
		out[v] = rank[c]
	}
	return out
}

// normalizeStrings assigns each distinct signature its rank in sorted
// order — the step that keeps refinement labeling-independent.
func normalizeStrings(sigs []string) []int {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	uniq = dedupStrings(uniq)
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	out := make([]int, len(sigs))
	for v, s := range sigs {
		out[v] = rank[s]
	}
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func countClasses(colors []int) int {
	seen := make([]bool, len(colors))
	n := 0
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// certificate serializes g under perm: vertex count, edge count, then
// the relabeled edge list sorted — a complete, order-free description of
// the permuted graph.
func certificate(g *Graph, perm []int) []byte {
	edges := g.Edges()
	type pair struct{ u, v int }
	ps := make([]pair, len(edges))
	for i, e := range edges {
		u, v := perm[e.U], perm[e.V]
		if u > v {
			u, v = v, u
		}
		ps[i] = pair{u, v}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].u != ps[j].u {
			return ps[i].u < ps[j].u
		}
		return ps[i].v < ps[j].v
	})
	out := binary.AppendUvarint(nil, uint64(g.N()))
	out = binary.AppendUvarint(out, uint64(len(ps)))
	for _, p := range ps {
		out = binary.AppendUvarint(out, uint64(p.u))
		out = binary.AppendUvarint(out, uint64(p.v))
	}
	return out
}

// Relabel returns the graph with vertex v renamed to perm[v]. perm must
// be a bijection on [0, g.N()).
func Relabel(g *Graph, perm []int) *Graph {
	out := New(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(perm[e.U], perm[e.V])
	}
	return out
}
