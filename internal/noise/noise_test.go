package noise

import (
	"math"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func TestIdealModelZeroError(t *testing.T) {
	a := arch.Line(4)
	m := Ideal(a)
	if m.EdgeError(1, 2) != 0 {
		t.Fatal("ideal edge error nonzero")
	}
	c := circuit.New(4)
	c.Append(circuit.NewSwap(0, 1), circuit.NewZZ(1, 2, 0.3, graph.NewEdge(1, 2)))
	if f := m.Fidelity(c); f != 1 {
		t.Fatalf("ideal fidelity %v", f)
	}
}

func TestUniformModel(t *testing.T) {
	a := arch.Line(3)
	m := Uniform(a, 0.01, 1e-4, 0.02, 1e-3)
	if m.EdgeError(0, 1) != 0.01 || m.EdgeError(1, 2) != 0.01 {
		t.Fatal("uniform CX error wrong")
	}
	if m.Readout[2] != 0.02 {
		t.Fatal("readout wrong")
	}
}

func TestSyntheticVariabilityAndDeterminism(t *testing.T) {
	a := arch.Mumbai()
	m1 := Synthetic(a, 7)
	m2 := Synthetic(a, 7)
	m3 := Synthetic(a, 8)
	varied := false
	different := false
	var prev float64 = -1
	for _, e := range a.G.Edges() {
		v := m1.TwoQubit[e]
		if v <= 0 || v > 0.3 {
			t.Fatalf("edge %v error %v out of range", e, v)
		}
		if v != m2.TwoQubit[e] {
			t.Fatal("same seed produced different calibration")
		}
		if v != m3.TwoQubit[e] {
			different = true
		}
		if prev >= 0 && v != prev {
			varied = true
		}
		prev = v
	}
	if !varied {
		t.Fatal("no variability across edges")
	}
	if !different {
		t.Fatal("different seeds produced identical calibration")
	}
}

func TestFidelityDecreasesWithGates(t *testing.T) {
	a := arch.Line(4)
	m := Uniform(a, 0.01, 1e-4, 0.02, 1e-3)
	c1 := circuit.New(4)
	c1.Append(circuit.NewSwap(0, 1))
	c2 := circuit.New(4)
	c2.Append(circuit.NewSwap(0, 1), circuit.NewSwap(2, 3), circuit.NewSwap(1, 2))
	f1, f2 := m.Fidelity(c1), m.Fidelity(c2)
	if !(0 < f2 && f2 < f1 && f1 < 1) {
		t.Fatalf("fidelity ordering wrong: %v vs %v", f1, f2)
	}
	if math.Abs(m.LogFidelity(c1)-math.Log(f1)) > 1e-12 {
		t.Fatal("LogFidelity inconsistent with Fidelity")
	}
}

func TestCrosstalkPairs(t *testing.T) {
	// On a line 0-1-2-3: couplings (0,1) and (2,3) are disjoint and joined
	// by (1,2) -> crosstalk pair. On line of 5: (0,1),(3,4) are not.
	a := arch.Line(5)
	pairs := CrosstalkPairs(a)
	has := func(e1, e2 graph.Edge) bool {
		for _, p := range pairs {
			if (p[0] == e1 && p[1] == e2) || (p[0] == e2 && p[1] == e1) {
				return true
			}
		}
		return false
	}
	if !has(graph.NewEdge(0, 1), graph.NewEdge(2, 3)) {
		t.Fatal("adjacent parallel couplings missing")
	}
	if has(graph.NewEdge(0, 1), graph.NewEdge(3, 4)) {
		t.Fatal("distant couplings flagged")
	}
	if has(graph.NewEdge(0, 1), graph.NewEdge(1, 2)) {
		t.Fatal("qubit-sharing couplings flagged as crosstalk")
	}
}

func TestFidelityPrefersGoodLinks(t *testing.T) {
	a := arch.Line(3)
	m := Ideal(a)
	m.TwoQubit[graph.NewEdge(0, 1)] = 0.10
	m.TwoQubit[graph.NewEdge(1, 2)] = 0.01
	good := circuit.New(3)
	good.Append(circuit.NewSwap(1, 2))
	bad := circuit.New(3)
	bad.Append(circuit.NewSwap(0, 1))
	if m.Fidelity(good) <= m.Fidelity(bad) {
		t.Fatal("fidelity does not prefer the better link")
	}
}
