// Package noise models hardware error variability (§5.3): per-coupling
// two-qubit gate error rates, per-qubit single-qubit and readout errors, an
// idle (decoherence) rate per cycle, and crosstalk between close parallel
// couplings. The hybrid compiler consumes the model for noise-aware SWAP
// placement and fidelity estimation; the trajectory simulator consumes it
// for end-to-end experiments.
//
// Substitution note (DESIGN.md): the paper reads these numbers from IBM
// calibration data; Synthetic generates a seeded calibration with realistic
// magnitudes and log-normal spread so that the compiler faces the same kind
// of variability.
package noise

import (
	"math"
	"math/rand"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// Model is a calibration snapshot for one architecture.
type Model struct {
	// TwoQubit maps each coupling to its CX error rate.
	TwoQubit map[graph.Edge]float64
	// SingleQubit and Readout are per-physical-qubit error rates.
	SingleQubit []float64
	Readout     []float64
	// IdlePerCycle is the per-qubit decoherence probability per circuit
	// cycle (a T1/T2 proxy tied to circuit duration).
	IdlePerCycle float64
	// CrosstalkFactor scales a gate's error when a crosstalk-coupled gate
	// runs in the same cycle.
	CrosstalkFactor float64
}

// Ideal returns a zero-noise model for a.
func Ideal(a *arch.Arch) *Model {
	m := &Model{
		TwoQubit:        make(map[graph.Edge]float64, a.G.M()),
		SingleQubit:     make([]float64, a.N()),
		Readout:         make([]float64, a.N()),
		CrosstalkFactor: 1,
	}
	for _, e := range a.G.Edges() {
		m.TwoQubit[e] = 0
	}
	return m
}

// Uniform returns a model with identical rates everywhere.
func Uniform(a *arch.Arch, cx, oneQ, readout, idle float64) *Model {
	m := Ideal(a)
	for _, e := range a.G.Edges() {
		m.TwoQubit[e] = cx
	}
	for q := 0; q < a.N(); q++ {
		m.SingleQubit[q] = oneQ
		m.Readout[q] = readout
	}
	m.IdlePerCycle = idle
	m.CrosstalkFactor = 1.5
	return m
}

// Synthetic returns a seeded calibration with IBM-Falcon-like magnitudes:
// CX errors log-normal around 1e-2, single-qubit around 3e-4, readout
// around 2.5e-2, with heavy-tailed outliers (a few bad links), which is
// what makes noise-aware placement matter.
func Synthetic(a *arch.Arch, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := Ideal(a)
	logn := func(median, sigma float64) float64 {
		return median * math.Exp(rng.NormFloat64()*sigma)
	}
	for _, e := range a.G.Edges() {
		v := logn(1e-2, 0.45)
		if rng.Float64() < 0.05 {
			v *= 3 + 4*rng.Float64() // occasional bad link
		}
		if v > 0.25 {
			v = 0.25
		}
		m.TwoQubit[e] = v
	}
	for q := 0; q < a.N(); q++ {
		m.SingleQubit[q] = logn(3e-4, 0.4)
		m.Readout[q] = logn(2.5e-2, 0.5)
	}
	m.IdlePerCycle = 8e-4
	m.CrosstalkFactor = 1.5
	return m
}

// EdgeError returns the CX error rate of coupling (p, q).
func (m *Model) EdgeError(p, q int) float64 {
	return m.TwoQubit[graph.NewEdge(p, q)]
}

// CrosstalkPairs returns the pairs of couplings the scheduler must avoid
// running in parallel: disjoint couplings joined by a third coupling ("two
// close and parallel CNOT gates", §5.3).
func CrosstalkPairs(a *arch.Arch) [][2]graph.Edge {
	edges := a.G.Edges()
	var out [][2]graph.Edge
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			e, f := edges[i], edges[j]
			if e.U == f.U || e.U == f.V || e.V == f.U || e.V == f.V {
				continue // sharing a qubit is a scheduling conflict already
			}
			if a.G.HasEdge(e.U, f.U) || a.G.HasEdge(e.U, f.V) ||
				a.G.HasEdge(e.V, f.U) || a.G.HasEdge(e.V, f.V) {
				out = append(out, [2]graph.Edge{e, f})
			}
		}
	}
	return out
}

// LogFidelity estimates log of the circuit's success probability: the sum
// of log(1-e) over all decomposed gates plus a decoherence term for the
// circuit duration. Larger (closer to zero) is better.
func (m *Model) LogFidelity(c *circuit.Circuit) float64 {
	d := c.Decompose()
	lf := 0.0
	for _, g := range d.Gates {
		switch g.Kind {
		case circuit.GateCNOT:
			lf += math.Log1p(-m.EdgeError(g.Q0, g.Q1))
		default:
			lf += math.Log1p(-m.SingleQubit[g.Q0])
		}
	}
	lf += -m.IdlePerCycle * float64(d.Depth()) * float64(activeQubits(c))
	return lf
}

// Fidelity is exp(LogFidelity), the estimated success probability (ESP).
func (m *Model) Fidelity(c *circuit.Circuit) float64 {
	return math.Exp(m.LogFidelity(c))
}

func activeQubits(c *circuit.Circuit) int {
	seen := make(map[int]bool)
	for _, g := range c.Gates {
		seen[g.Q0] = true
		if g.Kind.TwoQubit() {
			seen[g.Q1] = true
		}
	}
	return len(seen)
}
