// Package vet is the repo's codebase-semantics analyzer framework: a small
// go/analysis-style driver built on the standard library's go/ast and
// go/types (no golang.org/x/tools dependency), with custom analyzers that
// encode this compiler's determinism and observability contracts:
//
//   - maprange: no map-range iteration in packages whose output order is
//     part of the deterministic-compilation contract
//   - walltime: no time.Now/Since/Until or global math/rand source in
//     compile paths — clocks and randomness must be injected
//   - obsspan: every obs span (obs.Span / core phaseHandle) opened in a
//     function is ended on all return paths
//   - nakedpanic: panic arguments must be package-prefixed invariant
//     messages, never bare error values (DESIGN.md panic-audit rule)
//
// Findings are suppressed site-by-site with an audit annotation on the
// offending line or the line above:
//
//	//vet:ignore maprange keys are sorted two lines down
//
// The annotation names one or more analyzers and should carry the audit
// justification. cmd/ataqc-vet is the CLI driver; CI fails on any
// unsuppressed finding.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one type-checked package presented to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dir is the package directory relative to the module root
	// (e.g. "internal/core"); scope predicates match against it.
	Dir string
}

// Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's stable identifier (also the annotation key).
	Name string
	// Doc describes the contract enforced and why it exists.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages for which
	// it returns true (argument is the module-relative directory). Nil
	// means every package.
	AppliesTo func(dir string) bool
	// Run inspects the pass and returns findings (nil when clean).
	Run func(p *Pass) []Diagnostic
}

// All lists every registered analyzer.
var All = []*Analyzer{MapRange, WallTime, ObsSpan, NakedPanic}

// compilePathDirs are the packages whose byte-identical-output contract
// forbids wall-clock reads and global randomness: everything on the
// compile path from problem graph to verified circuit. internal/obs is
// included because it is the clock injection point itself — its single
// legitimate time.Now (SystemClock) carries the audit annotation.
var compilePathDirs = map[string]bool{
	"internal/arch":        true,
	"internal/baseline":    true,
	"internal/cachestore":  true,
	"internal/circuit":     true,
	"internal/core":        true,
	"internal/graph":       true,
	"internal/greedy":      true,
	"internal/noise":       true,
	"internal/obs":         true,
	"internal/qaoa":        true,
	"internal/sim":         true,
	"internal/solver":      true,
	"internal/swapnet":     true,
	"internal/telemetry":   true,
	"internal/verify":      true,
	"internal/verify/sema": true,
}

// deterministicOutputDirs additionally covers packages that render ordered
// artifacts (benchmark tables, experiment reports) where map-range order
// would scramble committed output files.
func deterministicOutputDirs(dir string) bool {
	if compilePathDirs[dir] {
		return true
	}
	switch dir {
	case ".", "internal/bench", "internal/hamiltonian", "internal/faultinject":
		return true
	}
	return false
}

func isCompilePath(dir string) bool { return compilePathDirs[dir] }

// RunPackage executes the analyzers applicable to the pass and returns
// their findings with //vet:ignore suppressions already applied, sorted by
// position.
func RunPackage(p *Pass, analyzers ...*Analyzer) []Diagnostic {
	ign := collectIgnores(p)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(p.Dir) {
			continue
		}
		for _, d := range a.Run(p) {
			if ign.suppressed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ignoreSet maps file → line → analyzer names suppressed there.
type ignoreSet map[string]map[int]map[string]bool

// collectIgnores scans every comment for //vet:ignore annotations. An
// annotation suppresses findings of the named analyzers on its own line
// and on the line directly below (so it can sit on the offending line or
// on its own line above it).
func collectIgnores(p *Pass) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "vet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "vet:ignore"))
				pos := p.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, name := range annotationNames(rest) {
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return set
}

// annotationNames parses the analyzer list of a vet:ignore annotation: the
// leading whitespace-separated words that match registered analyzer names;
// everything after the first non-name word is the audit justification.
func annotationNames(rest string) []string {
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	var names []string
	for _, w := range strings.Fields(rest) {
		if !known[w] {
			break
		}
		names = append(names, w)
	}
	return names
}

func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}
