// Package obs mirrors the real observability package's span shape so the
// obsspan analyzer's type matching can be exercised in isolation.
package obs

// Span is a stand-in for the real obs.Span.
type Span struct{ ended bool }

// End closes the span.
func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

// Note attaches an annotation (a non-closing method, for analyzer tests).
func (s *Span) Note(string) {}

// Trace is a stand-in for the real obs.Trace.
type Trace struct{}

// StartSpan opens a span.
func (t *Trace) StartSpan(parent *Span, name string) *Span { return &Span{} }
