// Package core is a synthetic compile-path package that violates every
// contract the vet analyzers enforce, once per violation class, so the
// tests can pin that each analyzer fires (and that annotations suppress).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"badmod/internal/obs"
)

// MapLeak feeds map iteration order into an ordered output.
func MapLeak(m map[int]string) []string {
	var out []string
	for _, v := range m { // maprange: order leaks into out
		out = append(out, v)
	}
	return out
}

// MapAudited is the same shape with an audit annotation.
func MapAudited(m map[int]int) int {
	sum := 0
	//vet:ignore maprange summation is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

// ClockLeak reads the wall clock and the global rand source.
func ClockLeak() (time.Time, int) {
	t := time.Now()    // walltime: wall clock
	n := rand.Intn(42) // walltime: global source
	return t, n
}

// SeededOK threads an explicit source, which is allowed.
func SeededOK(rng *rand.Rand) int { return rng.Intn(42) }

// SpanLeak opens a span and returns early without ending it.
func SpanLeak(tr *obs.Trace, fail bool) error {
	sp := tr.StartSpan(nil, "work")
	if fail {
		return errors.New("core: failed") // obsspan: leaky return
	}
	sp.End()
	return nil
}

// SpanDeferOK closes via defer on every path.
func SpanDeferOK(tr *obs.Trace, fail bool) error {
	sp := tr.StartSpan(nil, "work")
	defer sp.End()
	if fail {
		return errors.New("core: failed")
	}
	return nil
}

// SpanDeferLitOK closes via a deferred closure.
func SpanDeferLitOK(tr *obs.Trace) {
	sp := tr.StartSpan(nil, "work")
	defer func() { sp.End() }()
}

// SpanBranchesOK ends the span on both arms before returning.
func SpanBranchesOK(tr *obs.Trace, fail bool) error {
	sp := tr.StartSpan(nil, "work")
	if fail {
		sp.End()
		return errors.New("core: failed")
	}
	sp.End()
	return nil
}

// SpanEscapes hands the span to another function, which takes over the
// obligation; the analyzer must not flag it here.
func SpanEscapes(tr *obs.Trace) {
	sp := tr.StartSpan(nil, "work")
	closeLater(sp)
}

func closeLater(sp *obs.Span) { sp.End() }

// SpanFallsOff opens a span and falls off the end of the function.
func SpanFallsOff(tr *obs.Trace) {
	sp := tr.StartSpan(nil, "leaky") // obsspan: falls off end
	sp.Note("never ended")
}

// PanicNaked re-panics a bare error value.
func PanicNaked(err error) {
	if err != nil {
		panic(err) // nakedpanic: bare error value
	}
}

// PanicDescribed carries a package-prefixed invariant message.
func PanicDescribed(n int) {
	if n < 0 {
		panic(fmt.Sprintf("core: negative count %d", n))
	}
}

// PanicAudited is suppressed by annotation.
func PanicAudited(v any) {
	//vet:ignore nakedpanic test fixture for annotation parsing
	panic(v)
}
