// Package loading for the vet driver: a minimal, offline, stdlib-only
// substitute for golang.org/x/tools/go/packages. Module-internal imports
// are resolved to directories under the module root and type-checked
// recursively (memoized); standard-library imports go through the
// compiler's source importer, which works without network or a populated
// module cache. External module dependencies are unsupported — this repo
// has none, by design.
package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages of one module.
type Loader struct {
	fset   *token.FileSet
	root   string // module root directory (absolute)
	module string // module path from go.mod
	std    types.Importer
	memo   map[string]*loaded // by module-relative dir
}

type loaded struct {
	pass *Pass
	err  error
}

// NewLoader returns a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   abs,
		module: mod,
		std:    importer.ForCompiler(fset, "source", nil),
		memo:   map[string]*loaded{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module line in %s", gomod)
}

// Match expands package patterns ("./...", "./internal/core", "internal/
// core") into module-relative package directories, in sorted order. Like
// the go tool, "..." skips testdata, vendor, and directories starting with
// "." or "_"; directories without non-test Go files are dropped.
func (l *Loader) Match(patterns ...string) ([]string, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			pat = "..."
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			base := "."
			if ok {
				base = rest
			}
			err := filepath.WalkDir(filepath.Join(l.root, base), func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != l.root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				rel, _ := filepath.Rel(l.root, path)
				if hasGoFiles(path) {
					dirs[filepath.ToSlash(rel)] = true
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		rel := filepath.ToSlash(filepath.Clean(pat))
		if !hasGoFiles(filepath.Join(l.root, rel)) {
			return nil, fmt.Errorf("vet: no Go files in %s", rel)
		}
		dirs[rel] = true
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in the module-relative dir.
// Test files (_test.go) are excluded: the analyzers enforce production
// contracts, and test packages may deliberately violate them.
func (l *Loader) LoadDir(dir string) (*Pass, error) {
	dir = filepath.ToSlash(filepath.Clean(dir))
	if got := l.memo[dir]; got != nil {
		return got.pass, got.err
	}
	// Mark in-progress to fail fast on import cycles instead of recursing.
	l.memo[dir] = &loaded{err: fmt.Errorf("vet: import cycle through %s", dir)}
	pass, err := l.check(dir)
	l.memo[dir] = &loaded{pass: pass, err: err}
	return pass, err
}

func (l *Loader) check(dir string) (*Pass, error) {
	abs := filepath.Join(l.root, dir)
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := l.module
	if dir != "." {
		path = l.module + "/" + dir
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", dir, err)
	}
	return &Pass{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Dir: dir}, nil
}

// Import implements types.Importer: module-internal paths resolve to repo
// directories, everything else falls through to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module {
		p, err := l.LoadDir(".")
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		p, err := l.LoadDir(rest)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
