package vet

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadBad loads the synthetic violation module under testdata/src.
func loadBad(t *testing.T, dir string) *Pass {
	t.Helper()
	l, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAnalyzersFireOnSyntheticBad pins that every analyzer fires on its
// violation class in the synthetic bad package — and only there: the clean
// variants (seeded rand, defer-closed spans, described panics) and the
// annotated sites must stay silent.
func TestAnalyzersFireOnSyntheticBad(t *testing.T) {
	p := loadBad(t, "internal/core")
	diags := RunPackage(p, All...)

	byAnalyzer := map[string][]Diagnostic{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
	}
	wantCounts := map[string]int{
		"maprange":   1, // MapLeak only; MapAudited is annotated
		"walltime":   2, // time.Now + rand.Intn; SeededOK is clean
		"obsspan":    2, // SpanLeak early return + SpanFallsOff
		"nakedpanic": 1, // PanicNaked only; PanicAudited is annotated
	}
	for name, want := range wantCounts {
		if got := len(byAnalyzer[name]); got != want {
			t.Errorf("%s: %d finding(s), want %d: %v", name, got, want, byAnalyzer[name])
		}
	}
	for name := range byAnalyzer {
		if _, ok := wantCounts[name]; !ok {
			t.Errorf("unexpected analyzer %s fired: %v", name, byAnalyzer[name])
		}
	}

	// The findings must anchor to the marked lines.
	wantMarkers := map[string]string{
		"maprange":   "maprange: order leaks into out",
		"walltime":   "walltime: wall clock",
		"obsspan":    "obsspan: leaky return",
		"nakedpanic": "nakedpanic: bare error value",
	}
	lines := fileLines(t, filepath.Join("testdata", "src", "internal", "core", "bad.go"))
	for name, marker := range wantMarkers {
		found := false
		for _, d := range byAnalyzer[name] {
			if d.Pos.Line-1 < len(lines) && strings.Contains(lines[d.Pos.Line-1], marker) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no finding on the line marked %q; got %v", name, marker, byAnalyzer[name])
		}
	}
}

// TestScopePredicates pins which packages each scoped analyzer covers:
// compile-path packages for walltime, those plus report emitters for
// maprange, and never cmd/ for either.
func TestScopePredicates(t *testing.T) {
	cases := []struct {
		dir                string
		walltime, maprange bool
	}{
		{"internal/core", true, true},
		{"internal/verify/sema", true, true},
		{"internal/obs", true, true},
		{"internal/telemetry", true, true}, // flight recorder / SLO math runs on injected clocks
		{"internal/bench", false, true},    // times compilations, emits tables
		{".", false, true},                 // public API renders reports
		{"cmd/ataqc", false, false},        // CLIs may read the clock
		{"internal/vet", false, false},     // the analyzers themselves
	}
	for _, c := range cases {
		if got := isCompilePath(c.dir); got != c.walltime {
			t.Errorf("isCompilePath(%q) = %v, want %v", c.dir, got, c.walltime)
		}
		if got := deterministicOutputDirs(c.dir); got != c.maprange {
			t.Errorf("deterministicOutputDirs(%q) = %v, want %v", c.dir, got, c.maprange)
		}
	}
}

// TestAnnotationNames pins the vet:ignore grammar: leading analyzer names,
// then free-text justification.
func TestAnnotationNames(t *testing.T) {
	cases := []struct {
		rest string
		want []string
	}{
		{"maprange keys are sorted", []string{"maprange"}},
		{"maprange walltime audited twice over", []string{"maprange", "walltime"}},
		{"because reasons", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := annotationNames(c.rest)
		if len(got) != len(c.want) {
			t.Errorf("annotationNames(%q) = %v, want %v", c.rest, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("annotationNames(%q) = %v, want %v", c.rest, got, c.want)
			}
		}
	}
}

// TestIgnoreSuppressionLines pins that an annotation covers its own line
// and the one below, nothing else.
func TestIgnoreSuppressionLines(t *testing.T) {
	p := loadBad(t, "internal/core")
	ign := collectIgnores(p)
	file := filepath.Join("testdata", "src", "internal", "core", "bad.go")
	lines := fileLines(t, file)
	annLine := 0
	for i, l := range lines {
		if strings.Contains(l, "vet:ignore maprange summation") {
			annLine = i + 1
			break
		}
	}
	if annLine == 0 {
		t.Fatal("annotation line not found in testdata")
	}
	abs, _ := filepath.Abs(file)
	for _, tc := range []struct {
		line int
		want bool
	}{{annLine, true}, {annLine + 1, true}, {annLine + 2, false}, {annLine - 1, false}} {
		pos := token.Position{Filename: abs, Line: tc.line}
		if got := ign.suppressed("maprange", pos); got != tc.want {
			t.Errorf("suppressed(maprange, line %d) = %v, want %v", tc.line, got, tc.want)
		}
	}
}

// TestRepoIsVetClean is the committed regression behind the CI vet job:
// every package of this module passes every analyzer. Any new wall-clock
// read, unsorted map range, leaked span, or naked panic fails this test
// before it reaches CI.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against stdlib source")
	}
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Match("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 15 {
		t.Fatalf("Match(./...) found only %d packages: %v", len(dirs), dirs)
	}
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, d := range RunPackage(p, All...) {
			t.Errorf("%s", d)
		}
	}
}

// TestMatchSkipsTestdata pins the package-pattern walker's exclusions.
func TestMatchSkipsTestdata(t *testing.T) {
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Match("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Match leaked testdata dir %s", d)
		}
	}
}

func fileLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(data), "\n")
}
