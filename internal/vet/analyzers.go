package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// MapRange forbids ranging over maps in packages whose output order is
// part of the deterministic-compilation contract. Go randomizes map
// iteration order per run, so a map-range feeding gate emission, region
// detection, or a committed report scrambles byte-identical output.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: `Compiled circuits, benchmark tables, and experiment reports must be
byte-identical across runs (the determinism tests pin this). Ranging over a
map inside the packages that produce them introduces per-run iteration
order. Sort the keys first, or annotate the audited site with
//vet:ignore maprange <why the order cannot leak>.`,
	AppliesTo: deterministicOutputDirs,
}

func runMapRange(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				out = append(out, diag(p, MapRange, rs.Pos(),
					"range over map %s iterates in per-run random order; sort the keys or annotate the audit",
					types.TypeString(tv.Type, types.RelativeTo(p.Pkg))))
			}
			return true
		})
	}
	return out
}

// WallTime forbids direct wall-clock reads and the global math/rand source
// in compile-path packages: both must be injected (obs.Clock, *rand.Rand)
// so compilation is reproducible and testable under synthetic time.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: `Compile paths time themselves against the injected obs.Clock (so
budgets and Elapsed work under a synthetic clock) and draw randomness only
from explicitly seeded *rand.Rand values. time.Now/Since/Until and the
global math/rand functions bypass both injections.`,
	AppliesTo: isCompilePath,
}

// Run hooks are wired in init to break the declaration cycle between the
// analyzer values and their Run functions (which reference the values when
// reporting).
func init() {
	MapRange.Run = runMapRange
	WallTime.Run = runWallTime
	ObsSpan.Run = runObsSpan
	NakedPanic.Run = runNakedPanic
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var globalRandFuncs = map[string]bool{
	"Int": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Intn": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"NormFloat64": true, "ExpFloat64": true, "Read": true,
}

func runWallTime(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					out = append(out, diag(p, WallTime, sel.Pos(),
						"time.%s reads the wall clock in a compile path; use the injected obs.Clock", sel.Sel.Name))
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[sel.Sel.Name] {
					out = append(out, diag(p, WallTime, sel.Pos(),
						"rand.%s draws from the global source in a compile path; thread a seeded *rand.Rand", sel.Sel.Name))
				}
			}
			return true
		})
	}
	return out
}

// ObsSpan checks that every locally-owned observability span is ended on
// all paths out of its function: a span that leaks stays open in the
// exported trace and corrupts the phase timeline.
var ObsSpan = &Analyzer{
	Name: "obsspan",
	Doc: `A span opened with obs.Trace.StartSpan (or a core phase handle from
recorder.phase) must reach its End()/end() on every return path, or be
closed by a defer. An early return that skips it leaves the span open in
the trace and drops the phase from the timeline. Spans that escape the
function (passed as arguments, stored in fields or other variables) are
someone else's responsibility and are skipped.`,
}

// spanVar is one locally-owned span variable under flow analysis.
type spanVar struct {
	obj     types.Object
	def     *ast.Ident
	endName string
}

func runObsSpan(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, frame := range framesOf(f) {
			out = append(out, checkFrame(p, frame)...)
		}
	}
	return out
}

// framesOf returns every function body in the file: declarations and
// literals, each analyzed as its own frame.
func framesOf(f *ast.File) []*ast.BlockStmt {
	var frames []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				frames = append(frames, fn.Body)
			}
		case *ast.FuncLit:
			frames = append(frames, fn.Body)
		}
		return true
	})
	return frames
}

// checkFrame runs the ended-on-all-paths analysis for each span variable
// defined directly in the frame (not in nested function literals).
func checkFrame(p *Pass, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	for _, sv := range spanVarsIn(p, body) {
		if escapes(p, body, sv) {
			continue
		}
		sc := &spanScan{p: p, sv: sv}
		st := sc.stmts(body.List, scanState{})
		if st.assigned && !st.ended && !st.terminated {
			out = append(out, diag(p, ObsSpan, sv.def.Pos(),
				"span %s is not ended before the function falls off the end", sv.def.Name))
		}
		out = append(out, sc.diags...)
	}
	return out
}

// spanVarsIn finds `x := ...` definitions of span-typed variables directly
// in the frame.
func spanVarsIn(p *Pass, body *ast.BlockStmt) []*spanVar {
	var vars []*spanVar
	inspectFrame(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				continue
			}
			if end := spanEndName(obj.Type()); end != "" {
				vars = append(vars, &spanVar{obj: obj, def: id, endName: end})
			}
		}
	})
	return vars
}

// spanEndName reports the close-method name for span types ("" for
// everything else): obs.Span uses End, the core phase handle uses end.
func spanEndName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	name, pkg := named.Obj().Name(), named.Obj().Pkg().Path()
	if name == "Span" && strings.HasSuffix(pkg, "/internal/obs") {
		return "End"
	}
	if name == "phaseHandle" {
		return "end"
	}
	return ""
}

// inspectFrame walks the frame's own statements, not descending into
// nested function literals (they are separate frames).
func inspectFrame(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// escapes reports whether the span is used as anything other than a method
// receiver in its frame — passed away, stored, or captured by a non-defer
// closure — which transfers the End obligation elsewhere.
func escapes(p *Pass, body *ast.BlockStmt, sv *spanVar) bool {
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != sv.obj {
			return true
		}
		sel, ok := parent[id].(*ast.SelectorExpr)
		if !ok || sel.X != id {
			escaped = true
			return false
		}
		if call, ok := parent[sel].(*ast.CallExpr); !ok || call.Fun != sel {
			escaped = true // method value or field read, not a call
			return false
		}
		return true
	})
	return escaped
}

// scanState is the abstract state of one span variable along a path.
type scanState struct {
	assigned   bool // the defining := has executed
	ended      bool // End()/end() (or a defer of it) has executed
	terminated bool // the path has left the function (return/branch)
}

// spanScan is a conservative path-sensitive walk: sequential statements
// thread the state, branches fork it and merge pessimistically (ended only
// if ended on every non-terminated branch), loops are approximated by
// their zero-iteration path.
type spanScan struct {
	p     *Pass
	sv    *spanVar
	diags []Diagnostic
}

func (s *spanScan) stmts(list []ast.Stmt, st scanState) scanState {
	for _, stmt := range list {
		if st.terminated {
			break
		}
		st = s.stmt(stmt, st)
	}
	return st
}

func (s *spanScan) stmt(stmt ast.Stmt, st scanState) scanState {
	switch n := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id == s.sv.def {
				st.assigned, st.ended = true, false
			}
		}
	case *ast.ExprStmt:
		if s.isEndCall(n.X) {
			st.ended = true
		}
	case *ast.DeferStmt:
		if s.isEndCall(n.Call) || s.deferLitEnds(n.Call) {
			st.ended = true
		}
	case *ast.ReturnStmt:
		if st.assigned && !st.ended {
			s.diags = append(s.diags, diag(s.p, ObsSpan, n.Pos(),
				"return leaks span %s (opened at %s): End is not called on this path",
				s.sv.def.Name, s.p.Fset.Position(s.sv.def.Pos())))
		}
		st.terminated = true
	case *ast.BranchStmt:
		st.terminated = true
	case *ast.BlockStmt:
		st = s.stmts(n.List, st)
	case *ast.LabeledStmt:
		st = s.stmt(n.Stmt, st)
	case *ast.IfStmt:
		if n.Init != nil {
			st = s.stmt(n.Init, st)
		}
		branches := []scanState{s.stmts(n.Body.List, st)}
		if n.Else != nil {
			branches = append(branches, s.stmt(n.Else, st))
		} else {
			branches = append(branches, st)
		}
		st = merge(branches)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		st = s.caseBranches(stmt, st)
	case *ast.ForStmt:
		if n.Init != nil {
			st = s.stmt(n.Init, st)
		}
		s.stmts(n.Body.List, st) // check returns inside; zero-iteration approx
	case *ast.RangeStmt:
		s.stmts(n.Body.List, st)
	}
	return st
}

// caseBranches merges the clause bodies of a switch/type-switch/select; a
// missing default contributes the fall-through state.
func (s *spanScan) caseBranches(stmt ast.Stmt, st scanState) scanState {
	var body *ast.BlockStmt
	hasDefault := false
	switch n := stmt.(type) {
	case *ast.SwitchStmt:
		if n.Init != nil {
			st = s.stmt(n.Init, st)
		}
		body = n.Body
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st = s.stmt(n.Init, st)
		}
		body = n.Body
	case *ast.SelectStmt:
		body = n.Body
	}
	var branches []scanState
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			branches = append(branches, s.stmts(cc.Body, st))
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			branches = append(branches, s.stmts(cc.Body, st))
		}
	}
	if !hasDefault {
		branches = append(branches, st)
	}
	return merge(branches)
}

// merge combines branch states: terminated only if every branch
// terminated; ended only if every branch that can fall through ended.
func merge(branches []scanState) scanState {
	out := scanState{ended: true, terminated: true}
	for _, b := range branches {
		out.assigned = out.assigned || b.assigned
		out.terminated = out.terminated && b.terminated
		if !b.terminated {
			out.ended = out.ended && b.ended
		}
	}
	if out.terminated {
		out.ended = true
	}
	return out
}

// isEndCall reports whether expr is sv.End() / sv.end().
func (s *spanScan) isEndCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != s.sv.endName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && s.p.Info.Uses[id] == s.sv.obj
}

// deferLitEnds reports whether a deferred function literal contains the
// span's End call (the `defer func() { ...; sp.End() }()` idiom).
func (s *spanScan) deferLitEnds(call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && s.isEndCall(expr) {
			found = true
			return false
		}
		return true
	})
	return found
}

// NakedPanic enforces the DESIGN.md panic-audit rule at the call-site
// level: panics are reserved for provable internal invariants, and the
// panic value must say which package's invariant broke. Re-panicking a
// bare error value loses that attribution.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc: `Every panic argument must be a self-describing, package-prefixed
invariant message — a string literal or fmt.Sprintf/fmt.Errorf whose format
contains a "pkg:" prefix. panic(err) and panic(v) are naked: when they
surface through the core recover boundary the report says nothing about
which invariant broke. Audited exceptions annotate
//vet:ignore nakedpanic <why>.`,
}

func runNakedPanic(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if len(call.Args) == 1 && describesInvariant(p, call.Args[0]) {
				return true
			}
			out = append(out, diag(p, NakedPanic, call.Pos(),
				"naked panic: argument must be a package-prefixed invariant message (string literal or fmt.Sprintf/Errorf with a %q format prefix)", "pkg: ..."))
			return true
		})
	}
	return out
}

// describesInvariant accepts string literals and fmt.Sprintf/Errorf calls
// whose (constant) format carries a "pkg:"-style prefix.
func describesInvariant(p *Pass, arg ast.Expr) bool {
	if lit := stringLit(p, arg); lit != "" {
		return strings.Contains(lit, ":")
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	if sel.Sel.Name != "Sprintf" && sel.Sel.Name != "Errorf" {
		return false
	}
	return strings.Contains(stringLit(p, call.Args[0]), ":")
}

// stringLit returns the constant string value of expr ("" when not a
// constant string).
func stringLit(p *Pass, expr ast.Expr) string {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

func diag(p *Pass, a *Analyzer, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: a.Name, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}
