// Package hamiltonian generates the 2-local Hamiltonian simulation
// interaction graphs of the paper's Table 3 benchmarks (the same families
// as 2QAN): next-nearest-neighbour (NNN) 1D Ising chains, NNN 2D XY
// lattices, and NNN 3D Heisenberg lattices. Each model is, for compilation
// purposes, a graph of permutable two-qubit interactions (§2.1).
package hamiltonian

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// NNN1DIsing returns the interaction graph of an n-spin Ising chain with
// nearest and next-nearest couplings: edges (i, i+1) and (i, i+2).
func NNN1DIsing(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			g.AddEdge(i, i+1)
		}
		if i+2 < n {
			g.AddEdge(i, i+2)
		}
	}
	return g
}

// NNN2DXY returns the interaction graph of a rows x cols XY model with
// nearest (grid) and next-nearest (diagonal) couplings.
func NNN2DXY(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
				if c+1 < cols {
					g.AddEdge(id(r, c), id(r+1, c+1))
				}
				if c-1 >= 0 {
					g.AddEdge(id(r, c), id(r+1, c-1))
				}
			}
		}
	}
	return g
}

// NNN3DHeisenberg returns the interaction graph of an x*y*z Heisenberg
// lattice with nearest (axis) and next-nearest (face-diagonal) couplings —
// all vertex pairs at squared Euclidean distance 1 or 2.
func NNN3DHeisenberg(x, y, z int) *graph.Graph {
	n := x * y * z
	g := graph.New(n)
	id := func(i, j, k int) int { return (k*y+j)*x + i }
	offsets := [][3]int{}
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				d2 := di*di + dj*dj + dk*dk
				if d2 == 1 || d2 == 2 {
					offsets = append(offsets, [3]int{di, dj, dk})
				}
			}
		}
	}
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				for _, o := range offsets {
					ii, jj, kk := i+o[0], j+o[1], k+o[2]
					if ii < 0 || ii >= x || jj < 0 || jj >= y || kk < 0 || kk >= z {
						continue
					}
					g.AddEdge(id(i, j, k), id(ii, jj, kk))
				}
			}
		}
	}
	return g
}

// Benchmark names the three Table 3 instances at their paper sizes
// (64 vertices each).
func Benchmark(name string) (*graph.Graph, error) {
	switch name {
	case "1D-Ising":
		return NNN1DIsing(64), nil
	case "2D-XY":
		return NNN2DXY(8, 8), nil
	case "3D-Heisenberg":
		return NNN3DHeisenberg(4, 4, 4), nil
	}
	return nil, fmt.Errorf("hamiltonian: unknown benchmark %q", name)
}

// Names lists the Table 3 benchmark names in paper order.
func Names() []string { return []string{"1D-Ising", "2D-XY", "3D-Heisenberg"} }
