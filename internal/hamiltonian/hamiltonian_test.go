package hamiltonian

import "testing"

func TestNNN1DIsing(t *testing.T) {
	g := NNN1DIsing(6)
	// 5 nearest + 4 next-nearest.
	if g.M() != 9 {
		t.Fatalf("edges = %d", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Fatal("coupling structure wrong")
	}
}

func TestNNN2DXY(t *testing.T) {
	g := NNN2DXY(3, 3)
	// Nearest: 2*3*2 = 12; diagonals: 2 per interior cell pair = 2*2*2 = 8.
	if g.M() != 20 {
		t.Fatalf("edges = %d", g.M())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(1, 3) {
		t.Fatal("diagonal couplings missing")
	}
	if g.HasEdge(0, 8) {
		t.Fatal("unexpected long-range coupling")
	}
}

func TestNNN3DHeisenberg(t *testing.T) {
	g := NNN3DHeisenberg(2, 2, 2)
	// 8 vertices; distance^2 in {1,2}: axis edges 12, face diagonals 12.
	if g.M() != 24 {
		t.Fatalf("edges = %d", g.M())
	}
	// The body diagonal (d^2=3) must be absent: vertices 0=(0,0,0), 7=(1,1,1).
	if g.HasEdge(0, 7) {
		t.Fatal("body diagonal present")
	}
}

func TestBenchmarkSizes(t *testing.T) {
	for _, name := range Names() {
		g, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 64 {
			t.Fatalf("%s has %d vertices, want 64", name, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("%s not connected", name)
		}
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
