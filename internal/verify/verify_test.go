package verify_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// edges builds a problem graph on n vertices from pairs.
func edges(n int, pairs ...[2]int) *graph.Graph {
	g := graph.New(n)
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
	}
	return g
}

func zz(p, q int, tag graph.Edge) circuit.Gate { return circuit.NewZZ(p, q, 1, tag) }
func swap(p, q int) circuit.Gate               { return circuit.NewSwap(p, q) }
func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// TestAnalyzersTable: each deliberately corrupted circuit must make exactly
// the expected analyzer fire, and every other analyzer must stay silent.
func TestAnalyzersTable(t *testing.T) {
	line4 := arch.Line(4)
	type tc struct {
		name string
		pass *verify.Pass
		want map[string]int // analyzer name -> diagnostic count; absent = 0
		sub  string         // substring expected in some diagnostic
	}
	cases := []tc{
		{
			name: "clean",
			pass: func() *verify.Pass {
				p := edges(4, [2]int{0, 1}, [2]int{1, 2})
				b := circuit.NewBuilder(line4, 4, nil)
				b.ZZ(0, 1, 1, graph.NewEdge(0, 1))
				b.ZZ(1, 2, 1, graph.NewEdge(1, 2))
				return &verify.Pass{Circuit: b.C, Arch: line4, Problem: p, Initial: b.InitialMapping(),
					Final: b.CurrentMapping(), ReportedDepth: b.C.DecomposedDepth(), CheckDepth: true}
			}(),
			want: map[string]int{},
		},
		{
			name: "off-coupling CZ",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{zz(0, 2, graph.NewEdge(0, 2))}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 2}),
				Initial: identity(4),
			},
			want: map[string]int{"arch-conformance": 1},
			sub:  "not a coupling edge",
		},
		{
			name: "qubit out of device range",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{{Kind: circuit.GateCNOT, Q0: 0, Q1: 7}}},
				Arch:    line4,
			},
			want: map[string]int{"arch-conformance": 1},
			sub:  "out of range",
		},
		{
			name: "dropped term",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{zz(0, 1, graph.NewEdge(0, 1))}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}, [2]int{1, 2}),
				Initial: identity(4),
			},
			want: map[string]int{"coverage": 1, "sema": 1},
			sub:  "never realized",
		},
		{
			name: "duplicated term",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
					zz(0, 1, graph.NewEdge(0, 1)), zz(0, 1, graph.NewEdge(0, 1)),
				}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}),
				Initial: identity(4),
			},
			want: map[string]int{"coverage": 1, "sema": 1},
			sub:  "more than once",
		},
		{
			name: "stale tag",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{zz(0, 1, graph.NewEdge(1, 2))}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}),
				Initial: identity(4),
			},
			want: map[string]int{"coverage": 1},
			sub:  "tagged",
		},
		{
			name: "program gate on non-edge",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
					zz(0, 1, graph.NewEdge(0, 1)), zz(2, 3, graph.NewEdge(2, 3)),
				}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}),
				Initial: identity(4),
			},
			want: map[string]int{"coverage": 1, "sema": 1},
			sub:  "not an interaction term",
		},
		{
			name: "stale claimed final mapping",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
					zz(0, 1, graph.NewEdge(0, 1)), swap(1, 2),
				}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}),
				Initial: identity(4),
				Final:   identity(4), // wrong: the SWAP moved logicals 1 and 2
			},
			want: map[string]int{"perm-soundness": 2, "dead-swap": 1, "sema": 2},
			sub:  "compiler claims",
		},
		{
			name: "initial mapping collision",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{zz(0, 1, graph.NewEdge(0, 1))}},
				Arch:    line4,
				Problem: edges(2, [2]int{0, 1}),
				Initial: []int{0, 0},
			},
			want: map[string]int{"perm-soundness": 1},
			sub:  "holds both",
		},
		{
			name: "misreported depth",
			pass: &verify.Pass{
				Circuit:       &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{zz(0, 1, graph.NewEdge(0, 1))}},
				Arch:          line4,
				ReportedDepth: 17,
				CheckDepth:    true,
			},
			want: map[string]int{"depth-consistency": 1},
			sub:  "recomputed",
		},
		{
			name: "dead trailing swap",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
					zz(0, 1, graph.NewEdge(0, 1)), swap(1, 2),
				}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 1}),
				Initial: identity(4),
			},
			want: map[string]int{"dead-swap": 1},
			sub:  "wasted",
		},
		{
			name: "live swap stays silent",
			pass: &verify.Pass{
				Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
					swap(1, 2), zz(0, 1, graph.NewEdge(0, 2)),
				}},
				Arch:    line4,
				Problem: edges(4, [2]int{0, 2}),
				Initial: identity(4),
			},
			want: map[string]int{},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			diags := verify.Run(c.pass, verify.All...)
			got := map[string]int{}
			for _, d := range diags {
				got[d.Analyzer]++
			}
			for _, a := range verify.All {
				if got[a.Name] != c.want[a.Name] {
					t.Errorf("%s: %d diagnostics, want %d (all: %v)", a.Name, got[a.Name], c.want[a.Name], diags)
				}
			}
			if c.sub != "" {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, c.sub) {
						found = true
					}
				}
				if !found {
					t.Errorf("no diagnostic mentions %q in %v", c.sub, diags)
				}
			}
		})
	}
}

// TestSeverities: the analyzer split drives AsError — warnings alone never
// produce an error, any error-severity finding does.
func TestSeverities(t *testing.T) {
	warn := []verify.Diagnostic{{Analyzer: "dead-swap", Severity: verify.SeverityWarning, Gate: 3, Message: "m"}}
	if err := verify.AsError(warn); err != nil {
		t.Fatalf("warnings produced error: %v", err)
	}
	mixed := append(warn, verify.Diagnostic{Analyzer: "coverage", Severity: verify.SeverityError, Gate: -1, Message: "m"})
	err := verify.AsError(mixed)
	if err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Fatalf("error diagnostics not folded: %v", err)
	}
	if !strings.Contains(warn[0].String(), "gate 3") || !strings.Contains(warn[0].String(), "warning") {
		t.Fatalf("diagnostic rendering: %q", warn[0].String())
	}
}

// TestRunOrdersByGate: diagnostics come out in gate order with
// circuit-level findings (gate -1) last.
func TestRunOrdersByGate(t *testing.T) {
	line4 := arch.Line(4)
	pass := &verify.Pass{
		Circuit: &circuit.Circuit{NQubits: 4, Gates: []circuit.Gate{
			swap(0, 2),                    // off-coupling (gate 0)
			zz(0, 1, graph.NewEdge(0, 1)), // fine (gate 1)
		}},
		Arch:    line4,
		Problem: edges(4, [2]int{0, 1}, [2]int{2, 3}),
		Initial: identity(4),
	}
	diags := verify.Run(pass, verify.All...)
	if len(diags) < 2 {
		t.Fatalf("want >=2 diagnostics, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].Gate, diags[i].Gate
		if prev == -1 && cur != -1 {
			t.Fatalf("circuit-level diagnostic not last: %v", diags)
		}
	}
}

// TestSemaCatchesCompiledMutations: adversarial check on a real compiled
// circuit. The untouched output proves clean; dropping, duplicating, or
// mis-angling a single diagonal gate in the compiled stream must each trip
// the sema analyzer. This is the end-to-end teeth behind Theorem 6.1's
// equivalence claim — a wrong circuit cannot pass silently.
func TestSemaCatchesCompiledMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := arch.GridN(9)
	p := graph.GnpConnected(9, 0.35, rng)
	res, err := core.Compile(a, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pass := func(g []circuit.Gate) *verify.Pass {
		c := &circuit.Circuit{NQubits: res.Circuit.NQubits, Gates: g}
		return &verify.Pass{Circuit: c, Arch: a, Problem: p,
			Initial: res.Initial, Final: res.Final}
	}
	semaCount := func(g []circuit.Gate) int {
		n := 0
		for _, d := range verify.Run(pass(g), verify.Sema) {
			if d.Analyzer == "sema" {
				n++
			}
		}
		return n
	}
	orig := res.Circuit.Gates
	if n := semaCount(orig); n != 0 {
		t.Fatalf("unmutated compiled circuit not clean: %d sema findings", n)
	}
	// Pick a tagged diagonal gate to corrupt.
	target := -1
	for i, g := range orig {
		if g.Tagged && g.Kind == circuit.GateZZ {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("compiled circuit has no plain tagged ZZ to mutate")
	}
	mutate := func(name string, f func([]circuit.Gate) []circuit.Gate) {
		g := append([]circuit.Gate(nil), orig...)
		if n := semaCount(f(g)); n == 0 {
			t.Errorf("%s: sema did not flag the mutated circuit", name)
		}
	}
	mutate("dropped gate", func(g []circuit.Gate) []circuit.Gate {
		return append(g[:target], g[target+1:]...)
	})
	mutate("duplicated gate", func(g []circuit.Gate) []circuit.Gate {
		out := make([]circuit.Gate, 0, len(g)+1)
		out = append(out, g[:target+1]...)
		return append(out, g[target:]...)
	})
	mutate("mis-angled gate", func(g []circuit.Gate) []circuit.Gate {
		g[target].Angle *= 1.5
		return g
	})
}

// TestVerifiedCompilerOutputsAlwaysClean: the paper's hybrid compiler, on
// random Erdős–Rényi problems across all five architecture families and
// all three modes, must never trip an error-severity analyzer.
func TestVerifiedCompilerOutputsAlwaysClean(t *testing.T) {
	builders := []func(int) *arch.Arch{
		arch.Line,
		arch.GridN,
		arch.SycamoreN,
		arch.HeavyHexN,
		arch.HexagonN,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(18)
		a := builders[rng.Intn(len(builders))](n)
		p := graph.GnpConnected(n, 0.15+0.6*rng.Float64(), rng)
		mode := core.Mode(rng.Intn(3))
		res, err := core.Compile(a, p, core.Options{Mode: mode, Verify: true})
		if err != nil {
			t.Logf("seed %d (%s, %v): %v", seed, a.Name, mode, err)
			return false
		}
		for _, d := range res.Diagnostics {
			if d.Severity == verify.SeverityError {
				t.Logf("seed %d (%s, %v): %v", seed, a.Name, mode, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 36}); err != nil {
		t.Fatal(err)
	}
}
