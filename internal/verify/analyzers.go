package verify

import (
	"math"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// ArchConformance checks the §4 admissibility condition on gate placement:
// every gate addresses qubits inside the device, and every two-qubit gate
// acts on an edge of the target coupling graph.
var ArchConformance = &Analyzer{
	Name:     "arch-conformance",
	Severity: SeverityError,
	Doc: `Every two-qubit gate must act on a coupling edge of the target
architecture (§4 admissibility). Also rejects out-of-range qubit indices,
self-loops, and a circuit whose qubit count disagrees with the device.`,
}

// PermSoundness checks the compiler's permutation bookkeeping: the initial
// mapping is an injection into the device, and folding every SWAP/ZZSwap
// over it reproduces the final mapping the compiler claims — the invariant
// behind reading logical outcomes out of the physical basis (§5–6).
var PermSoundness = &Analyzer{
	Name:     "perm-soundness",
	Severity: SeverityError,
	Doc: `The initial logical-to-physical mapping must be injective and in
range, and the logical-to-physical permutation obtained by folding the
circuit's SWAP and ZZSwap gates over it must match the final mapping the
compiler claims (Pass.Final). Tracks the 2QAN/tket-style permutation
argument for routing validity.`,
}

// Coverage checks the "all pairs meet" program invariant: every interaction
// term of the input problem is realized exactly once, by a program gate
// whose physical qubits hold that logical pair at that moment (§5.2, §6).
var Coverage = &Analyzer{
	Name:     "coverage",
	Severity: SeverityError,
	Doc: `Every edge of the input interaction graph must be realized by
exactly one ZZ/ZZSwap program gate, executed while the logical pair is
mapped onto the gate's physical qubits (the paper's all-pairs-meet
invariant for ATA patterns). Flags dropped terms, duplicated terms,
program gates on non-edges, and stale gate tags.`,
}

// DepthConsistency recomputes the decomposed ASAP depth from scratch and
// compares it with the depth the scheduler reports, so a broken layering
// or metrics path cannot silently misreport circuit cost (§7.1 metric).
var DepthConsistency = &Analyzer{
	Name:     "depth-consistency",
	Severity: SeverityError,
	Doc: `The ASAP critical-path depth of the decomposed circuit,
recomputed independently, must equal the depth the scheduler reports
(Pass.ReportedDepth). Guards the §7.1 depth metric against layering bugs.`,
}

// AngleSanity rejects non-finite rotation angles: a NaN or Inf angle means
// corrupted parameter binding upstream (a poisoned calibration, a broken
// optimizer step) silently produced a circuit no hardware can execute.
var AngleSanity = &Analyzer{
	Name:     "angle-sanity",
	Severity: SeverityError,
	Doc: `Every angle-carrying gate (ZZ, ZZSwap, RX, RZ) must have a finite
angle. NaN/Inf angles arise from corrupted upstream parameters — e.g. a
garbage calibration feeding the QAOA optimizer — and would only be caught
at hardware submission time. Fault-containment check, error severity.`,
}

// DeadSwap flags SWAPs that no later program gate depends on — they cost 3
// CX and change only the final permutation, which routing never needs.
var DeadSwap = &Analyzer{
	Name:     "dead-swap",
	Severity: SeverityWarning,
	Doc: `A SWAP whose moved qubits are never consumed by a later program
gate (directly or through further SWAPs) only permutes the output labels,
which readout relabeling gets for free. Each one wastes 3 CX. Optimization
lint, warning severity.`,
}

func init() {
	ArchConformance.Run = runArchConformance
	PermSoundness.Run = runPermSoundness
	Coverage.Run = runCoverage
	DepthConsistency.Run = runDepthConsistency
	AngleSanity.Run = runAngleSanity
	DeadSwap.Run = runDeadSwap

	// Applicability predicates: analyzers whose Run silently no-ops when
	// pass context is missing declare it here, so RunStatus can report a
	// skip instead of letting CI mistake "didn't run" for "clean".
	PermSoundness.Requires = func(p *Pass) string {
		if p.Initial == nil {
			return "no initial mapping"
		}
		return ""
	}
	Coverage.Requires = func(p *Pass) string {
		if p.Problem == nil {
			return "no problem graph"
		}
		if p.Initial == nil {
			return "no initial mapping"
		}
		return ""
	}
	DepthConsistency.Requires = func(p *Pass) string {
		if !p.CheckDepth {
			return "no reported depth"
		}
		return ""
	}
}

func runAngleSanity(p *Pass) []Diagnostic {
	var out []Diagnostic
	for i, g := range p.Circuit.Gates {
		switch g.Kind {
		case circuit.GateZZ, circuit.GateZZSwap, circuit.GateRX, circuit.GateRZ:
			if math.IsNaN(g.Angle) || math.IsInf(g.Angle, 0) {
				out = append(out, report(AngleSanity, i, "%v carries non-finite angle %v", g.Kind, g.Angle))
			}
		}
	}
	return out
}

func runArchConformance(p *Pass) []Diagnostic {
	var out []Diagnostic
	c := p.Circuit
	if p.Arch != nil && c.NQubits != p.Arch.N() {
		out = append(out, report(ArchConformance, -1,
			"circuit spans %d qubits but architecture %s has %d", c.NQubits, p.Arch.Name, p.Arch.N()))
	}
	for i, g := range c.Gates {
		if g.Q0 < 0 || g.Q0 >= c.NQubits {
			out = append(out, report(ArchConformance, i, "%v qubit %d out of range [0,%d)", g.Kind, g.Q0, c.NQubits))
			continue
		}
		if !g.Kind.TwoQubit() {
			continue
		}
		if g.Q1 < 0 || g.Q1 >= c.NQubits {
			out = append(out, report(ArchConformance, i, "%v qubit %d out of range [0,%d)", g.Kind, g.Q1, c.NQubits))
			continue
		}
		if g.Q1 == g.Q0 {
			out = append(out, report(ArchConformance, i, "%v is a self-loop on qubit %d", g.Kind, g.Q0))
			continue
		}
		if p.Arch != nil && !p.Arch.G.HasEdge(g.Q0, g.Q1) {
			out = append(out, report(ArchConformance, i,
				"%v on (%d,%d): not a coupling edge of %s", g.Kind, g.Q0, g.Q1, p.Arch.Name))
		}
	}
	return out
}

// foldInitial builds the physical-to-logical view of Pass.Initial, or nil
// if the mapping is not a valid injection into [0, NQubits).
func foldInitial(p *Pass) []int {
	p2l := make([]int, p.Circuit.NQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, ph := range p.Initial {
		if ph < 0 || ph >= len(p2l) || p2l[ph] != -1 {
			return nil
		}
		p2l[ph] = l
	}
	return p2l
}

func runPermSoundness(p *Pass) []Diagnostic {
	if p.Initial == nil {
		return nil
	}
	var out []Diagnostic
	p2l := make([]int, p.Circuit.NQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, ph := range p.Initial {
		switch {
		case ph < 0 || ph >= len(p2l):
			out = append(out, report(PermSoundness, -1, "initial mapping: logical %d -> invalid physical %d", l, ph))
		case p2l[ph] != -1:
			out = append(out, report(PermSoundness, -1,
				"initial mapping: physical %d holds both logical %d and %d", ph, p2l[ph], l))
		default:
			p2l[ph] = l
		}
	}
	if len(out) > 0 {
		return out // the fold below would only cascade from a broken start
	}
	// Fold the circuit's SWAPs over the initial permutation.
	l2p := append([]int(nil), p.Initial...)
	for i, g := range p.Circuit.Gates {
		if g.Kind != circuit.GateSwap && g.Kind != circuit.GateZZSwap {
			continue
		}
		if g.Q0 < 0 || g.Q0 >= len(p2l) || g.Q1 < 0 || g.Q1 >= len(p2l) || g.Q0 == g.Q1 {
			out = append(out, report(PermSoundness, i, "unfoldable %v on (%d,%d)", g.Kind, g.Q0, g.Q1))
			return out
		}
		lu, lv := p2l[g.Q0], p2l[g.Q1]
		p2l[g.Q0], p2l[g.Q1] = lv, lu
		if lu >= 0 {
			l2p[lu] = g.Q1
		}
		if lv >= 0 {
			l2p[lv] = g.Q0
		}
	}
	if p.Final != nil {
		if len(p.Final) != len(l2p) {
			out = append(out, report(PermSoundness, -1,
				"claimed final mapping covers %d logical qubits, circuit tracks %d", len(p.Final), len(l2p)))
			return out
		}
		for l := range l2p {
			if l2p[l] != p.Final[l] {
				out = append(out, report(PermSoundness, -1,
					"logical %d: SWAP fold ends at physical %d but compiler claims %d", l, l2p[l], p.Final[l]))
			}
		}
	}
	return out
}

func runCoverage(p *Pass) []Diagnostic {
	if p.Problem == nil || p.Initial == nil {
		return nil
	}
	p2l := foldInitial(p)
	if p2l == nil {
		return nil // perm-soundness owns invalid-initial findings
	}
	var out []Diagnostic
	done := make(map[graph.Edge]int)
	for i, g := range p.Circuit.Gates {
		switch g.Kind {
		case circuit.GateZZ, circuit.GateZZSwap:
			l0, l1 := p2l[g.Q0], p2l[g.Q1]
			if l0 < 0 || l1 < 0 {
				out = append(out, report(Coverage, i, "program gate on unmapped physical qubit (%d,%d)", g.Q0, g.Q1))
			} else {
				e := graph.NewEdge(l0, l1)
				if !p.Problem.HasEdge(l0, l1) {
					out = append(out, report(Coverage, i, "program gate realizes %v, not an interaction term", e))
				} else {
					if g.Tagged && g.Tag != e {
						out = append(out, report(Coverage, i, "tagged %v but the resident logical pair is %v", g.Tag, e))
					}
					done[e]++
					if done[e] == 2 {
						out = append(out, report(Coverage, i, "interaction term %v realized more than once", e))
					}
				}
			}
		}
		if g.Kind == circuit.GateSwap || g.Kind == circuit.GateZZSwap {
			p2l[g.Q0], p2l[g.Q1] = p2l[g.Q1], p2l[g.Q0]
		}
	}
	for _, e := range p.Problem.Edges() {
		if done[e] == 0 {
			out = append(out, report(Coverage, -1, "interaction term %v never realized", e))
		}
	}
	return out
}

func runDepthConsistency(p *Pass) []Diagnostic {
	if !p.CheckDepth {
		return nil
	}
	// Independent ASAP recomputation over the decomposed gate stream: a
	// gate starts one past the latest finish time among its operands.
	d := p.Circuit.Decompose()
	finish := make([]int, d.NQubits)
	depth := 0
	for _, g := range d.Gates {
		start := finish[g.Q0]
		if g.Kind.TwoQubit() && finish[g.Q1] > start {
			start = finish[g.Q1]
		}
		end := start + 1
		finish[g.Q0] = end
		if g.Kind.TwoQubit() {
			finish[g.Q1] = end
		}
		if end > depth {
			depth = end
		}
	}
	if depth != p.ReportedDepth {
		return []Diagnostic{report(DepthConsistency, -1,
			"scheduler reports depth %d but recomputed ASAP depth is %d", p.ReportedDepth, depth)}
	}
	return nil
}

func runDeadSwap(p *Pass) []Diagnostic {
	c := p.Circuit
	// Backward liveness over physical positions: live[q] means the logical
	// value sitting at q before the current gate is consumed by a later
	// program gate. A SWAP exchanges the demand on its two positions; a
	// SWAP with no demand on either side is dead.
	live := make([]bool, c.NQubits)
	var out []Diagnostic
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		if g.Q0 < 0 || g.Q0 >= c.NQubits || (g.Kind.TwoQubit() && (g.Q1 < 0 || g.Q1 >= c.NQubits)) {
			continue // arch-conformance owns malformed indices
		}
		switch g.Kind {
		case circuit.GateZZ, circuit.GateZZSwap:
			live[g.Q0], live[g.Q1] = true, true
		case circuit.GateSwap:
			if !live[g.Q0] && !live[g.Q1] {
				out = append(out, report(DeadSwap, i,
					"swap(%d,%d): no later program gate depends on it (3 wasted CX)", g.Q0, g.Q1))
			}
			live[g.Q0], live[g.Q1] = live[g.Q1], live[g.Q0]
		}
	}
	// Restore gate order (the sweep found them in reverse).
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}
