package verify

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/verify/sema"
)

// Sema proves the circuit's semantics, not just its structure: symbolic
// execution over a parity frame (internal/verify/sema) extracts the
// diagonal phase polynomial the circuit implements — conjugating every
// physical ZZ(θ) back to a logical edge term through the SWAP-tracked
// frame — and compares it, term by term, against the polynomial read off
// the problem graph. Equality up to final qubit permutation and term
// reordering is exactly the paper's correctness notion (Theorem 6.1):
// routing may permute freely, the implemented Hamiltonian may not change.
// Unlike the state-vector oracle (internal/sim, ~20-qubit ceiling) this
// runs in O(gates) and scales to every instance the compiler targets.
var Sema = &Analyzer{
	Name:     "sema",
	Severity: SeverityError,
	Doc: `The phase polynomial extracted by symbolically executing the
circuit (parity-frame tracking through SWAPs, ZZ/RZ terms conjugated to
logical variables) must equal the problem graph's polynomial: every
interaction term realized with the program angle, no spurious terms, no
phase on unmapped qubits, no uncompensated CNOT ladders, and H/RX confined
to state-prep and mixer layers. Pass.Angle pins the expected program
angle; when zero, all terms must agree on one shared non-zero angle.`,
	Requires: func(p *Pass) string {
		if p.Problem == nil {
			return "no problem graph"
		}
		if p.Initial == nil {
			return "no initial mapping"
		}
		return ""
	},
}

func init() { Sema.Run = runSema }

func runSema(p *Pass) []Diagnostic {
	if p.Problem == nil || p.Initial == nil {
		return nil
	}
	if foldInitial(p) == nil {
		return nil // perm-soundness owns invalid-initial findings
	}
	var out []Diagnostic
	ext := sema.Extract(p.Circuit, p.Initial, p.Problem.N())
	for _, is := range ext.Issues {
		out = append(out, report(Sema, is.Gate, "%s", is.Msg))
	}
	want := sema.FromGraph(p.Problem, p.Angle)
	for _, m := range sema.Compare(ext.Poly, want, sema.Tol) {
		out = append(out, report(Sema, -1, "%s", m.Msg))
	}
	// The frame leg of the proof: when the compiler claims a final
	// mapping, the symbolically tracked frame must agree with it — this is
	// what makes "equal up to permutation" safe to rely on at readout.
	if p.Final != nil && len(ext.Issues) == 0 {
		for l, ph := range p.Final {
			if ph < 0 || ph >= len(ext.Final) {
				continue // perm-soundness reports out-of-range claims
			}
			if ext.Final[ph] != l {
				out = append(out, report(Sema, -1,
					"claimed final mapping puts logical %d at physical %d, but the tracked frame ends with %s there",
					l, ph, frameContent(ext.Final[ph])))
			}
		}
	}
	return out
}

func frameContent(l int) string {
	if l < 0 {
		return "no logical qubit"
	}
	return fmt.Sprintf("logical %d", l)
}
