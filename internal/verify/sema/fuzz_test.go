package sema_test

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify/sema"
)

// FuzzSemaRoundTrip: random problem graph → compile → symbolic extraction
// must reproduce the problem's phase polynomial exactly (and the tracked
// frame must agree with the compiler's claimed final mapping). This guards
// both directions at once: a compiler bug that corrupts semantics, and a
// sema bug that rejects a correct circuit (the compile path would fail
// loudly, since the strict analyzers run inside Compile).
func FuzzSemaRoundTrip(f *testing.F) {
	f.Add(uint8(6), uint8(128), int64(1), uint8(0))
	f.Add(uint8(9), uint8(60), int64(7), uint8(1))
	f.Add(uint8(12), uint8(220), int64(42), uint8(2))
	f.Fuzz(func(t *testing.T, nRaw, densRaw uint8, seed int64, modeRaw uint8) {
		n := 4 + int(nRaw)%9 // 4..12 logical qubits
		density := 0.15 + float64(densRaw)/255.0*0.75
		prob := graph.GnpConnected(n, density, rand.New(rand.NewSource(seed)))
		if prob.M() == 0 {
			t.Skip("empty problem")
		}
		mode := []core.Mode{core.ModeHybrid, core.ModeGreedy, core.ModeATA}[int(modeRaw)%3]
		a := arch.GridN(n)
		const angle = 0.875 // exactly representable: term sums stay bit-exact
		res, err := core.Compile(a, prob, core.Options{Mode: mode, Angle: angle, Workers: 1})
		if err != nil {
			t.Fatalf("compile n=%d density=%.2f mode=%v: %v", n, density, mode, err)
		}
		ext := sema.Extract(res.Circuit, res.Initial, n)
		for _, is := range ext.Issues {
			t.Fatalf("extraction issue on a compiler-produced circuit: gate %d: %s", is.Gate, is.Msg)
		}
		if mism := sema.Compare(ext.Poly, sema.FromGraph(prob, angle), sema.Tol); len(mism) != 0 {
			t.Fatalf("polynomial mismatch: %v", mism)
		}
		for l, p := range res.Final {
			if ext.Final[p] != l {
				t.Fatalf("frame disagrees with claimed final mapping at logical %d", l)
			}
		}
		// The decomposed stream must prove equivalent too — same program,
		// CX-level grammar.
		dext := sema.Extract(res.Circuit.Decompose(), res.Initial, n)
		for _, is := range dext.Issues {
			t.Fatalf("decomposed extraction issue: gate %d: %s", is.Gate, is.Msg)
		}
		if mism := sema.Compare(dext.Poly, sema.FromGraph(prob, angle), sema.Tol); len(mism) != 0 {
			t.Fatalf("decomposed polynomial mismatch: %v", mism)
		}
	})
}
