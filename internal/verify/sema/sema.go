// Package sema proves circuit semantics symbolically: it executes a
// compiled circuit once, in O(gates), over a parity frame — each physical
// qubit carries the F2 sum of logical variables whose Z operator it
// currently represents — and accumulates the diagonal phase polynomial the
// circuit implements. For the permutable-operator programs this compiler
// targets (QAOA cost layers, 2-local commuting Hamiltonians) that
// polynomial *is* the program: the compiled circuit is correct iff its
// polynomial equals the one read off the problem graph, exactly, up to
// final qubit permutation and term reordering (the Theorem 6.1 notion of
// equivalence — structure may change freely, semantics may not).
//
// The frame rules:
//
//   - every mapped physical qubit starts as the singleton parity of its
//     resident logical variable (Pass.Initial); unmapped qubits get
//     distinct auxiliary variables so any phase that touches them is
//     detectable as garbage rather than silently attributed;
//   - SWAP (and the SWAP half of ZZSwap) exchanges the two parity vectors —
//     this is how the logical↔physical frame is tracked through routing;
//   - CNOT(c,t) xors the control's parity into the target's, which is why
//     the same extractor verifies both pattern-level circuits and their
//     CX-decomposed forms (CX·RZ(θ)·CX conjugates back to a ZZ term);
//   - RZ(θ) on a qubit with parity S contributes the term (S, θ);
//     ZZ(θ)/ZZSwap(θ) on qubits with parities S, T contribute (S⊕T, θ);
//   - H is tolerated only as state preparation (before any diagonal gate
//     touches the qubit) and RX only as a trailing mixer layer (no
//     diagonal gate on that qubit afterwards) — exactly the QAOA shape;
//     anything else breaks diagonality and is reported, never guessed at.
//
// Terms over the same parity merge by summing angles, giving a normal
// form (the multiset view: Term.Count records how many gates merged).
// A zero parity is a global phase and compares as equal by convention.
package sema

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"github.com/ata-pattern/ataqc/internal/circuit"
)

// Parity is a set of variables over F2, packed as a bitset. Variables
// [0, NVars) are logical qubits; variables >= NVars are auxiliary (the
// unknown initial content of unmapped physical qubits).
type Parity []uint64

func newParity(nvars int) Parity { return make(Parity, (nvars+63)/64) }

func singleton(nvars, v int) Parity {
	p := newParity(nvars)
	p[v/64] |= 1 << uint(v%64)
	return p
}

// Xor folds o into p in place.
func (p Parity) Xor(o Parity) {
	for i := range p {
		p[i] ^= o[i]
	}
}

// Clone returns an independent copy.
func (p Parity) Clone() Parity {
	c := make(Parity, len(p))
	copy(c, p)
	return c
}

// Weight returns the number of variables in the parity.
func (p Parity) Weight() int {
	n := 0
	for _, w := range p {
		n += bits.OnesCount64(w)
	}
	return n
}

// Vars returns the variable indices in ascending order.
func (p Parity) Vars() []int {
	var out []int
	for i, w := range p {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &^= 1 << uint(b)
		}
	}
	return out
}

// Key returns a canonical map key for the parity ("" for the zero parity).
func (p Parity) Key() string {
	vs := p.Vars()
	if len(vs) == 0 {
		return ""
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// Term is one normal-form entry of a phase polynomial: the parity support,
// the total accumulated angle, and how many gate contributions merged.
type Term struct {
	Vars  []int
	Angle float64
	Count int
}

// describe renders the support for diagnostics: "(u,v)" for edges, the
// variable list otherwise, "1" for the constant (global-phase) term.
func (t Term) describe(nLogical int) string {
	if len(t.Vars) == 0 {
		return "1"
	}
	parts := make([]string, len(t.Vars))
	for i, v := range t.Vars {
		if v >= nLogical {
			parts[i] = fmt.Sprintf("aux%d", v-nLogical)
		} else {
			parts[i] = fmt.Sprintf("%d", v)
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Polynomial is the phase-polynomial normal form: canonical parity key ->
// merged term. NLogical records how many variables are logical qubits
// (higher indices are auxiliary).
type Polynomial struct {
	NLogical int
	Terms    map[string]Term
}

func newPolynomial(nLogical int) *Polynomial {
	return &Polynomial{NLogical: nLogical, Terms: make(map[string]Term)}
}

func (p *Polynomial) add(par Parity, angle float64) {
	k := par.Key()
	t, ok := p.Terms[k]
	if !ok {
		t = Term{Vars: par.Vars()}
	}
	t.Angle += angle
	t.Count++
	p.Terms[k] = t
}

// Keys returns the term keys in a deterministic (sorted) order.
func (p *Polynomial) Keys() []string {
	keys := make([]string, 0, len(p.Terms))
	//vet:ignore maprange collected keys are sorted before returning
	for k := range p.Terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Issue is a structural problem found during extraction: a gate that
// breaks the diagonal discipline the symbolic executor can reason about.
// Gate indexes the circuit's gate list; -1 marks end-of-circuit findings.
type Issue struct {
	Gate int
	Msg  string
}

// Extraction is the full symbolic-execution result.
type Extraction struct {
	// Poly is the diagonal phase polynomial the circuit implements.
	Poly *Polynomial
	// Mixer accumulates trailing RX angles per logical qubit (QAOA mixer
	// layer); empty for bare compiled schedules.
	Mixer map[int]float64
	// Final is the physical->logical frame at circuit end: Final[q] = l
	// when qubit q ends holding exactly logical variable l, -1 otherwise
	// (auxiliary content or an uncompensated CNOT ladder — the latter is
	// also reported as an Issue).
	Final []int
	// Issues lists diagonal-discipline violations; a non-empty list means
	// Poly may be incomplete and equivalence cannot be claimed.
	Issues []Issue
}

// qubit lifecycle stages for the H/RX discipline.
const (
	stagePre  = iota // untouched: H state-prep still allowed
	stageDiag        // inside the diagonal region
	stagePost        // after a mixer RX: no further gates allowed
)

// Extract symbolically executes c from the given logical-to-physical
// initial mapping and returns the phase polynomial, the mixer layer, the
// final frame, and any diagonal-discipline issues. It never simulates
// amplitudes: cost is O(gates · words-per-parity).
func Extract(c *circuit.Circuit, initial []int, nLogical int) *Extraction {
	ext := &Extraction{Mixer: make(map[int]float64)}
	nAux := 0
	mapped := make([]bool, c.NQubits)
	for _, p := range initial {
		if p >= 0 && p < c.NQubits {
			mapped[p] = true
		}
	}
	for q := 0; q < c.NQubits; q++ {
		if !mapped[q] {
			nAux++
		}
	}
	nvars := nLogical + nAux
	ext.Poly = newPolynomial(nLogical)

	// Frame initialisation: mapped qubits are logical singletons, the rest
	// get distinct auxiliary variables.
	frame := make([]Parity, c.NQubits)
	aux := nLogical
	for q := range frame {
		if !mapped[q] {
			frame[q] = singleton(nvars, aux)
			aux++
		}
	}
	for l, p := range initial {
		if p < 0 || p >= c.NQubits || frame[p] != nil {
			// An invalid or duplicated initial mapping is perm-soundness's
			// finding; sema cannot anchor a frame on it.
			ext.Issues = append(ext.Issues, Issue{Gate: -1,
				Msg: fmt.Sprintf("initial mapping unusable: logical %d -> physical %d", l, p)})
			return ext
		}
		frame[p] = singleton(nvars, l)
	}

	stage := make([]int, c.NQubits)
	issue := func(gate int, format string, args ...any) {
		ext.Issues = append(ext.Issues, Issue{Gate: gate, Msg: fmt.Sprintf(format, args...)})
	}
	// enterDiag moves q into the diagonal region, reporting a violation if
	// a mixer RX already retired it.
	enterDiag := func(gate, q int) bool {
		if stage[q] == stagePost {
			issue(gate, "diagonal gate on qubit %d after its mixer RX", q)
			return false
		}
		stage[q] = stageDiag
		return true
	}

	for i, g := range c.Gates {
		if g.Q0 < 0 || g.Q0 >= c.NQubits || (g.Kind.TwoQubit() && (g.Q1 < 0 || g.Q1 >= c.NQubits || g.Q1 == g.Q0)) {
			issue(i, "malformed operands, cannot track frame")
			return ext
		}
		switch g.Kind {
		case circuit.GateH:
			// |+> preparation; the frame is unchanged (we verify the
			// diagonal region, not the product-state prep), so H is legal
			// only while no diagonal gate has touched the qubit yet.
			if stage[g.Q0] != stagePre {
				issue(i, "h on qubit %d outside the state-preparation layer", g.Q0)
			}
		case circuit.GateRX:
			// Mixer layer: the qubit retires. Only meaningful per logical
			// qubit, so a non-singleton parity is a corrupted frame.
			if stage[g.Q0] == stagePost {
				ext.Mixer[mixerKey(frame[g.Q0], nLogical)] += g.Angle
				continue
			}
			vs := frame[g.Q0].Vars()
			if len(vs) != 1 || vs[0] >= nLogical {
				issue(i, "mixer rx on qubit %d whose parity %s is not a logical qubit",
					g.Q0, Term{Vars: vs}.describe(nLogical))
			} else {
				ext.Mixer[vs[0]] += g.Angle
			}
			stage[g.Q0] = stagePost
		case circuit.GateRZ:
			if !enterDiag(i, g.Q0) {
				continue
			}
			ext.Poly.add(frame[g.Q0], g.Angle)
		case circuit.GateCNOT:
			if !enterDiag(i, g.Q0) || !enterDiag(i, g.Q1) {
				continue
			}
			frame[g.Q1].Xor(frame[g.Q0])
		case circuit.GateZZ, circuit.GateZZSwap:
			if !enterDiag(i, g.Q0) || !enterDiag(i, g.Q1) {
				continue
			}
			t := frame[g.Q0].Clone()
			t.Xor(frame[g.Q1])
			ext.Poly.add(t, g.Angle)
			if g.Kind == circuit.GateZZSwap {
				frame[g.Q0], frame[g.Q1] = frame[g.Q1], frame[g.Q0]
				stage[g.Q0], stage[g.Q1] = stage[g.Q1], stage[g.Q0]
			}
		case circuit.GateSwap:
			if !enterDiag(i, g.Q0) || !enterDiag(i, g.Q1) {
				continue
			}
			frame[g.Q0], frame[g.Q1] = frame[g.Q1], frame[g.Q0]
		default:
			issue(i, "gate kind %v is outside the symbolic executor's grammar", g.Kind)
		}
	}

	// Final frame: singleton logical parities become the claimed final
	// mapping; anything wider is an uncompensated CNOT ladder.
	ext.Final = make([]int, c.NQubits)
	for q := range frame {
		ext.Final[q] = -1
		vs := frame[q].Vars()
		if len(vs) == 1 && vs[0] < nLogical {
			ext.Final[q] = vs[0]
		} else if len(vs) > 1 {
			issue(-1, fmt.Sprintf("qubit %d ends holding parity %s: uncompensated CNOT ladder",
				q, Term{Vars: vs}.describe(nLogical)))
		}
	}
	return ext
}

// mixerKey resolves the logical index for a post-stage RX merge (the
// parity was validated a singleton when the stage flipped).
func mixerKey(p Parity, nLogical int) int {
	vs := p.Vars()
	if len(vs) == 1 && vs[0] < nLogical {
		return vs[0]
	}
	return -1
}
