package sema

import (
	"fmt"
	"math"

	"github.com/ata-pattern/ataqc/internal/graph"
)

// Tol is the default angle tolerance: term angles are sums of literal
// float64 gate parameters, so matching terms agree bit-for-bit in practice;
// the epsilon only absorbs association-order noise in merged sums.
const Tol = 1e-9

// FromGraph reads the problem's phase polynomial off its interaction
// graph: one weight-2 term per edge. A non-zero angle pins every term to
// it; angle 0 means "uniform but unknown" — Compare then requires all
// realized edge terms to share one non-zero angle instead of a specific
// value (the compiled schedule's angle is a free parameter QAOA rebinds).
func FromGraph(g *graph.Graph, angle float64) *Polynomial {
	p := newPolynomial(g.N())
	for _, e := range g.Edges() {
		t := singleton(g.N(), e.U)
		t.Xor(singleton(g.N(), e.V))
		p.add(t, angle)
	}
	return p
}

// Mismatch is one disagreement between an extracted polynomial and the
// problem polynomial.
type Mismatch struct {
	// Term renders the parity support ("(u,v)" for edges).
	Term string
	// Got/Want are the accumulated angles (Want is NaN in uniform mode
	// for spurious terms).
	Got, Want float64
	// Count is how many circuit gates contributed to the term.
	Count int
	// Msg is the human-readable finding.
	Msg string
}

// Compare proves got == want up to term reordering: every problem term
// must be realized with the right total angle, and the circuit must
// contribute nothing else (zero-parity global-phase terms and angles
// within tol of zero are ignored). When want was built with angle 0,
// realized terms must instead agree on one shared non-zero angle.
// The returned mismatches are in deterministic (sorted-key) order.
func Compare(got, want *Polynomial, tol float64) []Mismatch {
	if tol <= 0 {
		tol = Tol
	}
	var out []Mismatch
	n := want.NLogical

	// Uniform mode: elect the reference angle as the most common realized
	// angle over wanted terms (deterministically: highest count, then
	// smallest angle), so a single corrupted gate reports as the outlier
	// rather than poisoning every other term's comparison.
	uniform := false
	ref := math.NaN()
	//vet:ignore maprange FromGraph assigns every term the same angle, any element works
	for _, t := range want.Terms {
		if t.Angle == 0 {
			uniform = true
		}
		break
	}
	if uniform {
		votes := make(map[float64]int)
		//vet:ignore maprange vote counting is commutative, order-independent
		for k, wt := range want.Terms {
			if gt, ok := got.Terms[k]; ok && wt.Count == gt.Count {
				votes[gt.Angle]++
			}
		}
		best := -1
		//vet:ignore maprange election is (max count, min angle), order-independent
		for a, c := range votes {
			if c > best || (c == best && a < ref) {
				best, ref = c, a
			}
		}
	}

	for _, k := range want.Keys() {
		wt := want.Terms[k]
		wantAngle := wt.Angle
		if uniform {
			wantAngle = ref
		}
		gt, ok := got.Terms[k]
		if !ok {
			out = append(out, Mismatch{Term: wt.describe(n), Got: 0, Want: wantAngle,
				Msg: fmt.Sprintf("interaction term %s never contributes to the circuit's phase polynomial", wt.describe(n))})
			continue
		}
		if uniform && math.IsNaN(ref) {
			// No consensus angle could be elected (every realized term
			// disagreed with every other); report each term individually.
			out = append(out, Mismatch{Term: wt.describe(n), Got: gt.Angle, Want: math.NaN(), Count: gt.Count,
				Msg: fmt.Sprintf("term %s realized with angle %v but no consensus program angle exists", wt.describe(n), gt.Angle)})
			continue
		}
		if math.Abs(gt.Angle-wantAngle) > tol {
			out = append(out, Mismatch{Term: wt.describe(n), Got: gt.Angle, Want: wantAngle, Count: gt.Count,
				Msg: fmt.Sprintf("term %s accumulates angle %v from %d gate(s), program wants %v",
					wt.describe(n), gt.Angle, gt.Count, wantAngle)})
		}
		if uniform && math.Abs(wantAngle) <= tol && gt.Count > 0 && math.Abs(gt.Angle) <= tol {
			// Consensus angle elected as ~0: a diagonal layer that does
			// nothing is not a valid program realization.
			out = append(out, Mismatch{Term: wt.describe(n), Got: gt.Angle, Want: wantAngle, Count: gt.Count,
				Msg: fmt.Sprintf("term %s realized with angle ~0; the program layer is a no-op", wt.describe(n))})
		}
	}

	for _, k := range got.Keys() {
		gt := got.Terms[k]
		if k == "" {
			continue // zero parity: global phase, semantically irrelevant
		}
		if _, ok := want.Terms[k]; ok {
			continue
		}
		if math.Abs(gt.Angle) <= tol {
			continue // cancelled or zero-angle stray term
		}
		aux := false
		for _, v := range gt.Vars {
			if v >= n {
				aux = true
			}
		}
		switch {
		case aux:
			out = append(out, Mismatch{Term: gt.describe(n), Got: gt.Angle, Want: 0, Count: gt.Count,
				Msg: fmt.Sprintf("phase term %s touches unmapped-qubit state (angle %v)", gt.describe(n), gt.Angle)})
		case len(gt.Vars) == 2:
			out = append(out, Mismatch{Term: gt.describe(n), Got: gt.Angle, Want: 0, Count: gt.Count,
				Msg: fmt.Sprintf("phase term %s (angle %v) is not an interaction of the problem", gt.describe(n), gt.Angle)})
		default:
			out = append(out, Mismatch{Term: gt.describe(n), Got: gt.Angle, Want: 0, Count: gt.Count,
				Msg: fmt.Sprintf("weight-%d phase term %s (angle %v) has no program counterpart",
					len(gt.Vars), gt.describe(n), gt.Angle)})
		}
	}
	return out
}
