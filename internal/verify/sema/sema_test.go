package sema

import (
	"math"
	"strings"
	"testing"

	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func mustClean(t *testing.T, ext *Extraction) {
	t.Helper()
	for _, is := range ext.Issues {
		t.Fatalf("unexpected issue: gate %d: %s", is.Gate, is.Msg)
	}
}

// TestExtractTracksSwaps: a ZZ executed after routing must be attributed
// to the logical pair the SWAPs brought together, not the physical pair.
func TestExtractTracksSwaps(t *testing.T) {
	// line of 4, logicals at identity; swap (1,2) then ZZ on physical
	// (2,3) acts on logicals (1,3).
	c := circuit.New(4)
	c.Append(circuit.NewSwap(1, 2))
	c.Append(circuit.Gate{Kind: circuit.GateZZ, Q0: 2, Q1: 3, Angle: 0.7})
	ext := Extract(c, identity(4), 4)
	mustClean(t, ext)
	term, ok := ext.Poly.Terms["1,3"]
	if !ok {
		t.Fatalf("no (1,3) term; terms: %v", ext.Poly.Keys())
	}
	if term.Angle != 0.7 || term.Count != 1 {
		t.Fatalf("term = %+v, want angle 0.7 count 1", term)
	}
	if len(ext.Poly.Terms) != 1 {
		t.Fatalf("extra terms: %v", ext.Poly.Keys())
	}
	// Frame: physical 1 now holds logical 2 and vice versa.
	if ext.Final[1] != 2 || ext.Final[2] != 1 {
		t.Fatalf("final frame %v, want swap of 1 and 2", ext.Final)
	}
}

// TestExtractDecomposedEqualsPattern: the CX·RZ·CX decomposition of a ZZ
// (and the 3/4-CX forms of SWAP/ZZSwap) must extract the identical
// polynomial — this is what lets sema verify post-decomposition streams.
func TestExtractDecomposedEqualsPattern(t *testing.T) {
	c := circuit.New(4)
	c.Append(circuit.NewZZ(0, 1, 0.3, graph.NewEdge(0, 1)))
	c.Append(circuit.Gate{Kind: circuit.GateZZSwap, Q0: 1, Q1: 2, Angle: 0.5, Tag: graph.NewEdge(1, 2), Tagged: true})
	c.Append(circuit.NewSwap(2, 3))
	c.Append(circuit.NewZZ(0, 1, 0.9, graph.NewEdge(0, 2)))

	pat := Extract(c, identity(4), 4)
	dec := Extract(c.Decompose(), identity(4), 4)
	mustClean(t, pat)
	mustClean(t, dec)
	if len(pat.Poly.Terms) != len(dec.Poly.Terms) {
		t.Fatalf("term counts differ: %v vs %v", pat.Poly.Keys(), dec.Poly.Keys())
	}
	for k, pt := range pat.Poly.Terms {
		dt, ok := dec.Poly.Terms[k]
		if !ok || math.Abs(dt.Angle-pt.Angle) > Tol {
			t.Fatalf("term %q: pattern %+v, decomposed %+v", k, pt, dt)
		}
	}
	for q := range pat.Final {
		if pat.Final[q] != dec.Final[q] {
			t.Fatalf("final frames differ at %d: %d vs %d", q, pat.Final[q], dec.Final[q])
		}
	}
}

// TestExtractQAOAShape: leading H layer and trailing RX mixer are accepted
// and recorded; the polynomial is unaffected.
func TestExtractQAOAShape(t *testing.T) {
	c := circuit.New(3)
	for q := 0; q < 3; q++ {
		c.Append(circuit.Gate{Kind: circuit.GateH, Q0: q, Q1: -1})
	}
	c.Append(circuit.NewZZ(0, 1, 0.4, graph.NewEdge(0, 1)))
	c.Append(circuit.NewSwap(1, 2))
	for q := 0; q < 3; q++ {
		c.Append(circuit.Gate{Kind: circuit.GateRX, Q0: q, Q1: -1, Angle: 0.25})
	}
	ext := Extract(c, identity(3), 3)
	mustClean(t, ext)
	if len(ext.Poly.Terms) != 1 {
		t.Fatalf("terms: %v", ext.Poly.Keys())
	}
	for l := 0; l < 3; l++ {
		if math.Abs(ext.Mixer[l]-0.25) > Tol {
			t.Fatalf("mixer[%d] = %v", l, ext.Mixer[l])
		}
	}
}

// TestExtractRejectsMidCircuitH: an H between diagonal gates breaks the
// diagonal frame and must be reported, not silently mis-modelled.
func TestExtractRejectsMidCircuitH(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.NewZZ(0, 1, 0.4, graph.NewEdge(0, 1)))
	c.Append(circuit.Gate{Kind: circuit.GateH, Q0: 0, Q1: -1})
	ext := Extract(c, identity(2), 2)
	if len(ext.Issues) == 0 {
		t.Fatal("mid-circuit H not reported")
	}
}

// TestExtractRejectsDiagonalAfterMixer: the mixer retires a qubit; any
// later diagonal gate there is outside the provable grammar.
func TestExtractRejectsDiagonalAfterMixer(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.Gate{Kind: circuit.GateRX, Q0: 0, Q1: -1, Angle: 0.3})
	c.Append(circuit.NewZZ(0, 1, 0.4, graph.NewEdge(0, 1)))
	ext := Extract(c, identity(2), 2)
	if len(ext.Issues) == 0 {
		t.Fatal("post-mixer diagonal gate not reported")
	}
}

// TestExtractFlagsDroppedCX: removing one CX from a decomposed stream
// leaves a parity ladder open at circuit end.
func TestExtractFlagsDroppedCX(t *testing.T) {
	c := circuit.New(2)
	c.Append(circuit.NewZZ(0, 1, 0.4, graph.NewEdge(0, 1)))
	d := c.Decompose()
	d.Gates = d.Gates[:len(d.Gates)-1] // drop the closing CX
	ext := Extract(d, identity(2), 2)
	if len(ext.Issues) == 0 {
		t.Fatal("uncompensated CNOT ladder not reported")
	}
}

// TestExtractAuxQubits: gates that leak phase onto unmapped device qubits
// produce aux terms that Compare rejects.
func TestExtractAuxQubits(t *testing.T) {
	// 2 logicals on a 4-qubit device; a stray ZZ touches unmapped qubit 3.
	c := circuit.New(4)
	c.Append(circuit.NewZZ(0, 1, 0.4, graph.NewEdge(0, 1)))
	c.Append(circuit.Gate{Kind: circuit.GateZZ, Q0: 2, Q1: 3, Angle: 0.8})
	ext := Extract(c, []int{0, 1}, 2)
	mustClean(t, ext)
	prob := graph.New(2)
	prob.AddEdge(0, 1)
	mism := Compare(ext.Poly, FromGraph(prob, 0.4), Tol)
	if len(mism) != 1 {
		t.Fatalf("mismatches: %v", mism)
	}
	if got := mism[0].Msg; !strings.Contains(got, "unmapped") {
		t.Fatalf("msg %q does not mention unmapped-qubit state", got)
	}
}

// TestCompareModes: pinned-angle and uniform-consensus comparison.
func TestCompareModes(t *testing.T) {
	prob := graph.New(3)
	prob.AddEdge(0, 1)
	prob.AddEdge(1, 2)
	build := func(a01, a12 float64) *Polynomial {
		c := circuit.New(3)
		c.Append(circuit.NewZZ(0, 1, a01, graph.NewEdge(0, 1)))
		c.Append(circuit.NewZZ(1, 2, a12, graph.NewEdge(1, 2)))
		return Extract(c, identity(3), 3).Poly
	}
	if m := Compare(build(1, 1), FromGraph(prob, 1), Tol); len(m) != 0 {
		t.Fatalf("pinned clean: %v", m)
	}
	if m := Compare(build(1, 1), FromGraph(prob, 2), Tol); len(m) != 2 {
		t.Fatalf("pinned wrong angle: %v", m)
	}
	if m := Compare(build(0.5, 0.5), FromGraph(prob, 0), Tol); len(m) != 0 {
		t.Fatalf("uniform clean: %v", m)
	}
	// One outlier under uniform mode: consensus elects 0.5, flags (1,2).
	m := Compare(build(0.5, 0.7), FromGraph(prob, 0), Tol)
	if len(m) != 1 || m[0].Term != "(1,2)" {
		t.Fatalf("uniform outlier: %v", m)
	}
}
