package sema_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/baseline"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/sim"
	"github.com/ata-pattern/ataqc/internal/verify/sema"
)

// TestSemaAgreesWithStatevector cross-validates the two oracles on every
// small instance: the symbolic phase polynomial (scales to any size) and
// the state-vector simulator (exact, ~20-qubit ceiling) must accept and
// agree on the same circuits. Concretely, for each compiler's output we
// check (a) sema proves polynomial equivalence, and (b) simulating the
// compiled circuit from |+...+> equals directly exponentiating the
// problem polynomial at the initial placement, after aligning the final
// qubit permutation — fidelity 1 up to float noise. If either oracle had
// a sign/convention bug, this is the test that catches it.
func TestSemaAgreesWithStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type inst struct {
		name string
		prob *graph.Graph
	}
	instances := []inst{
		{"ring6", graph.Cycle(6)},
		{"k5", graph.Complete(5)},
		{"path7", graph.Path(7)},
		{"gnp8", graph.GnpConnected(8, 0.4, rng)},
		{"gnp10", graph.GnpConnected(10, 0.3, rng)},
		{"gnp12", graph.GnpConnected(12, 0.25, rng)},
	}
	const angle = 0.6
	for _, in := range instances {
		n := in.prob.N()
		a := arch.GridN(n)
		type compiled struct {
			name    string
			circ    *circuit.Circuit
			initial []int
			final   []int
		}
		var outs []compiled
		for _, mode := range []core.Mode{core.ModeHybrid, core.ModeGreedy, core.ModeATA} {
			res, err := core.Compile(a, in.prob, core.Options{Mode: mode, Angle: angle, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%v: %v", in.name, mode, err)
			}
			outs = append(outs, compiled{mode.String(), res.Circuit, res.Initial, res.Final})
		}
		for _, bl := range []struct {
			name string
			run  func(*arch.Arch, *graph.Graph, float64) (*baseline.Result, error)
		}{{"2qan", baseline.TwoQAN}, {"qaim", baseline.QAIM}, {"paulihedral", baseline.Paulihedral}} {
			res, err := bl.run(a, in.prob, angle)
			if err != nil {
				t.Fatalf("%s/%s: %v", in.name, bl.name, err)
			}
			outs = append(outs, compiled{bl.name, res.Circuit, res.Initial, res.Final})
		}
		for _, c := range outs {
			t.Run(in.name+"/"+c.name, func(t *testing.T) {
				// Oracle 1: symbolic.
				ext := sema.Extract(c.circ, c.initial, n)
				if len(ext.Issues) != 0 {
					t.Fatalf("sema issues: %v", ext.Issues)
				}
				if mism := sema.Compare(ext.Poly, sema.FromGraph(in.prob, angle), sema.Tol); len(mism) != 0 {
					t.Fatalf("sema mismatches: %v", mism)
				}
				// Oracle 2: numeric, on the compacted circuit.
				comp, remap := c.circ.Compact()
				if comp.NQubits > 16 {
					t.Skipf("compact circuit spans %d qubits", comp.NQubits)
				}
				got := sim.NewZero(comp.NQubits)
				for q := 0; q < comp.NQubits; q++ {
					got.H(q)
				}
				got.Run(comp)

				want := sim.NewZero(comp.NQubits)
				for q := 0; q < comp.NQubits; q++ {
					want.H(q)
				}
				for _, e := range in.prob.Edges() {
					want.ZZ(remap[c.initial[e.U]], remap[c.initial[e.V]], angle)
				}
				// Align the final permutation: logical l sits at
				// remap[final[l]] in got but remap[initial[l]] in want.
				perm := make([]int, comp.NQubits) // current -> target
				for i := range perm {
					perm[i] = i
				}
				final := c.final
				if final == nil {
					final = circuit.FinalMapping(c.circ, c.initial)
				}
				pos := make([]int, comp.NQubits) // where each original want-qubit currently is
				for i := range pos {
					pos[i] = i
				}
				at := make([]int, comp.NQubits) // inverse of pos
				copy(at, pos)
				for l := 0; l < n; l++ {
					src, dst := remap[c.initial[l]], remap[final[l]]
					cur := pos[src]
					if cur == dst {
						continue
					}
					occupant := at[dst]
					want.Swap(cur, dst)
					pos[src], pos[occupant] = dst, cur
					at[dst], at[cur] = src, occupant
				}
				if fid := got.InnerAbs2(want); math.Abs(fid-1) > 1e-9 {
					t.Fatalf("statevector fidelity %v, want 1", fid)
				}
				_ = perm
			})
		}
	}
}
