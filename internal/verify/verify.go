// Package verify is a static circuit-correctness analyzer: it walks a
// compiled circuit.Circuit without simulating it and reports structured
// diagnostics, modeled on go/analysis. Each Analyzer encodes one invariant
// the compiler must preserve — the §4 admissibility conditions (2q gates on
// coupled qubits, one gate per interaction term) and the §5–6 hybrid
// guarantee bookkeeping (SWAP-folded permutation soundness, depth
// consistency) — plus optimization lints such as dead-SWAP detection.
//
// The pass is pure inspection: analyzers never mutate the circuit and a
// clean run proves nothing about angles or unitaries, only about structure.
// The hybrid compiler (internal/core) runs the error-severity analyzers on
// every output; the baselines and benchmarks run the same pass, and
// cmd/ataqc-lint exposes it to CI over QASM or edge-list inputs.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// Severity classifies a diagnostic. Errors are correctness violations — the
// circuit does not implement the program; warnings are optimization lints.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarning
)

func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one analyzer finding. Gate is the machine-readable
// position: an index into Pass.Circuit.Gates, or -1 for circuit-level
// findings (e.g. a problem edge that was never scheduled).
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Gate     int
	Message  string
}

func (d Diagnostic) String() string {
	if d.Gate >= 0 {
		return fmt.Sprintf("%s: %s: gate %d: %s", d.Severity, d.Analyzer, d.Gate, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Severity, d.Analyzer, d.Message)
}

// Pass is the unit of analysis: one compiled circuit plus the compilation
// context the analyzers check it against. Circuit is required; every other
// field widens the set of invariants that can be checked (analyzers skip
// silently when their inputs are absent).
type Pass struct {
	// Circuit is the compiled circuit under analysis.
	Circuit *circuit.Circuit
	// Arch is the target architecture; enables coupling-graph conformance.
	Arch *arch.Arch
	// Problem is the input interaction graph; enables coverage analysis.
	Problem *graph.Graph
	// Initial is the logical-to-physical mapping at circuit start. Required
	// by coverage and perm-soundness.
	Initial []int
	// Final, when non-nil, is the final mapping the compiler claims;
	// perm-soundness refolds the SWAPs and compares.
	Final []int
	// ReportedDepth is the decomposed ASAP depth the scheduler reports;
	// checked by depth-consistency only when CheckDepth is set (a zero
	// depth is legitimate for empty circuits, so presence needs a flag).
	ReportedDepth int
	CheckDepth    bool
}

// Analyzer is one named static check, go/analysis style.
type Analyzer struct {
	// Name is the analyzer's stable kebab-case identifier.
	Name string
	// Doc is a one-paragraph description of the invariant checked and where
	// it comes from in the paper.
	Doc string
	// Severity is the severity of every diagnostic this analyzer reports.
	Severity Severity
	// Run inspects the pass and returns findings (nil when clean).
	Run func(p *Pass) []Diagnostic
}

// All lists every registered analyzer, errors first.
var All = []*Analyzer{ArchConformance, PermSoundness, Coverage, DepthConsistency, AngleSanity, DeadSwap}

// Strict lists the error-severity analyzers — the set a compiler output
// must pass for the compilation to be considered correct.
var Strict = []*Analyzer{ArchConformance, PermSoundness, Coverage, DepthConsistency, AngleSanity}

// Run executes the analyzers against the pass and returns their combined
// diagnostics, ordered by gate position (circuit-level findings last).
func Run(p *Pass, analyzers ...*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		out = append(out, a.Run(p)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := out[i].Gate, out[j].Gate
		if gi < 0 {
			gi = int(^uint(0) >> 1)
		}
		if gj < 0 {
			gj = int(^uint(0) >> 1)
		}
		return gi < gj
	})
	return out
}

// Check runs the analyzers and converts error-severity findings into a
// single error (nil when the circuit is clean or has only warnings).
func Check(p *Pass, analyzers ...*Analyzer) error {
	return AsError(Run(p, analyzers...))
}

// AsError folds the error-severity diagnostics of a run into one error,
// or nil if none. Warnings never produce an error.
func AsError(diags []Diagnostic) error {
	var errs []string
	for _, d := range diags {
		if d.Severity == SeverityError {
			errs = append(errs, d.String())
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
}

// report is a small helper for analyzer implementations.
func report(a *Analyzer, gate int, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: a.Name, Severity: a.Severity, Gate: gate, Message: fmt.Sprintf(format, args...)}
}
