// Package verify is a static circuit-correctness analyzer: it walks a
// compiled circuit.Circuit without simulating it and reports structured
// diagnostics, modeled on go/analysis. Each Analyzer encodes one invariant
// the compiler must preserve — the §4 admissibility conditions (2q gates on
// coupled qubits, one gate per interaction term) and the §5–6 hybrid
// guarantee bookkeeping (SWAP-folded permutation soundness, depth
// consistency) — plus optimization lints such as dead-SWAP detection.
//
// The pass is pure inspection: analyzers never mutate the circuit and a
// clean run proves nothing about angles or unitaries, only about structure.
// The hybrid compiler (internal/core) runs the error-severity analyzers on
// every output; the baselines and benchmarks run the same pass, and
// cmd/ataqc-lint exposes it to CI over QASM or edge-list inputs.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// Severity classifies a diagnostic. Errors are correctness violations — the
// circuit does not implement the program; warnings are optimization lints.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarning
)

func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one analyzer finding. Gate is the machine-readable
// position: an index into Pass.Circuit.Gates, or -1 for circuit-level
// findings (e.g. a problem edge that was never scheduled). Gate-anchored
// diagnostics also carry the gate's operands — kind, physical qubits, and
// the logical qubits resident there when the gate executes — so a finding
// is actionable without re-dumping the circuit; Run fills these in.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Gate     int
	// Kind is the offending gate's mnemonic ("zz", "swap", ...); empty for
	// circuit-level findings.
	Kind string
	// Q0, Q1 are the gate's physical operands (Q1 = -1 for 1q gates).
	Q0, Q1 int
	// L0, L1 are the logical qubits resident on Q0/Q1 immediately before
	// the gate executes; -1 when unmapped or when the pass carried no
	// usable initial mapping.
	L0, L1  int
	Message string
}

func (d Diagnostic) String() string {
	if d.Gate < 0 {
		return fmt.Sprintf("%s: %s: %s", d.Severity, d.Analyzer, d.Message)
	}
	if d.Kind == "" {
		return fmt.Sprintf("%s: %s: gate %d: %s", d.Severity, d.Analyzer, d.Gate, d.Message)
	}
	op := fmt.Sprintf("%s(%d)", d.Kind, d.Q0)
	if d.Q1 >= 0 {
		op = fmt.Sprintf("%s(%d,%d)", d.Kind, d.Q0, d.Q1)
	}
	log := ""
	switch {
	case d.L0 >= 0 && d.L1 >= 0:
		log = fmt.Sprintf("[logical (%d,%d)]", d.L0, d.L1)
	case d.L0 >= 0:
		log = fmt.Sprintf("[logical %d]", d.L0)
	}
	return fmt.Sprintf("%s: %s: gate %d %s%s: %s", d.Severity, d.Analyzer, d.Gate, op, log, d.Message)
}

// Pass is the unit of analysis: one compiled circuit plus the compilation
// context the analyzers check it against. Circuit is required; every other
// field widens the set of invariants that can be checked (analyzers skip
// silently when their inputs are absent).
type Pass struct {
	// Circuit is the compiled circuit under analysis.
	Circuit *circuit.Circuit
	// Arch is the target architecture; enables coupling-graph conformance.
	Arch *arch.Arch
	// Problem is the input interaction graph; enables coverage analysis.
	Problem *graph.Graph
	// Initial is the logical-to-physical mapping at circuit start. Required
	// by coverage and perm-soundness.
	Initial []int
	// Final, when non-nil, is the final mapping the compiler claims;
	// perm-soundness refolds the SWAPs and compares.
	Final []int
	// ReportedDepth is the decomposed ASAP depth the scheduler reports;
	// checked by depth-consistency only when CheckDepth is set (a zero
	// depth is legitimate for empty circuits, so presence needs a flag).
	ReportedDepth int
	CheckDepth    bool
	// Angle is the uniform program-gate angle the compiler recorded on its
	// ZZ/ZZSwap gates; the sema analyzer pins every phase-polynomial term
	// to it. Zero means unknown: sema then requires all terms to agree on
	// one shared non-zero angle instead of a specific value.
	Angle float64
}

// Analyzer is one named static check, go/analysis style.
type Analyzer struct {
	// Name is the analyzer's stable kebab-case identifier.
	Name string
	// Doc is a one-paragraph description of the invariant checked and where
	// it comes from in the paper.
	Doc string
	// Severity is the severity of every diagnostic this analyzer reports.
	Severity Severity
	// Run inspects the pass and returns findings (nil when clean).
	Run func(p *Pass) []Diagnostic
	// Requires, when non-nil, reports why the analyzer cannot run against
	// the pass ("" = it can). RunStatus uses it to distinguish "clean"
	// from "silently skipped for missing context" — a distinction CI
	// diffs need, since a skipped analyzer proves nothing.
	Requires func(p *Pass) string
}

// skipReason resolves the analyzer's applicability against a pass.
func (a *Analyzer) skipReason(p *Pass) string {
	if a.Requires == nil {
		return ""
	}
	return a.Requires(p)
}

// Status records whether one analyzer actually ran against a pass.
type Status struct {
	// Name is the analyzer's identifier.
	Name string
	// Skipped is true when required pass context was missing.
	Skipped bool
	// Reason says which context was missing ("" when the analyzer ran).
	Reason string
}

// All lists every registered analyzer, errors first.
var All = []*Analyzer{ArchConformance, PermSoundness, Coverage, Sema, DepthConsistency, AngleSanity, DeadSwap}

// Strict lists the error-severity analyzers — the set a compiler output
// must pass for the compilation to be considered correct.
var Strict = []*Analyzer{ArchConformance, PermSoundness, Coverage, Sema, DepthConsistency, AngleSanity}

// Run executes the analyzers against the pass and returns their combined
// diagnostics, ordered by gate position (circuit-level findings last).
func Run(p *Pass, analyzers ...*Analyzer) []Diagnostic {
	diags, _ := RunStatus(p, analyzers...)
	return diags
}

// RunStatus is Run plus per-analyzer accounting: the second return lists
// every requested analyzer in order, marking the ones that skipped
// themselves because the pass lacked their required context.
func RunStatus(p *Pass, analyzers ...*Analyzer) ([]Diagnostic, []Status) {
	var out []Diagnostic
	statuses := make([]Status, 0, len(analyzers))
	for _, a := range analyzers {
		if reason := a.skipReason(p); reason != "" {
			statuses = append(statuses, Status{Name: a.Name, Skipped: true, Reason: reason})
			continue
		}
		statuses = append(statuses, Status{Name: a.Name})
		out = append(out, a.Run(p)...)
	}
	annotate(p, out)
	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := out[i].Gate, out[j].Gate
		if gi < 0 {
			gi = int(^uint(0) >> 1)
		}
		if gj < 0 {
			gj = int(^uint(0) >> 1)
		}
		return gi < gj
	})
	return out, statuses
}

// annotate fills the operand fields of gate-anchored diagnostics: the
// gate's kind and physical qubits always, plus the logical qubits resident
// there at execution time when the pass carries a usable initial mapping
// (one forward frame fold, shared across all diagnostics).
func annotate(p *Pass, diags []Diagnostic) {
	needFrame := false
	for i := range diags {
		d := &diags[i]
		if d.Gate < 0 || d.Gate >= len(p.Circuit.Gates) {
			d.Q0, d.Q1, d.L0, d.L1 = -1, -1, -1, -1
			continue
		}
		g := p.Circuit.Gates[d.Gate]
		d.Kind = g.Kind.String()
		d.Q0, d.Q1 = g.Q0, g.Q1
		if !g.Kind.TwoQubit() {
			d.Q1 = -1
		}
		d.L0, d.L1 = -1, -1
		needFrame = true
	}
	if !needFrame || p.Initial == nil {
		return
	}
	p2l := foldInitial(p)
	if p2l == nil {
		return
	}
	// Frames are needed at each diagnostic's gate index; a single forward
	// fold visits them in order (diagnostics are not yet sorted here, so
	// index them by gate first).
	byGate := make(map[int][]*Diagnostic)
	for i := range diags {
		if d := &diags[i]; d.Gate >= 0 && d.Gate < len(p.Circuit.Gates) {
			byGate[d.Gate] = append(byGate[d.Gate], d)
		}
	}
	inRange := func(q int) bool { return q >= 0 && q < len(p2l) }
	for i, g := range p.Circuit.Gates {
		for _, d := range byGate[i] {
			if inRange(d.Q0) {
				d.L0 = p2l[d.Q0]
			}
			if d.Q1 >= 0 && inRange(d.Q1) {
				d.L1 = p2l[d.Q1]
			}
		}
		if (g.Kind == circuit.GateSwap || g.Kind == circuit.GateZZSwap) &&
			inRange(g.Q0) && inRange(g.Q1) && g.Q0 != g.Q1 {
			p2l[g.Q0], p2l[g.Q1] = p2l[g.Q1], p2l[g.Q0]
		}
	}
}

// Check runs the analyzers and converts error-severity findings into a
// single error (nil when the circuit is clean or has only warnings).
func Check(p *Pass, analyzers ...*Analyzer) error {
	return AsError(Run(p, analyzers...))
}

// AsError folds the error-severity diagnostics of a run into one error,
// or nil if none. Warnings never produce an error.
func AsError(diags []Diagnostic) error {
	var errs []string
	for _, d := range diags {
		if d.Severity == SeverityError {
			errs = append(errs, d.String())
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
}

// report is a small helper for analyzer implementations.
func report(a *Analyzer, gate int, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: a.Name, Severity: a.Severity, Gate: gate, Message: fmt.Sprintf(format, args...)}
}
