package solver

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"sync"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// engine is the optimized A* machinery. A search state (p2l, rem) is packed
// into stride = N+8 bytes — one byte per physical qubit (occupant logical +
// 1, so 0 means empty) followed by the remaining-edge bitmask little-endian
// — and stored once in a flat arena. Node metadata (g, h, parent, via
// cycle, heap position) lives in parallel slices indexed by node id, the
// closed set is an open-addressing table of node ids, and the open heap
// holds node ids with an exact position index so improvements are
// decrease-key operations instead of duplicate pushes. All scratch buffers
// are reused across expansions and the whole engine is pooled across
// searches, so the steady-state expansion loop does not allocate.
type engine struct {
	a       *arch.Arch
	problem *graph.Graph
	edges   []graph.Edge
	dist    [][]int

	np     int // physical qubits
	nl     int // logical qubits
	ne     int // problem edges
	nc     int // coupling edges
	stride int // np + 8 bytes per packed state

	// Per-search action templates and heuristic tables.
	ceU, ceV     []int16  // coupling edge endpoints
	ceIdx        []int16  // flat np*np physical pair -> coupling index, -1
	pairEdge     []int16  // flat nl*nl logical pair -> problem edge index, -1
	vertexMask   []uint64 // problem-edge bits incident to each logical qubit
	edgeU, edgeV []int16  // problem edge endpoints

	// auts holds the coupling-graph automorphisms states are canonicalized
	// under; auts[0] is always the identity, and len(auts) == 1 when
	// symmetry reduction is disabled or unavailable.
	auts [][]int16

	// Node arenas, indexed by node id.
	states  []byte   // packed states, stride bytes each
	costs   []uint8  // per-edge heuristic cost cache, ne bytes each
	hashes  []uint64 // state hash, for probing and table growth
	g, h    []int32
	parent  []int32
	autOf   []uint8 // automorphism applied at canonicalization
	viaOff  []int32 // offset into ops of the arriving cycle
	viaLen  []int32
	heapPos []int32 // position in heap, -1 = not open
	ops     []Op    // via cycle arena (parent-frame coordinates)

	table []int32 // open-addressing closed set: node ids, -1 = empty
	heap  []int32 // open set: node ids ordered by (g+h, -g)

	peakOpen int

	// Expansion context (valid during one expand call).
	expID       int32
	expState    []byte // parent packed state (view into states)
	expCost     []uint8
	expRem      uint64
	expG        int32
	expGateBits uint64  // problem-edge bits of the gates chosen so far
	expGate     []int16 // per coupling: available problem edge index, -1
	expGateList []int16 // couplings with an available gate, for the prune scan
	chosen      []chosenAct

	// Scratch buffers.
	l2p        []int16
	childL2p   []int16
	childState []byte
	candState  []byte
	bestState  []byte
	childCost  []uint8
	used       []bool
	parentSwap []bool  // coupling indices swapped by the arriving cycle
	swapMarks  []int16 // which parentSwap entries are set, for cheap reset
	touch      []int16 // logical qubits touched by the chosen cycle
}

type chosenAct struct {
	ci   int16 // coupling index
	ei   int16 // problem edge index when gate
	gate bool
}

// enginePool recycles engines (arenas, tables, scratch) across searches, so
// callers that solve many small instances — the equivalence property tests,
// the swapnet optimality cross-checks, the benchmark harness — do not
// rebuild multi-megabyte buffers per call.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

func newEngine(a *arch.Arch, problem *graph.Graph, edges []graph.Edge, symmetry bool) *engine {
	e := enginePool.Get().(*engine)
	e.a, e.problem, e.edges = a, problem, edges
	e.dist = a.Distances()
	e.np, e.nl, e.ne = a.N(), problem.N(), len(edges)
	e.stride = e.np + 8

	ce := a.G.Edges()
	e.nc = len(ce)
	e.ceU = growI16(e.ceU, e.nc)
	e.ceV = growI16(e.ceV, e.nc)
	e.ceIdx = growI16(e.ceIdx, e.np*e.np)
	fillI16(e.ceIdx, -1)
	for i, c := range ce {
		e.ceU[i], e.ceV[i] = int16(c.U), int16(c.V)
		e.ceIdx[c.U*e.np+c.V] = int16(i)
		e.ceIdx[c.V*e.np+c.U] = int16(i)
	}

	e.pairEdge = growI16(e.pairEdge, e.nl*e.nl)
	fillI16(e.pairEdge, -1)
	e.vertexMask = growU64(e.vertexMask, e.nl)
	for i := range e.vertexMask {
		e.vertexMask[i] = 0
	}
	e.edgeU = growI16(e.edgeU, e.ne)
	e.edgeV = growI16(e.edgeV, e.ne)
	for i, ed := range edges {
		e.pairEdge[ed.U*e.nl+ed.V] = int16(i)
		e.pairEdge[ed.V*e.nl+ed.U] = int16(i)
		e.vertexMask[ed.U] |= 1 << uint(i)
		e.vertexMask[ed.V] |= 1 << uint(i)
		e.edgeU[i], e.edgeV[i] = int16(ed.U), int16(ed.V)
	}

	e.auts = automorphisms(a, symmetry, e.auts)

	e.states = e.states[:0]
	e.costs = e.costs[:0]
	e.hashes = e.hashes[:0]
	e.g, e.h = e.g[:0], e.h[:0]
	e.parent = e.parent[:0]
	e.autOf = e.autOf[:0]
	e.viaOff, e.viaLen = e.viaOff[:0], e.viaLen[:0]
	e.heapPos = e.heapPos[:0]
	e.ops = e.ops[:0]
	e.heap = e.heap[:0]
	if len(e.table) < 1<<12 {
		e.table = make([]int32, 1<<12)
	}
	fillI32(e.table, -1)
	e.peakOpen = 0

	e.expGate = growI16(e.expGate, e.nc)
	e.expGateList = e.expGateList[:0]
	e.chosen = e.chosen[:0]
	e.l2p = growI16(e.l2p, e.nl)
	e.childL2p = growI16(e.childL2p, e.nl)
	e.childState = growBytes(e.childState, e.stride)
	e.candState = growBytes(e.candState, e.stride)
	e.bestState = growBytes(e.bestState, e.stride)
	e.childCost = growU8(e.childCost, e.ne)
	e.used = growBool(e.used, e.np)
	for i := range e.used {
		e.used[i] = false
	}
	e.parentSwap = growBool(e.parentSwap, e.nc)
	for i := range e.parentSwap {
		e.parentSwap[i] = false
	}
	e.swapMarks = e.swapMarks[:0]
	e.touch = e.touch[:0]
	return e
}

// maxPooledTable bounds the hash table an engine may carry back into the
// pool. newEngine clears the whole table, so pooling a table sized for a
// multi-million-node search would tax every later small solve with a
// hundreds-of-MB memset (observed: a 15-node search paying 43ms after a
// line-8 run). Oversized searches hand their arenas to the GC instead.
const maxPooledTable = 1 << 22

// release returns the engine to the pool. The caller must not touch the
// engine afterwards; Result data is copied out before release.
func (e *engine) release() {
	e.a, e.problem, e.edges, e.dist = nil, nil, nil, nil
	e.expState, e.expCost = nil, nil
	if len(e.table) > maxPooledTable {
		return // drop; the pool's New makes a fresh small one on demand
	}
	enginePool.Put(e)
}

func (e *engine) nodes() int { return len(e.g) }

func (e *engine) stateAt(id int32) []byte {
	off := int(id) * e.stride
	return e.states[off : off+e.stride]
}

func (e *engine) costAt(id int32) []uint8 {
	off := int(id) * e.ne
	return e.costs[off : off+e.ne]
}

func (e *engine) remOf(id int32) uint64 {
	off := int(id)*e.stride + e.np
	return binary.LittleEndian.Uint64(e.states[off : off+8])
}

// hashState is FNV-1a over 8-byte words with a final avalanche, cheap for
// the ~N+8 byte states while spreading the low entropy of mostly-small
// occupant bytes across the table index bits.
func hashState(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// find probes the closed set for state, returning its node id (or -1) and
// the slot where it would be inserted.
func (e *engine) find(state []byte, hash uint64) (int32, int) {
	mask := len(e.table) - 1
	i := int(hash) & mask
	for {
		v := e.table[i]
		if v < 0 {
			return -1, i
		}
		if e.hashes[v] == hash && bytes.Equal(e.stateAt(v), state) {
			return v, i
		}
		i = (i + 1) & mask
	}
}

// growTable doubles the table when the load factor passes 3/4.
func (e *engine) growTable() {
	if 4*len(e.g) < 3*len(e.table) {
		return
	}
	nt := make([]int32, 2*len(e.table))
	fillI32(nt, -1)
	mask := len(nt) - 1
	for id := range e.g {
		i := int(e.hashes[id]) & mask
		for nt[i] >= 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(id)
	}
	e.table = nt
}

// costClosed is cost(qi,qj) of Definition 3 in closed form: f(x) =
// max(du+x, dv+d-1-x) is convex piecewise-linear in x, so the integer
// minimum over [0, d-1] is at the clamped balance point or its neighbour.
// The value is clamped to 255 for the byte cache (clamping down keeps the
// heuristic admissible; real instances stay far below it).
func costClosed(d, du, dv int) uint8 {
	if d < 1 {
		if d == 0 {
			if du > dv {
				return clamp255(du)
			}
			return clamp255(dv)
		}
		return 255 // disconnected pair: effectively unreachable
	}
	num := dv + d - 1 - du
	x := num >> 1 // floor division by 2, also for negative num
	if x < 0 {
		x = 0
	} else if x > d-1 {
		x = d - 1
	}
	best := maxInt(du+x, dv+d-1-x)
	if x+1 <= d-1 {
		if c := maxInt(du+x+1, dv+d-2-x); c < best {
			best = c
		}
	}
	return clamp255(best)
}

func clamp255(v int) uint8 {
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addRoot packs, canonicalizes, and stores the initial state with a fully
// computed per-edge cost cache.
func (e *engine) addRoot(start []int8) {
	for p := 0; p < e.np; p++ {
		e.childState[p] = byte(start[p] + 1)
	}
	full := uint64(0)
	for i := 0; i < e.ne; i++ {
		full |= 1 << uint(i)
	}
	binary.LittleEndian.PutUint64(e.childState[e.np:], full)

	for p := 0; p < e.np; p++ {
		if l := int(start[p]); l >= 0 {
			e.childL2p[l] = int16(p)
		}
	}
	h := int32(0)
	for i := 0; i < e.ne; i++ {
		d := e.dist[e.childL2p[e.edgeU[i]]][e.childL2p[e.edgeV[i]]]
		du := bits.OnesCount64(full & e.vertexMask[e.edgeU[i]])
		dv := bits.OnesCount64(full & e.vertexMask[e.edgeV[i]])
		c := costClosed(d, du, dv)
		e.childCost[i] = c
		if int32(c) > h {
			h = int32(c)
		}
	}

	state, aut := e.canonical()
	hash := hashState(state)
	_, slot := e.find(state, hash)
	e.insert(state, hash, slot, 0, h, -1, aut, 0, 0)
}

// canonical returns the lexicographically smallest automorphic image of
// childState (and the automorphism index that produced it). With symmetry
// disabled this is childState itself.
func (e *engine) canonical() ([]byte, uint8) {
	if len(e.auts) == 1 {
		return e.childState, 0
	}
	best := e.bestState
	copy(best, e.childState)
	aut := uint8(0)
	for k := 1; k < len(e.auts); k++ {
		sigma := e.auts[k]
		for p := 0; p < e.np; p++ {
			e.candState[sigma[p]] = e.childState[p]
		}
		copy(e.candState[e.np:], e.childState[e.np:])
		if bytes.Compare(e.candState, best) < 0 {
			copy(best, e.candState)
			aut = uint8(k)
		}
	}
	return best, aut
}

// insert stores a new node and pushes it onto the open heap. viaOff/viaLen
// locate the arriving cycle already appended to the ops arena.
func (e *engine) insert(state []byte, hash uint64, slot int, g, h, parent int32, aut uint8, viaOff, viaLen int32) int32 {
	id := int32(len(e.g))
	e.states = append(e.states, state...)
	e.costs = append(e.costs, e.childCost[:e.ne]...)
	e.hashes = append(e.hashes, hash)
	e.g = append(e.g, g)
	e.h = append(e.h, h)
	e.parent = append(e.parent, parent)
	e.autOf = append(e.autOf, aut)
	e.viaOff = append(e.viaOff, viaOff)
	e.viaLen = append(e.viaLen, viaLen)
	e.heapPos = append(e.heapPos, -1)
	e.table[slot] = id
	e.growTable()
	e.heapPush(id)
	return id
}

// expand enumerates the children of cur: every non-empty qubit-disjoint set
// of actions, where each coupling edge may host a SWAP or (if its occupants
// form a remaining gate) the gate. Pruned subsets — swap-only cycles
// dominated by adding an available gate, and swaps that undo the arriving
// cycle — are documented in DESIGN.md with their admissibility arguments.
func (e *engine) expand(cur int32) {
	e.expID = cur
	e.expState = e.stateAt(cur)
	e.expCost = e.costAt(cur)
	e.expRem = e.remOf(cur)
	e.expG = e.g[cur]
	e.expGateBits = 0

	for p := 0; p < e.np; p++ {
		if l := int(e.expState[p]) - 1; l >= 0 {
			e.l2p[l] = int16(p)
		}
	}

	// Mark the couplings swapped by the arriving cycle (in cur's stored
	// frame: via ops are recorded in the parent's frame, so map them through
	// cur's canonicalization automorphism).
	for _, m := range e.swapMarks {
		e.parentSwap[m] = false
	}
	e.swapMarks = e.swapMarks[:0]
	if n := e.viaLen[cur]; n > 0 {
		sigma := e.auts[e.autOf[cur]]
		for _, op := range e.ops[e.viaOff[cur] : e.viaOff[cur]+n] {
			if op.Gate {
				continue
			}
			ci := e.ceIdx[int(sigma[op.P])*e.np+int(sigma[op.Q])]
			e.parentSwap[ci] = true
			e.swapMarks = append(e.swapMarks, ci)
		}
	}

	// Gate availability per coupling, resolved once per expansion.
	e.expGateList = e.expGateList[:0]
	for ci := 0; ci < e.nc; ci++ {
		lu := int(e.expState[e.ceU[ci]]) - 1
		lv := int(e.expState[e.ceV[ci]]) - 1
		ei := int16(-1)
		if lu >= 0 && lv >= 0 {
			if x := e.pairEdge[lu*e.nl+lv]; x >= 0 && e.expRem&(1<<uint(x)) != 0 {
				ei = x
				e.expGateList = append(e.expGateList, int16(ci))
			}
		}
		e.expGate[ci] = ei
	}

	e.dfs(0)
}

// dfs enumerates qubit-disjoint action subsets over couplings [ci, nc).
func (e *engine) dfs(ci int) {
	if ci == e.nc {
		e.leaf()
		return
	}
	p, q := e.ceU[ci], e.ceV[ci]
	if !e.used[p] && !e.used[q] {
		e.used[p], e.used[q] = true, true
		// SWAP branch — skipped when it would exactly undo a swap of the
		// arriving cycle (the states cancel; see DESIGN.md).
		if !e.parentSwap[ci] {
			e.chosen = append(e.chosen, chosenAct{ci: int16(ci)})
			e.dfs(ci + 1)
			e.chosen = e.chosen[:len(e.chosen)-1]
		}
		if ei := e.expGate[ci]; ei >= 0 {
			e.chosen = append(e.chosen, chosenAct{ci: int16(ci), ei: ei, gate: true})
			e.expGateBits |= 1 << uint(ei)
			e.dfs(ci + 1)
			e.expGateBits &^= 1 << uint(ei)
			e.chosen = e.chosen[:len(e.chosen)-1]
		}
		e.used[p], e.used[q] = false, false
	}
	e.dfs(ci + 1)
}

// leaf materializes the chosen action set as a child node.
func (e *engine) leaf() {
	if len(e.chosen) == 0 {
		return
	}
	// Dominance prune: a cycle that leaves some available gate's qubits
	// both free is dominated by the same cycle plus that gate — the
	// superset child has the same mapping and strictly fewer remaining
	// gates (any completion of the smaller child, minus the gate's own op,
	// completes the larger one), and it is enumerated separately. Only
	// gate-maximal cycles survive; in particular every swap-only cycle
	// with an unblocked available gate dies here.
	for _, ci := range e.expGateList {
		if !e.used[e.ceU[ci]] && !e.used[e.ceV[ci]] {
			return
		}
	}

	// Build the child state in the parent's frame.
	copy(e.childState, e.expState)
	childRem := e.expRem &^ e.expGateBits
	binary.LittleEndian.PutUint64(e.childState[e.np:], childRem)
	for _, ca := range e.chosen {
		if !ca.gate {
			p, q := e.ceU[ca.ci], e.ceV[ca.ci]
			e.childState[p], e.childState[q] = e.childState[q], e.childState[p]
		}
	}

	state, aut := e.canonical()
	hash := hashState(state)
	id, slot := e.find(state, hash)
	newG := e.expG + 1
	if id >= 0 && e.g[id] <= newG {
		return
	}
	// The arriving cycle, recorded in the parent's frame.
	off := int32(len(e.ops))
	for _, ca := range e.chosen {
		p, q := int(e.ceU[ca.ci]), int(e.ceV[ca.ci])
		if ca.gate {
			e.ops = append(e.ops, Op{P: p, Q: q, Gate: true, Tag: e.edges[ca.ei]})
		} else {
			e.ops = append(e.ops, Op{P: p, Q: q})
		}
	}
	n := int32(len(e.chosen))
	if id >= 0 {
		// Decrease-key: a cheaper path to a known state. Its h (and cost
		// cache) depend only on the state and stay valid.
		e.g[id] = newG
		e.parent[id] = e.expID
		e.autOf[id] = aut
		e.viaOff[id], e.viaLen[id] = off, n
		e.heapFix(id)
		return
	}

	// New state: compute its heuristic incrementally — copy the parent's
	// per-edge costs and recompute only edges incident to logical qubits
	// the cycle touched (moved by a swap or degree-changed by a gate).
	e.touch = e.touch[:0]
	copy(e.childL2p, e.l2p[:e.nl])
	for _, ca := range e.chosen {
		if ca.gate {
			e.touch = append(e.touch, e.edgeU[ca.ei], e.edgeV[ca.ei])
			continue
		}
		p, q := e.ceU[ca.ci], e.ceV[ca.ci]
		if lu := int(e.expState[p]) - 1; lu >= 0 {
			e.childL2p[lu] = q
			e.touch = append(e.touch, int16(lu))
		}
		if lv := int(e.expState[q]) - 1; lv >= 0 {
			e.childL2p[lv] = p
			e.touch = append(e.touch, int16(lv))
		}
	}
	copy(e.childCost, e.expCost)
	touched := uint64(0)
	for _, l := range e.touch {
		touched |= e.vertexMask[l]
	}
	for m := touched & childRem; m != 0; m &= m - 1 {
		ei := bits.TrailingZeros64(m)
		u, v := e.edgeU[ei], e.edgeV[ei]
		d := e.dist[e.childL2p[u]][e.childL2p[v]]
		du := bits.OnesCount64(childRem & e.vertexMask[u])
		dv := bits.OnesCount64(childRem & e.vertexMask[v])
		e.childCost[ei] = costClosed(d, du, dv)
	}
	h := int32(0)
	for m := childRem; m != 0; m &= m - 1 {
		if c := int32(e.childCost[bits.TrailingZeros64(m)]); c > h {
			h = c
		}
	}
	e.insert(state, hash, slot, newG, h, e.expID, aut, off, n)
}

// extract rebuilds the schedule by walking the parent chain, composing the
// canonicalization automorphisms so every cycle is reported in the original
// (root) frame.
func (e *engine) extract(goal int32) []Cycle {
	var chain []int32
	for id := goal; id >= 0; id = e.parent[id] {
		chain = append(chain, id)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	out := make([]Cycle, 0, len(chain)-1)
	if len(e.auts) == 1 {
		for _, id := range chain[1:] {
			cyc := make(Cycle, e.viaLen[id])
			copy(cyc, e.ops[e.viaOff[id]:e.viaOff[id]+e.viaLen[id]])
			out = append(out, cyc)
		}
		return out
	}
	// tau maps the true (root-frame) state to the stored canonical frame;
	// via ops are recorded in the parent's stored frame, so each op's true
	// qubits are tau^{-1} of the recorded ones.
	tau := make([]int16, e.np)
	tauInv := make([]int16, e.np)
	copy(tau, e.auts[e.autOf[chain[0]]])
	invert(tau, tauInv)
	for _, id := range chain[1:] {
		opsv := e.ops[e.viaOff[id] : e.viaOff[id]+e.viaLen[id]]
		cyc := make(Cycle, len(opsv))
		for i, op := range opsv {
			cyc[i] = Op{P: int(tauInv[op.P]), Q: int(tauInv[op.Q]), Gate: op.Gate, Tag: op.Tag}
		}
		out = append(out, cyc)
		sigma := e.auts[e.autOf[id]]
		for p := range tau {
			tau[p] = sigma[tau[p]]
		}
		invert(tau, tauInv)
	}
	return out
}

func invert(perm, inv []int16) {
	for p, q := range perm {
		inv[q] = int16(p)
	}
}

// --- open heap with decrease-key -----------------------------------------

// heapLess orders by f = g + h, ties broken toward larger g (prefers deeper
// nodes, speeding up goal discovery — same tie-break as the reference).
func (e *engine) heapLess(x, y int32) bool {
	fx, fy := e.g[x]+e.h[x], e.g[y]+e.h[y]
	if fx != fy {
		return fx < fy
	}
	return e.g[x] > e.g[y]
}

func (e *engine) heapPush(id int32) {
	e.heap = append(e.heap, id)
	e.heapPos[id] = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
	if len(e.heap) > e.peakOpen {
		e.peakOpen = len(e.heap)
	}
}

func (e *engine) heapPop() int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heapPos[e.heap[0]] = 0
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	e.heapPos[top] = -1
	return top
}

// heapFix restores the heap invariant after id's priority improved,
// re-opening the node if it had already been expanded.
func (e *engine) heapFix(id int32) {
	pos := e.heapPos[id]
	if pos < 0 {
		e.heapPush(id)
		return
	}
	e.siftUp(int(pos))
	e.siftDown(int(e.heapPos[id]))
}

func (e *engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[p]) {
			return
		}
		e.heapSwap(i, p)
		i = p
	}
}

func (e *engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.heapLess(e.heap[l], e.heap[m]) {
			m = l
		}
		if r < n && e.heapLess(e.heap[r], e.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		e.heapSwap(i, m)
		i = m
	}
}

func (e *engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heapPos[e.heap[i]] = int32(i)
	e.heapPos[e.heap[j]] = int32(j)
}

// --- pooled scratch sizing ------------------------------------------------

func growI16(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func fillI16(s []int16, v int16) {
	for i := range s {
		s[i] = v
	}
}

func fillI32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}
