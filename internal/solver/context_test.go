package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func TestSolveContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// K7 on a line needs far more than one poll stride of expansions, so
	// the pre-canceled context is observed deterministically.
	_, err := SolveContext(ctx, arch.Line(7), graph.Complete(7), nil, Options{})
	if err == nil {
		t.Fatal("expected the canceled context to abandon the search")
	}
	if !errors.Is(err, ErrInterrupted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap ErrInterrupted and context.Canceled, got %v", err)
	}
}

func TestSolveContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SolveContext(ctx, arch.Line(8), graph.Complete(8), nil, Options{})
	if err == nil {
		t.Skip("machine solved K8 within the deadline; nothing to observe")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("search overran its deadline by %v; the poll stride is supposed to bound overrun", elapsed)
	}
}

func TestSolveUnaffectedByBackgroundContext(t *testing.T) {
	res, err := Solve(arch.Line(4), graph.Complete(4), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth == 0 {
		t.Fatal("expected a nonzero optimal depth for K4")
	}
}
