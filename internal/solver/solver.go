// Package solver implements the paper's depth-optimal A* solver (§4): given
// a logical circuit of permutable two-qubit gates (a problem graph), a
// coupling architecture, and an initial mapping, it finds a transformed
// circuit of provably minimal depth, where every cycle schedules a set of
// qubit-disjoint operations (program gates on coupled wanted pairs, or
// SWAPs on coupled pairs).
//
// The priority function is f(v) = c(v) + h(v) with the admissible h of
// Definitions 3–4: for every remaining gate (qi, qj) at distance d with
// remaining problem degrees deg(qi), deg(qj),
//
//	cost(qi,qj) = min_{x=0..d-1} max(deg(qi)+x, deg(qj)+d-1-x)
//	h(v)        = max over remaining gates of cost
//
// which lower-bounds the cycles to any terminal (Theorems 1–2), so A*
// returns a depth-optimal schedule. The solver is intended for the small
// sub-problem instances of §3 (1xN lines, 2xN ladders, small grids); its
// search space is exponential in the architecture size.
//
// Two engines live in this package. The default engine (engine.go) packs
// each state into a flat byte string held in an arena, dedupes states with
// an open-addressing table, evaluates the heuristic with a closed form and
// per-edge incremental updates, and prunes dominated expansions; see
// DESIGN.md "Solver internals" for the encoding and the admissibility
// argument of each pruning rule. The pre-optimization engine is kept as
// referenceSolve (reference.go) and serves as the equivalence oracle the
// property tests and the benchmark harness compare against.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// Op is one operation scheduled in a cycle.
type Op struct {
	P, Q int        // physical qubits (coupled)
	Gate bool       // true: program gate; false: SWAP
	Tag  graph.Edge // the logical pair, for gates
}

// Cycle is the set of qubit-disjoint operations of one schedule cycle.
type Cycle []Op

// Result is a depth-optimal schedule.
type Result struct {
	Depth    int
	Cycles   []Cycle
	Explored int // nodes expanded, for diagnostics
	// Generated counts the distinct states stored by the search — the
	// closed-set size (states are deduplicated, so this is also its peak).
	Generated int
	// PeakOpen is the high-water mark of the open (frontier) heap.
	PeakOpen int
	// Elapsed is the wall-clock time of the search.
	Elapsed time.Duration
}

// Options bounds the search.
type Options struct {
	// MaxNodes aborts the search after expanding this many nodes.
	// 0 means the default budget of 2^22 expansions; a negative value
	// removes the budget entirely (unbounded search).
	MaxNodes int
	// Symmetry canonicalizes states under the architecture's coupling-graph
	// automorphisms (line reflection; grid flips and, for square grids,
	// diagonal reflections), merging mirror-image states in the closed set.
	// Symmetric states have identical distance-to-goal, so the optimal depth
	// is unchanged; the extracted schedule is mapped back to the original
	// frame. Architectures without a registered symmetry group are searched
	// unchanged.
	Symmetry bool
	// Trace, when non-nil, records a "solver.astar" span plus the
	// solver.explored counter and solver.open_set / solver.closed_set
	// gauges (sampled every interruptStride expansions). Nil costs a
	// single pointer check per observation.
	Trace *obs.Trace
}

// ErrSearchExhausted is returned (wrapped with the explored count and the
// open/closed set sizes) when MaxNodes is hit before a terminal.
var ErrSearchExhausted = errors.New("solver: node budget exhausted")

// ErrInterrupted is returned when the search is abandoned because its
// context was canceled or its deadline passed; it wraps the context's
// error, so errors.Is(err, context.DeadlineExceeded) sees through it.
var ErrInterrupted = errors.New("solver: search interrupted")

const maxEdges = 64

// maxLogical bounds the logical qubit count so occupants fit the int8 state
// encoding shared by both engines.
const maxLogical = 127

// interruptStride is how many node expansions pass between context polls:
// cheap enough to bound overrun to a few milliseconds, coarse enough to
// keep ctx.Err out of the expansion hot path.
const interruptStride = 1024

// Solve returns a depth-optimal schedule for problem on a from the initial
// mapping (identity if nil). The problem must have at most 64 edges.
func Solve(a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	return SolveContext(context.Background(), a, problem, initial, opts)
}

// resolveMaxNodes maps the Options.MaxNodes encoding (0 = default budget,
// negative = unbounded) to an effective expansion limit.
func resolveMaxNodes(v int) int {
	switch {
	case v == 0:
		return 1 << 22
	case v < 0:
		return math.MaxInt
	default:
		return v
	}
}

// startMapping validates the instance and returns the packed initial
// physical→logical assignment (-1 = empty seat), shared by both engines.
func startMapping(a *arch.Arch, problem *graph.Graph, edges []graph.Edge, initial []int) ([]int8, error) {
	if len(edges) > maxEdges {
		return nil, fmt.Errorf("solver: %d edges exceed the %d-edge limit", len(edges), maxEdges)
	}
	if problem.N() > a.N() {
		return nil, fmt.Errorf("solver: %d logical qubits exceed %d physical", problem.N(), a.N())
	}
	if problem.N() > maxLogical {
		return nil, fmt.Errorf("solver: %d logical qubits exceed the %d-qubit limit", problem.N(), maxLogical)
	}
	start := make([]int8, a.N())
	for i := range start {
		start[i] = -1
	}
	if initial == nil {
		for l := 0; l < problem.N(); l++ {
			start[l] = int8(l)
		}
		return start, nil
	}
	if len(initial) != problem.N() {
		return nil, fmt.Errorf("solver: initial mapping length %d != %d", len(initial), problem.N())
	}
	for l, p := range initial {
		if p < 0 || p >= a.N() || start[p] != -1 {
			return nil, fmt.Errorf("solver: bad initial mapping %d->%d", l, p)
		}
		start[p] = int8(l)
	}
	return start, nil
}

// SolveContext is Solve honoring a context: the expansion loop polls
// ctx every interruptStride nodes and abandons the search with an
// ErrInterrupted-wrapped error on cancellation or deadline expiry.
func SolveContext(ctx context.Context, a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	// Elapsed is timed against the trace's injected clock (SystemClock when
	// untraced) so governed tests can run the solver under synthetic time.
	clock := obs.ClockOf(opts.Trace)
	t0 := clock.Now()
	edges := problem.Edges()
	if len(edges) == 0 {
		return &Result{}, nil
	}
	start, err := startMapping(a, problem, edges, initial)
	if err != nil {
		return nil, err
	}
	maxNodes := resolveMaxNodes(opts.MaxNodes)

	e := newEngine(a, problem, edges, opts.Symmetry)
	defer e.release()
	e.addRoot(start)

	// Metric handles resolve once before the expansion loop; with a nil
	// trace every handle is nil and each observation is one pointer check.
	met := opts.Trace.Metrics()
	mExplored := met.Counter("solver.explored")
	gOpen := met.Gauge("solver.open_set")
	gClosed := met.Gauge("solver.closed_set")
	sp := opts.Trace.StartSpan(nil, "solver.astar",
		obs.Int("qubits", a.N()),
		obs.Int("edges", len(edges)),
		obs.Int("max_nodes", opts.MaxNodes))

	explored := 0
	defer func() {
		gOpen.Set(int64(len(e.heap)))
		gClosed.Set(int64(e.nodes()))
		sp.SetAttrs(obs.Int("explored", explored))
		sp.End()
	}()
	for len(e.heap) > 0 {
		cur := e.heapPop()
		if e.remOf(cur) == 0 {
			sp.SetAttrs(obs.Int("depth", int(e.g[cur])))
			return &Result{
				Depth:     int(e.g[cur]),
				Cycles:    e.extract(cur),
				Explored:  explored,
				Generated: e.nodes(),
				PeakOpen:  e.peakOpen,
				Elapsed:   clock.Now().Sub(t0),
			}, nil
		}
		explored++
		mExplored.Add(1)
		if explored > maxNodes {
			return nil, fmt.Errorf("%w after %d nodes (open %d, closed %d)",
				ErrSearchExhausted, explored, len(e.heap), e.nodes())
		}
		if explored%interruptStride == 0 {
			gOpen.Set(int64(len(e.heap)))
			gClosed.Set(int64(e.nodes()))
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d nodes: %w", ErrInterrupted, explored, err)
			}
		}
		e.expand(cur)
	}
	return nil, errors.New("solver: no terminal reachable (disconnected problem?)")
}
