// Package solver implements the paper's depth-optimal A* solver (§4): given
// a logical circuit of permutable two-qubit gates (a problem graph), a
// coupling architecture, and an initial mapping, it finds a transformed
// circuit of provably minimal depth, where every cycle schedules a set of
// qubit-disjoint operations (program gates on coupled wanted pairs, or
// SWAPs on coupled pairs).
//
// The priority function is f(v) = c(v) + h(v) with the admissible h of
// Definitions 3–4: for every remaining gate (qi, qj) at distance d with
// remaining problem degrees deg(qi), deg(qj),
//
//	cost(qi,qj) = min_{x=0..d-1} max(deg(qi)+x, deg(qj)+d-1-x)
//	h(v)        = max over remaining gates of cost
//
// which lower-bounds the cycles to any terminal (Theorems 1–2), so A*
// returns a depth-optimal schedule. The solver is intended for the small
// sub-problem instances of §3 (1xN lines, 2xN ladders, small grids); its
// search space is exponential in the architecture size.
package solver

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// Op is one operation scheduled in a cycle.
type Op struct {
	P, Q int        // physical qubits (coupled)
	Gate bool       // true: program gate; false: SWAP
	Tag  graph.Edge // the logical pair, for gates
}

// Cycle is the set of qubit-disjoint operations of one schedule cycle.
type Cycle []Op

// Result is a depth-optimal schedule.
type Result struct {
	Depth    int
	Cycles   []Cycle
	Explored int // nodes expanded, for diagnostics
}

// Options bounds the search.
type Options struct {
	// MaxNodes aborts the search after expanding this many nodes
	// (0 = 2^22).
	MaxNodes int
	// Trace, when non-nil, records a "solver.astar" span plus the
	// solver.explored counter and solver.open_set / solver.closed_set
	// gauges (sampled every interruptStride expansions). Nil costs a
	// single pointer check per observation.
	Trace *obs.Trace
}

// ErrSearchExhausted is returned when MaxNodes is hit before a terminal.
var ErrSearchExhausted = errors.New("solver: node budget exhausted")

// ErrInterrupted is returned when the search is abandoned because its
// context was canceled or its deadline passed; it wraps the context's
// error, so errors.Is(err, context.DeadlineExceeded) sees through it.
var ErrInterrupted = errors.New("solver: search interrupted")

const maxEdges = 64

// interruptStride is how many node expansions pass between context polls:
// cheap enough to bound overrun to a few milliseconds, coarse enough to
// keep ctx.Err out of the expansion hot path.
const interruptStride = 1024

// Solve returns a depth-optimal schedule for problem on a from the initial
// mapping (identity if nil). The problem must have at most 64 edges.
func Solve(a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	return SolveContext(context.Background(), a, problem, initial, opts)
}

// SolveContext is Solve honoring a context: the expansion loop polls
// ctx every interruptStride nodes and abandons the search with an
// ErrInterrupted-wrapped error on cancellation or deadline expiry.
func SolveContext(ctx context.Context, a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	edges := problem.Edges()
	if len(edges) == 0 {
		return &Result{}, nil
	}
	if len(edges) > maxEdges {
		return nil, fmt.Errorf("solver: %d edges exceed the %d-edge limit", len(edges), maxEdges)
	}
	if problem.N() > a.N() {
		return nil, fmt.Errorf("solver: %d logical qubits exceed %d physical", problem.N(), a.N())
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1 << 22
	}

	s := &search{
		a:       a,
		problem: problem,
		edges:   edges,
		edgeIdx: make(map[graph.Edge]int, len(edges)),
		dist:    a.Distances(),
	}
	for i, e := range edges {
		s.edgeIdx[e] = i
	}

	start := make([]int8, a.N())
	for i := range start {
		start[i] = -1
	}
	if initial == nil {
		for l := 0; l < problem.N(); l++ {
			start[l] = int8(l)
		}
	} else {
		if len(initial) != problem.N() {
			return nil, fmt.Errorf("solver: initial mapping length %d != %d", len(initial), problem.N())
		}
		for l, p := range initial {
			if p < 0 || p >= a.N() || start[p] != -1 {
				return nil, fmt.Errorf("solver: bad initial mapping %d->%d", l, p)
			}
			start[p] = int8(l)
		}
	}

	fullMask := uint64(0)
	for i := range edges {
		fullMask |= 1 << uint(i)
	}

	root := &node{p2l: start, rem: fullMask, g: 0}
	root.h = s.heuristic(root)
	pq := &nodeQueue{root}
	best := map[string]int{s.key(root): 0}

	// Metric handles resolve once before the expansion loop; with a nil
	// trace every handle is nil and each observation is one pointer check.
	met := opts.Trace.Metrics()
	mExplored := met.Counter("solver.explored")
	gOpen := met.Gauge("solver.open_set")
	gClosed := met.Gauge("solver.closed_set")
	sp := opts.Trace.StartSpan(nil, "solver.astar",
		obs.Int("qubits", a.N()),
		obs.Int("edges", len(edges)),
		obs.Int("max_nodes", maxNodes))

	explored := 0
	defer func() {
		gOpen.Set(int64(pq.Len()))
		gClosed.Set(int64(len(best)))
		sp.SetAttrs(obs.Int("explored", explored))
		sp.End()
	}()
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*node)
		if cur.rem == 0 {
			sp.SetAttrs(obs.Int("depth", cur.g))
			return &Result{Depth: cur.g, Cycles: s.extract(cur), Explored: explored}, nil
		}
		if g, ok := best[s.key(cur)]; ok && cur.g > g {
			continue // stale entry
		}
		explored++
		mExplored.Add(1)
		if explored > maxNodes {
			return nil, ErrSearchExhausted
		}
		if explored%interruptStride == 0 {
			gOpen.Set(int64(pq.Len()))
			gClosed.Set(int64(len(best)))
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d nodes: %w", ErrInterrupted, explored, err)
			}
		}
		s.expand(cur, func(child *node) {
			k := s.key(child)
			if g, ok := best[k]; ok && g <= child.g {
				return
			}
			best[k] = child.g
			child.h = s.heuristic(child)
			heap.Push(pq, child)
		})
	}
	return nil, errors.New("solver: no terminal reachable (disconnected problem?)")
}

type node struct {
	p2l    []int8 // physical -> logical (-1 empty)
	rem    uint64 // bitmask of unscheduled problem edges
	g, h   int
	parent *node
	via    Cycle // the cycle applied to parent to reach this node
	idx    int   // heap index
}

type search struct {
	a       *arch.Arch
	problem *graph.Graph
	edges   []graph.Edge
	edgeIdx map[graph.Edge]int
	dist    [][]int
}

func (s *search) key(n *node) string {
	buf := make([]byte, len(n.p2l)+8)
	for i, v := range n.p2l {
		buf[i] = byte(v + 1)
	}
	for i := 0; i < 8; i++ {
		buf[len(n.p2l)+i] = byte(n.rem >> (8 * uint(i)))
	}
	return string(buf)
}

// remDegree returns the remaining problem degree of logical qubit l.
func (s *search) remDegree(n *node, l int8) int {
	d := 0
	for i, e := range s.edges {
		if n.rem&(1<<uint(i)) != 0 && (int(l) == e.U || int(l) == e.V) {
			d++
		}
	}
	return d
}

// heuristic is h(v) of Definition 4.
func (s *search) heuristic(n *node) int {
	l2p := make([]int, s.problem.N())
	for p, l := range n.p2l {
		if l >= 0 {
			l2p[l] = p
		}
	}
	h := 0
	degCache := make(map[int8]int)
	deg := func(l int8) int {
		if d, ok := degCache[l]; ok {
			return d
		}
		d := s.remDegree(n, l)
		degCache[l] = d
		return d
	}
	for i, e := range s.edges {
		if n.rem&(1<<uint(i)) == 0 {
			continue
		}
		d := s.dist[l2p[e.U]][l2p[e.V]]
		du, dv := deg(int8(e.U)), deg(int8(e.V))
		best := 1 << 30
		for x := 0; x < d; x++ {
			c := du + x
			if o := dv + d - 1 - x; o > c {
				c = o
			}
			if c < best {
				best = c
			}
		}
		if best > h {
			h = best
		}
	}
	return h
}

// expand enumerates all child nodes: every non-empty matching of actions,
// where each coupling edge may host a SWAP or (if its occupants form a
// remaining gate) the gate.
func (s *search) expand(n *node, yield func(*node)) {
	couplings := s.a.G.Edges()
	// Candidate actions per coupling edge: 1 = swap, plus gate if available.
	type action struct {
		p, q    int
		gate    bool
		edgeBit uint64
		tag     graph.Edge
	}
	var acts []action
	for _, ce := range couplings {
		lu, lv := n.p2l[ce.U], n.p2l[ce.V]
		acts = append(acts, action{p: ce.U, q: ce.V})
		if lu >= 0 && lv >= 0 {
			t := graph.NewEdge(int(lu), int(lv))
			if i, ok := s.edgeIdx[t]; ok && n.rem&(1<<uint(i)) != 0 {
				acts = append(acts, action{p: ce.U, q: ce.V, gate: true, edgeBit: 1 << uint(i), tag: t})
			}
		}
	}
	// Depth-first enumeration of qubit-disjoint subsets.
	used := make([]bool, s.a.N())
	var chosen []action
	var rec func(i int)
	rec = func(i int) {
		if i == len(acts) {
			if len(chosen) == 0 {
				return
			}
			child := &node{
				p2l:    append([]int8(nil), n.p2l...),
				rem:    n.rem,
				g:      n.g + 1,
				parent: n,
			}
			cyc := make(Cycle, 0, len(chosen))
			for _, a := range chosen {
				if a.gate {
					child.rem &^= a.edgeBit
					cyc = append(cyc, Op{P: a.p, Q: a.q, Gate: true, Tag: a.tag})
				} else {
					child.p2l[a.p], child.p2l[a.q] = child.p2l[a.q], child.p2l[a.p]
					cyc = append(cyc, Op{P: a.p, Q: a.q})
				}
			}
			child.via = cyc
			yield(child)
			return
		}
		a := acts[i]
		if !used[a.p] && !used[a.q] {
			used[a.p], used[a.q] = true, true
			chosen = append(chosen, a)
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			used[a.p], used[a.q] = false, false
		}
		rec(i + 1)
	}
	rec(0)
}

func (s *search) extract(n *node) []Cycle {
	var rev []Cycle
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make([]Cycle, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// nodeQueue is a min-heap on f = g + h (ties broken toward larger g, which
// prefers deeper nodes and speeds up goal discovery).
type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	fi, fj := q[i].g+q[i].h, q[j].g+q[j].h
	if fi != fj {
		return fi < fj
	}
	return q[i].g > q[j].g
}
func (q nodeQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *nodeQueue) Push(x any) {
	n := x.(*node)
	n.idx = len(*q)
	*q = append(*q, n)
}
func (q *nodeQueue) Pop() any {
	old := *q
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*q = old[:len(old)-1]
	return n
}
