package solver

import (
	"errors"
	"strings"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// replay validates a schedule: ops within a cycle are qubit-disjoint and on
// couplings, gates act on wanted occupants, and all edges complete.
func replay(t *testing.T, a *arch.Arch, problem *graph.Graph, initial []int, res *Result) {
	t.Helper()
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	if initial == nil {
		for l := 0; l < problem.N(); l++ {
			p2l[l] = l
		}
	} else {
		for l, p := range initial {
			p2l[p] = l
		}
	}
	remaining := make(map[graph.Edge]bool)
	for _, e := range problem.Edges() {
		remaining[e] = true
	}
	for ci, cyc := range res.Cycles {
		used := map[int]bool{}
		for _, op := range cyc {
			if !a.G.HasEdge(op.P, op.Q) {
				t.Fatalf("cycle %d: op on uncoupled (%d,%d)", ci, op.P, op.Q)
			}
			if used[op.P] || used[op.Q] {
				t.Fatalf("cycle %d: qubit reused", ci)
			}
			used[op.P], used[op.Q] = true, true
			if op.Gate {
				e := graph.NewEdge(p2l[op.P], p2l[op.Q])
				if e != op.Tag || !remaining[e] {
					t.Fatalf("cycle %d: bad gate %v (occupants %v)", ci, op.Tag, e)
				}
				delete(remaining, e)
			} else {
				p2l[op.P], p2l[op.Q] = p2l[op.Q], p2l[op.P]
			}
		}
	}
	if len(remaining) > 0 {
		t.Fatalf("%d edges unscheduled", len(remaining))
	}
	if len(res.Cycles) != res.Depth {
		t.Fatalf("depth %d != %d cycles", res.Depth, len(res.Cycles))
	}
}

func TestTrivialCases(t *testing.T) {
	a := arch.Line(2)
	res, err := Solve(a, graph.Complete(2), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 1 {
		t.Fatalf("K2 on line-2: depth %d", res.Depth)
	}
	replay(t, a, graph.Complete(2), nil, res)

	// Empty problem: depth 0.
	res, err = Solve(a, graph.New(2), nil, Options{})
	if err != nil || res.Depth != 0 {
		t.Fatalf("empty problem: %v depth %d", err, res.Depth)
	}
}

func TestParallelGatesOneCycle(t *testing.T) {
	a := arch.Line(4)
	p := graph.New(4)
	p.AddEdge(0, 1)
	p.AddEdge(2, 3)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 1 {
		t.Fatalf("two disjoint adjacent gates: depth %d", res.Depth)
	}
	replay(t, a, p, nil, res)
}

func TestDistantPairNeedsSwaps(t *testing.T) {
	a := arch.Line(3)
	p := graph.New(3)
	p.AddEdge(0, 2)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One swap + one gate.
	if res.Depth != 2 {
		t.Fatalf("distance-2 gate: depth %d", res.Depth)
	}
	replay(t, a, p, nil, res)
}

func TestCliqueLine3(t *testing.T) {
	a := arch.Line(3)
	p := graph.Complete(3)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	// Three gates all sharing qubits: >= 3 cycles; one extra for the swap.
	if res.Depth != 4 {
		t.Fatalf("K3 on line-3: depth %d, want 4", res.Depth)
	}
}

func TestCliqueLine4(t *testing.T) {
	a := arch.Line(4)
	p := graph.Complete(4)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	t.Logf("K4 on line-4: optimal depth %d (%d nodes)", res.Depth, res.Explored)
	if res.Depth < 5 || res.Depth > 7 {
		t.Fatalf("K4 on line-4: depth %d outside sanity window", res.Depth)
	}
}

func TestCliqueGrid2x2(t *testing.T) {
	a := arch.Grid(2, 2)
	p := graph.Complete(4)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	t.Logf("K4 on 2x2: optimal depth %d", res.Depth)
	// 6 edges, 4 couplings (no diagonals), 2 gates max per cycle:
	// >= 3 cycles for gates, plus >= 1 swap cycle for the diagonals.
	if res.Depth < 4 || res.Depth > 6 {
		t.Fatalf("K4 on 2x2: depth %d", res.Depth)
	}
}

func TestBipartite2x3(t *testing.T) {
	// The 2xUnit sub-problem (Fig 8/9) at size 2x3: bipartite all-to-all
	// between the two rows.
	a := arch.Grid(2, 3)
	p := graph.New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			p.AddEdge(i, j)
		}
	}
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	t.Logf("bipartite 2x3: optimal depth %d (%d nodes)", res.Depth, res.Explored)
	// 9 cross gates, <= 3 per cycle -> >= 3 gate cycles, plus swaps.
	if res.Depth < 4 {
		t.Fatalf("bipartite 2x3: depth %d impossibly low", res.Depth)
	}
}

func TestInitialMappingRespected(t *testing.T) {
	a := arch.Line(3)
	p := graph.New(2)
	p.AddEdge(0, 1)
	// Map logicals to the two line ends: distance 2 forces depth 2.
	res, err := Solve(a, p, []int{0, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 2 {
		t.Fatalf("depth %d, want 2", res.Depth)
	}
	replay(t, a, p, []int{0, 2}, res)
}

func TestNodeBudget(t *testing.T) {
	a := arch.Line(5)
	p := graph.Complete(5)
	_, err := Solve(a, p, nil, Options{MaxNodes: 10})
	if !errors.Is(err, ErrSearchExhausted) {
		t.Fatalf("want ErrSearchExhausted, got %v", err)
	}
	// The error carries budget-tuning diagnostics: explored count plus
	// open/closed set sizes.
	for _, want := range []string{"after 11 nodes", "open", "closed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("exhaustion error %q missing %q", err, want)
		}
	}
}

func TestMaxNodesNegativeIsUnbounded(t *testing.T) {
	// A negative budget must never trip ErrSearchExhausted; K4 on line-4
	// needs well over 10 expansions, so MaxNodes: -1 differs observably
	// from a small positive budget.
	res, err := Solve(arch.Line(4), graph.Complete(4), nil, Options{MaxNodes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 6 {
		t.Fatalf("depth %d, want 6", res.Depth)
	}
}

func TestRejectsOversizedProblems(t *testing.T) {
	a := arch.Grid(3, 5) // 15 qubits
	if _, err := Solve(a, graph.Complete(12), nil, Options{}); err == nil {
		t.Fatal("66-edge problem accepted")
	}
	if _, err := Solve(arch.Line(2), graph.Complete(3), nil, Options{}); err == nil {
		t.Fatal("more logical than physical qubits accepted")
	}
}

func TestHeuristicAdmissibleSpotCheck(t *testing.T) {
	// h at the root must never exceed the optimal depth found.
	for _, tc := range []struct {
		a *arch.Arch
		p *graph.Graph
	}{
		{arch.Line(3), graph.Complete(3)},
		{arch.Line(4), graph.Complete(4)},
		{arch.Grid(2, 2), graph.Complete(4)},
		{arch.Grid(2, 3), graph.Path(6)},
	} {
		res, err := Solve(tc.a, tc.p, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := &refSearch{
			a: tc.a, problem: tc.p, edges: tc.p.Edges(),
			edgeIdx: map[graph.Edge]int{}, dist: tc.a.Distances(),
		}
		for i, e := range s.edges {
			s.edgeIdx[e] = i
		}
		start := make([]int8, tc.a.N())
		for i := range start {
			start[i] = -1
		}
		for l := 0; l < tc.p.N(); l++ {
			start[l] = int8(l)
		}
		full := uint64(1)<<uint(len(s.edges)) - 1
		h := s.heuristic(&refNode{p2l: start, rem: full})
		if h > res.Depth {
			t.Fatalf("h(root)=%d exceeds optimal %d for %s", h, res.Depth, tc.a.Name)
		}
	}
}
