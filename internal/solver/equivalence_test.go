package solver

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// assertEngineAgreement runs the packed engine (symmetry off and on) and the
// pre-optimization reference engine on one instance and fails unless all
// three prove the same optimal depth. The packed schedules are replayed;
// with symmetry on this also exercises the automorphism-frame extraction.
// Returns the agreed depth.
func assertEngineAgreement(t *testing.T, a *arch.Arch, p *graph.Graph, initial []int) int {
	t.Helper()
	ctx := context.Background()
	ref, err := referenceSolve(ctx, a, p, initial, Options{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, sym := range []bool{false, true} {
		res, err := SolveContext(ctx, a, p, initial, Options{Symmetry: sym})
		if err != nil {
			t.Fatalf("packed (symmetry=%v): %v", sym, err)
		}
		if res.Depth != ref.Depth {
			t.Fatalf("packed (symmetry=%v) proved depth %d, reference proved %d",
				sym, res.Depth, ref.Depth)
		}
		replay(t, a, p, initial, res)
	}
	return ref.Depth
}

// TestEquivalenceRandomInstances is the equivalence oracle: ~100 random
// small instances (line and grid architectures crossed with Erdős–Rényi
// problems, half with random initial mappings) on which the packed engine —
// with and without symmetry canonicalization — must prove exactly the depth
// the preserved naive engine proves. Deterministic seed so failures replay.
func TestEquivalenceRandomInstances(t *testing.T) {
	archs := []*arch.Arch{
		arch.Line(3), arch.Line(4), arch.Line(5), arch.Line(6),
		arch.Grid(2, 2), arch.Grid(2, 3), arch.Grid(3, 3),
	}
	rng := rand.New(rand.NewSource(7))
	densities := []float64{0.3, 0.5, 0.7}
	total := 0
	for _, a := range archs {
		a := a
		np := a.N()
		for i := 0; i < 15; i++ {
			maxL := np
			if maxL > 6 {
				maxL = 6 // keep the naive oracle tractable on the 3x3 grid
			}
			nl := 2 + rng.Intn(maxL-1)
			p := graph.Gnp(nl, densities[i%len(densities)], rng)
			var initial []int
			if i%2 == 1 {
				initial = rng.Perm(np)[:nl]
			}
			total++
			t.Run(fmt.Sprintf("%s/n%d/i%d", a.Name, nl, i), func(t *testing.T) {
				assertEngineAgreement(t, a, p, initial)
			})
		}
	}
	if total < 100 {
		t.Fatalf("only %d instances generated, want >= 100", total)
	}
}

// TestEquivalenceFamiliesLarger re-proves the families_test.go instances at
// one size larger than the existing tests cover, against the oracle.
func TestEquivalenceFamiliesLarger(t *testing.T) {
	t.Run("sycamore-2x3-clique", func(t *testing.T) {
		// families_test covers K4 on sycamore-2x2.
		a := arch.Sycamore(2, 3)
		d := assertEngineAgreement(t, a, graph.Complete(a.N()), nil)
		t.Logf("K%d on %s: optimal depth %d", a.N(), a.Name, d)
	})
	t.Run("sycamore-2x3-bipartite", func(t *testing.T) {
		a := arch.Sycamore(2, 3)
		n := a.N()
		p := graph.New(n)
		for i := 0; i < n/2; i++ {
			for j := n / 2; j < n; j++ {
				p.AddEdge(i, j)
			}
		}
		d := assertEngineAgreement(t, a, p, nil)
		t.Logf("bipartite on %s: optimal depth %d", a.Name, d)
	})
	t.Run("hexagon-2x3-clique", func(t *testing.T) {
		// families_test covers K4 on hexagon-2x2; K5 on the next column
		// count (the full K8 clique is line-8-class and beyond the oracle).
		a := arch.Hexagon(2, 3)
		d := assertEngineAgreement(t, a, graph.Complete(5), nil)
		t.Logf("K5 on %s: optimal depth %d", a.Name, d)
	})
	t.Run("heavyhex-2x6-bridge", func(t *testing.T) {
		// families_test routes one far gate on HeavyHex(2, 4).
		a := arch.HeavyHex(2, 6)
		p := graph.New(a.N())
		p.AddEdge(0, 6) // far ends of the two rows, through the bridge
		assertEngineAgreement(t, a, p, nil)
	})
	t.Run("mumbai-path4", func(t *testing.T) {
		// families_test routes Path(3) on Mumbai; one logical more here.
		p := graph.Path(4)
		d := assertEngineAgreement(t, arch.Mumbai(), p, []int{0, 1, 4, 7})
		if d > 3 {
			t.Fatalf("Path(4) on coupled Mumbai qubits: depth %d", d)
		}
	})
}
