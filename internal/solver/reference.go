package solver

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// This file preserves the pre-optimization A* engine verbatim in behavior:
// string state keys in a map closed set, the O(d) inner-loop heuristic
// recomputed from scratch per node, and the unpruned expansion. It exists
// as the equivalence oracle for the property tests (same optimal depth on
// every instance) and as the baseline the benchmark harness measures the
// packed engine against. It is not wired to tracing and should not be used
// outside tests and benchmarks.

// ReferenceSolve runs the pre-optimization engine. It honors MaxNodes with
// the same semantics as Solve (0 = 2^22, negative = unbounded) and polls
// ctx every interruptStride expansions. Module-internal callers only: the
// benchmark harness and equivalence tests.
func ReferenceSolve(ctx context.Context, a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	return referenceSolve(ctx, a, problem, initial, opts)
}

// referenceSolve is the pre-PR SolveContext body.
func referenceSolve(ctx context.Context, a *arch.Arch, problem *graph.Graph, initial []int, opts Options) (*Result, error) {
	clock := obs.ClockOf(opts.Trace)
	t0 := clock.Now()
	edges := problem.Edges()
	if len(edges) == 0 {
		return &Result{}, nil
	}
	start, err := startMapping(a, problem, edges, initial)
	if err != nil {
		return nil, err
	}
	maxNodes := resolveMaxNodes(opts.MaxNodes)

	s := &refSearch{
		a:       a,
		problem: problem,
		edges:   edges,
		edgeIdx: make(map[graph.Edge]int, len(edges)),
		dist:    a.Distances(),
	}
	for i, e := range edges {
		s.edgeIdx[e] = i
	}

	fullMask := uint64(0)
	for i := range edges {
		fullMask |= 1 << uint(i)
	}

	root := &refNode{p2l: start, rem: fullMask, g: 0}
	root.h = s.heuristic(root)
	pq := &refQueue{root}
	best := map[string]int{s.key(root): 0}

	explored, peakOpen := 0, 1
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*refNode)
		if cur.rem == 0 {
			return &Result{
				Depth:     cur.g,
				Cycles:    s.extract(cur),
				Explored:  explored,
				Generated: len(best),
				PeakOpen:  peakOpen,
				Elapsed:   clock.Now().Sub(t0),
			}, nil
		}
		if g, ok := best[s.key(cur)]; ok && cur.g > g {
			continue // stale entry
		}
		explored++
		if explored > maxNodes {
			return nil, fmt.Errorf("%w after %d nodes (open %d, closed %d)",
				ErrSearchExhausted, explored, pq.Len(), len(best))
		}
		if explored%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d nodes: %w", ErrInterrupted, explored, err)
			}
		}
		s.expand(cur, func(child *refNode) {
			k := s.key(child)
			if g, ok := best[k]; ok && g <= child.g {
				return
			}
			best[k] = child.g
			child.h = s.heuristic(child)
			heap.Push(pq, child)
			if pq.Len() > peakOpen {
				peakOpen = pq.Len()
			}
		})
	}
	return nil, errors.New("solver: no terminal reachable (disconnected problem?)")
}

type refNode struct {
	p2l    []int8 // physical -> logical (-1 empty)
	rem    uint64 // bitmask of unscheduled problem edges
	g, h   int
	parent *refNode
	via    Cycle // the cycle applied to parent to reach this node
	idx    int   // heap index
}

type refSearch struct {
	a       *arch.Arch
	problem *graph.Graph
	edges   []graph.Edge
	edgeIdx map[graph.Edge]int
	dist    [][]int
}

func (s *refSearch) key(n *refNode) string {
	buf := make([]byte, len(n.p2l)+8)
	for i, v := range n.p2l {
		buf[i] = byte(v + 1)
	}
	for i := 0; i < 8; i++ {
		buf[len(n.p2l)+i] = byte(n.rem >> (8 * uint(i)))
	}
	return string(buf)
}

// remDegree returns the remaining problem degree of logical qubit l.
func (s *refSearch) remDegree(n *refNode, l int8) int {
	d := 0
	for i, e := range s.edges {
		if n.rem&(1<<uint(i)) != 0 && (int(l) == e.U || int(l) == e.V) {
			d++
		}
	}
	return d
}

// heuristic is h(v) of Definition 4, evaluated with the naive inner loop.
func (s *refSearch) heuristic(n *refNode) int {
	l2p := make([]int, s.problem.N())
	for p, l := range n.p2l {
		if l >= 0 {
			l2p[l] = p
		}
	}
	h := 0
	degCache := make(map[int8]int)
	deg := func(l int8) int {
		if d, ok := degCache[l]; ok {
			return d
		}
		d := s.remDegree(n, l)
		degCache[l] = d
		return d
	}
	for i, e := range s.edges {
		if n.rem&(1<<uint(i)) == 0 {
			continue
		}
		d := s.dist[l2p[e.U]][l2p[e.V]]
		du, dv := deg(int8(e.U)), deg(int8(e.V))
		best := 1 << 30
		for x := 0; x < d; x++ {
			c := du + x
			if o := dv + d - 1 - x; o > c {
				c = o
			}
			if c < best {
				best = c
			}
		}
		if best > h {
			h = best
		}
	}
	return h
}

// expand enumerates all child nodes: every non-empty matching of actions,
// where each coupling edge may host a SWAP or (if its occupants form a
// remaining gate) the gate.
func (s *refSearch) expand(n *refNode, yield func(*refNode)) {
	couplings := s.a.G.Edges()
	// Candidate actions per coupling edge: 1 = swap, plus gate if available.
	type action struct {
		p, q    int
		gate    bool
		edgeBit uint64
		tag     graph.Edge
	}
	var acts []action
	for _, ce := range couplings {
		lu, lv := n.p2l[ce.U], n.p2l[ce.V]
		acts = append(acts, action{p: ce.U, q: ce.V})
		if lu >= 0 && lv >= 0 {
			t := graph.NewEdge(int(lu), int(lv))
			if i, ok := s.edgeIdx[t]; ok && n.rem&(1<<uint(i)) != 0 {
				acts = append(acts, action{p: ce.U, q: ce.V, gate: true, edgeBit: 1 << uint(i), tag: t})
			}
		}
	}
	// Depth-first enumeration of qubit-disjoint subsets.
	used := make([]bool, s.a.N())
	var chosen []action
	var rec func(i int)
	rec = func(i int) {
		if i == len(acts) {
			if len(chosen) == 0 {
				return
			}
			child := &refNode{
				p2l:    append([]int8(nil), n.p2l...),
				rem:    n.rem,
				g:      n.g + 1,
				parent: n,
			}
			cyc := make(Cycle, 0, len(chosen))
			for _, a := range chosen {
				if a.gate {
					child.rem &^= a.edgeBit
					cyc = append(cyc, Op{P: a.p, Q: a.q, Gate: true, Tag: a.tag})
				} else {
					child.p2l[a.p], child.p2l[a.q] = child.p2l[a.q], child.p2l[a.p]
					cyc = append(cyc, Op{P: a.p, Q: a.q})
				}
			}
			child.via = cyc
			yield(child)
			return
		}
		a := acts[i]
		if !used[a.p] && !used[a.q] {
			used[a.p], used[a.q] = true, true
			chosen = append(chosen, a)
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			used[a.p], used[a.q] = false, false
		}
		rec(i + 1)
	}
	rec(0)
}

func (s *refSearch) extract(n *refNode) []Cycle {
	var rev []Cycle
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make([]Cycle, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// refQueue is a min-heap on f = g + h (ties broken toward larger g, which
// prefers deeper nodes and speeds up goal discovery).
type refQueue []*refNode

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	fi, fj := q[i].g+q[i].h, q[j].g+q[j].h
	if fi != fj {
		return fi < fj
	}
	return q[i].g > q[j].g
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *refQueue) Push(x any) {
	n := x.(*refNode)
	n.idx = len(*q)
	*q = append(*q, n)
}
func (q *refQueue) Pop() any {
	old := *q
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*q = old[:len(old)-1]
	return n
}
