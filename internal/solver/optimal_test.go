package solver

import (
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestLineCliqueOptimalDepths locks in the optimal depths the solver
// discovers for small line cliques: 2n-2 cycles (n gate layers + n-2 SWAP
// layers), the structure §3.1 generalises into the linear pattern.
func TestLineCliqueOptimalDepths(t *testing.T) {
	want := map[int]int{2: 1, 3: 4, 4: 6, 5: 8, 6: 10}
	for n, d := range want {
		res, err := Solve(arch.Line(n), graph.Complete(n), nil, Options{})
		if err != nil {
			t.Fatalf("line-%d: %v", n, err)
		}
		if res.Depth != d {
			t.Errorf("K%d on line-%d: optimal depth %d, want %d", n, n, res.Depth, d)
		}
	}
}

// TestBipartiteLadderOptimal locks the 2xUnit sub-problem optimum for 2x2:
// the Fig 8/9 counter-rotation covers the 4 cross pairs in 2 compute layers
// + 1 swap layer.
func TestBipartiteLadderOptimal(t *testing.T) {
	a := arch.Grid(2, 2)
	p := graph.New(4)
	p.AddEdge(0, 2)
	p.AddEdge(0, 3)
	p.AddEdge(1, 2)
	p.AddEdge(1, 3)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 3 {
		t.Fatalf("bipartite 2x2: depth %d, want 3", res.Depth)
	}
}
