package solver

import (
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestSycamoreSmallClique: the solver handles the rotated-lattice family;
// a 2x2 sycamore is a path of 4 qubits + one diagonal.
func TestSycamoreSmallClique(t *testing.T) {
	a := arch.Sycamore(2, 2)
	p := graph.Complete(4)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	t.Logf("K4 on sycamore-2x2: optimal depth %d", res.Depth)
	if res.Depth > 6 {
		t.Fatalf("depth %d worse than the line bound", res.Depth)
	}
}

// TestSycamoreBipartiteOptimal: the 2xUnit sub-problem the paper solved
// with this tool (7 qubits in the paper; 2x2 here for test speed).
func TestSycamoreBipartiteOptimal(t *testing.T) {
	a := arch.Sycamore(2, 2)
	p := graph.New(4)
	// Rows {0,1} and {2,3}: bipartite all-to-all.
	p.AddEdge(0, 2)
	p.AddEdge(0, 3)
	p.AddEdge(1, 2)
	p.AddEdge(1, 3)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	if res.Depth < 2 || res.Depth > 4 {
		t.Fatalf("bipartite sycamore 2x2: depth %d", res.Depth)
	}
}

// TestHexagonUPathInstance: all-to-all over two hexagon columns; the
// solver's optimum bounds the U-path pattern.
func TestHexagonUPathInstance(t *testing.T) {
	a := arch.Hexagon(2, 2)
	p := graph.Complete(4)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	t.Logf("K4 on hexagon-2x2: optimal depth %d", res.Depth)
}

// TestHeavyHexBridgeInstance: a tiny heavy-hex with one bridge qubit; the
// solver must route through the bridge.
func TestHeavyHexBridgeInstance(t *testing.T) {
	a := arch.HeavyHex(2, 4)
	n := a.N() // 8 row qubits + 1 bridge
	if n != 9 {
		t.Fatalf("unexpected heavy-hex size %d", n)
	}
	p := graph.New(n)
	// One gate between the two rows' far ends: must cross the bridge.
	p.AddEdge(0, 4)
	res, err := Solve(a, p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, nil, res)
	// Both endpoints walk toward each other: ceil((d-1)/2) swap cycles
	// plus the gate cycle.
	d := a.Dist(0, 4)
	want := (d-1+1)/2 + 1
	if res.Depth != want {
		t.Fatalf("depth %d, want %d (both endpoints converge over dist %d)", res.Depth, want, d)
	}
}

// TestSolverRespectsMumbaiTopology: one far pair on the real device map.
func TestSolverRespectsMumbaiTopology(t *testing.T) {
	a := arch.Mumbai()
	p := graph.New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	res, err := Solve(a, p, []int{0, 1, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay(t, a, p, []int{0, 1, 4}, res)
	if res.Depth > 3 {
		t.Fatalf("depth %d", res.Depth)
	}
}
