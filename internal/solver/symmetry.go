package solver

import (
	"github.com/ata-pattern/ataqc/internal/arch"
)

// automorphisms returns the coupling-graph automorphism group the engine
// canonicalizes states under, identity first. Only the families with a
// registered symmetry are reduced: line architectures (reflection) and grid
// architectures (row/column flips, plus the diagonal reflections when the
// grid is square — the full dihedral group). Every candidate permutation is
// verified to preserve the coupling graph before use, so a geometry change
// in the constructors degrades to no reduction instead of a wrong answer.
// With enabled=false (or an unrecognized family) only the identity is
// returned. The reuse slice's backing storage is recycled when possible.
func automorphisms(a *arch.Arch, enabled bool, reuse [][]int16) [][]int16 {
	np := a.N()
	out := reuse[:0]
	id := make([]int16, np)
	for i := range id {
		id[i] = int16(i)
	}
	out = append(out, id)
	if !enabled {
		return out
	}

	var gens [][]int16
	switch a.Kind {
	case arch.KindLine:
		r := make([]int16, np)
		for i := range r {
			r[i] = int16(np - 1 - i)
		}
		gens = append(gens, r)
	case arch.KindGrid:
		rows, cols := 0, 0
		for _, c := range a.Coords {
			if c.Row+1 > rows {
				rows = c.Row + 1
			}
			if c.Col+1 > cols {
				cols = c.Col + 1
			}
		}
		if rows*cols != np {
			return out // not the dense row-major layout the perms assume
		}
		pos := func(r, c int) int16 { return int16(r*cols + c) }
		flipR := make([]int16, np)
		flipC := make([]int16, np)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				flipR[pos(r, c)] = pos(rows-1-r, c)
				flipC[pos(r, c)] = pos(r, cols-1-c)
			}
		}
		gens = append(gens, flipR, flipC)
		if rows == cols {
			tr := make([]int16, np)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					tr[pos(r, c)] = pos(c, r)
				}
			}
			gens = append(gens, tr)
		}
	default:
		return out
	}

	for i := range gens {
		if !isAutomorphism(a, gens[i]) {
			return out[:1]
		}
	}

	// Close the generators under composition (the groups here have at most
	// 8 elements, so a simple fixed-point loop suffices).
	seen := map[string]bool{permKey(id): true}
	group := [][]int16{id}
	for changed := true; changed; {
		changed = false
		for _, g := range group {
			for _, gen := range gens {
				comp := make([]int16, np)
				for p := range comp {
					comp[p] = gen[g[p]]
				}
				if k := permKey(comp); !seen[k] {
					seen[k] = true
					group = append(group, comp)
					changed = true
				}
			}
		}
	}
	return append(out, group[1:]...)
}

// isAutomorphism verifies that perm maps every coupling onto a coupling.
func isAutomorphism(a *arch.Arch, perm []int16) bool {
	for _, e := range a.G.Edges() {
		if !a.G.HasEdge(int(perm[e.U]), int(perm[e.V])) {
			return false
		}
	}
	return true
}

func permKey(p []int16) string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
	return string(b)
}
