package solver

import (
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// solveOnce times one K5/line-5 solve — large enough to expand thousands of
// nodes through every hot path, small enough for interleaved repetition.
func solveOnce(t *testing.T, traced bool) time.Duration {
	t.Helper()
	var tr *obs.Trace
	if traced {
		tr = obs.New()
	}
	res, err := Solve(arch.Line(5), graph.Complete(5), nil, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 8 {
		t.Fatalf("K5 on line-5: depth %d, want 8", res.Depth)
	}
	return res.Elapsed
}

// TestSolverTracingOverheadGuard holds the solver to the repo-wide <2%
// tracing-overhead budget: metric handles resolve once before the search
// loop and the per-expansion updates are deferred to search exit, so a live
// trace must stay within 2% of the untraced solve (plus a small epsilon for
// timer granularity). Runs interleave, best-of-N each, to damp scheduler
// noise.
func TestSolverTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard")
	}
	const rounds = 5
	maxDur := time.Duration(1<<62 - 1)
	untraced, traced := maxDur, maxDur
	// Warm the engine pool and distance tables outside the timed runs.
	solveOnce(t, false)
	for i := 0; i < rounds; i++ {
		if d := solveOnce(t, false); d < untraced {
			untraced = d
		}
		if d := solveOnce(t, true); d < traced {
			traced = d
		}
	}
	const epsilon = 5 * time.Millisecond
	limit := untraced + untraced/50 + epsilon // untraced * 1.02 + epsilon
	if traced > limit {
		t.Fatalf("traced solve %v exceeds untraced %v by more than 2%%+%v", traced, untraced, epsilon)
	}
}

func benchSolve(b *testing.B, traced bool) {
	a := arch.Line(5)
	p := graph.Complete(5)
	a.Distances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *obs.Trace
		if traced {
			tr = obs.New() // fresh per iteration: steady-state span cost, no growth artefact
		}
		if _, err := Solve(a, p, nil, Options{Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveNoTrace vs BenchmarkSolveTraced is the honest cost of
// wiring the search to the observability layer; compare with
// `go test ./internal/solver -bench Solve`.
func BenchmarkSolveNoTrace(b *testing.B) { benchSolve(b, false) }

func BenchmarkSolveTraced(b *testing.B) { benchSolve(b, true) }
