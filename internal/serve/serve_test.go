package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/greedy"
)

// post sends a JSON body to the server and decodes the response envelope.
func post(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /compile: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, m
}

// postStatus is the goroutine-safe variant: no t.Fatal, just the status
// code (0 on transport error). Concurrency tests use it from workers.
func postStatus(ts *httptest.Server, body string) int {
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// errCode digs the machine-readable code out of an error envelope.
func errCode(t *testing.T, m map[string]any) string {
	t.Helper()
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %v", m)
	}
	code, _ := e["code"].(string)
	return code
}

func TestCompileSuccess(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 2}).Handler())
	defer ts.Close()
	edges := ataqc.RandomProblem(16, 0.3, 1).InteractionList()
	body, _ := json.Marshal(CompileRequest{Arch: "grid", Edges: edges})
	status, m := post(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("status %d, body %v", status, m)
	}
	if d, _ := m["depth"].(float64); d <= 0 {
		t.Fatalf("depth %v, want > 0", m["depth"])
	}
	if p, _ := m["pressure"].(float64); p != PressureRelaxed {
		t.Fatalf("pressure %v on an idle server, want %d", m["pressure"], PressureRelaxed)
	}
	if _, ok := m["initial"].([]any); !ok {
		t.Fatalf("missing initial mapping in %v", m)
	}
}

// TestErrorTaxonomy drives the full service boundary with every rejection
// class and asserts the (status, code) pair for each — the table IS the
// API contract.
func TestErrorTaxonomy(t *testing.T) {
	srv := New(Config{Workers: 2, MaxBodyBytes: 4096, MaxQubits: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	grid9 := `"arch":"grid","edges":[[0,1],[1,2],[2,3]]`
	cases := []struct {
		name   string
		body   string
		status int
		code   Code
	}{
		{"garbage-json", `{{{`, 400, CodeInvalidRequest},
		{"unknown-field", `{` + grid9 + `,"bogus":1}`, 400, CodeInvalidRequest},
		{"trailing-data", `{` + grid9 + `}{}`, 400, CodeInvalidRequest},
		{"missing-arch", `{"edges":[[0,1]]}`, 400, CodeInvalidRequest},
		{"unknown-arch", `{"arch":"warp","edges":[[0,1]]}`, 400, CodeInvalidRequest},
		{"unknown-strategy", `{` + grid9 + `,"strategy":"warp-drive"}`, 400, CodeInvalidRequest},
		{"empty-problem", `{"arch":"grid","edges":[]}`, 400, CodeInvalidRequest},
		{"self-loop", `{"arch":"grid","edges":[[2,2]]}`, 400, CodeInvalidRequest},
		{"negative-vertex", `{"arch":"grid","edges":[[-1,2]]}`, 400, CodeInvalidRequest},
		{"vertex-above-limit", `{"arch":"grid","edges":[[0,99]]}`, 400, CodeInvalidRequest},
		{"alpha-out-of-range", `{` + grid9 + `,"alpha":1.5}`, 400, CodeInvalidRequest},
		{"negative-timeout", `{` + grid9 + `,"timeoutMs":-1}`, 400, CodeInvalidRequest},
		{"workers-out-of-range", `{` + grid9 + `,"workers":999}`, 400, CodeInvalidRequest},
		{"problem-wider-than-device", `{"arch":"mumbai","n":27,"edges":[[0,40]]}`, 400, CodeInvalidRequest},
		{"custom-without-couplings", `{"arch":"custom","n":4,"edges":[[0,1]]}`, 400, CodeInvalidRequest},
		{"custom-bad-coupling", `{"arch":"custom","n":3,"couplings":[[0,7]],"edges":[[0,1]]}`, 400, CodeInvalidRequest},
		{"chaos-disabled", `{` + grid9 + `,"chaos":"panic"}`, 400, CodeInvalidRequest},
		{"oversized-body", `{` + grid9 + `,"strategy":"` + strings.Repeat("x", 8192) + `"}`, 413, CodePayloadTooLarge},
		// Compile-path rejections: the coupling graph is the problem.
		{"unreachable-islands",
			`{"arch":"custom","n":4,"couplings":[[0,1],[2,3]],"edges":[[0,2]],"strategy":"greedy"}`,
			422, CodeUnreachable},
		{"hybrid-on-irregular",
			`{"arch":"custom","n":4,"couplings":[[0,1],[1,2],[2,3],[3,0]],"edges":[[0,2],[1,3]]}`,
			422, CodeUncompilable},
		// Budget exhaustion with no degradation floor: greedy on an
		// irregular device cannot fall back to the structured pattern.
		{"budget-exhausted-no-floor",
			`{"arch":"custom","n":6,"couplings":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,3]],"edges":[[0,4],[1,5],[2,4]],"strategy":"greedy","maxNodes":1}`,
			504, CodeBudgetExhausted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, m := post(t, ts, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %v)", status, tc.status, m)
			}
			if got := errCode(t, m); got != string(tc.code) {
				t.Fatalf("code %q, want %q", got, tc.code)
			}
		})
	}

	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/compile")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
}

// TestClassify pins the error→(status, code) mapping for the classes that
// are awkward to reach through HTTP (cancellation, internal panics).
func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   Code
	}{
		{"canceled", context.Canceled, StatusClientClosedRequest, CodeClientClosed},
		{"wrapped-canceled", fmt.Errorf("core: compile interrupted: %w", context.Canceled), StatusClientClosedRequest, CodeClientClosed},
		{"deadline", context.DeadlineExceeded, 504, CodeDeadline},
		{"budget", fmt.Errorf("x: %w", core.ErrBudgetExhausted), 504, CodeBudgetExhausted},
		{"internal", fmt.Errorf("%w: panic: boom", core.ErrInternal), 500, CodeInternal},
		{"unreachable", fmt.Errorf("g: %w", greedy.ErrUnreachable), 422, CodeUnreachable},
		{"no-progress", fmt.Errorf("g: %w", greedy.ErrNoProgress), 422, CodeUncompilable},
		{"unknown-compile-error", errors.New("core: architecture ring has no structured pattern"), 422, CodeUncompilable},
		// Interrupt wrapping a node-budget trip classifies as the budget,
		// not the interrupt: the budget is the actionable cause.
		{"interrupt-wrapping-budget",
			fmt.Errorf("%w at cycle 3: %w", greedy.ErrInterrupted, fmt.Errorf("%w (2 > 1)", core.ErrBudgetExhausted)),
			504, CodeBudgetExhausted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ae := classify(tc.err)
			if ae.Status != tc.status || ae.Code != tc.code {
				t.Fatalf("classify(%v) = (%d, %s), want (%d, %s)", tc.err, ae.Status, ae.Code, tc.status, tc.code)
			}
		})
	}
}

// blockingServer returns a server whose 2-qubit compiles block until
// release is closed, plus a started channel that receives one token per
// blocked compile — the deterministic scaffolding for backlog tests.
func blockingServer(cfg Config) (*Server, chan struct{}, chan struct{}) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	cfg.Compile = func(ctx context.Context, dev *ataqc.Device, prob *ataqc.Problem, opts ataqc.Options) (*ataqc.Result, error) {
		if prob.Qubits() == 2 {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return ataqc.CompileContext(ctx, dev, prob, opts)
	}
	return New(cfg), release, started
}

const blockerBody = `{"arch":"line","n":2,"edges":[[0,1]]}`

func TestAdmissionControlSheds(t *testing.T) {
	srv, release, started := blockingServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- postStatus(ts, blockerBody)
		}()
	}
	<-started // one blocker holds the worker slot
	// Wait for the second to be admitted into the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d", srv.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	// Capacity (workers 1 + queue 1) is full: the next arrival is shed.
	status, m := post(t, ts, blockerBody)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %v)", status, m)
	}
	if got := errCode(t, m); got != string(CodeOverloaded) {
		t.Fatalf("code %q, want %q", got, CodeOverloaded)
	}
	if srv.Metrics().Counter("serve.shed").Value() != 1 {
		t.Fatalf("shed counter %d, want 1", srv.Metrics().Counter("serve.shed").Value())
	}

	close(release)
	wg.Wait()
	close(results)
	for status := range results {
		if status != http.StatusOK {
			t.Fatalf("admitted request finished %d, want 200", status)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	srv := New(Config{Workers: 1, AllowChaos: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, m := post(t, ts, `{"arch":"grid","edges":[[0,1],[1,2]],"chaos":"panic"}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %v)", status, m)
	}
	if got := errCode(t, m); got != string(CodeInternal) {
		t.Fatalf("code %q, want %q", got, CodeInternal)
	}
	if n := srv.Metrics().Counter("serve.panics").Value(); n != 1 {
		t.Fatalf("panic counter %d, want 1", n)
	}

	// The daemon survived: the very next compile succeeds and the worker
	// slot the panicking request held was returned.
	status, m = post(t, ts, `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	if status != http.StatusOK {
		t.Fatalf("post-panic status %d, want 200 (body %v)", status, m)
	}
	if srv.Queued() != 0 {
		t.Fatalf("queued %d after panic, want 0 (slot leak)", srv.Queued())
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	srv, release, started := blockingServer(Config{Workers: 1, QueueDepth: 2, DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() { done <- postStatus(ts, blockerBody) }()
	<-started

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()
	// Draining flips readiness and rejects new work with a structured 503.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d while draining, want 503", resp.StatusCode)
	}
	status, m := post(t, ts, blockerBody)
	if status != http.StatusServiceUnavailable || errCode(t, m) != string(CodeDraining) {
		t.Fatalf("new work during drain: status %d code %v, want 503 draining", status, m)
	}
	// Liveness stays green while draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d while draining, want 200", resp.StatusCode)
	}

	// The in-flight job survives the drain and completes.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", status)
	}
}

func TestShutdownDeadlineReportsStragglers(t *testing.T) {
	srv, release, started := blockingServer(Config{Workers: 1, DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		postStatus(ts, blockerBody)
		close(done)
	}()
	<-started
	if err := srv.Shutdown(context.Background()); err == nil {
		t.Fatal("shutdown returned nil with a straggler in flight")
	}
	close(release)
	<-done
}

func TestHealthEndpoints(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 1}).Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz", "/statz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestStatzReportsCounters(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post(t, ts, `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body.Bytes(), &m); err != nil {
		t.Fatalf("statz JSON: %v", err)
	}
	if m.Counters["serve.ok"] != 1 || m.Counters["serve.requests"] != 1 {
		t.Fatalf("statz counters %v, want serve.ok=1 serve.requests=1", m.Counters)
	}
}
