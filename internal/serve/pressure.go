package serve

import "time"

// Pressure levels. Admission control measures queue occupancy at the moment
// a request is admitted and compiles it under the matching budget: the
// deeper the backlog, the tighter the budget, so a saturated daemon answers
// every admitted request quickly with a degraded (Theorem 6.1 linear-depth)
// circuit instead of letting latency collapse. This reuses the PR 2
// governance ladder — the serving layer only chooses how much budget each
// request gets; the compiler's own degradation machinery does the rest.
const (
	// PressureRelaxed: occupancy below 1/2 — the request keeps its full
	// budget (its own TimeoutMs clamped to the server ceiling).
	PressureRelaxed = 0
	// PressureElevated: occupancy in [1/2, 7/8) — wall-clock budget cut to
	// a quarter of the ceiling and a generous work budget installed, so
	// hybrid compiles start truncating their prediction pools.
	PressureElevated = 1
	// PressureCritical: occupancy at or above 7/8 — a near-zero work
	// budget forces an immediate fall to the structured ATA floor: O(n)
	// pattern replay, deterministic, verifier-clean.
	PressureCritical = 2
)

// Work budgets installed by the elevated and critical levels. The elevated
// budget lets the greedy phase finish on mid-size problems while truncating
// prediction; the critical budget exhausts on the first poll so the compile
// degrades straight to the ATA floor.
const (
	elevatedMaxNodes = 4096
	criticalMaxNodes = 1
)

// pressurePolicy converts queue occupancy into per-request budgets.
type pressurePolicy struct {
	queueDepth int           // admission queue capacity (denominator)
	ceiling    time.Duration // per-request wall-clock ceiling
}

// level maps the number of queued-or-running requests to a pressure level.
func (p pressurePolicy) level(queued int64) int {
	if p.queueDepth <= 0 {
		return PressureRelaxed
	}
	switch {
	case queued*8 >= int64(p.queueDepth)*7:
		return PressureCritical
	case queued*2 >= int64(p.queueDepth):
		return PressureElevated
	default:
		return PressureRelaxed
	}
}

// budgets returns the effective wall-clock and work budgets for a request
// that asked for (deadline, maxNodes), compiled at the given level. The
// server only ever tightens: a client asking for less than the ladder
// allows keeps its own budget.
func (p pressurePolicy) budgets(level int, deadline time.Duration, maxNodes int) (time.Duration, int) {
	ceiling := p.ceiling
	switch level {
	case PressureElevated:
		ceiling = p.ceiling / 4
		maxNodes = tighten(maxNodes, elevatedMaxNodes)
	case PressureCritical:
		ceiling = p.ceiling / 8
		maxNodes = tighten(maxNodes, criticalMaxNodes)
	}
	if deadline == 0 || deadline > ceiling {
		deadline = ceiling
	}
	return deadline, maxNodes
}

// tighten returns the smaller of the client's work budget and the ladder's
// (0 = client asked for unbounded, so the ladder's cap wins).
func tighten(client, ladder int) int {
	if client == 0 || client > ladder {
		return ladder
	}
	return client
}
