package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/ata-pattern/ataqc/internal/telemetry"
)

// debugzResponse is the JSON body of GET /debugz: the flight recorder's
// in-flight jobs, its most recent completed records (newest first, after
// filtering), and the recorder's own stats.
type debugzResponse struct {
	InFlight []telemetry.JobRecord   `json:"inflight"`
	Recent   []telemetry.JobRecord   `json:"recent"`
	Stats    telemetry.RecorderStats `json:"stats"`
}

// handleDebugz serves the flight recorder. Query parameters:
//
//	n=<count>        cap the completed records returned (default 32)
//	status=<code>    only records that finished with this HTTP status
//	degraded=<bool>  only degraded (true) or full-fidelity (false) compiles
//	slow-ms=<f>      only records slower end-to-end than this
//	stream=sse|ndjson  switch to a live stream of completed records
//	                 (filters above still apply) until the client leaves
//	                 or the daemon drains
//
// The snapshot form answers "what just happened"; the stream form follows
// a chaos run or an incident live without polling.
func (s *Server) handleDebugz(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f, err := parseDebugzFilter(q)
	if err != nil {
		writeError(w, errInvalid("%v", err))
		return
	}
	switch q.Get("stream") {
	case "":
		writeJSON(w, http.StatusOK, &debugzResponse{
			InFlight: s.flight.InFlight(),
			Recent:   s.flight.Recent(f),
			Stats:    s.flight.Stats(),
		})
	case "ndjson", "sse":
		s.streamDebugz(w, r, f, q.Get("stream") == "sse")
	default:
		writeError(w, errInvalid("unknown stream format %q (want sse or ndjson)", q.Get("stream")))
	}
}

// parseDebugzFilter converts query parameters into a recorder filter.
func parseDebugzFilter(q map[string][]string) (telemetry.Filter, error) {
	f := telemetry.Filter{Limit: 32}
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if v := get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("bad n %q", v)
		}
		f.Limit = n
	}
	if v := get("status"); v != "" {
		st, err := strconv.Atoi(v)
		if err != nil || st < 100 || st > 599 {
			return f, fmt.Errorf("bad status %q", v)
		}
		f.Status = st
	}
	if v := get("degraded"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return f, fmt.Errorf("bad degraded %q", v)
		}
		f.Degraded = &b
	}
	if v := get("slow-ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return f, fmt.Errorf("bad slow-ms %q", v)
		}
		f.SlowerThanMs = ms
	}
	return f, nil
}

// streamDebugz subscribes to the flight recorder and relays matching
// completed records as SSE events or NDJSON lines, flushing each so the
// client sees them live. It returns when the client disconnects or the
// recorder's subscribers are closed (daemon drain).
func (s *Server) streamDebugz(w http.ResponseWriter, r *http.Request, f telemetry.Filter, sse bool) {
	ch, cancel := s.flight.Subscribe(64)
	defer cancel()
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first record arrives
	}
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return // drain closed the stream
			}
			if !f.Match(&rec) {
				continue
			}
			b, err := json.Marshal(&rec)
			if err != nil {
				continue
			}
			if sse {
				fmt.Fprintf(w, "event: job\ndata: %s\n\n", b)
			} else {
				w.Write(b)
				w.Write([]byte("\n"))
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
