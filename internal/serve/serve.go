// Package serve is the robustness layer of the compile-as-a-service daemon
// (cmd/ataqcd): admission control with a bounded queue and explicit 429
// load shedding, per-request panic isolation, a queue-pressure degradation
// policy that tightens compile budgets as backlog grows (reusing the
// compiler's governance ladder, so starved requests still return
// verifier-clean linear-depth circuits), health/readiness endpoints, and
// graceful shutdown that drains in-flight jobs under a deadline.
//
// The contract the chaos harness (internal/faultinject network faults +
// cmd/ataqc-bench -chaos) enforces: no hostile client behavior — malformed
// payloads, truncated bodies, header stalls, mid-request cancellations,
// queue overflow, panic-injected compiles — may kill the daemon or elicit
// an unstructured answer. Every response is either a compiled circuit or a
// typed JSON error with a machine-readable code.
//
// Every response additionally carries a trace ID (the X-Ataqc-Trace-Id
// header, echoed in JSON bodies), generated at admission and propagated
// through the compile via context, so one ID follows a request across
// logs, compile spans, and the debugz flight recorder (see
// internal/telemetry).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/telemetry"
)

// CompileFunc is the compile entry point the server drives; tests and chaos
// harnesses substitute their own.
type CompileFunc func(ctx context.Context, dev *ataqc.Device, prob *ataqc.Problem, opts ataqc.Options) (*ataqc.Result, error)

// Config sizes the server's admission control and budgets. Zero values take
// the documented defaults.
type Config struct {
	// Workers is the compile worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the waiting room beyond the running workers
	// (default 4x workers). Arrivals beyond workers+queue are shed with a
	// 429 instead of queued — bounded latency beats unbounded patience.
	QueueDepth int
	// RequestTimeout is the per-request compile ceiling (default 30s);
	// queue pressure tightens it further (see pressure.go).
	RequestTimeout time.Duration
	// DrainTimeout caps how long Shutdown waits for in-flight jobs
	// (default 10s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps the request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxQubits caps the per-request device/problem size (default
	// DefaultMaxQubits).
	MaxQubits int
	// AllowChaos honors the request Chaos field (panic / sleep injection).
	// Off by default; the CI chaos job and -chaos bench runs enable it.
	AllowChaos bool
	// RecorderSize is the flight-recorder ring capacity: how many
	// completed compile requests debugz can replay (default 256).
	RecorderSize int
	// SLO configures the rolling-window objectives surfaced in statz and
	// readyz warnings; zero fields take the telemetry defaults.
	SLO telemetry.SLOConfig
	// TraceSeed seeds trace-ID generation (0 = crypto-random); tests pin
	// it for reproducible IDs.
	TraceSeed int64
	// Clock drives the flight recorder and SLO tracker (default
	// obs.SystemClock); tests inject a fake to step time deterministically.
	Clock obs.Clock
	// Cache, when non-nil, is attached to every compile under the
	// hybrid/greedy/ata strategies (Options.Cache) and surfaced in the
	// metrics registry: cache.hits{tier=mem|disk} and cache.misses
	// counters, plus size/corruption gauges, appear in /statz and
	// /metricsz after the first cached compile. Responses carry the tier
	// that answered in cacheTier.
	Cache *ataqc.Cache
	// Compile overrides the compile entry point (default
	// ataqc.CompileContext).
	Compile CompileFunc
	// Logf, when non-nil, receives one line per notable event (shed,
	// panic, drain). Lines about a specific request carry its trace ID.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = DefaultMaxQubits
	}
	if c.RecorderSize <= 0 {
		c.RecorderSize = 256
	}
	if c.Clock == nil {
		c.Clock = obs.SystemClock
	}
	if c.Compile == nil {
		c.Compile = ataqc.CompileContext
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the compile service. Construct with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	policy   pressurePolicy
	slots    chan struct{} // worker-pool tokens
	queued   atomic.Int64  // admitted requests (waiting + running)
	inflight sync.WaitGroup
	draining atomic.Bool
	met      *obs.Registry
	ids      *telemetry.IDSource
	flight   *telemetry.FlightRecorder
	slo      *telemetry.Tracker
	mux      *http.ServeMux
}

// New returns a server ready to mount.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		policy: pressurePolicy{queueDepth: cfg.Workers + cfg.QueueDepth, ceiling: cfg.RequestTimeout},
		slots:  make(chan struct{}, cfg.Workers),
		met:    obs.NewRegistry(),
		ids:    telemetry.NewIDSource(cfg.TraceSeed),
		flight: telemetry.NewFlightRecorder(cfg.RecorderSize, cfg.Clock),
		slo:    telemetry.NewTracker(cfg.SLO, cfg.Clock),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/compile", s.guard("compile", true, s.handleCompile))
	s.mux.HandleFunc("/healthz", s.guard("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.guard("readyz", false, s.handleReadyz))
	s.mux.HandleFunc("/statz", s.guard("statz", false, s.handleStatz))
	s.mux.HandleFunc("/metricsz", s.guard("metricsz", false, s.handleMetricsz))
	s.mux.HandleFunc("/debugz", s.guard("debugz", false, s.handleDebugz))
	return s
}

// Handler returns the HTTP surface: POST /compile, GET /healthz, /readyz,
// /statz, /metricsz, /debugz.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's registry (latency histograms, shed/degrade
// counters, queue gauge, per-endpoint request series) for benches and tests.
func (s *Server) Metrics() *obs.Registry { return s.met }

// Flight exposes the flight recorder (debugz backing store) for tests.
func (s *Server) Flight() *telemetry.FlightRecorder { return s.flight }

// SLO exposes the objective tracker for tests.
func (s *Server) SLO() *telemetry.Tracker { return s.slo }

// Queued reports the admitted requests currently waiting or running.
func (s *Server) Queued() int64 { return s.queued.Load() }

// Capacity reports the admission bound (workers + queue depth).
func (s *Server) Capacity() int { return s.cfg.Workers + s.cfg.QueueDepth }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown stops admitting work and waits for in-flight jobs to drain,
// bounded by the earlier of ctx and the configured DrainTimeout. Live
// debugz streams are ended either way. It returns nil when the queue
// drained and an error naming the stragglers' count when the deadline won.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	defer s.flight.CloseSubscribers()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.Logf("serve: drained cleanly")
		return nil
	case <-ctx.Done():
		n := s.queued.Load()
		s.cfg.Logf("serve: drain deadline passed with %d in flight", n)
		return fmt.Errorf("serve: drain deadline passed with %d requests in flight", n)
	}
}

// guard is the per-request telemetry and panic boundary, in that order of
// registration so the deferred pieces unwind correctly: it mints the trace
// ID and sets the response header before the handler can write, opens a
// flight-recorder job for tracked endpoints, and converts a handler panic
// into a structured 500 (when the response has not started) so the daemon
// keeps serving. Because deferred functions run last-registered-first, the
// finish/metrics defer is registered before the recover defer: a panic is
// recovered (writing the 500) first, and only then does the job commit —
// so even a panicking request lands a complete flight-recorder entry with
// its final status, never a half-written slot. This is the outermost
// isolation layer; the compiler has its own recover at core.CompileContext,
// so this one catches handler bugs and injected chaos panics.
func (s *Server) guard(endpoint string, track bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.ids.New()
		tw := &trackingWriter{ResponseWriter: w}
		tw.Header().Set(telemetry.TraceHeader, string(id))
		r = r.WithContext(telemetry.WithTraceID(r.Context(), id))

		var job *telemetry.Job
		if track {
			job = s.flight.Begin(id, endpoint)
			r = r.WithContext(telemetry.WithJob(r.Context(), job))
		}
		start := time.Now()
		defer func() {
			status := tw.status
			if status == 0 {
				status = http.StatusOK // handler returned without writing
			}
			elapsed := time.Since(start)
			s.met.Counter(obs.Labeled("serve.http.requests",
				obs.Label{Key: "endpoint", Value: endpoint},
				obs.Label{Key: "status", Value: fmt.Sprint(status)})).Add(1)
			s.met.Histogram(obs.Labeled("serve.http.latency_us",
				obs.Label{Key: "endpoint", Value: endpoint})).Observe(elapsed.Microseconds())
			if track {
				s.slo.Record(status, elapsed, job.Degraded())
				job.Finish(status, outcomeOf(status))
			}
		}()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.Counter("serve.panics").Add(1)
				s.cfg.Logf("serve: panic serving %s %s trace=%s: %v\n%s",
					r.Method, r.URL.Path, id, rec, debug.Stack())
				job.SetErrCode(string(CodeInternal))
				if !tw.wrote {
					writeError(tw, &apiError{
						Status:  http.StatusInternalServerError,
						Code:    CodeInternal,
						Message: fmt.Sprintf("panic: %v", rec),
					})
				} else if tw.status == 0 {
					// Body bytes went out without an explicit status: the
					// implicit 200 already reached the wire, record it.
					tw.status = http.StatusOK
				}
			}
		}()
		h(tw, r)
	}
}

// outcomeOf names the flight-recorder outcome class for a final status.
func outcomeOf(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status >= 500:
		return "error"
	default:
		return "rejected"
	}
}

// trackingWriter records whether the response has started and with which
// status, so the panic guard knows if a structured error can still be
// written and the telemetry defer knows what went on the wire. It forwards
// Flush so debugz streams work through the guard.
type trackingWriter struct {
	http.ResponseWriter
	wrote  bool
	status int
}

func (t *trackingWriter) WriteHeader(code int) {
	if !t.wrote {
		t.status = code
	}
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	if !t.wrote {
		t.status = http.StatusOK
	}
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (t *trackingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	job := telemetry.JobFrom(r.Context())
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Code: CodeInvalidRequest,
			Message: "POST only"})
		return
	}
	s.met.Counter("serve.requests").Add(1)
	if s.draining.Load() {
		writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: "daemon is draining; no new work admitted"})
		return
	}

	// Parse before admission: rejecting malformed bodies must not consume
	// queue capacity, and MaxBytesReader bounds what a hostile body can
	// make us read.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, dev, prob, opts, err := parseRequest(r.Body, s.cfg.MaxQubits)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	var chaosSleep time.Duration
	if req.Chaos != "" {
		if !s.cfg.AllowChaos {
			s.fail(w, r, errInvalid("chaos directives are disabled on this daemon"))
			return
		}
		if chaosSleep, err = parseChaos(req.Chaos); err != nil {
			s.fail(w, r, err)
			return
		}
	}

	// Admission: claim a queue position or shed. The counter is the single
	// source of truth — increment first, then check, so concurrent
	// arrivals cannot both squeeze into the last position.
	queued := s.queued.Add(1)
	s.met.Gauge("serve.queue").Set(queued)
	if queued > int64(s.Capacity()) {
		s.queued.Add(-1)
		s.met.Counter("serve.shed").Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, &apiError{Status: http.StatusTooManyRequests, Code: CodeOverloaded,
			Message: fmt.Sprintf("queue full (%d in flight); retry with backoff", queued-1)})
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.queued.Add(-1)
		s.inflight.Done()
	}()

	ctx := r.Context()
	enq := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.fail(w, r, ctx.Err()) // client gave up while queued
		return
	}
	defer func() { <-s.slots }()
	wait := time.Since(enq)
	s.met.Histogram("serve.queue_wait_us").Observe(wait.Microseconds())
	job.SetQueueWait(wait)

	// Chaos injection (only with AllowChaos): a panicking compile must be
	// answered structurally, a sleeping one holds the worker slot so tests
	// and the bench can build real backlog.
	if req.Chaos == "panic" {
		panic(fmt.Sprintf("serve: chaos-injected compile panic (%s)", dev.Name()))
	}
	if chaosSleep > 0 {
		select {
		case <-time.After(chaosSleep):
		case <-ctx.Done():
			s.fail(w, r, ctx.Err())
			return
		}
	}

	// Pressure is sampled at compile start: the budgets reflect the
	// backlog the daemon carries right now, not when the request arrived.
	level := s.policy.level(s.queued.Load())
	deadline, maxNodes := s.policy.budgets(level, opts.Deadline, opts.MaxNodes)
	opts.Deadline, opts.MaxNodes = deadline, maxNodes
	s.met.Counter(fmt.Sprintf("serve.pressure.%d", level)).Add(1)
	job.SetPressure(level)

	if s.cfg.Cache != nil {
		opts.Cache = s.cfg.Cache
	}
	cctx, cancel := context.WithTimeout(ctx, deadline+time.Second) // the compiler's own ladder fires first
	defer cancel()
	start := time.Now()
	res, err := s.cfg.Compile(cctx, dev, prob, opts)
	elapsed := time.Since(start)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.met.Counter("serve.ok").Add(1)
	s.met.Histogram("serve.latency_us").Observe(elapsed.Microseconds())
	s.recordCacheOutcome(opts, res)
	tl := res.Timeline()
	job.SetTimeline(phasesOf(tl), tl.Winner)

	resp := &CompileResponse{
		TraceID:      string(telemetry.TraceIDFrom(ctx)),
		Device:       dev.Name(),
		DeviceQubits: dev.Qubits(),
		Qubits:       prob.Qubits(),
		Interactions: prob.Interactions(),
		Strategy:     string(opts.Strategy),
		Depth:        res.Depth(),
		CXCount:      res.CXCount(),
		Swaps:        res.SwapCount(),
		Initial:      res.InitialMapping(),
		Final:        res.FinalMapping(),
		Pressure:     level,
		ElapsedMs:    float64(elapsed.Microseconds()) / 1e3,
	}
	if req.Noise {
		resp.Fidelity = res.EstimatedFidelity()
	}
	if res.Degraded() {
		s.met.Counter("serve.degraded").Add(1)
		d := res.DegradeDetail()
		resp.Degraded = true
		resp.DegradeBudget, resp.DegradeRung = d.Budget, d.Rung
		job.SetDegraded(d.Budget, d.Rung)
	}
	if req.IncludeQASM {
		var sb strings.Builder
		if err := res.WriteQASM(&sb); err != nil {
			s.fail(w, r, fmt.Errorf("serve: QASM serialization failed: %w", err))
			return
		}
		resp.QASM = sb.String()
	}
	resp.CacheTier = res.CacheTier()
	writeJSON(w, http.StatusOK, resp)
}

// recordCacheOutcome lands the compile's cache verdict in the metrics
// registry: one hit counter per answering tier, a miss counter for
// cacheable strategies that compiled fresh, and snapshot gauges sizing
// both tiers. Only runs when the server carries a cache; baseline
// strategies (which bypass the cache) are not counted as misses.
func (s *Server) recordCacheOutcome(opts ataqc.Options, res *ataqc.Result) {
	if s.cfg.Cache == nil {
		return
	}
	switch opts.Strategy {
	case ataqc.StrategyHybrid, ataqc.StrategyGreedy, ataqc.StrategyATA, "":
	default:
		return
	}
	if tier := res.CacheTier(); tier != "" {
		s.met.Counter(obs.Labeled("cache.hits", obs.Label{Key: "tier", Value: tier})).Add(1)
	} else {
		s.met.Counter("cache.misses").Add(1)
	}
	st := s.cfg.Cache.Stats()
	s.met.Gauge("cache.mem.entries").Set(int64(st.MemEntries))
	s.met.Gauge("cache.disk.entries").Set(int64(st.DiskEntries))
	s.met.Gauge("cache.disk.bytes").Set(st.DiskBytes)
	s.met.Gauge("cache.corrupt").Set(st.Corrupt)
	s.met.Gauge("cache.evictions").Set(st.Evictions)
	s.met.Gauge("cache.put_failures").Set(st.PutFailures)
}

// phasesOf converts the compiler's phase breakdown into the flight
// recorder's millisecond form.
func phasesOf(tl ataqc.Timeline) []telemetry.PhaseMs {
	if len(tl.Phases) == 0 {
		return nil
	}
	out := make([]telemetry.PhaseMs, len(tl.Phases))
	for i, p := range tl.Phases {
		out[i] = telemetry.PhaseMs{Name: p.Name, Ms: float64(p.Duration.Microseconds()) / 1e3}
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the mux answers. Always 200 — a
	// draining or saturated daemon is still alive.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Readiness: admitting new work. Draining flips it so load balancers
	// stop routing before the listener closes. SLO budget burn does NOT
	// flip readiness — a burning daemon still serves — but it annotates
	// the body so operators and probes can see trouble coming.
	body := map[string]any{
		"queued":   s.queued.Load(),
		"capacity": s.Capacity(),
	}
	if warns := s.slo.Warnings(); len(warns) > 0 {
		body["warnings"] = warns
	}
	if s.draining.Load() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	snap := s.met.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": snap.Histograms,
		"slo":        s.slo.Snapshot(),
		"flight":     s.flight.Stats(),
	})
}

// handleMetricsz renders the registry in Prometheus text exposition
// format 0.0.4: every counter, gauge (with its _max high-water twin), and
// log-bucket histogram, with labeled series grouped under one family.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = telemetry.WriteProm(w, s.met.Snapshot())
}

// fail classifies err and writes the structured error, bumping the
// per-code counter and stamping the flight-recorder job.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	ae := classify(err)
	s.met.Counter("serve.errors." + string(ae.Code)).Add(1)
	telemetry.JobFrom(r.Context()).SetErrCode(string(ae.Code))
	if ae.Status == http.StatusTooManyRequests || ae.Status >= 500 {
		s.cfg.Logf("serve: trace=%s %s", telemetry.TraceIDFrom(r.Context()), ae.Error())
	}
	writeError(w, ae)
}

func writeError(w http.ResponseWriter, ae *apiError) {
	// The guard set the trace header before the handler ran; echo it in
	// the body so clients that lost the headers still have the ID.
	writeJSON(w, ae.Status, &ErrorResponse{
		TraceID: w.Header().Get(telemetry.TraceHeader),
		Error:   *ae,
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure past WriteHeader cannot be answered structurally;
	// the client sees a truncated body and treats it as a transport error.
	_ = json.NewEncoder(w).Encode(body)
}
