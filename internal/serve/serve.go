// Package serve is the robustness layer of the compile-as-a-service daemon
// (cmd/ataqcd): admission control with a bounded queue and explicit 429
// load shedding, per-request panic isolation, a queue-pressure degradation
// policy that tightens compile budgets as backlog grows (reusing the
// compiler's governance ladder, so starved requests still return
// verifier-clean linear-depth circuits), health/readiness endpoints, and
// graceful shutdown that drains in-flight jobs under a deadline.
//
// The contract the chaos harness (internal/faultinject network faults +
// cmd/ataqc-bench -chaos) enforces: no hostile client behavior — malformed
// payloads, truncated bodies, header stalls, mid-request cancellations,
// queue overflow, panic-injected compiles — may kill the daemon or elicit
// an unstructured answer. Every response is either a compiled circuit or a
// typed JSON error with a machine-readable code.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// CompileFunc is the compile entry point the server drives; tests and chaos
// harnesses substitute their own.
type CompileFunc func(ctx context.Context, dev *ataqc.Device, prob *ataqc.Problem, opts ataqc.Options) (*ataqc.Result, error)

// Config sizes the server's admission control and budgets. Zero values take
// the documented defaults.
type Config struct {
	// Workers is the compile worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the waiting room beyond the running workers
	// (default 4x workers). Arrivals beyond workers+queue are shed with a
	// 429 instead of queued — bounded latency beats unbounded patience.
	QueueDepth int
	// RequestTimeout is the per-request compile ceiling (default 30s);
	// queue pressure tightens it further (see pressure.go).
	RequestTimeout time.Duration
	// DrainTimeout caps how long Shutdown waits for in-flight jobs
	// (default 10s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps the request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxQubits caps the per-request device/problem size (default
	// DefaultMaxQubits).
	MaxQubits int
	// AllowChaos honors the request Chaos field (panic / sleep injection).
	// Off by default; the CI chaos job and -chaos bench runs enable it.
	AllowChaos bool
	// Compile overrides the compile entry point (default
	// ataqc.CompileContext).
	Compile CompileFunc
	// Logf, when non-nil, receives one line per notable event (shed,
	// panic, drain).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = DefaultMaxQubits
	}
	if c.Compile == nil {
		c.Compile = ataqc.CompileContext
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the compile service. Construct with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	policy   pressurePolicy
	slots    chan struct{} // worker-pool tokens
	queued   atomic.Int64  // admitted requests (waiting + running)
	inflight sync.WaitGroup
	draining atomic.Bool
	met      *obs.Registry
	mux      *http.ServeMux
}

// New returns a server ready to mount.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		policy: pressurePolicy{queueDepth: cfg.Workers + cfg.QueueDepth, ceiling: cfg.RequestTimeout},
		slots:  make(chan struct{}, cfg.Workers),
		met:    obs.NewRegistry(),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/compile", s.guard(s.handleCompile))
	s.mux.HandleFunc("/healthz", s.guard(s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.guard(s.handleReadyz))
	s.mux.HandleFunc("/statz", s.guard(s.handleStatz))
	return s
}

// Handler returns the HTTP surface: POST /compile, GET /healthz, /readyz,
// /statz.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's registry (latency histograms, shed/degrade
// counters, queue gauge) for benches and tests.
func (s *Server) Metrics() *obs.Registry { return s.met }

// Queued reports the admitted requests currently waiting or running.
func (s *Server) Queued() int64 { return s.queued.Load() }

// Capacity reports the admission bound (workers + queue depth).
func (s *Server) Capacity() int { return s.cfg.Workers + s.cfg.QueueDepth }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown stops admitting work and waits for in-flight jobs to drain,
// bounded by the earlier of ctx and the configured DrainTimeout. It returns
// nil when the queue drained and an error naming the stragglers' count when
// the deadline won.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.Logf("serve: drained cleanly")
		return nil
	case <-ctx.Done():
		n := s.queued.Load()
		s.cfg.Logf("serve: drain deadline passed with %d in flight", n)
		return fmt.Errorf("serve: drain deadline passed with %d requests in flight", n)
	}
}

// guard is the per-request panic boundary: a panic anywhere in a handler is
// converted into a structured 500 (when the response has not started) and
// the daemon keeps serving. This is the outermost isolation layer; the
// compiler has its own recover at core.CompileContext, so this one catches
// handler bugs and injected chaos panics.
func (s *Server) guard(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.met.Counter("serve.panics").Add(1)
				s.cfg.Logf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if !tw.wrote {
					writeError(tw, &apiError{
						Status:  http.StatusInternalServerError,
						Code:    CodeInternal,
						Message: fmt.Sprintf("panic: %v", rec),
					})
				}
			}
		}()
		h(tw, r)
	}
}

// trackingWriter records whether the response has started, so the panic
// guard knows if a structured error can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Code: CodeInvalidRequest,
			Message: "POST only"})
		return
	}
	s.met.Counter("serve.requests").Add(1)
	if s.draining.Load() {
		writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: "daemon is draining; no new work admitted"})
		return
	}

	// Parse before admission: rejecting malformed bodies must not consume
	// queue capacity, and MaxBytesReader bounds what a hostile body can
	// make us read.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, dev, prob, opts, err := parseRequest(r.Body, s.cfg.MaxQubits)
	if err != nil {
		s.fail(w, err)
		return
	}
	var chaosSleep time.Duration
	if req.Chaos != "" {
		if !s.cfg.AllowChaos {
			s.fail(w, errInvalid("chaos directives are disabled on this daemon"))
			return
		}
		if chaosSleep, err = parseChaos(req.Chaos); err != nil {
			s.fail(w, err)
			return
		}
	}

	// Admission: claim a queue position or shed. The counter is the single
	// source of truth — increment first, then check, so concurrent
	// arrivals cannot both squeeze into the last position.
	queued := s.queued.Add(1)
	s.met.Gauge("serve.queue").Set(queued)
	if queued > int64(s.Capacity()) {
		s.queued.Add(-1)
		s.met.Counter("serve.shed").Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, &apiError{Status: http.StatusTooManyRequests, Code: CodeOverloaded,
			Message: fmt.Sprintf("queue full (%d in flight); retry with backoff", queued-1)})
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.queued.Add(-1)
		s.inflight.Done()
	}()

	ctx := r.Context()
	enq := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.fail(w, ctx.Err()) // client gave up while queued
		return
	}
	defer func() { <-s.slots }()
	s.met.Histogram("serve.queue_wait_us").Observe(time.Since(enq).Microseconds())

	// Chaos injection (only with AllowChaos): a panicking compile must be
	// answered structurally, a sleeping one holds the worker slot so tests
	// and the bench can build real backlog.
	if req.Chaos == "panic" {
		panic(fmt.Sprintf("serve: chaos-injected compile panic (%s)", dev.Name()))
	}
	if chaosSleep > 0 {
		select {
		case <-time.After(chaosSleep):
		case <-ctx.Done():
			s.fail(w, ctx.Err())
			return
		}
	}

	// Pressure is sampled at compile start: the budgets reflect the
	// backlog the daemon carries right now, not when the request arrived.
	level := s.policy.level(s.queued.Load())
	deadline, maxNodes := s.policy.budgets(level, opts.Deadline, opts.MaxNodes)
	opts.Deadline, opts.MaxNodes = deadline, maxNodes
	s.met.Counter(fmt.Sprintf("serve.pressure.%d", level)).Add(1)

	cctx, cancel := context.WithTimeout(ctx, deadline+time.Second) // the compiler's own ladder fires first
	defer cancel()
	start := time.Now()
	res, err := s.cfg.Compile(cctx, dev, prob, opts)
	elapsed := time.Since(start)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.met.Counter("serve.ok").Add(1)
	s.met.Histogram("serve.latency_us").Observe(elapsed.Microseconds())

	resp := &CompileResponse{
		Device:       dev.Name(),
		DeviceQubits: dev.Qubits(),
		Qubits:       prob.Qubits(),
		Interactions: prob.Interactions(),
		Strategy:     string(opts.Strategy),
		Depth:        res.Depth(),
		CXCount:      res.CXCount(),
		Swaps:        res.SwapCount(),
		Initial:      res.InitialMapping(),
		Final:        res.FinalMapping(),
		Pressure:     level,
		ElapsedMs:    float64(elapsed.Microseconds()) / 1e3,
	}
	if req.Noise {
		resp.Fidelity = res.EstimatedFidelity()
	}
	if res.Degraded() {
		s.met.Counter("serve.degraded").Add(1)
		d := res.DegradeDetail()
		resp.Degraded = true
		resp.DegradeBudget, resp.DegradeRung = d.Budget, d.Rung
	}
	if req.IncludeQASM {
		var sb strings.Builder
		if err := res.WriteQASM(&sb); err != nil {
			s.fail(w, fmt.Errorf("serve: QASM serialization failed: %w", err))
			return
		}
		resp.QASM = sb.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and the mux answers. Always 200 — a
	// draining or saturated daemon is still alive.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Readiness: admitting new work. Draining flips it so load balancers
	// stop routing before the listener closes.
	body := map[string]any{
		"queued":   s.queued.Load(),
		"capacity": s.Capacity(),
	}
	if s.draining.Load() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	snap := s.met.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": snap.Histograms,
	})
}

// fail classifies err and writes the structured error, bumping the
// per-code counter.
func (s *Server) fail(w http.ResponseWriter, err error) {
	ae := classify(err)
	s.met.Counter("serve.errors." + string(ae.Code)).Add(1)
	if ae.Status == http.StatusTooManyRequests || ae.Status >= 500 {
		s.cfg.Logf("serve: %s", ae.Error())
	}
	writeError(w, ae)
}

func writeError(w http.ResponseWriter, ae *apiError) {
	writeJSON(w, ae.Status, &ErrorResponse{Error: *ae})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure past WriteHeader cannot be answered structurally;
	// the client sees a truncated body and treats it as a transport error.
	_ = json.NewEncoder(w).Encode(body)
}
