package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// TestCompileCacheTier: a daemon with a cache answers a repeat submission
// from the memory tier, reports the tier in the response body, and lands
// hit/miss counters plus size gauges in the metrics registry.
func TestCompileCacheTier(t *testing.T) {
	cache, err := ataqc.OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	defer cache.Close()
	srv := New(Config{Workers: 2, Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"arch":"grid","edges":[[0,1],[1,2],[2,3],[0,3],[1,3],[0,4],[4,5],[3,5]]}`
	status, cold := post(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("cold compile status %d: %v", status, cold)
	}
	if tier, ok := cold["cacheTier"]; ok {
		t.Fatalf("cold compile carried cacheTier %v", tier)
	}
	status, warm := post(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("warm compile status %d: %v", status, warm)
	}
	if tier, _ := warm["cacheTier"].(string); tier != "mem" {
		t.Fatalf("warm cacheTier = %q, want mem", tier)
	}
	if warm["depth"] != cold["depth"] || warm["cxCount"] != cold["cxCount"] {
		t.Fatalf("cached answer diverges: cold %v warm %v", cold, warm)
	}

	snap := srv.Metrics().Snapshot()
	hitSeries := obs.Labeled("cache.hits", obs.Label{Key: "tier", Value: "mem"})
	if snap.Counters[hitSeries] != 1 {
		t.Fatalf("counter %s = %d, want 1 (all: %v)", hitSeries, snap.Counters[hitSeries], snap.Counters)
	}
	if snap.Counters["cache.misses"] != 1 {
		t.Fatalf("cache.misses = %d, want 1", snap.Counters["cache.misses"])
	}
	if snap.Gauges["cache.disk.entries"].Value != 1 || snap.Gauges["cache.disk.bytes"].Value <= 0 {
		t.Fatalf("disk gauges not synced: %v", snap.Gauges)
	}
	if snap.Gauges["cache.corrupt"].Value != 0 {
		t.Fatalf("cache.corrupt = %d, want 0", snap.Gauges["cache.corrupt"].Value)
	}
}

// TestCompileNoCacheNoSeries: without a configured cache the response has
// no cacheTier and the registry grows no cache series.
func TestCompileNoCacheNoSeries(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, m := post(t, ts, `{"arch":"line","edges":[[0,1],[1,2]]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, m)
	}
	if tier, ok := m["cacheTier"]; ok {
		t.Fatalf("cacheless daemon carried cacheTier %v", tier)
	}
	if _, ok := srv.Metrics().Snapshot().Counters["cache.misses"]; ok {
		t.Fatalf("cacheless daemon grew a cache.misses series")
	}
}
