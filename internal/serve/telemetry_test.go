package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/telemetry"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// doRaw issues an arbitrary request and returns the response plus decoded
// JSON body (nil when the body is not JSON).
func doRaw(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

// checkTraceEcho asserts the response carries a valid trace ID header and,
// when the body is JSON with a traceId field, that the two agree.
func checkTraceEcho(t *testing.T, resp *http.Response, m map[string]any) string {
	t.Helper()
	id := resp.Header.Get(telemetry.TraceHeader)
	if !hex32.MatchString(id) {
		t.Fatalf("%s header %q is not a 32-hex trace id (status %d)",
			telemetry.TraceHeader, id, resp.StatusCode)
	}
	if m != nil {
		if body, ok := m["traceId"].(string); ok && body != id {
			t.Fatalf("body traceId %q != header %q", body, id)
		}
	}
	return id
}

// TestTraceIDOnEveryResponse drives each response class the service can
// produce — success, validation reject, method reject, panic 500, shed
// 429, draining 503, and the read-only endpoints — and asserts every one
// of them echoes a well-formed trace ID in the header and JSON body.
func TestTraceIDOnEveryResponse(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1, AllowChaos: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := map[string]bool{}
	note := func(id string) {
		if ids[id] {
			t.Fatalf("trace id %s reused across requests", id)
		}
		ids[id] = true
	}

	resp, m := doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("success case status %d body %v", resp.StatusCode, m)
	}
	note(checkTraceEcho(t, resp, m))

	resp, m = doRaw(t, "POST", ts.URL+"/compile", `{{{`)
	if resp.StatusCode != 400 {
		t.Fatalf("invalid case status %d", resp.StatusCode)
	}
	note(checkTraceEcho(t, resp, m))

	resp, m = doRaw(t, "GET", ts.URL+"/compile", "")
	if resp.StatusCode != 405 {
		t.Fatalf("method case status %d", resp.StatusCode)
	}
	note(checkTraceEcho(t, resp, m))

	resp, m = doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]],"chaos":"panic"}`)
	if resp.StatusCode != 500 {
		t.Fatalf("panic case status %d body %v", resp.StatusCode, m)
	}
	note(checkTraceEcho(t, resp, m))

	for _, ep := range []string{"/healthz", "/readyz", "/statz", "/debugz"} {
		resp, m = doRaw(t, "GET", ts.URL+ep, "")
		if resp.StatusCode != 200 {
			t.Fatalf("%s status %d", ep, resp.StatusCode)
		}
		note(checkTraceEcho(t, resp, m))
	}
	resp, _ = doRaw(t, "GET", ts.URL+"/metricsz", "")
	note(checkTraceEcho(t, resp, nil))
}

// TestTraceIDOnShedAndDraining covers the two remaining response classes:
// 429 from a full queue and 503 while draining.
func TestTraceIDOnShedAndDraining(t *testing.T) {
	srv, release, started := blockingServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postStatus(ts, blockerBody)
		}()
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for srv.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d", srv.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	resp, m := doRaw(t, "POST", ts.URL+"/compile", blockerBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d", resp.StatusCode)
	}
	checkTraceEcho(t, resp, m)
	close(release)
	wg.Wait()

	srv.draining.Store(true)
	resp, m = doRaw(t, "POST", ts.URL+"/compile", blockerBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d", resp.StatusCode)
	}
	checkTraceEcho(t, resp, m)
}

// TestDebugzTimelines compiles a problem and checks its flight-recorder
// entry: matching trace ID, a phase breakdown whose sum does not exceed
// the recorded elapsed time, queue wait, and the selector winner.
func TestDebugzTimelines(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, m := doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2],[2,3]]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("compile status %d body %v", resp.StatusCode, m)
	}
	id := checkTraceEcho(t, resp, m)

	resp, dm := doRaw(t, "GET", ts.URL+"/debugz?n=1", "")
	if resp.StatusCode != 200 {
		t.Fatalf("debugz status %d", resp.StatusCode)
	}
	recent, _ := dm["recent"].([]any)
	if len(recent) != 1 {
		t.Fatalf("debugz recent %v, want 1 record", dm["recent"])
	}
	rec, _ := recent[0].(map[string]any)
	if rec["traceId"] != id {
		t.Fatalf("recorded traceId %v != compile trace %s", rec["traceId"], id)
	}
	if rec["status"].(float64) != 200 || rec["outcome"] != "ok" {
		t.Fatalf("recorded outcome %v/%v", rec["status"], rec["outcome"])
	}
	if rec["winner"] == "" {
		t.Fatalf("no selector winner recorded: %v", rec)
	}
	phases, _ := rec["phases"].([]any)
	if len(phases) == 0 {
		t.Fatalf("no phase breakdown recorded: %v", rec)
	}
	elapsed := rec["elapsedMs"].(float64)
	var sum float64
	for _, p := range phases {
		pm := p.(map[string]any)
		if pm["name"] == "" || pm["ms"].(float64) < 0 {
			t.Fatalf("bad phase %v", pm)
		}
		sum += pm["ms"].(float64)
	}
	if sum > elapsed+1 { // +1ms slack for float truncation at phase edges
		t.Fatalf("phase sum %.3fms exceeds elapsed %.3fms", sum, elapsed)
	}
	if stats, _ := dm["stats"].(map[string]any); stats["committed"].(float64) < 1 {
		t.Fatalf("recorder stats %v", dm["stats"])
	}
}

// TestDebugzFilters exercises the status/degraded/slow query parameters
// against a mixed set of outcomes.
func TestDebugzFilters(t *testing.T) {
	srv := New(Config{Workers: 1, AllowChaos: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]],"chaos":"panic"}`)
	// A degraded compile: critical work budget forces the ATA floor.
	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]],"maxNodes":1}`)

	_, dm := doRaw(t, "GET", ts.URL+"/debugz?status=500", "")
	recent, _ := dm["recent"].([]any)
	if len(recent) != 1 {
		t.Fatalf("status=500 filter returned %d records", len(recent))
	}
	if rec := recent[0].(map[string]any); rec["errCode"] != string(CodeInternal) {
		t.Fatalf("panic record errCode %v, want %q", rec["errCode"], CodeInternal)
	}

	_, dm = doRaw(t, "GET", ts.URL+"/debugz?degraded=true", "")
	recent, _ = dm["recent"].([]any)
	if len(recent) != 1 {
		t.Fatalf("degraded=true filter returned %d records", len(recent))
	}
	rec := recent[0].(map[string]any)
	if rec["degraded"] != true || rec["degradeRung"] == "" {
		t.Fatalf("degraded record %v", rec)
	}

	if resp, _ := doRaw(t, "GET", ts.URL+"/debugz?status=nope", ""); resp.StatusCode != 400 {
		t.Fatalf("bad filter status %d, want 400", resp.StatusCode)
	}
}

// TestDebugzStreamNDJSON subscribes to the live stream and checks a
// subsequently compiled request arrives as one NDJSON line.
func TestDebugzStreamNDJSON(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debugz?stream=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// Subscription races the POST below: give the server a moment to
	// register it before generating the record.
	time.Sleep(50 * time.Millisecond)
	cr, cm := doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	id := checkTraceEcho(t, cr, cm)

	select {
	case line := <-lines:
		var rec telemetry.JobRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stream line not JSON: %v: %q", err, line)
		}
		if rec.TraceID != id || rec.Status != 200 {
			t.Fatalf("streamed record %+v, want trace %s status 200", rec, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no record streamed")
	}
}

// TestDebugzStreamSSEEndsOnShutdown checks the SSE framing and that
// Shutdown closes live streams instead of leaving watchers hanging.
func TestDebugzStreamSSEEndsOnShutdown(t *testing.T) {
	srv := New(Config{Workers: 1, DrainTimeout: time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debugz?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	got := make(chan []string, 1)
	go func() {
		var all []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			all = append(all, sc.Text())
		}
		got <- all
	}()
	time.Sleep(50 * time.Millisecond)
	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	time.Sleep(50 * time.Millisecond)
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	select {
	case all := <-got:
		text := strings.Join(all, "\n")
		if !strings.Contains(text, "event: job") || !strings.Contains(text, "data: {") {
			t.Fatalf("SSE framing missing in:\n%s", text)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on shutdown")
	}
}

// TestPanicLandsCompleteFlightRecord is the half-written-slot regression
// test: a panic-injected compile must produce exactly one committed
// record with the final 500 status and internal code, and nothing may be
// left in flight.
func TestPanicLandsCompleteFlightRecord(t *testing.T) {
	srv := New(Config{Workers: 1, AllowChaos: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, m := doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]],"chaos":"panic"}`)
	if resp.StatusCode != 500 {
		t.Fatalf("status %d body %v", resp.StatusCode, m)
	}
	id := checkTraceEcho(t, resp, m)

	recent := srv.Flight().Recent(telemetry.Filter{})
	if len(recent) != 1 {
		t.Fatalf("%d committed records after panic, want 1", len(recent))
	}
	rec := recent[0]
	if rec.TraceID != id || rec.Status != 500 || rec.Outcome != "error" || rec.ErrCode != string(CodeInternal) {
		t.Fatalf("panic record %+v, want trace %s status 500 error/internal", rec, id)
	}
	// The queue wait landed before the panic; the record keeps it.
	if rec.QueueMs < 0 || rec.InFlight {
		t.Fatalf("panic record incomplete: %+v", rec)
	}
	if got := srv.Flight().Stats(); got.InFlight != 0 {
		t.Fatalf("jobs leaked in flight after panic: %+v", got)
	}
}

// TestMetricszPrometheusFormat scrapes metricsz after traffic and
// validates the exposition: content type, TYPE headers, per-endpoint
// labeled request counters, and histogram plumbing.
func TestMetricszPrometheusFormat(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)
	doRaw(t, "POST", ts.URL+"/compile", `{{{`)

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for sc.Scan() {
		line := sc.Text()
		sb.WriteString(line)
		sb.WriteByte('\n')
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE serve_http_requests counter",
		`serve_http_requests{endpoint="compile",status="200"} 1`,
		`serve_http_requests{endpoint="compile",status="400"} 1`,
		"# TYPE serve_http_latency_us histogram",
		`serve_http_latency_us_count{endpoint="compile"} 2`,
		"# TYPE serve_queue gauge",
		"serve_ok 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metricsz missing %q in:\n%s", want, text)
		}
	}
}

// TestStatzSLOAndReadyzWarnings drives the error budget into burn with
// panic-injected 500s and checks the SLO surfaces: objectives in statz,
// burn warnings annotated on a still-ready readyz.
func TestStatzSLOAndReadyzWarnings(t *testing.T) {
	srv := New(Config{Workers: 1, AllowChaos: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]],"chaos":"panic"}`)
	}
	doRaw(t, "POST", ts.URL+"/compile", `{"arch":"grid","edges":[[0,1],[1,2]]}`)

	resp, sm := doRaw(t, "GET", ts.URL+"/statz", "")
	if resp.StatusCode != 200 {
		t.Fatalf("statz status %d", resp.StatusCode)
	}
	slo, _ := sm["slo"].(map[string]any)
	if slo == nil {
		t.Fatalf("statz missing slo section: %v", sm)
	}
	objs, _ := slo["objectives"].([]any)
	var errObj map[string]any
	for _, o := range objs {
		om := o.(map[string]any)
		if om["name"] == "errors" {
			errObj = om
		}
	}
	if errObj == nil {
		t.Fatalf("no errors objective in %v", objs)
	}
	// 3 of 4 requests 5xx against a 0.1% budget: unambiguously burning.
	if errObj["burning"] != true || errObj["bad"].(float64) != 3 {
		t.Fatalf("errors objective %v, want burning with 3 bad", errObj)
	}
	if _, ok := sm["flight"].(map[string]any); !ok {
		t.Fatalf("statz missing flight section: %v", sm)
	}

	resp, rm := doRaw(t, "GET", ts.URL+"/readyz", "")
	if resp.StatusCode != 200 || rm["status"] != "ready" {
		t.Fatalf("burning daemon must stay ready, got %d %v", resp.StatusCode, rm)
	}
	warns, _ := rm["warnings"].([]any)
	if len(warns) == 0 {
		t.Fatalf("readyz missing SLO warnings: %v", rm)
	}
	if w, _ := warns[0].(string); !strings.Contains(fmt.Sprint(warns), "errors") || !strings.Contains(w, "burning") {
		t.Fatalf("warnings %v lack the burning errors objective", warns)
	}
}

// TestTraceSeedIsDeterministic pins that two servers with the same seed
// mint the same ID sequence — the reproducible-debugging contract.
func TestTraceSeedIsDeterministic(t *testing.T) {
	mk := func() string {
		srv := New(Config{Workers: 1, TraceSeed: 7})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, _ := doRaw(t, "GET", ts.URL+"/healthz", "")
		return resp.Header.Get(telemetry.TraceHeader)
	}
	if a, b := mk(), mk(); a != b || !hex32.MatchString(a) {
		t.Fatalf("seeded servers minted %q and %q, want identical valid ids", a, b)
	}
}
