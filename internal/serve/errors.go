package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/greedy"
)

// Code is a machine-readable error class the service returns alongside the
// HTTP status. Clients branch on the code, not the message: messages are
// diagnostic prose and may change, codes are the API contract.
type Code string

const (
	// CodeInvalidRequest (400): the request body failed validation before a
	// compile started — malformed JSON, unknown fields, bad architecture or
	// strategy names, out-of-range edges or options.
	CodeInvalidRequest Code = "invalid_request"
	// CodePayloadTooLarge (413): the request body exceeded the configured
	// byte cap and was rejected before being read.
	CodePayloadTooLarge Code = "payload_too_large"
	// CodeUnreachable (422): the problem spans disconnected parts of the
	// device's coupling graph (greedy.ErrUnreachable) — no router can place
	// it, so retrying is pointless.
	CodeUnreachable Code = "unreachable"
	// CodeUncompilable (422): the compiler rejected the device/strategy
	// combination (e.g. the hybrid strategy on an architecture with no
	// structured pattern, or a scheduler stall with no ATA fallback).
	CodeUncompilable Code = "uncompilable"
	// CodeOverloaded (429): admission control shed the request because the
	// queue was full. The response carries a Retry-After hint; clients
	// should back off with jitter.
	CodeOverloaded Code = "overloaded"
	// CodeDraining (503): the daemon is shutting down and no longer admits
	// work; in-flight jobs are still draining.
	CodeDraining Code = "draining"
	// CodeClientClosed (499, nginx convention): the client canceled the
	// request (connection closed) while it was queued or compiling.
	CodeClientClosed Code = "client_closed"
	// CodeDeadline (504): the per-request deadline expired on a strategy
	// with no degradation floor, so no circuit could be returned.
	CodeDeadline Code = "deadline_exceeded"
	// CodeBudgetExhausted (504): the work budget (MaxNodes) ran out on a
	// strategy with no degradation floor (core.ErrBudgetExhausted).
	CodeBudgetExhausted Code = "budget_exhausted"
	// CodeInternal (500): a compiler invariant broke (core.ErrInternal) or a
	// handler panicked. The daemon survives — panic isolation converts the
	// crash into this structured answer.
	CodeInternal Code = "internal"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) for requests abandoned by the client.
const StatusClientClosedRequest = 499

// apiError pairs an HTTP status with a structured error body.
type apiError struct {
	Status  int    `json:"-"`
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Code, e.Message)
}

func errInvalid(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: CodeInvalidRequest, Message: fmt.Sprintf(format, args...)}
}

// classify maps a compile-path error onto the service taxonomy. The order
// matters: internal invariant violations are checked first so a panic
// breadcrumb that happens to wrap another sentinel still reports as 500,
// and explicit cancellation beats the deadline class because a canceled
// caller is gone regardless of why.
func classify(err error) *apiError {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, core.ErrInternal):
		return &apiError{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: StatusClientClosedRequest, Code: CodeClientClosed, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout, Code: CodeDeadline, Message: err.Error()}
	case errors.Is(err, core.ErrBudgetExhausted):
		return &apiError{Status: http.StatusGatewayTimeout, Code: CodeBudgetExhausted, Message: err.Error()}
	case errors.Is(err, greedy.ErrUnreachable):
		return &apiError{Status: http.StatusUnprocessableEntity, Code: CodeUnreachable, Message: err.Error()}
	case errors.Is(err, greedy.ErrNoProgress), errors.Is(err, greedy.ErrInterrupted):
		return &apiError{Status: http.StatusUnprocessableEntity, Code: CodeUncompilable, Message: err.Error()}
	default:
		// Everything else CompileContext returns is an input-shaped
		// rejection (device/strategy mismatch, missing calibration): the
		// compiler wraps genuine internal failures in ErrInternal at its
		// panic boundary, so an unrecognised error here is the request's
		// fault, not the server's.
		return &apiError{Status: http.StatusUnprocessableEntity, Code: CodeUncompilable, Message: err.Error()}
	}
}
