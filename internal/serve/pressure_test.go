package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/verify"
)

func TestPressureLevels(t *testing.T) {
	p := pressurePolicy{queueDepth: 16, ceiling: 8 * time.Second}
	cases := []struct {
		queued int64
		level  int
	}{
		{0, PressureRelaxed},
		{7, PressureRelaxed},  // < 1/2
		{8, PressureElevated}, // = 1/2
		{13, PressureElevated},
		{14, PressureCritical}, // = 7/8
		{16, PressureCritical},
		{99, PressureCritical},
	}
	for _, tc := range cases {
		if got := p.level(tc.queued); got != tc.level {
			t.Errorf("level(%d) = %d, want %d", tc.queued, got, tc.level)
		}
	}
}

// TestPressureLevelBoundaries walks the exact admission-count transitions
// of the governance ladder for several server shapes. The denominator is
// the server's full capacity (Workers + QueueDepth, as wired in New), so
// the table pins the three operational points the daemon actually visits —
// empty (0), all workers busy (Workers), and full capacity — plus the
// first queued count that leaves Relaxed (ceil(depth/2)) and the first
// that reaches Critical (ceil(7*depth/8)).
func TestPressureLevelBoundaries(t *testing.T) {
	shapes := []struct {
		workers, queue int
	}{
		{2, 4},  // ataqcd CI shape
		{2, 6},  // default queue = 4*workers
		{8, 32}, // larger default shape
		{1, 1},  // minimal: elevated and critical nearly coincide
		{3, 5},
	}
	for _, sh := range shapes {
		depth := sh.workers + sh.queue
		p := pressurePolicy{queueDepth: depth, ceiling: time.Second}
		firstElevated := (depth + 1) / 2
		firstCritical := (7*depth + 7) / 8

		cases := []struct {
			queued int64
			want   int
		}{
			{0, PressureRelaxed},
			{int64(firstElevated) - 1, PressureRelaxed},
			{int64(firstElevated), PressureElevated},
			{int64(firstCritical) - 1, PressureElevated},
			{int64(firstCritical), PressureCritical},
			{int64(depth), PressureCritical}, // full capacity is always critical: 8*depth >= 7*depth
			{int64(depth) + 1, PressureCritical},
		}
		// Degenerate shapes where the elevated band is empty.
		if firstElevated >= firstCritical {
			cases[3].want = PressureRelaxed // firstCritical-1 < firstElevated
		}
		for _, tc := range cases {
			if tc.queued < 0 {
				continue
			}
			if got := p.level(tc.queued); got != tc.want {
				t.Errorf("shape %d+%d: level(%d) = %d, want %d",
					sh.workers, sh.queue, tc.queued, got, tc.want)
			}
		}

		// All workers busy but nothing queued must never be Critical: the
		// ladder only degrades output once a real backlog forms.
		if got := p.level(int64(sh.workers)); got == PressureCritical && sh.workers < firstCritical {
			t.Errorf("shape %d+%d: busy workers alone reached critical", sh.workers, sh.queue)
		}
	}

	// Guard clause: a zero/negative denominator never throttles.
	p := pressurePolicy{queueDepth: 0, ceiling: time.Second}
	for _, q := range []int64{0, 1, 1 << 30} {
		if got := p.level(q); got != PressureRelaxed {
			t.Errorf("queueDepth=0: level(%d) = %d, want relaxed", q, got)
		}
	}
}

func TestPressureBudgetsOnlyTighten(t *testing.T) {
	p := pressurePolicy{queueDepth: 16, ceiling: 8 * time.Second}

	// Relaxed: the client's own budget survives, clamped to the ceiling.
	if d, n := p.budgets(PressureRelaxed, 0, 0); d != 8*time.Second || n != 0 {
		t.Fatalf("relaxed unbounded = (%v, %d), want (8s, 0)", d, n)
	}
	if d, _ := p.budgets(PressureRelaxed, time.Second, 0); d != time.Second {
		t.Fatalf("relaxed keeps the client's tighter deadline, got %v", d)
	}
	if d, _ := p.budgets(PressureRelaxed, time.Minute, 0); d != 8*time.Second {
		t.Fatalf("relaxed clamps to the ceiling, got %v", d)
	}

	// Elevated: quarter ceiling, bounded work.
	if d, n := p.budgets(PressureElevated, 0, 0); d != 2*time.Second || n != elevatedMaxNodes {
		t.Fatalf("elevated = (%v, %d), want (2s, %d)", d, n, elevatedMaxNodes)
	}
	// A client asking for less work than the ladder keeps its own cap.
	if _, n := p.budgets(PressureElevated, 0, 100); n != 100 {
		t.Fatalf("elevated raised the client's work budget to %d", n)
	}

	// Critical: near-zero work budget — immediate fall to the ATA floor.
	if d, n := p.budgets(PressureCritical, 0, 0); d != time.Second || n != criticalMaxNodes {
		t.Fatalf("critical = (%v, %d), want (1s, %d)", d, n, criticalMaxNodes)
	}
}

// TestStarvedRequestDegradesToVerifierCleanATA is the degradation-ladder
// contract at the service boundary: a request compiled under critical queue
// pressure must still return HTTP 200 with a complete, verifier-clean
// circuit — degraded to the structured ATA floor (Theorem 6.1) — never an
// error. The backlog is synthesized by inflating the admission counter, so
// the pressure sample is deterministic.
func TestStarvedRequestDegradesToVerifierCleanATA(t *testing.T) {
	captured := make(chan *ataqc.Result, 1)
	cfg := Config{
		Workers: 1, QueueDepth: 8,
		Compile: func(ctx context.Context, dev *ataqc.Device, prob *ataqc.Problem, opts ataqc.Options) (*ataqc.Result, error) {
			res, err := ataqc.CompileContext(ctx, dev, prob, opts)
			if err == nil {
				captured <- res
			}
			return res, err
		},
	}
	srv := New(cfg)
	// Capacity is 9; 7 phantom occupants + this request = 8 >= 7/8 * 9.
	srv.queued.Add(7)
	defer srv.queued.Add(-7)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	prob := ataqc.RandomProblem(36, 0.4, 5)
	body, _ := json.Marshal(CompileRequest{Arch: "grid", Edges: prob.InteractionList(), IncludeQASM: true})
	status, m := post(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("starved request answered %d, want 200 (body %v)", status, m)
	}
	if lvl, _ := m["pressure"].(float64); int(lvl) != PressureCritical {
		t.Fatalf("pressure %v, want %d", m["pressure"], PressureCritical)
	}
	if deg, _ := m["degraded"].(bool); !deg {
		t.Fatalf("starved request was not degraded: %v", m)
	}
	rung, _ := m["degradeRung"].(string)
	if rung != "pure-ata" {
		t.Fatalf("degrade rung %q, want pure-ata (the Theorem 6.1 floor)", rung)
	}
	if b, _ := m["degradeBudget"].(string); b == "" {
		t.Fatalf("missing structured degradeBudget in %v", m)
	}

	// The served circuit passes every error-severity verifier analyzer:
	// degraded means "not the candidate an unbounded search picks", never
	// "broken".
	res := <-captured
	for _, d := range res.Lint() {
		if d.Severity == "error" {
			t.Fatalf("degraded result failed the verifier: %v", d)
		}
	}
	if n := srv.Metrics().Counter("serve.degraded").Value(); n != 1 {
		t.Fatalf("degraded counter %d, want 1", n)
	}

	// And the QASM the client received parses and conforms to the device
	// coupling graph end-to-end.
	qasm, _ := m["qasm"].(string)
	if qasm == "" {
		t.Fatal("missing qasm in response")
	}
	c, err := circuit.ParseQASM(strings.NewReader(qasm))
	if err != nil {
		t.Fatalf("served QASM does not parse: %v", err)
	}
	diags := verify.Run(&verify.Pass{Circuit: c, Arch: arch.GridN(36)}, verify.ArchConformance)
	if err := verify.AsError(diags); err != nil {
		t.Fatalf("served QASM violates the architecture: %v", err)
	}
}

// TestElevatedPressureStillServes: the middle rung keeps serving real
// (possibly hybrid) circuits with a truncated prediction pool.
func TestElevatedPressureStillServes(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	srv.queued.Add(4) // 4 + 1 = 5 >= 9/2 -> elevated
	defer srv.queued.Add(-4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	prob := ataqc.RandomProblem(16, 0.4, 2)
	body, _ := json.Marshal(CompileRequest{Arch: "grid", Edges: prob.InteractionList()})
	status, m := post(t, ts, string(body))
	if status != http.StatusOK {
		t.Fatalf("elevated request answered %d (body %v)", status, m)
	}
	if lvl, _ := m["pressure"].(float64); int(lvl) != PressureElevated {
		t.Fatalf("pressure %v, want %d", m["pressure"], PressureElevated)
	}
	if d, _ := m["depth"].(float64); d <= 0 {
		t.Fatalf("depth %v, want > 0", m["depth"])
	}
}
