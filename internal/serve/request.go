package serve

import (
	"encoding/json"
	"io"
	"strings"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
)

// CompileRequest is the JSON body of POST /compile: an interaction graph,
// a target architecture, and compile options. Unknown fields are rejected
// so client typos fail loudly instead of silently compiling defaults.
type CompileRequest struct {
	// Arch names the architecture family: line, grid, sycamore, heavy-hex,
	// hexagon, mumbai, or custom (which requires Couplings).
	Arch string `json:"arch"`
	// N is the device size in qubits; 0 derives it from the largest vertex
	// id in Edges (mumbai ignores it, custom requires it).
	N int `json:"n,omitempty"`
	// Couplings lists the physical coupling pairs of a custom device.
	Couplings [][2]int `json:"couplings,omitempty"`
	// Edges is the problem's interaction list: one [u, v] pair per
	// permutable two-qubit operator, 0-based logical qubit ids.
	Edges [][2]int `json:"edges"`
	// Strategy defaults to hybrid.
	Strategy string `json:"strategy,omitempty"`
	// Noise attaches a synthetic calibration (seeded by NoiseSeed) and
	// compiles noise-aware.
	Noise     bool  `json:"noise,omitempty"`
	NoiseSeed int64 `json:"noiseSeed,omitempty"`
	// Alpha weighs depth vs fidelity in the selector (0 = default 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	// TimeoutMs caps the compile's wall-clock budget in milliseconds. The
	// server clamps it to its own per-request ceiling and may tighten it
	// further under queue pressure; 0 means "server default".
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxNodes is the deterministic work budget (0 = server default, which
	// is unbounded at low pressure).
	MaxNodes int `json:"maxNodes,omitempty"`
	// Workers bounds the hybrid prediction concurrency inside this one
	// compile (0 = serial; the serving-level parallelism is the worker
	// pool, so per-compile fan-out defaults off).
	Workers int `json:"workers,omitempty"`
	// IncludeQASM returns the compiled circuit as OpenQASM 2.0 text.
	IncludeQASM bool `json:"includeQasm,omitempty"`
	// Chaos triggers a server-side fault for robustness testing: "panic"
	// panics inside the compile, "sleep:<duration>" stalls the worker slot.
	// Honored only when the daemon runs with chaos hooks enabled; otherwise
	// it is an invalid_request.
	Chaos string `json:"chaos,omitempty"`
}

// CompileResponse is the JSON body of a successful compile.
type CompileResponse struct {
	// TraceID echoes the request's X-Ataqc-Trace-Id header so the ID
	// survives clients that drop response headers.
	TraceID       string  `json:"traceId"`
	Device        string  `json:"device"`
	DeviceQubits  int     `json:"deviceQubits"`
	Qubits        int     `json:"qubits"`
	Interactions  int     `json:"interactions"`
	Strategy      string  `json:"strategy"`
	Depth         int     `json:"depth"`
	CXCount       int     `json:"cxCount"`
	Swaps         int     `json:"swaps"`
	Fidelity      float64 `json:"estimatedFidelity,omitempty"`
	Initial       []int   `json:"initial"`
	Final         []int   `json:"final"`
	Degraded      bool    `json:"degraded,omitempty"`
	DegradeBudget string  `json:"degradeBudget,omitempty"`
	DegradeRung   string  `json:"degradeRung,omitempty"`
	// Pressure is the admission-control level the request was compiled
	// under (0 = relaxed; higher levels tighten the compile budget).
	Pressure  int     `json:"pressure"`
	ElapsedMs float64 `json:"elapsedMs"`
	// CacheTier names the compilation-cache tier that served this result
	// ("mem" or "disk"); empty for a fresh compile or a cacheless daemon.
	CacheTier string `json:"cacheTier,omitempty"`
	QASM      string `json:"qasm,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer. Like successes
// it carries the request's trace ID: error paths are exactly where the ID
// is needed to find the matching log line and flight-recorder entry.
type ErrorResponse struct {
	TraceID string   `json:"traceId,omitempty"`
	Error   apiError `json:"error"`
}

// Request limits below are admission-control constants: they bound the
// resources a single hostile request can claim before a compile starts.
const (
	// DefaultMaxBodyBytes caps the request body (1 MiB holds ~60k edges).
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxQubits caps the device/problem size per request.
	DefaultMaxQubits = 1024
	// maxWorkersPerCompile caps the per-compile prediction fan-out so one
	// request cannot multiply itself across every core.
	maxWorkersPerCompile = 16
)

var strategies = map[string]ataqc.Strategy{
	"":            ataqc.StrategyHybrid,
	"hybrid":      ataqc.StrategyHybrid,
	"greedy":      ataqc.StrategyGreedy,
	"ata":         ataqc.StrategyATA,
	"2qan":        ataqc.Strategy2QAN,
	"qaim":        ataqc.StrategyQAIM,
	"paulihedral": ataqc.StrategyPaulihedral,
}

// parseRequest decodes and validates a compile request, returning the
// constructed device, problem, and options. Every rejection is an apiError
// so the handler can write it structurally.
func parseRequest(r io.Reader, maxQubits int) (*CompileRequest, *ataqc.Device, *ataqc.Problem, ataqc.Options, error) {
	var req CompileRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, ataqc.Options{}, decodeError(err)
	}
	if dec.More() {
		return nil, nil, nil, ataqc.Options{}, errInvalid("trailing data after the request object")
	}
	dev, prob, opts, err := req.build(maxQubits)
	return &req, dev, prob, opts, err
}

// decodeError maps JSON decoding failures, keeping the "body too large"
// class distinct (http.MaxBytesReader surfaces it mid-read).
func decodeError(err error) *apiError {
	if strings.Contains(err.Error(), "request body too large") {
		return &apiError{Status: 413, Code: CodePayloadTooLarge, Message: err.Error()}
	}
	return errInvalid("bad request body: %v", err)
}

// build validates the request and constructs the compile inputs.
func (req *CompileRequest) build(maxQubits int) (*ataqc.Device, *ataqc.Problem, ataqc.Options, error) {
	var opts ataqc.Options
	strategy, ok := strategies[req.Strategy]
	if !ok {
		return nil, nil, opts, errInvalid("unknown strategy %q", req.Strategy)
	}
	if len(req.Edges) == 0 {
		return nil, nil, opts, errInvalid("empty problem: at least one edge is required")
	}
	if req.Alpha < 0 || req.Alpha > 1 {
		return nil, nil, opts, errInvalid("alpha %g out of range [0,1]", req.Alpha)
	}
	if req.TimeoutMs < 0 {
		return nil, nil, opts, errInvalid("timeoutMs must be non-negative")
	}
	if req.MaxNodes < 0 {
		return nil, nil, opts, errInvalid("maxNodes must be non-negative")
	}
	if req.Workers < 0 || req.Workers > maxWorkersPerCompile {
		return nil, nil, opts, errInvalid("workers %d out of range [0,%d]", req.Workers, maxWorkersPerCompile)
	}

	// Problem first: the largest vertex id sizes the device when N is 0.
	maxV := -1
	for i, e := range req.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u == v {
			return nil, nil, opts, errInvalid("edge %d: invalid pair (%d,%d)", i, u, v)
		}
		if u >= maxQubits || v >= maxQubits {
			return nil, nil, opts, errInvalid("edge %d: vertex id exceeds the %d-qubit service limit", i, maxQubits)
		}
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	n := req.N
	if n == 0 {
		n = maxV + 1
	}
	if n < 2 || n > maxQubits {
		return nil, nil, opts, errInvalid("n %d out of range [2,%d]", n, maxQubits)
	}
	if maxV >= n {
		return nil, nil, opts, errInvalid("edge vertex %d exceeds problem size %d", maxV, n)
	}
	prob := ataqc.NewProblem(n)
	for _, e := range req.Edges {
		prob.AddInteraction(e[0], e[1])
	}

	dev, err := req.device(n)
	if err != nil {
		return nil, nil, opts, err
	}
	if prob.Qubits() > dev.Qubits() {
		return nil, nil, opts, errInvalid("problem needs %d qubits but device %s has %d",
			prob.Qubits(), dev.Name(), dev.Qubits())
	}
	if req.Noise {
		dev = dev.WithSyntheticNoise(req.NoiseSeed)
	}
	opts = ataqc.Options{
		Strategy:   strategy,
		NoiseAware: req.Noise,
		Alpha:      req.Alpha,
		Deadline:   time.Duration(req.TimeoutMs) * time.Millisecond,
		MaxNodes:   req.MaxNodes,
		Workers:    req.Workers,
	}
	if opts.Workers == 0 {
		opts.Workers = 1 // concurrency lives in the serving pool, not the compile
	}
	return dev, prob, opts, nil
}

func (req *CompileRequest) device(n int) (*ataqc.Device, error) {
	switch req.Arch {
	case "line":
		return ataqc.LineDevice(n), nil
	case "grid":
		return ataqc.GridDevice(n), nil
	case "sycamore":
		return ataqc.SycamoreDevice(n), nil
	case "heavy-hex", "heavyhex":
		return ataqc.HeavyHexDevice(n), nil
	case "hexagon":
		return ataqc.HexagonDevice(n), nil
	case "mumbai":
		return ataqc.MumbaiDevice(), nil
	case "custom":
		if len(req.Couplings) == 0 {
			return nil, errInvalid("custom architecture requires couplings")
		}
		if req.N == 0 {
			return nil, errInvalid("custom architecture requires n")
		}
		dev, err := ataqc.CustomDevice("custom", req.N, req.Couplings)
		if err != nil {
			return nil, errInvalid("bad custom device: %v", err)
		}
		return dev, nil
	case "":
		return nil, errInvalid("arch is required")
	default:
		return nil, errInvalid("unknown architecture %q", req.Arch)
	}
}

// parseChaos validates a chaos directive, returning the sleep duration for
// "sleep:<dur>" (0 for "panic").
func parseChaos(spec string) (time.Duration, error) {
	switch {
	case spec == "panic":
		return 0, nil
	case strings.HasPrefix(spec, "sleep:"):
		d, err := time.ParseDuration(strings.TrimPrefix(spec, "sleep:"))
		if err != nil || d < 0 {
			return 0, errInvalid("bad chaos sleep duration %q", spec)
		}
		if d > 10*time.Second {
			return 0, errInvalid("chaos sleep %v exceeds the 10s cap", d)
		}
		return d, nil
	default:
		return 0, errInvalid("unknown chaos directive %q", spec)
	}
}
