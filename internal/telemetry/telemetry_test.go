package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic obs.Clock: every Now() advances it by
// step, mirroring the internal/obs test convention.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

// advance jumps the clock forward without the per-read step.
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTraceIDValidAndUnique(t *testing.T) {
	src := NewIDSource(0)
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := src.New()
		if !id.Valid() {
			t.Fatalf("generated id %q is not valid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
	for _, bad := range []TraceID{"", "short", "ABCDEF00112233445566778899aabbcc",
		"zz000000000000000000000000000000", "0123456789abcdef0123456789abcdef0"} {
		if bad.Valid() {
			t.Errorf("Valid(%q) = true, want false", bad)
		}
	}
}

func TestTraceIDDeterministicWithSeed(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 10; i++ {
		if x, y := a.New(), b.New(); x != y {
			t.Fatalf("draw %d: %q != %q with equal seeds", i, x, y)
		}
	}
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("empty context carries id %q", got)
	}
	id := NewIDSource(1).New()
	ctx = WithTraceID(ctx, id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("round trip: got %q, want %q", got, id)
	}
	if j := JobFrom(ctx); j != nil {
		t.Fatalf("empty context carries job %v", j)
	}
	job := &Job{}
	if got := JobFrom(WithJob(ctx, job)); got != job {
		t.Fatalf("job round trip failed")
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	fr := NewFlightRecorder(4, clk)
	for i := 0; i < 10; i++ {
		j := fr.Begin(TraceID("0123456789abcdef0123456789abcdef"), "compile")
		j.SetPressure(i)
		j.Finish(200, "ok")
	}
	recent := fr.Recent(Filter{})
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d records, want ring size 4", len(recent))
	}
	// Newest first: pressures 9, 8, 7, 6 — the first six commits were
	// overwritten.
	for i, want := range []int{9, 8, 7, 6} {
		if recent[i].Pressure != want {
			t.Errorf("recent[%d].Pressure = %d, want %d", i, recent[i].Pressure, want)
		}
	}
	if s := fr.Stats(); s.Committed != 10 || s.Size != 4 || s.InFlight != 0 {
		t.Errorf("Stats = %+v, want committed 10, size 4, inflight 0", s)
	}
}

func TestRecorderFilters(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	fr := NewFlightRecorder(16, clk)
	finish := func(status int, degraded bool, slow time.Duration) {
		j := fr.Begin(TraceID("0123456789abcdef0123456789abcdef"), "compile")
		if degraded {
			j.SetDegraded("deadline", "pure-ata")
		}
		clk.advance(slow)
		j.Finish(status, "x")
	}
	finish(200, false, 0)
	finish(200, true, 0)
	finish(500, false, 0)
	finish(200, false, 50*time.Millisecond)

	if got := fr.Recent(Filter{Status: 500}); len(got) != 1 || got[0].Status != 500 {
		t.Fatalf("status filter: %+v", got)
	}
	deg := true
	if got := fr.Recent(Filter{Degraded: &deg}); len(got) != 1 || !got[0].Degraded {
		t.Fatalf("degraded filter: %+v", got)
	}
	if got := fr.Recent(Filter{SlowerThanMs: 40}); len(got) != 1 || got[0].ElapsedMs < 40 {
		t.Fatalf("slow filter: %+v", got)
	}
	if got := fr.Recent(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit filter returned %d records", len(got))
	}
}

func TestRecorderInFlightAndFinishIdempotent(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	fr := NewFlightRecorder(8, clk)
	j := fr.Begin(TraceID("0123456789abcdef0123456789abcdef"), "compile")
	inflight := fr.InFlight()
	if len(inflight) != 1 || !inflight[0].InFlight || inflight[0].Status != 0 {
		t.Fatalf("InFlight = %+v, want one running record", inflight)
	}
	j.Finish(200, "ok")
	j.Finish(500, "error") // second finish must not double-commit or rewrite
	if got := fr.InFlight(); len(got) != 0 {
		t.Fatalf("InFlight after finish = %+v", got)
	}
	recent := fr.Recent(Filter{})
	if len(recent) != 1 || recent[0].Status != 200 || recent[0].Outcome != "ok" {
		t.Fatalf("Recent after double finish = %+v", recent)
	}
}

func TestRecorderSubscribeStreamAndClose(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	fr := NewFlightRecorder(8, clk)
	ch, cancel := fr.Subscribe(4)
	fr.Begin("0123456789abcdef0123456789abcdef", "compile").Finish(200, "ok")
	select {
	case rec := <-ch:
		if rec.Status != 200 {
			t.Fatalf("streamed record %+v", rec)
		}
	case <-time.After(time.Second):
		t.Fatal("no record streamed")
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}

	// An overflowing subscriber loses records (counted), never blocks.
	slow, cancel2 := fr.Subscribe(1)
	defer cancel2()
	for i := 0; i < 5; i++ {
		fr.Begin("0123456789abcdef0123456789abcdef", "compile").Finish(200, "ok")
	}
	if d := fr.Stats().StreamDropped; d != 4 {
		t.Fatalf("StreamDropped = %d, want 4", d)
	}
	<-slow

	// CloseSubscribers (drain) ends live streams and refuses new ones.
	live, _ := fr.Subscribe(1)
	fr.CloseSubscribers()
	if _, open := <-live; open {
		t.Fatal("stream survived CloseSubscribers")
	}
	dead, _ := fr.Subscribe(1)
	if _, open := <-dead; open {
		t.Fatal("Subscribe after close returned a live channel")
	}
}

func TestRecorderConcurrentCommits(t *testing.T) {
	fr := NewFlightRecorder(32, nil) // system clock: exercises the real path under -race
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := fr.Begin("0123456789abcdef0123456789abcdef", "compile")
				j.SetQueueWait(time.Microsecond)
				j.SetTimeline([]PhaseMs{{Name: "place", Ms: 0.1}}, "hybrid")
				j.Finish(200, "ok")
			}
		}()
	}
	wg.Wait()
	if s := fr.Stats(); s.Committed != 400 || s.InFlight != 0 {
		t.Fatalf("Stats after concurrent commits = %+v", s)
	}
	if got := fr.Recent(Filter{}); len(got) != 32 {
		t.Fatalf("Recent returned %d, want 32", len(got))
	}
}

func TestNilRecorderAndJobAreNoOps(t *testing.T) {
	var fr *FlightRecorder
	j := fr.Begin("x", "compile")
	if j != nil {
		t.Fatal("nil recorder Begin returned a job")
	}
	j.SetPressure(1)
	j.SetQueueWait(time.Second)
	j.SetTimeline(nil, "")
	j.SetDegraded("a", "b")
	j.SetErrCode("internal")
	j.Finish(200, "ok")
	if j.Degraded() {
		t.Fatal("nil job degraded")
	}
	if fr.Recent(Filter{}) != nil || fr.InFlight() != nil {
		t.Fatal("nil recorder returned records")
	}
	if s := fr.Stats(); s != (RecorderStats{}) {
		t.Fatalf("nil recorder stats %+v", s)
	}
	ch, cancel := fr.Subscribe(1)
	cancel()
	if _, open := <-ch; open {
		t.Fatal("nil recorder subscription is live")
	}
	fr.CloseSubscribers()
}
