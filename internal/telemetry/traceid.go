// Package telemetry is the request-scoped observability layer of the
// compile service: per-request trace IDs propagated by context, a
// flight-recorder ring buffer holding each job's phase Timeline, a
// Prometheus text-exposition renderer for internal/obs registries, and a
// rolling-window SLO burn-rate tracker.
//
// Like internal/obs underneath it, the package is stdlib-only, nil-safe
// (a nil *FlightRecorder or *Tracker is the disabled state), and clock-
// injected: nothing here reads the wall clock directly, so every piece is
// testable under a synthetic obs.Clock and the ataqc-vet walltime rule
// holds.
package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
)

// TraceHeader is the HTTP header carrying the request's trace ID on every
// response the daemon writes — success, shed, panic, or parse failure.
const TraceHeader = "X-Ataqc-Trace-Id"

// TraceID identifies one request end to end: generated at admission,
// threaded via context into the compiler's root span, echoed in the
// response header and JSON body, stamped on every structured log line,
// and keyed into the flight recorder.
type TraceID string

// Valid reports whether id has the canonical form: exactly 32 lowercase
// hex characters (16 random bytes).
func (id TraceID) Valid() bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// IDSource mints trace IDs from a seeded PRNG, so a fixed seed yields a
// reproducible ID stream for tests while NewIDSource(0) seeds from the
// OS entropy pool for production uniqueness.
type IDSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewIDSource returns a source seeded with seed; seed 0 draws a random
// seed from crypto/rand (falling back to a fixed constant only if the
// OS entropy read fails, which keeps the daemon bootable).
func NewIDSource(seed int64) *IDSource {
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = int64(binary.LittleEndian.Uint64(b[:]) | 1)
		} else {
			seed = 0x6174617163 // "ataqc"
		}
	}
	return &IDSource{rng: rand.New(rand.NewSource(seed))}
}

// New mints the next trace ID. Safe for concurrent use.
func (s *IDSource) New() TraceID {
	var b [16]byte
	s.mu.Lock()
	binary.LittleEndian.PutUint64(b[:8], s.rng.Uint64())
	binary.LittleEndian.PutUint64(b[8:], s.rng.Uint64())
	s.mu.Unlock()
	return TraceID(hex.EncodeToString(b[:]))
}

type ctxKey int

const (
	traceIDKey ctxKey = iota
	jobKey
)

// WithTraceID attaches id to the context for downstream propagation
// (compile spans, log lines, response writers).
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFrom extracts the request's trace ID ("" when none is set).
func TraceIDFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceIDKey).(TraceID)
	return id
}

// WithJob attaches the request's flight-recorder job to the context so
// inner handler layers can annotate it without new plumbing.
func WithJob(ctx context.Context, j *Job) context.Context {
	return context.WithValue(ctx, jobKey, j)
}

// JobFrom extracts the request's flight-recorder job (nil when absent;
// every Job method is nil-safe).
func JobFrom(ctx context.Context) *Job {
	j, _ := ctx.Value(jobKey).(*Job)
	return j
}
