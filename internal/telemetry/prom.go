package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/ata-pattern/ataqc/internal/obs"
)

// WriteProm renders an obs metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one # TYPE header per metric
// family, counters and gauges as single samples, gauges additionally as
// a <name>_max high-water family, and the log-bucket histograms as
// cumulative _bucket{le="..."} series with _sum and _count. Metric names
// are sanitised to the Prometheus charset (dots become underscores), and
// labeled series produced with obs.Labeled regroup under one family so
// all samples of a family are emitted consecutively, as the format
// requires. An empty snapshot renders zero bytes, which is a valid
// exposition.
func WriteProm(w io.Writer, m obs.MetricsSnapshot) error {
	var fams families
	for _, name := range m.CounterNames() {
		base, labels := splitProm(name)
		fams.add(base, "counter", sampleLine(base, labels, "", float64(m.Counters[name])))
	}
	for _, name := range m.GaugeNames() {
		g := m.Gauges[name]
		base, labels := splitProm(name)
		fams.add(base, "gauge", sampleLine(base, labels, "", float64(g.Value)))
		fams.add(base+"_max", "gauge", sampleLine(base+"_max", labels, "", float64(g.Max)))
	}
	for _, name := range m.HistogramNames() {
		h := m.Histograms[name]
		base, labels := splitProm(name)
		var lines []string
		var cum int64
		for _, b := range h.Buckets {
			if b.Upper < 0 {
				// The overflow bucket folds into +Inf below.
				continue
			}
			cum += b.Count
			lines = append(lines, sampleLine(base+"_bucket", labels, fmt.Sprintf("%d", b.Upper), float64(cum)))
		}
		lines = append(lines,
			sampleLine(base+"_bucket", labels, "+Inf", float64(h.Count)),
			sampleLine(base+"_sum", labels, "", float64(h.Sum)),
			sampleLine(base+"_count", labels, "", float64(h.Count)))
		fams.add(base, "histogram", lines...)
	}
	return fams.write(w)
}

// families accumulates exposition lines grouped by family base name, so
// labeled series of one family land under a single # TYPE header even
// when the registry's sorted name order interleaves other bases.
type families struct {
	order []string
	byKey map[string]*family
}

type family struct {
	kind  string
	lines []string
}

func (f *families) add(base, kind string, lines ...string) {
	if f.byKey == nil {
		f.byKey = map[string]*family{}
	}
	fam, ok := f.byKey[base]
	if !ok {
		fam = &family{kind: kind}
		f.byKey[base] = fam
		f.order = append(f.order, base)
	}
	fam.lines = append(fam.lines, lines...)
}

func (f *families) write(w io.Writer) error {
	order := append([]string(nil), f.order...)
	sort.Strings(order)
	for _, base := range order {
		fam := f.byKey[base]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, fam.kind); err != nil {
			return err
		}
		for _, line := range fam.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleLine renders one exposition line; le, when non-empty, is
// appended as the histogram bucket boundary label.
func sampleLine(name string, labels []obs.Label, le string, v float64) string {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, sanitizeProm(l.Key), escapePromValue(l.Value))
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `le="%s"`, le)
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(&b, " %s\n", formatPromValue(v))
	return b.String()
}

// splitProm separates a registry name into its sanitised Prometheus base
// name and parsed labels.
func splitProm(name string) (string, []obs.Label) {
	base, labels := obs.SplitLabeled(name)
	return sanitizeProm(base), labels
}

// sanitizeProm maps a registry name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted names become
// underscore-separated.
func sanitizeProm(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapePromValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatPromValue renders integers without an exponent and everything
// else in Go's shortest float form, both of which Prometheus parses.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
