package telemetry

import (
	"fmt"
	"sync"
	"time"

	"github.com/ata-pattern/ataqc/internal/obs"
)

// SLOConfig declares the service objectives the tracker measures over a
// rolling window. Zero values take the documented defaults.
type SLOConfig struct {
	// Window is the rolling measurement window (default 5m), divided
	// into Buckets sub-intervals (default 30) that age out one at a
	// time, so the window slides with Window/Buckets granularity.
	Window  time.Duration
	Buckets int
	// Latency is the latency objective: LatencyTarget of successful
	// answers must complete within Latency (defaults 1s, 0.99).
	Latency       time.Duration
	LatencyTarget float64
	// ErrorTarget is the availability objective: this fraction of
	// requests must not end in a 5xx (default 0.999).
	ErrorTarget float64
	// DegradeTarget is the quality objective: this fraction of
	// successful answers must be full-fidelity, not degraded-ladder
	// compiles (default 0.9).
	DegradeTarget float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Buckets <= 0 {
		c.Buckets = 30
	}
	if c.Latency <= 0 {
		c.Latency = time.Second
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.ErrorTarget <= 0 || c.ErrorTarget >= 1 {
		c.ErrorTarget = 0.999
	}
	if c.DegradeTarget <= 0 || c.DegradeTarget >= 1 {
		c.DegradeTarget = 0.9
	}
	return c
}

// ObjectiveStatus is one objective's rolling-window state. BurnRate is
// the SRE burn rate: the observed bad fraction divided by the error
// budget (1 - target). Burn 1.0 spends the budget exactly at the
// sustainable pace; above 1.0 the budget runs out before the SLO period
// does, and the objective reports Burning.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Target    float64 `json:"target"`
	Total     int64   `json:"total"`
	Bad       int64   `json:"bad"`
	BadRatio  float64 `json:"badRatio"`
	BurnRate  float64 `json:"burnRate"`
	Burning   bool    `json:"burning"`
	Objective string  `json:"objective"`
}

// SLOSnapshot is the tracker's statz rendering.
type SLOSnapshot struct {
	WindowSec  float64           `json:"windowSec"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// sloBucket is one sub-interval of the rolling window.
type sloBucket struct {
	num                        uint64 // absolute bucket number; stale buckets are cleared lazily
	total, ok, slow, errs, deg int64
}

// Tracker measures latency, availability, and degradation objectives
// over a rolling window of time-aligned buckets on an injected clock.
// A nil tracker is the disabled state: Record is a no-op and Snapshot
// returns an empty snapshot.
type Tracker struct {
	cfg   SLOConfig
	clock obs.Clock
	gran  time.Duration

	mu      sync.Mutex
	origin  time.Time
	buckets []sloBucket
}

// NewTracker returns a tracker on clock (nil = obs.SystemClock).
func NewTracker(cfg SLOConfig, clock obs.Clock) *Tracker {
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = obs.SystemClock
	}
	return &Tracker{
		cfg:     cfg,
		clock:   clock,
		gran:    cfg.Window / time.Duration(cfg.Buckets),
		origin:  clock.Now(),
		buckets: make([]sloBucket, cfg.Buckets),
	}
}

// Config returns the effective (defaulted) configuration.
func (t *Tracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Record folds one finished request into the current bucket: its HTTP
// status, end-to-end latency, and whether the answer was a degraded-
// ladder compile.
func (t *Tracker) Record(status int, latency time.Duration, degraded bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.bucketLocked(t.clock.Now())
	b.total++
	if status >= 500 {
		b.errs++
	}
	if status >= 200 && status < 300 {
		b.ok++
		if latency > t.cfg.Latency {
			b.slow++
		}
		if degraded {
			b.deg++
		}
	}
	t.mu.Unlock()
}

// bucketLocked returns the bucket for now, lazily clearing any slot
// whose absolute bucket number has aged out of the window.
func (t *Tracker) bucketLocked(now time.Time) *sloBucket {
	num := uint64(now.Sub(t.origin)/t.gran) + 1 // +1 so the zero value is always stale
	b := &t.buckets[num%uint64(len(t.buckets))]
	if b.num != num {
		*b = sloBucket{num: num}
	}
	return b
}

// Snapshot sums the live buckets and derives each objective's burn rate.
func (t *Tracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{}
	}
	t.mu.Lock()
	now := t.clock.Now()
	cur := uint64(now.Sub(t.origin)/t.gran) + 1
	var sum sloBucket
	for i := range t.buckets {
		b := &t.buckets[i]
		// A bucket is live when its absolute number is within the last
		// len(buckets) intervals ending at the current one.
		if b.num != 0 && b.num <= cur && cur-b.num < uint64(len(t.buckets)) {
			sum.total += b.total
			sum.ok += b.ok
			sum.slow += b.slow
			sum.errs += b.errs
			sum.deg += b.deg
		}
	}
	t.mu.Unlock()

	return SLOSnapshot{
		WindowSec: t.cfg.Window.Seconds(),
		Objectives: []ObjectiveStatus{
			objective("latency", t.cfg.LatencyTarget, sum.ok, sum.slow,
				fmt.Sprintf("%.0f%% of successful answers within %s", t.cfg.LatencyTarget*100, t.cfg.Latency)),
			objective("errors", t.cfg.ErrorTarget, sum.total, sum.errs,
				fmt.Sprintf("%.1f%% of requests answered without a 5xx", t.cfg.ErrorTarget*100)),
			objective("degradation", t.cfg.DegradeTarget, sum.ok, sum.deg,
				fmt.Sprintf("%.0f%% of successful answers at full fidelity (no degradation ladder)", t.cfg.DegradeTarget*100)),
		},
	}
}

// Warnings lists the objectives currently burning budget faster than
// sustainable (burn rate > 1), for the readyz annotation.
func (t *Tracker) Warnings() []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, o := range t.Snapshot().Objectives {
		if o.Burning {
			out = append(out, fmt.Sprintf(
				"slo %s burning: %.1fx sustainable rate (%d/%d bad over the last %s)",
				o.Name, o.BurnRate, o.Bad, o.Total, t.cfg.Window))
		}
	}
	return out
}

func objective(name string, target float64, total, bad int64, doc string) ObjectiveStatus {
	o := ObjectiveStatus{Name: name, Target: target, Total: total, Bad: bad, Objective: doc}
	if total > 0 {
		o.BadRatio = float64(bad) / float64(total)
		o.BurnRate = o.BadRatio / (1 - target)
		o.Burning = o.BurnRate > 1
	}
	return o
}
