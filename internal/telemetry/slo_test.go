package telemetry

import (
	"strings"
	"testing"
	"time"
)

func sloTracker(step time.Duration) (*Tracker, *fakeClock) {
	clk := newFakeClock(step)
	return NewTracker(SLOConfig{
		Window:        time.Minute,
		Buckets:       6,
		Latency:       100 * time.Millisecond,
		LatencyTarget: 0.9,
		ErrorTarget:   0.99,
		DegradeTarget: 0.5,
	}, clk), clk
}

func find(t *testing.T, snap SLOSnapshot, name string) ObjectiveStatus {
	t.Helper()
	for _, o := range snap.Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q missing from %+v", name, snap)
	return ObjectiveStatus{}
}

func TestSLOBurnRates(t *testing.T) {
	tr, _ := sloTracker(0)
	// 100 requests: 80 fast 200s, 15 slow 200s, 5 500s. 40 of the 200s
	// degraded.
	for i := 0; i < 80; i++ {
		tr.Record(200, 10*time.Millisecond, i < 40)
	}
	for i := 0; i < 15; i++ {
		tr.Record(200, 500*time.Millisecond, false)
	}
	for i := 0; i < 5; i++ {
		tr.Record(500, time.Millisecond, false)
	}
	snap := tr.Snapshot()
	if snap.WindowSec != 60 {
		t.Errorf("WindowSec = %v", snap.WindowSec)
	}

	lat := find(t, snap, "latency")
	// 15/95 successful answers were slow; budget is 10% → burn ≈ 1.58.
	if lat.Total != 95 || lat.Bad != 15 {
		t.Errorf("latency %+v, want 15/95 bad", lat)
	}
	if !lat.Burning || lat.BurnRate < 1.5 || lat.BurnRate > 1.7 {
		t.Errorf("latency burn %v burning=%v, want ~1.58 burning", lat.BurnRate, lat.Burning)
	}

	errs := find(t, snap, "errors")
	// 5/100 errored against a 1% budget → burn 5.
	if errs.Total != 100 || errs.Bad != 5 || !errs.Burning || errs.BurnRate < 4.9 || errs.BurnRate > 5.1 {
		t.Errorf("errors %+v, want burn 5", errs)
	}

	deg := find(t, snap, "degradation")
	// 40/95 degraded against a 50% budget → burn ≈ 0.84, not burning.
	if deg.Total != 95 || deg.Bad != 40 || deg.Burning {
		t.Errorf("degradation %+v, want 40/95 not burning", deg)
	}

	warns := tr.Warnings()
	if len(warns) != 2 {
		t.Fatalf("Warnings = %v, want latency + errors", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "burning") {
			t.Errorf("warning %q lacks 'burning'", w)
		}
	}
}

func TestSLOWindowSlides(t *testing.T) {
	tr, clk := sloTracker(0)
	for i := 0; i < 10; i++ {
		tr.Record(500, time.Millisecond, false)
	}
	if errs := find(t, tr.Snapshot(), "errors"); errs.Bad != 10 {
		t.Fatalf("errors before slide %+v", errs)
	}
	// Jump past the whole window: every bucket ages out.
	clk.advance(2 * time.Minute)
	snap := tr.Snapshot()
	if errs := find(t, snap, "errors"); errs.Total != 0 || errs.Bad != 0 || errs.Burning {
		t.Fatalf("errors after slide %+v, want empty", errs)
	}
	if len(tr.Warnings()) != 0 {
		t.Fatalf("warnings survived the window slide: %v", tr.Warnings())
	}
	// Partial slide: half the window later, old half gone.
	tr.Record(500, time.Millisecond, false)
	clk.advance(30 * time.Second)
	tr.Record(200, time.Millisecond, false)
	errs := find(t, tr.Snapshot(), "errors")
	if errs.Total != 2 || errs.Bad != 1 {
		t.Fatalf("errors after partial slide %+v, want 1/2", errs)
	}
	clk.advance(45 * time.Second) // first record now out of window, second still in
	errs = find(t, tr.Snapshot(), "errors")
	if errs.Total != 1 || errs.Bad != 0 {
		t.Fatalf("errors after aging %+v, want 0/1", errs)
	}
}

func TestSLODefaultsAndNil(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Window != 5*time.Minute || cfg.Buckets != 30 || cfg.Latency != time.Second {
		t.Errorf("defaults %+v", cfg)
	}
	if cfg.LatencyTarget != 0.99 || cfg.ErrorTarget != 0.999 || cfg.DegradeTarget != 0.9 {
		t.Errorf("default targets %+v", cfg)
	}
	var tr *Tracker
	tr.Record(200, 0, false)
	if snap := tr.Snapshot(); len(snap.Objectives) != 0 {
		t.Errorf("nil tracker snapshot %+v", snap)
	}
	if tr.Warnings() != nil {
		t.Errorf("nil tracker warnings")
	}
	if tr.Config() != (SLOConfig{}) {
		t.Errorf("nil tracker config")
	}
}

func TestSLOZeroTrafficIsQuiet(t *testing.T) {
	tr, _ := sloTracker(0)
	for _, o := range tr.Snapshot().Objectives {
		if o.Burning || o.BurnRate != 0 || o.Total != 0 {
			t.Errorf("idle objective %+v", o)
		}
	}
	if len(tr.Warnings()) != 0 {
		t.Errorf("idle warnings %v", tr.Warnings())
	}
}
