package telemetry

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"testing"

	"github.com/ata-pattern/ataqc/internal/obs"
)

// promLine matches one Prometheus text-exposition sample line:
// name{labels} value. CheckPromText below applies it to every non-TYPE
// line; the CI service-smoke job greps with an equivalent pattern.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]?Inf)$`)

var promType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)

// checkPromText validates an exposition: every line is a TYPE header or
// a well-formed sample, every sample's family has a preceding TYPE
// header, and all samples of one family are consecutive.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	done := map[string]bool{}
	var current string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if !promType.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
				continue
			}
			fam := strings.Fields(line)[2]
			if typed[fam] {
				t.Errorf("family %s declared twice", fam)
			}
			typed[fam] = true
			if current != "" {
				done[current] = true
			}
			current = fam
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[fam] && !typed[name] {
			t.Errorf("sample %q precedes its TYPE header", line)
		}
		if done[fam] && fam != current {
			t.Errorf("sample %q reopens family %s after it ended", line, fam)
		}
	}
}

func TestPromEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, obs.NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Zero bytes is a valid exposition for an empty registry; the point
	// is that the renderer neither errors nor emits garbage.
	if buf.Len() != 0 {
		t.Fatalf("empty registry rendered %q", buf.String())
	}
	checkPromText(t, buf.String())
}

func TestPromCountersGaugesHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.ok").Add(7)
	reg.Gauge("serve.queue").Set(3)
	reg.Gauge("serve.queue").Set(2) // max stays 3
	h := reg.Histogram("serve.latency_us")
	h.Observe(1)
	h.Observe(3)
	h.Observe(900)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkPromText(t, text)
	for _, want := range []string{
		"# TYPE serve_ok counter\nserve_ok 7\n",
		"# TYPE serve_queue gauge\nserve_queue 2\n",
		"# TYPE serve_queue_max gauge\nserve_queue_max 3\n",
		"# TYPE serve_latency_us histogram\n",
		`serve_latency_us_bucket{le="1"} 1` + "\n",
		`serve_latency_us_bucket{le="3"} 2` + "\n",
		`serve_latency_us_bucket{le="1023"} 3` + "\n",
		`serve_latency_us_bucket{le="+Inf"} 3` + "\n",
		"serve_latency_us_sum 904\n",
		"serve_latency_us_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestPromLabeledSeriesGroupUnderOneFamily(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.Labeled("serve.http.requests",
		obs.Label{Key: "endpoint", Value: "compile"}, obs.Label{Key: "status", Value: "200"})).Add(5)
	reg.Counter(obs.Labeled("serve.http.requests",
		obs.Label{Key: "endpoint", Value: "compile"}, obs.Label{Key: "status", Value: "429"})).Add(2)
	reg.Counter(obs.Labeled("serve.http.requests",
		obs.Label{Key: "endpoint", Value: "statz"}, obs.Label{Key: "status", Value: "200"})).Add(1)
	reg.Histogram(obs.Labeled("serve.http.latency_us",
		obs.Label{Key: "endpoint", Value: "compile"})).Observe(10)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkPromText(t, text)
	if got := strings.Count(text, "# TYPE serve_http_requests counter"); got != 1 {
		t.Errorf("family header appears %d times:\n%s", got, text)
	}
	for _, want := range []string{
		`serve_http_requests{endpoint="compile",status="200"} 5`,
		`serve_http_requests{endpoint="compile",status="429"} 2`,
		`serve_http_requests{endpoint="statz",status="200"} 1`,
		`serve_http_latency_us_bucket{endpoint="compile",le="+Inf"} 1`,
		`serve_http_latency_us_count{endpoint="compile"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestPromOverflowOnlyHistogram renders a histogram whose every
// observation landed in the unbounded overflow bucket: the exposition
// must still be monotone cumulative with a single +Inf bucket.
func TestPromOverflowOnlyHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("tail_us")
	huge := int64(1) << 62
	h.Observe(huge)
	h.Observe(math.MaxInt64)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkPromText(t, text)
	if strings.Count(text, "tail_us_bucket") != 1 {
		t.Errorf("want exactly the +Inf bucket, got:\n%s", text)
	}
	if !strings.Contains(text, `tail_us_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket with count 2 in:\n%s", text)
	}
	if !strings.Contains(text, "tail_us_count 2\n") {
		t.Errorf("missing count in:\n%s", text)
	}
	// The sum of two huge observations overflows int64; the exposition
	// must still carry a parseable number (the wrapped sum), not panic.
	if !strings.Contains(text, "tail_us_sum ") {
		t.Errorf("missing sum in:\n%s", text)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.errors.invalid-request").Add(1)
	reg.Counter("9starts.with.digit").Add(1)
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkPromText(t, text)
	if !strings.Contains(text, "serve_errors_invalid_request 1") {
		t.Errorf("dots/dashes not sanitised:\n%s", text)
	}
	if !strings.Contains(text, "_9starts_with_digit 1") {
		t.Errorf("leading digit not sanitised:\n%s", text)
	}
}

func TestFormatPromValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {7, "7"}, {-3, "-3"}, {2.5, "2.5"}, {1e9, "1000000000"},
	}
	for _, c := range cases {
		if got := formatPromValue(c.v); got != c.want {
			t.Errorf("formatPromValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := formatPromValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatPromValue(+Inf) = %q", got)
	}
}

// sampleLine is also used directly by the serve metricsz handler tests;
// pin its exact shape here.
func TestSampleLineShape(t *testing.T) {
	got := sampleLine("m", []obs.Label{{Key: "a", Value: `q"v`}}, "5", 2)
	want := "m{a=\"q\\\"v\",le=\"5\"} 2\n"
	if got != want {
		t.Errorf("sampleLine = %q, want %q", got, want)
	}
	if got := sampleLine("m", nil, "", 1.5); got != "m 1.5\n" {
		t.Errorf("unlabeled sampleLine = %q", got)
	}
}
