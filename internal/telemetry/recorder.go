package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ata-pattern/ataqc/internal/obs"
)

// PhaseMs is one compile-phase duration of a job's Timeline, in
// milliseconds (the recorder's native JSON unit).
type PhaseMs struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// JobRecord is one request's flight-recorder entry. In-flight jobs are
// reported with InFlight=true and a zero Status; committed entries carry
// the full outcome. All fields are plain values, so a record is safe to
// hand out, stream, and marshal after the job is gone.
type JobRecord struct {
	// Seq is the recorder-global commit sequence number (1-based); for
	// in-flight jobs it is the admission sequence instead, so the two
	// number lines are comparable but distinct until commit.
	Seq      uint64  `json:"seq"`
	TraceID  string  `json:"traceId"`
	Endpoint string  `json:"endpoint"`
	Start    string  `json:"start"` // RFC3339Nano on the recorder's clock
	Status   int     `json:"status,omitempty"`
	Outcome  string  `json:"outcome,omitempty"` // ok, shed, rejected, canceled, error, panic
	ErrCode  string  `json:"errCode,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Budget   string  `json:"degradeBudget,omitempty"`
	Rung     string  `json:"degradeRung,omitempty"`
	Pressure int     `json:"pressure"`
	QueueMs  float64 `json:"queueWaitMs"`
	// ElapsedMs is the whole request's wall time on the recorder's clock;
	// the phase durations below are subsets of it, so their sum never
	// exceeds it on a monotonic clock.
	ElapsedMs float64   `json:"elapsedMs"`
	Phases    []PhaseMs `json:"phases,omitempty"`
	Winner    string    `json:"winner,omitempty"`
	InFlight  bool      `json:"inFlight,omitempty"`
}

// Job is the handle a request holds while running: the handler annotates
// it (pressure, queue wait, Timeline, degrade detail) and Finish commits
// it to the ring. A job is private until Finish, so a panic mid-request
// can never leave a half-written slot in the recorder — the recovery
// path just finishes the job with status 500 and whatever annotations
// landed before the panic. Finish is idempotent: the first call wins.
// All methods are nil-safe.
type Job struct {
	fr    *FlightRecorder
	start time.Time

	mu   sync.Mutex
	rec  JobRecord
	done bool
}

// SetPressure records the admission-control level the job compiled under.
func (j *Job) SetPressure(level int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.rec.Pressure = level
	j.mu.Unlock()
}

// SetQueueWait records how long the job waited for a worker slot.
func (j *Job) SetQueueWait(d time.Duration) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.rec.QueueMs = ms(d)
	j.mu.Unlock()
}

// SetTimeline records the compile's phase breakdown and selector winner.
func (j *Job) SetTimeline(phases []PhaseMs, winner string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.rec.Phases = phases
	j.rec.Winner = winner
	j.mu.Unlock()
}

// SetDegraded records the degradation breadcrumb.
func (j *Job) SetDegraded(budget, rung string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.rec.Degraded = true
	j.rec.Budget, j.rec.Rung = budget, rung
	j.mu.Unlock()
}

// SetErrCode records the machine-readable error code of a failed job.
func (j *Job) SetErrCode(code string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.rec.ErrCode = code
	j.mu.Unlock()
}

// Degraded reports whether the job degraded (for the SLO tracker).
func (j *Job) Degraded() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.Degraded
}

// Finish stamps the outcome, computes the elapsed time on the recorder's
// clock, and commits the record to the ring (publishing it to any live
// subscribers). Only the first call has any effect.
func (j *Job) Finish(status int, outcome string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		return
	}
	j.done = true
	j.rec.Status = status
	j.rec.Outcome = outcome
	j.rec.ElapsedMs = ms(j.fr.clock.Now().Sub(j.start))
	rec := j.rec
	j.mu.Unlock()
	j.fr.commit(j, rec)
}

// snapshotInFlight renders the job as an in-flight record with elapsed
// time up to now.
func (j *Job) snapshotInFlight(now time.Time) JobRecord {
	j.mu.Lock()
	rec := j.rec
	j.mu.Unlock()
	rec.Status = 0
	rec.InFlight = true
	rec.ElapsedMs = ms(now.Sub(j.start))
	return rec
}

// RecorderStats summarizes the recorder for statz.
type RecorderStats struct {
	Size          int    `json:"size"`
	Committed     uint64 `json:"committed"`
	InFlight      int    `json:"inFlight"`
	Subscribers   int    `json:"subscribers"`
	StreamDropped int64  `json:"streamDropped"`
}

// FlightRecorder keeps the last N committed request records in a ring
// buffer plus the set of jobs currently in flight, and fans committed
// records out to live subscribers (the debugz stream). The ring holds
// plain values and is touched only under a short mutex at commit and
// snapshot time — the per-request annotation traffic happens on the Job's
// own lock, so concurrent requests never contend here until they finish.
// A nil recorder is the disabled state: Begin returns a nil Job and every
// query returns empty.
type FlightRecorder struct {
	clock obs.Clock

	mu        sync.Mutex
	ring      []JobRecord
	committed uint64
	inflight  map[*Job]struct{}
	admitted  uint64
	subs      map[int]chan JobRecord
	nextSub   int
	closed    bool

	dropped atomic.Int64
}

// NewFlightRecorder returns a recorder holding the last size committed
// records (minimum 1), timed on clock (nil = obs.SystemClock).
func NewFlightRecorder(size int, clock obs.Clock) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	if clock == nil {
		clock = obs.SystemClock
	}
	return &FlightRecorder{
		clock:    clock,
		ring:     make([]JobRecord, 0, size),
		inflight: make(map[*Job]struct{}),
		subs:     make(map[int]chan JobRecord),
	}
}

// Begin registers a new in-flight job for the given trace ID and
// endpoint and returns its handle.
func (f *FlightRecorder) Begin(id TraceID, endpoint string) *Job {
	if f == nil {
		return nil
	}
	now := f.clock.Now()
	j := &Job{fr: f, start: now}
	f.mu.Lock()
	f.admitted++
	j.rec = JobRecord{
		Seq:      f.admitted,
		TraceID:  string(id),
		Endpoint: endpoint,
		Start:    now.Format(time.RFC3339Nano),
	}
	f.inflight[j] = struct{}{}
	f.mu.Unlock()
	return j
}

// commit moves a finished job into the ring (overwriting the oldest
// entry once full) and publishes it to subscribers without blocking:
// a subscriber that cannot keep up loses records, counted in Dropped.
func (f *FlightRecorder) commit(j *Job, rec JobRecord) {
	f.mu.Lock()
	delete(f.inflight, j)
	f.committed++
	rec.Seq = f.committed
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[int((f.committed-1)%uint64(cap(f.ring)))] = rec
	}
	subs := make([]chan JobRecord, 0, len(f.subs))
	//vet:ignore maprange fan-out order does not matter; every subscriber gets the record
	for _, ch := range f.subs {
		subs = append(subs, ch)
	}
	f.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- rec:
		default:
			f.dropped.Add(1)
		}
	}
}

// Filter selects committed records for Recent. The zero value matches
// everything.
type Filter struct {
	// Status matches the exact HTTP status (0 = any).
	Status int
	// Degraded, when non-nil, matches records with that degraded flag.
	Degraded *bool
	// SlowerThan keeps only records with ElapsedMs >= this many ms.
	SlowerThanMs float64
	// Limit caps the result count (0 = recorder size).
	Limit int
}

// Match reports whether a record passes the filter's status, degraded,
// and slowness predicates (Limit is not consulted — it belongs to Recent;
// the debugz live stream applies Match per record as they commit).
func (q Filter) Match(r *JobRecord) bool {
	if q.Status != 0 && r.Status != q.Status {
		return false
	}
	if q.Degraded != nil && r.Degraded != *q.Degraded {
		return false
	}
	if q.SlowerThanMs > 0 && r.ElapsedMs < q.SlowerThanMs {
		return false
	}
	return true
}

// Recent returns matching committed records, newest first.
func (f *FlightRecorder) Recent(q Filter) []JobRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	n := len(f.ring)
	recs := make([]JobRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent commit; while the ring is
		// still filling, commit k landed at index k-1, so the same modular
		// walk covers both regimes.
		recs = append(recs, f.ring[int((f.committed-uint64(i)-1)%uint64(cap(f.ring)))])
	}
	f.mu.Unlock()
	limit := q.Limit
	if limit <= 0 {
		limit = cap(f.ring)
	}
	out := make([]JobRecord, 0, min(limit, len(recs)))
	for i := range recs {
		if !q.Match(&recs[i]) {
			continue
		}
		out = append(out, recs[i])
		if len(out) >= limit {
			break
		}
	}
	return out
}

// InFlight snapshots the currently running jobs, ordered by admission.
func (f *FlightRecorder) InFlight() []JobRecord {
	if f == nil {
		return nil
	}
	now := f.clock.Now()
	f.mu.Lock()
	jobs := make([]*Job, 0, len(f.inflight))
	//vet:ignore maprange collected jobs are sorted by admission sequence below
	for j := range f.inflight {
		jobs = append(jobs, j)
	}
	f.mu.Unlock()
	out := make([]JobRecord, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshotInFlight(now))
	}
	sortRecords(out)
	return out
}

// Subscribe registers a live feed of committed records with the given
// channel buffer; the returned cancel removes the subscription. After
// CloseSubscribers (drain), the channel is closed.
func (f *FlightRecorder) Subscribe(buf int) (<-chan JobRecord, func()) {
	if f == nil {
		ch := make(chan JobRecord)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan JobRecord, buf)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := f.nextSub
	f.nextSub++
	f.subs[id] = ch
	f.mu.Unlock()
	return ch, func() {
		f.mu.Lock()
		if _, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(ch)
		}
		f.mu.Unlock()
	}
}

// CloseSubscribers ends every live stream (the daemon calls this at
// drain so debugz watchers see EOF instead of hanging) and refuses new
// subscriptions.
func (f *FlightRecorder) CloseSubscribers() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.closed = true
	//vet:ignore maprange closing order does not matter; each channel closes once
	for id, ch := range f.subs {
		delete(f.subs, id)
		close(ch)
	}
	f.mu.Unlock()
}

// Stats summarizes the recorder.
func (f *FlightRecorder) Stats() RecorderStats {
	if f == nil {
		return RecorderStats{}
	}
	f.mu.Lock()
	s := RecorderStats{
		Size:        cap(f.ring),
		Committed:   f.committed,
		InFlight:    len(f.inflight),
		Subscribers: len(f.subs),
	}
	f.mu.Unlock()
	s.StreamDropped = f.dropped.Load()
	return s
}

func sortRecords(recs []JobRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Seq < recs[j-1].Seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
