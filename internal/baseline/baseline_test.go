package baseline

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// checkVerified runs the shared strict analyzers over a baseline result —
// the same oracle the compilers themselves enforce, so tests and production
// cannot drift apart.
func checkVerified(t *testing.T, label string, a *arch.Arch, p *graph.Graph, res *Result) {
	t.Helper()
	pass := &verify.Pass{Circuit: res.Circuit, Arch: a, Problem: p, Initial: res.Initial, Final: res.Final}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		t.Fatalf("%s: invalid circuit: %v", label, err)
	}
}

type compiler func(*arch.Arch, *graph.Graph, float64) (*Result, error)

func compilers() map[string]compiler {
	return map[string]compiler{
		"paulihedral": Paulihedral,
		"qaim":        QAIM,
		"2qan":        TwoQAN,
	}
}

func TestBaselinesProduceValidCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	archs := []*arch.Arch{
		arch.Grid(5, 5),
		arch.Sycamore(5, 5),
		arch.HeavyHex(2, 8),
		arch.Mumbai(),
	}
	for name, comp := range compilers() {
		for _, a := range archs {
			n := a.N()
			if n > 20 {
				n = 20
			}
			p := graph.GnpConnected(n, 0.3, rng)
			res, err := comp(a, p, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, a.Name, err)
			}
			checkVerified(t, name+"/"+a.Name, a, p, res)
		}
	}
}

func TestBaselinesHandleClique(t *testing.T) {
	a := arch.Grid(4, 4)
	p := graph.Complete(16)
	for name, comp := range compilers() {
		res, err := comp(a, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkVerified(t, name, a, p, res)
	}
}

func TestBaselinesHandleTrivialProblems(t *testing.T) {
	a := arch.Line(4)
	p := graph.New(4)
	p.AddEdge(0, 1)
	for name, comp := range compilers() {
		res, err := comp(a, p, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkVerified(t, name, a, p, res)
	}
}

func TestMatchingLayersDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := graph.Gnp(20, 0.4, rng)
	layers := matchingLayers(p)
	total := 0
	for li, layer := range layers {
		used := map[int]bool{}
		for _, e := range layer {
			if used[e.U] || used[e.V] {
				t.Fatalf("layer %d not a matching", li)
			}
			used[e.U], used[e.V] = true, true
			total++
		}
	}
	if total != p.M() {
		t.Fatalf("layers cover %d of %d edges", total, p.M())
	}
}

func TestQuadraticPlacementImprovesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := arch.Grid(5, 5)
	p := graph.GnpConnected(25, 0.2, rng)
	// Start from a deliberately bad mapping: reversed order.
	bad := make([]int, 25)
	for i := range bad {
		bad[i] = 24 - i
	}
	improved := quadraticPlacement(a, p, bad)
	cost := func(m []int) int {
		c := 0
		for _, e := range p.Edges() {
			c += a.Dist(m[e.U], m[e.V])
		}
		return c
	}
	badCopy := make([]int, 25)
	for i := range badCopy {
		badCopy[i] = 24 - i
	}
	if cost(improved) > cost(badCopy) {
		t.Fatalf("placement got worse: %d vs %d", cost(improved), cost(badCopy))
	}
}

func TestTwoQANUsesGateUnifying(t *testing.T) {
	// On a line with a dense problem, routing must produce some ZZSwap
	// (unified) gates.
	a := arch.Line(6)
	p := graph.Complete(6)
	res, err := TwoQAN(a, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.GateCount()[circuit.GateZZSwap] == 0 {
		t.Fatal("2QAN produced no unified gates on a line clique")
	}
}

func TestConnectivityStrengthPlacementValid(t *testing.T) {
	a := arch.HeavyHex(3, 8)
	rng := rand.New(rand.NewSource(2))
	p := graph.GnpConnected(20, 0.3, rng)
	m := connectivityStrengthPlacement(a, p)
	seen := map[int]bool{}
	for _, ph := range m {
		if ph < 0 || ph >= a.N() || seen[ph] {
			t.Fatalf("bad placement %v", m)
		}
		seen[ph] = true
	}
}
