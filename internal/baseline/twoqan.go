package baseline

import (
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
)

// TwoQAN models the 2QAN compiler (Lao & Browne, ISCA 2022): a
// quadratic-cost placement phase that iteratively improves the initial
// mapping to minimise the total coupling distance of all gates, followed by
// routing that exploits *gate unifying* — whenever a SWAP is inserted on a
// pair whose occupants still owe a program gate, the gate merges into the
// SWAP (3 CX for both). The placement is what makes 2QAN strong on small
// circuits and what blows up its compile time on large ones (§7.2: its
// placement searches all qubit pairs each pass).
func TwoQAN(a *arch.Arch, problem *graph.Graph, angle float64) (*Result, error) {
	if angle == 0 {
		angle = 1
	}
	initial := quadraticPlacement(a, problem, greedy.InitialMapping(a, problem))
	b := circuit.NewBuilder(a, problem.N(), initial)

	// Routing: commuting-aware greedy with unifying. Adjacent gates run
	// every iteration — unified into a ZZSwap when moving the pair also
	// brings other pending work closer — and the remaining gates route one
	// step at a time.
	pending := problem.Edges()
	dist := a.Distances()

	// unifyBenefit: total distance change for other pending gates if the
	// occupants of (pu, pv) are exchanged.
	unifyBenefit := func(e graph.Edge, pu, pv int) int {
		benefit := 0
		for _, f := range pending {
			if f == e {
				continue
			}
			fu, fv := b.PhysOf(f.U), b.PhysOf(f.V)
			before := dist[fu][fv]
			nu, nv := fu, fv
			if fu == pu {
				nu = pv
			} else if fu == pv {
				nu = pu
			}
			if fv == pu {
				nv = pv
			} else if fv == pv {
				nv = pu
			}
			benefit += before - dist[nu][nv]
		}
		return benefit
	}

	guard := 0
	for len(pending) > 0 {
		if guard++; guard > 200*a.N()+1000 {
			break
		}
		// Phase 1: execute adjacent gates, unifying when beneficial.
		keep := pending[:0]
		busy := map[int]bool{}
		progressed := false
		for _, e := range pending {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if !a.G.HasEdge(pu, pv) || busy[pu] || busy[pv] {
				keep = append(keep, e)
				continue
			}
			if unifyBenefit(e, pu, pv) > 0 {
				b.ZZSwap(pu, pv, angle, e)
			} else {
				b.ZZ(pu, pv, angle, e)
			}
			busy[pu], busy[pv] = true, true
			progressed = true
		}
		pending = keep
		if len(pending) == 0 {
			break
		}
		// Phase 2: move the closest unsatisfied gates one step.
		sort.SliceStable(pending, func(i, j int) bool {
			di := dist[b.PhysOf(pending[i].U)][b.PhysOf(pending[i].V)]
			dj := dist[b.PhysOf(pending[j].U)][b.PhysOf(pending[j].V)]
			if di != dj {
				return di < dj
			}
			if pending[i].U != pending[j].U {
				return pending[i].U < pending[j].U
			}
			return pending[i].V < pending[j].V
		})
		for _, e := range pending {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if busy[pu] || busy[pv] {
				continue
			}
			d := dist[pu][pv]
			if d <= 1 {
				continue
			}
			for _, w := range a.G.Neighbors(pu) {
				if busy[w] || dist[w][pv] >= d {
					continue
				}
				b.Swap(pu, w)
				busy[pu], busy[w] = true, true
				progressed = true
				break
			}
		}
		if !progressed {
			e := pending[0]
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			d := dist[pu][pv]
			for _, w := range a.G.Neighbors(pu) {
				if dist[w][pv] < d {
					b.Swap(pu, w)
					break
				}
			}
		}
	}
	if len(pending) > 0 {
		if err := routeLayer(a, b, pending, angle, true); err != nil {
			return nil, err
		}
	}
	return finish("2qan", a, problem, b)
}

// quadraticPlacement hill-climbs the placement: repeatedly try swapping the
// physical locations of two logical qubits (or moving one to a free
// physical slot) and keep changes that reduce the total gate distance.
// Each pass is O(n^2) candidate moves over m gates — the quadratic
// behaviour the paper observes in 2QAN's compile time.
func quadraticPlacement(a *arch.Arch, problem *graph.Graph, initial []int) []int {
	mapping := append([]int(nil), initial...)
	dist := a.Distances()
	edges := problem.Edges()
	adj := make([][]int, problem.N())
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	physOf := mapping
	// Cost contribution of logical u at physical p.
	costAt := func(u, p int) int {
		c := 0
		for _, v := range adj[u] {
			c += dist[p][physOf[v]]
		}
		return c
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		for u := 0; u < problem.N(); u++ {
			for v := u + 1; v < problem.N(); v++ {
				pu, pv := physOf[u], physOf[v]
				before := costAt(u, pu) + costAt(v, pv)
				physOf[u], physOf[v] = pv, pu
				after := costAt(u, pv) + costAt(v, pu)
				if after < before {
					improved = true
				} else {
					physOf[u], physOf[v] = pu, pv
				}
			}
		}
		if !improved {
			break
		}
	}
	return mapping
}
