// Package baseline reimplements the compilation strategies the paper
// evaluates against (§7.1): Paulihedral's block-wise Pauli-string
// scheduling, QAIM's connectivity-strength placement with incremental
// SWAP insertion, and 2QAN's quadratic placement with gate unifying.
//
// Substitution note (DESIGN.md): the original tools are Python artifacts
// built on Qiskit; these are faithful reimplementations of the strategies
// at the level the paper describes them, so absolute numbers differ but
// the comparative shapes hold. Each baseline returns a circuit that passes
// the same end-to-end validator as the main compiler.
package baseline

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// Result is a baseline compilation outcome.
type Result struct {
	Circuit *circuit.Circuit
	Initial []int
	// Final is the final logical-to-physical mapping the strategy claims.
	Final []int
	Name  string
}

// finish packages a built circuit as a Result after running the shared
// static analyzers (internal/verify) on it — the baselines get exactly the
// same output scrutiny as the main compiler, so a baseline that drops or
// misroutes a term errors out instead of reporting bogus metrics.
func finish(name string, a *arch.Arch, problem *graph.Graph, b *circuit.Builder) (*Result, error) {
	res := &Result{Circuit: b.C, Initial: b.InitialMapping(), Final: b.CurrentMapping(), Name: name}
	pass := &verify.Pass{
		Circuit: res.Circuit,
		Arch:    a,
		Problem: problem,
		Initial: res.Initial,
		Final:   res.Final,
	}
	if err := verify.Check(pass, verify.Strict...); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", name, err)
	}
	return res, nil
}

// routeLayer executes the given logical gates (a connectivity-oblivious
// "layer") on the builder, inserting SWAPs until every gate has run. Gates
// already adjacent run first; then the closest pair routes toward each
// other one SWAP layer at a time. Used by the layer-ordered baselines.
func routeLayer(a *arch.Arch, b *circuit.Builder, layer []graph.Edge, angle float64, unify bool) error {
	dist := a.Distances()
	pending := append([]graph.Edge(nil), layer...)
	guard := 0
	for len(pending) > 0 {
		if guard++; guard > 200*a.N()+1000 {
			return fmt.Errorf("baseline: routing stalled with %d gates pending", len(pending))
		}
		// Execute everything currently adjacent.
		keep := pending[:0]
		busy := map[int]bool{}
		for _, e := range pending {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if a.G.HasEdge(pu, pv) && !busy[pu] && !busy[pv] {
				b.ZZ(pu, pv, angle, e)
				busy[pu], busy[pv] = true, true
			} else {
				keep = append(keep, e)
			}
		}
		pending = keep
		if len(pending) == 0 {
			break
		}
		// Move the closest pending pair one step closer; other pairs may
		// piggyback on disjoint swaps.
		swapped := map[int]bool{}
		progressed := false
		for _, e := range pending {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if swapped[pu] || swapped[pv] {
				continue
			}
			d := dist[pu][pv]
			if d <= 1 {
				continue
			}
			moved := false
			for _, w := range a.G.Neighbors(pu) {
				if swapped[w] || dist[w][pv] >= d {
					continue
				}
				// Gate unifying (2QAN): if the swap's occupants themselves
				// form a wanted pending gate, merge it into the SWAP.
				if unify {
					if j := pendingIndex(pending, b, pu, w); j >= 0 {
						b.ZZSwap(pu, w, angle, pending[j])
						pending = append(pending[:j], pending[j+1:]...)
						swapped[pu], swapped[w] = true, true
						moved, progressed = true, true
						break
					}
				}
				b.Swap(pu, w)
				swapped[pu], swapped[w] = true, true
				moved, progressed = true, true
				break
			}
			_ = moved
		}
		if !progressed {
			// All endpoints blocked this round: force one swap.
			e := pending[0]
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			d := dist[pu][pv]
			for _, w := range a.G.Neighbors(pu) {
				if dist[w][pv] < d {
					b.Swap(pu, w)
					break
				}
			}
		}
	}
	return nil
}

// pendingIndex returns the index of a pending gate whose logical pair
// currently occupies physical (p, q), or -1.
func pendingIndex(pending []graph.Edge, b *circuit.Builder, p, q int) int {
	lu, lv := b.LogicalAt(p), b.LogicalAt(q)
	if lu < 0 || lv < 0 {
		return -1
	}
	e := graph.NewEdge(lu, lv)
	for i, pe := range pending {
		if pe == e {
			return i
		}
	}
	return -1
}
