package baseline

import (
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// QAIM models the QAIM compiler with incremental compilation (Alam et al.,
// MICRO 2020, the QAIM_IC variant): the initial placement pairs
// high-interaction logical qubits with high-connectivity physical qubits
// ("connectivity strength"), and compilation proceeds incrementally — the
// remaining gates are repeatedly scanned, adjacent ones are scheduled, and
// one SWAP at a time is inserted for the cheapest unsatisfied gate
// (bin-packing-style, without a global matching step). The per-gate
// sequential SWAP insertion gives it less SWAP parallelism than the
// matching-based approaches, which is the behaviour the paper measures.
func QAIM(a *arch.Arch, problem *graph.Graph, angle float64) (*Result, error) {
	if angle == 0 {
		angle = 1
	}
	initial := connectivityStrengthPlacement(a, problem)
	b := circuit.NewBuilder(a, problem.N(), initial)
	dist := a.Distances()
	pending := problem.Edges()
	// Process highest-interaction gates first (their qubits have the most
	// future work).
	sort.SliceStable(pending, func(i, j int) bool {
		di := problem.Degree(pending[i].U) + problem.Degree(pending[i].V)
		dj := problem.Degree(pending[j].U) + problem.Degree(pending[j].V)
		if di != dj {
			return di > dj
		}
		if pending[i].U != pending[j].U {
			return pending[i].U < pending[j].U
		}
		return pending[i].V < pending[j].V
	})
	guard := 0
	for len(pending) > 0 {
		if guard++; guard > 400*a.N()+len(pending)*8+1000 {
			break
		}
		// Schedule all currently adjacent gates.
		keep := pending[:0]
		for _, e := range pending {
			pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
			if a.G.HasEdge(pu, pv) {
				b.ZZ(pu, pv, angle, e)
			} else {
				keep = append(keep, e)
			}
		}
		pending = keep
		if len(pending) == 0 {
			break
		}
		// One SWAP for the closest unsatisfied gate.
		bi, bd := 0, 1<<30
		for i, e := range pending {
			if d := dist[b.PhysOf(e.U)][b.PhysOf(e.V)]; d < bd {
				bi, bd = i, d
			}
		}
		e := pending[bi]
		pu, pv := b.PhysOf(e.U), b.PhysOf(e.V)
		for _, w := range a.G.Neighbors(pu) {
			if dist[w][pv] < bd {
				b.Swap(pu, w)
				break
			}
		}
	}
	if len(pending) > 0 {
		// Finish any stragglers with the shared router.
		if err := routeLayer(a, b, pending, angle, false); err != nil {
			return nil, err
		}
	}
	return finish("qaim", a, problem, b)
}

// connectivityStrengthPlacement maps logical qubits in decreasing
// interaction degree onto physical qubits in decreasing coupling degree,
// expanding outward so neighbours stay close (Alam et al.'s connectivity
// strength heuristic).
func connectivityStrengthPlacement(a *arch.Arch, problem *graph.Graph) []int {
	// Physical qubits sorted by degree desc, then BFS-compacted from the
	// highest-degree one.
	bestPhys := 0
	for q := 1; q < a.N(); q++ {
		if a.G.Degree(q) > a.G.Degree(bestPhys) {
			bestPhys = q
		}
	}
	physOrder := bfsByDegree(a.G, bestPhys)

	bestLog := 0
	for v := 1; v < problem.N(); v++ {
		if problem.Degree(v) > problem.Degree(bestLog) {
			bestLog = v
		}
	}
	logOrder := bfsByDegree(problem, bestLog)

	mapping := make([]int, problem.N())
	for i, l := range logOrder {
		mapping[l] = physOrder[i]
	}
	return mapping
}

// bfsByDegree returns all vertices in BFS order from start, expanding
// higher-degree neighbours first; unreached vertices are appended by
// degree.
func bfsByDegree(g *graph.Graph, start int) []int {
	order := make([]int, 0, g.N())
	seen := make([]bool, g.N())
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		nb := append([]int(nil), g.Neighbors(v)...)
		sort.Slice(nb, func(i, j int) bool {
			if g.Degree(nb[i]) != g.Degree(nb[j]) {
				return g.Degree(nb[i]) > g.Degree(nb[j])
			}
			return nb[i] < nb[j]
		})
		for _, w := range nb {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	var rest []int
	for v := 0; v < g.N(); v++ {
		if !seen[v] {
			rest = append(rest, v)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return g.Degree(rest[i]) > g.Degree(rest[j]) })
	return append(order, rest...)
}
