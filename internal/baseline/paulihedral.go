package baseline

import (
	"sort"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
)

// Paulihedral models the Paulihedral compiler (Li et al., ASPLOS 2022) for
// the 2-local special case: the Pauli strings (problem edges) are grouped
// into mutually disjoint logical layers (a matching decomposition, its
// block-wise IR), and the layers are scheduled one after another with local
// SWAP insertion. The block order is fixed before routing, so the router
// cannot reorder gates across blocks — which is exactly the flexibility the
// paper's compiler exploits and Paulihedral leaves on the table.
func Paulihedral(a *arch.Arch, problem *graph.Graph, angle float64) (*Result, error) {
	if angle == 0 {
		angle = 1
	}
	initial := greedy.InitialMapping(a, problem)
	b := circuit.NewBuilder(a, problem.N(), initial)
	for _, layer := range matchingLayers(problem) {
		if err := routeLayer(a, b, layer, angle, false); err != nil {
			return nil, err
		}
	}
	return finish("paulihedral", a, problem, b)
}

// matchingLayers decomposes the edge set into maximal-matching layers:
// repeatedly extract a maximal set of vertex-disjoint edges, preferring
// high-degree endpoints first so dense cores drain early.
func matchingLayers(p *graph.Graph) [][]graph.Edge {
	remaining := p.Edges()
	sort.SliceStable(remaining, func(i, j int) bool {
		di := p.Degree(remaining[i].U) + p.Degree(remaining[i].V)
		dj := p.Degree(remaining[j].U) + p.Degree(remaining[j].V)
		if di != dj {
			return di > dj
		}
		if remaining[i].U != remaining[j].U {
			return remaining[i].U < remaining[j].U
		}
		return remaining[i].V < remaining[j].V
	})
	var layers [][]graph.Edge
	for len(remaining) > 0 {
		used := map[int]bool{}
		var layer []graph.Edge
		keep := remaining[:0]
		for _, e := range remaining {
			if !used[e.U] && !used[e.V] {
				used[e.U], used[e.V] = true, true
				layer = append(layer, e)
			} else {
				keep = append(keep, e)
			}
		}
		remaining = keep
		layers = append(layers, layer)
	}
	return layers
}
