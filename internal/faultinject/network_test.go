package faultinject

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/ata-pattern/ataqc/internal/serve"
)

// startDaemon boots the real serving stack — serve.Server wrapped in an
// http.Server configured exactly like cmd/ataqcd (ReadHeaderTimeout is the
// slow-loris defense under test) — on an ephemeral port.
func startDaemon(t *testing.T) (baseURL string) {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 4})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 500 * time.Millisecond,
	}
	go hs.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	})
	return fmt.Sprintf("http://%s", l.Addr())
}

// TestNetworkFaultsHoldTheContract drives every hostile-client scenario
// against a live daemon and asserts the robustness contract: each answer is
// either structured or a legitimate connection reclaim, and the daemon is
// still compiling afterwards.
func TestNetworkFaultsHoldTheContract(t *testing.T) {
	baseURL := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, f := range NetworkFaults() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rep := f.Run(ctx, baseURL)
			if rep.Err != nil {
				t.Fatalf("unexpected transport failure: %v", rep.Err)
			}
			if !rep.Ok() {
				t.Fatalf("contract violated: status %d structured=%v", rep.Status, rep.Structured)
			}
			// The daemon survived this scenario and still serves.
			if err := probe(baseURL); err != nil {
				t.Fatalf("daemon unhealthy after %s: %v", f.Name, err)
			}
		})
	}
}

// TestNetworkFaultExpectedStatuses pins the taxonomy for the payload-level
// scenarios: hostility in the body maps to the documented status codes.
func TestNetworkFaultExpectedStatuses(t *testing.T) {
	baseURL := startDaemon(t)
	ctx := context.Background()
	want := []struct {
		name   string
		status int
	}{
		{"network/oversized-graph", http.StatusRequestEntityTooLarge},
		{"network/malformed-json", http.StatusBadRequest},
		{"network/wrong-content-type", http.StatusBadRequest},
		{"network/unknown-field", http.StatusBadRequest},
	}
	byName := map[string]NetworkFault{}
	for _, f := range NetworkFaults() {
		byName[f.Name] = f
	}
	for _, tc := range want {
		f, ok := byName[tc.name]
		if !ok {
			t.Fatalf("scenario %s missing from NetworkFaults", tc.name)
		}
		rep := f.Run(ctx, baseURL)
		if rep.Err != nil {
			t.Fatalf("%s: transport failure: %v", tc.name, rep.Err)
		}
		if rep.Status != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, rep.Status, tc.status)
		}
		if !rep.Structured {
			t.Errorf("%s: error answer was not a structured envelope", tc.name)
		}
	}
}

func probe(baseURL string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz %d", resp.StatusCode)
	}
	return nil
}
