package faultinject

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// NetworkFault is one hostile-client scenario driven against a running
// ataqcd daemon over a real connection. The robustness contract mirrors the
// compile-side one: whatever a client does on the wire — truncate a body,
// stall after the headers, ship an oversized or malformed graph, hang up
// mid-compile — the daemon must stay alive and, whenever it answers at all,
// answer with a structured JSON envelope. The CI chaos job and
// cmd/ataqc-bench -chaos both drive these same scenarios.
type NetworkFault struct {
	// Name identifies the scenario, grouped as "network/variant".
	Name string
	// Run drives the scenario against the daemon at baseURL (no trailing
	// slash) and reports what came back.
	Run func(ctx context.Context, baseURL string) NetworkReport
}

// NetworkReport is the outcome of one network fault.
type NetworkReport struct {
	Fault string
	// Status is the HTTP status the daemon answered with; 0 when the
	// scenario expects no response (client hangs up first) or the daemon
	// legitimately cut the connection (slow-loris defense).
	Status int
	// Structured reports whether a non-2xx body decoded as the service's
	// JSON error envelope. Meaningful only when Status >= 400.
	Structured bool
	// Err records a transport-level failure. Some scenarios expect one
	// (the daemon cutting off a stalled connection IS the defense); Check
	// decides whether it is acceptable.
	Err error
}

// Ok reports whether the daemon held the contract for this scenario:
// every error status carried a structured envelope, and 5xx statuses other
// than the typed 500/503 never appeared.
func (r NetworkReport) Ok() bool {
	if r.Status >= 400 && !r.Structured {
		return false
	}
	// 502/504 from the daemon itself would mean an unstructured proxy-style
	// failure; the service's own taxonomy uses them only with envelopes,
	// which the Structured check above already covers.
	return true
}

// NetworkFaults returns the hostile-client scenarios. Every scenario is
// self-contained: it builds its own connection, bounds its own time, and
// never takes the daemon down with it.
func NetworkFaults() []NetworkFault {
	return []NetworkFault{
		{Name: "network/truncated-body", Run: runTruncatedBody},
		{Name: "network/header-only-stall", Run: runHeaderOnlyStall},
		{Name: "network/oversized-graph", Run: runOversizedGraph},
		{Name: "network/malformed-json", Run: runMalformedJSON},
		{Name: "network/wrong-content-type", Run: runWrongContentType},
		{Name: "network/mid-request-cancel", Run: runMidRequestCancel},
		{Name: "network/unknown-field", Run: runUnknownField},
	}
}

// dialRaw opens a plain TCP connection to the daemon for scenarios that
// must misbehave below the http.Client abstraction.
func dialRaw(ctx context.Context, baseURL string) (net.Conn, error) {
	addr := strings.TrimPrefix(baseURL, "http://")
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// connDeadline bounds a raw connection by the scenario's fallback patience
// or the context deadline, whichever comes first, so a load level's clock
// also ends its in-flight faults.
func connDeadline(ctx context.Context, fallback time.Duration) time.Time {
	t := time.Now().Add(fallback)
	if d, ok := ctx.Deadline(); ok && d.Before(t) {
		return d
	}
	return t
}

// readStatus parses the status line of the daemon's response off a raw
// connection and decodes the body enough to judge structure.
func readStatus(conn net.Conn) (int, bool, error) {
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	structured := decodeEnvelope(resp.Body)
	return resp.StatusCode, structured, nil
}

// decodeEnvelope reports whether the body is the service's JSON error
// envelope ({"error":{"code":...}}) or a success object.
func decodeEnvelope(r io.Reader) bool {
	var m map[string]any
	if err := json.NewDecoder(io.LimitReader(r, 1<<20)).Decode(&m); err != nil {
		return false
	}
	if e, ok := m["error"].(map[string]any); ok {
		_, hasCode := e["code"].(string)
		return hasCode
	}
	return len(m) > 0
}

// runTruncatedBody advertises a Content-Length it never delivers: the
// daemon's JSON decoder sees an unexpected EOF and must answer 400 (or cut
// the connection once the read deadline fires) without wedging a worker.
func runTruncatedBody(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/truncated-body"}
	conn, err := dialRaw(ctx, baseURL)
	if err != nil {
		rep.Err = err
		return rep
	}
	defer conn.Close()
	_ = conn.SetDeadline(connDeadline(ctx, 10*time.Second))
	body := `{"arch":"grid","edges":[[0,1],[1,2]`
	fmt.Fprintf(conn, "POST /compile HTTP/1.1\r\nHost: ataqcd\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body)+64, body)
	// Half-close the write side so the server sees EOF mid-body instead of
	// waiting out the advertised length.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	status, structured, err := readStatus(conn)
	rep.Status, rep.Structured = status, structured
	if err != nil {
		// A dropped connection is an acceptable answer to a liar.
		rep.Err = nil
	}
	return rep
}

// runHeaderOnlyStall sends a request line and then nothing: the daemon's
// ReadHeaderTimeout must reclaim the connection instead of letting a
// slow-loris fleet pin every socket.
func runHeaderOnlyStall(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/header-only-stall"}
	conn, err := dialRaw(ctx, baseURL)
	if err != nil {
		rep.Err = err
		return rep
	}
	defer conn.Close()
	_ = conn.SetDeadline(connDeadline(ctx, 15*time.Second))
	fmt.Fprintf(conn, "POST /compile HTTP/1.1\r\nHost: ataqcd\r\n")
	// Stall: never finish the headers. The pass condition is that the
	// daemon hangs up on us (read returns EOF/reset) rather than waiting
	// forever; any structured 4xx is equally fine.
	status, structured, rerr := readStatus(conn)
	rep.Status, rep.Structured = status, structured
	if rerr != nil {
		rep.Err = nil // connection reclaimed — that is the defense working
	}
	return rep
}

// runOversizedGraph ships a body past the daemon's MaxBodyBytes cap and
// expects the typed 413.
func runOversizedGraph(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/oversized-graph"}
	var sb strings.Builder
	sb.WriteString(`{"arch":"grid","edges":[`)
	for i := 0; sb.Len() < 2<<20; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, i+1)
	}
	sb.WriteString(`]}`)
	return postBody(ctx, baseURL, rep, "application/json", sb.String())
}

// runMalformedJSON sends syntactically broken JSON and expects a typed 400.
func runMalformedJSON(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/malformed-json"}
	return postBody(ctx, baseURL, rep, "application/json", `{"arch": "grid", "edges": [[0,1`)
}

// runWrongContentType sends a non-JSON payload; the decoder rejects it with
// a typed 400 regardless of the declared type.
func runWrongContentType(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/wrong-content-type"}
	return postBody(ctx, baseURL, rep, "text/plain", "OPENQASM 2.0; include \"qelib1.inc\";")
}

// runUnknownField exploits DisallowUnknownFields: a typo'd option must fail
// loudly with a typed 400, never compile with silently-dropped settings.
func runUnknownField(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/unknown-field"}
	return postBody(ctx, baseURL, rep, "application/json", `{"arch":"grid","edges":[[0,1]],"strategyy":"greedy"}`)
}

// runMidRequestCancel abandons a compile in flight: the daemon must notice
// the dead client (request context cancellation), release the worker slot,
// and keep serving. No response is expected.
func runMidRequestCancel(ctx context.Context, baseURL string) NetworkReport {
	rep := NetworkReport{Fault: "network/mid-request-cancel"}
	cctx, cancel := context.WithCancel(ctx)
	body := `{"arch":"grid","edges":[[0,1],[1,2],[2,3],[0,2],[1,3],[0,3]]}`
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, baseURL+"/compile", strings.NewReader(body))
	if err != nil {
		cancel()
		rep.Err = err
		return rep
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, rerr := http.DefaultClient.Do(req)
		if rerr == nil {
			resp.Body.Close()
		}
	}()
	// Yank the request almost immediately — with some luck mid-queue or
	// mid-compile. Either way the daemon must survive it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done
	return rep
}

// postBody is the shared happy-path transport for scenarios whose hostility
// lives in the payload rather than the connection handling.
func postBody(ctx context.Context, baseURL string, rep NetworkReport, contentType, body string) NetworkReport {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/compile", strings.NewReader(body))
	if err != nil {
		rep.Err = err
		return rep
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		rep.Err = err
		return rep
	}
	defer resp.Body.Close()
	rep.Status = resp.StatusCode
	rep.Structured = decodeEnvelope(resp.Body)
	return rep
}
