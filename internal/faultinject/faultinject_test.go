package faultinject

import (
	"testing"

	ataqc "github.com/ata-pattern/ataqc"
)

// TestChaosSuite drives every injected fault through the public API and
// enforces the robustness contract case by case:
//
//   - no panic ever escapes;
//   - invalid inputs (WantErr) fail with a non-nil error;
//   - starved budgets with a structured fallback (WantDegraded) succeed
//     with Result.Degraded set and a non-empty reason;
//   - any successful compile — degraded or not — carries zero
//     error-severity verifier diagnostics.
func TestChaosSuite(t *testing.T) {
	for _, c := range AllCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			rep := Execute(c)
			if rep.Panicked {
				t.Fatalf("panic escaped the public API: %v\n%s", rep.Panic, rep.Stack)
			}
			if c.WantErr {
				if rep.Err == nil {
					t.Fatal("corrupt input was silently accepted")
				}
				t.Logf("rejected as designed: %v", rep.Err)
				return
			}
			if rep.Err != nil {
				t.Fatalf("healthy scenario failed: %v", rep.Err)
			}
			if c.WantDegraded {
				if rep.Result == nil || !rep.Result.Degraded() {
					t.Fatal("starved budget did not degrade to the ATA fallback")
				}
				if rep.Result.DegradeReason() == "" {
					t.Fatal("degraded result carries no reason")
				}
			}
			if rep.Result == nil {
				return // parse-only scenario with nothing to verify
			}
			for _, d := range rep.Result.Lint() {
				if d.Severity == "error" {
					t.Errorf("compiled circuit fails verification: %v", d)
				}
			}
		})
	}
}

// TestExecuteCatchesPanics proves the harness itself honors its boundary:
// a Run that panics yields a Report, not an unwound test process.
func TestExecuteCatchesPanics(t *testing.T) {
	rep := Execute(Case{Name: "meta/panic", Run: func() (*ataqc.Result, error) {
		panic("boom")
	}})
	if !rep.Panicked || rep.Panic != "boom" || len(rep.Stack) == 0 {
		t.Fatalf("harness lost the panic: %+v", rep)
	}
}
