package faultinject

import (
	"context"
	"math"
	"strings"
	"time"

	ataqc "github.com/ata-pattern/ataqc"
)

// CalibrationCases injects corrupted calibration data: non-finite and
// out-of-range rates, entries naming links the device does not have, and
// malformed JSON. Every corruption must be rejected before it can poison a
// noise-aware compile.
func CalibrationCases() []Case {
	lineCal := func(c *ataqc.Calibration) (*ataqc.Result, error) {
		_, err := ataqc.LineDevice(4).WithCalibration(c)
		return nil, err
	}
	twoQubit := func(rate float64) func() (*ataqc.Result, error) {
		return func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{
				TwoQubit: []ataqc.CouplingError{{Q0: 0, Q1: 1, Error: rate}},
			})
		}
	}
	parse := func(js string) func() (*ataqc.Result, error) {
		return func() (*ataqc.Result, error) {
			_, err := ataqc.ParseCalibration(strings.NewReader(js))
			return nil, err
		}
	}
	return []Case{
		{Name: "calibration/two-qubit-nan", Run: twoQubit(math.NaN()), WantErr: true},
		{Name: "calibration/two-qubit-pos-inf", Run: twoQubit(math.Inf(1)), WantErr: true},
		{Name: "calibration/two-qubit-neg-inf", Run: twoQubit(math.Inf(-1)), WantErr: true},
		{Name: "calibration/two-qubit-negative", Run: twoQubit(-0.25), WantErr: true},
		{Name: "calibration/two-qubit-certain-failure", Run: twoQubit(1.0), WantErr: true},
		{Name: "calibration/non-coupling-edge", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{
				TwoQubit: []ataqc.CouplingError{{Q0: 0, Q1: 3, Error: 0.01}},
			})
		}, WantErr: true},
		{Name: "calibration/negative-qubit-id", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{
				TwoQubit: []ataqc.CouplingError{{Q0: -2, Q1: 1, Error: 0.01}},
			})
		}, WantErr: true},
		{Name: "calibration/duplicate-coupling", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{
				TwoQubit: []ataqc.CouplingError{
					{Q0: 0, Q1: 1, Error: 0.01},
					{Q0: 1, Q1: 0, Error: 0.05},
				},
			})
		}, WantErr: true},
		{Name: "calibration/oversized-single-qubit-list", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{SingleQubit: []float64{0, 0, 0, 0, 0.1}})
		}, WantErr: true},
		{Name: "calibration/nan-readout", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{Readout: []float64{math.NaN()}})
		}, WantErr: true},
		{Name: "calibration/nan-idle-per-cycle", Run: func() (*ataqc.Result, error) {
			return lineCal(&ataqc.Calibration{IdlePerCycle: math.NaN()})
		}, WantErr: true},
		{Name: "calibration/garbage-json", Run: parse(`{{{{not json`), WantErr: true},
		{Name: "calibration/truncated-json", Run: parse(`{"twoQubit": [{"q0": 0, "q1": 1,`), WantErr: true},
		{Name: "calibration/unknown-field", Run: parse(`{"bogus": 1}`), WantErr: true},
		{Name: "calibration/wrong-shape", Run: parse(`{"twoQubit": 7}`), WantErr: true},
		// Control: a clean calibration must still feed a noise-aware compile.
		{Name: "calibration/clean-control", Run: func() (*ataqc.Result, error) {
			dev, err := ataqc.LineDevice(4).WithCalibration(&ataqc.Calibration{
				TwoQubit: []ataqc.CouplingError{
					{Q0: 0, Q1: 1, Error: 0.02},
					{Q0: 1, Q1: 2, Error: 0.01},
				},
				IdlePerCycle: 0.001,
			})
			if err != nil {
				return nil, err
			}
			return ataqc.Compile(dev, ataqc.RandomProblem(4, 0.6, 1), ataqc.Options{NoiseAware: true})
		}},
	}
}

// ProblemCases injects adversarial problem streams through ParseProblem and
// oversized problems through Compile.
func ProblemCases() []Case {
	parse := func(src string) func() (*ataqc.Result, error) {
		return func() (*ataqc.Result, error) {
			_, err := ataqc.ParseProblem(strings.NewReader(src))
			return nil, err
		}
	}
	return []Case{
		{Name: "problem/self-loop", Run: parse("3 3\n"), WantErr: true},
		{Name: "problem/negative-vertex", Run: parse("-1 2\n"), WantErr: true},
		{Name: "problem/non-numeric", Run: parse("zero one\n"), WantErr: true},
		{Name: "problem/missing-endpoint", Run: parse("4\n"), WantErr: true},
		{Name: "problem/empty-stream", Run: parse(""), WantErr: true},
		{Name: "problem/comments-only", Run: parse("# nothing here\n\n"), WantErr: true},
		{Name: "problem/allocation-bomb", Run: parse("0 999999999\n"), WantErr: true},
		{Name: "problem/wider-than-device", Run: func() (*ataqc.Result, error) {
			return ataqc.Compile(ataqc.LineDevice(4), ataqc.RandomProblem(8, 0.5, 1), ataqc.Options{})
		}, WantErr: true},
		{Name: "problem/unknown-strategy", Run: func() (*ataqc.Result, error) {
			return ataqc.Compile(ataqc.GridDevice(9), ataqc.RandomProblem(9, 0.4, 1), ataqc.Options{Strategy: "warp-drive"})
		}, WantErr: true},
		// Control: a well-formed stream parses and compiles cleanly.
		{Name: "problem/clean-control", Run: func() (*ataqc.Result, error) {
			p, err := ataqc.ParseProblem(strings.NewReader("0 1\n1 2\n# comment\n2 3\n"))
			if err != nil {
				return nil, err
			}
			return ataqc.Compile(ataqc.GridDevice(4), p, ataqc.Options{})
		}},
	}
}

// ArchitectureCases injects degenerate devices: disconnected coupling
// graphs, couplingless devices, and strategy/device mismatches.
func ArchitectureCases() []Case {
	return []Case{
		{Name: "arch/disconnected-islands", Run: func() (*ataqc.Result, error) {
			dev, err := ataqc.CustomDevice("islands", 4, [][2]int{{0, 1}, {2, 3}})
			if err != nil {
				return nil, err
			}
			p := ataqc.NewProblem(4)
			p.AddInteraction(0, 2) // spans the two islands
			return ataqc.Compile(dev, p, ataqc.Options{Strategy: ataqc.StrategyGreedy})
		}, WantErr: true},
		{Name: "arch/no-couplings", Run: func() (*ataqc.Result, error) {
			dev, err := ataqc.CustomDevice("mute", 3, nil)
			if err != nil {
				return nil, err
			}
			p := ataqc.NewProblem(3)
			p.AddInteraction(0, 1)
			return ataqc.Compile(dev, p, ataqc.Options{Strategy: ataqc.StrategyGreedy})
		}, WantErr: true},
		{Name: "arch/self-loop-coupling", Run: func() (*ataqc.Result, error) {
			_, err := ataqc.CustomDevice("loop", 3, [][2]int{{1, 1}})
			return nil, err
		}, WantErr: true},
		{Name: "arch/out-of-range-coupling", Run: func() (*ataqc.Result, error) {
			_, err := ataqc.CustomDevice("oob", 3, [][2]int{{0, 7}})
			return nil, err
		}, WantErr: true},
		{Name: "arch/zero-qubits", Run: func() (*ataqc.Result, error) {
			_, err := ataqc.CustomDevice("void", 0, nil)
			return nil, err
		}, WantErr: true},
		{Name: "arch/hybrid-on-irregular", Run: func() (*ataqc.Result, error) {
			dev, err := ataqc.CustomDevice("ring", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
			if err != nil {
				return nil, err
			}
			return ataqc.Compile(dev, ataqc.RandomProblem(4, 0.5, 1), ataqc.Options{})
		}, WantErr: true},
		// Control: greedy on the same irregular ring works.
		{Name: "arch/greedy-on-irregular-control", Run: func() (*ataqc.Result, error) {
			dev, err := ataqc.CustomDevice("ring", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
			if err != nil {
				return nil, err
			}
			return ataqc.Compile(dev, ataqc.RandomProblem(4, 0.5, 1), ataqc.Options{Strategy: ataqc.StrategyGreedy})
		}},
	}
}

// BudgetCases starves compiles of time and work budget. The governed
// strategies must degrade to a verifier-clean circuit where the structured
// ATA fallback exists, and fail with a typed error where it does not; a
// canceled context is always an error.
func BudgetCases() []Case {
	return []Case{
		{Name: "budget/expired-deadline-hybrid", Run: func() (*ataqc.Result, error) {
			return ataqc.Compile(ataqc.GridDevice(64), ataqc.RandomProblem(64, 0.5, 3), ataqc.Options{
				Deadline: time.Nanosecond,
			})
		}, WantDegraded: true},
		{Name: "budget/one-work-unit-hybrid", Run: func() (*ataqc.Result, error) {
			return ataqc.Compile(ataqc.GridDevice(36), ataqc.RandomProblem(36, 0.4, 5), ataqc.Options{
				MaxNodes: 1,
			})
		}, WantDegraded: true},
		{Name: "budget/one-work-unit-noise-aware", Run: func() (*ataqc.Result, error) {
			dev := ataqc.HeavyHexDevice(27).WithSyntheticNoise(9)
			return ataqc.Compile(dev, ataqc.RandomProblem(27, 0.4, 5), ataqc.Options{
				MaxNodes:   1,
				NoiseAware: true,
			})
		}, WantDegraded: true},
		{Name: "budget/one-work-unit-greedy-irregular", Run: func() (*ataqc.Result, error) {
			// A chordal irregular device has no structured ATA fallback: the
			// budget must surface as a typed error, never a hang or panic.
			dev, err := ataqc.CustomDevice("chord-6", 6, [][2]int{
				{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 3},
			})
			if err != nil {
				return nil, err
			}
			return ataqc.Compile(dev, ataqc.RandomProblem(6, 0.6, 2), ataqc.Options{
				Strategy: ataqc.StrategyGreedy,
				MaxNodes: 1,
			})
		}, WantErr: true},
		{Name: "budget/canceled-context-compile", Run: func() (*ataqc.Result, error) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return ataqc.CompileContext(ctx, ataqc.GridDevice(36), ataqc.RandomProblem(36, 0.4, 5), ataqc.Options{})
		}, WantErr: true},
		{Name: "budget/canceled-context-solver", Run: func() (*ataqc.Result, error) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := ataqc.OptimalDepthContext(ctx, ataqc.LineDevice(7), ataqc.RandomProblem(7, 1, 1), 0)
			return nil, err
		}, WantErr: true},
		// Control: the same workloads unbounded compile without degradation.
		{Name: "budget/unbounded-control", Run: func() (*ataqc.Result, error) {
			return ataqc.Compile(ataqc.GridDevice(36), ataqc.RandomProblem(36, 0.4, 5), ataqc.Options{})
		}},
	}
}
