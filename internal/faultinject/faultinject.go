// Package faultinject is a chaos harness for the compiler's robustness
// contract: for any hostile input — corrupted calibrations, adversarial
// problem files, degenerate architectures, starved resource budgets — a
// compile must either return a typed, diagnosable error or produce a
// (possibly degraded) circuit that passes every error-severity verifier
// analyzer. Panics escaping the public API are always a bug.
//
// The package is pure library plus a test suite; it injects faults through
// the public ataqc surface only, so it exercises exactly what a user can
// reach.
package faultinject

import (
	"runtime/debug"

	ataqc "github.com/ata-pattern/ataqc"
)

// Case is one fault-injection scenario. Run performs a full compile (or a
// parse that feeds one) against a hostile input and returns whatever the
// public API returned.
type Case struct {
	// Name identifies the scenario, grouped as "injector/variant".
	Name string
	// Run executes the scenario. It may return a nil Result with a nil
	// error only for parse-rejection cases where there is nothing to
	// compile; compile cases return the Result for verification.
	Run func() (*ataqc.Result, error)
	// WantErr marks scenarios whose input is outright invalid: the run
	// must fail with an error (a silently-accepted corrupt input is a
	// contract violation, not a pass).
	WantErr bool
	// WantDegraded marks starved-budget scenarios where the structured ATA
	// fallback exists: the run must succeed AND report Result.Degraded.
	WantDegraded bool
}

// Report is the outcome of executing one Case under the panic boundary.
type Report struct {
	Case   string
	Result *ataqc.Result
	Err    error
	// Panicked is set when Run let a panic escape, with the recovered
	// value and stack; this is unconditionally a failure.
	Panicked bool
	Panic    any
	Stack    []byte
}

// Execute runs one case, converting an escaped panic into a Report instead
// of unwinding into the caller.
func Execute(c Case) (rep Report) {
	rep.Case = c.Name
	defer func() {
		if r := recover(); r != nil {
			rep.Panicked = true
			rep.Panic = r
			rep.Stack = debug.Stack()
		}
	}()
	rep.Result, rep.Err = c.Run()
	return rep
}

// AllCases returns every scenario from every injector group.
func AllCases() []Case {
	var all []Case
	all = append(all, CalibrationCases()...)
	all = append(all, ProblemCases()...)
	all = append(all, ArchitectureCases()...)
	all = append(all, BudgetCases()...)
	return all
}
