package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
)

// ExportRegion materialises the structural cache entry for (a, r) —
// computing it on miss, exactly as a compile would — as a persistable
// record. The warm sweeper serialises these so a fresh daemon's pattern
// cache starts populated.
func (c *PatternCache) ExportRegion(a *arch.Arch, r arch.Region) *cachestore.PatternRecord {
	ri := c.structural(a, r)
	return &cachestore.PatternRecord{
		Region:   r,
		Norm:     ri.norm,
		Units:    ri.units,
		Qubits:   ri.qubits,
		InRegion: ri.inRegion,
		SnakeSeg: ri.snakeSeg,
		SnakeOK:  ri.snakeOK,
	}
}

// PreloadRegion installs a persisted structural record for the
// architecture with fingerprint fp. The record's slices are adopted
// directly (cached slices are read-only by contract), and a racing or
// pre-existing entry for the same key wins — preloading never clobbers
// a computed entry.
func (c *PatternCache) PreloadRegion(fp uint64, rec *cachestore.PatternRecord) {
	c.put(pcKey{fp: fp, r: rec.Region}, &regionInfo{
		norm:     rec.Norm,
		units:    rec.Units,
		qubits:   rec.Qubits,
		inRegion: rec.InRegion,
		snakeSeg: rec.SnakeSeg,
		snakeOK:  rec.SnakeOK,
	})
}
