// Package swapnet implements the paper's structured all-to-all (ATA)
// SWAP-network patterns: the linear 1xUnit pattern (Fig 6/7), the 2D-grid
// 2xUnit bipartite pattern (Fig 8/9) and full grid solution (§3.1), the
// Sycamore solution (§3.2.1), the hexagon solution (§3.2.2), and the IBM
// heavy-hex two-pass longest-path solution (§5.1).
//
// Every pattern is resumable: it starts from the *current* logical-to-
// physical mapping, emits program gates only for edges still in the want
// set (skipping the rest, §5.2), can be confined to a Region (§6.3 range
// detection), and stops as soon as its scope is exhausted. This one
// property serves the clique solution, the sparse-circuit adaptation, and
// the hybrid compiler's ATA prediction.
package swapnet

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// EdgeSet is a mutable set of logical problem edges (the gates still to be
// scheduled — the paper's candidate gate list).
type EdgeSet struct {
	m map[graph.Edge]struct{}
}

// NewEdgeSet returns the edge set of g.
func NewEdgeSet(g *graph.Graph) *EdgeSet {
	s := &EdgeSet{m: make(map[graph.Edge]struct{}, g.M())}
	for _, e := range g.Edges() {
		s.m[e] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s *EdgeSet) Has(e graph.Edge) bool { _, ok := s.m[e]; return ok }

// Remove deletes e, reporting whether it was present.
func (s *EdgeSet) Remove(e graph.Edge) bool {
	if _, ok := s.m[e]; !ok {
		return false
	}
	delete(s.m, e)
	return true
}

// Len returns the number of remaining edges.
func (s *EdgeSet) Len() int { return len(s.m) }

// Empty reports whether no edges remain.
func (s *EdgeSet) Empty() bool { return len(s.m) == 0 }

// Edges returns the remaining edges in unspecified order.
func (s *EdgeSet) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(s.m))
	//vet:ignore maprange documented unspecified order; callers sort or fold order-independently (core.detectRegions)
	for e := range s.m {
		out = append(out, e)
	}
	return out
}

// Clone returns an independent copy.
func (s *EdgeSet) Clone() *EdgeSet {
	c := &EdgeSet{m: make(map[graph.Edge]struct{}, len(s.m))}
	//vet:ignore maprange map-to-map copy, order-independent
	for e := range s.m {
		c.m[e] = struct{}{}
	}
	return c
}

// PhysGate is a program gate scheduled on a physical pair. Fused gates are
// the unified gate+SWAP of the structured patterns (the mapping swap is
// implied and already applied to the State).
type PhysGate struct {
	P, Q  int
	Tag   graph.Edge
	Fused bool
}

// Step is one pattern cycle: a compute layer and zero or more SWAP layers
// executed after it. Swap layers are already applied to the State when the
// step is emitted.
type Step struct {
	Compute []PhysGate
	Swaps   [][]graph.Edge
	// ParallelSwaps marks that the first swap layer is qubit-disjoint from
	// the compute layer and executes in the same cycle — the linear
	// pattern's rounds put the unified gate+SWAPs and the plain SWAPs of
	// one parity side by side (both are 3 CX deep).
	ParallelSwaps bool
}

// Depth returns the step's contribution to cycle depth: one cycle if any
// compute happens, plus one per non-empty swap layer (the first swap layer
// is free when ParallelSwaps is set and a compute layer exists).
func (s Step) Depth() int {
	d := 0
	if len(s.Compute) > 0 {
		d++
	}
	for i, l := range s.Swaps {
		if len(l) == 0 {
			continue
		}
		if i == 0 && s.ParallelSwaps && len(s.Compute) > 0 {
			continue
		}
		d++
	}
	return d
}

// EmitFunc consumes pattern steps.
type EmitFunc func(Step)

// State is the mutable execution state a pattern advances: the placement of
// logical qubits and the remaining wanted edges.
type State struct {
	A    *arch.Arch
	L2P  []int // logical -> physical
	P2L  []int // physical -> logical; -1 for empty slots
	Want *EdgeSet
}

// ValidateMapping checks that l2p is an injection of logical qubits into
// the physical qubits of a, returning a descriptive error. The State
// constructors reserve panics for the same violation because their callers
// are compiler-internal; user-supplied mappings should be screened here at
// the input boundary instead.
func ValidateMapping(a *arch.Arch, l2p []int) error {
	if len(l2p) > a.N() {
		return fmt.Errorf("swapnet: mapping places %d logical qubits but %s has %d physical", len(l2p), a.Name, a.N())
	}
	seen := make([]int, a.N())
	for i := range seen {
		seen[i] = -1
	}
	for l, p := range l2p {
		if p < 0 || p >= a.N() {
			return fmt.Errorf("swapnet: mapping sends logical %d to invalid physical %d (device has %d qubits)", l, p, a.N())
		}
		if seen[p] != -1 {
			return fmt.Errorf("swapnet: mapping sends both logical %d and %d to physical %d", seen[p], l, p)
		}
		seen[p] = l
	}
	return nil
}

// NewState returns a state over architecture a with nLogical qubits placed
// by initial (identity when nil) and the edges of problem wanted.
func NewState(a *arch.Arch, nLogical int, initial []int, problem *graph.Graph) *State {
	if nLogical > a.N() {
		panic(fmt.Sprintf("swapnet: %d logical qubits exceed %d physical", nLogical, a.N()))
	}
	l2p := make([]int, nLogical)
	if initial == nil {
		for i := range l2p {
			l2p[i] = i
		}
	} else {
		copy(l2p, initial)
	}
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		if p < 0 || p >= a.N() || p2l[p] != -1 {
			panic(fmt.Sprintf("swapnet: invalid mapping %d->%d", l, p))
		}
		p2l[p] = l
	}
	return &State{A: a, L2P: l2p, P2L: p2l, Want: NewEdgeSet(problem)}
}

// NewStateFromMapping returns a state resuming from an arbitrary
// logical-to-physical mapping and an explicit remaining want set — the
// hybrid compiler's entry point when it branches from a greedy checkpoint
// into ATA prediction or materialisation (§6.3).
func NewStateFromMapping(a *arch.Arch, l2p []int, want *EdgeSet) *State {
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	cp := append([]int(nil), l2p...)
	for l, p := range cp {
		if p < 0 || p >= a.N() || p2l[p] != -1 {
			panic(fmt.Sprintf("swapnet: invalid mapping %d->%d", l, p))
		}
		p2l[p] = l
	}
	return &State{A: a, L2P: cp, P2L: p2l, Want: want}
}

// adopt replaces st's mutable contents with o's. The cached grid pattern
// uses it to keep the winning clone's final state instead of replaying the
// winner's swaps onto st a second time; o must not be used afterwards.
func (st *State) adopt(o *State) {
	st.L2P, st.P2L, st.Want = o.L2P, o.P2L, o.Want
}

// Clone returns a deep copy (used by the predictor).
func (st *State) Clone() *State {
	c := &State{A: st.A, Want: st.Want.Clone()}
	c.L2P = append([]int(nil), st.L2P...)
	c.P2L = append([]int(nil), st.P2L...)
	return c
}

// WantedPhys returns the wanted logical edge currently residing on physical
// pair (p, q), if any.
func (st *State) WantedPhys(p, q int) (graph.Edge, bool) {
	lp, lq := st.P2L[p], st.P2L[q]
	if lp < 0 || lq < 0 {
		return graph.Edge{}, false
	}
	e := graph.NewEdge(lp, lq)
	return e, st.Want.Has(e)
}

// ApplySwap exchanges the logical occupants of physical p and q.
func (st *State) ApplySwap(p, q int) {
	lp, lq := st.P2L[p], st.P2L[q]
	st.P2L[p], st.P2L[q] = lq, lp
	if lp >= 0 {
		st.L2P[lp] = q
	}
	if lq >= 0 {
		st.L2P[lq] = p
	}
}

// scope tracks the subset of wanted edges a pattern phase is responsible
// for, so phases terminate as soon as their own work is done even while the
// global want set still holds edges for other regions or phases.
type scope struct {
	rel map[graph.Edge]struct{}
}

// newScope collects the wanted edges whose both endpoints currently reside
// on the given physical qubits.
func newScope(st *State, phys []int) *scope {
	sc := &scope{rel: make(map[graph.Edge]struct{})}
	logicals := make([]int, 0, len(phys))
	for _, p := range phys {
		if l := st.P2L[p]; l >= 0 {
			logicals = append(logicals, l)
		}
	}
	for i := 0; i < len(logicals); i++ {
		for j := i + 1; j < len(logicals); j++ {
			e := graph.NewEdge(logicals[i], logicals[j])
			if st.Want.Has(e) {
				sc.rel[e] = struct{}{}
			}
		}
	}
	return sc
}

// newCrossScope collects wanted edges with one endpoint on physA and the
// other on physB.
func newCrossScope(st *State, physA, physB []int) *scope {
	sc := &scope{rel: make(map[graph.Edge]struct{})}
	var la, lb []int
	for _, p := range physA {
		if l := st.P2L[p]; l >= 0 {
			la = append(la, l)
		}
	}
	for _, p := range physB {
		if l := st.P2L[p]; l >= 0 {
			lb = append(lb, l)
		}
	}
	for _, x := range la {
		for _, y := range lb {
			if x == y {
				continue
			}
			e := graph.NewEdge(x, y)
			if st.Want.Has(e) {
				sc.rel[e] = struct{}{}
			}
		}
	}
	return sc
}

func (sc *scope) computed(e graph.Edge) { delete(sc.rel, e) }
func (sc *scope) done() bool            { return len(sc.rel) == 0 }

// merge absorbs another scope's relevant set.
func (sc *scope) merge(o *scope) {
	//vet:ignore maprange map-to-map copy, order-independent
	for e := range o.rel {
		sc.rel[e] = struct{}{}
	}
}

// emitCompute records a wanted gate on (p,q): removes it from Want, updates
// the scope, and returns the PhysGate. Call only after WantedPhys reported
// true.
func (st *State) emitCompute(sc *scope, p, q int, tag graph.Edge, fused bool) PhysGate {
	st.Want.Remove(tag)
	if sc != nil {
		sc.computed(tag)
	}
	return PhysGate{P: p, Q: q, Tag: tag, Fused: fused}
}
