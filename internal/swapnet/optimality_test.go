package swapnet

import (
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/solver"
)

// TestLinearPatternNearOptimal compares the linear pattern (in the solver's
// cost model: separate gate and SWAP layers) against the depth-optimal A*
// solver on small line cliques. The generalised pattern is within one SWAP
// layer of optimal — the pattern the paper derived from the same solver.
func TestLinearPatternNearOptimal(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		a := arch.Line(n)
		p := graph.Complete(n)
		opt, err := solver.Solve(a, p, nil, solver.Options{})
		if err != nil {
			t.Fatalf("line-%d: %v", n, err)
		}
		st := NewState(a, n, nil, p)
		cycles := 0
		linear(st, [][]int{a.Path}, linearOpts{unfused: true}, func(s Step) { cycles += s.Depth() })
		if !st.Want.Empty() {
			t.Fatalf("line-%d: pattern incomplete", n)
		}
		if cycles > opt.Depth+1 {
			t.Errorf("line-%d: pattern depth %d vs optimal %d", n, cycles, opt.Depth)
		}
		if cycles < opt.Depth {
			t.Errorf("line-%d: pattern depth %d below proven optimum %d (model bug)", n, cycles, opt.Depth)
		}
	}
}

// TestFusedPatternBeatsUnfused verifies that the unified gate+SWAP variant
// strictly reduces both cycle count and CX count.
func TestFusedPatternBeatsUnfused(t *testing.T) {
	a := arch.Line(6)
	p := graph.Complete(6)

	run := func(unfused bool) Counter {
		st := NewState(a, 6, nil, p)
		var c Counter
		linear(st, [][]int{a.Path}, linearOpts{unfused: unfused}, c.Emit)
		if !st.Want.Empty() {
			t.Fatal("pattern incomplete")
		}
		return c
	}
	fused, unfused := run(false), run(true)
	if fused.Cycles >= unfused.Cycles {
		t.Fatalf("fused cycles %d not below unfused %d", fused.Cycles, unfused.Cycles)
	}
	if fused.CX >= unfused.CX {
		t.Fatalf("fused CX %d not below unfused %d", fused.CX, unfused.CX)
	}
}

// TestGridPatternMatchesSolverOnBipartite2x2 checks the grid bipartite
// pattern achieves the solver's proven optimum on the smallest instance.
func TestGridPatternMatchesSolverOnBipartite2x2(t *testing.T) {
	a := arch.Grid(2, 2)
	p := graph.New(4)
	for i := 0; i < 2; i++ {
		for j := 2; j < 4; j++ {
			p.AddEdge(i, j)
		}
	}
	opt, err := solver.Solve(a, p, nil, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(a, 4, nil, p)
	sc := newScope(st, []int{0, 1, 2, 3})
	cycles := 0
	bipartiteGrid(st, a.Units, [][2]int{{0, 1}}, sc, func(s Step) { cycles += s.Depth() })
	if !st.Want.Empty() {
		t.Fatal("bipartite pattern incomplete")
	}
	if cycles != opt.Depth {
		t.Fatalf("pattern %d cycles vs optimal %d", cycles, opt.Depth)
	}
}

// TestGridMergeOptimization verifies Appendix A Optimisation II: the grid
// ATA covers cliques with no residual intra pass and cycle depth near
// 1.5n (the paper's 25% saving over the separate-phase variant).
func TestGridMergeOptimization(t *testing.T) {
	for _, side := range []int{4, 6, 8} {
		a := arch.Grid(side, side)
		n := a.N()
		st := NewState(a, n, nil, graph.Complete(n))
		var c Counter
		if err := ATA(st, arch.FullRegion(a), c.Emit); err != nil {
			t.Fatal(err)
		}
		if !st.Want.Empty() {
			t.Fatalf("side %d: incomplete", side)
		}
		ratio := float64(c.Cycles) / float64(n)
		if ratio > 2.4 {
			t.Errorf("side %d: depth/n = %.2f, want <= 2.4 with merging", side, ratio)
		}
	}
}
