package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// regionUnits returns the unit segments of a region: for each unit index in
// [U0,U1], the physical qubits at positions [P0,P1] (clipped to the unit
// length).
func regionUnits(a *arch.Arch, r arch.Region) [][]int {
	var units [][]int
	for u := r.U0; u <= r.U1 && u < len(a.Units); u++ {
		unit := a.Units[u]
		p1 := r.P1
		if p1 >= len(unit) {
			p1 = len(unit) - 1
		}
		if r.P0 > p1 {
			continue
		}
		units = append(units, unit[r.P0:p1+1])
	}
	return units
}

// gridATA realises all-to-all interaction on a 2D grid region (§3.1 with
// the Appendix A merging optimisation): the linear pattern is replayed at
// unit granularity — R rounds of alternating-parity row pairings, where
// each pairing runs the 2xUnit bipartite pattern (Fig 8/9) and then
// exchanges the two rows through one vertical SWAP layer (Fig 5b).
//
// Intra-unit pairs need no separate phase: the bipartite pattern's
// counter-rotation performs exactly the 1xUnit odd-even swap dynamics
// inside every row, so each intra-row SWAP doubles as a unified program
// gate whenever its occupants are a wanted pair (Appendix A Optimisation
// II — "the intra-unit SWAP layers in the 2xUnit solution are the same as
// the 1xUnit solution"). Unit contents are invariant throughout (bipartite
// swaps stay within rows; exchanges move whole rows), so across the R
// rounds every group both meets every other group and fully mixes
// internally. A residual intra pass covers any pairs a short region leaves
// behind; on cliques it stays empty (tested).
//
// Total cycle depth is O(R*C) = O(n), about 25% below the separate-phase
// variant — the Appendix A depth saving.
//
// The cache parameter (nil = compute directly) memoises the region's unit
// segments so repeated predictions over the same region skip the
// decomposition.
func gridATA(st *State, region arch.Region, emit EmitFunc, c *PatternCache) {
	units := cachedRegionUnits(st.A, region, c)
	if len(units) == 0 {
		return
	}
	if len(units) == 1 {
		linear(st, units, linearOpts{}, emit)
		return
	}
	var all []int
	for _, u := range units {
		all = append(all, u...)
	}
	sc := newScope(st, all)
	R := len(units)
	for t := 0; t < R; t++ {
		if sc.done() {
			return
		}
		var pairs [][2]int
		for u := t % 2; u+1 < R; u += 2 {
			pairs = append(pairs, [2]int{u, u + 1})
		}
		if len(pairs) == 0 {
			continue
		}
		bipartiteGrid(st, units, pairs, sc, emit)
		if sc.done() || t == R-1 {
			break
		}
		// Unit exchange: one vertical SWAP layer per paired rows.
		var layer []graph.Edge
		for _, pr := range pairs {
			a, b := units[pr[0]], units[pr[1]]
			for i := 0; i < len(a) && i < len(b); i++ {
				st.ApplySwap(a[i], b[i])
				layer = append(layer, graph.NewEdge(a[i], b[i]))
			}
		}
		emit(Step{Swaps: [][]graph.Edge{layer}})
	}
	if !sc.done() {
		// Residual intra-unit pairs (short regions can finish the
		// unit-level rounds before every row fully mixes).
		linear(st, cachedRegionUnits(st.A, region, c), linearOpts{sc: sc}, emit)
	}
}

// cachedRegionUnits returns the region's unit segments through the cache
// when one is supplied. The cached slices alias Arch.Units and are
// read-only.
func cachedRegionUnits(a *arch.Arch, region arch.Region, c *PatternCache) [][]int {
	if c != nil {
		return c.structural(a, region).units
	}
	return regionUnits(a, region)
}

// bipartiteGrid runs the 2xUnit bipartite pattern of Fig 8/9 on every row
// pair in `pairs` simultaneously, for C cycles (C = row length): each cycle
// computes on all vertical pairs (A_i, B_i), then row A swaps its
// even-or-odd adjacent positions while row B swaps the opposite parity —
// the two rows counter-rotate so that after C cycles every (A, B) logical
// pair has been vertically aligned exactly once.
//
// All SWAPs stay within their rows, so unit contents are preserved. The
// intra-row SWAPs follow the 1xUnit odd-even dynamics, so a SWAP whose
// occupants are themselves a wanted pair becomes a unified program gate —
// the Appendix A merging optimisation that lets gridATA skip the separate
// intra-unit phase.
//
// The vertical compute layer and the intra-row swap layer touch the same
// qubits, so a step contributes up to two cycles (compute, then swaps).
func bipartiteGrid(st *State, units [][]int, pairs [][2]int, sc *scope, emit EmitFunc) {
	C := 0
	for _, pr := range pairs {
		if l := len(units[pr[0]]); l > C {
			C = l
		}
	}
	for cyc := 0; cyc < C; cyc++ {
		if sc.done() {
			return
		}
		start := cyc % 2
		var step Step
		var swapStep Step
		var swapLayer []graph.Edge
		rotate := func(row []int, parity int) {
			for i := parity; i+1 < len(row); i += 2 {
				if tag, ok := st.WantedPhys(row[i], row[i+1]); ok {
					swapStep.Compute = append(swapStep.Compute, st.emitCompute(sc, row[i], row[i+1], tag, true))
					st.ApplySwap(row[i], row[i+1])
					continue
				}
				st.ApplySwap(row[i], row[i+1])
				swapLayer = append(swapLayer, graph.NewEdge(row[i], row[i+1]))
			}
		}
		for _, pr := range pairs {
			rowA, rowB := units[pr[0]], units[pr[1]]
			m := len(rowA)
			if len(rowB) < m {
				m = len(rowB)
			}
			for i := 0; i < m; i++ {
				if tag, ok := st.WantedPhys(rowA[i], rowB[i]); ok {
					step.Compute = append(step.Compute, st.emitCompute(sc, rowA[i], rowB[i], tag, false))
				}
			}
			if cyc == C-1 {
				continue // final alignment needs no further rotation
			}
			rotate(rowA, start)
			rotate(rowB, 1-start)
		}
		if len(step.Compute) > 0 {
			emit(step)
		}
		if len(swapLayer) > 0 {
			swapStep.Swaps = append(swapStep.Swaps, swapLayer)
			swapStep.ParallelSwaps = true // fused ops and plain swaps share the layer
		}
		if len(swapStep.Compute) > 0 || len(swapStep.Swaps) > 0 {
			emit(swapStep)
		}
	}
}

// snakeATA runs the linear pattern over the architecture's Hamiltonian
// snake — the simple O(n)-depth fallback the paper's structured solutions
// are compared against (and the solution used for the 3D lattice, whose
// hierarchical decomposition §3.2 only sketches). The snake restricted to
// the region rectangle stays contiguous only for some region shapes; when
// the restriction breaks, the pattern falls back to the full snake. A
// non-nil cache memoises the restriction per (arch, region).
func snakeATA(st *State, region arch.Region, emit EmitFunc, c *PatternCache) {
	snake := st.A.Snake
	if snake == nil {
		return
	}
	if !region.UsesPath && len(st.A.Units) > 0 {
		var seg []int
		var ok bool
		if c != nil {
			ri := c.structural(st.A, region)
			seg, ok = ri.snakeSeg, ri.snakeOK
		} else {
			seg, ok = restrictSnake(st.A, region)
		}
		if ok {
			linear(st, [][]int{seg}, linearOpts{}, emit)
			return
		}
	}
	linear(st, [][]int{snake}, linearOpts{}, emit)
}
