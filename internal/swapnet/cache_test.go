package swapnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

func cacheTestArchs() []*arch.Arch {
	return []*arch.Arch{
		arch.Line(10),
		arch.Grid(4, 4),
		arch.Grid(5, 3),
		arch.Sycamore(4, 4),
		arch.Hexagon(4, 4),
		arch.HeavyHex(2, 8),
		arch.Lattice3D(3, 3, 3),
	}
}

// randomRegion returns the enclosing region of a random non-empty subset of
// physical qubits — the same construction detectRegions uses, so the
// sampled regions are exactly the shapes the compiler feeds the cache.
func randomRegion(rng *rand.Rand, a *arch.Arch) arch.Region {
	k := 2 + rng.Intn(a.N()-1)
	return arch.EnclosingRegion(a, rng.Perm(a.N())[:k])
}

// TestCachedATAMatchesUncached is the cache's core correctness property:
// for 200 random (arch, region, mapping, want) quadruples, ATAWithCache
// emits exactly the step sequence of the uncached ATA and leaves the same
// final mapping — on the cold pass (structural miss, dual-prediction
// record/replay) and on the warm pass (choice hit, single pattern run)
// alike.
func TestCachedATAMatchesUncached(t *testing.T) {
	archs := cacheTestArchs()
	rng := rand.New(rand.NewSource(7))
	cache := NewPatternCache(0)
	for trial := 0; trial < 200; trial++ {
		a := archs[rng.Intn(len(archs))]
		nLogical := 2 + rng.Intn(a.N()-1)
		p := graph.Gnp(nLogical, 0.2+0.6*rng.Float64(), rng)
		initial := randomMapping(rng, nLogical, a.N())
		region := randomRegion(rng, a)

		ref := NewState(a, nLogical, initial, p)
		var refRec stepRecorder
		if err := ATA(ref, region, refRec.emit); err != nil {
			t.Fatalf("trial %d (%s): uncached: %v", trial, a.Name, err)
		}
		for pass, label := range []string{"cold", "warm"} {
			st := NewState(a, nLogical, initial, p)
			var rec stepRecorder
			if err := ATAWithCache(st, region, rec.emit, cache); err != nil {
				t.Fatalf("trial %d (%s) %s: %v", trial, a.Name, label, err)
			}
			if !reflect.DeepEqual(refRec.steps, rec.steps) {
				t.Fatalf("trial %d (%s) %s pass: step sequence diverges from uncached ATA (%d vs %d steps)",
					trial, a.Name, label, len(rec.steps), len(refRec.steps))
			}
			if !reflect.DeepEqual(ref.L2P, st.L2P) || ref.Want.Len() != st.Want.Len() {
				t.Fatalf("trial %d (%s) %s pass: final state diverges", trial, a.Name, label)
			}
			_ = pass
		}
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Fatal("warm passes produced no cache hits")
	}
	if s.Entries == 0 || s.Entries > cache.Capacity() {
		t.Fatalf("entry count %d out of bounds (cap %d)", s.Entries, cache.Capacity())
	}
}

// TestCacheNormalizeRegionMatches pins the memoised NormalizeRegion against
// the package-level function for random regions on every family.
func TestCacheNormalizeRegionMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cache := NewPatternCache(0)
	for _, a := range cacheTestArchs() {
		for i := 0; i < 50; i++ {
			r := randomRegion(rng, a)
			if got, want := cache.NormalizeRegion(a, r), NormalizeRegion(a, r); got != want {
				t.Fatalf("%s region %+v: cached %+v != direct %+v", a.Name, r, got, want)
			}
		}
	}
}

// TestCacheConcurrentHits hammers one shared cache from 16 goroutines, each
// replaying the same workload and checking every emission against an
// uncached reference. Run under -race in CI, this is the witness that
// concurrent get/put/structural/choice traffic is safe and never serves a
// wrong entry.
func TestCacheConcurrentHits(t *testing.T) {
	type workItem struct {
		a       *arch.Arch
		p       *graph.Graph
		n       int
		initial []int
		region  arch.Region
		steps   []Step
	}
	archs := cacheTestArchs()
	rng := rand.New(rand.NewSource(23))
	var items []workItem
	for i := 0; i < 24; i++ {
		a := archs[rng.Intn(len(archs))]
		n := 2 + rng.Intn(a.N()-1)
		p := graph.Gnp(n, 0.3+0.5*rng.Float64(), rng)
		initial := randomMapping(rng, n, a.N())
		region := randomRegion(rng, a)
		st := NewState(a, n, initial, p)
		var rec stepRecorder
		if err := ATA(st, region, rec.emit); err != nil {
			t.Fatal(err)
		}
		items = append(items, workItem{a: a, p: p, n: n, initial: initial, region: region, steps: rec.steps})
	}
	cache := NewPatternCache(0)
	const goroutines = 16
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger starting offsets so goroutines collide on different
			// keys at different times.
			for rep := 0; rep < 4; rep++ {
				for k := range items {
					it := items[(k+g)%len(items)]
					st := NewState(it.a, it.n, it.initial, it.p)
					var rec stepRecorder
					if err := ATAWithCache(st, it.region, rec.emit, cache); err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(it.steps, rec.steps) {
						errs <- fmt.Errorf("goroutine %d: cached emission diverges on %s", g, it.a.Name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Fatal("concurrent replays produced no cache hits")
	}
}

// TestCacheEvictionAtCap fills a tiny cache far past its capacity and
// checks the LRU bound holds, evictions are counted, and an evicted entry
// is transparently recomputed (same value, not a stale or missing one).
func TestCacheEvictionAtCap(t *testing.T) {
	a := arch.Grid(8, 8)
	cache := NewPatternCache(16) // 1 entry per shard
	if cache.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", cache.Capacity())
	}
	var regions []arch.Region
	for u0 := 0; u0 < 8; u0++ {
		for u1 := u0; u1 < 8; u1++ {
			regions = append(regions, arch.Region{U0: u0, U1: u1, P0: 0, P1: 7})
		}
	}
	first := cache.structural(a, regions[0])
	for _, r := range regions {
		cache.structural(a, r)
	}
	s := cache.Stats()
	if s.Entries > cache.Capacity() {
		t.Fatalf("entries %d exceed capacity %d", s.Entries, cache.Capacity())
	}
	if s.Evictions == 0 {
		t.Fatalf("no evictions after inserting %d entries into a %d-entry cache", len(regions), cache.Capacity())
	}
	// Whether regions[0] survived or was evicted, a re-request must return
	// the same geometry.
	again := cache.structural(a, regions[0])
	if !reflect.DeepEqual(first.norm, again.norm) || !reflect.DeepEqual(first.units, again.units) {
		t.Fatal("recomputed entry after eviction diverges from the original")
	}
}

// TestCacheCapacityDistribution is the regression test for the shard
// rounding fix: requested capacities must be distributed exactly across
// the shards (first capacity%pcShardCount shards take the extra entry),
// never rounded down per shard, with every shard keeping at least one
// slot. Before the fix a 100-entry cache silently enforced 96 and
// Capacity lied about sub-shard-count requests.
func TestCacheCapacityDistribution(t *testing.T) {
	cases := []struct {
		requested, want int
	}{
		{1, pcShardCount},  // raised to one slot per shard
		{5, pcShardCount},  // likewise
		{15, pcShardCount}, // likewise
		{16, 16},
		{17, 17},   // one shard gets the extra entry
		{100, 100}, // 6*16=96 before the fix
		{0, DefaultCacheCapacity},
	}
	for _, tc := range cases {
		c := NewPatternCache(tc.requested)
		if got := c.Capacity(); got != tc.want {
			t.Errorf("NewPatternCache(%d).Capacity() = %d, want %d", tc.requested, got, tc.want)
		}
		total, maxShard, minShard := 0, 0, int(^uint(0)>>1)
		for _, n := range c.shardCap {
			total += n
			if n > maxShard {
				maxShard = n
			}
			if n < minShard {
				minShard = n
			}
		}
		if total != tc.want {
			t.Errorf("capacity %d: shard caps sum to %d, want %d", tc.requested, total, tc.want)
		}
		if minShard < 1 {
			t.Errorf("capacity %d: a shard has cap %d (< 1)", tc.requested, minShard)
		}
		if maxShard-minShard > 1 {
			t.Errorf("capacity %d: uneven distribution, shard caps span [%d, %d]", tc.requested, minShard, maxShard)
		}
	}

	// The enforced bound is the reported one: overfill a 17-entry cache and
	// check the entry count never exceeds Capacity.
	c := NewPatternCache(17)
	for i := 0; i < 400; i++ {
		c.put(pcKey{fp: uint64(i), r: arch.Region{U0: i % 7, U1: i % 7}}, i)
	}
	if s := c.Stats(); s.Entries > c.Capacity() {
		t.Fatalf("entries %d exceed reported capacity %d", s.Entries, c.Capacity())
	}
}

// TestCacheDuplicatePutKeepsFirst: racing inserts of the same key must
// converge on one entry (the first), never grow duplicates.
func TestCacheDuplicatePutKeepsFirst(t *testing.T) {
	cache := NewPatternCache(0)
	k := pcKey{fp: 99, r: arch.Region{U0: 1, U1: 2}}
	cache.put(k, "first")
	cache.put(k, "second")
	v, ok := cache.get(k)
	if !ok || v.(string) != "first" {
		t.Fatalf("got (%v, %v), want the first inserted value", v, ok)
	}
	if s := cache.Stats(); s.Entries != 1 {
		t.Fatalf("duplicate put grew the cache: %d entries", s.Entries)
	}
}
