package swapnet

import "github.com/ata-pattern/ataqc/internal/graph"

// linearOpts configures the linear (1xUnit) pattern.
type linearOpts struct {
	// rounds overrides the number of rounds (default: longest line length).
	rounds int
	// preserveDynamics forces every round's SWAP layer to execute even in
	// the final round, so the pattern's exact permutation effect (order
	// reversal after m rounds, Fig 6) is preserved. Composite patterns that
	// rely on the reversal for unit exchange (Sycamore) set this.
	preserveDynamics bool
	// sc is the termination scope; when nil, a scope over all line qubits
	// is built internally.
	sc *scope
	// extraLayer, if non-nil, is invoked after each round's step has been
	// emitted, so it can emit additional follow-up steps (heavy-hex
	// path-to-off-path gate layers).
	extraLayer func(round int)
	// unfused emits the program gate and the SWAP of a round as separate
	// layers instead of one unified gate — the paper's solver cost model
	// (§4), used when comparing pattern depth against the optimal solver.
	unfused bool
}

// linear runs the paper's linear pattern (Fig 6/7) over one or more
// disjoint physical lines in lockstep: round k performs, on every pair of
// adjacent line positions with parity k%2, the program gate (if the logical
// pair is wanted) unified with a SWAP. After m rounds (m = longest line)
// every pair of logical qubits sharing a line has been adjacent exactly
// once and each line's occupant order is reversed.
//
// Gates on pairs that are not wanted degrade to plain SWAPs; rounds whose
// compute layer is empty still swap (the dynamics are what guarantee
// coverage). The pattern stops early when the scope is exhausted.
func linear(st *State, lines [][]int, opts linearOpts, emit EmitFunc) {
	maxLen := 0
	for _, ln := range lines {
		if len(ln) > maxLen {
			maxLen = len(ln)
		}
	}
	if maxLen < 2 {
		return
	}
	rounds := opts.rounds
	if rounds == 0 {
		rounds = maxLen
	}
	sc := opts.sc
	if sc == nil {
		var all []int
		for _, ln := range lines {
			all = append(all, ln...)
		}
		sc = newScope(st, all)
	}
	for k := 0; k < rounds; k++ {
		if sc.done() {
			// Callers with an extraLayer merge its work into sc, so an
			// exhausted scope always means the whole phase is finished.
			return
		}
		var step Step
		var swapLayer []graph.Edge
		last := k == rounds-1 && !opts.preserveDynamics
		for _, ln := range lines {
			for i := k % 2; i+1 < len(ln); i += 2 {
				p, q := ln[i], ln[i+1]
				if tag, ok := st.WantedPhys(p, q); ok {
					if last {
						// Final round: no dynamics needed afterwards, so
						// emit a bare program gate and skip its SWAP.
						step.Compute = append(step.Compute, st.emitCompute(sc, p, q, tag, false))
						continue
					}
					if opts.unfused {
						step.Compute = append(step.Compute, st.emitCompute(sc, p, q, tag, false))
						st.ApplySwap(p, q)
						swapLayer = append(swapLayer, graph.NewEdge(p, q))
						continue
					}
					step.Compute = append(step.Compute, st.emitCompute(sc, p, q, tag, true))
					st.ApplySwap(p, q)
					continue
				}
				if last {
					continue
				}
				st.ApplySwap(p, q)
				swapLayer = append(swapLayer, graph.NewEdge(p, q))
			}
		}
		if len(swapLayer) > 0 {
			step.Swaps = append(step.Swaps, swapLayer)
			// All pairs of a round share parity, so the plain SWAPs are
			// qubit-disjoint from the unified gate+SWAPs: one cycle total
			// (in the unfused mode the gates genuinely precede the swaps).
			step.ParallelSwaps = !opts.unfused
		}
		if len(step.Compute) > 0 || len(step.Swaps) > 0 {
			emit(step)
		}
		if opts.extraLayer != nil {
			opts.extraLayer(k)
		}
	}
}
