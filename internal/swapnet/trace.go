package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// ATATraced is ATAWithCache wrapped in an "ata.region" span on tr (nil tr
// is exactly ATAWithCache): the span carries the region bounds up front
// and, once the pattern completes, the emitted step/cycle/gate counts plus
// the cache-lookup delta. The delta is read off the cache's global counters,
// so it is exact only when no other goroutine uses the cache concurrently —
// true for the materialisation and pure-ATA paths that call this.
func ATATraced(st *State, region arch.Region, emit EmitFunc, c *PatternCache, tr *obs.Trace, parent *obs.Span) error {
	if tr == nil {
		return ATAWithCache(st, region, emit, c)
	}
	sp := tr.StartSpan(parent, "ata.region", regionAttrs(region)...)
	var before CacheStats
	if c != nil {
		before = c.Stats()
	}
	var cnt Counter
	err := ATAWithCache(st, region, func(s Step) { cnt.Emit(s); emit(s) }, c)
	attrs := []obs.Attr{
		obs.Int("steps", cnt.Steps),
		obs.Int("cycles", cnt.Cycles),
		obs.Int("gates", cnt.Gates),
		obs.Int("fused", cnt.Fused),
		obs.Int("swaps", cnt.Swaps),
		obs.Int("cx", cnt.CX),
	}
	if c != nil {
		after := c.Stats()
		attrs = append(attrs,
			obs.I64("cache_hits", after.Hits-before.Hits),
			obs.I64("cache_misses", after.Misses-before.Misses))
	}
	sp.SetAttrs(attrs...)
	sp.End()
	return err
}

func regionAttrs(r arch.Region) []obs.Attr {
	if r.UsesPath {
		return []obs.Attr{obs.Bool("path", true), obs.Int("i0", r.I0), obs.Int("i1", r.I1)}
	}
	return []obs.Attr{
		obs.Int("u0", r.U0), obs.Int("u1", r.U1),
		obs.Int("p0", r.P0), obs.Int("p1", r.P1),
	}
}
