package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
)

// sycamoreATA realises all-to-all interaction on a Sycamore region
// (§3.2.1). A rotated lattice has no intra-row couplings, but every two
// adjacent rows induce a zig-zag path over their 2C qubits (Fig 10b/c), so
// one row-pairing can run the 1xUnit linear pattern over that path —
// covering all pairs among the two rows' occupants (bipartite and
// intra-unit at once) — and, because the linear pattern reverses the
// occupant order and the zig-zag alternates rows, the pairing finishes with
// the two rows' contents exactly exchanged. The pairing therefore plays
// both the "interaction" and the "SWAP" role of the unit-level
// transposition network, and R alternating-parity rounds complete the
// clique in O(R*C) cycles.
//
// The per-pairing linear run keeps preserveDynamics set: the row-exchange
// invariant is what makes later rounds cover the remaining group pairs, so
// the final swap layer of each pairing cannot be elided while other rounds
// remain.
func sycamoreATA(st *State, region arch.Region, emit EmitFunc) {
	a := st.A
	if region.U1 <= region.U0 {
		return
	}
	// Collect all region qubits for the global scope.
	var all []int
	for u := region.U0; u <= region.U1; u++ {
		unit := a.Units[u]
		p1 := region.P1
		if p1 >= len(unit) {
			p1 = len(unit) - 1
		}
		all = append(all, unit[region.P0:p1+1]...)
	}
	sc := newScope(st, all)
	R := region.U1 - region.U0 + 1
	for t := 0; t < R; t++ {
		if sc.done() {
			return
		}
		last := t == R-1
		var lines [][]int
		for u := region.U0 + t%2; u+1 <= region.U1; u += 2 {
			lines = append(lines, zigZagSegment(a, u, region.P0, region.P1))
		}
		if len(lines) == 0 {
			continue
		}
		linear(st, lines, linearOpts{sc: sc, preserveDynamics: !last}, emit)
	}
}

// zigZagSegment returns the zig-zag path over rows (u, u+1) restricted to
// columns [p0, p1]. All consecutive entries are coupled: the zig-zag only
// uses vertical and diagonal couplings within the column range.
func zigZagSegment(a *arch.Arch, u, p0, p1 int) []int {
	top, bottom := a.Units[u], a.Units[u+1]
	if p1 >= len(top) {
		p1 = len(top) - 1
	}
	if p1 >= len(bottom) {
		p1 = len(bottom) - 1
	}
	path := make([]int, 0, 2*(p1-p0+1))
	if u%2 == 0 {
		for c := p0; c <= p1; c++ {
			path = append(path, bottom[c], top[c])
		}
	} else {
		for c := p0; c <= p1; c++ {
			path = append(path, top[c], bottom[c])
		}
	}
	return path
}
