package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// maxHeavyHexPasses bounds the number of linear-pattern passes before the
// pattern falls back to explicit routing for straggler pairs. The paper's
// Appendix C argues two passes suffice for the clique; the extra allowance
// absorbs reconstruction slack for skewed regions, and the fallback makes
// the pattern unconditionally complete.
const maxHeavyHexPasses = 4

// heavyHexATA realises all-to-all interaction on a heavy-hex region (§5.1,
// Fig 16). The architecture is compiled through its longest path: the
// 1xUnit linear pattern runs along the path (path-2-path interactions),
// and after every round an extra compute layer lets each off-path bridge
// qubit interact with whatever occupant is currently passing its anchor
// positions (path-2-off-path). A second pass first swaps every off-path
// occupant onto the path — the fresh occupants then stream past everyone
// else, covering off-path-2-off-path and the remaining path-2-off-path
// interactions. Additional passes and, ultimately, explicit routing mop up
// anything a skewed region leaves behind.
func heavyHexATA(st *State, region arch.Region, emit EmitFunc) {
	a := st.A
	i0, i1 := region.I0, region.I1
	if i1 >= len(a.Path) {
		i1 = len(a.Path) - 1
	}
	if i0 < 0 {
		i0 = 0
	}
	if i1-i0+1 < 2 {
		return
	}
	path := a.Path[i0 : i1+1]

	// Off-path qubits whose anchors fall inside the interval.
	type offQ struct {
		q       int
		anchors []int // indices into `path` (region-local)
	}
	var offs []offQ
	for _, op := range a.OffPath {
		var local []int
		for _, gi := range op.PathAnchors {
			if gi >= i0 && gi <= i1 {
				local = append(local, gi-i0)
			}
		}
		if len(local) > 0 {
			offs = append(offs, offQ{q: op.Qubit, anchors: local})
		}
	}

	all := append([]int(nil), path...)
	for _, o := range offs {
		all = append(all, o.q)
	}
	sc := newScope(st, all)

	// offLayer schedules, after each linear round, the wanted gates between
	// off-path qubits and the occupants currently at their anchors.
	offLayer := func(int) {
		var step Step
		busy := make(map[int]bool)
		for _, o := range offs {
			if busy[o.q] {
				continue
			}
			for _, ai := range o.anchors {
				p := path[ai]
				if busy[p] {
					continue
				}
				if tag, ok := st.WantedPhys(o.q, p); ok {
					step.Compute = append(step.Compute, st.emitCompute(sc, o.q, p, tag, false))
					busy[o.q], busy[p] = true, true
					break
				}
			}
		}
		if len(step.Compute) > 0 {
			emit(step)
		}
	}

	for pass := 0; pass < maxHeavyHexPasses && !sc.done(); pass++ {
		if pass > 0 {
			// Promote off-path occupants onto the path in one SWAP layer.
			var layer []graph.Edge
			busy := make(map[int]bool)
			for _, o := range offs {
				for _, ai := range o.anchors {
					p := path[ai]
					if busy[p] {
						continue
					}
					st.ApplySwap(o.q, p)
					layer = append(layer, graph.NewEdge(o.q, p))
					busy[p] = true
					break
				}
			}
			if len(layer) > 0 {
				emit(Step{Swaps: [][]graph.Edge{layer}})
			}
		}
		linear(st, [][]int{path}, linearOpts{
			sc:               sc,
			preserveDynamics: true,
			extraLayer:       offLayer,
		}, emit)
	}

	if !sc.done() {
		routeStragglers(st, sc, all, emit)
	}
}

// routeStragglers explicitly routes every remaining wanted pair inside the
// region: one endpoint walks along a shortest coupling path to the other,
// computes, and the walk's SWAPs are emitted one step at a time. It is the
// completeness net under the structured passes; tests track that cliques
// never reach it.
func routeStragglers(st *State, sc *scope, regionQubits []int, emit EmitFunc) {
	inRegion := make(map[int]bool, len(regionQubits))
	for _, q := range regionQubits {
		inRegion[q] = true
	}
	for !sc.done() {
		// Pick any remaining edge deterministically.
		var tag graph.Edge
		found := false
		//vet:ignore maprange explicit min-scan, order-independent
		for e := range sc.rel {
			if !found || e.U < tag.U || (e.U == tag.U && e.V < tag.V) {
				tag, found = e, true
			}
		}
		if !found {
			return
		}
		if !st.Want.Has(tag) {
			sc.computed(tag)
			continue
		}
		pu, pv := st.L2P[tag.U], st.L2P[tag.V]
		// BFS within the region from pu to pv.
		prev := map[int]int{pu: pu}
		queue := []int{pu}
		for len(queue) > 0 {
			if _, ok := prev[pv]; ok {
				break
			}
			v := queue[0]
			queue = queue[1:]
			for _, w := range st.A.G.Neighbors(v) {
				if !inRegion[w] {
					continue
				}
				if _, seen := prev[w]; !seen {
					prev[w] = v
					queue = append(queue, w)
				}
			}
		}
		if _, ok := prev[pv]; !ok {
			// Unroutable inside the region (should not happen: regions are
			// connected path intervals); drop from scope to avoid livelock.
			sc.computed(tag)
			continue
		}
		// Reconstruct path pv -> pu and walk tag.U toward tag.V.
		var walk []int
		for v := pv; v != pu; v = prev[v] {
			walk = append(walk, v)
		}
		walk = append(walk, pu)
		// walk[len-1] = pu ... walk[0] = pv; move occupant of pu forward.
		for i := len(walk) - 1; i >= 2; i-- {
			st.ApplySwap(walk[i], walk[i-1])
			emit(Step{Swaps: [][]graph.Edge{{graph.NewEdge(walk[i], walk[i-1])}}})
		}
		p, q := walk[1], walk[0]
		if t2, ok := st.WantedPhys(p, q); ok {
			emit(Step{Compute: []PhysGate{st.emitCompute(sc, p, q, t2, false)}})
		} else {
			sc.computed(tag)
		}
	}
}
