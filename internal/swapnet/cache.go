package swapnet

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"github.com/ata-pattern/ataqc/internal/arch"
)

// PatternCache memoises the region-derived structures the ATA patterns
// recompute on every invocation: normalised regions, the unit segments of a
// region, the snake restriction to a region, and — for grids — which of the
// two candidate patterns (unit-structured vs snake) wins for a given
// (region, mapping, want) state, together with its step/depth counts. The
// hybrid compiler's prediction loop evaluates many checkpoints over the same
// few active regions, and the winning candidate is re-materialised after
// selection from the exact state it was scored at, so these entries see real
// hits.
//
// Entries are keyed by the architecture's structural fingerprint rather than
// the *Arch pointer, so independently constructed but identical devices
// (common in benchmarks) share them. The cache is safe for concurrent use:
// it is sharded, each shard guarded by a mutex around a size-capped LRU.
// Cached slices are read-only by contract — the patterns only ever read
// them, and the choice replay emits freshly allocated steps.
type PatternCache struct {
	shards   [pcShardCount]pcShard
	shardCap [pcShardCount]int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

const (
	pcShardCount = 16
	// DefaultCacheCapacity bounds the total entry count of a PatternCache
	// built with NewPatternCache(0). Structural entries are one per (arch,
	// region) and tiny; choice entries are one per distinct prediction
	// state. 4096 comfortably covers a large compilation while keeping the
	// worst-case footprint in the low megabytes.
	DefaultCacheCapacity = 4096
)

type pcShard struct {
	mu  sync.Mutex
	m   map[pcKey]*list.Element
	lru list.List // front = most recent; values are *pcNode
}

// pcKey identifies a cache entry. Structural entries (region-derived
// geometry) leave occ/want zero; grid-choice entries add the state hash of
// the occupants and wanted edges the patterns' behaviour depends on.
type pcKey struct {
	fp     uint64
	r      arch.Region
	choice bool
	occ    uint64
	want   uint64
}

type pcNode struct {
	key pcKey
	val any
}

// regionInfo is a structural entry: everything about a region that depends
// only on the architecture and region bounds, not on the mapping.
type regionInfo struct {
	norm arch.Region
	// units are the region's unit segments (regionUnits of norm); nil for
	// path-encoded regions.
	units [][]int
	// qubits flattens the region's physical qubits; inRegion marks them by
	// physical id (len == a.N()).
	qubits   []int
	inRegion []bool
	// snakeSeg is the architecture snake restricted to the region, and
	// snakeOK whether that restriction is contiguous (snakeATA falls back
	// to the full snake when it is not — which widens the state the grid
	// pattern choice depends on, see stateHash).
	snakeSeg []int
	snakeOK  bool
}

// gridChoice is a choice entry: which grid pattern won the dual prediction
// from a given state, and the counts it was scored with.
type gridChoice struct {
	snake  bool
	counts Counter
}

// NewPatternCache returns a cache bounded to capacity entries (0 or
// negative selects DefaultCacheCapacity). Capacity is distributed
// exactly across the shards — the first capacity%pcShardCount shards
// take the extra entry — rather than rounded down per shard, so a
// 100-entry cache holds 100 entries, not 96. Every shard keeps at
// least one slot: requests below pcShardCount are raised to one entry
// per shard, and Capacity reports the actual total.
func NewPatternCache(capacity int) *PatternCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per, extra := capacity/pcShardCount, capacity%pcShardCount
	c := &PatternCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[pcKey]*list.Element)
		c.shardCap[i] = per
		if i < extra {
			c.shardCap[i]++
		}
		if c.shardCap[i] < 1 {
			c.shardCap[i] = 1
		}
	}
	return c
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats returns the cache counters and current entry count.
func (c *PatternCache) Stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}

// Capacity returns the total entry bound actually enforced.
func (c *PatternCache) Capacity() int {
	total := 0
	for _, n := range c.shardCap {
		total += n
	}
	return total
}

func (k pcKey) shard() uint64 {
	h := k.fp
	h ^= uint64(k.r.U0)<<1 ^ uint64(k.r.U1)<<9 ^ uint64(k.r.P0)<<17 ^ uint64(k.r.P1)<<25
	h ^= uint64(k.r.I0)<<33 ^ uint64(k.r.I1)<<41
	if k.r.UsesPath {
		h ^= 0xdead
	}
	if k.choice {
		h ^= 0xbeef
	}
	h ^= k.occ ^ k.want
	h ^= h >> 29
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h % pcShardCount
}

// get returns the cached value for k, bumping it to most-recent.
func (c *PatternCache) get(k pcKey) (any, bool) {
	sh := &c.shards[k.shard()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[k]; ok {
		sh.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*pcNode).val, true
	}
	c.misses.Add(1)
	return nil, false
}

// put stores v under k, evicting the least-recently-used entry of the shard
// at the cap. A racing duplicate insert keeps the first value.
func (c *PatternCache) put(k pcKey, v any) {
	idx := k.shard()
	sh := &c.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[k]; ok {
		return
	}
	for sh.lru.Len() >= c.shardCap[idx] {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		sh.lru.Remove(oldest)
		delete(sh.m, oldest.Value.(*pcNode).key)
		c.evictions.Add(1)
	}
	sh.m[k] = sh.lru.PushFront(&pcNode{key: k, val: v})
}

// structural returns the memoised region geometry, computing it on miss.
func (c *PatternCache) structural(a *arch.Arch, r arch.Region) *regionInfo {
	k := pcKey{fp: a.Fingerprint(), r: r}
	if v, ok := c.get(k); ok {
		return v.(*regionInfo)
	}
	ri := newRegionInfo(a, r)
	c.put(k, ri)
	return ri
}

func newRegionInfo(a *arch.Arch, r arch.Region) *regionInfo {
	ri := &regionInfo{norm: NormalizeRegion(a, r)}
	ri.inRegion = make([]bool, a.N())
	if ri.norm.UsesPath || len(a.Units) == 0 {
		i0, i1 := ri.norm.I0, ri.norm.I1
		if i1 >= len(a.Path) {
			i1 = len(a.Path) - 1
		}
		if i0 >= 0 && i0 <= i1 {
			ri.qubits = a.Path[i0 : i1+1]
		}
	} else {
		ri.units = regionUnits(a, ri.norm)
		for _, u := range ri.units {
			ri.qubits = append(ri.qubits, u...)
		}
	}
	for _, q := range ri.qubits {
		ri.inRegion[q] = true
	}
	if a.Snake != nil && !ri.norm.UsesPath && len(a.Units) > 0 {
		ri.snakeSeg, ri.snakeOK = restrictSnake(a, ri.norm)
	}
	return ri
}

// restrictSnake computes the architecture snake confined to a region
// rectangle and whether the restriction is contiguous (couplings survive) —
// the precondition for snakeATA to stay inside the region.
func restrictSnake(a *arch.Arch, region arch.Region) ([]int, bool) {
	unitOf, posOf := a.UnitIndex()
	var seg []int
	for _, q := range a.Snake {
		u, p := unitOf[q], posOf[q]
		if u >= region.U0 && u <= region.U1 && p >= region.P0 && p <= region.P1 {
			seg = append(seg, q)
		}
	}
	for i := 0; i+1 < len(seg); i++ {
		if !a.G.HasEdge(seg[i], seg[i+1]) {
			return seg, false
		}
	}
	return seg, len(seg) >= 2
}

// NormalizeRegion is the memoised form of the package-level NormalizeRegion.
func (c *PatternCache) NormalizeRegion(a *arch.Arch, r arch.Region) arch.Region {
	return c.structural(a, r).norm
}

// stateHash digests the part of st the grid pattern choice depends on: the
// occupants of the dependency qubits and the wanted edges among them. When
// the snake restriction is contiguous both candidate patterns stay inside
// the region, so only region-local state matters; otherwise snakeATA falls
// back to the full snake and the whole mapping and want set participate.
// The want digest XORs per-edge hashes so it is independent of the edge
// set's iteration order.
func (ri *regionInfo) stateHash(st *State) (occ, want uint64) {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	local := ri.snakeOK || st.A.Snake == nil
	if local {
		for _, q := range ri.qubits {
			w(q)
			w(st.P2L[q])
		}
	} else {
		for q, l := range st.P2L {
			w(q)
			w(l)
		}
	}
	occ = h.Sum64()
	//vet:ignore maprange per-edge hashes are XOR-combined, order-independent
	for e := range st.Want.m {
		if local {
			pu, pv := st.L2P[e.U], st.L2P[e.V]
			if !ri.inRegion[pu] || !ri.inRegion[pv] {
				continue
			}
		}
		eh := fnv.New64a()
		u := uint64(e.U)<<32 | uint64(uint32(e.V))
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		eh.Write(buf[:])
		want ^= eh.Sum64()
	}
	return occ, want
}

// choiceGet looks up a memoised grid pattern choice.
func (c *PatternCache) choiceGet(fp uint64, r arch.Region, occ, want uint64) (*gridChoice, bool) {
	v, ok := c.get(pcKey{fp: fp, r: r, choice: true, occ: occ, want: want})
	if !ok {
		return nil, false
	}
	return v.(*gridChoice), true
}

// choicePut stores a grid pattern choice.
func (c *PatternCache) choicePut(fp uint64, r arch.Region, occ, want uint64, ch *gridChoice) {
	c.put(pcKey{fp: fp, r: r, choice: true, occ: occ, want: want}, ch)
}

// stepRecorder buffers emitted steps (the patterns allocate every step's
// slices fresh, so retaining them is safe) while counting them.
type stepRecorder struct {
	steps []Step
	c     Counter
}

func (r *stepRecorder) emit(s Step) {
	r.steps = append(r.steps, s)
	r.c.Emit(s)
}
