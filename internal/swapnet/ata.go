package swapnet

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
)

// HasATA reports whether the architecture family has a structured
// all-to-all pattern.
func HasATA(a *arch.Arch) bool {
	switch a.Kind {
	case arch.KindLine, arch.KindGrid, arch.KindSycamore, arch.KindHexagon,
		arch.KindHeavyHex, arch.KindLattice3D:
		return true
	}
	return false
}

// NormalizeRegion grows a detected region to the minimum shape its
// family's pattern can operate on (e.g. a single Sycamore row has no
// couplings at all, so sycamore regions span at least two rows).
func NormalizeRegion(a *arch.Arch, r arch.Region) arch.Region {
	if r.UsesPath {
		if r.I1 <= r.I0 { // widen degenerate intervals
			if r.I1 < len(a.Path)-1 {
				r.I1++
			} else if r.I0 > 0 {
				r.I0--
			}
		}
		return r
	}
	grow := func() {
		if r.U1 < len(a.Units)-1 {
			r.U1++
		} else if r.U0 > 0 {
			r.U0--
		}
	}
	switch a.Kind {
	case arch.KindSycamore:
		if r.U1 == r.U0 {
			grow()
		}
	case arch.KindGrid, arch.KindHexagon, arch.KindLattice3D:
		if r.U1 == r.U0 && r.P1 == r.P0 {
			// A single cell cannot host a 2-qubit gate; widen a unit.
			if r.P1 < unitLen(a)-1 {
				r.P1++
			} else if r.P0 > 0 {
				r.P0--
			}
		}
	}
	return r
}

func unitLen(a *arch.Arch) int {
	m := 0
	for _, u := range a.Units {
		if len(u) > m {
			m = len(u)
		}
	}
	return m
}

// ATA advances st through the architecture's structured all-to-all pattern
// restricted to region, emitting every scheduled step, until all wanted
// edges residing in the region are computed (or the pattern completes).
// The worst case — a clique over the region — finishes in O(|region|)
// cycles; sparser want sets finish earlier because empty compute layers and
// exhausted phases are skipped (§5.2).
func ATA(st *State, region arch.Region, emit EmitFunc) error {
	region = NormalizeRegion(st.A, region)
	switch st.A.Kind {
	case arch.KindLine:
		i0, i1 := region.I0, region.I1
		if !region.UsesPath {
			// A line's units encoding has one unit; positions are path slots.
			i0, i1 = region.P0, region.P1
		}
		if i1 >= len(st.A.Path) {
			i1 = len(st.A.Path) - 1
		}
		linear(st, [][]int{st.A.Path[i0 : i1+1]}, linearOpts{}, emit)
	case arch.KindGrid:
		// The unit-structured pattern and the boustrophedon snake are both
		// linear-depth on a grid; which constant wins depends on the region
		// shape and want density (the snake is all unified ops, the
		// structured one parallelises bipartite layers). Predict both on
		// clones and emit the cheaper (cycle depth, then CX).
		var cg, cs Counter
		stG := st.Clone()
		gridATA(stG, region, cg.Emit)
		stS := st.Clone()
		snakeATA(stS, region, cs.Emit)
		if stS.Want.Empty() && (!stG.Want.Empty() || cs.Cycles < cg.Cycles ||
			(cs.Cycles == cg.Cycles && cs.CX < cg.CX)) {
			snakeATA(st, region, emit)
		} else {
			gridATA(st, region, emit)
		}
	case arch.KindSycamore:
		sycamoreATA(st, region, emit)
	case arch.KindHexagon:
		hexagonATA(st, region, emit)
	case arch.KindHeavyHex:
		heavyHexATA(st, region, emit)
	case arch.KindLattice3D:
		snakeATA(st, region, emit)
	default:
		return fmt.Errorf("swapnet: no structured pattern for %s architecture", st.A.Kind)
	}
	return nil
}

// GridStructuredATA runs the unit-structured grid pattern (§3.1 + App. A)
// unconditionally — exported for the A2 ablation, which compares it against
// SnakeATA; ATA itself picks the cheaper of the two per region.
func GridStructuredATA(st *State, region arch.Region, emit EmitFunc) {
	gridATA(st, NormalizeRegion(st.A, region), emit)
}

// SnakeATA runs the linear pattern over the architecture's Hamiltonian
// snake (grid, line, 3D lattice) — exported for the A2 ablation.
func SnakeATA(st *State, region arch.Region, emit EmitFunc) {
	snakeATA(st, NormalizeRegion(st.A, region), emit)
}

// Counter is an EmitFunc sink that accumulates the metrics the hybrid
// compiler's predictor needs (§6.3) without materialising a circuit.
type Counter struct {
	Cycles int // pattern cycle depth (Step.Depth sums)
	Steps  int // steps emitted
	Gates  int // program gates scheduled
	Fused  int // of which unified with a SWAP
	Swaps  int // bare SWAP gates
	CX     int // total CX after decomposition
}

// Emit implements EmitFunc.
func (c *Counter) Emit(s Step) {
	c.Steps++
	c.Cycles += s.Depth()
	for _, g := range s.Compute {
		c.Gates++
		if g.Fused {
			c.Fused++
			c.CX += 3
		} else {
			c.CX += 2
		}
	}
	for _, l := range s.Swaps {
		c.Swaps += len(l)
		c.CX += 3 * len(l)
	}
}
