package swapnet

import (
	"fmt"

	"github.com/ata-pattern/ataqc/internal/arch"
)

// HasATA reports whether the architecture family has a structured
// all-to-all pattern.
func HasATA(a *arch.Arch) bool {
	switch a.Kind {
	case arch.KindLine, arch.KindGrid, arch.KindSycamore, arch.KindHexagon,
		arch.KindHeavyHex, arch.KindLattice3D:
		return true
	}
	return false
}

// NormalizeRegion grows a detected region to the minimum shape its
// family's pattern can operate on (e.g. a single Sycamore row has no
// couplings at all, so sycamore regions span at least two rows).
func NormalizeRegion(a *arch.Arch, r arch.Region) arch.Region {
	if r.UsesPath {
		if r.I1 <= r.I0 { // widen degenerate intervals
			if r.I1 < len(a.Path)-1 {
				r.I1++
			} else if r.I0 > 0 {
				r.I0--
			}
		}
		return r
	}
	grow := func() {
		if r.U1 < len(a.Units)-1 {
			r.U1++
		} else if r.U0 > 0 {
			r.U0--
		}
	}
	switch a.Kind {
	case arch.KindSycamore:
		if r.U1 == r.U0 {
			grow()
		}
	case arch.KindGrid, arch.KindHexagon, arch.KindLattice3D:
		if r.U1 == r.U0 && r.P1 == r.P0 {
			// A single cell cannot host a 2-qubit gate; widen a unit.
			if r.P1 < unitLen(a)-1 {
				r.P1++
			} else if r.P0 > 0 {
				r.P0--
			}
		}
	}
	return r
}

func unitLen(a *arch.Arch) int {
	m := 0
	for _, u := range a.Units {
		if len(u) > m {
			m = len(u)
		}
	}
	return m
}

// ATA advances st through the architecture's structured all-to-all pattern
// restricted to region, emitting every scheduled step, until all wanted
// edges residing in the region are computed (or the pattern completes).
// The worst case — a clique over the region — finishes in O(|region|)
// cycles; sparser want sets finish earlier because empty compute layers and
// exhausted phases are skipped (§5.2).
func ATA(st *State, region arch.Region, emit EmitFunc) error {
	return ATAWithCache(st, region, emit, nil)
}

// ATAWithCache is ATA accelerated by a PatternCache: region geometry is
// memoised, and on grids the dual prediction (unit-structured vs snake) is
// run once per distinct (region, mapping, want) state — the clone runs'
// recorded steps are replayed for the winner instead of executing the
// pattern a third time, and a repeat invocation from the same state (the
// hybrid compiler re-materialises the winning candidate it already scored)
// runs only the winning pattern. The emitted step sequence is identical to
// ATA's for every input; a nil cache is exactly ATA.
func ATAWithCache(st *State, region arch.Region, emit EmitFunc, c *PatternCache) error {
	var ri *regionInfo
	if c != nil {
		ri = c.structural(st.A, region)
		region = ri.norm
	} else {
		region = NormalizeRegion(st.A, region)
	}
	switch st.A.Kind {
	case arch.KindLine:
		i0, i1 := region.I0, region.I1
		if !region.UsesPath {
			// A line's units encoding has one unit; positions are path slots.
			i0, i1 = region.P0, region.P1
		}
		if i1 >= len(st.A.Path) {
			i1 = len(st.A.Path) - 1
		}
		linear(st, [][]int{st.A.Path[i0 : i1+1]}, linearOpts{}, emit)
	case arch.KindGrid:
		// The unit-structured pattern and the boustrophedon snake are both
		// linear-depth on a grid; which constant wins depends on the region
		// shape and want density (the snake is all unified ops, the
		// structured one parallelises bipartite layers). Predict both on
		// clones and emit the cheaper (cycle depth, then CX).
		if c != nil {
			gridATACached(st, ri, emit, c)
			return nil
		}
		var cg, cs Counter
		stG := st.Clone()
		gridATA(stG, region, cg.Emit, nil)
		stS := st.Clone()
		snakeATA(stS, region, cs.Emit, nil)
		if snakeBeatsGrid(stG, stS, cg, cs) {
			snakeATA(st, region, emit, nil)
		} else {
			gridATA(st, region, emit, nil)
		}
	case arch.KindSycamore:
		sycamoreATA(st, region, emit)
	case arch.KindHexagon:
		hexagonATA(st, region, emit)
	case arch.KindHeavyHex:
		heavyHexATA(st, region, emit)
	case arch.KindLattice3D:
		snakeATA(st, region, emit, c)
	default:
		return fmt.Errorf("swapnet: no structured pattern for %s architecture", st.A.Kind)
	}
	return nil
}

// snakeBeatsGrid is the grid pattern selection rule: the snake wins only
// when it completed the region and is strictly cheaper (cycle depth, then
// CX) or the structured pattern left work behind.
func snakeBeatsGrid(stG, stS *State, cg, cs Counter) bool {
	return stS.Want.Empty() && (!stG.Want.Empty() || cs.Cycles < cg.Cycles ||
		(cs.Cycles == cg.Cycles && cs.CX < cg.CX))
}

// gridATACached runs the grid dual prediction through the cache: a choice
// hit executes only the winning pattern; a miss predicts both on clones
// (recording steps), adopts the winner's final state, replays its steps,
// and memoises the decision with its counts.
func gridATACached(st *State, ri *regionInfo, emit EmitFunc, c *PatternCache) {
	fp := st.A.Fingerprint()
	occ, want := ri.stateHash(st)
	if ch, ok := c.choiceGet(fp, ri.norm, occ, want); ok {
		if ch.snake {
			snakeATA(st, ri.norm, emit, c)
		} else {
			gridATA(st, ri.norm, emit, c)
		}
		return
	}
	stG := st.Clone()
	var rg stepRecorder
	gridATA(stG, ri.norm, rg.emit, c)
	stS := st.Clone()
	var rs stepRecorder
	snakeATA(stS, ri.norm, rs.emit, c)
	snake := snakeBeatsGrid(stG, stS, rg.c, rs.c)
	winner, winSteps := stG, rg.steps
	counts := rg.c
	if snake {
		winner, winSteps = stS, rs.steps
		counts = rs.c
	}
	st.adopt(winner)
	for _, s := range winSteps {
		emit(s)
	}
	c.choicePut(fp, ri.norm, occ, want, &gridChoice{snake: snake, counts: counts})
}

// GridStructuredATA runs the unit-structured grid pattern (§3.1 + App. A)
// unconditionally — exported for the A2 ablation, which compares it against
// SnakeATA; ATA itself picks the cheaper of the two per region.
func GridStructuredATA(st *State, region arch.Region, emit EmitFunc) {
	gridATA(st, NormalizeRegion(st.A, region), emit, nil)
}

// SnakeATA runs the linear pattern over the architecture's Hamiltonian
// snake (grid, line, 3D lattice) — exported for the A2 ablation.
func SnakeATA(st *State, region arch.Region, emit EmitFunc) {
	snakeATA(st, NormalizeRegion(st.A, region), emit, nil)
}

// Counter is an EmitFunc sink that accumulates the metrics the hybrid
// compiler's predictor needs (§6.3) without materialising a circuit.
type Counter struct {
	Cycles int // pattern cycle depth (Step.Depth sums)
	Steps  int // steps emitted
	Gates  int // program gates scheduled
	Fused  int // of which unified with a SWAP
	Swaps  int // bare SWAP gates
	CX     int // total CX after decomposition
}

// Emit implements EmitFunc.
func (c *Counter) Emit(s Step) {
	c.Steps++
	c.Cycles += s.Depth()
	for _, g := range s.Compute {
		c.Gates++
		if g.Fused {
			c.Fused++
			c.CX += 3
		} else {
			c.CX += 2
		}
	}
	for _, l := range s.Swaps {
		c.Swaps += len(l)
		c.CX += 3 * len(l)
	}
}
