package swapnet

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/ata-pattern/ataqc/internal/cachestore"
)

// TestExportPreloadRoundTrip: a structural entry exported from one
// cache, serialised through the cachestore codec, and preloaded into a
// fresh cache must hand back geometry identical to a cold computation —
// and the preloaded lookup must be a hit, not a recompute.
func TestExportPreloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, a := range cacheTestArchs() {
		for trial := 0; trial < 8; trial++ {
			r := randomRegion(rng, a)
			src := NewPatternCache(0)
			rec := src.ExportRegion(a, r)

			blob := cachestore.EncodePattern(rec)
			decoded, err := cachestore.DecodePattern(blob)
			if err != nil {
				t.Fatalf("%s region %+v: decode: %v", a.Name, r, err)
			}

			dst := NewPatternCache(0)
			dst.PreloadRegion(a.Fingerprint(), decoded)
			before := dst.Stats()
			got := dst.structural(a, r)
			after := dst.Stats()
			if after.Hits != before.Hits+1 {
				t.Fatalf("%s region %+v: preloaded entry was not a hit", a.Name, r)
			}

			want := newRegionInfo(a, r)
			if !reflect.DeepEqual(got.norm, want.norm) ||
				!reflect.DeepEqual(got.units, want.units) ||
				!reflect.DeepEqual(got.qubits, want.qubits) ||
				!reflect.DeepEqual(got.inRegion, want.inRegion) ||
				!reflect.DeepEqual(got.snakeSeg, want.snakeSeg) ||
				got.snakeOK != want.snakeOK {
				t.Fatalf("%s region %+v: preloaded geometry diverges from cold compute\n got %+v\nwant %+v",
					a.Name, r, got, want)
			}
		}
	}
}
