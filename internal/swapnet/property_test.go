package swapnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// randomMapping places n logical qubits on distinct random physical qubits.
func randomMapping(rng *rand.Rand, nLogical, nPhys int) []int {
	perm := rng.Perm(nPhys)
	return perm[:nLogical]
}

// TestATAPropertyRandomMappings: for random architectures, problem graphs
// and initial mappings, ATA always drains the want set and every emitted
// operation is legal. Gate legality (coupling, tags, coverage, mapping
// bookkeeping) is checked by the shared verify analyzers over the recorded
// circuit; only the per-step parallelism invariant — no qubit touched twice
// in one cycle — is swapnet-specific and stays here.
func TestATAPropertyRandomMappings(t *testing.T) {
	archs := []func() *arch.Arch{
		func() *arch.Arch { return arch.Line(10) },
		func() *arch.Arch { return arch.Grid(4, 4) },
		func() *arch.Arch { return arch.Sycamore(4, 4) },
		func() *arch.Arch { return arch.Hexagon(4, 4) },
		func() *arch.Arch { return arch.HeavyHex(2, 8) },
		func() *arch.Arch { return arch.Lattice3D(3, 3, 3) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := archs[rng.Intn(len(archs))]()
		if !HasATA(a) {
			// Every family above currently has a pattern; this guards the
			// matrix against future members that do not, instead of failing
			// with an opaque "no structured pattern" error.
			t.Logf("seed %d: skipping %s: no structured ATA pattern", seed, a.Name)
			return true
		}
		nLogical := 2 + rng.Intn(a.N()-1)
		p := graph.Gnp(nLogical, 0.2+0.6*rng.Float64(), rng)
		initial := randomMapping(rng, nLogical, a.N())
		st := NewState(a, nLogical, initial, p)
		ok := true
		c := circuit.New(a.N())
		emit := func(s Step) {
			used := map[int]bool{}
			for _, g := range s.Compute {
				if used[g.P] || used[g.Q] {
					ok = false
				}
				used[g.P], used[g.Q] = true, true
				if g.Fused {
					c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.GateZZSwap, Q0: g.P, Q1: g.Q, Angle: 1, Tag: g.Tag, Tagged: true})
				} else {
					c.Gates = append(c.Gates, circuit.NewZZ(g.P, g.Q, 1, g.Tag))
				}
			}
			for _, layer := range s.Swaps {
				lu := map[int]bool{}
				for _, e := range layer {
					if lu[e.U] || lu[e.V] {
						ok = false
					}
					lu[e.U], lu[e.V] = true, true
					c.Gates = append(c.Gates, circuit.NewSwap(e.U, e.V))
				}
			}
		}
		if err := ATA(st, arch.FullRegion(a), emit); err != nil {
			return false
		}
		// st.L2P is swapnet's own final-mapping claim; perm-soundness refolds
		// the emitted SWAPs and cross-checks it.
		pass := &verify.Pass{Circuit: c, Arch: a, Problem: p, Initial: initial,
			Final: append([]int(nil), st.L2P...)}
		if diags := verify.Run(pass, verify.ArchConformance, verify.PermSoundness, verify.Coverage); len(diags) > 0 {
			t.Logf("seed %d: %v", seed, diags)
			return false
		}
		return ok && st.Want.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestATALinearDepthProperty: clique cycle depth stays within a constant
// factor of n across sizes — the worst-case linear bound of §3.
func TestATALinearDepthProperty(t *testing.T) {
	type mk struct {
		name  string
		build func(side int) *arch.Arch
		slack float64
	}
	families := []mk{
		{"grid", func(s int) *arch.Arch { return arch.Grid(s, s) }, 3.2},
		{"sycamore", func(s int) *arch.Arch { return arch.Sycamore(s, s) }, 3.2},
		{"hexagon", func(s int) *arch.Arch { return arch.Hexagon(s, s) }, 3.6},
	}
	for _, fam := range families {
		var ratios []float64
		for _, side := range []int{4, 6, 8} {
			a := fam.build(side)
			n := a.N()
			st := NewState(a, n, nil, graph.Complete(n))
			var c Counter
			if err := ATA(st, arch.FullRegion(a), c.Emit); err != nil {
				t.Fatal(err)
			}
			if !st.Want.Empty() {
				t.Fatalf("%s side %d incomplete", fam.name, side)
			}
			ratios = append(ratios, float64(c.Cycles)/float64(n))
		}
		for i, r := range ratios {
			if r > fam.slack {
				t.Errorf("%s: depth/n ratio %.2f at size %d exceeds %v", fam.name, r, []int{4, 6, 8}[i], fam.slack)
			}
		}
		// Linearity: the ratio must not grow with size (allow 25% wobble).
		if ratios[2] > ratios[0]*1.25+0.4 {
			t.Errorf("%s: ratio grows with size: %v", fam.name, ratios)
		}
	}
}

// TestHeavyHexLinearDepthProperty mirrors the bound for the two-pass path
// solution, which has a larger constant.
func TestHeavyHexLinearDepthProperty(t *testing.T) {
	var ratios []float64
	sizes := [][2]int{{2, 8}, {3, 12}, {4, 16}}
	for _, sz := range sizes {
		a := arch.HeavyHex(sz[0], sz[1])
		n := a.N()
		st := NewState(a, n, nil, graph.Complete(n))
		var c Counter
		if err := ATA(st, arch.FullRegion(a), c.Emit); err != nil {
			t.Fatal(err)
		}
		if !st.Want.Empty() {
			t.Fatalf("heavy-hex %v incomplete", sz)
		}
		ratios = append(ratios, float64(c.Cycles)/float64(n))
	}
	for i, r := range ratios {
		if r > 8 {
			t.Errorf("heavy-hex %v: depth/n = %.2f", sizes[i], r)
		}
	}
	if ratios[2] > ratios[0]*1.4+0.5 {
		t.Errorf("heavy-hex ratio grows with size: %v", ratios)
	}
}

// TestATAGateCountNeverExceedsCliqueBudget: pattern gate count equals the
// problem size exactly and swap count is bounded by the clique run's.
func TestATAGateCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := arch.Grid(5, 5)
		p := graph.Gnp(25, 0.15+0.7*rng.Float64(), rng)
		st := NewState(a, 25, nil, p)
		var c Counter
		if err := ATA(st, arch.FullRegion(a), c.Emit); err != nil {
			return false
		}
		return st.Want.Empty() && c.Gates == p.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStateCloneIndependence: mutating a clone leaves the original intact.
func TestStateCloneIndependence(t *testing.T) {
	a := arch.Line(6)
	st := NewState(a, 6, nil, graph.Complete(6))
	cl := st.Clone()
	cl.ApplySwap(0, 1)
	cl.Want.Remove(graph.NewEdge(0, 1))
	if st.P2L[0] != 0 || st.Want.Len() != 15 {
		t.Fatal("clone mutation leaked")
	}
}

// TestNewStateFromMappingRejectsBadMappings guards the hybrid entry point.
func TestNewStateFromMappingRejectsBadMappings(t *testing.T) {
	a := arch.Line(4)
	for _, bad := range [][]int{{0, 0}, {0, 9}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mapping %v accepted", bad)
				}
			}()
			NewStateFromMapping(a, bad, NewEdgeSet(graph.Complete(2)))
		}()
	}
}
