package swapnet

import (
	"math/rand"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// runChecked executes the ATA pattern on (a, problem) with an identity
// mapping and validates every emitted step: compute pairs and swaps lie on
// couplings, tags match the current occupants, no physical qubit is used
// twice within a layer, and the want set is fully drained. It returns the
// total cycle depth and program-gate count.
func runChecked(t *testing.T, a *arch.Arch, problem *graph.Graph) (cycles, gates int) {
	t.Helper()
	st := NewState(a, problem.N(), nil, problem)
	// Shadow mapping replayed independently of State to cross-check.
	p2l := make([]int, a.N())
	for i := range p2l {
		p2l[i] = -1
	}
	for l := 0; l < problem.N(); l++ {
		p2l[l] = l
	}
	want := NewEdgeSet(problem)
	emit := func(s Step) {
		cycles += s.Depth()
		used := map[int]bool{}
		for _, g := range s.Compute {
			if !a.G.HasEdge(g.P, g.Q) {
				t.Fatalf("compute on uncoupled pair (%d,%d)", g.P, g.Q)
			}
			if used[g.P] || used[g.Q] {
				t.Fatalf("qubit reused within compute layer (%d,%d)", g.P, g.Q)
			}
			used[g.P], used[g.Q] = true, true
			lp, lq := p2l[g.P], p2l[g.Q]
			if lp < 0 || lq < 0 {
				t.Fatalf("compute on empty slot (%d,%d)", g.P, g.Q)
			}
			e := graph.NewEdge(lp, lq)
			if e != g.Tag {
				t.Fatalf("tag %v but occupants %v", g.Tag, e)
			}
			if !want.Remove(e) {
				t.Fatalf("edge %v computed twice or never wanted", e)
			}
			gates++
			if g.Fused {
				p2l[g.P], p2l[g.Q] = p2l[g.Q], p2l[g.P]
			}
		}
		for _, layer := range s.Swaps {
			lu := map[int]bool{}
			for _, e := range layer {
				if !a.G.HasEdge(e.U, e.V) {
					t.Fatalf("swap on uncoupled pair %v", e)
				}
				if lu[e.U] || lu[e.V] {
					t.Fatalf("qubit reused within swap layer %v", e)
				}
				lu[e.U], lu[e.V] = true, true
				p2l[e.U], p2l[e.V] = p2l[e.V], p2l[e.U]
			}
		}
	}
	if err := ATA(st, arch.FullRegion(a), emit); err != nil {
		t.Fatalf("ATA: %v", err)
	}
	if !st.Want.Empty() {
		t.Fatalf("%s: %d wanted edges not scheduled (of %d)", a.Name, st.Want.Len(), problem.M())
	}
	if want.Len() != 0 {
		t.Fatalf("shadow want desync: %d left", want.Len())
	}
	// State's mapping must agree with the shadow replay.
	for p := 0; p < a.N(); p++ {
		if st.P2L[p] != p2l[p] {
			t.Fatalf("mapping desync at phys %d: %d vs %d", p, st.P2L[p], p2l[p])
		}
	}
	return cycles, gates
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(graph.Complete(4))
	if s.Len() != 6 || s.Empty() {
		t.Fatalf("len=%d", s.Len())
	}
	e := graph.NewEdge(1, 2)
	if !s.Has(e) || !s.Remove(e) || s.Remove(e) {
		t.Fatal("remove semantics wrong")
	}
	c := s.Clone()
	c.Remove(graph.NewEdge(0, 1))
	if s.Len() != 5 || c.Len() != 4 {
		t.Fatal("clone not independent")
	}
	if len(s.Edges()) != 5 {
		t.Fatal("Edges length wrong")
	}
}

func TestStateSwapAndWanted(t *testing.T) {
	a := arch.Line(4)
	st := NewState(a, 3, nil, graph.Complete(3))
	if _, ok := st.WantedPhys(0, 1); !ok {
		t.Fatal("adjacent wanted pair not found")
	}
	if _, ok := st.WantedPhys(2, 3); ok {
		t.Fatal("pair with empty slot reported wanted")
	}
	st.ApplySwap(2, 3)
	if st.P2L[3] != 2 || st.L2P[2] != 3 {
		t.Fatal("swap with empty slot broken")
	}
}

func TestLinearCliqueCoverage(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 9, 16} {
		a := arch.Line(n)
		cycles, gates := runChecked(t, a, graph.Complete(n))
		if gates != n*(n-1)/2 {
			t.Fatalf("line-%d: %d gates", n, gates)
		}
		// One cycle per round, n rounds.
		if cycles > n+1 {
			t.Fatalf("line-%d: %d cycles, want <= %d", n, cycles, n+1)
		}
	}
}

func TestLinearReversal(t *testing.T) {
	n := 8
	a := arch.Line(n)
	st := NewState(a, n, nil, graph.Complete(n))
	linear(st, [][]int{a.Path}, linearOpts{preserveDynamics: true}, func(Step) {})
	for p := 0; p < n; p++ {
		if st.P2L[p] != n-1-p {
			t.Fatalf("no reversal: phys %d holds %d", p, st.P2L[p])
		}
	}
}

func TestLinearSparseSkipsEarly(t *testing.T) {
	n := 16
	a := arch.Line(n)
	p := graph.New(n)
	p.AddEdge(0, 1)
	p.AddEdge(2, 3)
	st := NewState(a, n, nil, p)
	cycles := 0
	linear(st, [][]int{a.Path}, linearOpts{}, func(s Step) { cycles += s.Depth() })
	if !st.Want.Empty() {
		t.Fatal("sparse want not drained")
	}
	if cycles > 2 {
		t.Fatalf("adjacent-only want took %d cycles", cycles)
	}
}

func TestGridCliqueCoverage(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {2, 3}, {3, 3}, {4, 4}, {4, 5}, {6, 6}} {
		a := arch.Grid(sz[0], sz[1])
		n := a.N()
		cycles, gates := runChecked(t, a, graph.Complete(n))
		if gates != n*(n-1)/2 {
			t.Fatalf("grid %v: %d gates, want %d", sz, gates, n*(n-1)/2)
		}
		// Linear-depth bound: intra phase ~C cycles + R rounds x (C + 1).
		bound := 3*n + 4*sz[1] + 8
		if cycles > bound {
			t.Fatalf("grid %v: %d cycles exceeds linear bound %d", sz, cycles, bound)
		}
	}
}

func TestBipartitePatternMeetsAllCrossPairs(t *testing.T) {
	// Directly exercise Fig 9 on two rows of a 2xC grid: the want set holds
	// only cross edges; C cycles must drain it.
	for _, C := range []int{2, 3, 4, 5, 8} {
		a := arch.Grid(2, C)
		p := graph.New(2 * C)
		for i := 0; i < C; i++ {
			for j := 0; j < C; j++ {
				p.AddEdge(i, C+j) // logical i in row 0, C+j in row 1
			}
		}
		st := NewState(a, 2*C, nil, p)
		sc := newScope(st, append(append([]int{}, a.Units[0]...), a.Units[1]...))
		cycles := 0
		bipartiteGrid(st, a.Units, [][2]int{{0, 1}}, sc, func(s Step) { cycles += s.Depth() })
		if !st.Want.Empty() {
			t.Fatalf("C=%d: %d cross pairs missed", C, st.Want.Len())
		}
		if cycles > 2*C {
			t.Fatalf("C=%d: %d cycles", C, cycles)
		}
	}
}

func TestSycamoreCliqueCoverage(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {2, 3}, {3, 3}, {4, 4}, {5, 4}, {6, 6}} {
		a := arch.Sycamore(sz[0], sz[1])
		n := a.N()
		cycles, gates := runChecked(t, a, graph.Complete(n))
		if gates != n*(n-1)/2 {
			t.Fatalf("sycamore %v: %d gates, want %d", sz, gates, n*(n-1)/2)
		}
		if bound := 3*n + 8; cycles > bound {
			t.Fatalf("sycamore %v: %d cycles exceeds %d", sz, cycles, bound)
		}
	}
}

func TestSycamorePairingExchangesRows(t *testing.T) {
	a := arch.Sycamore(2, 4)
	n := 8
	st := NewState(a, n, nil, graph.Complete(n))
	sc := newScope(st, []int{0, 1, 2, 3, 4, 5, 6, 7})
	linear(st, [][]int{zigZagSegment(a, 0, 0, 3)}, linearOpts{sc: sc, preserveDynamics: true}, func(Step) {})
	// Logical qubits 0..3 started in row 0 (phys 0..3); after the pairing
	// they must all reside in row 1 (phys 4..7), and vice versa.
	for l := 0; l < 4; l++ {
		if st.L2P[l] < 4 {
			t.Fatalf("logical %d still in row 0 (phys %d)", l, st.L2P[l])
		}
	}
	for l := 4; l < 8; l++ {
		if st.L2P[l] >= 4 {
			t.Fatalf("logical %d still in row 1 (phys %d)", l, st.L2P[l])
		}
	}
}

func TestHexagonCliqueCoverage(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {4, 4}, {4, 6}, {6, 4}} {
		a := arch.Hexagon(sz[0], sz[1])
		n := a.N()
		cycles, gates := runChecked(t, a, graph.Complete(n))
		if gates != n*(n-1)/2 {
			t.Fatalf("hexagon %v: %d gates, want %d", sz, gates, n*(n-1)/2)
		}
		if bound := 3*n + 8; cycles > bound {
			t.Fatalf("hexagon %v: %d cycles exceeds %d", sz, cycles, bound)
		}
	}
}

func TestHexagonUPathExchangesColumns(t *testing.T) {
	a := arch.Hexagon(4, 2)
	st := NewState(a, 8, nil, graph.Complete(8))
	sc := newScope(st, []int{0, 1, 2, 3, 4, 5, 6, 7})
	p := uPath(a, 0, 0, 3)
	if p == nil {
		t.Fatal("no U-path for columns 0,1")
	}
	linear(st, [][]int{p}, linearOpts{sc: sc, preserveDynamics: true}, func(Step) {})
	// Column 0 holds logicals {0,2,4,6}? Physical layout: qubit r*2+c.
	// Logical l started at phys l; column of phys q is q%2.
	for l := 0; l < 8; l++ {
		startCol := l % 2
		nowCol := st.L2P[l] % 2
		if nowCol == startCol {
			t.Fatalf("logical %d did not change column (phys %d)", l, st.L2P[l])
		}
	}
}

func TestHeavyHexCliqueCoverage(t *testing.T) {
	for _, sz := range [][2]int{{2, 4}, {2, 8}, {3, 8}, {4, 12}} {
		a := arch.HeavyHex(sz[0], sz[1])
		n := a.N()
		cycles, gates := runChecked(t, a, graph.Complete(n))
		if gates != n*(n-1)/2 {
			t.Fatalf("heavyhex %v: %d gates, want %d", sz, gates, n*(n-1)/2)
		}
		if bound := 8*n + 16; cycles > bound {
			t.Fatalf("heavyhex %v: %d cycles exceeds %d", sz, cycles, bound)
		}
	}
}

func TestMumbaiCliqueCoverage(t *testing.T) {
	a := arch.Mumbai()
	n := a.N()
	_, gates := runChecked(t, a, graph.Complete(n))
	if gates != n*(n-1)/2 {
		t.Fatalf("mumbai: %d gates, want %d", gates, n*(n-1)/2)
	}
}

func TestLattice3DCliqueCoverage(t *testing.T) {
	a := arch.Lattice3D(3, 3, 3)
	n := a.N()
	cycles, gates := runChecked(t, a, graph.Complete(n))
	if gates != n*(n-1)/2 {
		t.Fatalf("lattice3d: %d gates", gates)
	}
	if cycles > n+2 {
		t.Fatalf("snake ATA took %d cycles", cycles)
	}
}

func TestATASparseRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	archs := []*arch.Arch{
		arch.Grid(5, 5),
		arch.Sycamore(5, 5),
		arch.Hexagon(4, 6),
		arch.HeavyHex(2, 8),
	}
	for _, a := range archs {
		for trial := 0; trial < 5; trial++ {
			n := a.N()
			p := graph.Gnp(n, 0.3, rng)
			st := NewState(a, n, nil, p)
			if err := ATA(st, arch.FullRegion(a), func(Step) {}); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			if !st.Want.Empty() {
				t.Fatalf("%s trial %d: %d edges left", a.Name, trial, st.Want.Len())
			}
		}
	}
}

func TestATASparseCheaperThanClique(t *testing.T) {
	a := arch.Grid(6, 6)
	n := a.N()
	cliqueSt := NewState(a, n, nil, graph.Complete(n))
	var cliqueC Counter
	if err := ATA(cliqueSt, arch.FullRegion(a), cliqueC.Emit); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sparse := graph.Gnp(n, 0.1, rng)
	sparseSt := NewState(a, n, nil, sparse)
	var sparseC Counter
	if err := ATA(sparseSt, arch.FullRegion(a), sparseC.Emit); err != nil {
		t.Fatal(err)
	}
	if sparseC.CX >= cliqueC.CX {
		t.Fatalf("sparse CX %d not below clique CX %d", sparseC.CX, cliqueC.CX)
	}
	if sparseC.Cycles > cliqueC.Cycles {
		t.Fatalf("sparse cycles %d exceed clique cycles %d", sparseC.Cycles, cliqueC.Cycles)
	}
}

func TestATARegionRestricted(t *testing.T) {
	a := arch.Grid(6, 6)
	// Logical qubits 0..8 mapped into the top-left 3x3 corner; the problem
	// is a clique over them. The region-restricted pattern must finish and
	// never touch qubits outside the rectangle.
	var initial []int
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			initial = append(initial, r*6+c)
		}
	}
	st := NewState(a, 9, initial, graph.Complete(9))
	region := arch.Region{U0: 0, U1: 2, P0: 0, P1: 2}
	outside := func(q int) bool { return a.Coords[q].Row > 2 || a.Coords[q].Col > 2 }
	err := ATA(st, region, func(s Step) {
		for _, g := range s.Compute {
			if outside(g.P) || outside(g.Q) {
				t.Fatalf("compute outside region: (%d,%d)", g.P, g.Q)
			}
		}
		for _, l := range s.Swaps {
			for _, e := range l {
				if outside(e.U) || outside(e.V) {
					t.Fatalf("swap outside region: %v", e)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Want.Empty() {
		t.Fatalf("region ATA left %d edges", st.Want.Len())
	}
}

func TestCounterAccounting(t *testing.T) {
	var c Counter
	c.Emit(Step{
		Compute: []PhysGate{{P: 0, Q: 1, Fused: true}, {P: 2, Q: 3}},
		Swaps:   [][]graph.Edge{{graph.NewEdge(4, 5)}},
	})
	if c.Gates != 2 || c.Fused != 1 || c.Swaps != 1 {
		t.Fatalf("counter: %+v", c)
	}
	if c.CX != 3+2+3 {
		t.Fatalf("CX = %d", c.CX)
	}
	if c.Cycles != 2 {
		t.Fatalf("cycles = %d", c.Cycles)
	}
}

func TestNormalizeRegionSycamore(t *testing.T) {
	a := arch.Sycamore(4, 4)
	r := NormalizeRegion(a, arch.Region{U0: 2, U1: 2, P0: 0, P1: 3})
	if r.U1 <= r.U0 {
		t.Fatalf("single-row sycamore region not widened: %+v", r)
	}
}

func TestHeavyHexPassesWithinBudget(t *testing.T) {
	// Cliques must complete within the structured passes — the straggler
	// router must not be needed. Detect router use by its signature single-
	// swap steps exceeding a sane count.
	a := arch.HeavyHex(3, 8)
	n := a.N()
	st := NewState(a, n, nil, graph.Complete(n))
	singleSwapSteps := 0
	err := ATA(st, arch.FullRegion(a), func(s Step) {
		if len(s.Compute) == 0 && len(s.Swaps) == 1 && len(s.Swaps[0]) == 1 {
			singleSwapSteps++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Want.Empty() {
		t.Fatalf("%d edges left", st.Want.Len())
	}
	if singleSwapSteps > n {
		t.Fatalf("straggler router dominated: %d single-swap steps", singleSwapSteps)
	}
}

func TestUPathBothRungParities(t *testing.T) {
	a := arch.Hexagon(6, 4)
	// Column pair (0,1): rungs at even rows -> full range [0,5] crosses at
	// the top (row 0). Column pair (1,2): rungs at odd rows -> crosses at
	// the bottom (row 5).
	for c := 0; c < 3; c++ {
		p := uPath(a, c, 0, 5)
		if p == nil {
			t.Fatalf("no U-path for columns (%d,%d)", c, c+1)
		}
		if len(p) != 12 {
			t.Fatalf("U-path length %d", len(p))
		}
		for i := 0; i+1 < len(p); i++ {
			if !a.G.HasEdge(p[i], p[i+1]) {
				t.Fatalf("columns (%d,%d): step %d->%d uncoupled", c, c+1, p[i], p[i+1])
			}
		}
		// First half one column, second half the other.
		unitOf, _ := a.UnitIndex()
		for i, q := range p {
			wantCol := c
			if i >= 6 {
				wantCol = c + 1
			}
			if unitOf[q] != wantCol {
				t.Fatalf("U-path slot %d in column %d, want %d", i, unitOf[q], wantCol)
			}
		}
	}
}

func TestUPathSubRange(t *testing.T) {
	a := arch.Hexagon(6, 4)
	// Even-height sub-ranges at both offsets must still produce paths.
	for _, rg := range [][2]int{{0, 3}, {1, 4}, {2, 5}, {0, 5}} {
		for c := 0; c < 3; c++ {
			p := uPath(a, c, rg[0], rg[1])
			if p == nil {
				t.Fatalf("no U-path for cols (%d,%d) rows %v", c, c+1, rg)
			}
			for i := 0; i+1 < len(p); i++ {
				if !a.G.HasEdge(p[i], p[i+1]) {
					t.Fatalf("cols (%d,%d) rows %v: uncoupled step", c, c+1, rg)
				}
			}
		}
	}
}
