package swapnet

import (
	"github.com/ata-pattern/ataqc/internal/arch"
)

// hexagonATA realises all-to-all interaction on a hexagon (honeycomb)
// region (§3.2.2). Units are the vertical columns. Two adjacent columns c
// and c+1 are linked at the rows r with (r+c) even; together with the
// intra-column couplings they admit a U-shaped Hamiltonian path — down one
// column, across the end rung, up the other — whenever the row range ends
// on a rung row. Running the 1xUnit linear pattern over that 2R-qubit path
// covers every pair among the two columns' occupants, and the pattern's
// order reversal exchanges the columns' contents exactly (the first R path
// slots are one column and the last R the other). As with Sycamore, the
// pairing is simultaneously the interaction and the unit exchange of the
// column-level transposition network, so C alternating-parity rounds
// complete the clique in O(R*C) cycles.
//
// The row range is normalised to even height so that every column pair has
// a rung at exactly one of its two ends ((p0+c) and (p1+c) then differ in
// parity).
func hexagonATA(st *State, region arch.Region, emit EmitFunc) {
	a := st.A
	if region.U1 <= region.U0 {
		// Single column: it is a line; run the linear pattern directly.
		if region.U0 < len(a.Units) {
			seg := clipUnit(a.Units[region.U0], region.P0, region.P1)
			linear(st, [][]int{seg}, linearOpts{}, emit)
		}
		return
	}
	// Normalise to even height.
	p0, p1 := region.P0, region.P1
	if p1 >= unitLen(a) {
		p1 = unitLen(a) - 1
	}
	if (p1-p0+1)%2 != 0 {
		if p1 < unitLen(a)-1 {
			p1++
		} else if p0 > 0 {
			p0--
		}
	}
	var all []int
	for u := region.U0; u <= region.U1; u++ {
		all = append(all, clipUnit(a.Units[u], p0, p1)...)
	}
	sc := newScope(st, all)
	C := region.U1 - region.U0 + 1
	for t := 0; t < C; t++ {
		if sc.done() {
			return
		}
		last := t == C-1
		var lines [][]int
		for u := region.U0 + t%2; u+1 <= region.U1; u += 2 {
			if p := uPath(a, u, p0, p1); p != nil {
				lines = append(lines, p)
			}
		}
		if len(lines) == 0 {
			continue
		}
		linear(st, lines, linearOpts{sc: sc, preserveDynamics: !last}, emit)
	}
}

func clipUnit(unit []int, p0, p1 int) []int {
	if p1 >= len(unit) {
		p1 = len(unit) - 1
	}
	if p0 > p1 {
		return nil
	}
	return unit[p0 : p1+1]
}

// uPath returns the U-shaped Hamiltonian path over columns (c, c+1)
// restricted to rows [p0, p1]: it descends the left column to the rung end,
// crosses the rung, and ascends the right column, so path[0:R] is one
// column and path[R:2R] the other. Returns nil when neither end row hosts a
// rung (cannot happen for even-height ranges).
func uPath(a *arch.Arch, c, p0, p1 int) []int {
	left, right := a.Units[c], a.Units[c+1]
	if p1 >= len(left) {
		p1 = len(left) - 1
	}
	if p1 >= len(right) {
		p1 = len(right) - 1
	}
	if p0 > p1 {
		return nil
	}
	rungAt := func(r int) bool { return a.G.HasEdge(left[r], right[r]) }
	path := make([]int, 0, 2*(p1-p0+1))
	switch {
	case rungAt(p1): // cross at the bottom
		for r := p0; r <= p1; r++ {
			path = append(path, left[r])
		}
		for r := p1; r >= p0; r-- {
			path = append(path, right[r])
		}
	case rungAt(p0): // cross at the top
		for r := p1; r >= p0; r-- {
			path = append(path, left[r])
		}
		for r := p0; r <= p1; r++ {
			path = append(path, right[r])
		}
	default:
		return nil
	}
	return path
}
