package bench

import (
	"os"
	"testing"
)

// TestSolverBenchRegression is the CI gate for the depth-optimal solver: it
// sweeps the §3 family instances (quick sizes in -short mode) across the
// reference and packed engines and fails on any optimal-depth divergence —
// RunSolverBench returns that divergence as an error. Set BENCH_SOLVER_OUT
// to also write the JSON document (how the checked-in BENCH_solver.json is
// regenerated: BENCH_SOLVER_OUT=BENCH_solver.json go test ./internal/bench
// -run TestSolverBenchRegression).
func TestSolverBenchRegression(t *testing.T) {
	out := os.Getenv("BENCH_SOLVER_OUT")
	// Heavy (minutes-scale) instances only when regenerating the artifact.
	cfg := SolverBenchConfig{Quick: testing.Short(), Heavy: out != "", Repeats: 3}
	if testing.Short() {
		cfg.Repeats = 2
	}
	s, err := RunSolverBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) == 0 {
		t.Fatal("no benchmark entries produced")
	}
	for _, e := range s.Entries {
		t.Logf("%s %s: depth=%d explored=%d %.3fs %.0f nodes/sec speedup=%.2fx node-ratio=%.2fx",
			e.Instance, e.Engine, e.Depth, e.Explored, e.Seconds, e.NodesPerSec, e.Speedup, e.NodeRatio)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
	}
}
