package bench

import (
	"os"
	"testing"
)

// TestCacheBenchRegression is the CI gate for the persistent compilation
// cache: it runs the cold → restart → warm → isomorphic sweep against a
// temporary directory, hard-fails unless every warm result is
// byte-identical to its cold counterpart (RunCacheBench returns
// divergence as an error), and enforces the headline contract — warm p99
// at least 2x better than cold off the disk tier alone, with at least
// 80% of warm requests served from disk and every relabeled isomorphic
// resubmission served from cache. Set BENCH_CACHE_OUT to regenerate the
// artifact, which adds the larger instances:
// BENCH_CACHE_OUT=BENCH_cache.json go test ./internal/bench -run
// TestCacheBenchRegression.
func TestCacheBenchRegression(t *testing.T) {
	out := os.Getenv("BENCH_CACHE_OUT")
	cfg := CacheBenchConfig{Dir: t.TempDir(), Quick: out == ""}
	s, err := RunCacheBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold p50=%.3fms p99=%.3fms | warm p50=%.3fms p99=%.3fms | speedup p50=%.1fx p99=%.1fx | disk hit rate=%.2f iso=%.2f | %d entries, %d bytes",
		s.Cold.P50Ms, s.Cold.P99Ms, s.Warm.P50Ms, s.Warm.P99Ms,
		s.SpeedupP50, s.SpeedupP99, s.DiskHitRate, s.IsoHitRate, s.DiskEntries, s.DiskBytes)
	if !s.Identical {
		t.Fatal("warm results not byte-identical to cold")
	}
	if s.Corrupt != 0 {
		t.Fatalf("cache reported %d corrupt entries during the bench", s.Corrupt)
	}
	if s.DiskHitRate < 0.8 {
		t.Fatalf("disk hit rate %.2f under the 0.80 floor", s.DiskHitRate)
	}
	if s.IsoHitRate < 1.0 {
		t.Fatalf("isomorphic hit rate %.2f, want 1.00 — canonical hashing is leaking entries", s.IsoHitRate)
	}
	if s.SpeedupP99 < 2.0 {
		t.Fatalf("warm p99 speedup %.2fx under the 2x floor (cold %.3fms, warm %.3fms)",
			s.SpeedupP99, s.Cold.P99Ms, s.Warm.P99Ms)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
	}
}
