package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/cachestore"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// CacheBenchConfig sizes the persistent-cache cold/warm sweep.
type CacheBenchConfig struct {
	// Dir is the cache directory to benchmark against. It must start
	// empty — the cold phase's whole point is that nothing is cached yet.
	Dir string
	// Quick restricts the sweep to CI-sized instances.
	Quick bool
}

// CachePhaseStats summarises one request phase's latency distribution.
type CachePhaseStats struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// CacheBench is the document serialised to BENCH_cache.json; see
// EXPERIMENTS.md for the schema contract. Cold is the first-ever compile
// of each instance against an empty cache directory; Warm is the same
// request stream replayed after a simulated daemon restart (fresh
// process-local memory tier, same directory), so every warm hit must
// come off disk; Isomorphic replays relabeled variants of the same
// problems, which only canonical hashing can serve from cache.
type CacheBench struct {
	Instances int             `json:"instances"`
	Cold      CachePhaseStats `json:"cold"`
	Warm      CachePhaseStats `json:"warm"`
	Iso       CachePhaseStats `json:"isomorphic"`
	// SpeedupP50/P99 compare cold to warm at the same percentile.
	SpeedupP50 float64 `json:"speedup_p50"`
	SpeedupP99 float64 `json:"speedup_p99"`
	// DiskHitRate is the fraction of warm-phase requests served from the
	// disk tier (the memory tier is empty after the restart, so anything
	// not from disk was a miss).
	DiskHitRate float64 `json:"disk_hit_rate"`
	// IsoHitRate is the fraction of relabeled resubmissions served from
	// any cache tier.
	IsoHitRate float64 `json:"iso_hit_rate"`
	// Identical reports that every warm result was byte-identical to its
	// cold counterpart (gates, mappings, source). RunCacheBench returns
	// an error — not just false — on a divergence.
	Identical bool `json:"identical"`
	// Disk overhead: what the warm start costs in storage.
	DiskEntries   int     `json:"disk_entries"`
	DiskBytes     int64   `json:"disk_bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	Corrupt       int64   `json:"corrupt"`
}

// cacheInstance is one benchmark workload: a device plus a problem
// compiled with daemon-default options.
type cacheInstance struct {
	name string
	a    *arch.Arch
	p    *graph.Graph
}

func cacheInstances(quick bool) []cacheInstance {
	mk := func(name string, a *arch.Arch, n int, density float64, seed int64) cacheInstance {
		return cacheInstance{name: name, a: a, p: graph.GnpConnected(n, density, rand.New(rand.NewSource(seed)))}
	}
	out := []cacheInstance{
		mk("line-12/er-0.50", arch.Line(12), 12, 0.50, 11),
		mk("grid-16/er-0.40", arch.GridN(16), 16, 0.40, 12),
		mk("grid-16/er-0.55", arch.GridN(16), 16, 0.55, 13),
		mk("grid-25/er-0.35", arch.GridN(25), 25, 0.35, 14),
		mk("sycamore-16/er-0.40", arch.SycamoreN(16), 16, 0.40, 15),
		mk("heavyhex-20/er-0.30", arch.HeavyHexN(20), 18, 0.30, 16),
		mk("hexagon-18/er-0.35", arch.HexagonN(18), 16, 0.35, 17),
		mk("mumbai/er-0.30", arch.Mumbai(), 24, 0.30, 18),
	}
	if !quick {
		out = append(out,
			mk("grid-36/er-0.35", arch.GridN(36), 36, 0.35, 19),
			mk("grid-49/er-0.30", arch.GridN(49), 49, 0.30, 20),
			mk("heavyhex-32/er-0.30", arch.HeavyHexN(32), 28, 0.30, 21),
			mk("sycamore-25/er-0.35", arch.SycamoreN(25), 25, 0.35, 22),
		)
	}
	return out
}

// sameCompile reports byte-identity of two compilation results in the
// fields the cache contract covers: the gate stream, both mappings, and
// the winning source. (Timings legitimately differ on a hit.)
func sameCompile(x, y *core.Result) bool {
	if x.Source != y.Source || len(x.Circuit.Gates) != len(y.Circuit.Gates) {
		return false
	}
	for i := range x.Circuit.Gates {
		if x.Circuit.Gates[i] != y.Circuit.Gates[i] {
			return false
		}
	}
	if len(x.Initial) != len(y.Initial) || len(x.Final) != len(y.Final) {
		return false
	}
	for i := range x.Initial {
		if x.Initial[i] != y.Initial[i] {
			return false
		}
	}
	for i := range x.Final {
		if x.Final[i] != y.Final[i] {
			return false
		}
	}
	return true
}

func phaseStats(latencies []time.Duration) CachePhaseStats {
	ms := make([]float64, len(latencies))
	var sum float64
	for i, d := range latencies {
		ms[i] = float64(d) / float64(time.Millisecond)
		sum += ms[i]
	}
	sort.Float64s(ms)
	pct := func(p float64) float64 {
		if len(ms) == 0 {
			return 0
		}
		idx := int(p*float64(len(ms))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ms) {
			idx = len(ms) - 1
		}
		return ms[idx]
	}
	return CachePhaseStats{
		Requests: len(ms),
		P50Ms:    pct(0.50),
		P99Ms:    pct(0.99),
		MeanMs:   sum / float64(max(len(ms), 1)),
	}
}

// RunCacheBench measures the two-tier persistent compilation cache end
// to end: a cold pass populates an empty cache directory, the process'
// memory tier is then discarded (simulated daemon restart), and the same
// request stream replays against the disk tier alone, followed by
// relabeled isomorphic variants that only canonical hashing can match.
// It returns an error — not just a slow number — when any warm result
// diverges from its cold counterpart, so the CI regression gate fails
// loudly on a cache-correctness break.
func RunCacheBench(cfg CacheBenchConfig) (*CacheBench, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cache bench: Dir is required")
	}
	instances := cacheInstances(cfg.Quick)
	ctx := context.Background()
	opts := core.Options{Workers: 1} // mirror the daemon's default request path

	// Cold phase: empty directory, every request is a miss.
	store, err := cachestore.Open(cfg.Dir, 0)
	if err != nil {
		return nil, fmt.Errorf("cache bench: open: %w", err)
	}
	cold := core.NewCache(cachestore.NewTiered(store, 0))
	coldResults := make([]*core.Result, len(instances))
	coldLat := make([]time.Duration, 0, len(instances))
	for i, inst := range instances {
		t0 := time.Now()
		res, err := core.CompileCached(ctx, inst.a, inst.p, opts, cold)
		coldLat = append(coldLat, time.Since(t0))
		if err != nil {
			cold.Close()
			return nil, fmt.Errorf("cache bench: cold %s: %w", inst.name, err)
		}
		if res.Stats.CacheTier != "" {
			cold.Close()
			return nil, fmt.Errorf("cache bench: cold %s served from tier %q — Dir was not empty", inst.name, res.Stats.CacheTier)
		}
		coldResults[i] = res
	}
	if err := cold.Close(); err != nil {
		return nil, fmt.Errorf("cache bench: close after cold phase: %w", err)
	}

	// Simulated restart: a new store over the same directory with a fresh
	// (empty) memory tier. Every hit in the warm phase is a disk hit.
	store, err = cachestore.Open(cfg.Dir, 0)
	if err != nil {
		return nil, fmt.Errorf("cache bench: reopen: %w", err)
	}
	warm := core.NewCache(cachestore.NewTiered(store, 0))
	defer warm.Close()

	warmLat := make([]time.Duration, 0, len(instances))
	diskHits := 0
	for i, inst := range instances {
		t0 := time.Now()
		res, err := core.CompileCached(ctx, inst.a, inst.p, opts, warm)
		warmLat = append(warmLat, time.Since(t0))
		if err != nil {
			return nil, fmt.Errorf("cache bench: warm %s: %w", inst.name, err)
		}
		if res.Stats.CacheTier == string(cachestore.TierDisk) {
			diskHits++
		}
		if !sameCompile(coldResults[i], res) {
			return nil, fmt.Errorf("cache regression: warm result for %s diverged from the cold compile", inst.name)
		}
	}

	// Isomorphic phase: relabeled resubmissions. The request bodies are
	// new, but canonical hashing must route them to the existing entries.
	rng := rand.New(rand.NewSource(7))
	isoLat := make([]time.Duration, 0, len(instances))
	isoHits := 0
	for _, inst := range instances {
		q := graph.Relabel(inst.p, rng.Perm(inst.p.N()))
		t0 := time.Now()
		res, err := core.CompileCached(ctx, inst.a, q, opts, warm)
		isoLat = append(isoLat, time.Since(t0))
		if err != nil {
			return nil, fmt.Errorf("cache bench: isomorphic %s: %w", inst.name, err)
		}
		if res.Stats.CacheTier != "" {
			isoHits++
		}
	}

	st := warm.Stats()
	out := &CacheBench{
		Instances:   len(instances),
		Cold:        phaseStats(coldLat),
		Warm:        phaseStats(warmLat),
		Iso:         phaseStats(isoLat),
		DiskHitRate: float64(diskHits) / float64(len(instances)),
		IsoHitRate:  float64(isoHits) / float64(len(instances)),
		Identical:   true,
		DiskEntries: st.Result.Disk.Entries,
		DiskBytes:   st.Result.Disk.Bytes,
		Corrupt:     st.Corrupt + st.Result.Disk.Corrupt,
	}
	if out.Warm.P50Ms > 0 {
		out.SpeedupP50 = out.Cold.P50Ms / out.Warm.P50Ms
	}
	if out.Warm.P99Ms > 0 {
		out.SpeedupP99 = out.Cold.P99Ms / out.Warm.P99Ms
	}
	if out.DiskEntries > 0 {
		out.BytesPerEntry = float64(out.DiskBytes) / float64(out.DiskEntries)
	}
	return out, nil
}

// WriteJSON serialises the benchmark document (indented, trailing
// newline) — the exact bytes checked in as BENCH_cache.json.
func (s *CacheBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
