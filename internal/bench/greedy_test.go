package bench

import (
	"os"
	"testing"
)

// TestGreedyBenchRegression is the CI gate for the packed greedy rewrite:
// it runs the scheduling + materialization sweep (CI sizes in -short mode),
// hard-fails unless every packed row is byte-identical to the reference
// (RunGreedyBench returns divergence as an error), holds the steady-state
// allocation count at zero, and enforces a conservative speedup floor so a
// performance regression cannot land silently — the checked-in
// BENCH_greedy.json records the real (much larger) margins. Set
// BENCH_GREEDY_OUT to regenerate the artifact, which adds the grid-100
// headline instance: BENCH_GREEDY_OUT=BENCH_greedy.json go test
// ./internal/bench -run TestGreedyBenchRegression.
func TestGreedyBenchRegression(t *testing.T) {
	out := os.Getenv("BENCH_GREEDY_OUT")
	cfg := GreedyBenchConfig{Quick: out == "", Repeats: 3}
	if testing.Short() {
		cfg.Repeats = 2
	}
	s, err := RunGreedyBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) == 0 {
		t.Fatal("no benchmark entries produced")
	}
	for _, e := range s.Entries {
		t.Logf("%s %s: gates=%d cycles=%d sched=%.4fs mat=%.5fs speedup=%.2fx identical=%v allocs=%.1f",
			e.Instance, e.Engine, e.CircuitGates, e.Cycles, e.SchedSeconds, e.MatSeconds,
			e.Speedup, e.Identical, e.SchedLoopAllocs)
		if !e.Identical {
			t.Fatalf("%s %s: output not identical to reference", e.Instance, e.Engine)
		}
		if e.Engine != GreedyEnginePacked {
			continue
		}
		if e.SchedLoopAllocs != 0 {
			t.Fatalf("%s: scheduling loop allocates %.1f objects per run, want 0",
				e.Instance, e.SchedLoopAllocs)
		}
		// CI floor, not the headline number: shared runners are noisy, so the
		// gate only catches order-of-magnitude regressions (the artifact
		// records >=5x on grid-100).
		if e.Speedup < 1.2 {
			t.Fatalf("%s: packed speedup %.2fx under the 1.2x regression floor", e.Instance, e.Speedup)
		}
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
	}
}
