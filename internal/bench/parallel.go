package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// HybridBenchEntry is one cell of the parallel-prediction benchmark: a
// method compiled on one (arch, graph) workload at one worker count. The
// Depth/CX/Swaps columns exist so the regression harness can assert
// worker-count parity — the parallel engine must never change the circuit,
// only Seconds.
type HybridBenchEntry struct {
	Method  string  `json:"method"`
	Arch    string  `json:"arch"`
	N       int     `json:"n"`
	Graph   string  `json:"graph"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"` // best-of-Repeats wall-clock
	// Phase breakdown of the best repeat, from the compiler's Timeline:
	// greedy scheduling, checkpoint prediction, ATA materialisation.
	GreedySeconds      float64 `json:"greedy_seconds"`
	PredictSeconds     float64 `json:"predict_seconds"`
	MaterializeSeconds float64 `json:"materialize_seconds"`
	Depth              int     `json:"depth"`
	CX                 int     `json:"cx"`
	Swaps              int     `json:"swaps"`
	// Speedup is Seconds of the workers=1 entry of the same cell divided by
	// this entry's Seconds (1.0 for the serial entry itself).
	Speedup float64 `json:"speedup"`
}

// HybridBench is the document serialised to BENCH_hybrid.json; see
// EXPERIMENTS.md for the schema contract.
type HybridBench struct {
	// GOMAXPROCS records the host parallelism the numbers were taken at:
	// on a single-CPU host the speedup is pure memoisation (shared pattern
	// cache + choice replay); with more CPUs the worker fan-out adds to it.
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workers    []int              `json:"workers"` // the worker counts swept
	Entries    []HybridBenchEntry `json:"entries"`
}

// HybridBenchConfig sizes the sweep.
type HybridBenchConfig struct {
	Quick   bool  // CI sizes (≤36 qubits) instead of the full grid-64 cell
	Seed    int64 // workload seed (default 1)
	Repeats int   // wall-clock samples per cell, best kept (default 3)
}

// RunHybridBench sweeps the governed methods over (arch × n) workloads at
// Workers ∈ {1, 8} and measures wall-clock and circuit metrics. It returns
// an error — not just a slow number — when any parallel entry's
// depth/CX/swap counts diverge from its serial twin, so both the CI
// regression test and ad-hoc runs fail loudly on a determinism break.
func RunHybridBench(cfg HybridBenchConfig) (*HybridBench, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	type cell struct {
		family  string
		n       int
		density float64
	}
	cells := []cell{
		{"grid", 36, 0.5},
		{"heavy-hex", 36, 0.3},
	}
	if !cfg.Quick {
		// The headline cell: grid-64 / ER-0.5 is where the prediction loop
		// dominates compile time and the memoised engine must show ≥1.5×.
		cells = append(cells, cell{"grid", 64, 0.5}, cell{"heavy-hex", 64, 0.3})
	}
	out := &HybridBench{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: []int{1, 8}}
	for _, c := range cells {
		a, err := ArchFor(c.family, c.n)
		if err != nil {
			return nil, err
		}
		a.Distances() // shared read-only across the sweep
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := graph.GnpConnected(c.n, c.density, rng)
		graphName := fmt.Sprintf("rand-%d-%.1f", c.n, c.density)
		for _, method := range []string{MethodOurs} {
			var serial *HybridBenchEntry
			for _, workers := range out.Workers {
				e := HybridBenchEntry{
					Method: method, Arch: a.Name, N: c.n, Graph: graphName, Workers: workers,
				}
				for rep := 0; rep < cfg.Repeats; rep++ {
					start := time.Now()
					res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid, Workers: workers})
					if err != nil {
						return nil, fmt.Errorf("%s on %s workers=%d: %w", method, a.Name, workers, err)
					}
					sec := time.Since(start).Seconds()
					if rep == 0 || sec < e.Seconds {
						e.Seconds = sec
						e.GreedySeconds = res.Timeline.PhaseDuration("greedy").Seconds()
						e.PredictSeconds = res.Timeline.PhaseDuration("predict").Seconds()
						e.MaterializeSeconds = res.Timeline.PhaseDuration("materialize").Seconds()
					}
					m := res.Metrics
					if rep == 0 {
						e.Depth, e.CX, e.Swaps = m.Depth, m.CXCount, m.Swaps
					} else if e.Depth != m.Depth || e.CX != m.CXCount || e.Swaps != m.Swaps {
						return nil, fmt.Errorf("%s on %s workers=%d: repeat %d changed the circuit (depth %d→%d, cx %d→%d)",
							method, a.Name, workers, rep, e.Depth, m.Depth, e.CX, m.CXCount)
					}
				}
				if serial == nil {
					e.Speedup = 1
					out.Entries = append(out.Entries, e)
					serial = &out.Entries[len(out.Entries)-1]
					continue
				}
				if e.Depth != serial.Depth || e.CX != serial.CX || e.Swaps != serial.Swaps {
					return nil, fmt.Errorf(
						"parallel regression: %s on %s/%s workers=%d produced depth=%d cx=%d swaps=%d, serial produced depth=%d cx=%d swaps=%d",
						method, a.Name, graphName, e.Workers, e.Depth, e.CX, e.Swaps, serial.Depth, serial.CX, serial.Swaps)
				}
				e.Speedup = serial.Seconds / e.Seconds
				out.Entries = append(out.Entries, e)
			}
		}
	}
	return out, nil
}

// WriteJSON serialises the benchmark document (indented, trailing newline)
// — the exact bytes checked in as BENCH_hybrid.json.
func (h *HybridBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
