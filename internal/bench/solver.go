package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/solver"
)

// Solver engine labels recorded in BENCH_solver.json entries.
const (
	SolverEngineReference = "reference"  // pre-optimization engine (string keys, naive heuristic, unpruned)
	SolverEnginePacked    = "packed"     // packed-state engine, symmetry reduction off
	SolverEnginePackedSym = "packed-sym" // packed-state engine with line/grid automorphism canonicalization
)

// SolverBenchEntry is one (instance, engine) measurement of the depth-
// optimal A* solver benchmark. Depth exists so the regression harness can
// assert engine parity — every engine must prove the same optimum; the
// remaining columns measure search effort and throughput.
type SolverBenchEntry struct {
	Instance    string  `json:"instance"` // e.g. "line-6/clique"
	Arch        string  `json:"arch"`
	Qubits      int     `json:"qubits"`
	Gates       int     `json:"gates"`
	Engine      string  `json:"engine"`
	Depth       int     `json:"depth"`
	Explored    int     `json:"explored"`    // nodes expanded
	PeakOpen    int     `json:"peak_open"`   // open-heap high-water mark
	PeakClosed  int     `json:"peak_closed"` // distinct states stored (closed set is deduplicated)
	Seconds     float64 `json:"seconds"`     // best-of-Repeats wall clock
	NodesPerSec float64 `json:"nodes_per_sec"`
	// Speedup is the reference engine's Seconds on the same instance
	// divided by this entry's (1.0 for the reference row itself; 0 when the
	// reference was too slow to run on this instance).
	Speedup float64 `json:"speedup"`
	// NodeRatio is the reference engine's explored count divided by this
	// entry's — how much of the speedup is pruning rather than per-node
	// throughput (0 when the reference was not run).
	NodeRatio float64 `json:"node_ratio"`
}

// SolverBench is the document serialised to BENCH_solver.json; see
// EXPERIMENTS.md for the schema contract.
type SolverBench struct {
	Entries []SolverBenchEntry `json:"entries"`
}

// SolverBenchConfig sizes the sweep.
type SolverBenchConfig struct {
	// Quick restricts the sweep to the instances whose reference-engine
	// runs finish in CI time (line cliques up to 1x6, bipartite 2x3).
	Quick bool
	// Heavy also runs the minutes-scale instances (line 1x8). Off by
	// default so a plain `go test ./...` stays fast; the regression test
	// turns it on when regenerating the checked-in BENCH_solver.json.
	Heavy bool
	// Repeats is the wall-clock samples per cell, best kept (default 3).
	Repeats int
	// MaxNodes bounds each search (solver semantics: 0 = 2^22 default).
	MaxNodes int
}

// solverInstance is one benchmark workload: a §3 family sub-problem.
type solverInstance struct {
	name      string
	a         *arch.Arch
	p         *graph.Graph
	wantDepth int  // known optimum (line cliques: 2n-2); 0 = not asserted
	reference bool // the reference engine is tractable on this instance
	heavy     bool // minutes-scale even on the packed engine: run once, not best-of-Repeats
}

func solverInstances(quick bool) []solverInstance {
	var out []solverInstance
	lineMax := 8
	if quick {
		lineMax = 6
	}
	for n := 4; n <= lineMax; n++ {
		out = append(out, solverInstance{
			name:      fmt.Sprintf("line-%d/clique", n),
			a:         arch.Line(n),
			p:         graph.Complete(n),
			wantDepth: 2*n - 2,
			reference: n <= 6, // 1x7 takes ~30s on the reference, 1x8 far longer
			heavy:     n >= 8, // ~4 minutes on the packed engine
		})
	}
	bip := func(cols int) solverInstance {
		a := arch.Grid(2, cols)
		p := graph.New(2 * cols)
		for i := 0; i < cols; i++ {
			for j := cols; j < 2*cols; j++ {
				p.AddEdge(i, j)
			}
		}
		return solverInstance{name: fmt.Sprintf("grid-2x%d/bipartite", cols), a: a, p: p, reference: true}
	}
	out = append(out, bip(3))
	if !quick {
		out = append(out, bip(4))
	}
	return out
}

// SolverEntryFor builds one benchmark record from a finished solve — shared
// with cmd/solver's -bench-json flag so one-off runs emit the same schema.
func SolverEntryFor(instance string, a *arch.Arch, p *graph.Graph, engine string, res *solver.Result) SolverBenchEntry {
	nps := 0.0
	if sec := res.Elapsed.Seconds(); sec > 0 {
		nps = float64(res.Explored) / sec
	}
	return SolverBenchEntry{
		Instance:    instance,
		Arch:        a.Name,
		Qubits:      a.N(),
		Gates:       p.M(),
		Engine:      engine,
		Depth:       res.Depth,
		Explored:    res.Explored,
		PeakOpen:    res.PeakOpen,
		PeakClosed:  res.Generated,
		Seconds:     res.Elapsed.Seconds(),
		NodesPerSec: nps,
	}
}

// RunSolverBench measures the packed engine (with and without symmetry
// reduction) against the pre-optimization reference engine on the §3
// family instances the paper's patterns were derived from. It returns an
// error — not just a slow number — when any engine proves a different
// optimal depth than another on the same instance, or a line clique
// deviates from the known 2n-2 optimum, so both the CI regression test and
// ad-hoc runs fail loudly on an optimality break.
func RunSolverBench(cfg SolverBenchConfig) (*SolverBench, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	ctx := context.Background()
	out := &SolverBench{}
	for _, inst := range solverInstances(cfg.Quick) {
		if inst.heavy && !cfg.Heavy {
			continue
		}
		inst.a.Distances() // outside the timed region
		type engineRun struct {
			label string
			run   func() (*solver.Result, error)
		}
		opts := func(sym bool) solver.Options {
			return solver.Options{MaxNodes: cfg.MaxNodes, Symmetry: sym}
		}
		engines := []engineRun{
			{SolverEnginePacked, func() (*solver.Result, error) {
				return solver.SolveContext(ctx, inst.a, inst.p, nil, opts(false))
			}},
			{SolverEnginePackedSym, func() (*solver.Result, error) {
				return solver.SolveContext(ctx, inst.a, inst.p, nil, opts(true))
			}},
		}
		if inst.reference {
			engines = append([]engineRun{{SolverEngineReference, func() (*solver.Result, error) {
				return solver.ReferenceSolve(ctx, inst.a, inst.p, nil, opts(false))
			}}}, engines...)
		}
		var ref *SolverBenchEntry
		depth := -1
		repeats := cfg.Repeats
		if inst.heavy {
			repeats = 1
		}
		for _, eng := range engines {
			var best *solver.Result
			for rep := 0; rep < repeats; rep++ {
				res, err := eng.run()
				if err != nil {
					return nil, fmt.Errorf("solver bench: %s on %s: %w", eng.label, inst.name, err)
				}
				if best == nil || res.Elapsed < best.Elapsed {
					best = res
				}
			}
			e := SolverEntryFor(inst.name, inst.a, inst.p, eng.label, best)
			if depth == -1 {
				depth = e.Depth
			} else if e.Depth != depth {
				return nil, fmt.Errorf(
					"solver regression: %s proved depth %d on %s, earlier engine proved %d",
					eng.label, e.Depth, inst.name, depth)
			}
			if inst.wantDepth != 0 && e.Depth != inst.wantDepth {
				return nil, fmt.Errorf(
					"solver regression: %s proved depth %d on %s, known optimum is %d",
					eng.label, e.Depth, inst.name, inst.wantDepth)
			}
			if eng.label == SolverEngineReference {
				e.Speedup, e.NodeRatio = 1, 1
				out.Entries = append(out.Entries, e)
				ref = &out.Entries[len(out.Entries)-1]
				continue
			}
			if ref != nil {
				if e.Seconds > 0 {
					e.Speedup = ref.Seconds / e.Seconds
				}
				if e.Explored > 0 {
					e.NodeRatio = float64(ref.Explored) / float64(e.Explored)
				}
			}
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// WriteJSON serialises the benchmark document (indented, trailing newline)
// — the exact bytes checked in as BENCH_solver.json.
func (s *SolverBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
