package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/baseline"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/hamiltonian"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
	"github.com/ata-pattern/ataqc/internal/qaoa"
	"github.com/ata-pattern/ataqc/internal/sim"
	"github.com/ata-pattern/ataqc/internal/solver"
)

// Config scales the experiment suite. Quick keeps everything laptop-fast;
// the full configuration reproduces the paper's sizes (up to 1024 qubits).
type Config struct {
	Quick  bool
	Trials int // graphs averaged per cell (paper: 10)
	Seed   int64
	// Deadline bounds each governed compile's wall clock (0 = unbounded).
	// Expiry degrades that compile to the structured ATA fallback rather
	// than failing the experiment; Stats.Degraded records it. The baseline
	// reimplementations are not governed.
	Deadline time.Duration
	// Workers is passed to the governed compiles' hybrid prediction loop
	// (0 = runtime.GOMAXPROCS(0), 1 = serial). Output metrics are identical
	// for every worker count; it only changes compile wall-clock.
	Workers int
	// Trace, when non-nil, is attached to every governed compile of the run
	// (obs traces are concurrency-safe; concurrent trials interleave spans).
	// Nil leaves the compiles untraced.
	Trace *obs.Trace
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Trials: 10, Seed: 1} }

// QuickConfig returns a configuration suitable for CI and benchmarks.
func QuickConfig() Config { return Config{Quick: true, Trials: 3, Seed: 1} }

func (c Config) sizes(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// trialsFor caps the per-cell trials at large sizes, where single
// compilations take a minute: the variance across 1024-qubit G(n,p)
// samples is small relative to the method gaps being measured.
func (c Config) trialsFor(n int) int {
	t := c.Trials
	if n >= 512 && t > 2 {
		t = 2
	}
	return t
}

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func secs(v float64) string { return fmt.Sprintf("%.3fs", v) }

// RunFig17 reproduces Fig 17: pure greedy vs solver-guided (ATA) vs ours,
// normalised to greedy, on heavy-hex and Sycamore with densities 0.1/0.3.
func RunFig17(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Fig17",
		Title:  "Pure-Greedy vs Solver vs Ours (normalised to greedy)",
		Header: []string{"arch", "graph", "depth greedy", "depth solver", "depth ours", "CX greedy", "CX solver", "CX ours"},
	}
	sizes := cfg.sizes([]int{64, 256, 1024}, []int{16, 36})
	for _, family := range []string{"heavy-hex", "sycamore"} {
		for _, density := range []float64{0.1, 0.3} {
			for _, n := range sizes {
				a, err := ArchFor(family, n)
				if err != nil {
					return nil, err
				}
				w := RandomWorkload(n, density, cfg.trialsFor(n), cfg.Seed)
				var row []string
				row = append(row, a.Name, w.Name)
				var depths, cxs []float64
				var base Stats
				for i, method := range []string{MethodGreedy, MethodSolver, MethodOurs} {
					s, err := averageStats(method, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
					if err != nil {
						return nil, err
					}
					if i == 0 {
						base = s
					}
					depths = append(depths, float64(s.Depth)/float64(base.Depth))
					cxs = append(cxs, float64(s.CX)/float64(base.CX))
				}
				for _, d := range depths {
					row = append(row, f2(d))
				}
				for _, c := range cxs {
					row = append(row, f2(c))
				}
				r.Rows = append(r.Rows, row)
			}
		}
	}
	r.Notes = append(r.Notes, "Paper shape: greedy wins only on the sparsest/smallest inputs; solver wins on large dense ones; ours is at or below the better of the two everywhere.")
	return r, nil
}

// RunDepthGate reproduces Figs 20–23: ours vs QAIM vs Paulihedral on one
// architecture family, for random and regular graphs, reporting average
// depth and CX count.
func RunDepthGate(cfg Config, family string) (*Report, error) {
	r := &Report{
		ID:     map[string]string{"heavy-hex": "Fig20/21", "sycamore": "Fig22/23"}[family],
		Title:  fmt.Sprintf("Depth and gate count on %s: Ours vs QAIM vs Paulihedral", family),
		Header: []string{"graph", "depth ours", "depth qaim", "depth pauli", "CX ours", "CX qaim", "CX pauli"},
	}
	sizes := cfg.sizes([]int{64, 128, 256}, []int{24, 48})
	for _, kind := range []string{"rand", "reg"} {
		for _, density := range []float64{0.3, 0.5} {
			for _, n := range sizes {
				a, err := ArchFor(family, n)
				if err != nil {
					return nil, err
				}
				var w Workload
				if kind == "rand" {
					w = RandomWorkload(n, density, cfg.trialsFor(n), cfg.Seed)
				} else {
					w = RegularWorkload(n, density, cfg.trialsFor(n), cfg.Seed)
				}
				row := []string{w.Name}
				var dvals, cvals []string
				for _, method := range []string{MethodOurs, MethodQAIM, MethodPaulihedral} {
					s, err := averageStats(method, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
					if err != nil {
						return nil, err
					}
					dvals = append(dvals, itoa(s.Depth))
					cvals = append(cvals, itoa(s.CX))
				}
				row = append(row, dvals...)
				row = append(row, cvals...)
				r.Rows = append(r.Rows, row)
			}
		}
	}
	return r, nil
}

// RunTable1 reproduces Table 1: ours vs 2QAN vs QAIM on both architecture
// families. 2QAN's quadratic placement is skipped beyond 128 qubits, the
// paper's timeout behaviour.
func RunTable1(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Table1",
		Title:  "Comparison with 2QAN and QAIM",
		Header: []string{"arch", "graph", "depth ours", "depth 2qan", "depth qaim", "CX ours", "CX 2qan", "CX qaim"},
	}
	sizes := cfg.sizes([]int{64, 128, 256}, []int{24, 48})
	twoQANLimit := 128
	if cfg.Quick {
		twoQANLimit = 48
	}
	for _, family := range []string{"heavy-hex", "sycamore"} {
		for _, density := range []float64{0.3, 0.5} {
			for _, n := range sizes {
				a, err := ArchFor(family, n)
				if err != nil {
					return nil, err
				}
				w := RandomWorkload(n, density, cfg.trialsFor(n), cfg.Seed)
				ours, err := averageStats(MethodOurs, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
				if err != nil {
					return nil, err
				}
				qaim, err := averageStats(MethodQAIM, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
				if err != nil {
					return nil, err
				}
				d2, c2 := "-", "-"
				if n <= twoQANLimit {
					tq, err := averageStats(Method2QAN, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
					if err != nil {
						return nil, err
					}
					d2, c2 = itoa(tq.Depth), itoa(tq.CX)
				}
				r.Rows = append(r.Rows, []string{
					family, w.Name,
					itoa(ours.Depth), d2, itoa(qaim.Depth),
					itoa(ours.CX), c2, itoa(qaim.CX),
				})
			}
		}
	}
	r.Notes = append(r.Notes, "\"-\" mirrors the paper: 2QAN's quadratic placement exceeds its time budget beyond 128 qubits.")
	return r, nil
}

// RunTable2 reproduces Table 2: 1024-qubit graphs, ours vs Paulihedral (the
// only baseline that scales).
func RunTable2(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Table2",
		Title:  "1024-qubit graphs: Ours vs Paulihedral",
		Header: []string{"arch", "graph", "depth ours", "depth pauli", "CX ours", "CX pauli"},
	}
	n := 1024
	trials := 1 // one 1024-qubit sample per cell; the paper averages 10
	if cfg.Quick {
		n, trials = 96, 1
	}
	deg1 := int(0.3125 * float64(n)) // paper's 1024-320
	deg2 := int(0.46875 * float64(n))
	if deg1%2 == 1 {
		deg1++
	}
	if deg2%2 == 1 {
		deg2++
	}
	workloads := []Workload{
		RandomWorkload(n, 0.3, trials, cfg.Seed),
		RandomWorkload(n, 0.5, trials, cfg.Seed+1),
		regularDegreeWorkload(n, deg1, trials, cfg.Seed+2),
		regularDegreeWorkload(n, deg2, trials, cfg.Seed+3),
	}
	for _, family := range []string{"heavy-hex", "sycamore"} {
		a, err := ArchFor(family, n)
		if err != nil {
			return nil, err
		}
		for _, w := range workloads {
			ours, err := averageStats(MethodOurs, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
			if err != nil {
				return nil, err
			}
			pauli, err := averageStats(MethodPaulihedral, a, w, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{
				family, w.Name,
				itoa(ours.Depth), itoa(pauli.Depth),
				itoa(ours.CX), itoa(pauli.CX),
			})
		}
	}
	return r, nil
}

func regularDegreeWorkload(n, deg, trials int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: fmt.Sprintf("%d-%d", n, deg)}
	for i := 0; i < trials; i++ {
		w.Graphs = append(w.Graphs, graph.MustRandomRegular(n, deg, rng))
	}
	return w
}

// RunTable3 reproduces Table 3: the 2-local Hamiltonian benchmarks on a
// 64-qubit heavy-hex, ours vs 2QAN.
func RunTable3(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Table3",
		Title:  "2-local Hamiltonian at IBM heavy-hex: Ours vs 2QAN",
		Header: []string{"benchmark", "depth ours", "depth 2qan", "CX ours", "CX 2qan"},
	}
	a, err := ArchFor("heavy-hex", 64)
	if err != nil {
		return nil, err
	}
	for _, name := range hamiltonian.Names() {
		p, err := hamiltonian.Benchmark(name)
		if err != nil {
			return nil, err
		}
		ours, err := CompileWithDeadline(MethodOurs, a, p, nil, cfg.Deadline)
		if err != nil {
			return nil, err
		}
		tq, err := CompileWith(Method2QAN, a, p, nil)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{name, itoa(ours.Depth), itoa(tq.Depth), itoa(ours.CX), itoa(tq.CX)})
	}
	return r, nil
}

// RunTable4 reproduces Table 4: ours vs the depth-optimal solver (standing
// in for the SAT-based OLSQ/SATMAP tools) on small 2D-grid instances,
// reporting depth, CX and compile time. The solver's 2-qubit-gate-per-cycle
// depth is compared against our circuit's 2q depth.
func RunTable4(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Table4",
		Title:  "Comparison with the optimal (SAT-style) solver on 2D grids",
		Header: []string{"graph", "2q-depth ours", "depth optimal", "CX ours", "CX optimal*", "time ours", "time optimal"},
	}
	type inst struct {
		n   int
		den float64
	}
	insts := []inst{{6, 0.3}, {6, 0.4}, {8, 0.2}, {8, 0.3}, {10, 0.2}}
	if cfg.Quick {
		insts = []inst{{6, 0.3}, {8, 0.2}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, in := range insts {
		p := graph.GnpConnected(in.n, in.den, rng)
		a := arch.GridN(in.n)
		t0 := time.Now()
		res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid, Deadline: cfg.Deadline, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		oursTime := time.Since(t0).Seconds()
		t1 := time.Now()
		opt, err := solver.Solve(a, p, nil, solver.Options{MaxNodes: 1 << 21})
		optDepth, optCX, optTime := "-", "-", "-"
		if err == nil {
			optDepth = itoa(opt.Depth)
			swaps := 0
			for _, cyc := range opt.Cycles {
				for _, op := range cyc {
					if !op.Gate {
						swaps++
					}
				}
			}
			optCX = itoa(2*p.M() + 3*swaps)
			optTime = secs(time.Since(t1).Seconds())
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d-%.1f", in.n, in.den),
			itoa(res.Metrics.TwoQubitDepth), optDepth,
			itoa(res.Metrics.CXCount), optCX,
			secs(oursTime), optTime,
		})
	}
	r.Notes = append(r.Notes,
		"Substitution: our A* solver (depth-optimal, §4) stands in for QAOA-OLSQ/SATMAP; \"-\" marks node-budget exhaustion, mirroring the paper's multi-hour/day SAT timeouts.",
		"*Optimal CX assumes 2 CX per program gate + 3 per SWAP of the optimal-depth schedule (the solver optimises depth, not gate count).")
	return r, nil
}

// RunTVD reproduces the §7.4 TVD comparison: ours vs 2QAN compiled circuits
// executed on the simulated Mumbai device under a synthetic calibration.
func RunTVD(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "TVD",
		Title:  "Total variation distance on simulated IBM Mumbai: Ours vs 2QAN",
		Header: []string{"graph", "TVD ours", "TVD 2qan"},
	}
	a := arch.Mumbai()
	nm := noise.Synthetic(a, cfg.Seed)
	sizes := []int{10, 14}
	if cfg.Quick {
		sizes = []int{8}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		p := graph.GnpConnected(n, 0.3, rng)
		row := []string{fmt.Sprintf("rand-%d-0.3", n)}
		for _, method := range []string{MethodOurs, Method2QAN} {
			inst, err := compileInstance(method, a, p, nm, cfg.Deadline)
			if err != nil {
				return nil, err
			}
			gamma, beta := 0.6, 0.35
			ideal := inst.LogicalDistribution(gamma, beta)
			tr := 24
			if cfg.Quick {
				tr = 8
			}
			noisy := inst.NoisyLogicalDistribution(gamma, beta, nm, sim.NoisyOptions{Trajectories: tr}, rng)
			row = append(row, f3(sim.TVD(ideal, noisy)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "Paper's real-machine points: 10-0.3 TVD 0.39 (ours) vs 0.49 (2QAN); 20-0.3: 0.62 vs 0.66. The simulated 20-qubit case is run at 14 qubits to stay within statevector reach (DESIGN.md substitution).")
	return r, nil
}

func compileInstance(method string, a *arch.Arch, p *graph.Graph, nm *noise.Model, deadline time.Duration) (*qaoa.Instance, error) {
	switch method {
	case MethodOurs:
		res, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid, Noise: nm, CrosstalkAware: true, Deadline: deadline})
		if err != nil {
			return nil, err
		}
		return &qaoa.Instance{Problem: p, Compiled: res.Circuit, Initial: res.Initial, NPhys: a.N()}, nil
	case Method2QAN:
		res, err := baseline.TwoQAN(a, p, 1)
		if err != nil {
			return nil, err
		}
		return &qaoa.Instance{Problem: p, Compiled: res.Circuit, Initial: res.Initial, NPhys: a.N()}, nil
	}
	return nil, fmt.Errorf("bench: no instance path for method %q", method)
}

// RunConvergence reproduces Fig 24/25: full QAOA runs on simulated Mumbai,
// ours vs the 2QAN baseline, optimised with Nelder–Mead (COBYLA
// substitute); the y-axis is the negated expected cut.
func RunConvergence(cfg Config, n int, rounds int) (*Report, error) {
	id := "Fig24"
	if n > 10 {
		id = "Fig25"
	}
	r := &Report{
		ID:     id,
		Title:  fmt.Sprintf("QAOA convergence on simulated Mumbai, %d-qubit random 0.3 graph", n),
		Header: []string{"round", "ours (-E)", "2qan (-E)"},
	}
	a := arch.Mumbai()
	nm := noise.Synthetic(a, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	p := graph.GnpConnected(n, 0.3, rng)
	traces := make([][]float64, 2)
	for i, method := range []string{MethodOurs, Method2QAN} {
		inst, err := compileInstance(method, a, p, nm, cfg.Deadline)
		if err != nil {
			return nil, err
		}
		tr := 8
		if cfg.Quick {
			tr = 3
		}
		evalRng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(i)))
		f := func(x []float64) float64 {
			return -inst.NoisyExpectation(x[0], x[1], nm, sim.NoisyOptions{Trajectories: tr}, evalRng)
		}
		_, trace := qaoa.NelderMead(f, []float64{-0.4, 0.3}, rounds)
		traces[i] = trace
	}
	max := len(traces[0])
	if len(traces[1]) > max {
		max = len(traces[1])
	}
	for i := 0; i < max; i++ {
		at := func(tr []float64) string {
			if i < len(tr) {
				return f3(tr[i])
			}
			return f3(tr[len(tr)-1])
		}
		r.Rows = append(r.Rows, []string{itoa(i + 1), at(traces[0]), at(traces[1])})
	}
	r.Notes = append(r.Notes, "Smaller (more negative) is better; the paper's Fig 24/25 show ours converging to lower energy within the same rounds. Fig 25's 20-qubit run is reproduced at reduced qubit count for simulator reach (DESIGN.md).")
	return r, nil
}

// RunCompileTime reproduces Fig 26: compilation time vs problem size for
// random density-0.3 graphs on heavy-hex, with the compiler's own phase
// breakdown (greedy scheduling / checkpoint prediction / ATA
// materialisation) showing where the time goes.
func RunCompileTime(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Fig26",
		Title:  "Compilation time vs QAOA graph size (random 0.3, heavy-hex)",
		Header: []string{"qubits", "compile time", "greedy", "predict", "materialize"},
	}
	sizes := cfg.sizes([]int{64, 128, 256, 512, 768, 1024}, []int{32, 64, 128})
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range sizes {
		p := graph.GnpConnected(n, 0.3, rng)
		a, err := ArchFor("heavy-hex", n)
		if err != nil {
			return nil, err
		}
		s, err := CompileWithOptions(MethodOurs, a, p, nil, cfg.Deadline, cfg.Workers, cfg.Trace)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{itoa(n), secs(s.Seconds),
			secs(s.GreedySec), secs(s.PredictSec), secs(s.MaterializeSec)})
	}
	return r, nil
}
