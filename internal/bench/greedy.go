package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/greedy"
)

// Greedy engine labels recorded in BENCH_greedy.json entries.
const (
	GreedyEngineReference = "reference" // pre-rewrite scheduler (maps, per-cycle conflict graphs, builder dispatch)
	GreedyEnginePacked    = "packed"    // flat-arena engine + bulk materialization
)

// GreedyBenchEntry is one (instance, engine) measurement of the greedy
// scheduling + materialization phases. Identical exists so the regression
// harness can assert the packed engine reproduced the reference circuit
// byte for byte; SchedLoopAllocs pins the zero-steady-state-allocation
// contract in the checked-in artifact.
type GreedyBenchEntry struct {
	Instance     string  `json:"instance"` // e.g. "grid-100/er-0.5"
	Arch         string  `json:"arch"`
	Qubits       int     `json:"qubits"`        // physical qubits
	Logical      int     `json:"logical"`       // problem vertices
	ProblemEdges int     `json:"problem_edges"` // program gates to schedule
	Engine       string  `json:"engine"`
	CircuitGates int     `json:"circuit_gates"`
	Swaps        int     `json:"swaps"`
	Cycles       int     `json:"cycles"`
	SchedSeconds float64 `json:"sched_seconds"` // best-of-Repeats scheduling wall clock
	MatSeconds   float64 `json:"mat_seconds"`   // best-of-Repeats materialization wall clock
	Seconds      float64 `json:"seconds"`       // SchedSeconds + MatSeconds
	// Speedup is the reference engine's Seconds on the same instance divided
	// by this entry's (1.0 for the reference row itself).
	Speedup float64 `json:"speedup"`
	// Identical reports gate-for-gate, mapping, and cycle-count equality
	// with the reference engine on this instance (true on reference rows).
	Identical bool `json:"identical"`
	// SchedLoopAllocs is the steady-state heap allocations per scheduling
	// run (packed rows only; the contract is 0).
	SchedLoopAllocs float64 `json:"sched_loop_allocs"`
}

// GreedyBench is the document serialised to BENCH_greedy.json; see
// EXPERIMENTS.md for the schema contract.
type GreedyBench struct {
	Entries []GreedyBenchEntry `json:"entries"`
}

// GreedyBenchConfig sizes the sweep.
type GreedyBenchConfig struct {
	// Quick restricts the sweep to CI-sized instances (36-qubit devices);
	// off, the 100+ qubit headline instances run too.
	Quick bool
	// Repeats is the wall-clock samples per cell, best kept (default 3).
	Repeats int
}

// greedyInstance is one benchmark workload.
type greedyInstance struct {
	name  string
	a     *arch.Arch
	p     *graph.Graph
	opts  greedy.Options
	heavy bool // 100+ qubit instance, skipped in Quick mode
}

func greedyInstances(quick bool) []greedyInstance {
	out := []greedyInstance{
		{
			name: "grid-36/er-0.5",
			a:    arch.Grid(6, 6),
			p:    graph.GnpConnected(36, 0.5, rand.New(rand.NewSource(61))),
		},
		{
			name: "heavyhex-32/er-0.3",
			a:    arch.HeavyHexN(32),
			p:    graph.GnpConnected(28, 0.3, rand.New(rand.NewSource(62))),
		},
		{
			name: "grid-36/er-0.5/xtalk",
			a:    arch.Grid(6, 6),
			p:    graph.GnpConnected(36, 0.5, rand.New(rand.NewSource(63))),
			opts: greedy.Options{CrosstalkAware: true},
		},
	}
	if !quick {
		out = append(out, greedyInstance{
			name:  "grid-100/er-0.5",
			a:     arch.Grid(10, 10),
			p:     graph.GnpConnected(100, 0.5, rand.New(rand.NewSource(64))),
			heavy: true,
		})
	}
	return out
}

// materializeReference replays a compiled gate stream through the per-gate
// builder dispatch — the pre-rewrite hybrid materialization path.
func materializeReference(a *arch.Arch, nLogical int, initial []int, gates []circuit.Gate) *circuit.Builder {
	b := circuit.NewBuilder(a, nLogical, initial)
	for _, gt := range gates {
		switch gt.Kind {
		case circuit.GateZZ:
			b.ZZ(gt.Q0, gt.Q1, gt.Angle, gt.Tag)
		case circuit.GateSwap:
			b.Swap(gt.Q0, gt.Q1)
		case circuit.GateZZSwap:
			b.ZZSwap(gt.Q0, gt.Q1, gt.Angle, gt.Tag)
		default:
			b.C.Append(gt)
		}
	}
	return b
}

// sameResult reports byte-identity of two greedy results (gates, mappings,
// cycle count).
func sameResult(x, y *greedy.Result) bool {
	if x.Cycles != y.Cycles || len(x.Circuit.Gates) != len(y.Circuit.Gates) {
		return false
	}
	for i := range x.Circuit.Gates {
		if x.Circuit.Gates[i] != y.Circuit.Gates[i] {
			return false
		}
	}
	for l := range x.Initial {
		if x.Initial[l] != y.Initial[l] || x.Final[l] != y.Final[l] {
			return false
		}
	}
	return true
}

// RunGreedyBench measures the packed greedy engine + bulk materialization
// against the preserved reference scheduler + per-gate builder replay on
// ER instances at CI and headline (100-qubit) sizes. It returns an error —
// not just a slow number — when the packed output diverges from the
// reference on any instance, so the CI regression gate fails loudly on an
// equivalence break.
func RunGreedyBench(cfg GreedyBenchConfig) (*GreedyBench, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	out := &GreedyBench{}
	for _, inst := range greedyInstances(cfg.Quick) {
		inst.a.Distances() // outside the timed region
		initial := greedy.InitialMapping(inst.a, inst.p)

		type engineRun struct {
			label string
			sched func() (*greedy.Result, error)
			mat   func(res *greedy.Result) *circuit.Builder
		}
		engines := []engineRun{
			{
				label: GreedyEngineReference,
				sched: func() (*greedy.Result, error) {
					return greedy.ReferenceCompile(inst.a, inst.p, initial, inst.opts)
				},
				mat: func(res *greedy.Result) *circuit.Builder {
					return materializeReference(inst.a, inst.p.N(), initial, res.Circuit.Gates)
				},
			},
			{
				label: GreedyEnginePacked,
				sched: func() (*greedy.Result, error) {
					return greedy.Compile(inst.a, inst.p, initial, inst.opts)
				},
				mat: func(res *greedy.Result) *circuit.Builder {
					b := circuit.NewBuilder(inst.a, inst.p.N(), initial)
					b.ReplayPrefix(res.Circuit.Gates)
					return b
				},
			},
		}

		var refEntry *GreedyBenchEntry
		var refRes *greedy.Result
		for _, eng := range engines {
			var res *greedy.Result
			schedBest, matBest := -1.0, -1.0
			for rep := 0; rep < cfg.Repeats; rep++ {
				t0 := time.Now()
				r, err := eng.sched()
				schedSec := time.Since(t0).Seconds()
				if err != nil {
					return nil, fmt.Errorf("greedy bench: %s on %s: %w", eng.label, inst.name, err)
				}
				t1 := time.Now()
				b := eng.mat(r)
				matSec := time.Since(t1).Seconds()
				if len(b.C.Gates) != len(r.Circuit.Gates) {
					return nil, fmt.Errorf("greedy bench: %s on %s: materialization produced %d gates, scheduler %d",
						eng.label, inst.name, len(b.C.Gates), len(r.Circuit.Gates))
				}
				fin := b.CurrentMapping()
				for l := range fin {
					if fin[l] != r.Final[l] {
						return nil, fmt.Errorf("greedy bench: %s on %s: materialized final mapping diverged at logical %d",
							eng.label, inst.name, l)
					}
				}
				res = r
				if schedBest < 0 || schedSec < schedBest {
					schedBest = schedSec
				}
				if matBest < 0 || matSec < matBest {
					matBest = matSec
				}
			}
			counts := res.Circuit.GateCount()
			e := GreedyBenchEntry{
				Instance:     inst.name,
				Arch:         inst.a.Name,
				Qubits:       inst.a.N(),
				Logical:      inst.p.N(),
				ProblemEdges: inst.p.M(),
				Engine:       eng.label,
				CircuitGates: len(res.Circuit.Gates),
				Swaps:        counts[circuit.GateSwap] + counts[circuit.GateZZSwap],
				Cycles:       res.Cycles,
				SchedSeconds: schedBest,
				MatSeconds:   matBest,
				Seconds:      schedBest + matBest,
			}
			if eng.label == GreedyEngineReference {
				e.Speedup, e.Identical = 1, true
				out.Entries = append(out.Entries, e)
				refEntry = &out.Entries[len(out.Entries)-1]
				refRes = res
				continue
			}
			e.Identical = sameResult(refRes, res)
			if !e.Identical {
				return nil, fmt.Errorf("greedy regression: packed engine diverged from reference on %s", inst.name)
			}
			if e.Seconds > 0 {
				e.Speedup = refEntry.Seconds / e.Seconds
			}
			allocs, err := greedy.SchedulingLoopAllocs(inst.a, inst.p, initial, inst.opts, 5)
			if err != nil {
				return nil, fmt.Errorf("greedy bench: alloc probe on %s: %w", inst.name, err)
			}
			e.SchedLoopAllocs = allocs
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// WriteJSON serialises the benchmark document (indented, trailing newline)
// — the exact bytes checked in as BENCH_greedy.json.
func (s *GreedyBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
