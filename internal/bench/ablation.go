package bench

import (
	"math/rand"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/swapnet"
)

// RunAblations reports the design-choice ablations A1–A3 of DESIGN.md:
//
//	A1 gate+SWAP unification: CX cost of the structured solution with the
//	   unified 3-CX ops versus the separate 2+3 CX equivalent;
//	A2 structured grid ATA versus the naive snake-line pattern;
//	A3 hybrid prediction and noise-awareness on/off.
func RunAblations(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "Ablations",
		Title:  "Design-choice ablations (A1–A3)",
		Header: []string{"ablation", "configuration", "depth", "CX", "note"},
	}
	side := 8
	if cfg.Quick {
		side = 6
	}

	// --- A1: unified gate+SWAP vs separate ops, grid clique. ---
	a := arch.Grid(side, side)
	clique := graph.Complete(a.N())
	res, err := core.Compile(a, clique, core.Options{Mode: core.ModeATA, Deadline: cfg.Deadline})
	if err != nil {
		return nil, err
	}
	fused := res.Circuit.GateCount()[circuit.GateZZSwap]
	r.Rows = append(r.Rows,
		[]string{"A1-unify", "unified (3 CX per gate+SWAP)", itoa(res.Metrics.Depth), itoa(res.Metrics.CXCount), ""},
		[]string{"A1-unify", "separate (2+3 CX equivalent)", "-", itoa(res.Metrics.CXCount + 2*fused),
			itoa(fused) + " unified ops"},
	)

	// --- A2: structured grid ATA vs snake-line pattern (both run on the
	// same grid; ATA picks the cheaper one per region, this shows why). ---
	for _, variant := range []struct {
		name string
		run  func(st *swapnet.State, emit swapnet.EmitFunc)
	}{
		{"grid 1xUnit+2xUnit pattern", func(st *swapnet.State, emit swapnet.EmitFunc) {
			swapnet.GridStructuredATA(st, arch.FullRegion(a), emit)
		}},
		{"snake-line pattern", func(st *swapnet.State, emit swapnet.EmitFunc) {
			swapnet.SnakeATA(st, arch.FullRegion(a), emit)
		}},
	} {
		st := swapnet.NewStateFromMapping(a, identityMapping(a.N()), swapnet.NewEdgeSet(clique))
		var c swapnet.Counter
		variant.run(st, c.Emit)
		note := ""
		if !st.Want.Empty() {
			note = "incomplete"
		}
		r.Rows = append(r.Rows, []string{"A2-structure", variant.name, itoa(c.Cycles), itoa(c.CX), note})
	}

	// --- A3: prediction and noise-awareness. ---
	n := 64
	if cfg.Quick {
		n = 32
	}
	hh := arch.HeavyHexN(n)
	nm := noise.Synthetic(hh, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := graph.GnpConnected(n, 0.3, rng)
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"hybrid + noise-aware", core.Options{Mode: core.ModeHybrid, Noise: nm}},
		{"hybrid + noise+crosstalk", core.Options{Mode: core.ModeHybrid, Noise: nm, CrosstalkAware: true}},
		{"hybrid, noise-blind", core.Options{Mode: core.ModeHybrid}},
		{"no prediction (pure greedy)", core.Options{Mode: core.ModeGreedy, Noise: nm}},
		{"no greedy (pure pattern)", core.Options{Mode: core.ModeATA}},
	} {
		variant.opts.Deadline = cfg.Deadline
		vres, err := core.Compile(hh, p, variant.opts)
		if err != nil {
			return nil, err
		}
		// Evaluate every variant under the same calibration so the
		// fidelity column is comparable.
		m := core.Measure(vres.Circuit, nm)
		r.Rows = append(r.Rows, []string{"A3-hybrid", variant.name,
			itoa(vres.Metrics.Depth), itoa(vres.Metrics.CXCount), "logFid " + f2(m.LogFidelity)})
	}
	r.Notes = append(r.Notes,
		"A1: unifying each pattern gate with its SWAP saves 2 CX per op (5→3).",
		"A2: both patterns are O(n); the all-unified snake wins small-grid cliques on depth while the structured pattern wins CX and parallel bipartite layers — ATA predicts both per region and emits the cheaper one.",
		"A3: noise-aware routing improves estimated log-fidelity over noise-blind; crosstalk-awareness costs gates/fidelity on this estimate because the LogFidelity metric does not model the crosstalk it avoids; the pure pattern is the worst-case bound the hybrid only falls back to.")
	return r, nil
}

func identityMapping(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
