package bench

import (
	"fmt"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/baseline"
	"github.com/ata-pattern/ataqc/internal/circuit"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/verify"
)

// RunSemaAudit runs the phase-polynomial semantic-equivalence analyzer
// (internal/verify/sema) over every compiler's raw output on a shared
// workload sweep and reports per-compiler pass/fail counts. Each compiled
// circuit is audited individually — a "pass" is zero sema findings on the
// raw gate stream; a compile that errors out (sema is also enforced inline
// at error severity, so a semantically wrong circuit cannot even be
// constructed) counts as a fail.
func RunSemaAudit(cfg Config) (*Report, error) {
	r := &Report{
		ID:     "SemaAudit",
		Title:  "Semantic-equivalence audit per compiler (phase-polynomial analyzer)",
		Header: []string{"method", "circuits", "sema pass", "sema fail", "findings", "audit ms/circuit"},
	}
	sizes := cfg.sizes([]int{16, 32, 64}, []int{12, 24})
	methods := []string{MethodOurs, MethodGreedy, MethodSolver, MethodQAIM, MethodPaulihedral, Method2QAN}
	for _, method := range methods {
		circuits, pass, findings := 0, 0, 0
		var audit time.Duration
		for _, family := range []string{"heavy-hex", "sycamore"} {
			for _, density := range []float64{0.3, 0.5} {
				for _, n := range sizes {
					a, err := ArchFor(family, n)
					if err != nil {
						return nil, err
					}
					w := RandomWorkload(n, density, cfg.trialsFor(n), cfg.Seed)
					for _, g := range w.Graphs {
						diags, d, err := semaAudit(method, a, g)
						if err != nil {
							return nil, fmt.Errorf("sema audit: %s on %s/%s: %w", method, a.Name, w.Name, err)
						}
						circuits++
						audit += d
						if len(diags) == 0 {
							pass++
						} else {
							findings += len(diags)
						}
					}
				}
			}
		}
		perCircuit := 0.0
		if circuits > 0 {
			perCircuit = audit.Seconds() * 1000 / float64(circuits)
		}
		r.Rows = append(r.Rows, []string{
			method, itoa(circuits), itoa(pass), itoa(circuits - pass),
			itoa(findings), fmt.Sprintf("%.2f", perCircuit),
		})
	}
	r.Notes = append(r.Notes,
		"The sema analyzer symbolically executes the compiled stream (frame tracking through SWAPs, phase-polynomial accumulation) and proves it equal to the problem Hamiltonian up to the final qubit permutation (Theorem 6.1).",
		"Every compiler also enforces sema inline at error severity, so a fail here means the compiler could not produce a verified circuit at all.")
	return r, nil
}

// semaAudit compiles one problem with the named method and re-runs only the
// sema analyzer on the raw output, timing just the analysis. A compile
// failure is reported as one circuit-level finding, not an error: the audit
// measures whether each compiler's output verifies, and "cannot construct a
// verified circuit" is the strongest form of failing.
func semaAudit(method string, a *arch.Arch, p *graph.Graph) ([]verify.Diagnostic, time.Duration, error) {
	var (
		c            *circuit.Circuit
		initial, fin []int
	)
	switch method {
	case MethodOurs, MethodGreedy, MethodSolver:
		mode := core.ModeHybrid
		if method == MethodGreedy {
			mode = core.ModeGreedy
		}
		if method == MethodSolver {
			mode = core.ModeATA
		}
		res, err := core.Compile(a, p, core.Options{Mode: mode, Workers: 1})
		if err != nil {
			return rejectedAt(method, err), 0, nil
		}
		c, initial, fin = res.Circuit, res.Initial, res.Final
	case MethodQAIM, MethodPaulihedral, Method2QAN:
		var (
			res *baseline.Result
			err error
		)
		switch method {
		case MethodQAIM:
			res, err = baseline.QAIM(a, p, 1)
		case MethodPaulihedral:
			res, err = baseline.Paulihedral(a, p, 1)
		default:
			res, err = baseline.TwoQAN(a, p, 1)
		}
		if err != nil {
			return rejectedAt(method, err), 0, nil
		}
		c, initial, fin = res.Circuit, res.Initial, res.Final
	default:
		return nil, 0, fmt.Errorf("bench: unknown method %q", method)
	}
	pass := &verify.Pass{Circuit: c, Arch: a, Problem: p, Initial: initial, Final: fin}
	start := time.Now()
	diags := verify.Run(pass, verify.Sema)
	return diags, time.Since(start), nil
}

// rejectedAt wraps a compile error as a circuit-level sema finding so the
// audit can count it as a fail instead of aborting the sweep.
func rejectedAt(method string, err error) []verify.Diagnostic {
	return []verify.Diagnostic{{
		Analyzer: "sema",
		Severity: verify.SeverityError,
		Gate:     -1,
		Message:  fmt.Sprintf("%s rejected its own output: %v", method, err),
	}}
}
