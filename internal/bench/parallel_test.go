package bench

import (
	"math/rand"
	"os"
	"testing"

	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// TestHybridBenchRegression is the CI benchmark-regression gate: it runs
// the hybrid parallel sweep (quick sizes in -short mode) and fails if any
// parallel entry's depth/CX/swap counts diverge from its serial twin —
// RunHybridBench returns that divergence as an error. Set BENCH_HYBRID_OUT
// to also write the JSON document (how the checked-in BENCH_hybrid.json is
// regenerated: BENCH_HYBRID_OUT=BENCH_hybrid.json go test ./internal/bench
// -run TestHybridBenchRegression).
func TestHybridBenchRegression(t *testing.T) {
	cfg := HybridBenchConfig{Quick: testing.Short(), Repeats: 3}
	if testing.Short() {
		cfg.Repeats = 2
	}
	h, err := RunHybridBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) == 0 {
		t.Fatal("no benchmark entries produced")
	}
	for _, e := range h.Entries {
		t.Logf("%s %s/%s workers=%d: %.3fs depth=%d cx=%d speedup=%.2fx",
			e.Method, e.Arch, e.Graph, e.Workers, e.Seconds, e.Depth, e.CX, e.Speedup)
	}
	if out := os.Getenv("BENCH_HYBRID_OUT"); out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := h.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
	}
}

// benchCompile is the shared body of the Benchmark* pair below.
func benchCompile(b *testing.B, workers int) {
	a, err := ArchFor("grid", 64)
	if err != nil {
		b.Fatal(err)
	}
	a.Distances()
	p := graph.GnpConnected(64, 0.5, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(a, p, core.Options{Mode: core.ModeHybrid, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridGrid64Serial / Parallel8 are the headline pair of the
// acceptance criterion: grid-64 / ER-0.5, Workers 1 vs 8.
func BenchmarkHybridGrid64Serial(b *testing.B)    { benchCompile(b, 1) }
func BenchmarkHybridGrid64Parallel8(b *testing.B) { benchCompile(b, 8) }
