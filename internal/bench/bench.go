// Package bench regenerates every table and figure of the paper's
// evaluation (§7): workload generation, method comparison, and formatted
// report emission. Each Run* function corresponds to one experiment of the
// index in DESIGN.md and returns a Report whose rows mirror the paper's.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/baseline"
	"github.com/ata-pattern/ataqc/internal/core"
	"github.com/ata-pattern/ataqc/internal/graph"
	"github.com/ata-pattern/ataqc/internal/noise"
	"github.com/ata-pattern/ataqc/internal/obs"
)

// Report is a formatted experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteTo renders the report as a markdown table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(r.Header, " | "))
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Method names accepted by CompileWith.
const (
	MethodOurs        = "ours"
	MethodGreedy      = "greedy"
	MethodSolver      = "solver" // the solver-guided pure-ATA circuit
	MethodQAIM        = "qaim"
	MethodPaulihedral = "paulihedral"
	Method2QAN        = "2qan"
)

// Stats are the per-compilation measurements reported in §7.
type Stats struct {
	Method  string
	Depth   int
	CX      int
	Swaps   int
	Seconds float64
	LogFid  float64
	// Phase breakdown of the governed compiles (ours/greedy/solver), from
	// the compiler's Timeline: where Seconds went. Zero for the baseline
	// reimplementations, which are not instrumented.
	GreedySec      float64
	PredictSec     float64
	MaterializeSec float64
	// Degraded reports that at least one underlying compile ran out of its
	// per-compile deadline and fell back to the structured ATA solution.
	Degraded bool
}

// CompileWith compiles problem on a with the named method and measures it.
func CompileWith(method string, a *arch.Arch, p *graph.Graph, nm *noise.Model) (Stats, error) {
	return CompileWithOptions(method, a, p, nm, 0, 0, nil)
}

// CompileWithDeadline is CompileWith under a per-compile wall-clock budget
// (0 = unbounded). The governed methods (ours/greedy/solver) degrade to the
// structured ATA fallback when the budget expires — Stats.Degraded reports
// it; the baseline reimplementations are not governed and ignore it.
func CompileWithDeadline(method string, a *arch.Arch, p *graph.Graph, nm *noise.Model, deadline time.Duration) (Stats, error) {
	return CompileWithOptions(method, a, p, nm, deadline, 0, nil)
}

// CompileWithOptions is CompileWithDeadline with an explicit worker count
// for the hybrid prediction loop (0 = GOMAXPROCS default, 1 = serial) and
// an optional trace the governed compiles attach to (nil = untraced).
// Neither changes the measured circuit — only Seconds.
func CompileWithOptions(method string, a *arch.Arch, p *graph.Graph, nm *noise.Model, deadline time.Duration, workers int, tr *obs.Trace) (Stats, error) {
	start := time.Now()
	var (
		m        core.Metrics
		tl       core.Timeline
		degraded bool
		err      error
	)
	switch method {
	case MethodOurs, MethodGreedy, MethodSolver:
		mode := core.ModeHybrid
		if method == MethodGreedy {
			mode = core.ModeGreedy
		}
		if method == MethodSolver {
			mode = core.ModeATA
		}
		var res *core.Result
		res, err = core.Compile(a, p, core.Options{Mode: mode, Noise: nm, Deadline: deadline, Workers: workers, Trace: tr})
		if err == nil {
			m = res.Metrics
			tl = res.Timeline
			degraded = res.Degraded
		}
	case MethodQAIM, MethodPaulihedral, Method2QAN:
		var res *baseline.Result
		switch method {
		case MethodQAIM:
			res, err = baseline.QAIM(a, p, 1)
		case MethodPaulihedral:
			res, err = baseline.Paulihedral(a, p, 1)
		default:
			res, err = baseline.TwoQAN(a, p, 1)
		}
		if err == nil {
			m = core.Measure(res.Circuit, nm)
		}
	default:
		err = fmt.Errorf("bench: unknown method %q", method)
	}
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Method:         method,
		Depth:          m.Depth,
		CX:             m.CXCount,
		Swaps:          m.Swaps,
		Seconds:        time.Since(start).Seconds(),
		LogFid:         m.LogFidelity,
		GreedySec:      tl.PhaseDuration("greedy").Seconds(),
		PredictSec:     tl.PhaseDuration("predict").Seconds(),
		MaterializeSec: tl.PhaseDuration("materialize").Seconds(),
		Degraded:       degraded,
	}, nil
}

// ArchFor returns the minimum near-square architecture of the given family
// that fits n logical qubits (§7.1). The family name reaches this function
// from CLI flags, so an unknown one is a returned error, not a panic.
func ArchFor(family string, n int) (*arch.Arch, error) {
	if n < 1 {
		return nil, fmt.Errorf("bench: architecture needs at least 1 qubit, got %d", n)
	}
	switch family {
	case "heavy-hex", "heavyhex":
		return arch.HeavyHexN(n), nil
	case "sycamore":
		return arch.SycamoreN(n), nil
	case "grid":
		return arch.GridN(n), nil
	case "hexagon":
		return arch.HexagonN(n), nil
	case "line":
		return arch.Line(n), nil
	default:
		return nil, fmt.Errorf("bench: unknown architecture family %q", family)
	}
}

// Workload describes one benchmark graph family instance.
type Workload struct {
	Name   string
	Graphs []*graph.Graph
}

// RandomWorkload returns `trials` connected G(n, density) samples.
func RandomWorkload(n int, density float64, trials int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: fmt.Sprintf("rand-%d-%.1f", n, density)}
	for i := 0; i < trials; i++ {
		w.Graphs = append(w.Graphs, graph.GnpConnected(n, density, rng))
	}
	return w
}

// RegularWorkload returns `trials` random regular graphs with density close
// to the target (§7.1).
func RegularWorkload(n int, density float64, trials int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Name: fmt.Sprintf("reg-%d-%.1f", n, density)}
	for i := 0; i < trials; i++ {
		g, err := graph.RegularByDensity(n, density, rng)
		if err != nil {
			// Audit note: only in-repo experiment configs with known-feasible
			// (n, density) pairs reach this; infeasibility here is a broken
			// experiment table, which is an internal invariant.
			panic(fmt.Sprintf("bench: infeasible workload reg-%d-%.1f: %v", n, density, err))
		}
		w.Graphs = append(w.Graphs, g)
	}
	return w
}

// averageStats compiles every graph of a workload with a method and
// averages the measurements, honoring a per-compile deadline (0 =
// unbounded), a per-compile worker count, and an optional shared trace
// (obs traces are concurrency-safe). Trials run concurrently (they are
// independent compilations), bounded by GOMAXPROCS.
func averageStats(method string, a *arch.Arch, w Workload, nm *noise.Model, deadline time.Duration, workers int, tr *obs.Trace) (Stats, error) {
	// Force the lazy all-pairs distance cache before fanning out: the
	// architecture is shared across goroutines and must be read-only.
	a.Distances()
	results := make([]Stats, len(w.Graphs))
	errs := make([]error, len(w.Graphs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, g := range w.Graphs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = CompileWithOptions(method, a, g, nm, deadline, workers, tr)
		}(i, g)
	}
	wg.Wait()
	var acc Stats
	for i := range results {
		if errs[i] != nil {
			return Stats{}, fmt.Errorf("%s on %s/%s: %w", method, a.Name, w.Name, errs[i])
		}
		acc.Depth += results[i].Depth
		acc.CX += results[i].CX
		acc.Swaps += results[i].Swaps
		acc.Seconds += results[i].Seconds
		acc.LogFid += results[i].LogFid
		acc.GreedySec += results[i].GreedySec
		acc.PredictSec += results[i].PredictSec
		acc.MaterializeSec += results[i].MaterializeSec
		acc.Degraded = acc.Degraded || results[i].Degraded
	}
	k := len(w.Graphs)
	acc.Method = method
	acc.Depth /= k
	acc.CX /= k
	acc.Swaps /= k
	acc.Seconds /= float64(k)
	acc.LogFid /= float64(k)
	acc.GreedySec /= float64(k)
	acc.PredictSec /= float64(k)
	acc.MaterializeSec /= float64(k)
	return acc, nil
}
