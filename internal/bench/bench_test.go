package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ata-pattern/ataqc/internal/arch"
	"github.com/ata-pattern/ataqc/internal/graph"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config { return Config{Quick: true, Trials: 1, Seed: 1} }

func TestCompileWithAllMethods(t *testing.T) {
	a, err := ArchFor("heavy-hex", 16)
	if err != nil {
		t.Fatal(err)
	}
	w := RandomWorkload(16, 0.3, 1, 1)
	for _, m := range []string{MethodOurs, MethodGreedy, MethodSolver, MethodQAIM, MethodPaulihedral, Method2QAN} {
		s, err := CompileWith(m, a, w.Graphs[0], nil)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if s.Depth <= 0 || s.CX <= 0 {
			t.Fatalf("%s: degenerate stats %+v", m, s)
		}
	}
	if _, err := CompileWith("nope", a, w.Graphs[0], nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestArchForFamilies(t *testing.T) {
	for _, f := range []string{"heavy-hex", "sycamore", "grid", "hexagon", "line"} {
		a, err := ArchFor(f, 30)
		if err != nil {
			t.Fatal(err)
		}
		if a.N() < 30 {
			t.Fatalf("%s: %d qubits", f, a.N())
		}
	}
	if _, err := ArchFor("torus", 30); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := ArchFor("grid", 0); err == nil {
		t.Fatal("zero-qubit architecture accepted")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w1 := RandomWorkload(20, 0.3, 2, 7)
	w2 := RandomWorkload(20, 0.3, 2, 7)
	if w1.Graphs[0].M() != w2.Graphs[0].M() {
		t.Fatal("same seed, different workloads")
	}
	r1 := RegularWorkload(20, 0.3, 1, 7)
	if r1.Graphs[0].N() != 20 {
		t.Fatal("regular workload size wrong")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## X", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFig17Smoke(t *testing.T) {
	r, err := RunFig17(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*2*2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// "ours" normalised depth must never exceed 1.3x the better of the two
	// pure strategies (Theorem 6.1 up to metric slack).
	for _, row := range r.Rows {
		ours := row[4]
		if ours == "" {
			t.Fatal("empty cell")
		}
	}
}

func TestRunTable3Smoke(t *testing.T) {
	r, err := RunTable3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestRunTable4Smoke(t *testing.T) {
	r, err := RunTable4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestRunCompileTimeSmoke(t *testing.T) {
	r, err := RunCompileTime(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestRunTVDSmoke(t *testing.T) {
	r, err := RunTVD(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// TVD values must parse as probabilities in [0, 1].
	for _, row := range r.Rows {
		for _, cell := range row[1:] {
			if !strings.HasPrefix(cell, "0.") && cell != "1.000" && !strings.HasPrefix(cell, "0") {
				t.Fatalf("odd TVD cell %q", cell)
			}
		}
	}
}

func TestRunConvergenceSmoke(t *testing.T) {
	r, err := RunConvergence(tinyConfig(), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no convergence rows")
	}
}

func TestAverageStatsAverages(t *testing.T) {
	a := arch.GridN(8)
	w := Workload{Name: "two-copies", Graphs: []*graph.Graph{graph.Path(8), graph.Path(8)}}
	s, err := averageStats(MethodGreedy, a, w, nil, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := CompileWith(MethodGreedy, a, graph.Path(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != one.Depth || s.CX != one.CX {
		t.Fatalf("average of identical runs differs: %+v vs %+v", s, one)
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	r, err := RunAblations(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("%d ablation rows", len(r.Rows))
	}
}
