package loadgen

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

const sampleSpec = `
# a comment
name: sample
seed: 42
chaos_fraction: 0.25

levels:
  - rps: 40
    duration: 8s
    clients: 8
  - rps: 0          # closed loop
    duration: 5s

mix:
  - arch: grid
    n: 9
    density: 0.5
    seed: 3
    weight: 2
  - arch: heavy-hex
    n: 12
    density: 0.4
    seed: 5
    relabel: 2
`

func TestParseWorkload(t *testing.T) {
	spec, err := ParseWorkload(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Name != "sample" || spec.Seed != 42 || spec.ChaosFraction != 0.25 {
		t.Fatalf("scalars: %+v", spec)
	}
	wantLevels := []LevelSpec{
		{RPS: 40, Duration: 8 * time.Second, Clients: 8},
		{RPS: 0, Duration: 5 * time.Second},
	}
	if !reflect.DeepEqual(spec.Levels, wantLevels) {
		t.Fatalf("levels: %+v", spec.Levels)
	}
	wantMix := []MixSpec{
		{Arch: "grid", N: 9, Density: 0.5, Seed: 3, Weight: 2},
		{Arch: "heavy-hex", N: 12, Density: 0.4, Seed: 5, Relabel: 2},
	}
	if !reflect.DeepEqual(spec.Mix, wantMix) {
		t.Fatalf("mix: %+v", spec.Mix)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown top key", "nmae: x\nlevels:\n  - rps: 1\nmix:\n  - arch: grid\n    n: 4\n    density: 0.5\n", "unknown key"},
		{"unknown section", "stuff:\n  - a: 1\n", "unknown section"},
		{"unknown level key", "levels:\n  - rsp: 4\nmix:\n  - arch: grid\n    n: 4\n    density: 0.5\n", "unknown level keys"},
		{"unknown mix key", "levels:\n  - rps: 4\nmix:\n  - arch: grid\n    n: 4\n    density: 0.5\n    wieght: 2\n", "unknown mix keys"},
		{"tab indent", "levels:\n\t- rps: 4\n", "tabs"},
		{"no levels", "mix:\n  - arch: grid\n    n: 4\n    density: 0.5\n", "no levels"},
		{"no mix", "levels:\n  - rps: 4\n", "no problem mix"},
		{"bad density", "levels:\n  - rps: 4\nmix:\n  - arch: grid\n    n: 4\n    density: 1.5\n", "density"},
		{"missing arch", "levels:\n  - rps: 4\nmix:\n  - n: 4\n    density: 0.5\n", "needs an arch"},
		{"duplicate key", "levels:\n  - rps: 4\n    rps: 5\nmix:\n  - arch: grid\n    n: 4\n    density: 0.5\n", "duplicate key"},
		{"item outside section", "name: x\n  - rps: 4\n", "outside"},
		{"ragged indent", "levels:\n  - rps: 4\n    duration: 2s\n      clients: 3\n", "inconsistent indentation"},
	}
	for _, tc := range cases {
		_, err := ParseWorkload(strings.NewReader(tc.text))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestWorkloadBodies(t *testing.T) {
	spec, err := ParseWorkload(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bodies, err := spec.Bodies()
	if err != nil {
		t.Fatalf("bodies: %v", err)
	}
	// grid entry: weight 2, no relabels -> 2 bodies. heavy-hex entry:
	// weight 1, base + 2 relabeled variants -> 3 bodies.
	if len(bodies) != 5 {
		t.Fatalf("got %d bodies, want 5", len(bodies))
	}
	type reqShape struct {
		Arch  string   `json:"arch"`
		N     int      `json:"n"`
		Edges [][2]int `json:"edges"`
	}
	var hex []reqShape
	for _, b := range bodies {
		var r reqShape
		if err := json.Unmarshal([]byte(b), &r); err != nil {
			t.Fatalf("body is not valid JSON: %v\n%s", err, b)
		}
		if len(r.Edges) == 0 || r.N == 0 {
			t.Fatalf("degenerate body: %s", b)
		}
		if r.Arch == "heavy-hex" {
			hex = append(hex, r)
		}
	}
	if len(hex) != 3 {
		t.Fatalf("heavy-hex variants = %d, want 3", len(hex))
	}
	// The relabeled variants must be isomorphic to the base (same vertex
	// count, same degree multiset) but not byte-identical to it.
	base := hex[0]
	for i, v := range hex[1:] {
		if reflect.DeepEqual(v.Edges, base.Edges) {
			t.Fatalf("relabel variant %d is identical to the base", i+1)
		}
		if !sameDegreeMultiset(base.Edges, v.Edges, base.N) {
			t.Fatalf("relabel variant %d is not a relabeling of the base", i+1)
		}
	}
}

func sameDegreeMultiset(a, b [][2]int, n int) bool {
	da, db := make([]int, n), make([]int, n)
	for _, e := range a {
		da[e[0]]++
		da[e[1]]++
	}
	for _, e := range b {
		db[e[0]]++
		db[e[1]]++
	}
	sort.Ints(da)
	sort.Ints(db)
	return reflect.DeepEqual(da, db)
}

// TestExampleWorkloadsAreValid keeps the shipped spec files parseable
// and expandable — the docs' quickstart must not rot.
func TestExampleWorkloadsAreValid(t *testing.T) {
	matches, err := filepath.Glob("../../examples/workloads/*.yaml")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no example workload specs found: %v", err)
	}
	for _, path := range matches {
		spec, err := LoadWorkload(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if spec.Name == "" {
			t.Fatalf("%s: unnamed workload", path)
		}
		cfgs, err := spec.Configs("http://127.0.0.1:0")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(cfgs) == 0 || len(cfgs[0].Bodies) == 0 {
			t.Fatalf("%s: expanded to no work", path)
		}
	}
}
